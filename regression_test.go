package qcluster

import (
	"bytes"
	"math/rand"
	"testing"
)

// Vector used to panic on an out-of-range id; it must return nil, and
// VectorOK must report presence explicitly.
func TestVectorOutOfRange(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	db, err := NewDatabase(randomVectors(rng, 10, 4))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{-1, 10, 1 << 30} {
		if v := db.Vector(id); v != nil {
			t.Errorf("Vector(%d) = %v, want nil", id, v)
		}
		if _, ok := db.VectorOK(id); ok {
			t.Errorf("VectorOK(%d) reported presence", id)
		}
	}
	if v, ok := db.VectorOK(9); !ok || len(v) != 4 {
		t.Fatalf("VectorOK(9) = %v, %v", v, ok)
	}
	// Ids minted by Add become valid immediately.
	id, err := db.Add(db.Vector(0))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := db.VectorOK(id); !ok {
		t.Fatalf("VectorOK(%d) after Add must succeed", id)
	}
}

// A gob round trip must preserve the full session state of a degraded
// query: the FullInverse ridge fallback re-fires on the restored model
// (Health reports it again), retrieval is unchanged, and the absorbed
// round count resumes where it left off.
func TestQuerySaveLoadDegradedHealthAndRounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	dim := 8
	db, err := NewDatabase(randomVectors(rng, 300, dim))
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(Options{Scheme: FullInverse})
	// Three near-collinear points in 8-D: scatter rank <= 2, so the full
	// covariance is singular and metric construction takes the
	// ridge-regularized path.
	base := db.Vector(0)
	var pts []Point
	for i := 0; i < 3; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = base[d] + 0.01*float64(i)*float64(d+1)
		}
		pts = append(pts, Point{ID: i, Vec: v, Score: 3})
	}
	if err := q.Feedback(pts); err != nil {
		t.Fatal(err)
	}
	want := db.Search(q, 20) // builds the metric, firing the fallback
	if !q.Health().Degraded() {
		t.Fatal("precondition: query must be degraded before saving")
	}
	if q.Rounds() != 1 {
		t.Fatalf("rounds = %d, want 1", q.Rounds())
	}

	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQuery(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Rounds() != 1 {
		t.Errorf("restored rounds = %d, want 1", back.Rounds())
	}
	got := db.Search(back, 20)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d differs after round trip: %v != %v", i, got[i], want[i])
		}
	}
	if !back.Health().Degraded() {
		t.Error("restored query must report the ridge fallback in Health")
	}
	// Absorbing another round on the restored model keeps counting.
	extra := []Point{{ID: 100, Vec: db.Vector(100), Score: 3}}
	if err := back.Feedback(extra); err != nil {
		t.Fatal(err)
	}
	if back.Rounds() != 2 {
		t.Errorf("rounds after resume = %d, want 2", back.Rounds())
	}
}
