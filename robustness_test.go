package qcluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
	"time"

	"repro/internal/faultinject"
)

func randomVectors(rng *rand.Rand, n, dim int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

// An already-cancelled context returns promptly with context.Canceled
// (wrapped), no results and no panic — on every context entry point.
func TestSearchContextPreCancelled(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	db, err := NewDatabase(randomVectors(rng, 500, 6))
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()

	if _, err := db.SearchByExampleContext(ctx, db.Vector(0), 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchByExampleContext err = %v, want context.Canceled", err)
	}
	s := db.NewSession(db.Vector(0), Options{})
	if _, err := s.ResultsContext(ctx, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("ResultsContext err = %v, want context.Canceled", err)
	}
	q := NewQuery(Options{})
	if err := q.Feedback([]Point{{ID: 0, Vec: db.Vector(0), Score: 3}}); err != nil {
		t.Fatal(err)
	}
	if _, err := db.SearchContext(ctx, q, 10); !errors.Is(err, context.Canceled) {
		t.Fatalf("SearchContext err = %v, want context.Canceled", err)
	}
	// A pre-cancelled search must not be tagged as partial results.
	if _, err := db.SearchContext(ctx, q, 10); errors.Is(err, ErrPartialResults) {
		t.Fatal("pre-cancelled search must not claim partial results")
	}
}

// A deadline that expires mid-traversal yields best-effort partial
// results tagged ErrPartialResults and wrapping the context error. The
// KNNPop fault-injection hook gives the test deterministic timing.
func TestSearchContextMidSearchDeadline(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(11))
	db, err := NewDatabase(randomVectors(rng, 3000, 8))
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(Options{})
	if err := q.Feedback([]Point{
		{ID: 0, Vec: db.Vector(0), Score: 3},
		{ID: 1, Vec: db.Vector(1), Score: 3},
	}); err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Millisecond)
	defer cancel()
	pops := 0
	faultinject.Set(faultinject.KNNPop, func() {
		pops++
		if pops == 12 { // let a few leaves be scored first
			time.Sleep(20 * time.Millisecond) // outlive the deadline mid-search
		}
	})
	res, err := db.SearchContext(ctx, q, 25)
	if !errors.Is(err, ErrPartialResults) {
		t.Fatalf("err = %v, want ErrPartialResults", err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, must also wrap context.DeadlineExceeded", err)
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("partial results must stay sorted")
		}
	}
}

// A FullInverse query whose single cluster has fewer points than
// dimensions (singular covariance) must complete retrieval via the
// regularized fallback and report the degradation through Health.
func TestFullInverseSingularCovarianceDegradesGracefully(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	dim := 8
	db, err := NewDatabase(randomVectors(rng, 300, dim))
	if err != nil {
		t.Fatal(err)
	}
	q := NewQuery(Options{Scheme: FullInverse})
	// Three distinct nearby points in 8-D: scatter rank <= 2, singular.
	base := db.Vector(0)
	var pts []Point
	for i := 0; i < 3; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = base[d] + 0.01*float64(i)*float64(d+1)
		}
		pts = append(pts, Point{ID: i, Vec: v, Score: 3})
	}
	if err := q.Feedback(pts); err != nil {
		t.Fatal(err)
	}
	res, err := db.SearchContext(context.Background(), q, 20)
	if err != nil {
		t.Fatalf("degraded search must still succeed: %v", err)
	}
	if len(res) != 20 {
		t.Fatalf("got %d results", len(res))
	}
	h := q.Health()
	if !h.Degraded() || h.DegradedClusters == 0 {
		t.Fatalf("health = %+v, want degraded", h)
	}
	if h.Clusters == 0 {
		t.Fatalf("health must report the cluster count: %+v", h)
	}
}

// The SingularCovariance hook forces the ridge path even for a
// well-conditioned cluster, and the degradation shows up in Health.
func TestForcedSingularCovariance(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(13))
	dim := 3
	db, err := NewDatabase(randomVectors(rng, 200, dim))
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession(db.Vector(0), Options{Scheme: FullInverse})
	var pts []Point
	for id := 0; id < 30; id++ { // plenty of points: normally healthy
		pts = append(pts, Point{ID: id, Vec: db.Vector(id), Score: 3})
	}
	if err := s.MarkRelevant(pts); err != nil {
		t.Fatal(err)
	}
	if res := s.Results(10); len(res) != 10 {
		t.Fatalf("warmup results = %d", len(res))
	}
	if s.Health().Degraded() {
		t.Fatalf("30-point clusters in 3-D should be healthy: %+v", s.Health())
	}
	faultinject.Set(faultinject.SingularCovariance, nil)
	if res := s.Results(10); len(res) != 10 {
		t.Fatalf("forced-singular results = %d", len(res))
	}
	if !s.Health().Degraded() {
		t.Fatalf("forced singular covariance must degrade health: %+v", s.Health())
	}
}

// The panic barrier converts internal panics crossing the public API
// into typed *InternalError values instead of crashing.
func TestPanicBarrier(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	db, err := NewDatabase(randomVectors(rng, 100, 3))
	if err != nil {
		t.Fatal(err)
	}
	// A query whose dimensionality exceeds the database's: evaluating its
	// metric against stored vectors indexes out of range internally.
	q := NewQuery(Options{})
	if err := q.Feedback([]Point{
		{ID: 0, Vec: []float64{1, 2, 3, 4, 5}, Score: 3},
		{ID: 1, Vec: []float64{1, 2, 3, 4, 6}, Score: 3},
	}); err != nil {
		t.Fatal(err)
	}
	_, err = db.SearchContext(context.Background(), q, 5)
	if err == nil {
		t.Fatal("mismatched-dimension search must error")
	}
	if !errors.Is(err, ErrInternal) {
		t.Fatalf("err = %v, want ErrInternal", err)
	}
	var ie *InternalError
	if !errors.As(err, &ie) || ie.Op != "SearchContext" {
		t.Fatalf("err = %#v, want *InternalError with Op=SearchContext", err)
	}
	// The database must remain usable after the trapped panic.
	if res := db.SearchByExample(db.Vector(0), 5); len(res) != 5 {
		t.Fatalf("database unusable after trapped panic: %d results", len(res))
	}
}

// SearchContext on a query with no feedback returns ErrNotReady.
func TestSearchContextNotReady(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	db, err := NewDatabase(randomVectors(rng, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := db.SearchContext(context.Background(), NewQuery(Options{}), 5); !errors.Is(err, ErrNotReady) {
		t.Fatalf("err = %v, want ErrNotReady", err)
	}
}

// Non-finite feedback vectors are rejected with a descriptive error and
// absorb nothing — through both Query.Feedback and Session.MarkRelevant.
func TestFeedbackRejectsNonFinite(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	db, err := NewDatabase(randomVectors(rng, 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	bad := [][]float64{
		{1, math.NaN(), 0},
		{math.Inf(1), 0, 0},
		{0, 0, math.Inf(-1)},
	}
	for _, v := range bad {
		q := NewQuery(Options{})
		if err := q.Feedback([]Point{{ID: 0, Vec: v, Score: 3}}); err == nil {
			t.Errorf("Feedback accepted non-finite vector %v", v)
		} else if q.Ready() {
			t.Errorf("rejected feedback %v still mutated the query", v)
		}
		s := db.NewSession(db.Vector(0), Options{})
		if err := s.MarkRelevant([]Point{{ID: 0, Vec: v, Score: 3}}); err == nil {
			t.Errorf("MarkRelevant accepted non-finite vector %v", v)
		}
	}
	// A zero-score non-finite point is ignored, matching the existing
	// zero-score semantics, and must not fail the batch.
	q := NewQuery(Options{})
	if err := q.Feedback([]Point{
		{ID: 0, Vec: []float64{math.NaN(), 0, 0}, Score: 0},
		{ID: 1, Vec: []float64{1, 2, 3}, Score: 3},
	}); err != nil {
		t.Errorf("zero-score non-finite point must be ignored: %v", err)
	}
}

// Degenerate feedback batches from the faultinject generators (identical
// and collinear points — singular covariance by construction) must flow
// through the whole pipeline without panicking.
func TestDegenerateFeedbackBatches(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	db, err := NewDatabase(randomVectors(rng, 200, 4))
	if err != nil {
		t.Fatal(err)
	}
	for name, batch := range map[string][][]float64{
		"identical": faultinject.IdenticalBatch(4, 6, 0.5),
		"collinear": faultinject.CollinearBatch(4, 6),
	} {
		for _, scheme := range []Scheme{Diagonal, FullInverse} {
			q := NewQuery(Options{Scheme: scheme})
			var pts []Point
			for i, v := range batch {
				pts = append(pts, Point{ID: i, Vec: v, Score: 3})
			}
			if err := q.Feedback(pts); err != nil {
				t.Fatalf("%s/%v: %v", name, scheme, err)
			}
			res, err := db.SearchContext(context.Background(), q, 10)
			if err != nil || len(res) != 10 {
				t.Fatalf("%s/%v: res=%d err=%v", name, scheme, len(res), err)
			}
			// Collinear points have nonzero variance in every dimension,
			// so the diagonal scheme handles them without any fallback —
			// the paper's reason for preferring it. Every other combination
			// must report the degradation.
			if name == "collinear" && scheme == Diagonal {
				continue
			}
			if !q.Health().Degraded() {
				t.Errorf("%s/%v: degenerate batch should degrade health", name, scheme)
			}
		}
	}
}
