package qcluster

import (
	"math"
	"math/rand"
	"testing"
)

// FuzzFeedback feeds randomized point batches — mixed dimensionalities,
// empty vectors, non-positive scores, NaN/Inf components — into
// Query.Feedback and asserts that it never panics and that the model
// state stays invariant-preserving: a rejected batch mutates nothing,
// an accepted batch leaves finite representatives and internally
// consistent clusters within the configured bound.
func FuzzFeedback(f *testing.F) {
	f.Add(int64(1), uint8(3), uint8(4), uint8(0))
	f.Add(int64(2), uint8(8), uint8(2), uint8(1))
	f.Add(int64(3), uint8(1), uint8(9), uint8(2))
	f.Add(int64(4), uint8(0), uint8(0), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, dim, batches, schemeBits uint8) {
		rng := rand.New(rand.NewSource(seed))
		opt := Options{}
		if schemeBits&1 != 0 {
			opt.Scheme = FullInverse
		}
		q := NewQuery(opt)
		maxPoints := 5 // Options zero value bounds merging at 5

		for b := 0; b < int(batches%10)+1; b++ {
			n := rng.Intn(8)
			pts := make([]Point, n)
			for i := range pts {
				d := int(dim % 12)
				if rng.Intn(4) == 0 {
					d = rng.Intn(12) // mixed dims within a batch
				}
				v := make([]float64, d)
				for j := range v {
					switch rng.Intn(12) {
					case 0:
						v[j] = math.NaN()
					case 1:
						v[j] = math.Inf(1 - 2*rng.Intn(2))
					default:
						v[j] = rng.NormFloat64()
					}
				}
				pts[i] = Point{
					ID:    rng.Intn(20) - 5, // some negative (synthetic) ids
					Vec:   v,
					Score: float64(rng.Intn(5)) - 1, // includes <= 0
				}
			}

			before := q.NumQueryPoints()
			err := q.Feedback(pts)
			if err != nil {
				if q.NumQueryPoints() != before {
					t.Fatalf("rejected batch mutated the model: %d -> %d", before, q.NumQueryPoints())
				}
				continue
			}
			if g := q.NumQueryPoints(); g > maxPoints {
				t.Fatalf("query points %d exceed bound %d", g, maxPoints)
			}
			for _, rep := range q.Representatives() {
				for _, x := range rep {
					if math.IsNaN(x) || math.IsInf(x, 0) {
						t.Fatalf("non-finite representative %v", rep)
					}
				}
			}
			for _, c := range q.model.Clusters() {
				if err := c.Validate(); err != nil {
					t.Fatalf("cluster invariant violated: %v", err)
				}
			}
			if q.ClusterQualityError() < 0 || q.ClusterQualityError() > 1 {
				t.Fatalf("error rate out of range: %v", q.ClusterQualityError())
			}
		}
	})
}
