// Tuning sweeps Qcluster's two main knobs on a fixed retrieval workload:
// the significance level α (which sets both the effective radius of
// Lemma 1 and the T² critical distance of Eq. 16 — smaller α merges
// more) and the covariance scheme (diagonal vs full inverse, the paper's
// Fig. 6 trade-off). It prints final-iteration recall, mean query-point
// count and wall-clock time per configuration.
//
//	go run ./examples/tuning
package main

import (
	"fmt"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/imagegen"
	"repro/internal/rf"
)

func main() {
	ds, err := dataset.Build(dataset.Config{
		Collection: imagegen.CollectionConfig{
			Seed: 5, NumCategories: 24, ImagesPerCategory: 50,
			ImageSize: 24, Themes: 6, BimodalFrac: 0.4,
		},
	})
	if err != nil {
		panic(err)
	}
	base := eval.RetrievalConfig{
		DS:      ds,
		Feature: dataset.ColorMoments,
		// A modest workload keeps the sweep quick.
		NumQueries: 20, Iterations: 4, K: 50, Seed: 99, UseIndex: true,
	}

	fmt.Printf("%-10s %-9s %10s %10s %8s %10s\n",
		"alpha", "scheme", "recall@4", "prec@4", "qpoints", "time")
	for _, scheme := range []cluster.Scheme{cluster.Diagonal, cluster.FullInverse} {
		for _, alpha := range []float64{0.2, 0.05, 0.01, 0.001} {
			start := time.Now()
			s := eval.RunRetrieval(base, func() rf.Engine {
				return rf.NewQcluster(core.Options{Scheme: scheme, Alpha: alpha})
			})
			last := len(s.Recall) - 1
			fmt.Printf("%-10.3f %-9s %10.3f %10.3f %8.2f %10s\n",
				alpha, scheme, s.Recall[last], s.Precision[last],
				s.QueryPoints[last], time.Since(start).Round(time.Millisecond))
		}
	}
	fmt.Println("\nsmaller α widens both the effective radius and the merge")
	fmt.Println("acceptance region (fewer, larger query clusters); the diagonal")
	fmt.Println("scheme should match the inverse scheme's quality at a fraction")
	fmt.Println("of the cost (paper Fig. 6).")
}
