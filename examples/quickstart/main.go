// Quickstart: the minimal end-to-end Qcluster feedback loop on a small
// vector collection using only the public API.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(1))

	// A toy collection: three "categories" as Gaussian blobs in 3-D
	// feature space. Category 0 is bimodal — its items live near both
	// (0,0,0) and (4,4,4), like the paper's birds on two backgrounds.
	var vectors [][]float64
	var labels []int
	blob := func(label, n int, cx, cy, cz, spread float64) {
		for i := 0; i < n; i++ {
			vectors = append(vectors, []float64{
				cx + spread*rng.NormFloat64(),
				cy + spread*rng.NormFloat64(),
				cz + spread*rng.NormFloat64(),
			})
			labels = append(labels, label)
		}
	}
	blob(0, 20, 0, 0, 0, 0.4)
	blob(0, 20, 4, 4, 4, 0.4)
	blob(1, 40, -5, 5, 0, 0.5)
	blob(2, 15, 2, 2, 2, 1.0) // clutter between category 0's modes

	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}

	// Start a session from a category-0 example and run five feedback
	// rounds, marking category-0 results as relevant (score 3).
	session := db.NewSession(db.Vector(0), qcluster.Options{})
	for round := 0; round <= 5; round++ {
		results := session.Results(40)
		hits := 0
		for _, r := range results {
			if labels[r.ID] == 0 {
				hits++
			}
		}
		fmt.Printf("round %d: %2d/40 of category 0 in the top-40, %d query point(s)\n",
			round, hits, session.Query().NumQueryPoints())
		if round == 5 {
			break
		}
		var marked []qcluster.Point
		for _, r := range results {
			if labels[r.ID] == 0 {
				marked = append(marked, qcluster.Point{
					ID: r.ID, Vec: db.Vector(r.ID), Score: 3,
				})
			}
		}
		session.MarkRelevant(marked)
	}

	fmt.Printf("\nfinal query representatives:\n")
	for i, rep := range session.Query().Representatives() {
		fmt.Printf("  %d: (%.2f, %.2f, %.2f)\n", i, rep[0], rep[1], rep[2])
	}
	fmt.Printf("cluster quality (leave-one-out error): %.3f\n",
		session.Query().ClusterQualityError())
}
