// Indexing compares the three k-NN substrates on the same 50,000-vector
// store: linear scan, the hybrid-tree-style index (the structure the
// paper indexes its features with) and a VA-file. All three answer
// single-point and disjunctive multipoint queries exactly; they differ in
// how much work each query costs. The demo also shows a range query —
// "everything within radius r" — which is how Example 3's ground truth
// is defined.
//
//	go run ./examples/indexing
package main

import (
	"fmt"
	"math/rand"
	"time"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
)

func main() {
	rng := rand.New(rand.NewSource(1))
	const n, dim = 50000, 4
	vecs := make([]linalg.Vector, n)
	for i := range vecs {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = rng.NormFloat64() * 2
		}
		vecs[i] = v
	}
	store, err := index.NewStore(vecs)
	if err != nil {
		panic(err)
	}

	fmt.Printf("store: %d vectors, %d dims\n\n", store.Len(), store.Dim())
	buildStart := time.Now()
	tree := index.NewHybridTree(store, index.TreeOptions{})
	fmt.Printf("hybrid tree built in %v (height %d, leaf capacity %d)\n",
		time.Since(buildStart).Round(time.Microsecond), tree.Height(), tree.LeafCapacity())
	buildStart = time.Now()
	va := index.NewVAFile(store, index.VAFileOptions{})
	fmt.Printf("VA-file built in %v (%d bits/dim)\n\n",
		time.Since(buildStart).Round(time.Microsecond), va.BitsPerDim())

	scan := index.NewLinearScan(store)
	searchers := []struct {
		name string
		s    index.Searcher
	}{
		{"linear scan", scan},
		{"hybrid tree", tree},
		{"VA-file", va},
	}

	// A single-point query and a two-cluster disjunctive query (Eq. 5).
	center := linalg.Vector{0.5, -0.5, 1, 0}
	q1 := distance.NewQuadraticDiag(linalg.Vector{-2, -2, -2, -2}, linalg.Vector{1, 1, 1, 1})
	q2 := distance.NewQuadraticDiag(linalg.Vector{2, 2, 2, 2}, linalg.Vector{1, 1, 1, 1})
	queries := []struct {
		name string
		m    distance.Metric
	}{
		{"euclidean", &distance.Euclidean{Center: center}},
		{"disjunctive", distance.NewDisjunctive([]*distance.Quadratic{q1, q2}, []float64{1, 1})},
	}

	for _, q := range queries {
		fmt.Printf("top-100 %s query:\n", q.name)
		var reference []index.Result
		for _, sc := range searchers {
			start := time.Now()
			res, stats := sc.s.KNN(q.m, 100)
			elapsed := time.Since(start)
			agree := "(reference)"
			if reference == nil {
				reference = res
			} else if sameIDs(reference, res) {
				agree = "results identical"
			} else {
				agree = "RESULTS DIFFER!"
			}
			fmt.Printf("  %-12s %8v  exact distance evals: %6d/%d  %s\n",
				sc.name, elapsed.Round(time.Microsecond), stats.DistanceEvals, n, agree)
		}
		fmt.Println()
	}

	// Range query: everything within 1.0 of the center.
	fmt.Println("range query (Euclidean² <= 1.0):")
	for _, rs := range []struct {
		name string
		r    index.RangeSearcher
	}{
		{"linear scan", scan}, {"hybrid tree", tree}, {"VA-file", va},
	} {
		start := time.Now()
		res, stats := rs.r.Range(&distance.Euclidean{Center: center}, 1.0)
		fmt.Printf("  %-12s %8v  %d results, %d exact evals\n",
			rs.name, time.Since(start).Round(time.Microsecond), len(res), stats.DistanceEvals)
	}
}

func sameIDs(a, b []index.Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}
