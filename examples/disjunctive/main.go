// Disjunctive reproduces the paper's Example 3 (Fig. 5): 10,000 points
// uniform in the cube (-2,2)³, queried with the aggregate disjunctive
// distance (Eq. 5) anchored at the two opposite corners (-1,-1,-1) and
// (1,1,1). A working disjunctive query retrieves two separate point
// swarms — one around each corner — rather than a band between them.
//
//	go run ./examples/disjunctive
package main

import (
	"fmt"
	"math/rand"

	"repro"
)

func main() {
	rng := rand.New(rand.NewSource(2003))

	const n = 10000
	vectors := make([][]float64, n)
	for i := range vectors {
		vectors[i] = []float64{
			-2 + 4*rng.Float64(),
			-2 + 4*rng.Float64(),
			-2 + 4*rng.Float64(),
		}
	}
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}

	// Build the two-cluster query by feeding a few points around each
	// corner as "relevant". With unit scores and symmetric spreads this
	// is Eq. 5 with two equally weighted representatives.
	q := qcluster.NewQuery(qcluster.Options{})
	var pts []qcluster.Point
	id := 0
	for _, c := range [][3]float64{{-1, -1, -1}, {1, 1, 1}} {
		for i := 0; i < 8; i++ {
			pts = append(pts, qcluster.Point{
				ID: 1_000_000 + id,
				Vec: []float64{
					c[0] + 0.3*rng.NormFloat64(),
					c[1] + 0.3*rng.NormFloat64(),
					c[2] + 0.3*rng.NormFloat64(),
				},
				Score: 1,
			})
			id++
		}
	}
	q.Feedback(pts)
	fmt.Printf("query clusters: %d (want 2)\n", q.NumQueryPoints())

	// Count the cube points within 1.0 of either corner — the paper's
	// ground truth for the example — then retrieve that many by Eq. 5.
	within := 0
	near := func(v []float64, c [3]float64) float64 {
		dx, dy, dz := v[0]-c[0], v[1]-c[1], v[2]-c[2]
		return dx*dx + dy*dy + dz*dz
	}
	for _, v := range vectors {
		if near(v, [3]float64{-1, -1, -1}) <= 1 || near(v, [3]float64{1, 1, 1}) <= 1 {
			within++
		}
	}
	results := db.Search(q, within)

	var lo, hi int
	for _, r := range results {
		v := db.Vector(r.ID)
		if near(v, [3]float64{-1, -1, -1}) < near(v, [3]float64{1, 1, 1}) {
			lo++
		} else {
			hi++
		}
	}
	fmt.Printf("points within 1.0 of either corner: %d (paper reports 820 on its draw)\n", within)
	fmt.Printf("retrieved %d points by Eq. 5: %d near (-1,-1,-1), %d near (1,1,1)\n",
		len(results), lo, hi)
	if lo > 0 && hi > 0 {
		fmt.Println("both corners covered: the aggregate distance handles disjunctive queries.")
	}
}
