// Birds recreates the paper's motivating Example 1/2 on real rendered
// images: a "bird" category whose images come on very different
// backgrrounds, so its feature vectors form disjoint clusters in
// color-moment space. The user supplies TWO example bird images — one per
// background — which is exactly the multipoint-query scenario the paper
// supports ("our approach to the relevance feedback allows multiple
// objects to be a query"). Qcluster keeps the two modes as separate query
// clusters with disjoint contours; the single-contour baseline (the same
// model capped at one query point) must cover both modes with one
// ellipsoid and drags in foreign images from the space between.
//
//	go run ./examples/birds
package main

import (
	"fmt"

	"repro"
	"repro/internal/dataset"
	"repro/internal/imagegen"
)

func main() {
	// A moderately crowded collection: 6 themes x 4 categories each, 40%
	// of the categories complex (multi-variant). Rendering ~1.4k images
	// and extracting features takes a couple of seconds.
	ds, err := dataset.Build(dataset.Config{
		Collection: imagegen.CollectionConfig{
			Seed: 11, NumCategories: 24, ImagesPerCategory: 60,
			ImageSize: 28, Themes: 6, BimodalFrac: 0.4,
		},
	})
	if err != nil {
		panic(err)
	}
	col := ds.Col

	vectors := make([][]float64, ds.NumImages())
	for i, v := range ds.Color {
		vectors[i] = v
	}
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}

	// Pick a complex category and one example image per variant.
	qcat := -1
	for cat := range col.Categories {
		if len(col.Categories[cat].Variants) >= 2 {
			qcat = cat
			break
		}
	}
	category := col.Categories[qcat]
	nvar := len(category.Variants)
	examples := make([]int, 0, nvar)
	seen := map[int]bool{}
	for id := qcat * 60; id < (qcat+1)*60 && len(examples) < nvar; id++ {
		if v := col.VariantOf(id); !seen[v] {
			seen[v] = true
			examples = append(examples, id)
		}
	}
	fmt.Printf("category %q has %d visual variants; example images: %v\n\n",
		category.Name, nvar, examples)

	run := func(name string, opt qcluster.Options) {
		// Multi-example query: the user's examples are the first
		// "relevant set" (all with the top relevance score).
		q := qcluster.NewQuery(opt)
		pts := make([]qcluster.Point, len(examples))
		for i, id := range examples {
			pts[i] = qcluster.Point{ID: id, Vec: db.Vector(id), Score: 3}
		}
		q.Feedback(pts)

		for round := 0; round < 5; round++ {
			res := db.Search(q, 60)
			hits := 0
			byVar := make([]int, nvar)
			for _, r := range res {
				if col.Label(r.ID) == qcat {
					hits++
					byVar[col.VariantOf(r.ID)]++
				}
			}
			fmt.Printf("  %-13s round %d: recall %.2f, per-variant %v, %d query point(s)\n",
				name, round, float64(hits)/60, byVar, q.NumQueryPoints())
			var marked []qcluster.Point
			for _, r := range res {
				if col.Label(r.ID) == qcat {
					marked = append(marked, qcluster.Point{ID: r.ID, Vec: db.Vector(r.ID), Score: 3})
				}
			}
			q.Feedback(marked)
		}
	}

	fmt.Println("Qcluster (disjoint multipoint contours):")
	run("qcluster", qcluster.Options{})
	fmt.Println("\nsingle-contour baseline (MaxQueryPoints = 1):")
	run("single-point", qcluster.Options{MaxQueryPoints: 1})
}
