// Command robustness demonstrates the concurrency, cancellation, and
// graceful-degradation surface of the public API: concurrent Add +
// Search, context-aware search with partial results, the query-health
// status under a singular FullInverse covariance, and boundary
// validation of poisoned feedback.
package main

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	qcluster "repro"
)

func main() {
	rng := rand.New(rand.NewSource(7))
	const dim = 8
	vectors := make([][]float64, 5000)
	for i := range vectors {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		vectors[i] = v
	}
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}

	// 1. Concurrent writers and readers on one shared database.
	var wg sync.WaitGroup
	var added, searched int64
	var mu sync.Mutex
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(w)))
			for i := 0; i < 200; i++ {
				if w%2 == 0 {
					v := make([]float64, dim)
					for d := range v {
						v[d] = rng.NormFloat64()
					}
					if _, err := db.Add(v); err != nil {
						panic(err)
					}
					mu.Lock()
					added++
					mu.Unlock()
				} else {
					res := db.SearchByExample(db.Vector(rng.Intn(5000)), 10)
					if len(res) != 10 {
						panic("short result")
					}
					mu.Lock()
					searched++
					mu.Unlock()
				}
			}
		}(w)
	}
	wg.Wait()
	fmt.Printf("1. concurrent mix ok: %d adds + %d searches, db now %d items\n",
		added, searched, db.Len())

	// 2. Already-cancelled context: prompt, typed error, no results.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = db.SearchByExampleContext(ctx, db.Vector(0), 10)
	fmt.Printf("2. pre-cancelled search: canceled=%v partial=%v err=%q\n",
		errors.Is(err, context.Canceled), errors.Is(err, qcluster.ErrPartialResults), err)

	// 3. Mid-search deadline: best-effort partial results, tagged. A
	// multi-cluster FullInverse query over a larger collection is slow
	// enough to time, so a deadline at half its latency reliably expires
	// mid-traversal.
	big := make([][]float64, 60000)
	for i := range big {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		big[i] = v
	}
	bigDB, err := qcluster.NewDatabase(big)
	if err != nil {
		panic(err)
	}
	heavy := qcluster.NewQuery(qcluster.Options{Scheme: qcluster.FullInverse})
	var spread []qcluster.Point
	for i := 0; i < 40; i++ {
		spread = append(spread, qcluster.Point{ID: i, Vec: big[i*700], Score: 3})
	}
	if err := heavy.Feedback(spread); err != nil {
		panic(err)
	}
	start := time.Now()
	if _, err := bigDB.SearchContext(context.Background(), heavy, 500); err != nil {
		panic(err)
	}
	full := time.Since(start)
	// Halve the deadline until it expires mid-traversal (a too-generous
	// deadline completes; a microscopic one expires before the search
	// even starts).
	var res []qcluster.Result
	deadline := full / 2
	for try := 0; try < 15 && !errors.Is(err, qcluster.ErrPartialResults); try++ {
		dctx, dcancel := context.WithTimeout(context.Background(), deadline)
		res, err = bigDB.SearchContext(dctx, heavy, 500)
		dcancel()
		if err == nil {
			deadline /= 2
		}
	}
	fmt.Printf("3. mid-search deadline (%v of a %v search): %d partial results, partial=%v deadline=%v\n",
		deadline, full, len(res), errors.Is(err, qcluster.ErrPartialResults), errors.Is(err, context.DeadlineExceeded))

	// 4. Singular covariance under FullInverse: 3 points in 8-D cannot
	// span the space; retrieval survives via the regularized fallback and
	// reports it through the query health.
	q := qcluster.NewQuery(qcluster.Options{Scheme: qcluster.FullInverse})
	base := db.Vector(0)
	var pts []qcluster.Point
	for i := 0; i < 3; i++ {
		v := make([]float64, dim)
		for d := range v {
			v[d] = base[d] + 0.01*float64(i+1)*float64(d+1)
		}
		pts = append(pts, qcluster.Point{ID: i, Vec: v, Score: 3})
	}
	if err := q.Feedback(pts); err != nil {
		panic(err)
	}
	res, err = db.SearchContext(context.Background(), q, 10)
	h := q.Health()
	fmt.Printf("4. singular FullInverse query: %d results, err=%v, health={clusters:%d degraded:%d} Degraded=%v\n",
		len(res), err, h.Clusters, h.DegradedClusters, h.Degraded())

	// 5. Poisoned feedback is rejected at the boundary.
	err = q.Feedback([]qcluster.Point{{ID: 99, Vec: []float64{1, math.NaN(), 0, 0, 0, 0, 0, 0}, Score: 3}})
	fmt.Printf("5. NaN feedback rejected: %v\n", err)

	// 6. Degenerate k values.
	fmt.Printf("6. k=0 -> %d results, k=-5 -> %d results, k>Len -> %d results (Len=%d)\n",
		len(db.SearchByExample(base, 0)),
		len(db.SearchByExample(base, -5)),
		len(db.SearchByExample(db.Vector(1), db.Len()+100)),
		db.Len())
}
