// Serving demonstrates the HTTP serving layer end to end, in-process: it
// starts a qserve-style server on a loopback port, then plays a full
// client conversation against it over real HTTP — stateless search, a
// feedback session refined over several rounds, a request that exceeds
// the in-flight cap and is shed with 429, and finally a graceful drain.
//
//	go run ./examples/serving
package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"time"

	qcluster "repro"
	"repro/internal/server"
)

func main() {
	// A small labelled Gaussian mixture: 8 categories x 50 vectors.
	rng := rand.New(rand.NewSource(7))
	const cats, perCat, dim = 8, 50, 6
	var vectors [][]float64
	var labels []int
	for c := 0; c < cats; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = rng.NormFloat64() * 1.5
		}
		for i := 0; i < perCat; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = center[d] + rng.NormFloat64()*2.5
			}
			vectors = append(vectors, v)
			labels = append(labels, c)
		}
	}
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}

	s, err := server.Start("127.0.0.1:0", db, server.Options{
		SessionTTL: 5 * time.Minute,
	})
	if err != nil {
		panic(err)
	}
	base := "http://" + s.Addr()
	fmt.Printf("serving %d vectors on %s\n\n", db.Len(), s.Addr())

	// 1. Stateless search around item 0.
	var sr struct {
		Results []struct {
			ID   int     `json:"id"`
			Dist float64 `json:"dist"`
		} `json:"results"`
	}
	post(base+"/v1/search", map[string]any{"example_id": 0, "k": 10}, &sr)
	fmt.Printf("stateless search: %d neighbours of item 0, nearest dist %.3f\n",
		len(sr.Results), sr.Results[0].Dist)

	// 2. A feedback session: retrieve, mark the same-category results
	// relevant, repeat. Precision over the rounds shows the query model
	// adapting.
	var created struct {
		SessionID string `json:"session_id"`
	}
	post(base+"/v1/sessions", map[string]any{"example_id": 0}, &created)
	fmt.Printf("\nsession %s:\n", created.SessionID[:8])
	for round := 1; round <= 3; round++ {
		var res struct {
			Results []struct {
				ID int `json:"id"`
			} `json:"results"`
			Rounds      int  `json:"rounds"`
			QueryPoints int  `json:"query_points"`
			Refined     bool `json:"refined"`
		}
		get(base+"/v1/sessions/"+created.SessionID+"/results?k=20", &res)
		relevant := 0
		var points []map[string]any
		for _, r := range res.Results {
			if labels[r.ID] == labels[0] {
				relevant++
				points = append(points, map[string]any{"id": r.ID, "score": 3})
			}
		}
		fmt.Printf("  round %d: precision %2d/20, refined=%v, %d query points\n",
			round, relevant, res.Refined, res.QueryPoints)
		post(base+"/v1/sessions/"+created.SessionID+"/feedback",
			map[string]any{"points": points}, nil)
	}

	// 3. Graceful drain: in-flight work finishes, new requests get 503.
	if err := s.Close(); err != nil {
		panic(err)
	}
	resp, err := http.Get(base + "/healthz")
	if err != nil {
		fmt.Println("\ndrained: listener closed")
	} else {
		resp.Body.Close()
		fmt.Printf("\ndrained: healthz now returns %d\n", resp.StatusCode)
	}
}

func post(url string, body, out any) {
	blob, _ := json.Marshal(body)
	resp, err := http.Post(url, "application/json", bytes.NewReader(blob))
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 {
		panic(fmt.Sprintf("POST %s: %d", url, resp.StatusCode))
	}
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			panic(err)
		}
	}
}

func get(url string, out any) {
	resp, err := http.Get(url)
	if err != nil {
		panic(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 300 && resp.StatusCode != 206 {
		panic(fmt.Sprintf("GET %s: %d", url, resp.StatusCode))
	}
	if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
		panic(err)
	}
}
