// Command observability demonstrates the instrumentation surface of the
// public API: per-round feedback traces through a MemorySink and
// log/slog, the Session.Stats and Database.Metrics snapshots, and the
// debug HTTP endpoint with its expvar/Prometheus/pprof handlers.
package main

import (
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net/http"
	"os"
	"strings"

	qcluster "repro"
)

func main() {
	// A two-mode collection: category 0 occupies two disjoint blobs —
	// the complex-query situation the paper's clustering is built for.
	rng := rand.New(rand.NewSource(42))
	const dim = 4
	var vectors [][]float64
	var labels []int
	blob := func(cat, n int, center, spread float64) {
		for i := 0; i < n; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = center + spread*rng.NormFloat64()
			}
			vectors = append(vectors, v)
			labels = append(labels, cat)
		}
	}
	blob(0, 40, 0, 0.7)
	blob(0, 40, 6, 0.7)
	blob(1, 120, 3, 2.5)
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}

	// 1. Traced feedback session: a MemorySink collects one span per
	// feedback round with every classification and merge decision.
	sink := &qcluster.MemorySink{}
	s := db.NewSession(db.Vector(0), qcluster.Options{Sink: sink})
	seen := map[int]bool{}
	for round := 0; round < 3; round++ {
		res := s.Results(120)
		// A realistic user marks a handful of new relevant items per
		// round, so each round feeds the classifier fresh points.
		var marked []qcluster.Point
		for _, r := range res {
			if labels[r.ID] == 0 && !seen[r.ID] && len(marked) < 12 {
				seen[r.ID] = true
				marked = append(marked, qcluster.Point{ID: r.ID, Vec: db.Vector(r.ID), Score: 3})
			}
		}
		if err := s.MarkRelevant(marked); err != nil {
			panic(err)
		}
	}
	s.Results(20)
	fmt.Println("== trace events per feedback round ==")
	for _, e := range sink.Events() {
		if e.Span == "feedback.round" && (e.Name == "start" || e.Name == "end") {
			fmt.Printf("  %s/%s round=%v clusters=%v\n", e.Span, e.Name, e.Field("round"), e.Field("clusters"))
		}
	}
	fmt.Printf("  classification decisions: %d assigns, %d new clusters; merge summaries: %d\n",
		sink.Count("classify.assign"), sink.Count("classify.new_cluster"), sink.Count("merge.done"))

	// 2. Session and database snapshots.
	st := s.Stats()
	fmt.Println("\n== Session.Stats ==")
	fmt.Printf("  searches=%d feedbackRounds=%d queryPoints=%d\n",
		st.Searches, st.FeedbackRounds, st.QueryPoints)
	fmt.Printf("  latency p50=%.3fms p95=%.3fms; last search: %d/%d leaves visited (prune %.2f)\n",
		st.SearchLatencySeconds.Quantile(0.5)*1e3,
		st.SearchLatencySeconds.Quantile(0.95)*1e3,
		st.LastSearch.LeavesVisited, st.LastSearch.LeavesTotal, st.LastSearch.PruneRatio)
	m := db.Metrics()
	fmt.Println("\n== Database.Metrics ==")
	fmt.Printf("  search.total=%d index.distance_evals=%d db.items=%.0f\n",
		m.Counters["search.total"], m.Counters["index.distance_evals"], m.Gauges["db.items"])

	// 3. Debug endpoint: expvar JSON, Prometheus text, pprof.
	d, err := db.ServeDebug("127.0.0.1:0")
	if err != nil {
		panic(err)
	}
	defer d.Close()
	resp, err := http.Get("http://" + d.Addr() + "/metrics")
	if err != nil {
		panic(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	fmt.Printf("\n== /metrics on %s (first lines) ==\n", d.Addr())
	lines := strings.SplitN(string(body), "\n", 5)
	for _, l := range lines[:4] {
		fmt.Println("  " + l)
	}

	// 4. Structured logging: the same trace stream through log/slog.
	fmt.Println("\n== slog sink (one retrieval) ==")
	logger := slog.New(slog.NewTextHandler(os.Stdout, &slog.HandlerOptions{
		ReplaceAttr: func(_ []string, a slog.Attr) slog.Attr {
			if a.Key == slog.TimeKey {
				return slog.Attr{} // stable output for the example
			}
			return a
		},
	}))
	q := qcluster.NewQuery(qcluster.Options{Sink: qcluster.NewSlogSink(logger)})
	if err := q.Feedback([]qcluster.Point{
		{ID: 0, Vec: db.Vector(0), Score: 3},
		{ID: 1, Vec: db.Vector(1), Score: 3},
	}); err != nil {
		panic(err)
	}
	db.Search(q, 5)
}
