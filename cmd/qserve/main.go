// Command qserve exposes a Qcluster retrieval database over HTTP: a
// stateless k-NN search endpoint plus multi-tenant relevance-feedback
// sessions, with admission control, per-request deadlines and graceful
// drain on SIGINT/SIGTERM (see internal/server for the API).
//
// The collection is loaded from a cmd/qgen snapshot (-data) or built as
// a synthetic Gaussian mixture (-n/-dim/-cats/-seed) so the server is
// runnable out of the box:
//
//	qserve -addr :8080 -ops :8081 -cats 20 -percat 100 -dim 8
//
// Endpoints (JSON):
//
//	POST   /v1/search                    stateless k-NN around an example
//	POST   /v1/sessions                  open a feedback session
//	GET    /v1/sessions/{id}/results     retrieve with the refined query
//	POST   /v1/sessions/{id}/feedback    mark relevant results
//	DELETE /v1/sessions/{id}             close a session
//	GET    /healthz                      liveness + capacity
//
// The ops port (-ops) serves /debug/vars, /metrics (Prometheus text)
// and /debug/pprof with the server and database registries merged.
package main

import (
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"syscall"
	"time"

	qcluster "repro"
	"repro/internal/dataset"
	"repro/internal/server"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "API listen address")
		ops  = flag.String("ops", "", "ops listen address for /metrics, /debug/vars, /debug/pprof (empty to disable)")

		// Collection: snapshot or synthetic mixture.
		data   = flag.String("data", "", "dataset snapshot from cmd/qgen (optional)")
		cats   = flag.Int("cats", 16, "synthetic mixture: number of categories")
		perCat = flag.Int("percat", 100, "synthetic mixture: vectors per category")
		dim    = flag.Int("dim", 8, "synthetic mixture: dimensionality")
		seed   = flag.Int64("seed", 2003, "synthetic mixture: random seed")

		// Serving knobs (zero = internal/server default).
		maxSessions    = flag.Int("max-sessions", 0, "session capacity before LRU eviction (0 = default)")
		sessionTTL     = flag.Duration("session-ttl", 0, "idle session lifetime (0 = default)")
		maxInFlight    = flag.Int("max-inflight", 0, "concurrent request cap (0 = default)")
		queueWait      = flag.Duration("queue-wait", 0, "max wait for an in-flight slot before shedding 429 (0 = default)")
		requestTimeout = flag.Duration("request-timeout", 0, "per-request deadline (0 = default)")
		drainTimeout   = flag.Duration("drain-timeout", 0, "graceful-drain budget on shutdown (0 = default)")
		parallelism    = flag.Int("parallelism", 0, "search workers per query (0 = GOMAXPROCS)")
	)
	flag.Parse()

	vectors, err := loadVectors(*data, *cats, *perCat, *dim, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	db, err := qcluster.NewDatabaseWithOptions(vectors, qcluster.IndexOptions{
		SearchParallelism: *parallelism,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building database: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("collection ready: %d vectors, %d dims\n", db.Len(), db.Dim())

	opt := server.Options{
		MaxSessions:    *maxSessions,
		SessionTTL:     *sessionTTL,
		MaxInFlight:    *maxInFlight,
		QueueWait:      *queueWait,
		RequestTimeout: *requestTimeout,
		DrainTimeout:   *drainTimeout,
	}
	s, err := server.Start(*addr, db, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starting server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving on %s (GOMAXPROCS=%d)\n", s.Addr(), runtime.GOMAXPROCS(0))
	if *ops != "" {
		opsSrv, err := s.ServeOps(*ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starting ops server: %v\n", err)
			os.Exit(1)
		}
		defer opsSrv.Close()
		fmt.Printf("ops on %s (/metrics, /debug/vars, /debug/pprof)\n", opsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("%s: draining...\n", got)
	start := time.Now()
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("drained in %s\n", time.Since(start).Round(time.Millisecond))
}

// loadVectors reads a qgen snapshot (serving its color-moment feature
// space) or synthesizes a Gaussian mixture.
func loadVectors(path string, cats, perCat, dim int, seed int64) ([][]float64, error) {
	if path != "" {
		ds, err := dataset.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		vecs := ds.Vectors(dataset.ColorMoments)
		out := make([][]float64, len(vecs))
		for i, v := range vecs {
			out[i] = v
		}
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]float64, 0, cats*perCat)
	for c := 0; c < cats; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = rng.NormFloat64() * 5
		}
		for i := 0; i < perCat; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = center[d] + rng.NormFloat64()
			}
			vectors = append(vectors, v)
		}
	}
	return vectors, nil
}
