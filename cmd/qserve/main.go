// Command qserve exposes a Qcluster retrieval database over HTTP: a
// stateless k-NN search endpoint, durable vector ingest, and
// multi-tenant relevance-feedback sessions, with admission control,
// per-request deadlines and graceful drain on SIGINT/SIGTERM (see
// internal/server for the API).
//
// With -data the collection lives in a durable directory: writes go
// through a write-ahead log (acknowledged only after fsync), the store
// snapshots atomically in the background, and a restart — graceful or
// kill-9 — boots warm from snapshot + WAL replay with every
// acknowledged write intact. A first boot seeds the directory from a
// cmd/qgen snapshot (-dataset) or a synthetic Gaussian mixture
// (-n/-dim/-cats/-seed). Without -data the collection is memory-only:
//
//	qserve -addr :8080 -ops :8081 -data /var/lib/qserve
//	qserve -addr :8080 -cats 20 -percat 100 -dim 8          # ephemeral
//
// Endpoints (JSON):
//
//	POST   /v1/vectors                   durable ingest (single or batch)
//	POST   /v1/search                    stateless k-NN around an example
//	POST   /v1/sessions                  open a feedback session
//	GET    /v1/sessions/{id}/results     retrieve with the refined query
//	POST   /v1/sessions/{id}/feedback    mark relevant results
//	DELETE /v1/sessions/{id}             close a session
//	GET    /healthz                      liveness + capacity + durability
//
// A persistent disk error degrades the node to read-only: ingest
// returns 503, searches keep serving, and /healthz reports status
// "degraded" with the failure message.
//
// With -shards N the collection is partitioned into N scatter-gather
// shards (deterministic hash placement by id): searches fan out to all
// shards under one shared k-th-best bound and merge bit-identically to
// the unsharded answer, sessions pin to a consistent-hash home shard,
// and /healthz + /metrics carry per-shard blocks. Combined with -data,
// each shard keeps its own WAL directory under the data root.
//
// With -backend the k-NN execution path is selectable: tree (default,
// exact hybrid-tree), vafile (exact VA-file filter-and-refine) or ann
// (approximate HNSW-style graph over float32-quantized vectors with
// exact full-precision refinement of the candidates; recall tuned by
// -ann-ef). /healthz's info block and session-create responses report
// the active backend so clients know which contract results carry.
//
// With -plan the cost-based adaptive query planner picks the execution
// path per query (tree vs VA-file route, parallel leaf workers, metric
// batch size) from live per-route cost models, staying bit-identical on
// exact routes; -plan-approx additionally lets it route exact searches
// through the ANN graph (an explicit recall trade-in). Plan decisions
// and predicted-vs-actual cost surface under plan.* in /metrics.
//
// Every request is traced: qserve honors and propagates W3C
// traceparent headers, and -trace-sample exports span trees (admission
// queue, session lock, per-shard search legs, merge, encode) as JSON
// lines to -trace-log; slow requests are always kept regardless of the
// sampling rate. The -slow-threshold / -slowlog knobs size the
// slow-query ring served at /debug/slow on the ops port.
//
// The ops port (-ops) serves /debug/vars, /metrics (Prometheus text),
// /debug/slow and /debug/pprof with the server and database registries
// merged.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	qcluster "repro"
	"repro/internal/dataset"
	"repro/internal/faultinject"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/shard"
)

func main() {
	var (
		addr = flag.String("addr", ":8080", "API listen address")
		ops  = flag.String("ops", "", "ops listen address for /metrics, /debug/vars, /debug/pprof (empty to disable)")

		// Durability.
		data      = flag.String("data", "", "durable data directory: WAL + snapshots, warm restart (empty = memory-only)")
		walBatch  = flag.Int("wal-batch", 0, "max adds coalesced into one WAL fsync (0 = default)")
		walWait   = flag.Duration("wal-maxwait", 0, "max time an add waits for co-batchers before its fsync (0 = default)")
		snapBytes = flag.Int64("snapshot-bytes", 0, "WAL size that triggers a background snapshot rotation (0 = default, negative disables)")

		// First-boot / memory-only collection: snapshot or synthetic mixture.
		datasetPath = flag.String("dataset", "", "seed collection from a cmd/qgen dataset snapshot (optional)")
		cats        = flag.Int("cats", 16, "synthetic mixture: number of categories")
		perCat      = flag.Int("percat", 100, "synthetic mixture: vectors per category")
		dim         = flag.Int("dim", 8, "synthetic mixture: dimensionality")
		seed        = flag.Int64("seed", 2003, "synthetic mixture: random seed")

		// Serving knobs (zero = internal/server default).
		maxSessions    = flag.Int("max-sessions", 0, "session capacity before LRU eviction (0 = default)")
		sessionTTL     = flag.Duration("session-ttl", 0, "idle session lifetime (0 = default)")
		maxInFlight    = flag.Int("max-inflight", 0, "concurrent request cap (0 = default)")
		queueWait      = flag.Duration("queue-wait", 0, "max wait for an in-flight slot before shedding 429 (0 = default)")
		requestTimeout = flag.Duration("request-timeout", 0, "per-request deadline (0 = default)")
		drainTimeout   = flag.Duration("drain-timeout", 0, "graceful-drain budget on shutdown (0 = default)")
		parallelism    = flag.Int("parallelism", 0, "search workers per query (0 = GOMAXPROCS)")
		shards         = flag.Int("shards", 1, "partition the collection into N scatter-gather shards, bit-identical to unsharded (1 = unsharded)")

		// Search backend. The tree and vafile backends are exact; ann is
		// an HNSW-style graph over float32-quantized vectors whose
		// candidates are exactly refined at full precision (recall <= 1
		// controlled by -ann-ef, results bit-exact given the candidates).
		backend = flag.String("backend", "tree", "k-NN execution path: tree (exact), vafile (exact filter-and-refine), ann (approximate graph + exact refinement)")
		annM    = flag.Int("ann-m", 0, "ann: max graph degree above layer 0 (0 = 16)")
		annEf   = flag.Int("ann-ef", 0, "ann: query-time beam width efSearch, the recall/latency knob (0 = 64)")
		annEfc  = flag.Int("ann-efc", 0, "ann: construction beam width efConstruction (0 = 128)")
		annSeed = flag.Int64("ann-seed", 0, "ann: level-assignment seed (graph is deterministic given seed + insertion order)")

		// Adaptive query planning: per-query route + tuning selection from
		// live cost models. Exact-only by default; -plan-approx lets the
		// planner route exact entry points through the ANN graph.
		planAdaptive = flag.Bool("plan", false, "enable the cost-based adaptive query planner (per-query route + parallelism selection)")
		planApprox   = flag.Bool("plan-approx", false, "allow the planner to route exact searches through the ANN backend (results become approximate)")

		// Tracing and slow queries.
		traceSample = flag.Float64("trace-sample", 0, "head-sampling probability for span export, 0..1 (slow requests are always exported once a sink exists)")
		traceLog    = flag.String("trace-log", "", "span export destination: a JSON-lines file path, or '-' for stderr (implied stderr when -trace-sample > 0)")
		slowThresh  = flag.Duration("slow-threshold", 0, "request latency that counts as a slow query (0 = 250ms default, negative records every request)")
		slowLogSize = flag.Int("slowlog", 0, "slow-query ring entries served at /debug/slow (0 = 64 default, negative disables)")

		// Crash testing: SIGKILL this process when a named faultinject
		// point fires (optionally the Nth firing), so an external harness
		// can verify warm restart at exact durability boundaries.
		crash   = flag.String("crash", "", "SIGKILL at this faultinject point (e.g. wal.post-fsync); crash testing only")
		crashAt = flag.Int("crash-at", 1, "fire -crash on the Nth hit of the point")
	)
	flag.Parse()

	if *crash != "" {
		armCrash(*crash, *crashAt)
	}

	indexOpt := qcluster.IndexOptions{
		SearchParallelism: *parallelism,
		Backend:           qcluster.IndexBackend(*backend),
		ANN: qcluster.ANNOptions{
			M:              *annM,
			EfConstruction: *annEfc,
			EfSearch:       *annEf,
			Seed:           *annSeed,
		},
		Plan: qcluster.PlanOptions{
			Adaptive:    *planAdaptive,
			AllowApprox: *planApprox,
		},
	}
	opt := server.Options{
		MaxSessions:     *maxSessions,
		SessionTTL:      *sessionTTL,
		MaxInFlight:     *maxInFlight,
		QueueWait:       *queueWait,
		RequestTimeout:  *requestTimeout,
		DrainTimeout:    *drainTimeout,
		TraceSampleRate: *traceSample,
		SlowThreshold:   *slowThresh,
		SlowLogSize:     *slowLogSize,
	}
	if *traceLog != "" || *traceSample > 0 {
		var w io.Writer = os.Stderr
		if *traceLog != "" && *traceLog != "-" {
			f, err := os.OpenFile(*traceLog, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
			if err != nil {
				fmt.Fprintf(os.Stderr, "opening trace log: %v\n", err)
				os.Exit(1)
			}
			defer f.Close()
			w = f
		}
		opt.TraceSink = &traceSink{w: w}
	}

	var db *qcluster.Database
	var durable *qcluster.DurableDatabase
	var set *shard.Set
	if *shards > 1 {
		seedVecs, err := loadVectors(*datasetPath, *cats, *perCat, *dim, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if *data != "" {
			set, err = shard.Open(*data, *shards, qcluster.DurableOptions{
				Index:              indexOpt,
				Seed:               seedVecs,
				BatchSize:          *walBatch,
				MaxWait:            *walWait,
				SnapshotEveryBytes: *snapBytes,
			})
			if err != nil {
				fmt.Fprintf(os.Stderr, "opening sharded %s: %v\n", *data, err)
				os.Exit(1)
			}
			defer set.Close()
			fmt.Printf("durable sharded boot from %s: %d vectors, %d dims across %d shards\n",
				*data, set.Len(), set.Dim(), set.NumShards())
		} else {
			set, err = shard.New(seedVecs, *shards, indexOpt)
			if err != nil {
				fmt.Fprintf(os.Stderr, "building sharded set: %v\n", err)
				os.Exit(1)
			}
			fmt.Printf("sharded collection ready (memory-only): %d vectors, %d dims across %d shards\n",
				set.Len(), set.Dim(), set.NumShards())
		}
	} else if *data != "" {
		seedVecs, err := loadVectors(*datasetPath, *cats, *perCat, *dim, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		durable, err = qcluster.OpenDatabase(*data, qcluster.DurableOptions{
			Index:              indexOpt,
			Seed:               seedVecs,
			BatchSize:          *walBatch,
			MaxWait:            *walWait,
			SnapshotEveryBytes: *snapBytes,
		})
		if err != nil {
			fmt.Fprintf(os.Stderr, "opening %s: %v\n", *data, err)
			os.Exit(1)
		}
		defer durable.Close()
		db = durable.Database
		opt.Ingestor = durable
		h := durable.Health()
		fmt.Printf("durable boot from %s: %d vectors, %d dims (replayed %d records / %d vectors, truncated %d torn bytes)\n",
			*data, h.Items, db.Dim(), h.ReplayedRecords, h.ReplayedVectors, h.TruncatedBytes)
	} else {
		vectors, err := loadVectors(*datasetPath, *cats, *perCat, *dim, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		db, err = qcluster.NewDatabaseWithOptions(vectors, indexOpt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "building database: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("collection ready (memory-only): %d vectors, %d dims, backend %s\n",
			db.Len(), db.Dim(), db.IndexInfo().Backend)
	}

	var s *server.Server
	var err error
	if set != nil {
		s, err = server.StartSharded(*addr, set, opt)
	} else {
		s, err = server.Start(*addr, db, opt)
	}
	if err != nil {
		fmt.Fprintf(os.Stderr, "starting server: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("serving on %s (GOMAXPROCS=%d)\n", s.Addr(), runtime.GOMAXPROCS(0))
	if *ops != "" {
		opsSrv, err := s.ServeOps(*ops)
		if err != nil {
			fmt.Fprintf(os.Stderr, "starting ops server: %v\n", err)
			os.Exit(1)
		}
		defer opsSrv.Close()
		fmt.Printf("ops on %s (/metrics, /debug/vars, /debug/pprof)\n", opsSrv.Addr())
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
	got := <-sig
	fmt.Printf("%s: draining...\n", got)
	start := time.Now()
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "drain: %v\n", err)
		os.Exit(1)
	}
	if durable != nil {
		// Checkpoint so the next boot needs no replay; a failure here is
		// not data loss (the WAL already has everything), just a slower
		// restart.
		if err := durable.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "final checkpoint: %v (next boot will replay the WAL)\n", err)
		}
	}
	if set != nil && set.Durable() {
		if err := set.Checkpoint(); err != nil {
			fmt.Fprintf(os.Stderr, "final checkpoint: %v (next boot will replay the WALs)\n", err)
		}
	}
	fmt.Printf("drained in %s\n", time.Since(start).Round(time.Millisecond))
}

// traceSink writes each span event as one self-contained JSON object
// per line — greppable by trace_id, tail-able, no collector required.
type traceSink struct {
	mu sync.Mutex
	w  io.Writer
}

// Emit implements obs.Sink.
func (s *traceSink) Emit(e obs.Event) {
	m := make(map[string]any, 3+len(e.Fields))
	m["ts"] = e.Time.Format(time.RFC3339Nano)
	m["span"] = e.Span
	m["event"] = e.Name
	for _, f := range e.Fields {
		m[f.Key] = f.Value
	}
	blob, err := json.Marshal(m)
	if err != nil {
		return
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	_, _ = s.w.Write(append(blob, '\n'))
}

// armCrash installs a faultinject hook that SIGKILLs the process on the
// n-th firing of point — no deferred functions, no flushes, exactly the
// kill-9 the durability design must survive.
func armCrash(point string, n int) {
	if n < 1 {
		n = 1
	}
	var hits atomic.Int64
	faultinject.Set(point, func() {
		if hits.Add(1) == int64(n) {
			fmt.Fprintf(os.Stderr, "crash point %s hit %s: SIGKILL\n", point, strconv.Itoa(n))
			_ = syscall.Kill(os.Getpid(), syscall.SIGKILL)
			select {} // unreachable: SIGKILL is not catchable
		}
	})
}

// loadVectors reads a qgen snapshot (serving its color-moment feature
// space) or synthesizes a Gaussian mixture.
func loadVectors(path string, cats, perCat, dim int, seed int64) ([][]float64, error) {
	if path != "" {
		ds, err := dataset.LoadFile(path)
		if err != nil {
			return nil, fmt.Errorf("loading %s: %w", path, err)
		}
		vecs := ds.Vectors(dataset.ColorMoments)
		out := make([][]float64, len(vecs))
		for i, v := range vecs {
			out[i] = v
		}
		return out, nil
	}
	rng := rand.New(rand.NewSource(seed))
	vectors := make([][]float64, 0, cats*perCat)
	for c := 0; c < cats; c++ {
		center := make([]float64, dim)
		for d := range center {
			center[d] = rng.NormFloat64() * 5
		}
		for i := 0; i < perCat; i++ {
			v := make([]float64, dim)
			for d := range v {
				v[d] = center[d] + rng.NormFloat64()
			}
			vectors = append(vectors, v)
		}
	}
	return vectors, nil
}
