package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	qcluster "repro"
)

// The ingest experiment measures the durable write path end to end:
// concurrent writers push single-vector Adds through the ingest batcher
// (each acknowledged only after its WAL record is fsynced) while
// searchers keep querying the same database, sweeping the fsync-batch
// size to expose the group-commit trade-off — larger batches amortize
// fsyncs into higher sustained QPS, at the cost of ack latency under
// light load. It writes a machine-readable BENCH_ingest.json (schema in
// EXPERIMENTS.md).

type ingestPhase struct {
	BatchSize       int     `json:"batch_size"`
	Writers         int     `json:"writers"`
	Searchers       int     `json:"searchers"`
	Acked           int64   `json:"acked"`
	Fsyncs          int64   `json:"fsyncs"`
	WALRecords      int64   `json:"wal_records"`
	WALBytes        int64   `json:"wal_bytes"`
	Rotations       int64   `json:"rotations"`
	MeanRecordVecs  float64 `json:"mean_record_vecs"`
	IngestQPS       float64 `json:"ingest_qps"`
	AckP50Ms        float64 `json:"ack_p50_ms"`
	AckP95Ms        float64 `json:"ack_p95_ms"`
	SearchP50Ms     float64 `json:"search_p50_ms"`
	SearchP95Ms     float64 `json:"search_p95_ms"`
	Searches        int64   `json:"searches"`
	DurationSeconds float64 `json:"duration_seconds"`
}

type ingestReport struct {
	Schema  string        `json:"schema"`
	SeedN   int           `json:"seed_n"`
	Dim     int           `json:"dim"`
	IngestN int           `json:"ingest_n"`
	K       int           `json:"k"`
	Seed    int64         `json:"seed"`
	Phases  []ingestPhase `json:"phases"`
}

func (r *runner) ingestBench() {
	const dim = 8
	seedN := 1024
	ingestN := r.cfg.ingestN
	rng := rand.New(rand.NewSource(r.cfg.seed))
	seed := make([][]float64, seedN)
	for i := range seed {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		seed[i] = v
	}

	// Writers are closed-loop (each blocks on its ack), so the natural
	// batch size is the number of writers that enqueue during one
	// fsync — keep the pool well above the core count so group commit
	// has co-batchers to merge even on small machines.
	writers := 4 * runtime.GOMAXPROCS(0)
	if writers > 16 {
		writers = 16
	}
	if writers < 8 {
		writers = 8
	}
	searchers := 2
	report := ingestReport{
		Schema:  "qcluster-bench-ingest/v1",
		SeedN:   seedN,
		Dim:     dim,
		IngestN: ingestN,
		K:       10,
		Seed:    r.cfg.seed,
	}
	fmt.Printf("durable ingest benchmark: %d writers + %d searchers, %d vectors per phase, dim=%d\n\n",
		writers, searchers, ingestN, dim)
	fmt.Printf("%-6s %10s %8s %8s %10s %10s %10s %10s\n",
		"batch", "acked", "fsyncs", "rec/fs", "qps", "ack p95", "srch p95", "rotations")

	for _, batch := range []int{1, 8, 64, 256} {
		ph := runIngestPhase(r.cfg.seed, seed, batch, writers, searchers, ingestN)
		report.Phases = append(report.Phases, ph)
		fmt.Printf("%-6d %10d %8d %8.1f %10.0f %8.2fms %8.2fms %10d\n",
			ph.BatchSize, ph.Acked, ph.Fsyncs, ph.MeanRecordVecs,
			ph.IngestQPS, ph.AckP95Ms, ph.SearchP95Ms, ph.Rotations)
	}

	if r.cfg.ingestOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.ingestOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.ingestOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.ingestOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", r.cfg.ingestOut)
	}
}

// runIngestPhase opens a fresh durable directory and drives it with the
// mixed writer/searcher pool until ingestN vectors are acked.
func runIngestPhase(seed int64, seedVecs [][]float64, batch, writers, searchers, ingestN int) ingestPhase {
	dir, err := os.MkdirTemp("", "qbench-ingest-*")
	if err != nil {
		fmt.Fprintf(os.Stderr, "temp dir: %v\n", err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	d, err := qcluster.OpenDatabase(dir, qcluster.DurableOptions{
		Seed:      seedVecs,
		BatchSize: batch,
		MaxWait:   500 * time.Microsecond,
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "opening durable db: %v\n", err)
		os.Exit(1)
	}
	defer d.Close()
	dim := len(seedVecs[0])

	perWriter := ingestN / writers
	ackLat := make([][]float64, writers)
	searchLat := make([][]float64, searchers)
	stop := make(chan struct{})
	start := time.Now()
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed + int64(w)*7919))
			lat := make([]float64, 0, perWriter)
			v := make([]float64, dim)
			for i := 0; i < perWriter; i++ {
				for dd := range v {
					v[dd] = rng.NormFloat64()
				}
				t0 := time.Now()
				if _, err := d.Add(v); err != nil {
					fmt.Fprintf(os.Stderr, "durable add: %v\n", err)
					os.Exit(1)
				}
				lat = append(lat, time.Since(t0).Seconds())
			}
			ackLat[w] = lat
		}(w)
	}
	var searchWG sync.WaitGroup
	for s := 0; s < searchers; s++ {
		searchWG.Add(1)
		go func(s int) {
			defer searchWG.Done()
			rng := rand.New(rand.NewSource(seed + 1e6 + int64(s)))
			var lat []float64
			p := make([]float64, dim)
			for {
				select {
				case <-stop:
					searchLat[s] = lat
					return
				default:
				}
				for dd := range p {
					p[dd] = rng.NormFloat64()
				}
				t0 := time.Now()
				if res := d.SearchByExample(p, 10); len(res) == 0 {
					fmt.Fprintln(os.Stderr, "concurrent search returned nothing")
					os.Exit(1)
				}
				lat = append(lat, time.Since(t0).Seconds())
			}
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)
	close(stop)
	searchWG.Wait()

	snap := d.Metrics()
	acks := flatten(ackLat)
	srch := flatten(searchLat)
	sort.Float64s(acks)
	sort.Float64s(srch)
	ph := ingestPhase{
		BatchSize:       batch,
		Writers:         writers,
		Searchers:       searchers,
		Acked:           snap.Counters["ingest.acked"],
		Fsyncs:          snap.Counters["wal.fsyncs"],
		WALRecords:      snap.Counters["wal.records"],
		WALBytes:        snap.Counters["wal.bytes"],
		Rotations:       snap.Counters["wal.rotations"],
		IngestQPS:       float64(len(acks)) / elapsed.Seconds(),
		AckP50Ms:        quantile(acks, 0.50) * 1e3,
		AckP95Ms:        quantile(acks, 0.95) * 1e3,
		SearchP50Ms:     quantile(srch, 0.50) * 1e3,
		SearchP95Ms:     quantile(srch, 0.95) * 1e3,
		Searches:        int64(len(srch)),
		DurationSeconds: elapsed.Seconds(),
	}
	if ph.WALRecords > 0 {
		ph.MeanRecordVecs = float64(ph.Acked) / float64(ph.WALRecords)
	}
	return ph
}

func flatten(groups [][]float64) []float64 {
	var out []float64
	for _, g := range groups {
		out = append(out, g...)
	}
	return out
}
