package main

import (
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/distance"
	"repro/internal/linalg"
)

// The kernel experiment measures raw candidate-evaluation throughput:
// the scalar Metric.Eval loop against the batched, bound-aware
// BatchMetric kernels, each sweeping the same contiguous collection with
// a running top-k pruning bound. It isolates the distance kernels from
// index traversal, so the batch/abandonment win is measured directly,
// and writes BENCH_kernel.json (schema in EXPERIMENTS.md).

// kernelSide is one evaluation mode's measurements over a cell.
type kernelSide struct {
	MeanMs      float64 `json:"mean_ms"`
	EvalsPerSec float64 `json:"evals_per_sec"`
}

// kernelCell is one (scheme, dim) workload.
type kernelCell struct {
	Scheme           string     `json:"scheme"`
	Dim              int        `json:"dim"`
	Scalar           kernelSide `json:"scalar"`
	Batch            kernelSide `json:"batch"`
	AbandonedFrac    float64    `json:"abandoned_frac"`
	Speedup          float64    `json:"speedup"`
	IdenticalResults bool       `json:"identical_results"`
}

// kernelReport is the BENCH_kernel.json document.
type kernelReport struct {
	Schema     string       `json:"schema"`
	GoMaxProcs int          `json:"go_max_procs"`
	N          int          `json:"n"`
	K          int          `json:"k"`
	Queries    int          `json:"queries"`
	Seed       int64        `json:"seed"`
	Cells      []kernelCell `json:"cells"`
}

func (r *runner) kernelBench() {
	report := kernelReport{
		Schema:     "qcluster-bench-kernel/v1",
		GoMaxProcs: runtime.GOMAXPROCS(0),
		N:          r.cfg.kernelN,
		K:          r.cfg.k,
		Queries:    r.cfg.queries,
		Seed:       r.cfg.seed,
	}
	fmt.Printf("distance kernels: n=%d, k=%d, %d queries/cell\n\n", report.N, report.K, report.Queries)
	fmt.Printf("%-12s %4s | %14s | %14s | %7s %9s %6s\n",
		"scheme", "dim", "scalar Mev/s", "batch Mev/s", "speedup", "abandoned", "equal")
	identical := true
	for _, scheme := range []string{"euclidean", "quad-diag", "quad-full", "disjunctive"} {
		for _, dim := range []int{8, 32} {
			cell := runKernelCell(scheme, report.N, dim, report.K, report.Queries, report.Seed)
			report.Cells = append(report.Cells, cell)
			identical = identical && cell.IdenticalResults
			fmt.Printf("%-12s %4d | %14.2f | %14.2f | %6.2fx %8.1f%% %6v\n",
				cell.Scheme, cell.Dim,
				cell.Scalar.EvalsPerSec/1e6, cell.Batch.EvalsPerSec/1e6,
				cell.Speedup, 100*cell.AbandonedFrac, cell.IdenticalResults)
		}
	}
	if r.cfg.kernelOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.kernelOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.kernelOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.kernelOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", r.cfg.kernelOut)
	}
	if !identical {
		fmt.Fprintln(os.Stderr, "kernel: batch results diverged from scalar — bit-identity contract violated")
		os.Exit(1)
	}
}

// kernelMetric builds one metric of the named scheme with a random query
// model at the given dimension.
func kernelMetric(scheme string, rng *rand.Rand, dim int) distance.Metric {
	center := func() linalg.Vector {
		c := make(linalg.Vector, dim)
		for d := range c {
			c[d] = rng.NormFloat64() * 3
		}
		return c
	}
	spd := func() *linalg.Matrix {
		a := linalg.NewMatrix(dim, dim)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		m := a.Mul(a.T())
		for i := 0; i < dim; i++ {
			m.Data[i*dim+i] += float64(dim) * 0.25
		}
		return m
	}
	switch scheme {
	case "euclidean":
		return &distance.Euclidean{Center: center()}
	case "quad-diag":
		w := make(linalg.Vector, dim)
		for i := range w {
			w[i] = 0.2 + rng.Float64()
		}
		return distance.NewQuadraticDiag(center(), w)
	case "quad-full":
		return distance.NewQuadraticFull(center(), spd())
	case "disjunctive":
		parts := make([]*distance.Quadratic, 3)
		ws := make([]float64, len(parts))
		for i := range parts {
			parts[i] = distance.NewQuadraticFull(center(), spd())
			ws[i] = 1 + rng.Float64()
		}
		return distance.NewDisjunctive(parts, ws)
	default:
		panic("unknown kernel scheme " + scheme)
	}
}

// kernelBatchChunk is how many candidates each EvalBatch call covers in
// the linear sweep: the pruning bound refreshes between chunks.
const kernelBatchChunk = 256

// runKernelCell sweeps one random collection with every query in both
// modes and checks the top-k sets match exactly.
func runKernelCell(scheme string, n, dim, k, queries int, seed int64) kernelCell {
	rng := rand.New(rand.NewSource(seed + int64(131*dim) + int64(len(scheme))))
	flat := make([]float64, n*dim)
	for i := range flat {
		flat[i] = rng.NormFloat64() * 3
	}
	metrics := make([]distance.Metric, queries)
	for i := range metrics {
		metrics[i] = kernelMetric(scheme, rng, dim)
	}

	cell := kernelCell{Scheme: scheme, Dim: dim, IdenticalResults: true}
	out := make([]float64, kernelBatchChunk)
	var scalarTotal, batchTotal time.Duration
	var abandoned, batched int64
	for _, m := range metrics {
		t0 := time.Now()
		hs := newTopK(k)
		for id := 0; id < n; id++ {
			hs.offer(id, m.Eval(linalg.Vector(flat[id*dim:(id+1)*dim])))
		}
		scalarTotal += time.Since(t0)

		bm := m.(distance.BatchMetric)
		t0 = time.Now()
		hb := newTopK(k)
		for start := 0; start < n; start += kernelBatchChunk {
			end := start + kernelBatchChunk
			if end > n {
				end = n
			}
			bound := hb.bound()
			chunk := out[:end-start]
			bm.EvalBatch(flat[start*dim:end*dim], dim, bound, chunk)
			finite := !math.IsInf(bound, 1)
			for j, d := range chunk {
				if finite && math.IsInf(d, 1) {
					abandoned++
					continue
				}
				hb.offer(start+j, d)
			}
		}
		batchTotal += time.Since(t0)
		batched += int64(n)

		ws, gs := hs.sorted(), hb.sorted()
		if len(ws) != len(gs) {
			cell.IdenticalResults = false
		} else {
			for i := range ws {
				if ws[i] != gs[i] {
					cell.IdenticalResults = false
					break
				}
			}
		}
	}
	evals := int64(n) * int64(queries)
	cell.Scalar = kernelSide{
		MeanMs:      scalarTotal.Seconds() * 1e3 / float64(queries),
		EvalsPerSec: float64(evals) / scalarTotal.Seconds(),
	}
	cell.Batch = kernelSide{
		MeanMs:      batchTotal.Seconds() * 1e3 / float64(queries),
		EvalsPerSec: float64(evals) / batchTotal.Seconds(),
	}
	if batchTotal > 0 {
		cell.Speedup = scalarTotal.Seconds() / batchTotal.Seconds()
	}
	if batched > 0 {
		cell.AbandonedFrac = float64(abandoned) / float64(batched)
	}
	return cell
}

// topK is a bounded max-heap keeping the k smallest (dist, id) pairs
// under the same (Dist, ID) total order as the index's result heap, so
// scalar and batch sweeps are compared on deterministic sets.
type topK struct {
	k     int
	dists []float64
	ids   []int
}

func newTopK(k int) *topK { return &topK{k: k} }

func (h *topK) less(d float64, id int, j int) bool {
	if d != h.dists[j] {
		return d < h.dists[j]
	}
	return id < h.ids[j]
}

// bound returns the k-th best distance, or +Inf while filling.
func (h *topK) bound() float64 {
	if len(h.dists) < h.k {
		return math.Inf(1)
	}
	return h.dists[0]
}

func (h *topK) offer(id int, d float64) {
	if len(h.dists) < h.k {
		h.dists = append(h.dists, d)
		h.ids = append(h.ids, id)
		i := len(h.dists) - 1
		for i > 0 {
			p := (i - 1) / 2
			if !h.less(h.dists[p], h.ids[p], i) {
				break
			}
			h.swap(p, i)
			i = p
		}
		return
	}
	if !h.less(d, id, 0) {
		return
	}
	h.dists[0], h.ids[0] = d, id
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < len(h.dists) && h.less(h.dists[largest], h.ids[largest], l) {
			largest = l
		}
		if r < len(h.dists) && h.less(h.dists[largest], h.ids[largest], r) {
			largest = r
		}
		if largest == i {
			return
		}
		h.swap(i, largest)
		i = largest
	}
}

func (h *topK) swap(i, j int) {
	h.dists[i], h.dists[j] = h.dists[j], h.dists[i]
	h.ids[i], h.ids[j] = h.ids[j], h.ids[i]
}

type kernelResult struct {
	id   int
	dist float64
}

func (h *topK) sorted() []kernelResult {
	out := make([]kernelResult, len(h.dists))
	for i := range out {
		out[i] = kernelResult{id: h.ids[i], dist: h.dists[i]}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].dist != out[b].dist {
			return out[a].dist < out[b].dist
		}
		return out[a].id < out[b].id
	})
	return out
}
