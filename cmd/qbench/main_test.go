package main

import "testing"

func TestExpandExperiments(t *testing.T) {
	all := expandExperiments("all")
	if len(all) != 17 {
		t.Errorf("all expands to %d experiments", len(all))
	}
	got := expandExperiments(" fig5, table2 ,,fig10v ")
	want := []string{"fig5", "table2", "fig10v"}
	if len(got) != len(want) {
		t.Fatalf("got %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("got[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	if out := expandExperiments(""); len(out) != 0 {
		t.Errorf("empty spec expands to %v", out)
	}
}

func TestExperimentRegistryComplete(t *testing.T) {
	r := newRunner(config{})
	// Every id "all" expands to must be registered...
	for _, id := range expandExperiments("all") {
		if _, ok := r.experiments[id]; !ok {
			t.Errorf("experiment %q in 'all' but not registered", id)
		}
	}
	// ...and the extras must exist too.
	for _, id := range []string{"fig10v", "fig12v", "fig10c", "fig12c", "ablation", "convergence", "search", "obs"} {
		if _, ok := r.experiments[id]; !ok {
			t.Errorf("experiment %q not registered", id)
		}
	}
}

func TestEngineFactoriesFresh(t *testing.T) {
	// Each factory call must return an independent engine instance.
	for name, mk := range engineFactories {
		a, b := mk(), mk()
		if a == b {
			t.Errorf("factory %q returned a shared instance", name)
		}
		if a.Name() == "" {
			t.Errorf("factory %q engine has empty name", name)
		}
	}
}

func TestSyntheticExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("runs real experiments")
	}
	// Smoke: the dataset-free experiments run end to end without
	// panicking at tiny scale.
	r := newRunner(config{queries: 2, iters: 1, k: 10, pairs: 4, trials: 1, seed: 1})
	for _, id := range []string{"fig5", "fig18", "table2"} {
		r.experiments[id]()
	}
}
