package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	qcluster "repro"
	"repro/internal/faultinject"
	"repro/internal/server"
)

// The serve experiment drives the HTTP serving layer closed-loop: a
// pool of concurrent simulated users each opens a session and runs
// feedback rounds over real localhost HTTP, under three regimes —
// "steady" (capacity ample: baseline latency), "pressure" (tiny
// in-flight cap: admission control must shed with 429), and "churn"
// (session capacity below the user count: LRU eviction mid-run, users
// recreate on 404). It writes a machine-readable BENCH_serve.json
// (schema in EXPERIMENTS.md).

type servePhase struct {
	Phase           string  `json:"phase"`
	Users           int     `json:"users"`
	Rounds          int     `json:"rounds"`
	MaxInFlight     int     `json:"max_in_flight"`
	MaxSessions     int     `json:"max_sessions"`
	QueueWaitMs     float64 `json:"queue_wait_ms"`
	Requests        int64   `json:"requests"`
	Shed            int64   `json:"shed"`
	ShedRate        float64 `json:"shed_rate"`
	Errors5xx       int64   `json:"errors_5xx"`
	EvictedLRU      int64   `json:"evicted_lru"`
	FeedbackRounds  int64   `json:"feedback_rounds"`
	LatencyP50Ms    float64 `json:"latency_p50_ms"`
	LatencyP99Ms    float64 `json:"latency_p99_ms"`
	QueueWaitP99Ms  float64 `json:"queue_wait_p99_ms"`
	DurationSeconds float64 `json:"duration_seconds"`
	ThroughputRPS   float64 `json:"throughput_rps"`
	DrainSeconds    float64 `json:"drain_seconds"`
}

type serveReport struct {
	Schema string       `json:"schema"`
	N      int          `json:"n"`
	Dim    int          `json:"dim"`
	Users  int          `json:"users"`
	Rounds int          `json:"rounds"`
	K      int          `json:"k"`
	Seed   int64        `json:"seed"`
	Phases []servePhase `json:"phases"`
}

func (r *runner) serveBench() {
	const dim = 8
	cats := r.cfg.cats
	if cats > 16 {
		cats = 16 // the experiment measures the serving layer, not recall
	}
	perCat := r.cfg.perCat
	rng := rand.New(rand.NewSource(r.cfg.seed))
	vectors, labels := obsWorld(rng, cats, perCat, dim)
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building collection: %v\n", err)
		os.Exit(1)
	}

	users := r.cfg.users
	rounds := r.cfg.iters
	if rounds < 3 {
		rounds = 3
	}
	k := r.cfg.k
	report := serveReport{
		Schema: "qcluster-bench-serve/v1",
		N:      len(vectors),
		Dim:    dim,
		Users:  users,
		Rounds: rounds,
		K:      k,
		Seed:   r.cfg.seed,
	}
	fmt.Printf("closed-loop serving benchmark: %d users x %d feedback rounds, k=%d, N=%d dim=%d\n\n",
		users, rounds, k, report.N, dim)

	phases := []struct {
		name string
		opt  server.Options
		// slowPop injects per-heap-pop latency through the fault-
		// injection hook so each query costs real wall time even on the
		// tiny benchmark collection — the only way to saturate the
		// in-flight cap deterministically on a single-core machine.
		slowPop time.Duration
	}{
		// Ample capacity: baseline end-to-end latency, no shedding.
		{"steady", server.Options{
			MaxSessions: 4 * users,
			MaxInFlight: runtime.GOMAXPROCS(0) * 4,
			QueueWait:   time.Second,
		}, 0},
		// Starved in-flight cap with immediate shed (negative queue
		// wait) against artificially expensive queries: admission
		// control must reject the excess with 429 instead of queueing.
		{"pressure", server.Options{
			MaxSessions: 4 * users,
			MaxInFlight: 1,
			QueueWait:   -time.Millisecond,
		}, 50 * time.Microsecond},
		// Session capacity below the user count: LRU eviction fires
		// mid-run and users transparently recreate their sessions.
		{"churn", server.Options{
			MaxSessions:  users/4 + 1,
			ReapInterval: 20 * time.Millisecond,
			MaxInFlight:  runtime.GOMAXPROCS(0) * 4,
			QueueWait:    time.Second,
		}, 0},
	}
	fmt.Printf("%-9s %9s %7s %9s %8s %9s %9s %10s %8s\n",
		"phase", "requests", "shed", "evicted", "5xx", "p50 ms", "p99 ms", "rps", "drain s")
	for _, ph := range phases {
		if ph.slowPop > 0 {
			d := ph.slowPop
			faultinject.Set(faultinject.KNNPop, func() { time.Sleep(d) })
		}
		stats := runServePhase(db, labels, ph.name, ph.opt, users, rounds, k)
		if ph.slowPop > 0 {
			faultinject.Clear(faultinject.KNNPop)
		}
		report.Phases = append(report.Phases, stats)
		fmt.Printf("%-9s %9d %7d %9d %8d %9.2f %9.2f %10.0f %8.3f\n",
			stats.Phase, stats.Requests, stats.Shed, stats.EvictedLRU, stats.Errors5xx,
			stats.LatencyP50Ms, stats.LatencyP99Ms, stats.ThroughputRPS, stats.DrainSeconds)
	}

	if r.cfg.serveOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.serveOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.serveOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.serveOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", r.cfg.serveOut)
	}
}

// runServePhase starts a fresh server on a loopback port, drives it with
// the closed-loop user pool, and reads the verdict off the server's own
// metrics registry before draining it.
func runServePhase(db *qcluster.Database, labels []int, name string, opt server.Options, users, rounds, k int) servePhase {
	s, err := server.Start("127.0.0.1:0", db, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starting %s server: %v\n", name, err)
		os.Exit(1)
	}
	base := "http://" + s.Addr()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: users}}

	var failed atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			if !serveUser(client, base, labels, u, rounds, k) {
				failed.Add(1)
			}
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)
	if n := failed.Load(); n > 0 {
		fmt.Fprintf(os.Stderr, "phase %s: %d users failed outside the expected 404/429 classes\n", name, n)
		os.Exit(1)
	}

	snap := s.Metrics()
	// Release the client's keep-alive connections first so Shutdown
	// doesn't have to wait out spare never-used connections.
	client.CloseIdleConnections()
	drainStart := time.Now()
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "draining %s server: %v\n", name, err)
		os.Exit(1)
	}
	o := opt
	lat := snap.Histograms["server.request_latency_seconds"]
	qw := snap.Histograms["server.queue_wait_seconds"]
	ph := servePhase{
		Phase:           name,
		Users:           users,
		Rounds:          rounds,
		MaxInFlight:     o.MaxInFlight,
		MaxSessions:     o.MaxSessions,
		QueueWaitMs:     float64(o.QueueWait) / float64(time.Millisecond),
		Requests:        snap.Counters["server.requests"],
		Shed:            snap.Counters["server.shed"],
		Errors5xx:       snap.Counters["server.errors_5xx"],
		EvictedLRU:      snap.Counters["sessions.evicted_lru"],
		FeedbackRounds:  snap.Counters["sessions.feedback_rounds"],
		LatencyP50Ms:    lat.Quantile(0.50) * 1e3,
		LatencyP99Ms:    lat.Quantile(0.99) * 1e3,
		QueueWaitP99Ms:  qw.Quantile(0.99) * 1e3,
		DurationSeconds: elapsed.Seconds(),
		DrainSeconds:    time.Since(drainStart).Seconds(),
	}
	if ph.Requests > 0 {
		ph.ShedRate = float64(ph.Shed) / float64(ph.Requests+ph.Shed)
		ph.ThroughputRPS = float64(ph.Requests) / elapsed.Seconds()
	}
	return ph
}

// serveUser runs one simulated user: create a session, then alternate
// retrieve -> mark-relevant for the requested number of rounds, riding
// through 429 (shed: back off and retry) and 404 (evicted: recreate the
// session). Returns false on any other failure.
func serveUser(client *http.Client, base string, labels []int, u, rounds, k int) bool {
	exID := (u * 131) % len(labels)
	cat := labels[exID]
	post := func(path string, body, out any) (int, error) {
		blob, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := client.Post(base+path, "application/json", bytes.NewReader(blob))
		if err != nil {
			return 0, err
		}
		defer resp.Body.Close()
		raw, err := io.ReadAll(resp.Body)
		if err != nil {
			return resp.StatusCode, err
		}
		if out != nil && resp.StatusCode < 300 {
			return resp.StatusCode, json.Unmarshal(raw, out)
		}
		return resp.StatusCode, nil
	}
	type createResp struct {
		SessionID string `json:"session_id"`
	}
	createSession := func() (string, bool) {
		var created createResp
		for attempt := 0; attempt < 500; attempt++ {
			st, err := post("/v1/sessions", map[string]any{"example_id": exID}, &created)
			switch {
			case err != nil:
				return "", false
			case st == 201:
				return created.SessionID, true
			case st == 429:
				time.Sleep(time.Millisecond)
			default:
				return "", false
			}
		}
		return "", false
	}
	id, ok := createSession()
	if !ok {
		return false
	}
	type resultsResp struct {
		Results []struct {
			ID int `json:"id"`
		} `json:"results"`
	}
	for round := 0; round < rounds; round++ {
		var res resultsResp
		for attempt := 0; ; attempt++ {
			if attempt > 1000 {
				return false
			}
			resp, err := client.Get(fmt.Sprintf("%s/v1/sessions/%s/results?k=%d", base, id, k))
			if err != nil {
				return false
			}
			raw, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == 200 || resp.StatusCode == 206 {
				if json.Unmarshal(raw, &res) != nil {
					return false
				}
				break
			}
			switch resp.StatusCode {
			case 404:
				if id, ok = createSession(); !ok {
					return false
				}
			case 429:
				time.Sleep(time.Millisecond)
			default:
				return false
			}
		}
		var points []map[string]any
		for _, rr := range res.Results {
			if labels[rr.ID] == cat {
				points = append(points, map[string]any{"id": rr.ID, "score": 3})
			}
		}
		if len(points) == 0 {
			points = append(points, map[string]any{"id": exID, "score": 3})
		}
		for attempt := 0; ; attempt++ {
			if attempt > 1000 {
				return false
			}
			st, err := post("/v1/sessions/"+id+"/feedback", map[string]any{"points": points}, nil)
			if err != nil {
				return false
			}
			if st == 200 {
				break
			}
			switch st {
			case 404:
				if id, ok = createSession(); !ok {
					return false
				}
			case 429:
				time.Sleep(time.Millisecond)
			default:
				return false
			}
		}
	}
	return true
}
