package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	qcluster "repro"
	"repro/internal/shard"
)

// The shard experiment measures the scatter-gather serving tier
// (internal/shard): the same collection is searched unsharded (the
// 1-shard control) and partitioned into 2/4/8 scatter-gather shards,
// sweeping shard count x concurrent users. Before any timing it runs a
// bit-identity check — every sharded top-k must equal the control's
// bit-for-bit (ids, distance bits, order) — and exits non-zero on any
// divergence, which is the CI gate. It writes BENCH_shard.json (schema
// in EXPERIMENTS.md).

type shardCell struct {
	Shards  int     `json:"shards"` // 1 = unsharded control
	Users   int     `json:"users"`
	Queries int     `json:"queries"`
	QPS     float64 `json:"qps"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

type shardReport struct {
	Schema       string `json:"schema"`
	N            int    `json:"n"`
	Dim          int    `json:"dim"`
	K            int    `json:"k"`
	Seed         int64  `json:"seed"`
	GOMAXPROCS   int    `json:"gomaxprocs"`
	CheckQueries int    `json:"check_queries"`
	// IdenticalResults is the bit-identity verdict: every sharded
	// configuration reproduced the unsharded top-k exactly on every
	// check query. The experiment exits non-zero when false.
	IdenticalResults bool        `json:"identical_results"`
	Sweep            []shardCell `json:"sweep"`
	// Headline: best multi-shard QPS over the 1-shard control at the
	// same user count.
	BaselineQPS float64 `json:"baseline_qps"`
	BestQPS     float64 `json:"best_multi_shard_qps"`
	BestShards  int     `json:"best_multi_shard_count"`
	Speedup     float64 `json:"multi_shard_speedup"`
}

func (r *runner) shardBench() {
	const dim = 8
	n := r.cfg.shardN
	k := r.cfg.k
	seed := r.cfg.seed
	vectors := shardWorld(n, dim, seed)

	control, err := qcluster.NewDatabase(vectors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building control: %v\n", err)
		os.Exit(1)
	}
	shardCounts := []int{2, 4, 8}
	sets := make(map[int]*shard.Set, len(shardCounts))
	for _, sc := range shardCounts {
		set, err := shard.New(vectors, sc, qcluster.IndexOptions{})
		if err != nil {
			fmt.Fprintf(os.Stderr, "building %d-shard set: %v\n", sc, err)
			os.Exit(1)
		}
		sets[sc] = set
	}

	report := shardReport{
		Schema:     "qcluster-bench-shard/v1",
		N:          n,
		Dim:        dim,
		K:          k,
		Seed:       seed,
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}

	// Bit-identity gate first: timing a diverging implementation would
	// be timing a bug.
	checks := r.cfg.queries
	if checks < 50 {
		checks = 50
	}
	report.CheckQueries = checks
	rng := rand.New(rand.NewSource(seed + 17))
	report.IdenticalResults = true
	for q := 0; q < checks; q++ {
		example := vectors[rng.Intn(n)]
		want, err := control.SearchByExampleContext(context.Background(), example, k)
		if err != nil {
			fmt.Fprintf(os.Stderr, "control query %d: %v\n", q, err)
			os.Exit(1)
		}
		for _, sc := range shardCounts {
			got, err := sets[sc].SearchByExampleContext(context.Background(), example, k)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%d-shard query %d: %v\n", sc, q, err)
				os.Exit(1)
			}
			if d := diverges(want, got); d != "" {
				report.IdenticalResults = false
				fmt.Fprintf(os.Stderr, "DIVERGENCE shards=%d query %d: %s\n", sc, q, d)
			}
		}
	}
	fmt.Printf("bit-identity check: %d queries x %v shard counts vs unsharded control: identical=%v\n\n",
		checks, shardCounts, report.IdenticalResults)

	// Throughput sweep: shard count x concurrent users, closed loop.
	userGrid := []int{1, r.cfg.users}
	if r.cfg.users <= 1 {
		userGrid = []int{1}
	}
	searchers := map[int]func(context.Context, []float64, int) ([]qcluster.Result, error){
		1: control.SearchByExampleContext,
	}
	for _, sc := range shardCounts {
		searchers[sc] = sets[sc].SearchByExampleContext
	}
	fmt.Printf("%-7s %6s %9s %10s %9s %9s\n", "shards", "users", "queries", "qps", "p50 ms", "p99 ms")
	best := map[int]shardCell{} // users -> best multi-shard cell
	base := map[int]shardCell{} // users -> 1-shard cell
	for _, sc := range append([]int{1}, shardCounts...) {
		for _, users := range userGrid {
			cell := runShardCell(searchers[sc], vectors, sc, users, k, r.cfg.shardDur)
			report.Sweep = append(report.Sweep, cell)
			fmt.Printf("%-7d %6d %9d %10.0f %9.3f %9.3f\n",
				cell.Shards, cell.Users, cell.Queries, cell.QPS, cell.P50Ms, cell.P99Ms)
			if sc == 1 {
				base[users] = cell
			} else if cell.QPS > best[users].QPS {
				best[users] = cell
			}
		}
	}
	for _, users := range userGrid {
		b, m := base[users], best[users]
		if m.Shards == 0 || b.QPS <= 0 {
			continue
		}
		speedup := m.QPS / b.QPS
		if speedup > report.Speedup {
			report.BaselineQPS = b.QPS
			report.BestQPS = m.QPS
			report.BestShards = m.Shards
			report.Speedup = speedup
		}
	}
	fmt.Printf("\nbest multi-shard: %d shards at %.0f qps vs 1-shard %.0f qps (%.2fx)\n",
		report.BestShards, report.BestQPS, report.BaselineQPS, report.Speedup)

	if r.cfg.shardOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.shardOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.shardOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.shardOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", r.cfg.shardOut)
	}
	if !report.IdenticalResults {
		fmt.Fprintln(os.Stderr, "FAIL: sharded results diverge from the unsharded control")
		os.Exit(1)
	}
}

// shardWorld synthesizes a clustered collection with plenty of
// near-ties, deterministic in the seed.
func shardWorld(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 24)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() * 12
		}
	}
	out := make([][]float64, n)
	for i := range out {
		ctr := centers[i%len(centers)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = ctr[d] + rng.NormFloat64()*0.6
		}
		out[i] = v
	}
	return out
}

// diverges compares two result lists bit-for-bit, returning a
// description of the first difference ("" when identical).
func diverges(want, got []qcluster.Result) string {
	if len(want) != len(got) {
		return fmt.Sprintf("%d results, want %d", len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
			return fmt.Sprintf("result %d: got (%d, %x), want (%d, %x)",
				i, got[i].ID, math.Float64bits(got[i].Dist),
				want[i].ID, math.Float64bits(want[i].Dist))
		}
	}
	return ""
}

// runShardCell drives one (shards, users) cell closed-loop for the cell
// duration and reports throughput and client-observed latency.
func runShardCell(search func(context.Context, []float64, int) ([]qcluster.Result, error),
	vectors [][]float64, shards, users, k int, dur time.Duration) shardCell {
	start := time.Now()
	deadline := start.Add(dur)
	lats := make([][]float64, users)
	var wg sync.WaitGroup
	for u := 0; u < users; u++ {
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(7919*u + 13)))
			for time.Now().Before(deadline) {
				example := vectors[rng.Intn(len(vectors))]
				t0 := time.Now()
				if _, err := search(context.Background(), example, k); err != nil {
					fmt.Fprintf(os.Stderr, "cell shards=%d users=%d: %v\n", shards, users, err)
					os.Exit(1)
				}
				lats[u] = append(lats[u], time.Since(t0).Seconds())
			}
		}(u)
	}
	wg.Wait()
	elapsed := time.Since(start)
	var all []float64
	for _, l := range lats {
		all = append(all, l...)
	}
	sort.Float64s(all)
	cell := shardCell{Shards: shards, Users: users, Queries: len(all)}
	if len(all) > 0 {
		cell.QPS = float64(len(all)) / elapsed.Seconds()
		cell.P50Ms = all[len(all)/2] * 1e3
		cell.P99Ms = all[len(all)*99/100] * 1e3
	}
	return cell
}
