package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	qcluster "repro"
)

// The plan experiment measures the cost-based adaptive query planner
// against every static execution configuration on a mixed-selectivity
// workload. Three regimes stress the routes differently — "narrow"
// single-point euclidean queries prune hard (the sequential tree's home
// turf), "broad" refined multipoint queries with ~8 query points prune
// poorly (where wide fan-out or the VA-file scan wins), and "mixed"
// interleaves both — and each regime is run under four configurations:
// sequential tree, parallel tree, VA-file, and the adaptive planner.
// Every configuration is exact, so before anything is believed the
// experiment checks bit-identity of all results against the
// sequential-tree control and exits non-zero on any divergence (the CI
// gate). With -planstrict it additionally gates the headline claim:
// adaptive must match or beat the best single static configuration on
// aggregate mean latency and never run worse than 1.1x the per-regime
// best. Writes BENCH_plan.json (schema in EXPERIMENTS.md).

// planCell is one (regime, config) measurement.
type planCell struct {
	Config  string  `json:"config"`
	Queries int     `json:"queries"`
	MeanMs  float64 `json:"mean_ms"`
	P50Ms   float64 `json:"p50_ms"`
	P99Ms   float64 `json:"p99_ms"`
}

// planRegime is one workload regime with its per-config cells and the
// adaptive-vs-best-static verdict.
type planRegime struct {
	Regime string `json:"regime"`
	// QueryPoints is the multipoint width m of the regime's queries
	// (narrow: 1; broad: ~8; mixed: alternating).
	QueryPoints      string     `json:"query_points"`
	Cells            []planCell `json:"cells"`
	BestStatic       string     `json:"best_static"`
	BestStaticMeanMs float64    `json:"best_static_mean_ms"`
	AdaptiveMeanMs   float64    `json:"adaptive_mean_ms"`
	// AdaptiveVsBestStatic is adaptive mean / best static mean for this
	// regime (<= 1 means adaptive won the regime outright).
	AdaptiveVsBestStatic float64 `json:"adaptive_vs_best_static"`
}

type planReport struct {
	Schema     string `json:"schema"`
	N          int    `json:"n"`
	Dim        int    `json:"dim"`
	K          int    `json:"k"`
	Seed       int64  `json:"seed"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	// IdenticalResults is the equivalence verdict: every configuration —
	// the adaptive planner included, mid-warm-up and warm — reproduced
	// the sequential-tree control's results bit-for-bit on every query.
	// The experiment exits non-zero when false.
	IdenticalResults bool         `json:"identical_results"`
	Regimes          []planRegime `json:"regimes"`
	// Aggregate verdict over all regimes (query-weighted mean latency):
	// the best any single static configuration managed across the whole
	// mixed-selectivity workload vs the adaptive planner.
	BestStaticAggregate       string  `json:"best_static_aggregate"`
	BestStaticAggregateMeanMs float64 `json:"best_static_aggregate_mean_ms"`
	AdaptiveAggregateMeanMs   float64 `json:"adaptive_aggregate_mean_ms"`
	AdaptiveVsBestAggregate   float64 `json:"adaptive_vs_best_aggregate"`
	// PlanCounters are the adaptive database's plan.* counter totals
	// after the run — how often it went adaptive, probed, and which
	// routes it chose.
	PlanCounters map[string]int64 `json:"plan_counters"`
}

// planPasses is how many timed passes each (regime, config) cell runs;
// the fastest pass is reported, the benchmarking convention that filters
// scheduler and GC interference out of a single-threaded latency sweep.
const planPasses = 3

// planQuery is one work item: a single-point example query or a refined
// multipoint query model shared read-only across configurations.
type planQuery struct {
	example []float64
	query   *qcluster.Query
}

func (r *runner) planBench() {
	n, dim, k, seed := r.cfg.planN, r.cfg.planDim, r.cfg.k, r.cfg.seed
	vectors := shardWorld(n, dim, seed+29)

	configs := []struct {
		name string
		opt  qcluster.IndexOptions
	}{
		{"tree-seq", qcluster.IndexOptions{SearchParallelism: 1}},
		{"tree-par", qcluster.IndexOptions{SearchParallelMinItems: -1}},
		{"vafile", qcluster.IndexOptions{Backend: qcluster.BackendVAFile}},
		// Fast warm-up so the bench converges within the first queries of
		// each regime; production defaults (8/16) just warm more slowly.
		{"adaptive", qcluster.IndexOptions{Plan: qcluster.PlanOptions{
			Adaptive: true, MinObservations: 4, ProbeEvery: 4,
		}}},
	}
	dbs := make(map[string]*qcluster.Database, len(configs))
	for _, c := range configs {
		db, err := qcluster.NewDatabaseWithOptions(vectors, c.opt)
		if err != nil {
			fmt.Fprintf(os.Stderr, "building %s: %v\n", c.name, err)
			os.Exit(1)
		}
		dbs[c.name] = db
	}

	queries := r.cfg.planQueries
	if queries < 8 {
		queries = 8
	}
	rng := rand.New(rand.NewSource(seed + 31))
	narrow := make([]planQuery, queries)
	for i := range narrow {
		narrow[i] = planQuery{example: vectors[rng.Intn(n)]}
	}
	broadModels := buildBroadQueries(vectors, rng, 12)
	broad := make([]planQuery, queries)
	for i := range broad {
		broad[i] = planQuery{query: broadModels[i%len(broadModels)]}
	}
	mixed := make([]planQuery, queries)
	for i := range mixed {
		if i%2 == 0 {
			mixed[i] = narrow[(i/2)%len(narrow)]
		} else {
			mixed[i] = broad[(i/2)%len(broad)]
		}
	}
	regimes := []struct {
		name    string
		m       string
		queries []planQuery
	}{
		{"narrow", "1", narrow},
		{"broad", fmt.Sprint(broadModels[0].NumQueryPoints()), broad},
		{"mixed", "alternating", mixed},
	}

	report := planReport{
		Schema:           "qcluster-bench-plan/v1",
		N:                n,
		Dim:              dim,
		K:                k,
		Seed:             seed,
		GOMAXPROCS:       runtime.GOMAXPROCS(0),
		IdenticalResults: true,
	}

	// Aggregate accumulators: total timed seconds and queries per config.
	aggSecs := make(map[string]float64, len(configs))
	aggQueries := make(map[string]int, len(configs))

	for _, reg := range regimes {
		pr := planRegime{Regime: reg.name, QueryPoints: reg.m}
		// Control answers once per query; every other config must match
		// them bit-for-bit in both the warm-up and the timed pass.
		control := make([][]qcluster.Result, len(reg.queries))
		for qi, pq := range reg.queries {
			res, err := runPlanQuery(dbs["tree-seq"], pq, k)
			if err != nil {
				fmt.Fprintf(os.Stderr, "control %s query %d: %v\n", reg.name, qi, err)
				os.Exit(1)
			}
			control[qi] = res
		}
		// Warm-up pass: untimed, but identity-checked — this is where
		// the adaptive planner's models warm and its routing flips, and
		// mid-warm-up results must already be exact.
		for _, c := range configs {
			for qi, pq := range reg.queries {
				got, err := runPlanQuery(dbs[c.name], pq, k)
				if err != nil {
					fmt.Fprintf(os.Stderr, "%s %s warm-up query %d: %v\n", c.name, reg.name, qi, err)
					os.Exit(1)
				}
				if d := diverges(control[qi], got); d != "" {
					report.IdenticalResults = false
					fmt.Fprintf(os.Stderr, "DIVERGENCE config=%s regime=%s warm-up query %d: %s\n",
						c.name, reg.name, qi, d)
				}
			}
		}
		// Timed passes, paired: for every query the configurations run
		// back-to-back in a freshly shuffled order, so all four see the
		// same machine state, slow drift cancels out of the comparison,
		// and no configuration is systematically stuck in the
		// cache-cold slot right after the VA-file scan (which evicts
		// everyone else's working set — a fixed rotation would bill that
		// penalty to whichever config always follows it). Each query
		// keeps its fastest of planPasses observations per config — the
		// per-query minimum is the standard noise filter for a
		// single-threaded latency sweep, discarding one-off GC pauses
		// and scheduler stalls. A GC runs between passes so the VA-file
		// scan's allocation debt is not billed to whoever runs after it.
		// Comparisons run outside the timer.
		lats := make(map[string][]float64, len(configs))
		for _, c := range configs {
			lats[c.name] = make([]float64, len(reg.queries))
		}
		orderRng := rand.New(rand.NewSource(seed + 37))
		for pass := 0; pass < planPasses; pass++ {
			runtime.GC()
			for qi, pq := range reg.queries {
				for _, ci := range orderRng.Perm(len(configs)) {
					c := configs[ci]
					t0 := time.Now()
					got, err := runPlanQuery(dbs[c.name], pq, k)
					lat := time.Since(t0).Seconds()
					if err != nil {
						fmt.Fprintf(os.Stderr, "%s %s query %d: %v\n", c.name, reg.name, qi, err)
						os.Exit(1)
					}
					if cl := lats[c.name]; pass == 0 || lat < cl[qi] {
						cl[qi] = lat
					}
					if d := diverges(control[qi], got); d != "" {
						report.IdenticalResults = false
						fmt.Fprintf(os.Stderr, "DIVERGENCE config=%s regime=%s pass %d query %d: %s\n",
							c.name, reg.name, pass, qi, d)
					}
				}
			}
		}
		for _, c := range configs {
			cell := summarizePlanCell(c.name, lats[c.name])
			pr.Cells = append(pr.Cells, cell)
			aggSecs[c.name] += cell.MeanMs / 1e3 * float64(cell.Queries)
			aggQueries[c.name] += cell.Queries
		}
		for _, cell := range pr.Cells {
			switch {
			case cell.Config == "adaptive":
				pr.AdaptiveMeanMs = cell.MeanMs
			case pr.BestStatic == "" || cell.MeanMs < pr.BestStaticMeanMs:
				pr.BestStatic = cell.Config
				pr.BestStaticMeanMs = cell.MeanMs
			}
		}
		if pr.BestStaticMeanMs > 0 {
			pr.AdaptiveVsBestStatic = pr.AdaptiveMeanMs / pr.BestStaticMeanMs
		}
		report.Regimes = append(report.Regimes, pr)

		fmt.Printf("regime %-7s (m=%s):\n", reg.name, reg.m)
		for _, cell := range pr.Cells {
			fmt.Printf("  %-9s %4d queries  mean %8.3f ms  p50 %8.3f  p99 %8.3f\n",
				cell.Config, cell.Queries, cell.MeanMs, cell.P50Ms, cell.P99Ms)
		}
		fmt.Printf("  best static %s at %.3f ms; adaptive/best = %.3f\n\n",
			pr.BestStatic, pr.BestStaticMeanMs, pr.AdaptiveVsBestStatic)
	}

	for _, c := range configs {
		if aggQueries[c.name] == 0 {
			continue
		}
		mean := aggSecs[c.name] / float64(aggQueries[c.name]) * 1e3
		if c.name == "adaptive" {
			report.AdaptiveAggregateMeanMs = mean
		} else if report.BestStaticAggregate == "" || mean < report.BestStaticAggregateMeanMs {
			report.BestStaticAggregate = c.name
			report.BestStaticAggregateMeanMs = mean
		}
	}
	if report.BestStaticAggregateMeanMs > 0 {
		report.AdaptiveVsBestAggregate = report.AdaptiveAggregateMeanMs / report.BestStaticAggregateMeanMs
	}
	snap := dbs["adaptive"].Metrics()
	report.PlanCounters = map[string]int64{}
	for name, v := range snap.Counters {
		if len(name) >= 5 && name[:5] == "plan." {
			report.PlanCounters[name] = v
		}
	}

	fmt.Printf("aggregate: best static %s at %.3f ms; adaptive %.3f ms (adaptive/best = %.3f)\n",
		report.BestStaticAggregate, report.BestStaticAggregateMeanMs,
		report.AdaptiveAggregateMeanMs, report.AdaptiveVsBestAggregate)
	fmt.Printf("bit-identity across %d configs x %d regimes x %d queries (warm-up + %d timed passes): identical=%v\n",
		len(configs), len(regimes), queries, planPasses, report.IdenticalResults)

	if r.cfg.planOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.planOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.planOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.planOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", r.cfg.planOut)
	}
	if !report.IdenticalResults {
		fmt.Fprintln(os.Stderr, "FAIL: adaptive or static results diverge from the sequential-tree control")
		os.Exit(1)
	}
	if r.cfg.planStrict {
		failed := false
		// "Matching" tolerates timer noise on the aggregate; the
		// per-regime bound is the issue's 1.1x ceiling.
		if report.AdaptiveVsBestAggregate > 1.05 {
			fmt.Fprintf(os.Stderr, "FAIL: adaptive aggregate %.3f ms vs best static %.3f ms (ratio %.3f > 1.05)\n",
				report.AdaptiveAggregateMeanMs, report.BestStaticAggregateMeanMs, report.AdaptiveVsBestAggregate)
			failed = true
		}
		for _, pr := range report.Regimes {
			if pr.AdaptiveVsBestStatic > 1.1 {
				fmt.Fprintf(os.Stderr, "FAIL: regime %s adaptive %.3f ms vs best static %s %.3f ms (ratio %.3f > 1.1)\n",
					pr.Regime, pr.AdaptiveMeanMs, pr.BestStatic, pr.BestStaticMeanMs, pr.AdaptiveVsBestStatic)
				failed = true
			}
		}
		if failed {
			os.Exit(1)
		}
		fmt.Println("strict gates passed: adaptive matches or beats the best static configuration")
	}
}

// runPlanQuery executes one work item against one database.
func runPlanQuery(db *qcluster.Database, pq planQuery, k int) ([]qcluster.Result, error) {
	ctx := context.Background()
	if pq.query != nil {
		return db.SearchContext(ctx, pq.query, k)
	}
	return db.SearchByExampleContext(ctx, pq.example, k)
}

// buildBroadQueries constructs count refined multipoint query models,
// each fed one feedback round of points drawn from eight well-separated
// clusters of the collection — the "complex query" regime whose wide
// disjunctive contour visits far more of the tree than a single-point
// query. The models are shared read-only by every configuration.
func buildBroadQueries(vectors [][]float64, rng *rand.Rand, count int) []*qcluster.Query {
	const modes = 8
	out := make([]*qcluster.Query, count)
	for qi := range out {
		q := qcluster.NewQuery(qcluster.Options{MaxQueryPoints: modes})
		var points []qcluster.Point
		// shardWorld assigns vector i to cluster i % 24: picking ids
		// congruent to a fixed residue per mode yields tight same-mode
		// groups in well-separated regions.
		for mode := 0; mode < modes; mode++ {
			residue := (qi + mode*3) % 24
			for s := 0; s < 5; s++ {
				id := residue + 24*rng.Intn(len(vectors)/24)
				points = append(points, qcluster.Point{ID: id, Vec: vectors[id], Score: 3})
			}
		}
		if err := q.Feedback(points); err != nil {
			fmt.Fprintf(os.Stderr, "building broad query %d: %v\n", qi, err)
			os.Exit(1)
		}
		out[qi] = q
	}
	return out
}

func summarizePlanCell(name string, lats []float64) planCell {
	cell := planCell{Config: name, Queries: len(lats)}
	if len(lats) == 0 {
		return cell
	}
	var sum float64
	for _, l := range lats {
		sum += l
	}
	sorted := append([]float64(nil), lats...)
	sort.Float64s(sorted)
	cell.MeanMs = sum / float64(len(lats)) * 1e3
	cell.P50Ms = sorted[len(sorted)/2] * 1e3
	cell.P99Ms = sorted[len(sorted)*99/100] * 1e3
	return cell
}
