package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
)

// The search experiment measures the k-NN hot path itself — per-query
// latency and distance-evaluation throughput of the hybrid tree, with
// the parallel leaf stage against the sequential traversal — and writes
// a machine-readable BENCH_search.json so every future perf PR lands on
// a recorded trajectory (schema documented in EXPERIMENTS.md).

// searchSide is one traversal mode's measurements over a cell's queries.
type searchSide struct {
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	MeanMs         float64 `json:"mean_ms"`
	DistanceEvals  int64   `json:"distance_evals"`
	AbandonedEvals int64   `json:"abandoned_evals"`
	EvalsPerSec    float64 `json:"evals_per_sec"`
}

// searchCell is one (metric, N, dim) workload.
type searchCell struct {
	Metric           string     `json:"metric"`
	N                int        `json:"n"`
	Dim              int        `json:"dim"`
	Sequential       searchSide `json:"sequential"`
	Parallel         searchSide `json:"parallel"`
	Speedup          float64    `json:"speedup"`
	IdenticalResults bool       `json:"identical_results"`
}

// searchReport is the BENCH_search.json document.
type searchReport struct {
	Schema      string       `json:"schema"`
	GoMaxProcs  int          `json:"go_max_procs"`
	Parallelism int          `json:"parallelism"`
	K           int          `json:"k"`
	Queries     int          `json:"queries"`
	Seed        int64        `json:"seed"`
	Cells       []searchCell `json:"cells"`
}

func (r *runner) searchBench() {
	report := searchReport{
		Schema:      "qcluster-bench-search/v2",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: resolveWorkers(r.cfg.parallelism),
		K:           r.cfg.k,
		Queries:     r.cfg.queries,
		Seed:        r.cfg.seed,
	}
	fmt.Printf("k-NN hot path: k=%d, %d queries/cell, %d workers (GOMAXPROCS %d)\n\n",
		report.K, report.Queries, report.Parallelism, report.GoMaxProcs)
	fmt.Printf("%-9s %8s %5s | %23s | %23s | %7s %6s\n",
		"metric", "N", "dim", "sequential p50/p95 ms", "parallel   p50/p95 ms", "speedup", "equal")
	for _, metric := range []string{"euclidean", "quad-full"} {
		for _, n := range []int{10000, 100000} {
			for _, dim := range []int{8, 32} {
				cell := runSearchCell(metric, n, dim, report.K, report.Queries, report.Parallelism, report.Seed)
				report.Cells = append(report.Cells, cell)
				fmt.Printf("%-9s %8d %5d | %11.3f /%9.3f | %11.3f /%9.3f | %6.2fx %6v\n",
					cell.Metric, cell.N, cell.Dim,
					cell.Sequential.P50Ms, cell.Sequential.P95Ms,
					cell.Parallel.P50Ms, cell.Parallel.P95Ms,
					cell.Speedup, cell.IdenticalResults)
			}
		}
	}
	if r.cfg.benchOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.benchOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.benchOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", r.cfg.benchOut)
	}
}

// resolveWorkers mirrors the index's knob semantics for the report.
func resolveWorkers(p int) int {
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runSearchCell builds one random collection and times every query in
// both traversal modes, verifying the result sets match exactly. metric
// selects the query model: "euclidean" centers, or "quad-full" —
// Cholesky-whitened full-scheme quadratic forms around the same centers,
// the cell where the batched kernels' early abandonment matters most.
func runSearchCell(metric string, n, dim, k, queries, workers int, seed int64) searchCell {
	rng := rand.New(rand.NewSource(seed + int64(31*n+dim)))
	data := make([]float64, n*dim)
	for i := range data {
		data[i] = rng.NormFloat64() * 3
	}
	store, err := index.NewStoreFlat(data, dim)
	if err != nil {
		panic(err)
	}
	seq := index.NewHybridTree(store, index.TreeOptions{Parallelism: 1})
	par := seq.WithParallelism(workers)

	var inv *linalg.Matrix
	if metric == "quad-full" {
		// One well-conditioned random SPD weight matrix per cell; centers
		// vary per query, as after a feedback-driven metric rebuild.
		a := linalg.NewMatrix(dim, dim)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		inv = a.Mul(a.T())
		for i := 0; i < dim; i++ {
			inv.Data[i*dim+i] += float64(dim) * 0.25
		}
	}
	centers := make([]linalg.Vector, queries)
	for i := range centers {
		c := make(linalg.Vector, dim)
		for d := range c {
			c[d] = rng.NormFloat64() * 3
		}
		centers[i] = c
	}

	cell := searchCell{Metric: metric, N: n, Dim: dim, IdenticalResults: true}
	var seqLat, parLat []float64
	var seqEvals, parEvals, seqAbandon, parAbandon int64
	var seqTotal, parTotal time.Duration
	for _, c := range centers {
		var m distance.Metric
		if inv != nil {
			m = distance.NewQuadraticFull(c, inv)
		} else {
			m = &distance.Euclidean{Center: c}
		}

		t0 := time.Now()
		wantRes, sStats := seq.KNN(m, k)
		d := time.Since(t0)
		seqLat = append(seqLat, d.Seconds()*1e3)
		seqTotal += d
		seqEvals += int64(sStats.DistanceEvals)
		seqAbandon += int64(sStats.AbandonedEvals)

		t0 = time.Now()
		gotRes, pStats := par.KNN(m, k)
		d = time.Since(t0)
		parLat = append(parLat, d.Seconds()*1e3)
		parTotal += d
		parEvals += int64(pStats.DistanceEvals)
		parAbandon += int64(pStats.AbandonedEvals)

		if len(gotRes) != len(wantRes) {
			cell.IdenticalResults = false
		} else {
			for i := range wantRes {
				if gotRes[i] != wantRes[i] {
					cell.IdenticalResults = false
					break
				}
			}
		}
	}
	cell.Sequential = summarizeSide(seqLat, seqEvals, seqTotal)
	cell.Sequential.AbandonedEvals = seqAbandon
	cell.Parallel = summarizeSide(parLat, parEvals, parTotal)
	cell.Parallel.AbandonedEvals = parAbandon
	if parTotal > 0 {
		cell.Speedup = seqTotal.Seconds() / parTotal.Seconds()
	}
	return cell
}

func summarizeSide(latMs []float64, evals int64, total time.Duration) searchSide {
	sorted := append([]float64(nil), latMs...)
	sort.Float64s(sorted)
	var mean float64
	for _, l := range sorted {
		mean += l
	}
	mean /= float64(len(sorted))
	side := searchSide{
		P50Ms:         quantile(sorted, 0.50),
		P95Ms:         quantile(sorted, 0.95),
		MeanMs:        mean,
		DistanceEvals: evals,
	}
	if total > 0 {
		side.EvalsPerSec = float64(evals) / total.Seconds()
	}
	return side
}

// quantile reads q from an ascending-sorted sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
