package main

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"math/rand"
	"os"
	"runtime"
	"sort"
	"time"

	"repro/internal/ann"
	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
)

// The search experiment measures the k-NN hot path itself — per-query
// latency and distance-evaluation throughput of the hybrid tree, with
// the parallel leaf stage against the sequential traversal — and, since
// schema v3, the ANN backend's committed recall–latency frontier: one
// recall@k + latency point per efSearch against the exact tree baseline
// over the same queries, plus the exhaustive-beam bit-identity check.
// It writes a machine-readable BENCH_search.json so every future perf
// PR lands on a recorded trajectory (schema documented in
// EXPERIMENTS.md). The ANN section doubles as a CI gate: the process
// exits non-zero when the frontier misses the recall floor or the
// exhaustive beam is not bit-identical to the exact search.

// searchSide is one traversal mode's measurements over a cell's queries.
type searchSide struct {
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	MeanMs         float64 `json:"mean_ms"`
	DistanceEvals  int64   `json:"distance_evals"`
	AbandonedEvals int64   `json:"abandoned_evals"`
	EvalsPerSec    float64 `json:"evals_per_sec"`
}

// searchCell is one (metric, N, dim) workload.
type searchCell struct {
	Metric           string     `json:"metric"`
	N                int        `json:"n"`
	Dim              int        `json:"dim"`
	Sequential       searchSide `json:"sequential"`
	Parallel         searchSide `json:"parallel"`
	Speedup          float64    `json:"speedup"`
	IdenticalResults bool       `json:"identical_results"`
}

// annPoint is one efSearch setting on the recall–latency frontier.
type annPoint struct {
	EfSearch       int     `json:"ef_search"`
	RecallAtK      float64 `json:"recall_at_k"`
	P50Ms          float64 `json:"p50_ms"`
	P95Ms          float64 `json:"p95_ms"`
	MeanMs         float64 `json:"mean_ms"`
	GraphHops      int64   `json:"graph_hops"`
	RefineEvals    int64   `json:"refine_evals"`
	SpeedupVsExact float64 `json:"speedup_vs_exact"` // exact mean / ann mean
}

// annFrontier is the v3 ANN section: the graph configuration, the exact
// tree baseline over the same queries, and the swept frontier.
type annFrontier struct {
	N              int        `json:"n"`
	Dim            int        `json:"dim"`
	M              int        `json:"m"`
	EfConstruction int        `json:"ef_construction"`
	K              int        `json:"k"` // recall@k
	Queries        int        `json:"queries"`
	BuildMs        float64    `json:"build_ms"`
	Exact          searchSide `json:"exact"` // hybrid-tree baseline
	Points         []annPoint `json:"points"`
	// BitIdentityExhaustive reports whether an efSearch covering the
	// whole collection reproduced the exact results bit-for-bit
	// (distances compared by Float64bits) — the refinement contract.
	BitIdentityExhaustive bool `json:"bit_identity_exhaustive"`
}

// annRecallFloor is the committed frontier contract (and the CI gate):
// at least one swept efSearch must reach this recall@k.
const annRecallFloor = 0.95

// searchReport is the BENCH_search.json document.
type searchReport struct {
	Schema      string       `json:"schema"`
	GoMaxProcs  int          `json:"go_max_procs"`
	Parallelism int          `json:"parallelism"`
	K           int          `json:"k"`
	Queries     int          `json:"queries"`
	Seed        int64        `json:"seed"`
	Cells       []searchCell `json:"cells"`
	ANN         *annFrontier `json:"ann,omitempty"`
}

func (r *runner) searchBench() {
	report := searchReport{
		Schema:      "qcluster-bench-search/v3",
		GoMaxProcs:  runtime.GOMAXPROCS(0),
		Parallelism: resolveWorkers(r.cfg.parallelism),
		K:           r.cfg.k,
		Queries:     r.cfg.queries,
		Seed:        r.cfg.seed,
	}
	if !r.cfg.annOnly {
		fmt.Printf("k-NN hot path: k=%d, %d queries/cell, %d workers (GOMAXPROCS %d)\n\n",
			report.K, report.Queries, report.Parallelism, report.GoMaxProcs)
		fmt.Printf("%-9s %8s %5s | %23s | %23s | %7s %6s\n",
			"metric", "N", "dim", "sequential p50/p95 ms", "parallel   p50/p95 ms", "speedup", "equal")
		for _, metric := range []string{"euclidean", "quad-full"} {
			for _, n := range []int{10000, 100000} {
				for _, dim := range []int{8, 32} {
					cell := runSearchCell(metric, n, dim, report.K, report.Queries, report.Parallelism, report.Seed)
					report.Cells = append(report.Cells, cell)
					fmt.Printf("%-9s %8d %5d | %11.3f /%9.3f | %11.3f /%9.3f | %6.2fx %6v\n",
						cell.Metric, cell.N, cell.Dim,
						cell.Sequential.P50Ms, cell.Sequential.P95Ms,
						cell.Parallel.P50Ms, cell.Parallel.P95Ms,
						cell.Speedup, cell.IdenticalResults)
				}
			}
		}
	}
	gateOK := true
	if r.cfg.annN > 0 {
		report.ANN, gateOK = runANNFrontier(r.cfg.annN, r.cfg.annDim, r.cfg.annQueries,
			report.Parallelism, report.Seed)
	}
	if r.cfg.benchOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.benchOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.benchOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.benchOut, err)
			os.Exit(1)
		}
		fmt.Printf("\nwrote %s\n", r.cfg.benchOut)
	}
	if !gateOK {
		fmt.Fprintln(os.Stderr, "search: ANN gate FAILED (recall floor or bit-identity)")
		os.Exit(1)
	}
}

// runANNFrontier builds one clustered collection, measures the exact
// hybrid-tree baseline, sweeps efSearch over the HNSW backend for the
// recall@10–latency frontier, and verifies the exhaustive-beam
// bit-identity contract. Returns ok=false when the frontier misses
// annRecallFloor at every swept point or the identity check fails.
func runANNFrontier(n, dim, queries, workers int, seed int64) (*annFrontier, bool) {
	const annK = 10 // the committed frontier is recall@10
	rng := rand.New(rand.NewSource(seed + 77))
	// Gaussian-mixture collection: the clustered regime CBIR features
	// live in, and the one where naive graph construction loses
	// connectivity — which the committed recall floor guards against.
	nClusters := n / 1024
	if nClusters < 8 {
		nClusters = 8
	}
	data := make([]float64, 0, n*dim)
	centers := make([][]float64, nClusters)
	for c := range centers {
		ctr := make([]float64, dim)
		for d := range ctr {
			ctr[d] = rng.NormFloat64() * 4
		}
		centers[c] = ctr
	}
	for i := 0; i < n; i++ {
		ctr := centers[i%nClusters]
		for d := 0; d < dim; d++ {
			data = append(data, ctr[d]+rng.NormFloat64()*0.5)
		}
	}
	store, err := index.NewStoreFlat(data, dim)
	if err != nil {
		panic(err)
	}
	tree := index.NewHybridTree(store, index.TreeOptions{Parallelism: workers})
	t0 := time.Now()
	annIdx, err := ann.New(store, ann.Options{Seed: seed})
	if err != nil {
		panic(err)
	}
	buildMs := time.Since(t0).Seconds() * 1e3

	// Query-by-example workload: perturbations of stored vectors.
	qs := make([]linalg.Vector, queries)
	for i := range qs {
		base := store.Vector(rng.Intn(n))
		q := make(linalg.Vector, dim)
		for d := range q {
			q[d] = base[d] + rng.NormFloat64()*0.1
		}
		qs[i] = q
	}

	front := &annFrontier{
		N: n, Dim: dim,
		M:              annIdx.Opt().M,
		EfConstruction: annIdx.Opt().EfConstruction,
		K:              annK,
		Queries:        queries,
		BuildMs:        buildMs,
	}

	// Exact baseline (and the recall ground truth) over the same queries.
	exact := make([][]index.Result, queries)
	var exactLat []float64
	var exactEvals int64
	var exactTotal time.Duration
	for i, q := range qs {
		m := &distance.Euclidean{Center: q}
		s0 := time.Now()
		res, stats := tree.KNN(m, annK)
		d := time.Since(s0)
		exact[i] = res
		exactLat = append(exactLat, d.Seconds()*1e3)
		exactTotal += d
		exactEvals += int64(stats.DistanceEvals)
	}
	front.Exact = summarizeSide(exactLat, exactEvals, exactTotal)

	fmt.Printf("\nANN frontier: n=%d dim=%d M=%d efC=%d, recall@%d over %d queries (build %.0f ms)\n",
		n, dim, front.M, front.EfConstruction, annK, queries, buildMs)
	fmt.Printf("exact tree baseline: p50 %.3f ms, p95 %.3f ms\n", front.Exact.P50Ms, front.Exact.P95Ms)
	fmt.Printf("%9s | %9s | %10s /%9s | %8s | %11s\n",
		"efSearch", "recall@10", "p50 ms", "p95 ms", "speedup", "refine/query")
	bestRecall := 0.0
	for _, ef := range []int{16, 32, 64, 128, 256, 512} {
		if ef >= n {
			break // the sweep ends where the beam goes exhaustive
		}
		var lat []float64
		var hops, refines int64
		var total time.Duration
		hits := 0
		for i, q := range qs {
			m := &distance.Euclidean{Center: q}
			s0 := time.Now()
			res, stats, err := annIdx.KNNEf(context.Background(), m, annK, ef)
			d := time.Since(s0)
			if err != nil {
				panic(err)
			}
			lat = append(lat, d.Seconds()*1e3)
			total += d
			hops += int64(stats.GraphHops)
			refines += int64(stats.RefineEvals)
			want := make(map[int]bool, len(exact[i]))
			for _, r := range exact[i] {
				want[r.ID] = true
			}
			for _, r := range res {
				if want[r.ID] {
					hits++
				}
			}
		}
		pt := annPoint{
			EfSearch:    ef,
			RecallAtK:   float64(hits) / float64(annK*queries),
			GraphHops:   hops,
			RefineEvals: refines,
		}
		side := summarizeSide(lat, refines, total)
		pt.P50Ms, pt.P95Ms, pt.MeanMs = side.P50Ms, side.P95Ms, side.MeanMs
		if pt.MeanMs > 0 {
			pt.SpeedupVsExact = front.Exact.MeanMs / pt.MeanMs
		}
		if pt.RecallAtK > bestRecall {
			bestRecall = pt.RecallAtK
		}
		front.Points = append(front.Points, pt)
		fmt.Printf("%9d | %9.3f | %10.3f /%9.3f | %7.2fx | %11d\n",
			ef, pt.RecallAtK, pt.P50Ms, pt.P95Ms, pt.SpeedupVsExact, refines/int64(queries))
	}

	// Exhaustive-beam bit-identity: efSearch >= n degenerates to an
	// exact sweep, so the refined results must reproduce the tree's
	// bit-for-bit — ids, order and distances.
	front.BitIdentityExhaustive = true
	for i, q := range qs {
		m := &distance.Euclidean{Center: q}
		res, _, err := annIdx.KNNEf(context.Background(), m, annK, n)
		if err != nil {
			panic(err)
		}
		if len(res) != len(exact[i]) {
			front.BitIdentityExhaustive = false
			break
		}
		for j := range res {
			if res[j].ID != exact[i][j].ID ||
				math.Float64bits(res[j].Dist) != math.Float64bits(exact[i][j].Dist) {
				front.BitIdentityExhaustive = false
				break
			}
		}
		if !front.BitIdentityExhaustive {
			break
		}
	}
	fmt.Printf("exhaustive-beam bit-identity: %v; best recall@10 %.3f (floor %.2f)\n",
		front.BitIdentityExhaustive, bestRecall, annRecallFloor)
	return front, front.BitIdentityExhaustive && bestRecall >= annRecallFloor
}

// resolveWorkers mirrors the index's knob semantics for the report.
func resolveWorkers(p int) int {
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// runSearchCell builds one random collection and times every query in
// both traversal modes, verifying the result sets match exactly. metric
// selects the query model: "euclidean" centers, or "quad-full" —
// Cholesky-whitened full-scheme quadratic forms around the same centers,
// the cell where the batched kernels' early abandonment matters most.
func runSearchCell(metric string, n, dim, k, queries, workers int, seed int64) searchCell {
	rng := rand.New(rand.NewSource(seed + int64(31*n+dim)))
	data := make([]float64, n*dim)
	for i := range data {
		data[i] = rng.NormFloat64() * 3
	}
	store, err := index.NewStoreFlat(data, dim)
	if err != nil {
		panic(err)
	}
	seq := index.NewHybridTree(store, index.TreeOptions{Parallelism: 1})
	par := seq.WithParallelism(workers)

	var inv *linalg.Matrix
	if metric == "quad-full" {
		// One well-conditioned random SPD weight matrix per cell; centers
		// vary per query, as after a feedback-driven metric rebuild.
		a := linalg.NewMatrix(dim, dim)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		inv = a.Mul(a.T())
		for i := 0; i < dim; i++ {
			inv.Data[i*dim+i] += float64(dim) * 0.25
		}
	}
	centers := make([]linalg.Vector, queries)
	for i := range centers {
		c := make(linalg.Vector, dim)
		for d := range c {
			c[d] = rng.NormFloat64() * 3
		}
		centers[i] = c
	}

	cell := searchCell{Metric: metric, N: n, Dim: dim, IdenticalResults: true}
	var seqLat, parLat []float64
	var seqEvals, parEvals, seqAbandon, parAbandon int64
	var seqTotal, parTotal time.Duration
	for _, c := range centers {
		var m distance.Metric
		if inv != nil {
			m = distance.NewQuadraticFull(c, inv)
		} else {
			m = &distance.Euclidean{Center: c}
		}

		t0 := time.Now()
		wantRes, sStats := seq.KNN(m, k)
		d := time.Since(t0)
		seqLat = append(seqLat, d.Seconds()*1e3)
		seqTotal += d
		seqEvals += int64(sStats.DistanceEvals)
		seqAbandon += int64(sStats.AbandonedEvals)

		t0 = time.Now()
		gotRes, pStats := par.KNN(m, k)
		d = time.Since(t0)
		parLat = append(parLat, d.Seconds()*1e3)
		parTotal += d
		parEvals += int64(pStats.DistanceEvals)
		parAbandon += int64(pStats.AbandonedEvals)

		if len(gotRes) != len(wantRes) {
			cell.IdenticalResults = false
		} else {
			for i := range wantRes {
				if gotRes[i] != wantRes[i] {
					cell.IdenticalResults = false
					break
				}
			}
		}
	}
	cell.Sequential = summarizeSide(seqLat, seqEvals, seqTotal)
	cell.Sequential.AbandonedEvals = seqAbandon
	cell.Parallel = summarizeSide(parLat, parEvals, parTotal)
	cell.Parallel.AbandonedEvals = parAbandon
	if parTotal > 0 {
		cell.Speedup = seqTotal.Seconds() / parTotal.Seconds()
	}
	return cell
}

func summarizeSide(latMs []float64, evals int64, total time.Duration) searchSide {
	sorted := append([]float64(nil), latMs...)
	sort.Float64s(sorted)
	var mean float64
	for _, l := range sorted {
		mean += l
	}
	mean /= float64(len(sorted))
	side := searchSide{
		P50Ms:         quantile(sorted, 0.50),
		P95Ms:         quantile(sorted, 0.95),
		MeanMs:        mean,
		DistanceEvals: evals,
	}
	if total > 0 {
		side.EvalsPerSec = float64(evals) / total.Seconds()
	}
	return side
}

// quantile reads q from an ascending-sorted sample (nearest-rank).
func quantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)-1))
	return sorted[i]
}
