// Command qbench regenerates every table and figure of the Qcluster paper
// (Kim & Chung, SIGMOD 2003) on the synthetic reproduction substrate.
//
// Usage:
//
//	qbench -exp all
//	qbench -exp fig10,fig12 -queries 100 -cats 100 -percat 100
//	qbench -exp table2 -pairs 100
//	qbench -data snapshot.gob -exp fig8   # reuse a cmd/qgen snapshot
//
// Experiment ids: fig5 fig6 fig7 fig8 fig9 fig10 fig11 fig12 fig13
// fig14 fig15 fig16 fig17 fig18 fig19 table2 table3 (or "all").
//
// The "search" experiment (not part of "all") benchmarks the k-NN hot
// path itself — parallel vs sequential traversal over random
// collections — and writes BENCH_search.json (see EXPERIMENTS.md):
//
//	qbench -exp search -queries 50 -benchout BENCH_search.json
//
// The "obs" experiment (also not part of "all") exercises the
// instrumentation layer: traced feedback sessions yield the per-round
// cluster evolution and prune ratios, and the same search is timed with
// tracing on and off. Writes BENCH_obs.json (see EXPERIMENTS.md):
//
//	qbench -exp obs -queries 20 -iters 4 -obsout BENCH_obs.json
//
// The "kernel" experiment (also not part of "all") benchmarks the
// distance kernels themselves — the scalar Eval loop vs the batched,
// bound-aware EvalBatch kernels with early abandonment — and writes
// BENCH_kernel.json (see EXPERIMENTS.md):
//
//	qbench -exp kernel -queries 20 -kerneln 20000 -kernelout BENCH_kernel.json
//
// The "serve" experiment (also not part of "all") load-tests the HTTP
// serving layer (internal/server) closed-loop: concurrent simulated
// users run feedback rounds over localhost HTTP under steady, pressure
// (admission shedding) and churn (LRU session eviction) regimes. Writes
// BENCH_serve.json (see EXPERIMENTS.md):
//
//	qbench -exp serve -users 64 -iters 3 -serveout BENCH_serve.json
//
// The "ingest" experiment (also not part of "all") benchmarks the
// durable write path: concurrent writers push fsync-acknowledged Adds
// through the WAL group-commit batcher while searchers query the same
// database, sweeping the fsync-batch size. Writes BENCH_ingest.json
// (see EXPERIMENTS.md):
//
//	qbench -exp ingest -ingestn 4000 -ingestout BENCH_ingest.json
//
// The "shard" experiment (also not part of "all") benchmarks the
// scatter-gather sharded tier (internal/shard): a bit-identity check of
// every sharded configuration against the unsharded control (non-zero
// exit on any divergence — the CI gate), then a shard count x
// concurrent-users throughput sweep. Writes BENCH_shard.json (see
// EXPERIMENTS.md):
//
//	qbench -exp shard -shardn 20000 -users 16 -shardout BENCH_shard.json
//
// The "plan" experiment (also not part of "all") benchmarks the
// cost-based adaptive query planner: narrow / broad / mixed selectivity
// regimes, each run under the sequential tree, parallel tree, VA-file
// and adaptive configurations, with a bit-identity gate against the
// sequential-tree control (non-zero exit on divergence). -planstrict
// additionally fails unless adaptive matches or beats the best static
// configuration on aggregate. Writes BENCH_plan.json (see
// EXPERIMENTS.md):
//
//	qbench -exp plan -plann 20000 -planqueries 150 -planstrict -planout BENCH_plan.json
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/eval"
	"repro/internal/imagegen"
	"repro/internal/rf"
	"repro/internal/synth"
)

type config struct {
	exp     string
	data    string
	cats    int
	perCat  int
	size    int
	bimodal float64
	queries int
	iters   int
	k       int
	pairs   int
	trials  int
	seed    int64

	// search-experiment knobs
	parallelism int
	benchOut    string
	annN        int
	annDim      int
	annQueries  int
	annOnly     bool

	// obs-experiment knob
	obsOut string

	// kernel-experiment knobs
	kernelN   int
	kernelOut string

	// serve-experiment knobs
	users    int
	serveOut string

	// ingest-experiment knobs
	ingestN   int
	ingestOut string

	// shard-experiment knobs
	shardN   int
	shardDur time.Duration
	shardOut string

	// plan-experiment knobs
	planN       int
	planDim     int
	planQueries int
	planOut     string
	planStrict  bool
}

func main() {
	var cfg config
	flag.StringVar(&cfg.exp, "exp", "all", "comma-separated experiment ids, or 'all'")
	flag.StringVar(&cfg.data, "data", "", "dataset snapshot from cmd/qgen (optional; built on the fly otherwise)")
	flag.IntVar(&cfg.cats, "cats", 30, "categories in the generated collection")
	flag.IntVar(&cfg.perCat, "percat", 100, "images per category (paper: ~100)")
	flag.IntVar(&cfg.size, "size", 32, "image side length in pixels")
	flag.Float64Var(&cfg.bimodal, "bimodal", 0.3, "fraction of bimodal categories")
	flag.IntVar(&cfg.queries, "queries", 100, "random initial queries to average (paper: 100)")
	flag.IntVar(&cfg.iters, "iters", 5, "feedback iterations (paper: 5)")
	flag.IntVar(&cfg.k, "k", 100, "k-NN result size (paper: 100)")
	flag.IntVar(&cfg.pairs, "pairs", 100, "cluster pairs for tables 2-3 (paper: 100)")
	flag.IntVar(&cfg.trials, "trials", 10, "trials for classification error rates")
	flag.Int64Var(&cfg.seed, "seed", 2003, "master random seed")
	flag.IntVar(&cfg.parallelism, "parallelism", 0, "search workers for -exp search (0 = GOMAXPROCS)")
	flag.StringVar(&cfg.benchOut, "benchout", "BENCH_search.json", "JSON output path for -exp search (empty to skip)")
	flag.IntVar(&cfg.annN, "annn", 65536, "collection size for the ANN recall-latency frontier in -exp search (0 disables the ANN section)")
	flag.IntVar(&cfg.annDim, "anndim", 32, "dimensionality for the ANN frontier")
	flag.IntVar(&cfg.annQueries, "annqueries", 40, "queries per efSearch point in the ANN frontier")
	flag.BoolVar(&cfg.annOnly, "annonly", false, "-exp search: skip the exact-tree sweep, run only the ANN frontier + gates (CI smoke)")
	flag.StringVar(&cfg.obsOut, "obsout", "BENCH_obs.json", "JSON output path for -exp obs (empty to skip)")
	flag.IntVar(&cfg.kernelN, "kerneln", 20000, "collection size for -exp kernel")
	flag.StringVar(&cfg.kernelOut, "kernelout", "BENCH_kernel.json", "JSON output path for -exp kernel (empty to skip)")
	flag.IntVar(&cfg.users, "users", 64, "concurrent simulated users for -exp serve")
	flag.StringVar(&cfg.serveOut, "serveout", "BENCH_serve.json", "JSON output path for -exp serve (empty to skip)")
	flag.IntVar(&cfg.ingestN, "ingestn", 4000, "vectors ingested per phase for -exp ingest")
	flag.StringVar(&cfg.ingestOut, "ingestout", "BENCH_ingest.json", "JSON output path for -exp ingest (empty to skip)")
	flag.IntVar(&cfg.shardN, "shardn", 20000, "collection size for -exp shard")
	flag.DurationVar(&cfg.shardDur, "sharddur", 1500*time.Millisecond, "closed-loop duration per sweep cell for -exp shard")
	flag.StringVar(&cfg.shardOut, "shardout", "BENCH_shard.json", "JSON output path for -exp shard (empty to skip)")
	flag.IntVar(&cfg.planN, "plann", 20000, "collection size for -exp plan")
	flag.IntVar(&cfg.planDim, "plandim", 8, "dimensionality for -exp plan")
	flag.IntVar(&cfg.planQueries, "planqueries", 150, "timed queries per regime for -exp plan")
	flag.StringVar(&cfg.planOut, "planout", "BENCH_plan.json", "JSON output path for -exp plan (empty to skip)")
	flag.BoolVar(&cfg.planStrict, "planstrict", false, "-exp plan: fail unless adaptive matches/beats the best static configuration")
	flag.Parse()

	ids := expandExperiments(cfg.exp)
	if len(ids) == 0 {
		fmt.Fprintln(os.Stderr, "no experiments selected")
		os.Exit(2)
	}
	runner := newRunner(cfg)
	for _, id := range ids {
		fn, ok := runner.experiments[id]
		if !ok {
			fmt.Fprintf(os.Stderr, "unknown experiment %q\n", id)
			os.Exit(2)
		}
		fmt.Printf("==== %s ====\n", id)
		fn()
		fmt.Println()
	}
}

func expandExperiments(s string) []string {
	if s == "all" {
		return []string{
			"fig5", "fig6", "fig7", "fig8", "fig9", "fig10", "fig11",
			"fig12", "fig13", "fig14", "fig15", "fig16", "fig17",
			"fig18", "fig19", "table2", "table3",
		}
	}
	var out []string
	for _, part := range strings.Split(s, ",") {
		if p := strings.TrimSpace(part); p != "" {
			out = append(out, p)
		}
	}
	return out
}

type runner struct {
	cfg         config
	ds          *dataset.Dataset
	experiments map[string]func()
}

func newRunner(cfg config) *runner {
	r := &runner{cfg: cfg}
	r.experiments = map[string]func(){
		"fig5":   r.fig5,
		"fig6":   r.fig6,
		"fig7":   r.fig7,
		"fig8":   func() { r.prCurves(dataset.ColorMoments, "Fig. 8") },
		"fig9":   func() { r.prCurves(dataset.CooccurrenceTexture, "Fig. 9") },
		"fig10":  func() { r.compare(dataset.ColorMoments, "Fig. 10", "recall") },
		"fig11":  func() { r.compare(dataset.CooccurrenceTexture, "Fig. 11", "recall") },
		"fig12":  func() { r.compare(dataset.ColorMoments, "Fig. 12", "precision") },
		"fig13":  func() { r.compare(dataset.CooccurrenceTexture, "Fig. 13", "precision") },
		"fig14":  func() { r.classification(synth.Spherical, cluster.FullInverse, "Fig. 14") },
		"fig15":  func() { r.classification(synth.Elliptical, cluster.FullInverse, "Fig. 15") },
		"fig16":  func() { r.classification(synth.Spherical, cluster.Diagonal, "Fig. 16") },
		"fig17":  func() { r.classification(synth.Elliptical, cluster.Diagonal, "Fig. 17") },
		"fig18":  func() { r.qq(cluster.FullInverse, "Fig. 18") },
		"fig19":  func() { r.qq(cluster.Diagonal, "Fig. 19") },
		"table2": func() { r.t2Table(true, "Table 2") },
		"table3": func() { r.t2Table(false, "Table 3") },
		// Controlled-geometry companions to Figs. 10/12: the same
		// three-approach comparison on the vector world, whose complex
		// categories are disjoint tight modes with clutter inside their
		// hull — the paper's Example 1 / Figure 4 situation by
		// construction.
		// Combined-feature (color+texture) companions — an extension
		// beyond the paper, which evaluates each feature separately.
		"fig10c": func() { r.compare(dataset.Combined, "Fig. 10 (combined feature)", "recall") },
		"fig12c": func() { r.compare(dataset.Combined, "Fig. 12 (combined feature)", "precision") },
		"fig10v": func() { r.compareVec("Fig. 10 (vector world)", "recall") },
		"fig12v": func() { r.compareVec("Fig. 12 (vector world)", "precision") },
		// Ablation study: each small-sample correction removed in turn
		// (DESIGN.md "Implementation notes"), on the complex-query
		// vector-world workload.
		"ablation": r.ablation,
		// Convergence study (the paper's second experimental goal):
		// per-iteration recall gain, result churn and query-model drift.
		"convergence": r.convergence,
		// k-NN hot-path microbenchmark: parallel vs sequential traversal,
		// machine-readable trajectory in BENCH_search.json. Excluded from
		// "all" — it measures the index, not the paper's figures.
		"search": r.searchBench,
		// Distance-kernel microbenchmark: scalar vs batched bound-aware
		// evaluation over a contiguous sweep, machine-readable in
		// BENCH_kernel.json. Excluded from "all" — it measures the
		// kernels, not the paper's figures.
		"kernel": r.kernelBench,
		// Instrumentation exercise: per-round cluster evolution from the
		// trace events, prune ratios, tracing overhead on/off. Excluded
		// from "all" — it measures the observability layer.
		"obs": r.obsBench,
		// Closed-loop load benchmark of the HTTP serving layer: steady /
		// pressure / churn regimes, shed rates and end-to-end latency in
		// BENCH_serve.json. Excluded from "all" — it measures the server,
		// not the paper's figures.
		"serve": r.serveBench,
		// Durable-ingest benchmark: fsync-batch sweep of sustained
		// write QPS and ack latency with concurrent search, in
		// BENCH_ingest.json. Excluded from "all" — it measures the WAL,
		// not the paper's figures.
		"ingest": r.ingestBench,
		// Scatter-gather sharding benchmark: bit-identity gate vs the
		// unsharded control (exits non-zero on divergence) plus a shard
		// count x users throughput sweep, in BENCH_shard.json. Excluded
		// from "all" — it measures the sharded tier, not the paper's
		// figures.
		"shard": r.shardBench,
		// Adaptive-planner benchmark: a mixed-selectivity sweep of the
		// cost-based query planner vs every static configuration, with a
		// bit-identity gate against the sequential-tree control (non-zero
		// exit on divergence) and optional -planstrict performance gates,
		// in BENCH_plan.json. Excluded from "all" — it measures the
		// planner, not the paper's figures.
		"plan": r.planBench,
	}
	return r
}

// dataset lazily builds or loads the image collection.
func (r *runner) dataset() *dataset.Dataset {
	if r.ds != nil {
		return r.ds
	}
	if r.cfg.data != "" {
		ds, err := dataset.LoadFile(r.cfg.data)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loading %s: %v\n", r.cfg.data, err)
			os.Exit(1)
		}
		r.ds = ds
		return ds
	}
	fmt.Fprintf(os.Stderr, "building collection: %d categories x %d images (%dpx)...\n",
		r.cfg.cats, r.cfg.perCat, r.cfg.size)
	ds, err := dataset.Build(dataset.Config{
		Collection: imagegen.CollectionConfig{
			Seed:              r.cfg.seed,
			NumCategories:     r.cfg.cats,
			ImagesPerCategory: r.cfg.perCat,
			ImageSize:         r.cfg.size,
			BimodalFrac:       r.cfg.bimodal,
		},
	})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building dataset: %v\n", err)
		os.Exit(1)
	}
	r.ds = ds
	return ds
}

func (r *runner) retrievalConfig(f dataset.Feature) eval.RetrievalConfig {
	return eval.RetrievalConfig{
		DS:      r.dataset(),
		Feature: f,
		// Iterations and scale from flags.
		NumQueries: r.cfg.queries,
		Iterations: r.cfg.iters,
		K:          r.cfg.k,
		Seed:       r.cfg.seed,
		UseIndex:   true,
	}
}

func (r *runner) fig5() {
	res := eval.RunExample3(r.cfg.seed)
	fmt.Print(eval.RenderExample3(res))
}

func (r *runner) fig6() {
	cfg := r.retrievalConfig(dataset.ColorMoments)
	series := []eval.EngineSeries{
		eval.RunRetrieval(cfg, engines()["qcluster-diag"]),
		eval.RunRetrieval(cfg, engines()["qcluster-inv"]),
	}
	series[0].Name = "diagonal"
	series[1].Name = "inverse"
	fmt.Print(eval.RenderSeriesTable(
		"Fig. 6: CPU time per iteration, inverse vs diagonal scheme (color moments)",
		"mean ms per retrieval", series,
		func(s eval.EngineSeries) []float64 { return s.CPUMillis }))
}

func (r *runner) fig7() {
	cfg := r.retrievalConfig(dataset.ColorMoments)
	cached := cfg
	cached.UseRefinementCache = true
	series := []eval.EngineSeries{
		eval.RunRetrieval(cached, engines()["qcluster-diag"]),
		eval.RunRetrieval(cfg, engines()["qpm"]),
		eval.RunRetrieval(cfg, engines()["qex"]),
		eval.RunRetrieval(cfg, engines()["falcon"]),
	}
	series[0].Name = "Qcluster(cached)"
	fmt.Print(eval.RenderSeriesTable(
		"Fig. 7: execution cost per iteration (index nodes visited)",
		"mean nodes visited", series,
		func(s eval.EngineSeries) []float64 { return s.NodesVisited }))
	fmt.Println()
	fmt.Print(eval.RenderSeriesTable(
		"Fig. 7 (companion): distance evaluations per iteration",
		"mean distance evals", series,
		func(s eval.EngineSeries) []float64 { return s.DistanceEvals }))
	fmt.Println()
	fmt.Print(eval.RenderSeriesTable(
		"Fig. 7 (companion): wall-clock execution cost per iteration",
		"mean ms per retrieval", series,
		func(s eval.EngineSeries) []float64 { return s.CPUMillis }))
}

func (r *runner) prCurves(f dataset.Feature, figure string) {
	cfg := r.retrievalConfig(f)
	s := eval.RunRetrieval(cfg, engines()["qcluster-diag"])
	scopes := []int{1, 10, 20, 40, 60, 80, 100}
	fmt.Print(eval.RenderPRCurves(
		fmt.Sprintf("%s: precision-recall per iteration, Qcluster (%s)", figure, f),
		s.Curves, scopes))
}

func (r *runner) compare(f dataset.Feature, figure, metric string) {
	cfg := r.retrievalConfig(f)
	series := []eval.EngineSeries{
		eval.RunRetrieval(cfg, engines()["qcluster-diag"]),
		eval.RunRetrieval(cfg, engines()["qpm"]),
		eval.RunRetrieval(cfg, engines()["qex"]),
	}
	pick := func(s eval.EngineSeries) []float64 { return s.Recall }
	if metric == "precision" {
		pick = func(s eval.EngineSeries) []float64 { return s.Precision }
	}
	fmt.Print(eval.RenderSeriesTable(
		fmt.Sprintf("%s: %s per iteration, three approaches (%s)", figure, metric, f),
		metric, series, pick))
	r.printGains(series, pick, metric)
	// Paired significance of the headline comparison on the same queries.
	for _, baseline := range []string{"qpm", "qex"} {
		p := eval.RunPairedImage(cfg, engines()["qcluster-diag"], engines()[baseline])
		fmt.Printf("paired t-test %s vs %s over %d queries: Δrecall=%+.4f, t=%.2f, p=%.3f\n",
			p.NameA, p.NameB, p.Queries, p.MeanDiff, p.TStat, p.PValue)
	}
	// Difficulty split: the paper's thesis concerns the complex column.
	for _, id := range []string{"qcluster-diag", "qpm", "qex"} {
		b := eval.RunModalityImage(cfg, engines()[id])
		fmt.Printf("%-9s final recall — simple categories: %.3f (%d queries), complex: %.3f (%d queries)\n",
			b.Name, b.SimpleRecall, b.SimpleQueries, b.ComplexRecall, b.ComplexQueries)
	}
}

// printGains reports the final-iteration relative improvement of Qcluster
// over each baseline — the paper's headline numbers (+22%/+20% vs QEX,
// +34%/+33% vs QPM).
func (r *runner) printGains(series []eval.EngineSeries, pick func(eval.EngineSeries) []float64, metric string) {
	last := len(pick(series[0])) - 1
	q := pick(series[0])[last]
	for _, s := range series[1:] {
		b := pick(s)[last]
		if b > 0 {
			fmt.Printf("final-iteration %s gain of %s over %s: %+.1f%%\n",
				metric, series[0].Name, s.Name, 100*(q-b)/b)
		}
	}
}

func (r *runner) compareVec(figure, metric string) {
	wcfg := eval.VectorWorldConfig{Seed: r.cfg.seed, NumCategories: 40, PerCategory: 60}
	world := eval.BuildVectorWorld(wcfg)
	cfg := eval.WorkloadConfig{
		NumQueries: r.cfg.queries,
		Iterations: r.cfg.iters,
		K:          100,
		Seed:       r.cfg.seed,
		UseIndex:   true,
		// Complex-query workload: queries drawn from multi-mode
		// categories only, feedback restricted to same-category images.
		RelatedScore: -1,
	}
	series := []eval.EngineSeries{
		eval.RunVectorRetrieval(cfg, world, wcfg, true, engines()["qcluster-diag"]),
		eval.RunVectorRetrieval(cfg, world, wcfg, true, engines()["qpm"]),
		eval.RunVectorRetrieval(cfg, world, wcfg, true, engines()["qex"]),
	}
	pick := func(s eval.EngineSeries) []float64 { return s.Recall }
	if metric == "precision" {
		pick = func(s eval.EngineSeries) []float64 { return s.Precision }
	}
	fmt.Print(eval.RenderSeriesTable(
		fmt.Sprintf("%s: %s per iteration, complex queries on disjoint-mode categories", figure, metric),
		metric, series, pick))
	r.printGains(series, pick, metric)
}

func (r *runner) ablation() {
	wcfg := eval.VectorWorldConfig{Seed: r.cfg.seed, NumCategories: 40, PerCategory: 60}
	cfg := eval.WorkloadConfig{
		NumQueries:   r.cfg.queries,
		Iterations:   r.cfg.iters,
		K:            100,
		Seed:         r.cfg.seed,
		UseIndex:     true,
		RelatedScore: -1,
	}
	results := eval.RunAblations(cfg, wcfg)
	series := make([]eval.EngineSeries, len(results))
	for i, res := range results {
		series[i] = res.Series
	}
	fmt.Print(eval.RenderSeriesTable(
		"Ablation: recall per iteration with small-sample corrections removed",
		"recall", series,
		func(s eval.EngineSeries) []float64 { return s.Recall }))
	fmt.Println()
	fmt.Print(eval.RenderSeriesTable(
		"Ablation: mean query points per iteration",
		"query points", series,
		func(s eval.EngineSeries) []float64 { return s.QueryPoints }))

	// The same ablations on the image collection, where small relevant
	// sets and higher-variance category structure make the small-sample
	// corrections earn their keep.
	icfg := r.retrievalConfig(dataset.ColorMoments)
	ablations := []struct {
		name string
		abl  core.Ablations
	}{
		{"full", core.Ablations{}},
		{"raw-covariances", core.Ablations{RawCovariances: true}},
		{"plain-chi2-radius", core.Ablations{PlainChiSquareRadius: true}},
		{"no-overlap-merge", core.Ablations{NoOverlapMerge: true}},
	}
	iseries := make([]eval.EngineSeries, 0, len(ablations))
	for _, tc := range ablations {
		abl := tc.abl
		s := eval.RunRetrieval(icfg, func() rfEngine {
			return rf.NewQcluster(core.Options{Ablations: abl})
		})
		s.Name = tc.name
		iseries = append(iseries, s)
	}
	fmt.Println()
	fmt.Print(eval.RenderSeriesTable(
		"Ablation (image collection, color): recall per iteration",
		"recall", iseries,
		func(s eval.EngineSeries) []float64 { return s.Recall }))
}

func (r *runner) convergence() {
	res := eval.RunConvergence(r.retrievalConfig(dataset.ColorMoments))
	fmt.Println("Convergence of Qcluster (color moments): per-iteration deltas")
	fmt.Printf("%-10s %12s %12s %12s\n", "iteration", "recall-gain", "result-churn", "model-drift")
	for i := 1; i < len(res.RecallGain); i++ {
		fmt.Printf("%-10d %12.4f %12.4f %12.4f\n",
			i, res.RecallGain[i], res.ResultChurn[i], res.ModelDrift[i])
	}
	fmt.Println("fast convergence = large first-iteration gain, vanishing tail")
}

func (r *runner) classification(shape synth.Shape, scheme cluster.Scheme, figure string) {
	res := eval.RunClassification(eval.ClassificationConfig{
		Shape:  shape,
		Scheme: scheme,
		Trials: r.cfg.trials,
		Seed:   r.cfg.seed,
	})
	fmt.Print(eval.RenderClassification(
		fmt.Sprintf("%s: classification error rate, %s data, %s matrix", figure, shape, scheme),
		res))
}

func (r *runner) qq(scheme cluster.Scheme, figure string) {
	pts, threshold := eval.RunQQ(scheme, r.cfg.pairs, 12, r.cfg.seed)
	step := len(pts) / 25
	fmt.Print(eval.RenderQQ(
		fmt.Sprintf("%s: Q-Q plot of T² vs critical distance, %s matrix (dim 12)", figure, scheme),
		pts, step))
	// Summary: decision accuracy at the actual critical value.
	var sameOK, same, diffOK, diff int
	for _, p := range pts {
		if p.SameMean {
			same++
			if p.T2 <= threshold {
				sameOK++
			}
		} else {
			diff++
			if p.T2 > threshold {
				diffOK++
			}
		}
	}
	fmt.Printf("decision at F(0.95) = %.2f: same-mean merged %d/%d; different-mean separated %d/%d\n",
		threshold, sameOK, same, diffOK, diff)
}

func (r *runner) t2Table(sameMean bool, name string) {
	for _, scheme := range []cluster.Scheme{cluster.FullInverse, cluster.Diagonal} {
		rows := eval.RunT2(eval.T2Config{
			SameMean: sameMean,
			Scheme:   scheme,
			Pairs:    r.cfg.pairs,
			Seed:     r.cfg.seed,
		})
		label := "same means"
		if !sameMean {
			label = "different means"
		}
		fmt.Print(eval.RenderT2Table(
			fmt.Sprintf("%s: T² with %s matrix, %s", name, scheme, label), rows))
		fmt.Println()
	}
}

// engines returns the engine factories by id. Declared as a function so
// each call yields fresh closures.
func engines() map[string]func() rfEngine {
	return engineFactories
}
