package main

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/rf"
)

// rfEngine aliases the engine interface for the experiment registry.
type rfEngine = rf.Engine

// engineFactories builds fresh engines per query session.
var engineFactories = map[string]func() rfEngine{
	"qcluster-diag": func() rfEngine { return rf.NewQcluster(core.Options{Scheme: cluster.Diagonal}) },
	"qcluster-inv":  func() rfEngine { return rf.NewQcluster(core.Options{Scheme: cluster.FullInverse}) },
	"qpm":           func() rfEngine { return rf.NewQPM() },
	"mindreader":    func() rfEngine { return rf.NewMindReader() },
	"qex":           func() rfEngine { return rf.NewQEX(5) },
	"falcon":        func() rfEngine { return rf.NewFalcon(-5) },
}
