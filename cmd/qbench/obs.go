package main

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"os"
	"time"

	qcluster "repro"
)

// The obs experiment exercises the instrumentation layer end to end on a
// synthetic Gaussian-mixture workload driven through the public API:
// per-round cluster evolution reconstructed from the trace events, leaf
// prune ratios from the session histograms, and the tracing overhead
// measured by timing the same search with and without a sink attached.
// It writes a machine-readable BENCH_obs.json (schema in EXPERIMENTS.md).

// obsRound aggregates the feedback-round trace events of one iteration
// across all queries.
type obsRound struct {
	Round            int     `json:"round"`
	Sessions         int     `json:"sessions"`
	MeanClusters     float64 `json:"mean_clusters"`
	ClassifyAssigned int64   `json:"classify_assigned"`
	ClassifyNew      int64   `json:"classify_new"`
	MergesAccepted   int64   `json:"merges_accepted"`
	MergesForced     int64   `json:"merges_forced"`
}

// obsOverhead compares the search path with tracing disabled (nil sink,
// the default) against a MemorySink collecting every event.
type obsOverhead struct {
	Searches        int     `json:"searches"`
	NoSinkNsPerOp   float64 `json:"no_sink_ns_per_op"`
	MemSinkNsPerOp  float64 `json:"memory_sink_ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
}

// obsReport is the BENCH_obs.json document.
type obsReport struct {
	Schema         string      `json:"schema"`
	N              int         `json:"n"`
	Dim            int         `json:"dim"`
	Queries        int         `json:"queries"`
	Iterations     int         `json:"iterations"`
	K              int         `json:"k"`
	Seed           int64       `json:"seed"`
	Rounds         []obsRound  `json:"rounds"`
	TraceEvents    int         `json:"trace_events"`
	PruneRatioMean float64     `json:"prune_ratio_mean"`
	LatencyP50Ms   float64     `json:"latency_p50_ms"`
	LatencyP95Ms   float64     `json:"latency_p95_ms"`
	Overhead       obsOverhead `json:"overhead"`
}

// obsWorld is a Gaussian-mixture collection with category labels; half
// the categories are bimodal — the paper's complex-query situation.
func obsWorld(rng *rand.Rand, cats, perCat, dim int) (vectors [][]float64, labels []int) {
	for c := 0; c < cats; c++ {
		modes := 1 + c%2
		centers := make([][]float64, modes)
		for m := range centers {
			ctr := make([]float64, dim)
			for d := range ctr {
				ctr[d] = rng.NormFloat64() * 5
			}
			centers[m] = ctr
		}
		// A wide within-mode spread makes category items surface
		// gradually over the feedback rounds instead of all at once, so
		// the classification/merge machinery has work to trace each round.
		for i := 0; i < perCat; i++ {
			ctr := centers[i%modes]
			v := make([]float64, dim)
			for d := range v {
				v[d] = ctr[d] + rng.NormFloat64()*2.5
			}
			vectors = append(vectors, v)
			labels = append(labels, c)
		}
	}
	return vectors, labels
}

func (r *runner) obsBench() {
	const dim = 8
	cats := r.cfg.cats
	if cats > 20 {
		cats = 20 // the experiment measures instrumentation, not recall
	}
	perCat := r.cfg.perCat
	rng := rand.New(rand.NewSource(r.cfg.seed))
	vectors, labels := obsWorld(rng, cats, perCat, dim)
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building collection: %v\n", err)
		os.Exit(1)
	}

	report := obsReport{
		Schema:     "qcluster-bench-obs/v1",
		N:          len(vectors),
		Dim:        dim,
		Queries:    r.cfg.queries,
		Iterations: r.cfg.iters,
		K:          r.cfg.k,
		Seed:       r.cfg.seed,
		Rounds:     make([]obsRound, r.cfg.iters),
	}
	for i := range report.Rounds {
		report.Rounds[i].Round = i + 1
	}
	fmt.Printf("instrumented feedback sessions: %d queries x %d iterations, k=%d, N=%d dim=%d\n\n",
		report.Queries, report.Iterations, report.K, report.N, report.Dim)

	// Traced feedback sessions: one MemorySink per session, events
	// folded into the per-round evolution table.
	var pruneSum float64
	var pruneN int64
	var latencies []float64
	for qi := 0; qi < r.cfg.queries; qi++ {
		queryID := rng.Intn(len(vectors))
		sink := &qcluster.MemorySink{}
		s := db.NewSession(db.Vector(queryID), qcluster.Options{Sink: sink})
		for it := 0; it < r.cfg.iters; it++ {
			res := s.Results(r.cfg.k)
			var marked []qcluster.Point
			for _, rr := range res {
				if labels[rr.ID] == labels[queryID] {
					marked = append(marked, qcluster.Point{ID: rr.ID, Vec: db.Vector(rr.ID), Score: 3})
				}
			}
			if err := s.MarkRelevant(marked); err != nil {
				fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
				os.Exit(1)
			}
		}
		report.TraceEvents += len(sink.Events())
		foldRounds(report.Rounds, sink.Events())

		st := s.Stats()
		pruneSum += st.PruneRatio.Mean() * float64(st.PruneRatio.Count)
		pruneN += st.PruneRatio.Count
		latencies = append(latencies,
			st.SearchLatencySeconds.Quantile(0.50)*1e3,
			st.SearchLatencySeconds.Quantile(0.95)*1e3)
	}
	if pruneN > 0 {
		report.PruneRatioMean = pruneSum / float64(pruneN)
	}
	if len(latencies) > 0 {
		var p50, p95 float64
		for i := 0; i < len(latencies); i += 2 {
			p50 += latencies[i]
			p95 += latencies[i+1]
		}
		report.LatencyP50Ms = p50 / float64(len(latencies)/2)
		report.LatencyP95Ms = p95 / float64(len(latencies)/2)
	}

	fmt.Printf("%6s %9s %14s %14s %10s %9s %8s\n",
		"round", "sessions", "mean clusters", "assigned", "new", "merged", "forced")
	for _, rd := range report.Rounds {
		fmt.Printf("%6d %9d %14.2f %14d %10d %9d %8d\n",
			rd.Round, rd.Sessions, rd.MeanClusters,
			rd.ClassifyAssigned, rd.ClassifyNew, rd.MergesAccepted, rd.MergesForced)
	}
	fmt.Printf("\ntrace events collected: %d; mean prune ratio %.3f; search latency p50 %.3f ms, p95 %.3f ms\n",
		report.TraceEvents, report.PruneRatioMean, report.LatencyP50Ms, report.LatencyP95Ms)

	report.Overhead = measureObsOverhead(db, vectors, r.cfg.k, r.cfg.queries)
	fmt.Printf("tracing overhead over %d searches: nil sink %.0f ns/op, memory sink %.0f ns/op (%+.1f%%)\n",
		report.Overhead.Searches, report.Overhead.NoSinkNsPerOp,
		report.Overhead.MemSinkNsPerOp, report.Overhead.OverheadPercent)

	if r.cfg.obsOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.obsOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.obsOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.obsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", r.cfg.obsOut)
	}
}

// foldRounds accumulates one session's trace into the per-round table.
// Rounds are matched by the "round" field on the feedback.round span;
// classify/merge events belong to the most recent round start.
func foldRounds(rounds []obsRound, events []qcluster.TraceEvent) {
	cur := -1
	for _, e := range events {
		if e.Span == "feedback.round" && e.Name == "start" {
			if n, ok := e.Field("round").(int); ok && n >= 1 && n <= len(rounds) {
				cur = n - 1
				rounds[cur].Sessions++
			} else {
				cur = -1
			}
			continue
		}
		if cur < 0 {
			continue
		}
		rd := &rounds[cur]
		switch e.Name {
		case "classify.assign":
			rd.ClassifyAssigned++
		case "classify.new_cluster":
			rd.ClassifyNew++
		case "merge.done":
			if n, ok := e.Field("accepted").(int); ok {
				rd.MergesAccepted += int64(n)
			}
			if n, ok := e.Field("forced").(int); ok {
				rd.MergesForced += int64(n)
			}
		case "end":
			if e.Span == "feedback.round" {
				if n, ok := e.Field("clusters").(int); ok {
					// Running mean over the sessions that reached this round.
					rd.MeanClusters += (float64(n) - rd.MeanClusters) / float64(rd.Sessions)
				}
				cur = -1
			}
		}
	}
}

// measureObsOverhead times the identical refined search with tracing
// disabled and with a MemorySink attached.
func measureObsOverhead(db *qcluster.Database, vectors [][]float64, k, searches int) obsOverhead {
	if searches < 10 {
		searches = 10
	}
	time1 := func(sink qcluster.Sink) float64 {
		q := qcluster.NewQuery(qcluster.Options{Sink: sink})
		if err := q.Feedback([]qcluster.Point{
			{ID: 0, Vec: vectors[0], Score: 3},
			{ID: 1, Vec: vectors[1], Score: 3},
		}); err != nil {
			fmt.Fprintf(os.Stderr, "overhead feedback: %v\n", err)
			os.Exit(1)
		}
		db.Search(q, k) // warm up
		t0 := time.Now()
		for i := 0; i < searches; i++ {
			db.Search(q, k)
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(searches)
	}
	o := obsOverhead{
		Searches:       searches,
		NoSinkNsPerOp:  time1(nil),
		MemSinkNsPerOp: time1(&qcluster.MemorySink{}),
	}
	if o.NoSinkNsPerOp > 0 {
		o.OverheadPercent = 100 * (o.MemSinkNsPerOp - o.NoSinkNsPerOp) / o.NoSinkNsPerOp
	}
	return o
}
