package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"runtime"
	"sort"
	"time"

	qcluster "repro"
	"repro/internal/server"
	"repro/internal/shard"
)

// The obs experiment exercises the instrumentation layer end to end on a
// synthetic Gaussian-mixture workload driven through the public API:
// per-round cluster evolution reconstructed from the trace events, leaf
// prune ratios from the session histograms, and the tracing overhead
// measured by timing the same search with and without a sink attached.
//
// v2 adds the request-tracing tier: a 4-shard server is driven over real
// HTTP with traceparent headers at head-sampling rates {0, 0.01, 1.0}
// to price span export end to end, and a record-everything pass reads
// the slow-query ring back for per-stage and per-shard latency
// attribution. It writes a machine-readable BENCH_obs.json (schema in
// EXPERIMENTS.md).

// obsRound aggregates the feedback-round trace events of one iteration
// across all queries.
type obsRound struct {
	Round            int     `json:"round"`
	Sessions         int     `json:"sessions"`
	MeanClusters     float64 `json:"mean_clusters"`
	ClassifyAssigned int64   `json:"classify_assigned"`
	ClassifyNew      int64   `json:"classify_new"`
	MergesAccepted   int64   `json:"merges_accepted"`
	MergesForced     int64   `json:"merges_forced"`
}

// obsOverhead compares the search path with tracing disabled (nil sink,
// the default) against a MemorySink collecting every event.
type obsOverhead struct {
	Searches        int     `json:"searches"`
	NoSinkNsPerOp   float64 `json:"no_sink_ns_per_op"`
	MemSinkNsPerOp  float64 `json:"memory_sink_ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
}

// obsBox describes the machine the overhead numbers came from.
type obsBox struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// obsSampling is one sampling-rate cell of the end-to-end tracing
// overhead sweep: the same HTTP search workload against the 4-shard
// server, varying only the head-sampling probability. Overhead is
// relative to the rate-0 cell (profiles still collected, nothing
// exported — the always-on cost every request pays).
type obsSampling struct {
	Rate            float64 `json:"rate"`
	Requests        int     `json:"requests"`
	NsPerOp         float64 `json:"ns_per_op"`
	OverheadPercent float64 `json:"overhead_percent"`
	EventsExported  int     `json:"events_exported"`
	SlowKept        int     `json:"slow_kept"`
}

// obsStage is one request stage's latency attribution across every
// profiled request of the record-everything pass.
type obsStage struct {
	Stage        string  `json:"stage"`
	Requests     int     `json:"requests"`
	MeanMs       float64 `json:"mean_ms"`
	P95Ms        float64 `json:"p95_ms"`
	SharePercent float64 `json:"share_percent"`
}

// obsShardLeg is one shard's scatter leg aggregated over the same pass.
type obsShardLeg struct {
	Shard          int     `json:"shard"`
	Requests       int     `json:"requests"`
	MeanMs         float64 `json:"mean_ms"`
	P95Ms          float64 `json:"p95_ms"`
	PruneRatioMean float64 `json:"prune_ratio_mean"`
}

// obsReport is the BENCH_obs.json document (schema v2: v1 fields plus
// box, shard_count, sampling, stages, shards).
type obsReport struct {
	Schema         string        `json:"schema"`
	N              int           `json:"n"`
	Dim            int           `json:"dim"`
	Queries        int           `json:"queries"`
	Iterations     int           `json:"iterations"`
	K              int           `json:"k"`
	Seed           int64         `json:"seed"`
	Box            obsBox        `json:"box"`
	Rounds         []obsRound    `json:"rounds"`
	TraceEvents    int           `json:"trace_events"`
	PruneRatioMean float64       `json:"prune_ratio_mean"`
	LatencyP50Ms   float64       `json:"latency_p50_ms"`
	LatencyP95Ms   float64       `json:"latency_p95_ms"`
	Overhead       obsOverhead   `json:"overhead"`
	ShardCount     int           `json:"shard_count"`
	Sampling       []obsSampling `json:"sampling"`
	Stages         []obsStage    `json:"stages"`
	ShardLegs      []obsShardLeg `json:"shards"`
}

// obsWorld is a Gaussian-mixture collection with category labels; half
// the categories are bimodal — the paper's complex-query situation.
func obsWorld(rng *rand.Rand, cats, perCat, dim int) (vectors [][]float64, labels []int) {
	for c := 0; c < cats; c++ {
		modes := 1 + c%2
		centers := make([][]float64, modes)
		for m := range centers {
			ctr := make([]float64, dim)
			for d := range ctr {
				ctr[d] = rng.NormFloat64() * 5
			}
			centers[m] = ctr
		}
		// A wide within-mode spread makes category items surface
		// gradually over the feedback rounds instead of all at once, so
		// the classification/merge machinery has work to trace each round.
		for i := 0; i < perCat; i++ {
			ctr := centers[i%modes]
			v := make([]float64, dim)
			for d := range v {
				v[d] = ctr[d] + rng.NormFloat64()*2.5
			}
			vectors = append(vectors, v)
			labels = append(labels, c)
		}
	}
	return vectors, labels
}

func (r *runner) obsBench() {
	const dim = 8
	cats := r.cfg.cats
	if cats > 20 {
		cats = 20 // the experiment measures instrumentation, not recall
	}
	perCat := r.cfg.perCat
	rng := rand.New(rand.NewSource(r.cfg.seed))
	vectors, labels := obsWorld(rng, cats, perCat, dim)
	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "building collection: %v\n", err)
		os.Exit(1)
	}

	report := obsReport{
		Schema:     "qcluster-bench-obs/v2",
		N:          len(vectors),
		Dim:        dim,
		Queries:    r.cfg.queries,
		Iterations: r.cfg.iters,
		K:          r.cfg.k,
		Seed:       r.cfg.seed,
		Box: obsBox{
			GoVersion:  runtime.Version(),
			GOOS:       runtime.GOOS,
			GOARCH:     runtime.GOARCH,
			NumCPU:     runtime.NumCPU(),
			GOMAXPROCS: runtime.GOMAXPROCS(0),
		},
		Rounds: make([]obsRound, r.cfg.iters),
	}
	for i := range report.Rounds {
		report.Rounds[i].Round = i + 1
	}
	fmt.Printf("instrumented feedback sessions: %d queries x %d iterations, k=%d, N=%d dim=%d\n\n",
		report.Queries, report.Iterations, report.K, report.N, report.Dim)

	// Traced feedback sessions: one MemorySink per session, events
	// folded into the per-round evolution table.
	var pruneSum float64
	var pruneN int64
	var latencies []float64
	for qi := 0; qi < r.cfg.queries; qi++ {
		queryID := rng.Intn(len(vectors))
		sink := &qcluster.MemorySink{}
		s := db.NewSession(db.Vector(queryID), qcluster.Options{Sink: sink})
		for it := 0; it < r.cfg.iters; it++ {
			res := s.Results(r.cfg.k)
			var marked []qcluster.Point
			for _, rr := range res {
				if labels[rr.ID] == labels[queryID] {
					marked = append(marked, qcluster.Point{ID: rr.ID, Vec: db.Vector(rr.ID), Score: 3})
				}
			}
			if err := s.MarkRelevant(marked); err != nil {
				fmt.Fprintf(os.Stderr, "feedback: %v\n", err)
				os.Exit(1)
			}
		}
		report.TraceEvents += len(sink.Events())
		foldRounds(report.Rounds, sink.Events())

		st := s.Stats()
		pruneSum += st.PruneRatio.Mean() * float64(st.PruneRatio.Count)
		pruneN += st.PruneRatio.Count
		latencies = append(latencies,
			st.SearchLatencySeconds.Quantile(0.50)*1e3,
			st.SearchLatencySeconds.Quantile(0.95)*1e3)
	}
	if pruneN > 0 {
		report.PruneRatioMean = pruneSum / float64(pruneN)
	}
	if len(latencies) > 0 {
		var p50, p95 float64
		for i := 0; i < len(latencies); i += 2 {
			p50 += latencies[i]
			p95 += latencies[i+1]
		}
		report.LatencyP50Ms = p50 / float64(len(latencies)/2)
		report.LatencyP95Ms = p95 / float64(len(latencies)/2)
	}

	fmt.Printf("%6s %9s %14s %14s %10s %9s %8s\n",
		"round", "sessions", "mean clusters", "assigned", "new", "merged", "forced")
	for _, rd := range report.Rounds {
		fmt.Printf("%6d %9d %14.2f %14d %10d %9d %8d\n",
			rd.Round, rd.Sessions, rd.MeanClusters,
			rd.ClassifyAssigned, rd.ClassifyNew, rd.MergesAccepted, rd.MergesForced)
	}
	fmt.Printf("\ntrace events collected: %d; mean prune ratio %.3f; search latency p50 %.3f ms, p95 %.3f ms\n",
		report.TraceEvents, report.PruneRatioMean, report.LatencyP50Ms, report.LatencyP95Ms)

	report.Overhead = measureObsOverhead(db, vectors, r.cfg.k, r.cfg.queries)
	fmt.Printf("tracing overhead over %d searches: nil sink %.0f ns/op, memory sink %.0f ns/op (%+.1f%%)\n",
		report.Overhead.Searches, report.Overhead.NoSinkNsPerOp,
		report.Overhead.MemSinkNsPerOp, report.Overhead.OverheadPercent)

	// v2: the request-tracing tier over a sharded server.
	report.ShardCount = 4
	report.Sampling, report.Stages, report.ShardLegs =
		obsServeSweep(vectors, report.ShardCount, r.cfg.k, r.cfg.seed)

	fmt.Printf("\nend-to-end span export over a %d-shard server (HTTP, traceparent propagated):\n", report.ShardCount)
	fmt.Printf("%8s %9s %12s %10s %8s %6s\n", "rate", "requests", "ns/op", "overhead", "events", "slow")
	for _, c := range report.Sampling {
		fmt.Printf("%8.2f %9d %12.0f %+9.1f%% %8d %6d\n",
			c.Rate, c.Requests, c.NsPerOp, c.OverheadPercent, c.EventsExported, c.SlowKept)
	}
	fmt.Printf("\nper-stage attribution (record-everything pass):\n")
	fmt.Printf("%10s %9s %10s %10s %8s\n", "stage", "requests", "mean ms", "p95 ms", "share")
	for _, st := range report.Stages {
		fmt.Printf("%10s %9d %10.4f %10.4f %7.1f%%\n",
			st.Stage, st.Requests, st.MeanMs, st.P95Ms, st.SharePercent)
	}
	fmt.Printf("\nper-shard scatter legs:\n")
	fmt.Printf("%6s %9s %10s %10s %12s\n", "shard", "requests", "mean ms", "p95 ms", "prune ratio")
	for _, sl := range report.ShardLegs {
		fmt.Printf("%6d %9d %10.4f %10.4f %12.3f\n",
			sl.Shard, sl.Requests, sl.MeanMs, sl.P95Ms, sl.PruneRatioMean)
	}

	if r.cfg.obsOut != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding %s: %v\n", r.cfg.obsOut, err)
			os.Exit(1)
		}
		if err := os.WriteFile(r.cfg.obsOut, append(blob, '\n'), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "writing %s: %v\n", r.cfg.obsOut, err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s\n", r.cfg.obsOut)
	}
}

// foldRounds accumulates one session's trace into the per-round table.
// Rounds are matched by the "round" field on the feedback.round span;
// classify/merge events belong to the most recent round start.
func foldRounds(rounds []obsRound, events []qcluster.TraceEvent) {
	cur := -1
	for _, e := range events {
		if e.Span == "feedback.round" && e.Name == "start" {
			if n, ok := e.Field("round").(int); ok && n >= 1 && n <= len(rounds) {
				cur = n - 1
				rounds[cur].Sessions++
			} else {
				cur = -1
			}
			continue
		}
		if cur < 0 {
			continue
		}
		rd := &rounds[cur]
		switch e.Name {
		case "classify.assign":
			rd.ClassifyAssigned++
		case "classify.new_cluster":
			rd.ClassifyNew++
		case "merge.done":
			if n, ok := e.Field("accepted").(int); ok {
				rd.MergesAccepted += int64(n)
			}
			if n, ok := e.Field("forced").(int); ok {
				rd.MergesForced += int64(n)
			}
		case "end":
			if e.Span == "feedback.round" {
				if n, ok := e.Field("clusters").(int); ok {
					// Running mean over the sessions that reached this round.
					rd.MeanClusters += (float64(n) - rd.MeanClusters) / float64(rd.Sessions)
				}
				cur = -1
			}
		}
	}
}

// obsServeSweep prices the request-tracing tier end to end: the same
// HTTP search workload (traceparent header on every request) against a
// sharded server at head-sampling rates {0, 0.01, 1.0}, then a
// record-everything pass whose slow-query ring yields per-stage and
// per-shard latency attribution.
func obsServeSweep(vectors [][]float64, shards, k int, seed int64) ([]obsSampling, []obsStage, []obsShardLeg) {
	set, err := shard.New(vectors, shards, qcluster.IndexOptions{})
	if err != nil {
		fmt.Fprintf(os.Stderr, "building %d-shard set: %v\n", shards, err)
		os.Exit(1)
	}
	const requests = 800
	rng := rand.New(rand.NewSource(seed + 7))

	// Overhead sweep: production-shaped options varying only the
	// sampling rate; the hour threshold guarantees tail-keep stays out
	// of the measurement.
	var cells []obsSampling
	var base float64
	for _, rate := range []float64{0, 0.01, 1.0} {
		sink := &qcluster.MemorySink{}
		nsPerOp, slow := obsDriveServer(set, server.Options{
			TraceSink:       sink,
			TraceSampleRate: rate,
			SlowThreshold:   time.Hour,
		}, k, requests, rng)
		cell := obsSampling{
			Rate:           rate,
			Requests:       requests,
			NsPerOp:        nsPerOp,
			EventsExported: len(sink.Events()),
			SlowKept:       len(slow),
		}
		if rate == 0 {
			base = nsPerOp
		} else if base > 0 {
			cell.OverheadPercent = 100 * (nsPerOp - base) / base
		}
		cells = append(cells, cell)
	}

	// Attribution pass: a negative threshold records every request in
	// the ring (sized to hold them all); no sink, so nothing exports.
	_, entries := obsDriveServer(set, server.Options{
		SlowThreshold: -time.Nanosecond,
		SlowLogSize:   requests,
	}, k, requests, rng)
	return cells, obsFoldStages(entries), obsFoldShardLegs(entries)
}

// obsDriveServer starts a fresh server over the set, drives it with
// sequential traced searches, and returns the per-request wall clock
// plus the slow-query ring contents at shutdown.
func obsDriveServer(set *shard.Set, opt server.Options, k, requests int, rng *rand.Rand) (float64, []*qcluster.SlowEntry) {
	s, err := server.StartSharded("127.0.0.1:0", set, opt)
	if err != nil {
		fmt.Fprintf(os.Stderr, "starting sharded server: %v\n", err)
		os.Exit(1)
	}
	base := "http://" + s.Addr()
	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: 2}}
	do := func() {
		blob, err := json.Marshal(map[string]any{"example_id": rng.Intn(set.Len()), "k": k})
		if err != nil {
			fmt.Fprintf(os.Stderr, "encoding search: %v\n", err)
			os.Exit(1)
		}
		req, err := http.NewRequest(http.MethodPost, base+"/v1/search", bytes.NewReader(blob))
		if err != nil {
			fmt.Fprintf(os.Stderr, "building search request: %v\n", err)
			os.Exit(1)
		}
		req.Header.Set("Content-Type", "application/json")
		// Flags 00: the upstream made no sampling decision, so the
		// server's head-sampling rate is what's being measured (a 01
		// flag would force export on every request).
		req.Header.Set("Traceparent", fmt.Sprintf("00-%016x%016x-%016x-00",
			rng.Uint64()|1, rng.Uint64(), rng.Uint64()|1))
		resp, err := client.Do(req)
		if err != nil {
			fmt.Fprintf(os.Stderr, "search: %v\n", err)
			os.Exit(1)
		}
		_, _ = io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			fmt.Fprintf(os.Stderr, "search: unexpected status %d\n", resp.StatusCode)
			os.Exit(1)
		}
	}
	for i := 0; i < 30; i++ {
		do() // warm up connections, caches and the JIT-free parts alike
	}
	t0 := time.Now()
	for i := 0; i < requests; i++ {
		do()
	}
	nsPerOp := float64(time.Since(t0).Nanoseconds()) / float64(requests)
	entries := s.SlowLog().Entries()
	client.CloseIdleConnections()
	if err := s.Close(); err != nil {
		fmt.Fprintf(os.Stderr, "draining server: %v\n", err)
		os.Exit(1)
	}
	return nsPerOp, entries
}

// obsFoldStages aggregates the ring's per-stage milliseconds into the
// attribution table, ordered by the canonical stage sequence.
func obsFoldStages(entries []*qcluster.SlowEntry) []obsStage {
	byStage := map[string][]float64{}
	var total float64
	for _, e := range entries {
		for name, ms := range e.StageMS {
			byStage[name] = append(byStage[name], ms)
			total += ms
		}
	}
	var out []obsStage
	for _, name := range qcluster.StageNames() {
		xs := byStage[name]
		if len(xs) == 0 {
			continue
		}
		var sum float64
		for _, x := range xs {
			sum += x
		}
		st := obsStage{
			Stage:    name,
			Requests: len(xs),
			MeanMs:   sum / float64(len(xs)),
			P95Ms:    obsP95(xs),
		}
		if total > 0 {
			st.SharePercent = 100 * sum / total
		}
		out = append(out, st)
	}
	return out
}

// obsFoldShardLegs aggregates the scatter legs by shard index.
func obsFoldShardLegs(entries []*qcluster.SlowEntry) []obsShardLeg {
	byShard := map[int]*obsShardLeg{}
	durs := map[int][]float64{}
	for _, e := range entries {
		for _, leg := range e.Shards {
			l := byShard[leg.Shard]
			if l == nil {
				l = &obsShardLeg{Shard: leg.Shard}
				byShard[leg.Shard] = l
			}
			l.Requests++
			l.MeanMs += leg.DurationMS
			l.PruneRatioMean += leg.PruneRatio
			durs[leg.Shard] = append(durs[leg.Shard], leg.DurationMS)
		}
	}
	var out []obsShardLeg
	for _, l := range byShard {
		l.MeanMs /= float64(l.Requests)
		l.PruneRatioMean /= float64(l.Requests)
		l.P95Ms = obsP95(durs[l.Shard])
		out = append(out, *l)
	}
	sort.Slice(out, func(a, b int) bool { return out[a].Shard < out[b].Shard })
	return out
}

// obsP95 returns the 95th percentile of xs (nearest rank; 0 when empty).
func obsP95(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	i := int(0.95*float64(len(sorted)-1) + 0.5)
	return sorted[i]
}

// measureObsOverhead times the identical refined search with tracing
// disabled and with a MemorySink attached.
func measureObsOverhead(db *qcluster.Database, vectors [][]float64, k, searches int) obsOverhead {
	if searches < 10 {
		searches = 10
	}
	time1 := func(sink qcluster.Sink) float64 {
		q := qcluster.NewQuery(qcluster.Options{Sink: sink})
		if err := q.Feedback([]qcluster.Point{
			{ID: 0, Vec: vectors[0], Score: 3},
			{ID: 1, Vec: vectors[1], Score: 3},
		}); err != nil {
			fmt.Fprintf(os.Stderr, "overhead feedback: %v\n", err)
			os.Exit(1)
		}
		db.Search(q, k) // warm up
		t0 := time.Now()
		for i := 0; i < searches; i++ {
			db.Search(q, k)
		}
		return float64(time.Since(t0).Nanoseconds()) / float64(searches)
	}
	o := obsOverhead{
		Searches:       searches,
		NoSinkNsPerOp:  time1(nil),
		MemSinkNsPerOp: time1(&qcluster.MemorySink{}),
	}
	if o.NoSinkNsPerOp > 0 {
		o.OverheadPercent = 100 * (o.MemSinkNsPerOp - o.NoSinkNsPerOp) / o.NoSinkNsPerOp
	}
	return o
}
