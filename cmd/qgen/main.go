// Command qgen builds the synthetic image collection, extracts the color
// and texture features from every rendered image, and writes a dataset
// snapshot that cmd/qbench and cmd/qdemo can reload instantly.
//
// Usage:
//
//	qgen -out corel.gob -cats 300 -percat 100 -size 32
//	qbench -data corel.gob -exp fig10
package main

import (
	"flag"
	"fmt"
	"image/png"
	"os"
	"path/filepath"
	"time"

	"repro/internal/dataset"
	"repro/internal/imagegen"
)

func main() {
	var (
		out     = flag.String("out", "dataset.gob", "snapshot output path")
		cats    = flag.Int("cats", 300, "number of categories (paper: ~300)")
		perCat  = flag.Int("percat", 100, "images per category (paper: ~100)")
		size    = flag.Int("size", 32, "image side length in pixels")
		themes  = flag.Int("themes", 0, "number of themes (0 = built-in default)")
		bimodal = flag.Float64("bimodal", 0.3, "fraction of multi-variant (complex) categories")
		seed    = flag.Int64("seed", 2003, "generator seed")
		workers = flag.Int("workers", 0, "extraction workers (0 = GOMAXPROCS)")
		sample  = flag.String("sample", "", "also write sample PNGs (one per category, first 12 categories) to this directory")
	)
	flag.Parse()

	cfg := dataset.Config{
		Collection: imagegen.CollectionConfig{
			Seed:              *seed,
			NumCategories:     *cats,
			ImagesPerCategory: *perCat,
			ImageSize:         *size,
			Themes:            *themes,
			BimodalFrac:       *bimodal,
		},
		Workers: *workers,
	}
	fmt.Fprintf(os.Stderr, "rendering %d images (%d categories x %d, %dpx) and extracting features...\n",
		*cats**perCat, *cats, *perCat, *size)
	start := time.Now()
	ds, err := dataset.Build(cfg)
	if err != nil {
		fmt.Fprintf(os.Stderr, "build: %v\n", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "built in %v; writing %s\n", time.Since(start).Round(time.Millisecond), *out)
	if err := ds.SaveFile(*out, cfg.Collection); err != nil {
		fmt.Fprintf(os.Stderr, "save: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("dataset: %d images, color %d-d, texture %d-d -> %s\n",
		ds.NumImages(), ds.Color[0].Dim(), ds.Texture[0].Dim(), *out)

	if *sample != "" {
		if err := writeSamples(ds, *sample); err != nil {
			fmt.Fprintf(os.Stderr, "samples: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("sample images written to %s\n", *sample)
	}
}

// writeSamples renders one PNG per category (capped at 12 categories,
// one image per variant) so the synthetic collection can be inspected.
func writeSamples(ds *dataset.Dataset, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	col := ds.Col
	for cat := 0; cat < len(col.Categories) && cat < 12; cat++ {
		c := col.Categories[cat]
		for v := range c.Variants {
			img := c.RenderVariant(v, int64(1000+v), col.ImageSize)
			path := filepath.Join(dir, fmt.Sprintf("%s-v%d.png", c.Name, v))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := png.Encode(f, img); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
	}
	return nil
}
