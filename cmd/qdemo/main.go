// Command qdemo runs an interactive Qcluster retrieval session on a
// generated collection: it picks (or accepts) a query image, shows the
// top-k results with their ground-truth categories, lets you mark the
// relevant ones (or auto-marks with the oracle), and refines the query
// until you stop — Algorithm 1 on the terminal.
//
// Usage:
//
//	qdemo                      # small built-in collection, auto-oracle
//	qdemo -data corel.gob -q 1234 -k 20 -manual
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imagegen"
	"repro/internal/index"
	"repro/internal/rf"
)

func main() {
	var (
		data    = flag.String("data", "", "dataset snapshot from cmd/qgen (optional)")
		query   = flag.Int("q", -1, "query image id (-1 = random)")
		k       = flag.Int("k", 15, "results per round")
		iters   = flag.Int("iters", 5, "feedback rounds")
		manual  = flag.Bool("manual", false, "type relevant ranks yourself instead of the oracle")
		saveTo  = flag.String("save", "", "write the final query model to this path")
		feature = flag.String("feature", "color", "feature space: color or texture")
		seed    = flag.Int64("seed", 42, "random seed")
	)
	flag.Parse()

	ds := loadOrBuild(*data, *seed)
	var vecs = ds.Vectors(dataset.ColorMoments)
	if *feature == "texture" {
		vecs = ds.Vectors(dataset.CooccurrenceTexture)
	}
	store, err := index.NewStore(vecs)
	if err != nil {
		fatal(err)
	}
	tree := index.NewHybridTree(store, index.TreeOptions{})
	searcher := index.NewRefinementSearcher(tree)

	labels := ds.Col.Labels()
	themes := make([]int, len(ds.Col.Categories))
	for i, c := range ds.Col.Categories {
		themes[i] = c.Theme
	}
	oracle := rf.NewOracle(labels, themes)

	rng := rand.New(rand.NewSource(*seed))
	qid := *query
	if qid < 0 || qid >= store.Len() {
		qid = rng.Intn(store.Len())
	}
	qcat := labels[qid]
	fmt.Printf("query image %d — category %q (%d images)\n",
		qid, ds.Col.Categories[qcat].Name, oracle.CategorySize(qcat))

	engine := rf.NewQcluster(core.Options{})
	engine.Init(store.Vector(qid))

	in := bufio.NewScanner(os.Stdin)
	for round := 0; round <= *iters; round++ {
		results, _ := searcher.KNN(engine.Metric(), *k)
		hits := 0
		fmt.Printf("\n-- round %d (%d query points) --\n", round, engine.NumQueryPoints())
		for rank, r := range results {
			cat := labels[r.ID]
			mark := " "
			if cat == qcat {
				mark = "*"
				hits++
			}
			fmt.Printf("%2d %s img %5d  %-14s d=%.4f\n",
				rank+1, mark, r.ID, ds.Col.Categories[cat].Name, r.Dist)
		}
		fmt.Printf("precision %.2f, recall %.2f\n",
			float64(hits)/float64(len(results)),
			float64(hits)/float64(oracle.CategorySize(qcat)))
		if m := engine.Model(); m != nil {
			for ci, info := range m.Snapshot() {
				fmt.Printf("   cluster %d: %d images, weight %.0f, rms radius %.3f\n",
					ci, info.Points, info.Weight, info.RMSRadius)
			}
		}
		if round == *iters {
			break
		}

		ids := make([]int, len(results))
		for i, r := range results {
			ids[i] = r.ID
		}
		if *manual {
			fmt.Print("relevant ranks (e.g. 1 3 7; empty = stop): ")
			if !in.Scan() {
				break
			}
			line := strings.Fields(in.Text())
			if len(line) == 0 {
				break
			}
			var marked []int
			for _, tok := range line {
				if r, err := strconv.Atoi(tok); err == nil && r >= 1 && r <= len(ids) {
					marked = append(marked, ids[r-1])
				}
			}
			pts := oracle.Mark(qcat, marked, store.Vector)
			engine.Feedback(pts)
		} else {
			engine.Feedback(oracle.Mark(qcat, ids, store.Vector))
		}
	}
	if *saveTo != "" && engine.Model() != nil {
		f, err := os.Create(*saveTo)
		if err != nil {
			fatal(err)
		}
		if err := engine.Model().Save(f); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Printf("\nquery model saved to %s\n", *saveTo)
	}
}

func loadOrBuild(path string, seed int64) *dataset.Dataset {
	if path != "" {
		ds, err := dataset.LoadFile(path)
		if err != nil {
			fatal(err)
		}
		return ds
	}
	fmt.Fprintln(os.Stderr, "building a small demo collection (use cmd/qgen for a big one)...")
	ds, err := dataset.Build(dataset.Config{
		Collection: imagegen.CollectionConfig{
			Seed: seed, NumCategories: 24, ImagesPerCategory: 40,
			ImageSize: 32, Themes: 6, BimodalFrac: 0.4,
		},
	})
	if err != nil {
		fatal(err)
	}
	return ds
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, err)
	os.Exit(1)
}
