package qcluster

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/wal"
)

// ErrPartialResults tags errors returned alongside best-effort results
// when a context-aware search is interrupted mid-traversal by
// cancellation or a deadline. The results returned with it are the best
// candidates found before the interrupt — sorted, possibly fewer than k,
// and not guaranteed exact. The error also wraps the context's error, so
// errors.Is(err, context.DeadlineExceeded) (or context.Canceled) works.
var ErrPartialResults = errors.New("partial results")

// ErrNotReady is returned by SearchContext when the query has not
// absorbed any feedback yet (see Query.Ready); the initial retrieval
// should go through SearchByExampleContext instead.
var ErrNotReady = errors.New("query has no feedback yet")

// ErrDimensionMismatch is returned by the context-aware search variants
// when an example vector's dimensionality differs from the database's.
// The error-free variants (SearchByExample, Session.Results) return nil
// results for the same condition. A longer example used to panic inside
// the index's lower-bound computation and a shorter one silently ranked
// by a prefix of the dimensions; both are now rejected at the boundary.
var ErrDimensionMismatch = errors.New("example dimension mismatch")

// ErrInternal is the sentinel wrapped by every InternalError, so callers
// can match the whole class with errors.Is(err, ErrInternal).
var ErrInternal = errors.New("internal error")

// ErrReadOnly is returned by every durable ingest call after a
// persistent disk error (failed WAL append, fsync or snapshot write)
// flipped the DurableDatabase into read-only degraded mode. Reads and
// feedback sessions keep working; writes fail fast until the process is
// restarted against healthy storage. The error wraps the original disk
// failure.
var ErrReadOnly = errors.New("database is read-only (durability degraded)")

// ErrCorruptSnapshot tags snapshot decode failures — both query-model
// snapshots (Query.Save/LoadQuery) and database store snapshots
// (Database.Snapshot/OpenDatabase): truncation, bit flips and
// semantically impossible contents all wrap it. Alias of the internal
// core sentinel so the public and internal views cannot drift.
var ErrCorruptSnapshot = core.ErrCorruptSnapshot

// ErrBackendUnavailable is returned by SearchApprox/SearchApproxContext
// when the database was not built with IndexOptions.Backend "ann" — the
// approximate path needs the graph index, which only that backend
// constructs.
var ErrBackendUnavailable = errors.New("search backend unavailable")

// ErrCorruptLog tags write-ahead-log damage that cannot be a torn tail
// (a checksum failure followed by intact records): truncating there
// would silently drop acknowledged writes, so OpenDatabase refuses to
// boot and the operator must restore from a snapshot. Alias of the
// internal wal sentinel.
var ErrCorruptLog = wal.ErrCorruptLog

// InternalError is produced by the panic barrier at the public API
// boundary: a panic escaping the math or index core (an invariant
// violation, a numerically impossible state) is converted into this
// typed error instead of crashing the calling goroutine. Retrieval state
// is left as it was when the panic fired; the caller can keep using the
// database for other queries.
type InternalError struct {
	// Op is the public operation that trapped the panic.
	Op string
	// Value is the recovered panic value.
	Value any
}

// Error implements the error interface.
func (e *InternalError) Error() string {
	return fmt.Sprintf("qcluster: %s: internal error: %v", e.Op, e.Value)
}

// Unwrap makes errors.Is(err, ErrInternal) true for every InternalError.
func (e *InternalError) Unwrap() error { return ErrInternal }

// barrier is the recover-based panic barrier installed at every
// error-returning public entry point: defer barrier("Op", &err).
func barrier(op string, err *error) {
	if r := recover(); r != nil {
		*err = &InternalError{Op: op, Value: r}
	}
}

// wrapInterrupt converts a context error from an interrupted search into
// the public partial-results error; nil stays nil.
func wrapInterrupt(err error, n int) error {
	if err == nil {
		return nil
	}
	return fmt.Errorf("qcluster: search interrupted after %d results: %w: %w",
		n, ErrPartialResults, err)
}
