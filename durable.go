package qcluster

import (
	"context"
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/obs"
	"repro/internal/wal"
)

// DurableOptions tunes OpenDatabase. The zero value (plus a Seed for
// the first boot) is a sane default.
type DurableOptions struct {
	// Index tunes the in-memory search index.
	Index IndexOptions
	// Seed provides the initial collection for a directory that holds no
	// snapshot yet (first boot). Ignored once a snapshot exists.
	Seed [][]float64
	// BatchSize caps the adds coalesced into one WAL record + fsync
	// (group commit). Default 256.
	BatchSize int
	// MaxWait bounds how long a forming batch may keep absorbing
	// co-batchers before it is flushed anyway. The batcher flushes as
	// soon as the queue runs empty, so this is an upper bound on added
	// latency, not a fixed delay. Default 2ms.
	MaxWait time.Duration
	// SnapshotEveryBytes triggers a background snapshot rotation (which
	// truncates the WAL) when the active log grows past it. Default
	// 64 MiB; negative disables automatic rotation.
	SnapshotEveryBytes int64
	// TrimToItems, when positive, drops every recovered vector beyond the
	// first TrimToItems at boot, before the boot checkpoint. The sharded
	// set uses it to roll a shard back to the longest globally consistent
	// prefix when a crash tore a cross-shard batch: the trimmed suffix is
	// by construction unacknowledged (an acknowledged global batch is
	// durable on every shard), so durability semantics are unchanged.
	// 0 (the default) keeps everything.
	TrimToItems int
}

func (o DurableOptions) withDefaults() DurableOptions {
	if o.BatchSize <= 0 {
		o.BatchSize = 256
	}
	if o.MaxWait <= 0 {
		o.MaxWait = 2 * time.Millisecond
	}
	if o.SnapshotEveryBytes == 0 {
		o.SnapshotEveryBytes = 64 << 20
	}
	return o
}

// DurabilityHealth is a DurableDatabase's durability status: whether a
// disk failure degraded it to read-only, what boot recovery did, and
// the live write-ahead-log footprint.
type DurabilityHealth struct {
	// ReadOnly reports degraded mode: a persistent disk error stopped
	// the ingest path; searches and sessions keep working.
	ReadOnly bool `json:"read_only"`
	// Err is the disk failure that degraded the database ("" when
	// healthy).
	Err string `json:"err,omitempty"`
	// Items is the live collection size.
	Items int `json:"items"`
	// WALBytes is the active log's size since the last rotation.
	WALBytes int64 `json:"wal_bytes"`
	// ReplayedRecords and ReplayedVectors describe boot recovery: WAL
	// records applied on top of the snapshot and the vectors they held.
	ReplayedRecords int `json:"replayed_records"`
	ReplayedVectors int `json:"replayed_vectors"`
	// TruncatedBytes is the torn tail dropped from the log at boot
	// (non-zero exactly when the previous process died mid-append).
	TruncatedBytes int64 `json:"truncated_bytes"`
	// TrimmedVectors counts recovered vectors dropped at boot by
	// DurableOptions.TrimToItems (cross-shard consistency rollback).
	TrimmedVectors int `json:"trimmed_vectors,omitempty"`
	// Snapshots counts snapshot rotations this process completed
	// (including the boot checkpoint).
	Snapshots int64 `json:"snapshots"`
	// LastSnapshot is the completion time of the most recent rotation
	// (zero if none this process).
	LastSnapshot time.Time `json:"last_snapshot,omitempty"`
}

// DurableDatabase is a Database whose ingest path survives crashes: an
// Add or AddBatch is acknowledged only after its vectors are fsynced
// into a write-ahead log, and OpenDatabase boots warm from the last
// snapshot plus a WAL replay — every acknowledged write is recovered,
// no unacknowledged write is half-applied.
//
// Writes MUST go through the DurableDatabase methods (Add, AddBatch,
// AddBatchContext); calling the embedded Database's Add directly would
// bypass the log and the write would not survive a crash. Concurrent
// Adds are coalesced by an internal batcher (size + max-wait flush)
// into single-lock AddBatch applications behind one group-commit fsync.
//
// A persistent disk error flips the database into read-only degraded
// mode: ingest calls fail fast with ErrReadOnly while searches and
// feedback sessions keep working; Health surfaces the state.
type DurableDatabase struct {
	*Database
	dir string
	opt DurableOptions

	reqs    chan *addReq
	stop    chan struct{}
	done    chan struct{}
	closeMu sync.RWMutex // excludes enqueue against Close
	closed  bool         // guarded by closeMu

	// flushMu serializes WAL commit + store apply against rotation's
	// segment swap, so a snapshot captured under it covers every record
	// of the retired segment.
	flushMu sync.Mutex
	w       *wal.Writer // guarded by flushMu
	walB    atomic.Int64

	rotating atomic.Bool
	bg       sync.WaitGroup

	readOnly atomic.Bool
	healthMu sync.Mutex
	health   DurabilityHealth

	met durableMetrics
}

type addReq struct {
	vecs [][]float64
	ids  []int
	err  error
	done chan struct{}
}

// durableMetrics are the durability handles, registered in the embedded
// database's registry so Metrics()/ServeDebug expose one merged view.
type durableMetrics struct {
	walMet     wal.Metrics
	replayRecs *obs.Counter
	replayVecs *obs.Counter
	truncBytes *obs.Counter
	rotations  *obs.Counter
	readOnly   *obs.Gauge
	batches    *obs.Counter
	batchSize  *obs.Histogram
	acked      *obs.Counter
	rejected   *obs.Counter
	ackSec     *obs.Histogram
}

func newDurableMetrics(reg *obs.Registry) durableMetrics {
	return durableMetrics{
		walMet: wal.Metrics{
			AppendSeconds: reg.Histogram("wal.append_seconds", obs.LatencyBuckets()),
			FsyncSeconds:  reg.Histogram("wal.fsync_seconds", obs.LatencyBuckets()),
			Fsyncs:        reg.Counter("wal.fsyncs"),
			Records:       reg.Counter("wal.records"),
			Bytes:         reg.Counter("wal.bytes"),
		},
		replayRecs: reg.Counter("wal.replay_records"),
		replayVecs: reg.Counter("wal.replay_vectors"),
		truncBytes: reg.Counter("wal.replay_truncated_bytes"),
		rotations:  reg.Counter("wal.rotations"),
		readOnly:   reg.Gauge("wal.read_only"),
		batches:    reg.Counter("ingest.batches"),
		batchSize:  reg.Histogram("ingest.batch_size", obs.SizeBuckets()),
		acked:      reg.Counter("ingest.acked"),
		rejected:   reg.Counter("ingest.rejected"),
		ackSec:     reg.Histogram("ingest.ack_seconds", obs.LatencyBuckets()),
	}
}

// File names inside the durable directory.
const (
	snapshotFile = "snapshot"
	walFile      = "wal.log"
	walOldFile   = "wal.old"
)

// OpenDatabase opens (or initializes) the durable database rooted at
// dir: boot loads the snapshot, replays the write-ahead log on top
// (repairing a torn tail), checkpoints the recovered state, and starts
// the ingest batcher. A directory with no snapshot is seeded from
// opt.Seed. The caller must Close the returned database.
func OpenDatabase(dir string, opt DurableOptions) (_ *DurableDatabase, err error) {
	defer barrier("OpenDatabase", &err)
	opt = opt.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("qcluster: create data dir: %w", err)
	}
	// A crash can leave a half-written snapshot temp; it was never
	// renamed into place, so it is garbage.
	os.Remove(filepath.Join(dir, snapshotFile+".tmp"))

	dim, flat, err := loadSnapshotFile(filepath.Join(dir, snapshotFile))
	if err != nil {
		return nil, err
	}
	firstBoot := flat == nil
	if firstBoot && len(opt.Seed) > 0 {
		dim = len(opt.Seed[0])
		flat = make([]float64, 0, len(opt.Seed)*dim)
		for i, v := range opt.Seed {
			if len(v) != dim {
				return nil, fmt.Errorf("qcluster: seed vector %d has dimension %d, want %d: %w",
					i, len(v), dim, ErrDimensionMismatch)
			}
			for d, x := range v {
				if math.IsNaN(x) || math.IsInf(x, 0) {
					return nil, fmt.Errorf("qcluster: seed vector %d component %d is not finite", i, d)
				}
			}
			flat = append(flat, v...)
		}
	}

	// Replay the retired segment (present only if a crash interrupted a
	// rotation) and then the active log. Records carry their starting
	// id, so records already covered by the snapshot skip idempotently.
	var health DurabilityHealth
	for _, name := range []string{walOldFile, walFile} {
		stats, rerr := wal.Replay(filepath.Join(dir, name), func(payload []byte) error {
			applied, aerr := applyWALRecord(payload, &dim, &flat)
			health.ReplayedVectors += applied
			return aerr
		})
		if rerr != nil {
			return nil, fmt.Errorf("qcluster: replaying %s: %w", name, rerr)
		}
		health.ReplayedRecords += stats.Records
		health.TruncatedBytes += stats.TruncatedBytes
	}

	// Cross-shard consistency rollback: drop the unacknowledged suffix a
	// torn multi-shard batch left behind (see DurableOptions.TrimToItems).
	if opt.TrimToItems > 0 && dim > 0 && len(flat) > opt.TrimToItems*dim {
		health.TrimmedVectors = len(flat)/dim - opt.TrimToItems
		flat = flat[:opt.TrimToItems*dim]
	}

	if len(flat) == 0 {
		return nil, fmt.Errorf("qcluster: %s holds no snapshot and no seed was provided", dir)
	}
	db, err := newDatabaseFlat(flat, dim, opt.Index)
	if err != nil {
		return nil, err
	}

	d := &DurableDatabase{
		Database: db,
		dir:      dir,
		opt:      opt,
		reqs:     make(chan *addReq, 4*opt.BatchSize),
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
		met:      newDurableMetrics(db.met.reg),
		health:   health,
	}
	d.met.replayRecs.Add(int64(health.ReplayedRecords))
	d.met.replayVecs.Add(int64(health.ReplayedVectors))
	d.met.truncBytes.Add(health.TruncatedBytes)

	// Checkpoint the recovered state so the boot invariant — snapshot
	// covers everything, logs empty — holds before the first write.
	if err := writeSnapshotFile(filepath.Join(dir, snapshotFile), dim, flat); err != nil {
		return nil, err
	}
	os.Remove(filepath.Join(dir, walOldFile))
	os.Remove(filepath.Join(dir, walFile))
	w, err := wal.Open(filepath.Join(dir, walFile), d.met.walMet)
	if err != nil {
		return nil, err
	}
	d.w = w
	d.healthMu.Lock()
	d.health.Snapshots++
	d.health.LastSnapshot = time.Now()
	d.healthMu.Unlock()
	d.met.rotations.Inc()

	go d.run()
	return d, nil
}

// Dir returns the durable directory.
func (d *DurableDatabase) Dir() string { return d.dir }

// Health returns the durability status. Safe to call at any time.
func (d *DurableDatabase) Health() DurabilityHealth {
	d.healthMu.Lock()
	h := d.health
	d.healthMu.Unlock()
	h.ReadOnly = d.readOnly.Load()
	h.Items = d.Len()
	h.WALBytes = d.walB.Load()
	return h
}

// Add durably appends one vector: it returns the new id only after the
// vector is fsynced into the write-ahead log and applied to the index.
// Concurrent Adds share fsyncs through the batcher.
func (d *DurableDatabase) Add(vector []float64) (int, error) {
	ids, err := d.AddBatch([][]float64{vector})
	if err != nil {
		return 0, err
	}
	return ids[0], nil
}

// AddBatch durably appends a batch, acknowledging (with the assigned
// ids, in input order) only after one fsync covers the whole batch.
func (d *DurableDatabase) AddBatch(vectors [][]float64) ([]int, error) {
	return d.AddBatchContext(context.Background(), vectors)
}

// AddBatchContext is AddBatch with a bounded wait: if ctx expires
// before the group commit completes, the call returns the context error
// — the write may still become durable (it is already queued), exactly
// like a positive ack lost on a network. It never reports success for
// a write that is not durable.
func (d *DurableDatabase) AddBatchContext(ctx context.Context, vectors [][]float64) (_ []int, err error) {
	defer barrier("AddBatchContext", &err)
	start := time.Now()
	if len(vectors) == 0 {
		return nil, nil
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qcluster: add not started: %w", err)
	}
	if d.readOnly.Load() {
		d.met.rejected.Add(int64(len(vectors)))
		return nil, d.readOnlyErr()
	}
	// Validate before anything reaches the log: a record that replays
	// must be applicable.
	dim := d.Dim()
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("qcluster: batch vector %d has dimension %d, database has %d: %w",
				i, len(v), dim, ErrDimensionMismatch)
		}
		for dd, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("qcluster: batch vector %d component %d is not finite (%v)", i, dd, x)
			}
		}
	}
	req := &addReq{vecs: vectors, done: make(chan struct{})}
	d.closeMu.RLock()
	if d.closed {
		d.closeMu.RUnlock()
		return nil, fmt.Errorf("qcluster: add on closed database: %w", ErrReadOnly)
	}
	select {
	case d.reqs <- req:
		d.closeMu.RUnlock()
	default:
		d.closeMu.RUnlock()
		// Queue full: block outside the close lock, still cancellable.
		select {
		case d.reqs <- req:
		case <-ctx.Done():
			return nil, fmt.Errorf("qcluster: add queue wait: %w", ctx.Err())
		case <-d.stop:
			return nil, fmt.Errorf("qcluster: add on closing database: %w", ErrReadOnly)
		}
	}
	select {
	case <-req.done:
	case <-ctx.Done():
		return nil, fmt.Errorf("qcluster: add ack wait: %w", ctx.Err())
	}
	if req.err != nil {
		return nil, req.err
	}
	d.met.ackSec.Observe(time.Since(start).Seconds())
	return req.ids, nil
}

// run is the ingest batcher: classic group commit. It blocks for the
// first queued add, greedily absorbs everything else already queued (up
// to BatchSize vectors), and flushes the moment the queue runs empty —
// with closed-loop producers, everyone who could join the batch is
// already in it, so waiting longer would add latency without adding
// batching. Batches still form naturally: while one flush's fsync is in
// flight, new adds pile up in the queue and ride the next flush
// together. MaxWait bounds the absorb phase in the opposite regime,
// where arrivals trickle in fast enough to keep the queue non-empty but
// below BatchSize. The queue is drained on Close.
func (d *DurableDatabase) run() {
	defer close(d.done)
	timer := time.NewTimer(0)
	stopTimer(timer)
	for {
		var batch []*addReq
		var vecs int
		select {
		case r := <-d.reqs:
			batch = append(batch, r)
			vecs += len(r.vecs)
		case <-d.stop:
			d.drain()
			return
		}
		timer.Reset(d.opt.MaxWait)
	absorb:
		for vecs < d.opt.BatchSize {
			select {
			case r := <-d.reqs:
				batch = append(batch, r)
				vecs += len(r.vecs)
			case <-timer.C:
				break absorb
			default:
				break absorb // queue empty: flush now
			}
		}
		stopTimer(timer)
		d.flush(batch, vecs)
	}
}

func stopTimer(t *time.Timer) {
	if !t.Stop() {
		select {
		case <-t.C:
		default:
		}
	}
}

// drain empties the request queue after Close began. Close holds the
// write side of closeMu before closing stop, so no new request can be
// queued while drain runs.
func (d *DurableDatabase) drain() {
	for {
		select {
		case r := <-d.reqs:
			d.flush([]*addReq{r}, len(r.vecs))
		default:
			return
		}
	}
}

// flush is one durable group commit: frame the batch as a single WAL
// record, fsync it, apply it to the store and index under one write
// lock, then acknowledge every waiter. Ordering is the whole point —
// log before apply, apply before ack — so a crash at any instant leaves
// either a replayable record or nothing, and never an acknowledged
// write that replay cannot reproduce.
func (d *DurableDatabase) flush(batch []*addReq, vecs int) {
	if d.readOnly.Load() {
		d.nack(batch, d.readOnlyErr())
		return
	}
	d.flushMu.Lock()
	startID := d.Len()
	all := make([][]float64, 0, vecs)
	for _, r := range batch {
		all = append(all, r.vecs...)
	}
	payload := encodeWALRecord(startID, d.Dim(), all)
	if err := d.w.Commit(payload); err != nil {
		d.flushMu.Unlock()
		d.degrade(err)
		d.nack(batch, d.readOnlyErr())
		return
	}
	d.walB.Store(d.w.AppendedBytes())
	ids, err := d.Database.AddBatch(all)
	d.flushMu.Unlock()
	if err != nil {
		// The record is durable but unappliable — an invariant break,
		// since the batch was validated before queueing.
		d.degrade(fmt.Errorf("qcluster: applying committed batch: %w", err))
		d.nack(batch, d.readOnlyErr())
		return
	}
	d.met.batches.Inc()
	d.met.batchSize.Observe(float64(vecs))
	d.met.acked.Add(int64(vecs))
	off := 0
	for _, r := range batch {
		r.ids = ids[off : off+len(r.vecs)]
		off += len(r.vecs)
		close(r.done)
	}
	d.maybeRotate()
}

func (d *DurableDatabase) nack(batch []*addReq, err error) {
	for _, r := range batch {
		r.err = err
		close(r.done)
	}
	n := 0
	for _, r := range batch {
		n += len(r.vecs)
	}
	d.met.rejected.Add(int64(n))
}

// degrade flips the database into read-only mode, recording the disk
// failure that caused it.
func (d *DurableDatabase) degrade(err error) {
	if d.readOnly.CompareAndSwap(false, true) {
		d.met.readOnly.Set(1)
		d.healthMu.Lock()
		d.health.Err = err.Error()
		d.healthMu.Unlock()
	}
}

func (d *DurableDatabase) readOnlyErr() error {
	d.healthMu.Lock()
	msg := d.health.Err
	d.healthMu.Unlock()
	if msg == "" {
		return fmt.Errorf("qcluster: %w", ErrReadOnly)
	}
	return fmt.Errorf("qcluster: %w: %s", ErrReadOnly, msg)
}

// maybeRotate starts a background snapshot rotation when the active log
// outgrew the configured threshold. At most one rotation runs at a
// time; ingest continues against the fresh log while the snapshot
// writes in the background.
func (d *DurableDatabase) maybeRotate() {
	if d.opt.SnapshotEveryBytes <= 0 || d.walB.Load() < d.opt.SnapshotEveryBytes {
		return
	}
	if !d.rotating.CompareAndSwap(false, true) {
		return
	}
	d.bg.Add(1)
	go func() {
		defer d.bg.Done()
		defer d.rotating.Store(false)
		if err := d.rotate(); err != nil {
			d.degrade(err)
		}
	}()
}

// Checkpoint synchronously rotates: snapshot the current store, swap in
// a fresh write-ahead log, and delete the retired one. After it returns
// the directory boots without any replay. Safe to call concurrently
// with ingest; concurrent with an automatic rotation it waits its turn.
func (d *DurableDatabase) Checkpoint() (err error) {
	defer barrier("Checkpoint", &err)
	for !d.rotating.CompareAndSwap(false, true) {
		d.bg.Wait() // an automatic rotation is in flight; let it finish
	}
	defer d.rotating.Store(false)
	if err := d.rotate(); err != nil {
		d.degrade(err)
		return err
	}
	return nil
}

// rotate is the rotation body (caller owns the `rotating` flag):
//
//  1. Under flushMu — so no batch is between its WAL commit and its
//     store apply — retire the active log (rename to wal.old), open a
//     fresh one, and copy the store image. The image covers every
//     record in the retired log.
//  2. Outside the lock, write the snapshot atomically.
//  3. Delete the retired log: its records are all inside the snapshot.
//
// A crash before step 2's rename boots from the old snapshot + wal.old
// + the new wal.log; after it, the new snapshot makes wal.old records
// no-ops (their start ids are already covered). Both paths recover
// exactly the acknowledged writes.
func (d *DurableDatabase) rotate() error {
	if d.readOnly.Load() {
		return d.readOnlyErr()
	}
	walPath := filepath.Join(d.dir, walFile)
	oldPath := filepath.Join(d.dir, walOldFile)
	d.flushMu.Lock()
	if err := d.w.Close(); err != nil {
		d.flushMu.Unlock()
		return fmt.Errorf("qcluster: rotate: closing wal: %w", err)
	}
	if err := os.Rename(walPath, oldPath); err != nil {
		d.flushMu.Unlock()
		return fmt.Errorf("qcluster: rotate: retiring wal: %w", err)
	}
	w, err := wal.Open(walPath, d.met.walMet)
	if err != nil {
		d.flushMu.Unlock()
		return fmt.Errorf("qcluster: rotate: fresh wal: %w", err)
	}
	d.w = w
	d.walB.Store(0)
	dim, flat := d.flatCopy()
	d.flushMu.Unlock()

	if err := writeSnapshotFile(filepath.Join(d.dir, snapshotFile), dim, flat); err != nil {
		return err
	}
	os.Remove(oldPath)
	d.met.rotations.Inc()
	d.healthMu.Lock()
	d.health.Snapshots++
	d.health.LastSnapshot = time.Now()
	d.healthMu.Unlock()
	return nil
}

// Close drains the ingest queue (pending adds are flushed durably, so
// no caller that could still be waiting is dropped), waits for any
// background rotation, and closes the log. It does not checkpoint —
// the next OpenDatabase replays the log warm; call Checkpoint first
// for a replay-free boot.
func (d *DurableDatabase) Close() error {
	d.closeMu.Lock()
	if d.closed {
		d.closeMu.Unlock()
		<-d.done
		return nil
	}
	d.closed = true
	close(d.stop)
	d.closeMu.Unlock()
	<-d.done
	d.bg.Wait()
	d.flushMu.Lock()
	err := d.w.Close()
	d.flushMu.Unlock()
	return err
}

// ---- WAL record codec ----

// A WAL record frames one applied batch (little-endian):
//
//	[8] u64 start id — the store length when the batch was applied
//	[4] u32 dim
//	[4] u32 vector count
//	[..] count×dim float64 components, row-major
//
// The start id makes replay idempotent: records fully covered by the
// booted snapshot skip, a record straddling the snapshot boundary
// applies only its uncovered suffix, and a record starting beyond the
// store length reveals a gap (lost acknowledged writes) that aborts the
// boot instead of building a silently wrong database.
func encodeWALRecord(startID, dim int, vecs [][]float64) []byte {
	buf := make([]byte, 16+8*dim*len(vecs))
	binary.LittleEndian.PutUint64(buf[0:8], uint64(startID))
	binary.LittleEndian.PutUint32(buf[8:12], uint32(dim))
	binary.LittleEndian.PutUint32(buf[12:16], uint32(len(vecs)))
	off := 16
	for _, v := range vecs {
		for _, x := range v {
			binary.LittleEndian.PutUint64(buf[off:off+8], math.Float64bits(x))
			off += 8
		}
	}
	return buf
}

// applyWALRecord decodes one record onto the boot image, returning the
// number of vectors actually appended. *dimp is set from the first
// record when the image is empty.
func applyWALRecord(payload []byte, dimp *int, flat *[]float64) (int, error) {
	if len(payload) < 16 {
		return 0, fmt.Errorf("qcluster: wal record of %d bytes: %w", len(payload), ErrCorruptLog)
	}
	startID := int(binary.LittleEndian.Uint64(payload[0:8]))
	dim := int(binary.LittleEndian.Uint32(payload[8:12]))
	count := int(binary.LittleEndian.Uint32(payload[12:16]))
	if dim <= 0 || count < 0 || len(payload) != 16+8*dim*count {
		return 0, fmt.Errorf("qcluster: wal record shape %d×%d in %d bytes: %w",
			count, dim, len(payload), ErrCorruptLog)
	}
	if *dimp == 0 && len(*flat) == 0 {
		*dimp = dim
	}
	if dim != *dimp {
		return 0, fmt.Errorf("qcluster: wal record dim %d, database has %d: %w", dim, *dimp, ErrCorruptLog)
	}
	have := len(*flat) / dim
	if startID > have {
		return 0, fmt.Errorf("qcluster: wal record starts at id %d but only %d vectors exist (lost writes): %w",
			startID, have, ErrCorruptLog)
	}
	if startID+count <= have {
		return 0, nil // fully covered by the snapshot
	}
	skip := have - startID // vectors of this record already covered
	off := 16 + 8*dim*skip
	appended := 0
	for i := skip; i < count; i++ {
		for dcomp := 0; dcomp < dim; dcomp++ {
			x := math.Float64frombits(binary.LittleEndian.Uint64(payload[off : off+8]))
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return appended, fmt.Errorf("qcluster: wal record vector %d component %d is not finite: %w",
					startID+i, dcomp, ErrCorruptLog)
			}
			*flat = append(*flat, x)
			off += 8
		}
		appended++
	}
	return appended, nil
}
