package qcluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ann"
	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// This file is the backend-selection layer: every Database carries one
// of three k-NN execution paths behind the same search API. The exact
// hybrid tree stays the default and the substrate of sessions'
// refinement caches; the VA-file trades tree traversal for a
// filter-and-refine scan (still exact); the ANN backend trades recall
// for latency — an HNSW-style graph over float32-quantized vectors
// proposes candidates, and exact full-precision refinement keeps every
// result list (and all downstream feedback math) bit-exact given the
// candidates.

// IndexBackend names a k-NN execution path.
type IndexBackend string

const (
	// BackendTree is the exact hybrid-tree best-first search (default).
	BackendTree IndexBackend = "tree"
	// BackendVAFile is the exact VA-file filter-and-refine scan.
	BackendVAFile IndexBackend = "vafile"
	// BackendANN is the approximate HNSW-graph search with exact
	// refinement of the candidate set.
	BackendANN IndexBackend = "ann"
)

// normalize maps the zero value to the default and rejects unknowns.
func (b IndexBackend) normalize() (IndexBackend, error) {
	switch b {
	case "", BackendTree:
		return BackendTree, nil
	case BackendVAFile, BackendANN:
		return b, nil
	}
	return "", fmt.Errorf("qcluster: unknown index backend %q (want tree, vafile or ann)", string(b))
}

// ANNOptions tunes the "ann" backend (ignored by the others). Zero
// values use the defaults (M=16, efConstruction=128, efSearch=64).
type ANNOptions struct {
	// M is the graph's maximum neighbor degree above layer 0.
	M int
	// EfConstruction is the insert-time candidate-beam width.
	EfConstruction int
	// EfSearch is the query-time beam width — the recall/latency knob.
	EfSearch int
	// Seed makes the level assignment (and so the whole graph, given
	// insertion order) deterministic.
	Seed int64
}

// IndexInfo describes the database's active search backend — the block
// qserve reports in /healthz and session-create responses.
type IndexInfo struct {
	// Backend is the execution path: "tree", "vafile" or "ann".
	Backend string `json:"backend"`
	// ANNM / ANNEfConstruction / ANNEfSearch echo the resolved graph
	// parameters (0 unless Backend is "ann").
	ANNM              int `json:"ann_m,omitempty"`
	ANNEfConstruction int `json:"ann_ef_construction,omitempty"`
	ANNEfSearch       int `json:"ann_ef_search,omitempty"`
}

// IndexInfo reports the active backend and its resolved parameters.
func (db *Database) IndexInfo() IndexInfo {
	info := IndexInfo{Backend: string(db.backend)}
	if db.annIdx != nil {
		opt := db.annIdx.Opt()
		info.ANNM = opt.M
		info.ANNEfConstruction = opt.EfConstruction
		info.ANNEfSearch = opt.EfSearch
	}
	return info
}

// buildBackend constructs the auxiliary index for non-tree backends
// (the tree itself is always built: it is the durability snapshot's
// substrate and the refinement-cache path).
func (db *Database) buildBackend(opt IndexOptions) error {
	switch db.backend {
	case BackendVAFile:
		db.va = index.NewVAFile(db.store, index.VAFileOptions{})
	case BackendANN:
		idx, err := ann.New(db.store, ann.Options{
			M:              opt.ANN.M,
			EfConstruction: opt.ANN.EfConstruction,
			EfSearch:       opt.ANN.EfSearch,
			Seed:           opt.ANN.Seed,
		})
		if err != nil {
			return fmt.Errorf("qcluster: building ann index: %w", err)
		}
		db.annIdx = idx
	}
	return nil
}

// syncBackendLocked brings the auxiliary index up to date with store
// rows appended by the current (write-locked) insert.
func (db *Database) syncBackendLocked(ids []int) error {
	switch db.backend {
	case BackendVAFile:
		db.va.Extend()
	case BackendANN:
		if err := db.annIdx.InsertBatch(ids); err != nil {
			return fmt.Errorf("qcluster: ann insert: %w", err)
		}
	}
	return nil
}

// checkQuantizable pre-validates one vector against the ANN codec so a
// float32-overflowing component rejects the Add before anything is
// appended (the graph mirror cannot hold it, and a half-applied insert
// would strand the store and graph at different lengths).
func (db *Database) checkQuantizable(i int, v []float64) error {
	if db.backend != BackendANN {
		return nil
	}
	for d, x := range v {
		if _, err := ann.Quantize(x); err != nil {
			return fmt.Errorf("qcluster: vector %d component %d: %w", i, d, err)
		}
	}
	return nil
}

// knnBackend is the one dispatch point every search path funnels
// through: it runs one k-NN on the active backend under the read lock.
// rs (the session's refinement cache) and sb (the cross-shard shared
// bound) only apply to the tree backend — the VA-file has no leaf cache
// and the ANN path prunes nothing, so both are ignored there and the
// scatter-gather merge still works (each leg returns its full local
// top-k, a superset of what a bound would have kept).
func (db *Database) knnBackend(ctx context.Context, m distance.Metric, k int, sb *index.SharedBound, rs *index.RefinementSearcher) ([]index.Result, index.SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	switch db.backend {
	case BackendVAFile:
		return db.va.KNNContext(ctx, m, k)
	case BackendANN:
		return db.annIdx.KNNEf(ctx, m, k, 0)
	}
	if rs != nil {
		return rs.KNNSharedContext(ctx, m, k, sb)
	}
	return db.tree.KNNSharedContext(ctx, m, k, sb)
}

// SearchApprox answers a plain k-NN query on the ANN backend with an
// explicit efSearch override (0 = the index default) — the recall knob
// per query instead of per database. See SearchApproxContext.
func (db *Database) SearchApprox(example []float64, k, efSearch int) []Result {
	res, err := db.SearchApproxContext(context.Background(), example, k, efSearch)
	if err != nil {
		return nil
	}
	return res
}

// SearchApproxContext is SearchApprox with cooperative cancellation and
// a panic barrier. It requires IndexOptions.Backend "ann"
// (ErrBackendUnavailable otherwise); results are the exact-refined
// candidates of one graph search, so they are bit-exact given the
// candidate set, and efSearch >= Len() degenerates to an exhaustive
// exact search.
func (db *Database) SearchApproxContext(ctx context.Context, example []float64, k, efSearch int) (_ []Result, err error) {
	defer barrier("SearchApproxContext", &err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("qcluster: search not started: %w", cerr)
	}
	if db.backend != BackendANN {
		return nil, fmt.Errorf("qcluster: backend is %q: %w", string(db.backend), ErrBackendUnavailable)
	}
	if len(example) != db.Dim() {
		db.met.dimMismatch.Inc()
		return nil, fmt.Errorf("qcluster: example has dimension %d, database has %d: %w",
			len(example), db.Dim(), ErrDimensionMismatch)
	}
	m := &distance.Euclidean{Center: linalg.Vector(example)}
	start := time.Now()
	db.mu.RLock()
	res, stats, cerr := db.annIdx.KNNEf(ctx, m, k, efSearch)
	db.mu.RUnlock()
	elapsed := time.Since(start)
	db.met.observeSearch(elapsed, k, len(res), stats, cerr != nil)
	obs.ProfileFromContext(ctx).AddSearch(start, elapsed, costStatsFromIndex(stats))
	return convertResults(res), wrapInterrupt(cerr, len(res))
}
