package qcluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/ann"
	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/plan"
)

// This file is the backend-selection layer: every Database carries one
// of three k-NN execution paths behind the same search API. The exact
// hybrid tree stays the default and the substrate of sessions'
// refinement caches; the VA-file trades tree traversal for a
// filter-and-refine scan (still exact); the ANN backend trades recall
// for latency — an HNSW-style graph over float32-quantized vectors
// proposes candidates, and exact full-precision refinement keeps every
// result list (and all downstream feedback math) bit-exact given the
// candidates.

// IndexBackend names a k-NN execution path.
type IndexBackend string

const (
	// BackendTree is the exact hybrid-tree best-first search (default).
	BackendTree IndexBackend = "tree"
	// BackendVAFile is the exact VA-file filter-and-refine scan.
	BackendVAFile IndexBackend = "vafile"
	// BackendANN is the approximate HNSW-graph search with exact
	// refinement of the candidate set.
	BackendANN IndexBackend = "ann"
)

// normalize maps the zero value to the default and rejects unknowns.
func (b IndexBackend) normalize() (IndexBackend, error) {
	switch b {
	case "", BackendTree:
		return BackendTree, nil
	case BackendVAFile, BackendANN:
		return b, nil
	}
	return "", fmt.Errorf("qcluster: unknown index backend %q (want tree, vafile or ann)", string(b))
}

// ANNOptions tunes the "ann" backend (ignored by the others). Zero
// values use the defaults (M=16, efConstruction=128, efSearch=64).
type ANNOptions struct {
	// M is the graph's maximum neighbor degree above layer 0.
	M int
	// EfConstruction is the insert-time candidate-beam width.
	EfConstruction int
	// EfSearch is the query-time beam width — the recall/latency knob.
	EfSearch int
	// Seed makes the level assignment (and so the whole graph, given
	// insertion order) deterministic.
	Seed int64
}

// IndexInfo describes the database's active search backend — the block
// qserve reports in /healthz and session-create responses.
type IndexInfo struct {
	// Backend is the execution path: "tree", "vafile" or "ann".
	Backend string `json:"backend"`
	// ANNM / ANNEfConstruction / ANNEfSearch echo the resolved graph
	// parameters (0 unless Backend is "ann").
	ANNM              int `json:"ann_m,omitempty"`
	ANNEfConstruction int `json:"ann_ef_construction,omitempty"`
	ANNEfSearch       int `json:"ann_ef_search,omitempty"`
}

// IndexInfo reports the active backend and its resolved parameters.
func (db *Database) IndexInfo() IndexInfo {
	info := IndexInfo{Backend: string(db.backend)}
	if db.annIdx != nil {
		opt := db.annIdx.Opt()
		info.ANNM = opt.M
		info.ANNEfConstruction = opt.EfConstruction
		info.ANNEfSearch = opt.EfSearch
	}
	return info
}

// buildBackend constructs the auxiliary index for non-tree backends
// (the tree itself is always built: it is the durability snapshot's
// substrate and the refinement-cache path).
func (db *Database) buildBackend(opt IndexOptions) error {
	switch db.backend {
	case BackendVAFile:
		db.va = index.NewVAFile(db.store, index.VAFileOptions{})
	case BackendANN:
		idx, err := ann.New(db.store, ann.Options{
			M:              opt.ANN.M,
			EfConstruction: opt.ANN.EfConstruction,
			EfSearch:       opt.ANN.EfSearch,
			Seed:           opt.ANN.Seed,
		})
		if err != nil {
			return fmt.Errorf("qcluster: building ann index: %w", err)
		}
		db.annIdx = idx
	}
	return nil
}

// syncBackendLocked brings the auxiliary indexes up to date with store
// rows appended by the current (write-locked) insert. Presence-based
// rather than backend-switched: the adaptive planner keeps auxiliary
// indexes alive as alternate routes even when they are not the
// configured backend, and a stale mirror would silently serve wrong
// results.
func (db *Database) syncBackendLocked(ids []int) error {
	if db.va != nil {
		db.va.Extend()
	}
	if db.annIdx != nil {
		if err := db.annIdx.InsertBatch(ids); err != nil {
			return fmt.Errorf("qcluster: ann insert: %w", err)
		}
	}
	return nil
}

// checkQuantizable pre-validates one vector against the ANN codec so a
// float32-overflowing component rejects the Add before anything is
// appended (the graph mirror cannot hold it, and a half-applied insert
// would strand the store and graph at different lengths).
func (db *Database) checkQuantizable(i int, v []float64) error {
	if db.backend != BackendANN {
		return nil
	}
	for d, x := range v {
		if _, err := ann.Quantize(x); err != nil {
			return fmt.Errorf("qcluster: vector %d component %d: %w", i, d, err)
		}
	}
	return nil
}

// knnBackend is the one dispatch point every search path funnels
// through: it runs one k-NN on the active backend under the read lock.
// rs (the session's refinement cache) and sb (the cross-shard shared
// bound) only apply to the tree route — the VA-file has no leaf cache
// and the ANN path prunes nothing, so both are ignored there and the
// scatter-gather merge still works (each leg returns its full local
// top-k, a superset of what a bound would have kept).
//
// With an adaptive planner attached, the route (and the tree's worker
// count and batch size) is chosen per query from the rolling cost
// models; completed searches feed back into the chosen route's model.
// Exact routes are bit-identical to each other, so adaptive routing
// never changes exact results — only their cost.
func (db *Database) knnBackend(ctx context.Context, m distance.Metric, k int, sb *index.SharedBound, rs *index.RefinementSearcher) ([]index.Result, index.SearchStats, error) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if db.planner == nil {
		return db.knnStaticLocked(ctx, m, k, sb, rs)
	}
	q := db.planQueryLocked(m, k, rs)
	d := db.planner.Plan(q)
	start := time.Now()
	res, stats, err := db.knnRouteLocked(ctx, d, m, k, sb, rs)
	elapsed := time.Since(start)
	if err == nil {
		// Interrupted searches are not observed: their truncated latency
		// would teach the models that expensive queries are cheap.
		db.planner.Observe(d, q, stats, elapsed)
	}
	stats.PlanRoute = string(d.Route)
	stats.PlanAdaptive = d.Adaptive
	stats.PlanPredictedSeconds = d.PredictedSeconds
	db.met.observePlan(d, elapsed)
	return res, stats, err
}

// knnStaticLocked is the planner-free dispatch: exactly the statically
// configured backend. The adaptive path's cold-start fallback must
// behave identically, which knnRouteLocked guarantees by executing a
// zero-tuning static decision through the same backend calls.
func (db *Database) knnStaticLocked(ctx context.Context, m distance.Metric, k int, sb *index.SharedBound, rs *index.RefinementSearcher) ([]index.Result, index.SearchStats, error) {
	switch db.backend {
	case BackendVAFile:
		return db.va.KNNContext(ctx, m, k)
	case BackendANN:
		return db.annIdx.KNNEf(ctx, m, k, 0)
	}
	if rs != nil {
		return rs.KNNSharedContext(ctx, m, k, sb)
	}
	return db.tree.KNNSharedContext(ctx, m, k, sb)
}

// knnRouteLocked executes one planner decision.
func (db *Database) knnRouteLocked(ctx context.Context, d plan.Decision, m distance.Metric, k int, sb *index.SharedBound, rs *index.RefinementSearcher) ([]index.Result, index.SearchStats, error) {
	switch d.Route {
	case plan.RouteVAFile:
		return db.va.KNNContext(ctx, m, k)
	case plan.RouteANN:
		return db.annIdx.KNNEf(ctx, m, k, d.EfSearch)
	}
	tu := index.SearchTuning{Workers: d.Workers, BatchItems: d.BatchItems}
	if d.Workers > 1 {
		tu.MinItems = -1 // the planner already decided fan-out pays off
	}
	if rs != nil {
		return rs.KNNSharedTuned(ctx, m, k, sb, tu)
	}
	if tu == (index.SearchTuning{}) {
		return db.tree.KNNSharedContext(ctx, m, k, sb)
	}
	return db.tree.WithTuning(tu).KNNSharedContext(ctx, m, k, sb)
}

// planQueryLocked builds the planner's view of one query.
func (db *Database) planQueryLocked(m distance.Metric, k int, rs *index.RefinementSearcher) plan.Query {
	q := plan.Query{
		K:           k,
		M:           1,
		Scheme:      schemeOf(m),
		N:           db.store.Len(),
		AllowApprox: db.allowApprox,
	}
	if cs := distance.Centers(m); len(cs) > 1 {
		q.M = len(cs)
	}
	if rs != nil {
		q.CachedLeaves = rs.CachedLeaves()
	}
	return q
}

// schemeOf classifies the metric family for cost-model keying: cost per
// evaluation differs by family (a full-scheme quadratic form costs
// O(d²) where Euclidean costs O(d)), so each family learns its own
// latency curve.
func schemeOf(m distance.Metric) string {
	switch m.(type) {
	case *distance.Euclidean:
		return "euclidean"
	case *distance.Quadratic:
		return "quadratic"
	case *distance.Disjunctive, *distance.Aggregate:
		return "multipoint"
	case *distance.ConvexCombination:
		return "convex"
	}
	return "other"
}

// SearchApprox answers a plain k-NN query on the ANN backend with an
// explicit efSearch override (0 = the index default) — the recall knob
// per query instead of per database. See SearchApproxContext.
func (db *Database) SearchApprox(example []float64, k, efSearch int) []Result {
	res, err := db.SearchApproxContext(context.Background(), example, k, efSearch)
	if err != nil {
		return nil
	}
	return res
}

// SearchApproxContext is SearchApprox with cooperative cancellation and
// a panic barrier. It requires IndexOptions.Backend "ann"
// (ErrBackendUnavailable otherwise); results are the exact-refined
// candidates of one graph search, so they are bit-exact given the
// candidate set, and efSearch >= Len() degenerates to an exhaustive
// exact search.
func (db *Database) SearchApproxContext(ctx context.Context, example []float64, k, efSearch int) (_ []Result, err error) {
	defer barrier("SearchApproxContext", &err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("qcluster: search not started: %w", cerr)
	}
	if db.backend != BackendANN {
		return nil, fmt.Errorf("qcluster: backend is %q: %w", string(db.backend), ErrBackendUnavailable)
	}
	if len(example) != db.Dim() {
		db.met.dimMismatch.Inc()
		return nil, fmt.Errorf("qcluster: example has dimension %d, database has %d: %w",
			len(example), db.Dim(), ErrDimensionMismatch)
	}
	m := &distance.Euclidean{Center: linalg.Vector(example)}
	start := time.Now()
	db.mu.RLock()
	res, stats, cerr := db.annIdx.KNNEf(ctx, m, k, efSearch)
	if db.planner != nil && cerr == nil {
		// Explicit approximate traffic warms the ANN cost model too, so
		// AllowApprox-planned queries start from real measurements.
		q := db.planQueryLocked(m, k, nil)
		db.planner.Observe(plan.Decision{Route: plan.RouteANN}, q, stats, time.Since(start))
	}
	db.mu.RUnlock()
	elapsed := time.Since(start)
	db.met.observeSearch(elapsed, k, len(res), stats, cerr != nil)
	obs.ProfileFromContext(ctx).AddSearch(start, elapsed, costStatsFromIndex(stats))
	return convertResults(res), wrapInterrupt(cerr, len(res))
}

// ResultsApprox is the session's approximate retrieval: the current
// query (refined multipoint after feedback, the plain example before)
// answered by the ANN backend with an explicit efSearch override (0 =
// index default). See ResultsApproxContext.
func (s *Session) ResultsApprox(k, efSearch int) []Result {
	res, err := s.ResultsApproxContext(context.Background(), k, efSearch)
	if err != nil {
		return nil
	}
	return res
}

// ResultsApproxContext is ResultsApprox with cooperative cancellation
// and a panic barrier. Like SearchApproxContext it requires
// IndexOptions.Backend "ann" and returns ErrBackendUnavailable on any
// other backend — the same contract on every path (root, session,
// sharded). The ANN path has no leaf cache, so the session's
// refinement cache is neither consulted nor refreshed.
func (s *Session) ResultsApproxContext(ctx context.Context, k, efSearch int) (_ []Result, err error) {
	defer barrier("ResultsApproxContext", &err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("qcluster: search not started: %w", cerr)
	}
	if s.db.backend != BackendANN {
		return nil, fmt.Errorf("qcluster: backend is %q: %w", string(s.db.backend), ErrBackendUnavailable)
	}
	var m distance.Metric
	if s.query.Ready() {
		m = s.query.metric()
		if s.query.Health().Degraded() {
			s.met.degraded.Inc()
			s.db.met.degraded.Inc()
		}
	} else {
		if len(s.example) != s.db.Dim() {
			s.db.met.dimMismatch.Inc()
			return nil, fmt.Errorf("qcluster: session example has dimension %d, database has %d: %w",
				len(s.example), s.db.Dim(), ErrDimensionMismatch)
		}
		m = &distance.Euclidean{Center: s.example}
	}
	start := time.Now()
	s.mu.Lock()
	s.db.mu.RLock()
	res, stats, cerr := s.db.annIdx.KNNEf(ctx, m, k, efSearch)
	if s.db.planner != nil && cerr == nil {
		q := s.db.planQueryLocked(m, k, nil)
		s.db.planner.Observe(plan.Decision{Route: plan.RouteANN}, q, stats, time.Since(start))
	}
	s.db.mu.RUnlock()
	s.lastStats = stats
	s.mu.Unlock()
	elapsed := time.Since(start)
	s.met.observeSearch(elapsed, stats, cerr != nil)
	s.db.met.observeSearch(elapsed, k, len(res), stats, cerr != nil)
	obs.ProfileFromContext(ctx).AddSearch(start, elapsed, costStatsFromIndex(stats))
	return convertResults(res), wrapInterrupt(cerr, len(res))
}
