// Package qcluster is a Go implementation of Qcluster — the adaptive
// classification and cluster-merging relevance-feedback method for
// content-based image retrieval of Kim & Chung (SIGMOD 2003).
//
// A Query models the user's evolving information need as a set of
// weighted clusters in feature space. Each feedback round, newly marked
// relevant items are placed into clusters by a Bayesian classifier
// (Algorithm 2), statistically indistinct clusters are merged with
// Hotelling's T² test (Algorithm 3), and retrieval runs a k-NN search
// under the weighted aggregate disjunctive distance (Eq. 5) — so a
// "complex" query whose relevant items form several disjoint regions is
// answered with disjoint contours rather than one moved point (MARS QPM)
// or one large convex contour (MARS query expansion).
//
// Typical use:
//
//	db, _ := qcluster.NewDatabase(vectors)
//	session := db.NewSession(db.Vector(42), qcluster.Options{})
//	for round := 0; round < 5; round++ {
//		results := session.Results(100)
//		session.MarkRelevant(judge(results)) // user feedback
//	}
package qcluster

import (
	"fmt"
	"io"
	"sync"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// Scheme selects how inverse covariance matrices are estimated.
type Scheme int

const (
	// Diagonal uses only the covariance diagonal (MARS-style). It is the
	// default: immune to the small-sample singularity problem and far
	// cheaper (paper Fig. 6) at near-identical retrieval quality.
	Diagonal Scheme = iota
	// FullInverse inverts the complete covariance (MindReader-style),
	// which additionally handles arbitrarily oriented ellipsoids.
	FullInverse
)

func (s Scheme) internal() cluster.Scheme {
	if s == FullInverse {
		return cluster.FullInverse
	}
	return cluster.Diagonal
}

// Options tunes a Query. The zero value reproduces the paper's defaults.
type Options struct {
	// Scheme selects Diagonal (default) or FullInverse covariances.
	Scheme Scheme
	// Alpha is the significance level α shared by the effective-radius
	// test (Lemma 1) and the T² merge test (Eq. 16). Default 0.05.
	Alpha float64
	// MaxQueryPoints bounds the number of cluster representatives after
	// merging. Default 5; negative means unbounded.
	MaxQueryPoints int
	// Sink, when non-nil, receives structured trace events from the
	// query pipeline: one "feedback.round" span per absorbed feedback
	// round (classification decisions, merge accepts, final cluster
	// count) and one "metric.build" event per metric construction
	// (scheme, ridge fallbacks). Nil — the default — disables tracing;
	// the hot path then pays only a nil check. See NewSlogSink and
	// MemorySink for ready-made sinks.
	Sink Sink
}

func (o Options) internal() core.Options {
	return core.Options{
		Scheme:      o.Scheme.internal(),
		Alpha:       o.Alpha,
		MaxClusters: o.MaxQueryPoints,
	}
}

// Point is one relevance-marked item: its database id, feature vector and
// the user's relevance score (> 0; the paper uses 3 for most-relevant and
// 1 for related).
type Point struct {
	ID    int
	Vec   []float64
	Score float64
}

// Query is the evolving multipoint query model. It is safe for
// concurrent use: feedback absorption and metric construction are
// serialized by an internal mutex.
type Query struct {
	mu    sync.Mutex
	model *core.QueryModel
	dim   int // fixed by the first accepted point; 0 until then
}

// NewQuery creates an empty query model.
func NewQuery(opt Options) *Query {
	q := &Query{model: core.New(opt.internal())}
	q.model.SetSink(opt.Sink)
	return q
}

// SetSink attaches (or, with nil, detaches) a trace sink after
// construction — e.g. on a query restored by LoadQuery, whose sink is
// runtime wiring and is not persisted.
func (q *Query) SetSink(s Sink) {
	q.mu.Lock()
	defer q.mu.Unlock()
	q.model.SetSink(s)
}

// Feedback absorbs one round of relevance-marked points. Points with
// non-positive scores or already-seen IDs are ignored. It returns an
// error (and absorbs nothing) when any point's dimensionality conflicts
// with the query's established dimensionality or with the rest of the
// batch, or when any positively scored point carries a non-finite
// (NaN or ±Inf) component — a poisoned vector would otherwise silently
// corrupt the cluster means.
func (q *Query) Feedback(points []Point) (err error) {
	defer barrier("Feedback", &err)
	q.mu.Lock()
	defer q.mu.Unlock()
	dim := q.dim
	ps := make([]cluster.Point, 0, len(points))
	for i, p := range points {
		if p.Score <= 0 {
			continue
		}
		if len(p.Vec) == 0 {
			return fmt.Errorf("qcluster: feedback point %d has an empty vector", i)
		}
		if dim == 0 {
			dim = len(p.Vec)
		} else if len(p.Vec) != dim {
			return fmt.Errorf("qcluster: feedback point %d has dimension %d, want %d",
				i, len(p.Vec), dim)
		}
		if err := checkFinite(i, p.Vec); err != nil {
			return err
		}
		ps = append(ps, cluster.Point{ID: p.ID, Vec: linalg.Vector(p.Vec), Score: p.Score})
	}
	q.model.Feedback(ps)
	q.dim = dim
	return nil
}

// metric builds the current aggregate disjunctive distance under the
// query lock, recording any covariance degradation on the query health.
func (q *Query) metric() distance.Metric {
	q.mu.Lock()
	defer q.mu.Unlock()
	m, _ := q.model.MetricInfo()
	return m
}

// Health returns the query-health status of the most recent metric
// construction: how many clusters the query aggregates and how many of
// them needed the regularized-covariance fallback (see Health).
func (q *Query) Health() Health {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.model.Health()
}

// Rounds returns the number of feedback rounds the model has absorbed
// (rounds marking only already-seen or non-positive points don't
// count). Persisted by Save, so a restored query resumes its count.
func (q *Query) Rounds() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.model.Rounds()
}

// NumQueryPoints returns the current number of cluster representatives.
func (q *Query) NumQueryPoints() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.model.NumClusters()
}

// Representatives returns the current cluster centroids — the multipoint
// query the next search runs with.
func (q *Query) Representatives() [][]float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	reps := q.model.Representatives()
	out := make([][]float64, len(reps))
	for i, r := range reps {
		out[i] = r
	}
	return out
}

// ClusterQualityError reports the leave-one-out misclassification rate of
// the current clusters (Sec. 4.5): 0 means every relevant item would be
// re-classified into its own cluster.
func (q *Query) ClusterQualityError() float64 {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.model.ErrorRate()
}

// Ready reports whether the query has absorbed any feedback yet; before
// that, searches fall back to the plain example-point query.
func (q *Query) Ready() bool {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.model.NumClusters() > 0
}

// Save serializes the query model (clusters, member points, options) so
// a relevance-feedback session can be suspended and resumed later.
func (q *Query) Save(w io.Writer) error {
	q.mu.Lock()
	defer q.mu.Unlock()
	return q.model.Save(w)
}

// LoadQuery restores a query model written by Save.
func LoadQuery(r io.Reader) (*Query, error) {
	m, err := core.Load(r)
	if err != nil {
		return nil, err
	}
	q := &Query{model: m}
	if reps := m.Representatives(); len(reps) > 0 {
		q.dim = reps[0].Dim()
	}
	return q, nil
}
