package qcluster_test

import (
	"fmt"

	"repro"
)

// Example demonstrates a complete feedback loop on a toy collection: a
// bimodal "concept" (ids 0-9 near the origin, ids 10-19 near (5,5)) with
// unrelated items in between. After one round of feedback containing
// points from both modes, the query becomes a two-point disjunctive
// query and retrieves both modes ahead of the middle items.
func Example() {
	var vectors [][]float64
	for i := 0; i < 10; i++ { // mode A
		vectors = append(vectors, []float64{float64(i) * 0.01, 0})
	}
	for i := 0; i < 10; i++ { // mode B
		vectors = append(vectors, []float64{5 + float64(i)*0.01, 5})
	}
	for i := 0; i < 10; i++ { // middle clutter
		vectors = append(vectors, []float64{2.5 + float64(i)*0.01, 2.5})
	}

	db, err := qcluster.NewDatabase(vectors)
	if err != nil {
		panic(err)
	}
	q := qcluster.NewQuery(qcluster.Options{})
	if err := q.Feedback([]qcluster.Point{
		{ID: 0, Vec: db.Vector(0), Score: 3},
		{ID: 1, Vec: db.Vector(1), Score: 3},
		{ID: 10, Vec: db.Vector(10), Score: 3},
		{ID: 11, Vec: db.Vector(11), Score: 3},
	}); err != nil {
		panic(err)
	}

	results := db.Search(q, 20)
	modeHits, clutterHits := 0, 0
	for _, r := range results {
		if r.ID < 20 {
			modeHits++
		} else {
			clutterHits++
		}
	}
	fmt.Printf("query points: %d\n", q.NumQueryPoints())
	fmt.Printf("top-20: %d mode items, %d clutter items\n", modeHits, clutterHits)
	// Output:
	// query points: 2
	// top-20: 20 mode items, 0 clutter items
}
