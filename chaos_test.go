package qcluster

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestChaosConcurrentDatabase hammers one shared Database from 12
// goroutines mixing Add, plain and context searches, and session
// feedback (Results + MarkRelevant on shared sessions), with cancelled
// and deadlined contexts sprinkled in. It is the -race workout for the
// concurrency contract: no panics, no races, only the documented error
// kinds, and every result list sorted.
func TestChaosConcurrentDatabase(t *testing.T) {
	const (
		initial  = 400
		dim      = 6
		workers  = 12
		iters    = 60
		sessions = 4
	)
	rng := rand.New(rand.NewSource(20))
	db, err := NewDatabase(randomVectors(rng, initial, dim))
	if err != nil {
		t.Fatal(err)
	}

	shared := make([]*Session, sessions)
	for i := range shared {
		shared[i] = db.NewSession(db.Vector(i), Options{})
	}
	// One shared query hit by concurrent Feedback and SearchContext.
	sharedQuery := NewQuery(Options{})
	if err := sharedQuery.Feedback([]Point{
		{ID: 0, Vec: db.Vector(0), Score: 3},
		{ID: 1, Vec: db.Vector(1), Score: 3},
	}); err != nil {
		t.Fatal(err)
	}

	checkSorted := func(res []Result) error {
		for i := 1; i < len(res); i++ {
			if res[i].Dist < res[i-1].Dist {
				return fmt.Errorf("unsorted results at %d", i)
			}
		}
		return nil
	}
	allowedErr := func(err error) bool {
		return err == nil ||
			errors.Is(err, context.Canceled) ||
			errors.Is(err, context.DeadlineExceeded) ||
			errors.Is(err, ErrPartialResults)
	}

	errs := make(chan error, workers*iters)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			randVec := func() []float64 {
				v := make([]float64, dim)
				for d := range v {
					v[d] = rng.NormFloat64()
				}
				return v
			}
			for i := 0; i < iters; i++ {
				switch w % 4 {
				case 0: // writer: grow the database under readers
					if _, err := db.Add(randVec()); err != nil {
						errs <- fmt.Errorf("Add: %w", err)
					}
				case 1: // plain + example searches, some pre-cancelled
					if i%5 == 0 {
						ctx, cancel := context.WithCancel(context.Background())
						cancel()
						if _, err := db.SearchByExampleContext(ctx, randVec(), 10); !errors.Is(err, context.Canceled) {
							errs <- fmt.Errorf("pre-cancelled example search: %w", err)
						}
					} else if res := db.SearchByExample(randVec(), 10); checkSorted(res) != nil {
						errs <- errors.New("unsorted example results")
					}
				case 2: // query searches racing query feedback
					if i%7 == 0 {
						if err := sharedQuery.Feedback([]Point{
							{ID: rng.Intn(initial), Vec: db.Vector(rng.Intn(initial)), Score: 1 + float64(rng.Intn(3))},
						}); err != nil {
							errs <- fmt.Errorf("shared query feedback: %w", err)
						}
					}
					ctx, cancel := context.WithTimeout(context.Background(), time.Duration(rng.Intn(3))*time.Millisecond)
					res, err := db.SearchContext(ctx, sharedQuery, 15)
					cancel()
					if !allowedErr(err) {
						errs <- fmt.Errorf("SearchContext: %w", err)
					}
					if err := checkSorted(res); err != nil {
						errs <- err
					}
				case 3: // shared-session feedback loop
					s := shared[i%sessions] // cycle so every session is contended
					res, err := s.ResultsContext(context.Background(), 20)
					if !allowedErr(err) {
						errs <- fmt.Errorf("ResultsContext: %w", err)
					}
					if err := checkSorted(res); err != nil {
						errs <- err
					}
					var marked []Point
					for _, r := range res[:min(3, len(res))] {
						if r.ID < initial { // ids added concurrently may outrun Vector reads
							marked = append(marked, Point{ID: r.ID, Vec: db.Vector(r.ID), Score: 3})
						}
					}
					if err := s.MarkRelevant(marked); err != nil {
						errs <- fmt.Errorf("MarkRelevant: %w", err)
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	if db.Len() < initial {
		t.Errorf("database shrank: %d", db.Len())
	}
}
