package qcluster

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
	"repro/internal/wal"
)

// genVectors produces a deterministic collection: vector i's components
// are a pure function of (seed, i), so tests (and the crash harness's
// child process) can regenerate any prefix independently.
func genVectors(seed int64, n, dim int) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		out[i] = v
	}
	return out
}

func openTestDB(t *testing.T, dir string, opt DurableOptions) *DurableDatabase {
	t.Helper()
	if opt.Seed == nil {
		opt.Seed = genVectors(1, 32, 4)
	}
	d, err := OpenDatabase(dir, opt)
	if err != nil {
		t.Fatalf("OpenDatabase: %v", err)
	}
	return d
}

// requireSameSearch asserts two databases return bit-identical k-NN
// panels for a set of probe queries.
func requireSameSearch(t *testing.T, want, got *Database) {
	t.Helper()
	if want.Len() != got.Len() {
		t.Fatalf("Len: want %d, got %d", want.Len(), got.Len())
	}
	probes := genVectors(99, 8, want.Dim())
	for qi, p := range probes {
		a := want.SearchByExample(p, 10)
		b := got.SearchByExample(p, 10)
		if len(a) != len(b) {
			t.Fatalf("probe %d: result count %d vs %d", qi, len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID || math.Float64bits(a[i].Dist) != math.Float64bits(b[i].Dist) {
				t.Fatalf("probe %d rank %d: (%d, %x) vs (%d, %x)",
					qi, i, a[i].ID, math.Float64bits(a[i].Dist), b[i].ID, math.Float64bits(b[i].Dist))
			}
		}
	}
}

func TestDurableWarmRestartRoundTrip(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	added := genVectors(2, 100, 4)
	var ids []int
	for i := 0; i < len(added); i += 10 {
		got, err := d.AddBatch(added[i : i+10])
		if err != nil {
			t.Fatalf("AddBatch: %v", err)
		}
		ids = append(ids, got...)
	}
	for i := 1; i < len(ids); i++ {
		if ids[i] != ids[i-1]+1 {
			t.Fatalf("non-contiguous ids: %v", ids)
		}
	}
	h := d.Health()
	if h.Items != 132 || h.ReadOnly || h.WALBytes == 0 {
		t.Fatalf("health before close: %+v", h)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}

	// Reopen without a checkpoint: everything must come back via WAL
	// replay, and searches must be bit-identical to a fresh in-memory
	// database over the same vectors.
	d2 := openTestDB(t, dir, DurableOptions{})
	defer d2.Close()
	h2 := d2.Health()
	if h2.Items != 132 {
		t.Fatalf("restart lost vectors: %+v", h2)
	}
	if h2.ReplayedVectors != 100 {
		t.Fatalf("expected 100 replayed vectors, got %+v", h2)
	}
	all := append(append([][]float64(nil), genVectors(1, 32, 4)...), added...)
	ref, err := NewDatabase(all)
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	requireSameSearch(t, ref, d2.Database)
}

func TestDurableCheckpointSkipsReplay(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	if _, err := d.AddBatch(genVectors(3, 20, 4)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if err := d.Checkpoint(); err != nil {
		t.Fatalf("Checkpoint: %v", err)
	}
	if got := d.Health().WALBytes; got != 0 {
		t.Fatalf("wal not truncated by checkpoint: %d bytes", got)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2 := openTestDB(t, dir, DurableOptions{})
	defer d2.Close()
	h := d2.Health()
	if h.ReplayedRecords != 0 || h.ReplayedVectors != 0 {
		t.Fatalf("checkpointed boot still replayed: %+v", h)
	}
	if h.Items != 52 {
		t.Fatalf("items after checkpointed boot: %+v", h)
	}
}

func TestDurableAutomaticRotation(t *testing.T) {
	dir := t.TempDir()
	// Tiny threshold: every flush overflows it, so rotation exercises
	// concurrently with ingest.
	d := openTestDB(t, dir, DurableOptions{SnapshotEveryBytes: 1, BatchSize: 4})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vecs := genVectors(int64(10+w), 40, 4)
			for _, v := range vecs {
				if _, err := d.Add(v); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if h := d.Health(); h.Snapshots < 2 {
		t.Fatalf("expected automatic rotations, health %+v", h)
	}
	d2 := openTestDB(t, dir, DurableOptions{})
	defer d2.Close()
	if got := d2.Len(); got != 32+4*40 {
		t.Fatalf("after rotation+restart Len = %d, want %d", got, 32+4*40)
	}
}

func TestDurableDegradedModeOnFsyncError(t *testing.T) {
	defer faultinject.Reset()
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	defer d.Close()
	if _, err := d.AddBatch(genVectors(4, 5, 4)); err != nil {
		t.Fatalf("healthy AddBatch: %v", err)
	}
	faultinject.Set(faultinject.WALFsyncError, nil)
	_, err := d.AddBatch(genVectors(5, 5, 4))
	if !errors.Is(err, ErrReadOnly) {
		t.Fatalf("fsync failure surfaced as %v, want ErrReadOnly", err)
	}
	faultinject.Reset()
	// Degradation is sticky: storage came back but the process stays
	// read-only until restarted.
	if _, err := d.Add(genVectors(6, 1, 4)[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("second add after degrade: %v", err)
	}
	h := d.Health()
	if !h.ReadOnly || h.Err == "" {
		t.Fatalf("health not degraded: %+v", h)
	}
	// Reads still work.
	if res := d.SearchByExample(genVectors(7, 1, 4)[0], 5); len(res) != 5 {
		t.Fatalf("search in degraded mode returned %d results", len(res))
	}
	if err := d.Checkpoint(); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("checkpoint in degraded mode: %v", err)
	}
}

func TestDurableRejectsBadVectors(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	defer d.Close()
	if _, err := d.Add([]float64{1, 2}); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("wrong dim: %v", err)
	}
	if _, err := d.Add([]float64{1, 2, math.NaN(), 4}); err == nil {
		t.Fatal("NaN accepted")
	}
	if _, err := d.Add([]float64{1, 2, math.Inf(1), 4}); err == nil {
		t.Fatal("Inf accepted")
	}
	if ids, err := d.AddBatch(nil); err != nil || ids != nil {
		t.Fatalf("empty batch: ids=%v err=%v", ids, err)
	}
	if d.Len() != 32 {
		t.Fatalf("rejected vectors mutated the store: Len=%d", d.Len())
	}
}

func TestDurableTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	if _, err := d.AddBatch(genVectors(8, 10, 4)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Simulate a crash mid-append: tack garbage half-record onto the log.
	walPath := filepath.Join(dir, "wal.log")
	f, err := os.OpenFile(walPath, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatalf("open wal: %v", err)
	}
	if _, err := f.Write([]byte{0xAA, 0xBB, 0xCC}); err != nil {
		t.Fatalf("append garbage: %v", err)
	}
	f.Close()

	d2 := openTestDB(t, dir, DurableOptions{})
	defer d2.Close()
	h := d2.Health()
	if h.TruncatedBytes != 3 {
		t.Fatalf("expected 3 truncated bytes, health %+v", h)
	}
	if h.Items != 42 {
		t.Fatalf("torn tail lost acked writes: %+v", h)
	}
}

func TestDurableMidLogCorruptionRefusesBoot(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{BatchSize: 1, MaxWait: time.Nanosecond})
	// Sequential adds so the log holds several records.
	for _, v := range genVectors(9, 6, 4) {
		if _, err := d.Add(v); err != nil {
			t.Fatalf("Add: %v", err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	walPath := filepath.Join(dir, "wal.log")
	raw, err := os.ReadFile(walPath)
	if err != nil {
		t.Fatalf("read wal: %v", err)
	}
	recs, err := wal.ReadAll(walPath)
	if err != nil || len(recs) < 2 {
		t.Fatalf("need ≥2 records, got %d (err %v)", len(recs), err)
	}
	// Flip a payload bit inside the first record: the valid records
	// after it prove this is not a torn tail, so boot must refuse
	// rather than silently drop acknowledged writes.
	raw[8+4] ^= 0x01
	if err := os.WriteFile(walPath, raw, 0o644); err != nil {
		t.Fatalf("write wal: %v", err)
	}
	if _, err := OpenDatabase(dir, DurableOptions{}); !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-log corruption boot: %v, want ErrCorruptLog", err)
	}
}

func TestDurableReplaySkipsSnapshotCoveredRecords(t *testing.T) {
	// Crash window: rotation renamed wal.log → wal.old and wrote the new
	// snapshot, but the process died before deleting wal.old. Boot must
	// apply wal.old idempotently (all its records are covered by the
	// snapshot) and lose nothing.
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	if _, err := d.AddBatch(genVectors(10, 10, 4)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	// Hand-build the crash state: current wal.log becomes wal.old, and
	// the snapshot is rewritten to cover everything.
	if err := os.Rename(filepath.Join(dir, "wal.log"), filepath.Join(dir, "wal.old")); err != nil {
		t.Fatalf("rename: %v", err)
	}
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	if err := os.WriteFile(filepath.Join(dir, "snapshot"), buf.Bytes(), 0o644); err != nil {
		t.Fatalf("write snapshot: %v", err)
	}
	d2 := openTestDB(t, dir, DurableOptions{})
	defer d2.Close()
	h := d2.Health()
	if h.Items != 42 {
		t.Fatalf("idempotent replay: Items=%d want 42 (%+v)", h.Items, h)
	}
	if h.ReplayedVectors != 0 {
		t.Fatalf("covered records re-applied %d vectors", h.ReplayedVectors)
	}
}

func TestDurableFirstBootRequiresSeed(t *testing.T) {
	if _, err := OpenDatabase(t.TempDir(), DurableOptions{}); err == nil {
		t.Fatal("empty dir with no seed opened")
	}
}

func TestDurableSnapshotWriterRoundTrip(t *testing.T) {
	db, err := NewDatabase(genVectors(11, 50, 6))
	if err != nil {
		t.Fatalf("NewDatabase: %v", err)
	}
	var buf bytes.Buffer
	if err := db.Snapshot(&buf); err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	back, err := RestoreDatabase(bytes.NewReader(buf.Bytes()), IndexOptions{})
	if err != nil {
		t.Fatalf("RestoreDatabase: %v", err)
	}
	requireSameSearch(t, db, back)

	// Corruption: truncation and a flipped payload bit both surface
	// ErrCorruptSnapshot.
	img := buf.Bytes()
	if _, err := RestoreDatabase(bytes.NewReader(img[:len(img)/2]), IndexOptions{}); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("truncated snapshot: %v", err)
	}
	mut := append([]byte(nil), img...)
	mut[len(mut)/2] ^= 0x10
	if _, err := RestoreDatabase(bytes.NewReader(mut), IndexOptions{}); !errors.Is(err, ErrCorruptSnapshot) {
		t.Fatalf("mutated snapshot: %v", err)
	}
}

func TestDurableCloseIdempotentAndRejectsLateAdds(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := d.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := d.Add(genVectors(12, 1, 4)[0]); !errors.Is(err, ErrReadOnly) {
		t.Fatalf("add after close: %v", err)
	}
}

func TestDurableMetricsExposed(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{})
	defer d.Close()
	if _, err := d.AddBatch(genVectors(13, 8, 4)); err != nil {
		t.Fatalf("AddBatch: %v", err)
	}
	snap := d.Metrics()
	for _, name := range []string{"wal.fsyncs", "wal.records", "wal.bytes", "ingest.batches", "ingest.acked"} {
		if snap.Counters[name] == 0 {
			t.Fatalf("counter %s is zero: %+v", name, snap.Counters)
		}
	}
	if _, ok := snap.Histograms["wal.fsync_seconds"]; !ok {
		t.Fatalf("missing wal.fsync_seconds histogram")
	}
	if _, ok := snap.Histograms["ingest.ack_seconds"]; !ok {
		t.Fatalf("missing ingest.ack_seconds histogram")
	}
	_ = fmt.Sprintf("%v", snap)
}
