package qcluster

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
)

// adaptiveOptions is a fast-warming planner configuration for tests:
// models predict after 2 observations and every 2nd decision probes a
// cold route.
func adaptiveOptions(backend IndexBackend) IndexOptions {
	return IndexOptions{
		Backend: backend,
		Plan:    PlanOptions{Adaptive: true, MinObservations: 2, ProbeEvery: 2},
	}
}

// TestPlanColdStartIsStatic pins the planner's cold-start contract at
// the public surface: the first search of a fresh adaptive database
// reports the static route with no adaptive flag and no prediction —
// indistinguishable from a planner-free database.
func TestPlanColdStartIsStatic(t *testing.T) {
	rng := rand.New(rand.NewSource(50))
	vectors, _ := buildVectors(rng)
	// Default ProbeEvery (16): the first decision is never a probe.
	db := buildDB(t, vectors, IndexOptions{Plan: PlanOptions{Adaptive: true}})
	s := db.NewSession(db.Vector(0), Options{})
	res := s.Results(10)
	if len(res) != 10 {
		t.Fatalf("results = %d", len(res))
	}
	last := s.Stats().LastSearch
	if last.PlanRoute != "tree" || last.PlanAdaptive {
		t.Fatalf("cold search stats = route %q adaptive %v, want static tree", last.PlanRoute, last.PlanAdaptive)
	}
	if last.PlanPredictedSeconds != 0 {
		t.Fatalf("cold search carries a prediction: %v", last.PlanPredictedSeconds)
	}

	// And the results are bit-identical to a planner-free database.
	plain := buildDB(t, vectors, IndexOptions{})
	identicalResults(t, res, plain.NewSession(plain.Vector(0), Options{}).Results(10), "cold adaptive vs plain")
}

// TestPlanAdaptiveBitIdenticalExact is the equivalence gate at the
// library level: an adaptive database must return bit-identical results
// to both static exact backends on every search — plain, refined, and
// across feedback rounds — even after its models warm up and it starts
// routing adaptively.
func TestPlanAdaptiveBitIdenticalExact(t *testing.T) {
	rng := rand.New(rand.NewSource(51))
	vectors, labels := buildVectors(rng)
	adaptive := buildDB(t, vectors, adaptiveOptions(BackendTree))
	tree := buildDB(t, vectors, IndexOptions{})
	va := buildDB(t, vectors, IndexOptions{Backend: BackendVAFile})

	// Stateless sweep: enough queries to warm both exact routes through
	// probing and flip the planner adaptive.
	for trial := 0; trial < 60; trial++ {
		q := vectors[rng.Intn(len(vectors))]
		k := 1 + rng.Intn(30)
		res := adaptive.SearchByExample(q, k)
		identicalResults(t, res, tree.SearchByExample(q, k), "adaptive vs tree")
		identicalResults(t, res, va.SearchByExample(q, k), "adaptive vs vafile")
	}

	// Feedback loop: the multipoint refined query must stay identical too.
	sa := adaptive.NewSession(adaptive.Vector(0), Options{})
	st := tree.NewSession(tree.Vector(0), Options{})
	for round := 0; round < 4; round++ {
		ra := sa.Results(40)
		identicalResults(t, ra, st.Results(40), "adaptive session vs tree session")
		var marked []Point
		for _, r := range ra {
			if labels[r.ID] == 0 {
				marked = append(marked, Point{ID: r.ID, Vec: tree.Vector(r.ID), Score: 2})
			}
		}
		if err := sa.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
		if err := st.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
	}

	// The planner must actually have made model-driven decisions by now —
	// otherwise this test proved nothing about adaptive routing.
	snap := adaptive.Metrics()
	decisions := snap.Counters["plan.decisions"]
	static := snap.Counters["plan.static_fallback"]
	probes := snap.Counters["plan.probes"]
	if decisions == 0 {
		t.Fatal("no plan decisions recorded")
	}
	if adaptiveN := decisions - static - probes; adaptiveN <= 0 {
		t.Fatalf("planner never went adaptive: decisions=%d static=%d probes=%d", decisions, static, probes)
	}
	if probes == 0 {
		t.Fatal("no probes recorded despite ProbeEvery=2")
	}
}

// TestPlanStatsSurfaceWarm checks that once warm, the plan fields show
// up end to end: SearchStats carries the chosen route, the adaptive
// flag and a prediction, and the plan.* metrics move.
func TestPlanStatsSurfaceWarm(t *testing.T) {
	rng := rand.New(rand.NewSource(52))
	vectors, _ := buildVectors(rng)
	db := buildDB(t, vectors, adaptiveOptions(BackendTree))
	s := db.NewSession(db.Vector(1), Options{})
	var sawAdaptive bool
	for i := 0; i < 40; i++ {
		s.Results(15)
		last := s.Stats().LastSearch
		if last.PlanRoute == "" {
			t.Fatalf("search %d: no plan route in stats", i)
		}
		if last.PlanAdaptive {
			sawAdaptive = true
			if last.PlanPredictedSeconds <= 0 {
				t.Fatalf("adaptive search without prediction: %+v", last)
			}
		}
	}
	if !sawAdaptive {
		t.Fatal("40 searches never produced an adaptive plan (MinObservations=2, ProbeEvery=2)")
	}
	snap := db.Metrics()
	if snap.Counters["plan.decisions"] == 0 {
		t.Fatal("plan.decisions never incremented")
	}
}

// TestPlanConcurrentFeedback runs adaptive planning under concurrent
// sessions whose feedback rounds grow m (shifting model keys) — the
// -race exercise for planner state — and checks every session's results
// stay bit-identical to an isolated static-backend session fed the same
// judgements.
func TestPlanConcurrentFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	vectors, labels := buildVectors(rng)
	adaptive := buildDB(t, vectors, adaptiveOptions(BackendTree))
	tree := buildDB(t, vectors, IndexOptions{})

	const sessions = 6
	var wg sync.WaitGroup
	errs := make(chan error, sessions)
	for g := 0; g < sessions; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			seed := g % adaptive.Len()
			sa := adaptive.NewSession(adaptive.Vector(seed), Options{})
			st := tree.NewSession(tree.Vector(seed), Options{})
			for round := 0; round < 5; round++ {
				ra := sa.Results(25)
				rt := st.Results(25)
				if len(ra) != len(rt) {
					errs <- errors.New("result length diverged")
					return
				}
				for i := range ra {
					if ra[i] != rt[i] {
						errs <- errors.New("adaptive session diverged from static")
						return
					}
				}
				var marked []Point
				for _, r := range ra {
					if labels[r.ID] == g%3 {
						marked = append(marked, Point{ID: r.ID, Vec: tree.Vector(r.ID), Score: 1})
					}
				}
				if len(marked) == 0 {
					continue
				}
				if err := sa.MarkRelevant(marked); err != nil {
					errs <- err
					return
				}
				if err := st.MarkRelevant(marked); err != nil {
					errs <- err
					return
				}
			}
			errs <- nil
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

// TestApproxEntryPointsRequireANN is the cross-surface contract table:
// every approximate entry point — stateless, session, and the sharded
// per-shard leg — returns ErrBackendUnavailable on both exact backends
// and works on the ANN backend. An adaptive planner must not change
// that: the ANN route stays opt-in per call.
func TestApproxEntryPointsRequireANN(t *testing.T) {
	rng := rand.New(rand.NewSource(54))
	vectors, _ := buildVectors(rng)
	ctx := context.Background()

	entryPoints := []struct {
		name string
		call func(db *Database) error
	}{
		{"SearchApproxContext", func(db *Database) error {
			_, err := db.SearchApproxContext(ctx, db.Vector(0), 5, 0)
			return err
		}},
		{"Session.ResultsApproxContext", func(db *Database) error {
			_, err := db.NewSession(db.Vector(0), Options{}).ResultsApproxContext(ctx, 5, 0)
			return err
		}},
		{"SearchApproxMetric", func(db *Database) error {
			_, _, err := db.SearchApproxMetric(ctx, EuclideanMetric(db.Vector(0)), 5, 0)
			return err
		}},
	}

	for _, opt := range []IndexOptions{
		{Backend: BackendTree},
		{Backend: BackendVAFile},
		adaptiveOptions(BackendTree), // a planner does not unlock approx either
	} {
		db := buildDB(t, vectors, opt)
		for _, ep := range entryPoints {
			if err := ep.call(db); !errors.Is(err, ErrBackendUnavailable) {
				t.Errorf("backend %q %s: err = %v, want ErrBackendUnavailable",
					db.IndexInfo().Backend, ep.name, err)
			}
		}
	}

	annDB := buildDB(t, vectors, IndexOptions{Backend: BackendANN, ANN: ANNOptions{Seed: 2}})
	for _, ep := range entryPoints {
		if err := ep.call(annDB); err != nil {
			t.Errorf("ann backend %s: %v", ep.name, err)
		}
	}
}

// TestSessionResultsApprox checks the session-level approximate
// retrieval on the ANN backend: before feedback it answers the example
// query; with an exhaustive efSearch it is bit-identical to the exact
// session results, refined query included.
func TestSessionResultsApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	vectors, labels := buildVectors(rng)
	ef := len(vectors) + 1
	annDB := buildDB(t, vectors, IndexOptions{Backend: BackendANN, ANN: ANNOptions{EfSearch: ef, Seed: 5}})
	tree := buildDB(t, vectors, IndexOptions{})

	sa := annDB.NewSession(annDB.Vector(0), Options{})
	st := tree.NewSession(tree.Vector(0), Options{})
	identicalResults(t, sa.ResultsApprox(20, ef), st.Results(20), "pre-feedback approx")

	var marked []Point
	for _, r := range st.Results(20) {
		if labels[r.ID] == 0 {
			marked = append(marked, Point{ID: r.ID, Vec: tree.Vector(r.ID), Score: 2})
		}
	}
	if err := sa.MarkRelevant(marked); err != nil {
		t.Fatal(err)
	}
	if err := st.MarkRelevant(marked); err != nil {
		t.Fatal(err)
	}
	identicalResults(t, sa.ResultsApprox(20, ef), st.Results(20), "refined approx")
}
