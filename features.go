package qcluster

import (
	"image"

	"repro/internal/feature"
)

// ColorMomentsFeature extracts the HSV color-moment vector from an image:
// the hue mean (encoded as cosine and sine to respect hue circularity),
// hue dispersion moments, and mean/deviation/skewness of saturation and
// value — 10 components. Reduce with PCA (the paper uses 3 components)
// before indexing large collections.
func ColorMomentsFeature(img image.Image) []float64 {
	return feature.ColorMoments(img)
}

// TextureFeature extracts the 16-component gray-level co-occurrence
// texture vector (energy, inertia, entropy, homogeneity and the further
// Haralick statistics). Reduce with PCA (the paper uses 4 components)
// before indexing large collections.
func TextureFeature(img image.Image) []float64 {
	return feature.TextureFeatures(img)
}
