package qcluster

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"os"
	"os/exec"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/faultinject"
)

// The crash-recovery harness proves the durability contract the hard
// way: a child process ingests into a durable directory and is
// SIGKILLed at an injected fault point — before the fsync, after the
// fsync, mid-record-write (torn tail), or between a snapshot's write
// and its rename. The parent then reopens the directory and checks
// that exactly the acknowledged writes survive:
//
//   - every acked id is present with its exact vector,
//   - anything beyond the acks is complete batches of valid vectors
//     (durable but unacknowledged — the write equivalent of an ack
//     lost in flight),
//   - searches over the recovered database are bit-identical to a
//     fresh in-memory database over the same vectors,
//   - the recovered database accepts new writes.
//
// The child re-execs this test binary (crashHelperEnv selects helper
// mode), so the harness needs no separately built command.

const (
	crashHelperEnv = "QCLUSTER_CRASH_HELPER"
	crashDirEnv    = "QCLUSTER_CRASH_DIR"
	crashPointEnv  = "QCLUSTER_CRASH_POINT"
	crashAtEnv     = "QCLUSTER_CRASH_AT"
)

const (
	crashSeedN = 32 // seed collection size (must match genVectors(1, ...))
	crashDim   = 4
)

// crashVec is the deterministic vector assigned id (seed ids included),
// so parent and child derive identical contents independently.
func crashVec(id int) []float64 {
	if id < crashSeedN {
		return genVectors(1, crashSeedN, crashDim)[id]
	}
	rng := rand.New(rand.NewSource(0x9E3779B9 + int64(id)))
	v := make([]float64, crashDim)
	for d := range v {
		v[d] = rng.NormFloat64()
	}
	return v
}

// TestCrashHelperProcess is not a test: it is the child body, entered
// only when re-exec'd with crashHelperEnv set. It ingests sequentially,
// printing "acked <id>" for every durable acknowledgement, and dies by
// SIGKILL when the armed fault point fires.
func TestCrashHelperProcess(t *testing.T) {
	if os.Getenv(crashHelperEnv) != "1" {
		t.Skip("helper process body; run via TestCrashRecovery")
	}
	dir := os.Getenv(crashDirEnv)
	point := os.Getenv(crashPointEnv)
	at, _ := strconv.Atoi(os.Getenv(crashAtEnv))
	if at < 1 {
		at = 1
	}
	hits := 0
	faultinject.Set(point, func() {
		hits++
		if hits == at {
			// Raw SIGKILL: no deferred cleanup, no flushes — the crash
			// the recovery path must survive.
			p, _ := os.FindProcess(os.Getpid())
			_ = p.Kill()
			select {}
		}
	})
	d, err := OpenDatabase(dir, DurableOptions{
		Seed:      genVectors(1, crashSeedN, crashDim),
		BatchSize: 4,
		MaxWait:   100 * time.Microsecond,
		// Tiny threshold: rotations happen constantly, so the snapshot
		// fault points get exercised by ordinary ingest volume.
		SnapshotEveryBytes: 2048,
	})
	if err != nil {
		fmt.Printf("open-error %v\n", err)
		os.Exit(3)
	}
	out := bufio.NewWriter(os.Stdout)
	for i := 0; i < 4000; i++ {
		id, err := d.Add(crashVec(d.Len()))
		if err != nil {
			// A poisoned writer (torn-append injection) degrades the
			// database instead of crashing; report and stop so the
			// parent can still verify the acked prefix. (Normally the
			// kill lands first.)
			fmt.Fprintf(out, "add-error %v\n", err)
			break
		}
		fmt.Fprintf(out, "acked %d\n", id)
		out.Flush() // ack must be on the pipe before the next write can die
	}
	out.Flush()
	os.Exit(0)
}

// runCrashChild re-execs the test binary in helper mode and collects
// the acked ids until the child dies.
func runCrashChild(t *testing.T, dir, point string, at int) (acked []int, killed bool) {
	t.Helper()
	cmd := exec.Command(os.Args[0], "-test.run=TestCrashHelperProcess", "-test.v=false")
	cmd.Env = append(os.Environ(),
		crashHelperEnv+"=1",
		crashDirEnv+"="+dir,
		crashPointEnv+"="+point,
		crashAtEnv+"="+strconv.Itoa(at),
	)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	err := cmd.Run()
	if err == nil {
		killed = false
	} else if ee, ok := err.(*exec.ExitError); ok {
		killed = ee.ExitCode() == -1 // terminated by signal
		if !killed && ee.ExitCode() == 3 {
			t.Fatalf("child failed to open %s:\n%s%s", dir, stdout.String(), stderr.String())
		}
	} else {
		t.Fatalf("running child: %v", err)
	}
	for _, line := range strings.Split(stdout.String(), "\n") {
		if id, ok := strings.CutPrefix(line, "acked "); ok {
			n, err := strconv.Atoi(id)
			if err != nil {
				t.Fatalf("bad ack line %q", line)
			}
			acked = append(acked, n)
		}
	}
	return acked, killed
}

// verifyRecovery reopens the crashed directory and checks the
// durability contract against the acked set.
func verifyRecovery(t *testing.T, dir, point string, acked []int) {
	t.Helper()
	d, err := OpenDatabase(dir, DurableOptions{Seed: genVectors(1, crashSeedN, crashDim)})
	if err != nil {
		t.Fatalf("%s: reopening crashed dir: %v", point, err)
	}
	defer d.Close()

	maxAcked := crashSeedN - 1
	if len(acked) > 0 {
		maxAcked = acked[len(acked)-1]
	}
	if d.Len() <= maxAcked {
		t.Fatalf("%s: lost acknowledged writes: Len=%d, max acked id %d", point, d.Len(), maxAcked)
	}
	// Every recovered vector — acked or durable-but-unacked — must be
	// exactly the one the deterministic generator assigned its id.
	for id := 0; id < d.Len(); id++ {
		got, ok := d.VectorOK(id)
		if !ok {
			t.Fatalf("%s: id %d missing after recovery", point, id)
		}
		want := crashVec(id)
		for dd := range want {
			if math.Float64bits(got[dd]) != math.Float64bits(want[dd]) {
				t.Fatalf("%s: id %d component %d: %x, want %x",
					point, id, dd, math.Float64bits(got[dd]), math.Float64bits(want[dd]))
			}
		}
	}
	// Bit-identical search vs a fresh in-memory database over the
	// recovered collection.
	all := make([][]float64, d.Len())
	for id := range all {
		all[id] = crashVec(id)
	}
	ref, err := NewDatabase(all)
	if err != nil {
		t.Fatalf("%s: reference database: %v", point, err)
	}
	requireSameSearch(t, ref, d.Database)

	// The recovered database is live: it accepts and persists new writes.
	if _, err := d.Add(crashVec(d.Len())); err != nil {
		t.Fatalf("%s: add after recovery: %v", point, err)
	}
}

func TestCrashRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns kill-9 child processes")
	}
	points := []struct {
		point string
		// hit picks which firing to kill at: late enough that acks and
		// (for snapshot points) rotations have happened, randomized so
		// repeated CI runs sample different interleavings.
		minHit, maxHit int
	}{
		{faultinject.WALPreFsync, 5, 60},
		{faultinject.WALPostFsync, 5, 60},
		{faultinject.WALTornAppend, 1, 1}, // poisons the writer on first fire
		{faultinject.SnapshotMidRename, 1, 4},
	}
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for _, tc := range points {
		tc := tc
		t.Run(tc.point, func(t *testing.T) {
			dir := t.TempDir()
			at := tc.minHit
			if tc.maxHit > tc.minHit {
				at += rng.Intn(tc.maxHit - tc.minHit)
			}
			acked, killed := runCrashChild(t, dir, tc.point, at)
			t.Logf("%s: killed=%v after %d acks (crash at hit %d)", tc.point, killed, len(acked), at)
			if !killed && tc.point != faultinject.WALTornAppend {
				t.Fatalf("%s: child survived 4000 adds without hitting the crash point", tc.point)
			}
			verifyRecovery(t, dir, tc.point, acked)
		})
	}
}

// TestCrashRecoveryBackToBack crashes the same directory twice in a row
// (post-fsync, then torn append) before verifying: recovery must
// compose across repeated crashes, not just survive one.
func TestCrashRecoveryBackToBack(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns kill-9 child processes")
	}
	dir := t.TempDir()
	acked1, _ := runCrashChild(t, dir, faultinject.WALPostFsync, 20)
	acked2, _ := runCrashChild(t, dir, faultinject.WALTornAppend, 1)
	acked := append(acked1, acked2...)
	verifyRecovery(t, dir, "back-to-back", acked)
}

// TestDurableConcurrentMixedWorkload is the -race regression: durable
// ingest (single and batch), searches, feedback sessions and snapshots
// all run concurrently, and afterwards a snapshot-restore plus a warm
// reopen must both reproduce the final state exactly.
func TestDurableConcurrentMixedWorkload(t *testing.T) {
	dir := t.TempDir()
	d := openTestDB(t, dir, DurableOptions{BatchSize: 8, MaxWait: 200 * time.Microsecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	// Writers: two single-add, two batch.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, v := range genVectors(int64(20+w), 60, 4) {
				if _, err := d.Add(v); err != nil {
					t.Errorf("Add: %v", err)
					return
				}
			}
		}(w)
	}
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vecs := genVectors(int64(30+w), 60, 4)
			for i := 0; i < len(vecs); i += 6 {
				if _, err := d.AddBatch(vecs[i : i+6]); err != nil {
					t.Errorf("AddBatch: %v", err)
					return
				}
			}
		}(w)
	}
	// Searchers.
	for w := 0; w < 2; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			probes := genVectors(int64(40+w), 16, 4)
			for {
				select {
				case <-stop:
					return
				default:
				}
				for _, p := range probes {
					if res := d.SearchByExample(p, 5); len(res) != 5 {
						t.Errorf("search returned %d results", len(res))
						return
					}
				}
			}
		}(w)
	}
	// Feedback session riding along.
	wg.Add(1)
	go func() {
		defer wg.Done()
		sess := d.NewSession(genVectors(50, 1, 4)[0], Options{})
		for r := 0; r < 10; r++ {
			res := sess.Results(8)
			pts := make([]Point, 0, 3)
			for _, rr := range res[:3] {
				pts = append(pts, Point{ID: rr.ID, Vec: d.Vector(rr.ID), Score: 1})
			}
			if err := sess.MarkRelevant(pts); err != nil {
				t.Errorf("MarkRelevant: %v", err)
				return
			}
		}
	}()
	// Snapshotter: concurrent consistent images.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 5; i++ {
			var buf bytes.Buffer
			if err := d.Snapshot(&buf); err != nil {
				t.Errorf("Snapshot: %v", err)
				return
			}
			if _, err := RestoreDatabase(bytes.NewReader(buf.Bytes()), IndexOptions{}); err != nil {
				t.Errorf("Restore mid-load: %v", err)
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()

	// Wait for writers + feedback + snapshotter, then release searchers.
	done := make(chan struct{})
	go func() { wg.Wait(); close(done) }()
	timer := time.NewTimer(60 * time.Second)
	defer timer.Stop()
	writersDone := make(chan struct{})
	go func() {
		// Writers are the finite goroutines; searchers spin until stop.
		// Close stop once the finite work has had time to finish.
		for d.Len() < 32+2*60+2*60 {
			time.Sleep(5 * time.Millisecond)
		}
		close(writersDone)
	}()
	select {
	case <-writersDone:
		close(stop)
	case <-timer.C:
		close(stop)
		t.Fatal("writers did not finish in 60s")
	}
	<-done

	wantLen := 32 + 4*60
	if d.Len() != wantLen {
		t.Fatalf("final Len=%d, want %d", d.Len(), wantLen)
	}

	// Snapshot → restore reproduces the state bit-for-bit.
	var buf bytes.Buffer
	if err := d.Snapshot(&buf); err != nil {
		t.Fatalf("final Snapshot: %v", err)
	}
	restored, err := RestoreDatabase(bytes.NewReader(buf.Bytes()), IndexOptions{})
	if err != nil {
		t.Fatalf("final Restore: %v", err)
	}
	requireSameSearch(t, d.Database, restored)

	// Warm reopen (snapshot + WAL replay) reproduces it too.
	if err := d.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	d2 := openTestDB(t, dir, DurableOptions{})
	defer d2.Close()
	for id := 0; id < wantLen; id++ {
		a, b := d.Vector(id), d2.Vector(id)
		for dd := range a {
			if math.Float64bits(a[dd]) != math.Float64bits(b[dd]) {
				t.Fatalf("reopen vector %d differs at %d", id, dd)
			}
		}
	}
	requireSameSearch(t, d.Database, d2.Database)
}
