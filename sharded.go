package qcluster

import (
	"context"
	"fmt"
	"time"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/plan"
)

// This file is the root package's contract with the sharded
// scatter-gather tier (internal/shard): per-shard search entry points
// that run one shard-local k-NN under the shard database's read lock
// while sharing one atomic k-th-best bound with the sibling shards.
// Results carry shard-local ids; the shard set remaps and merges them.

// Metric exposes the query model's current aggregate distance function.
// Every shard of a scatter-gather search must evaluate the identical
// metric, so the sharded session builds it once from the shared query
// and hands it to every per-shard searcher. The query must be Ready —
// a query without feedback has no metric and this panics (the sharded
// session checks Ready first, like Search does).
func (q *Query) Metric() distance.Metric { return q.metric() }

// EuclideanMetric builds the plain example-query metric — the one
// SearchByExample uses — for callers that drive per-shard searches
// directly. The example is not retained.
func EuclideanMetric(example []float64) distance.Metric {
	return &distance.Euclidean{Center: linalg.Vector(example).Clone()}
}

// SearchMetricShared runs one shard-local k-NN under the database's
// read lock with an externally owned shared bound (nil behaves like a
// private bound). It is the stateless per-shard leg of a scatter-gather
// query: results use this database's local ids and the caller merges
// them across shards with the usual (Dist, ID) order. An interrupted
// search returns its best-effort results with an error matching both
// ErrPartialResults and the context error.
func (db *Database) SearchMetricShared(ctx context.Context, m distance.Metric, k int, sb *index.SharedBound) (_ []Result, _ index.SearchStats, err error) {
	defer barrier("SearchMetricShared", &err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, index.SearchStats{}, wrapInterrupt(cerr, 0)
	}
	start := time.Now()
	res, stats, cerr := db.knnBackend(ctx, m, k, sb, nil)
	db.met.observeSearch(time.Since(start), k, len(res), stats, cerr != nil)
	return convertResults(res), stats, wrapInterrupt(cerr, len(res))
}

// SearchApproxMetric runs one shard-local approximate k-NN leg: the ANN
// graph proposes candidates, exact refinement scores them with m. It
// requires the "ann" backend — ErrBackendUnavailable otherwise, the
// same contract as SearchApproxContext — and takes no shared bound (the
// ANN path prunes nothing, so each leg returns its full local top-k and
// the caller's (Dist, ID) merge stays correct).
func (db *Database) SearchApproxMetric(ctx context.Context, m distance.Metric, k, efSearch int) (_ []Result, _ index.SearchStats, err error) {
	defer barrier("SearchApproxMetric", &err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, index.SearchStats{}, wrapInterrupt(cerr, 0)
	}
	if db.backend != BackendANN {
		return nil, index.SearchStats{}, fmt.Errorf("qcluster: backend is %q: %w", string(db.backend), ErrBackendUnavailable)
	}
	start := time.Now()
	db.mu.RLock()
	res, stats, cerr := db.annIdx.KNNEf(ctx, m, k, efSearch)
	if db.planner != nil && cerr == nil {
		q := db.planQueryLocked(m, k, nil)
		db.planner.Observe(plan.Decision{Route: plan.RouteANN}, q, stats, time.Since(start))
	}
	db.mu.RUnlock()
	db.met.observeSearch(time.Since(start), k, len(res), stats, cerr != nil)
	return convertResults(res), stats, wrapInterrupt(cerr, len(res))
}

// ShardSearcher is the per-shard session-scoped search handle of the
// scatter-gather tier: it owns a RefinementSearcher (the cross-iteration
// leaf cache of the multipoint refinement approach) over one shard
// database and runs each query under that database's read lock. Not
// safe for concurrent use — the owning sharded session serializes its
// searchers, exactly as Session serializes its single searcher.
type ShardSearcher struct {
	db *Database
	rs *index.RefinementSearcher
}

// NewShardSearcher returns a searcher with an empty refinement cache.
func (db *Database) NewShardSearcher() *ShardSearcher {
	return &ShardSearcher{db: db, rs: index.NewRefinementSearcher(db.tree)}
}

// KNNShared answers one per-shard leg of a scatter-gather query,
// seeding from (and refreshing) the shard's refinement cache. See
// SearchMetricShared for bound sharing and error semantics.
func (ss *ShardSearcher) KNNShared(ctx context.Context, m distance.Metric, k int, sb *index.SharedBound) (_ []Result, _ index.SearchStats, err error) {
	defer barrier("ShardSearcher.KNNShared", &err)
	db := ss.db
	start := time.Now()
	rs := ss.rs
	if db.backend != BackendTree && db.planner == nil {
		// See Session.results: with an adaptive planner the tree stays an
		// eligible route, so the per-shard cache remains attached.
		rs = nil
	}
	res, stats, cerr := db.knnBackend(ctx, m, k, sb, rs)
	db.met.observeSearch(time.Since(start), k, len(res), stats, cerr != nil)
	return convertResults(res), stats, wrapInterrupt(cerr, len(res))
}
