package qcluster

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"

	"repro/internal/faultinject"
	"repro/internal/index"
)

// This file is the database snapshot format: a versioned, checksummed
// binary image of the vector store that OpenDatabase boots from and
// snapshot rotation writes atomically (write-temp → fsync → rename).
//
// Layout (little-endian):
//
//	[8]  magic "QCDBSNP1"
//	[4]  u32 dim
//	[8]  u64 vector count
//	[..] count×dim float64 components, row-major
//	[4]  u32 CRC32C over everything after the magic
//
// A truncated or bit-flipped file fails the length or checksum test and
// surfaces ErrCorruptSnapshot instead of booting a silently wrong
// database.

var snapshotMagic = [8]byte{'Q', 'C', 'D', 'B', 'S', 'N', 'P', '1'}

var snapCastagnoli = crc32.MakeTable(crc32.Castagnoli)

// maxSnapshotVectors bounds the vector count a snapshot header may
// claim, so a smashed header cannot drive a giant allocation.
const maxSnapshotVectors = 1 << 33

// Snapshot writes a consistent, checksummed image of the vector store
// to w. The store is copied under the read lock (so concurrent Adds are
// either fully included or fully excluded — never torn mid-batch) and
// encoded outside it, so disk latency never blocks writers.
func (db *Database) Snapshot(w io.Writer) (err error) {
	defer barrier("Snapshot", &err)
	dim, flat := db.flatCopy()
	return writeSnapshot(w, dim, flat)
}

// flatCopy returns the dimensionality and a private copy of the
// contiguous component block.
func (db *Database) flatCopy() (int, []float64) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.Dim(), append([]float64(nil), db.store.Flat()...)
}

// writeSnapshot encodes one store image (see the format comment above).
func writeSnapshot(w io.Writer, dim int, flat []float64) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(snapshotMagic[:]); err != nil {
		return fmt.Errorf("qcluster: snapshot: %w", err)
	}
	crc := crc32.New(snapCastagnoli)
	out := io.MultiWriter(bw, crc)
	var hdr [12]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(dim))
	binary.LittleEndian.PutUint64(hdr[4:12], uint64(len(flat)/dim))
	if _, err := out.Write(hdr[:]); err != nil {
		return fmt.Errorf("qcluster: snapshot: %w", err)
	}
	var chunk [8 << 10]byte
	used := 0
	for _, x := range flat {
		binary.LittleEndian.PutUint64(chunk[used:used+8], math.Float64bits(x))
		used += 8
		if used == len(chunk) {
			if _, err := out.Write(chunk[:]); err != nil {
				return fmt.Errorf("qcluster: snapshot: %w", err)
			}
			used = 0
		}
	}
	if used > 0 {
		if _, err := out.Write(chunk[:used]); err != nil {
			return fmt.Errorf("qcluster: snapshot: %w", err)
		}
	}
	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], crc.Sum32())
	if _, err := bw.Write(tail[:]); err != nil {
		return fmt.Errorf("qcluster: snapshot: %w", err)
	}
	return bw.Flush()
}

// readSnapshot decodes a store image written by Snapshot, verifying the
// magic, the shape and the checksum. Corruption of any kind surfaces an
// error wrapping ErrCorruptSnapshot.
func readSnapshot(r io.Reader) (dim int, flat []float64, err error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var magic [8]byte
	if _, err := io.ReadFull(br, magic[:]); err != nil {
		return 0, nil, fmt.Errorf("qcluster: snapshot header: %w: %w", ErrCorruptSnapshot, err)
	}
	if magic != snapshotMagic {
		return 0, nil, fmt.Errorf("qcluster: snapshot magic %q: %w", magic[:], ErrCorruptSnapshot)
	}
	crc := crc32.New(snapCastagnoli)
	in := io.TeeReader(br, crc)
	var hdr [12]byte
	if _, err := io.ReadFull(in, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("qcluster: snapshot header: %w: %w", ErrCorruptSnapshot, err)
	}
	dim = int(binary.LittleEndian.Uint32(hdr[0:4]))
	count := binary.LittleEndian.Uint64(hdr[4:12])
	if dim <= 0 || count > maxSnapshotVectors {
		return 0, nil, fmt.Errorf("qcluster: snapshot claims dim %d × %d vectors: %w", dim, count, ErrCorruptSnapshot)
	}
	flat = make([]float64, 0, int(count)*dim)
	var chunk [8 << 10]byte
	remaining := int(count) * dim * 8
	for remaining > 0 {
		n := len(chunk)
		if remaining < n {
			n = remaining
		}
		if _, err := io.ReadFull(in, chunk[:n]); err != nil {
			return 0, nil, fmt.Errorf("qcluster: snapshot truncated: %w: %w", ErrCorruptSnapshot, err)
		}
		for off := 0; off < n; off += 8 {
			flat = append(flat, math.Float64frombits(binary.LittleEndian.Uint64(chunk[off:off+8])))
		}
		remaining -= n
	}
	sum := crc.Sum32()
	var tail [4]byte
	if _, err := io.ReadFull(br, tail[:]); err != nil {
		return 0, nil, fmt.Errorf("qcluster: snapshot checksum missing: %w: %w", ErrCorruptSnapshot, err)
	}
	if binary.LittleEndian.Uint32(tail[:]) != sum {
		return 0, nil, fmt.Errorf("qcluster: snapshot checksum mismatch: %w", ErrCorruptSnapshot)
	}
	return dim, flat, nil
}

// RestoreDatabase rebuilds a Database from a Snapshot image. The index
// is bulk-loaded, so searches over the restored database are
// bit-identical to searches over the database that wrote the snapshot
// (results order ties deterministically on (dist, id)).
func RestoreDatabase(r io.Reader, opt IndexOptions) (_ *Database, err error) {
	defer barrier("RestoreDatabase", &err)
	dim, flat, err := readSnapshot(r)
	if err != nil {
		return nil, err
	}
	return newDatabaseFlat(flat, dim, opt)
}

// newDatabaseFlat builds a Database around an already-contiguous
// component block (retained, not copied).
func newDatabaseFlat(flat []float64, dim int, opt IndexOptions) (*Database, error) {
	store, err := index.NewStoreFlat(flat, dim)
	if err != nil {
		return nil, fmt.Errorf("qcluster: %w", err)
	}
	return newDatabaseFromStore(store, opt)
}

// writeSnapshotFile writes a snapshot image crash-safely: encode to
// path.tmp, fsync the file, rename over path, fsync the directory. A
// crash at any point leaves either the old complete file or the new
// complete file — never a half-written one. The faultinject
// SnapshotMidRename point fires between the fsync and the rename (the
// widest window a crash can hit).
func writeSnapshotFile(path string, dim int, flat []float64) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("qcluster: snapshot temp: %w", err)
	}
	if err := writeSnapshot(f, dim, flat); err != nil {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp)
		return fmt.Errorf("qcluster: snapshot fsync: %w", err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("qcluster: snapshot close: %w", err)
	}
	faultinject.Fire(faultinject.SnapshotMidRename)
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return fmt.Errorf("qcluster: snapshot rename: %w", err)
	}
	return syncDir(path)
}

// syncDir fsyncs the directory containing path, making a preceding
// rename durable.
func syncDir(path string) error {
	dir, err := os.Open(filepath.Dir(path))
	if err != nil {
		return fmt.Errorf("qcluster: open dir for fsync: %w", err)
	}
	defer dir.Close()
	if err := dir.Sync(); err != nil {
		return fmt.Errorf("qcluster: dir fsync: %w", err)
	}
	return nil
}

// loadSnapshotFile reads a snapshot image from path. A missing file
// returns (0, nil, nil).
func loadSnapshotFile(path string) (int, []float64, error) {
	f, err := os.Open(path)
	if os.IsNotExist(err) {
		return 0, nil, nil
	}
	if err != nil {
		return 0, nil, fmt.Errorf("qcluster: open snapshot: %w", err)
	}
	defer f.Close()
	return readSnapshot(f)
}
