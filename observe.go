package qcluster

import (
	"log/slog"
	"time"

	"repro/internal/index"
	"repro/internal/obs"
	"repro/internal/plan"
)

// This file is the public observability surface: trace sinks (Sink,
// NewSlogSink, MemorySink), metric snapshots (Database.Metrics,
// Session.Stats) and the debug HTTP endpoint (Database.ServeDebug).
// The types are aliases of the internal obs package so the whole repo
// shares one implementation.

// Sink receives structured trace events from the retrieval pipeline.
// Attach one via Options.Sink (or Query.SetSink); nil disables tracing
// and the hot path pays only a nil check — no allocation, no work.
// Implementations must be safe for concurrent use.
type Sink = obs.Sink

// TraceEvent is one structured trace event (span name, event name,
// time, fields).
type TraceEvent = obs.Event

// TraceField is one key/value attribute on a TraceEvent.
type TraceField = obs.Field

// MemorySink is a Sink collecting events in memory — for tests,
// debugging and offline analysis. The zero value is ready to use.
type MemorySink = obs.MemorySink

// NewSlogSink returns a Sink that forwards trace events to a log/slog
// logger as structured records (nil logger = slog.Default()).
func NewSlogSink(l *slog.Logger) Sink { return obs.NewSlogSink(l) }

// SlowEntry is one slow request frozen in the serving layer's
// slow-query ring — the JSON document /debug/slow serves, one entry
// per request: trace/span ids, stage timings, index-work stats and the
// per-shard scatter legs.
type SlowEntry = obs.SlowEntry

// SlowShard is one shard's scatter leg of a SlowEntry.
type SlowShard = obs.SlowShard

// StageNames returns the canonical request-stage names of a cost
// profile in pipeline order: queue, lock, search, merge, feedback,
// encode, resplit — the keys of SlowEntry.StageMS.
func StageNames() []string { return obs.StageNames[:] }

// MetricsSnapshot is a point-in-time copy of a metrics registry:
// counters, gauges and histogram snapshots keyed by dotted metric name
// (e.g. "search.latency_seconds").
type MetricsSnapshot = obs.Snapshot

// HistogramSnapshot is a point-in-time copy of one fixed-bucket
// histogram, with Mean and Quantile estimators.
type HistogramSnapshot = obs.HistogramSnapshot

// DebugServer is the HTTP server started by Database.ServeDebug. Close
// shuts it down gracefully without leaking its goroutine.
type DebugServer = obs.DebugServer

// Registry is a live metrics registry (alias of the internal obs
// registry): named atomic counters, gauges and histograms that can be
// snapshotted and served together. A serving layer wrapping a Database
// can merge the database's Registry with its own onto one debug
// endpoint.
type Registry = obs.Registry

// SearchStats describes the index work one search performed — the
// public mirror of the internal search statistics that every Search*
// path previously discarded.
type SearchStats struct {
	// NodesVisited counts internal + leaf nodes the best-first
	// traversal expanded.
	NodesVisited int
	// LeavesVisited counts leaves whose vectors were evaluated.
	LeavesVisited int
	// LeavesPruned counts leaves the traversal never touched
	// (LeavesTotal - LeavesVisited).
	LeavesPruned int
	// LeavesTotal is the index leaf count at search time.
	LeavesTotal int
	// DistanceEvals counts query-distance evaluations (vectors scored).
	DistanceEvals int
	// CacheSeedLeaves counts leaves replayed from the session's
	// cross-iteration refinement cache before the traversal started.
	CacheSeedLeaves int
	// Workers is the leaf-evaluation worker count the search ran with
	// (1 = sequential path).
	Workers int
	// BatchedEvals counts the distance evaluations served by the
	// bound-aware batch kernels (a subset of DistanceEvals; 0 when the
	// metric has no batch implementation).
	BatchedEvals int
	// AbandonedEvals counts batched evaluations cut short because the
	// partial sum provably exceeded the k-th-best pruning bound.
	AbandonedEvals int
	// PruneRatio is the fraction of leaves pruned: 1 -
	// LeavesVisited/LeavesTotal.
	PruneRatio float64
	// GraphHops counts HNSW graph nodes expanded (ANN backend only; 0 on
	// exact backends and on the exhaustive-sweep degenerate case).
	GraphHops int
	// RefineEvals counts candidates re-scored at full precision by the
	// ANN exact-refinement stage (a subset of DistanceEvals; 0 on exact
	// backends).
	RefineEvals int
	// PlanRoute is the execution route the cost-based planner chose
	// ("tree", "vafile", "ann"); empty when no planner ran.
	PlanRoute string
	// PlanAdaptive reports a model-driven plan (false = the static
	// fallback or no planner).
	PlanAdaptive bool
	// PlanPredictedSeconds is the planner's pre-execution latency
	// estimate for this search (0 when no warm model predicted it).
	PlanPredictedSeconds float64
}

func searchStatsFromIndex(s index.SearchStats) SearchStats {
	pruned := s.LeavesTotal - s.LeavesVisited
	if pruned < 0 {
		pruned = 0
	}
	return SearchStats{
		NodesVisited:    s.NodesVisited,
		LeavesVisited:   s.LeavesVisited,
		LeavesPruned:    pruned,
		LeavesTotal:     s.LeavesTotal,
		DistanceEvals:   s.DistanceEvals,
		CacheSeedLeaves: s.CacheSeedLeaves,
		Workers:         s.Workers,
		BatchedEvals:    s.BatchedEvals,
		AbandonedEvals:  s.AbandonedEvals,
		PruneRatio:      s.PruneRatio(),
		GraphHops:       s.GraphHops,
		RefineEvals:     s.RefineEvals,

		PlanRoute:            s.PlanRoute,
		PlanAdaptive:         s.PlanAdaptive,
		PlanPredictedSeconds: s.PlanPredictedSeconds,
	}
}

// SessionStats is a Session's observability snapshot: cumulative search
// and feedback counters, latency and prune-ratio histograms, and the
// index work of the most recent search.
type SessionStats struct {
	// Searches counts retrievals the session ran (Results and
	// ResultsContext, both the example and the refined query path).
	Searches int64
	// PartialSearches counts retrievals interrupted by context
	// cancellation (results returned with ErrPartialResults).
	PartialSearches int64
	// DegradedSearches counts retrievals whose metric construction
	// needed a covariance fallback (see Health).
	DegradedSearches int64
	// FeedbackRounds counts MarkRelevant calls that absorbed at least
	// one new point.
	FeedbackRounds int64
	// FeedbackPoints counts relevance-marked points absorbed.
	FeedbackPoints int64
	// QueryPoints is the current number of cluster representatives m.
	QueryPoints int
	// LastSearch is the index work of the most recent retrieval.
	LastSearch SearchStats
	// SearchLatencySeconds is the retrieval wall-clock histogram.
	SearchLatencySeconds HistogramSnapshot
	// PruneRatio is the per-search leaf prune-ratio histogram.
	PruneRatio HistogramSnapshot
	// LeavesVisited, LeavesPruned, DistanceEvals and CacheSeedLeaves
	// accumulate the index work across all of the session's searches.
	LeavesVisited   int64
	LeavesPruned    int64
	DistanceEvals   int64
	CacheSeedLeaves int64
}

// CostWindowSpan is the trailing horizon of the rolling cost
// estimators: recent enough that a feedback-driven workload shift (m
// growing, prune ratio collapsing) shows up within a minute, long
// enough to smooth individual queries.
const CostWindowSpan = 60 * time.Second

// CostSignals is the live per-query cost estimate substrate: rolling
// windowed (not lifetime-cumulative) distributions of the signals a
// cost-based planner and admission control consume. Each field is a
// histogram snapshot over roughly the trailing CostWindowSpan.
type CostSignals struct {
	// PruneRatio is the recent distribution of per-search leaf prune
	// ratios (only searches that saw a non-empty index contribute).
	PruneRatio HistogramSnapshot
	// AbandonRate is the recent distribution of per-search batched-eval
	// abandonment rates (only searches that ran batch kernels
	// contribute).
	AbandonRate HistogramSnapshot
	// LeavesVisited is the recent distribution of leaves evaluated per
	// search.
	LeavesVisited HistogramSnapshot
	// SearchSeconds is the recent distribution of search wall-clock.
	SearchSeconds HistogramSnapshot
}

// EstimatedSeconds is the headline per-query cost estimate: the
// windowed mean search wall-clock (0 when the window is empty — e.g. an
// idle or freshly started process).
func (c CostSignals) EstimatedSeconds() float64 { return c.SearchSeconds.Mean() }

// dbMetrics holds the database's registry plus cached handles for every
// metric the search hot path touches — the handles make recording a
// search a fixed set of atomic operations with no map lookups, no
// locks and no allocation.
type dbMetrics struct {
	reg *obs.Registry

	searches      *obs.Counter
	searchErrors  *obs.Counter
	partial       *obs.Counter
	notReady      *obs.Counter
	dimMismatch   *obs.Counter
	degraded      *obs.Counter
	latency       *obs.Histogram
	resultCounts  *obs.Histogram
	kRequested    *obs.Histogram
	nodesVisited  *obs.Counter
	leavesVisited *obs.Counter
	leavesPruned  *obs.Counter
	distanceEvals *obs.Counter
	batchedEvals  *obs.Counter
	abandonEvals  *obs.Counter
	cacheSeeds    *obs.Counter
	pruneRatio    *obs.Histogram
	graphHops     *obs.Counter
	refineEvals   *obs.Counter
	adds          *obs.Counter
	items         *obs.Gauge
	resplits      *obs.Counter
	resplitNS     *obs.Counter
	resplitQueue  *obs.Gauge
	feedbackRnds  *obs.Counter
	feedbackPts   *obs.Counter

	// Rolling windowed estimators (see CostSignals). Snapshot alongside
	// the cumulative histograms under their "cost.window." names.
	wPrune   *obs.Window
	wAbandon *obs.Window
	wLeaves  *obs.Window
	wSearch  *obs.Window

	// Cost-based planner decisions ("plan.*"): route counters, fallback
	// and probe counts, and the predicted-vs-actual error windows.
	planDecisions *obs.Counter
	planStatic    *obs.Counter
	planProbes    *obs.Counter
	planTree      *obs.Counter
	planVAFile    *obs.Counter
	planANN       *obs.Counter
	planParallel  *obs.Counter
	wPlanPredict  *obs.Window
	wPlanAbsErr   *obs.Window
	wPlanErrRatio *obs.Window
}

func newDBMetrics() *dbMetrics {
	reg := obs.NewRegistry()
	return &dbMetrics{
		reg:           reg,
		searches:      reg.Counter("search.total"),
		searchErrors:  reg.Counter("search.errors"),
		partial:       reg.Counter("search.partial"),
		notReady:      reg.Counter("search.not_ready"),
		dimMismatch:   reg.Counter("search.dimension_mismatch"),
		degraded:      reg.Counter("search.degraded"),
		latency:       reg.Histogram("search.latency_seconds", obs.LatencyBuckets()),
		resultCounts:  reg.Histogram("search.results", obs.SizeBuckets()),
		kRequested:    reg.Histogram("search.k", obs.SizeBuckets()),
		nodesVisited:  reg.Counter("index.nodes_visited"),
		leavesVisited: reg.Counter("index.leaves_visited"),
		leavesPruned:  reg.Counter("index.leaves_pruned"),
		distanceEvals: reg.Counter("index.distance_evals"),
		batchedEvals:  reg.Counter("index.batched_evals"),
		abandonEvals:  reg.Counter("index.abandoned_evals"),
		cacheSeeds:    reg.Counter("index.cache_seed_leaves"),
		pruneRatio:    reg.Histogram("index.prune_ratio", obs.RatioBuckets()),
		graphHops:     reg.Counter("index.graph_hops"),
		refineEvals:   reg.Counter("index.refine_evals"),
		adds:          reg.Counter("db.adds"),
		items:         reg.Gauge("db.items"),
		resplits:      reg.Counter("index.resplits"),
		resplitNS:     reg.Counter("search.resplit_ns"),
		resplitQueue:  reg.Gauge("index.resplit_pending"),
		feedbackRnds:  reg.Counter("feedback.rounds"),
		feedbackPts:   reg.Counter("feedback.points"),
		wPrune:        reg.Window("cost.window.prune_ratio", obs.RatioBuckets(), CostWindowSpan),
		wAbandon:      reg.Window("cost.window.abandon_rate", obs.RatioBuckets(), CostWindowSpan),
		wLeaves:       reg.Window("cost.window.leaves_visited", obs.SizeBuckets(), CostWindowSpan),
		wSearch:       reg.Window("cost.window.search_seconds", obs.LatencyBuckets(), CostWindowSpan),
		planDecisions: reg.Counter("plan.decisions"),
		planStatic:    reg.Counter("plan.static_fallback"),
		planProbes:    reg.Counter("plan.probes"),
		planTree:      reg.Counter("plan.route.tree"),
		planVAFile:    reg.Counter("plan.route.vafile"),
		planANN:       reg.Counter("plan.route.ann"),
		planParallel:  reg.Counter("plan.parallel_searches"),
		wPlanPredict:  reg.Window("plan.window.predicted_seconds", obs.LatencyBuckets(), CostWindowSpan),
		wPlanAbsErr:   reg.Window("plan.window.abs_error_seconds", obs.LatencyBuckets(), CostWindowSpan),
		wPlanErrRatio: reg.Window("plan.window.error_ratio", obs.RatioBuckets(), CostWindowSpan),
	}
}

// observePlan records one planner decision and, when a warm model made
// a prediction, its predicted-vs-actual error. Allocation-free.
func (m *dbMetrics) observePlan(d plan.Decision, elapsed time.Duration) {
	m.planDecisions.Inc()
	switch d.Route {
	case plan.RouteTree:
		m.planTree.Inc()
	case plan.RouteVAFile:
		m.planVAFile.Inc()
	case plan.RouteANN:
		m.planANN.Inc()
	}
	if d.Probe {
		m.planProbes.Inc()
	} else if !d.Adaptive {
		m.planStatic.Inc()
	}
	if d.Workers > 1 {
		m.planParallel.Inc()
	}
	if d.PredictedSeconds > 0 {
		m.wPlanPredict.Observe(d.PredictedSeconds)
		actual := elapsed.Seconds()
		err := d.PredictedSeconds - actual
		if err < 0 {
			err = -err
		}
		m.wPlanAbsErr.Observe(err)
		if actual > 0 {
			m.wPlanErrRatio.Observe(err / actual)
		}
	}
}

// observeSearch records one finished retrieval. It is allocation-free:
// every write is an atomic add on a pre-resolved handle.
func (m *dbMetrics) observeSearch(elapsed time.Duration, k, results int, stats index.SearchStats, partial bool) {
	m.searches.Inc()
	m.latency.Observe(elapsed.Seconds())
	m.kRequested.Observe(float64(k))
	m.resultCounts.Observe(float64(results))
	m.nodesVisited.Add(int64(stats.NodesVisited))
	m.leavesVisited.Add(int64(stats.LeavesVisited))
	if pruned := stats.LeavesTotal - stats.LeavesVisited; pruned > 0 {
		m.leavesPruned.Add(int64(pruned))
	}
	m.distanceEvals.Add(int64(stats.DistanceEvals))
	m.batchedEvals.Add(int64(stats.BatchedEvals))
	m.abandonEvals.Add(int64(stats.AbandonedEvals))
	m.cacheSeeds.Add(int64(stats.CacheSeedLeaves))
	m.graphHops.Add(int64(stats.GraphHops))
	m.refineEvals.Add(int64(stats.RefineEvals))
	if stats.LeavesTotal > 0 {
		m.pruneRatio.Observe(stats.PruneRatio())
		m.wPrune.Observe(stats.PruneRatio())
	}
	if partial {
		m.partial.Inc()
	}
	m.wSearch.Observe(elapsed.Seconds())
	m.wLeaves.Observe(float64(stats.LeavesVisited))
	if stats.BatchedEvals > 0 {
		m.wAbandon.Observe(float64(stats.AbandonedEvals) / float64(stats.BatchedEvals))
	}
}

// observeInsert records the index-maintenance side of one insert:
// inline leaf re-splits drained (count + write-lock nanoseconds under
// "search.resplit_ns", since that time is what searches queue behind)
// and the current deferred-leaf backlog.
func (m *dbMetrics) observeInsert(st index.InsertStats) {
	if st.Resplits > 0 {
		m.resplits.Add(int64(st.Resplits))
		m.resplitNS.Add(st.ResplitTime.Nanoseconds())
	}
	m.resplitQueue.Set(float64(st.Deferred))
}

// Metrics returns a point-in-time snapshot of the database's metrics
// registry: search totals and outcome counters ("search.total",
// "search.partial", "search.degraded", ...), latency and size
// histograms ("search.latency_seconds", "search.results", "search.k"),
// index-work counters ("index.leaves_visited", "index.leaves_pruned",
// "index.distance_evals", "index.batched_evals",
// "index.abandoned_evals", "index.cache_seed_leaves",
// "index.prune_ratio", plus "index.graph_hops" and
// "index.refine_evals" on the ANN backend), insert-maintenance
// counters ("index.resplits", "search.resplit_ns",
// "index.resplit_pending") and feedback counters ("feedback.rounds",
// "feedback.points"). Safe to call at any time, including while
// searches are running.
func (db *Database) Metrics() MetricsSnapshot { return db.met.reg.Snapshot() }

// ServeDebug starts an HTTP debug server for this database's metrics on
// addr (e.g. "localhost:6060"; ":0" picks a free port — read it back
// from DebugServer.Addr). Endpoints: /debug/vars (expvar-style JSON),
// /metrics (Prometheus text format) and /debug/pprof/ (the standard
// pprof handlers). The caller owns the returned server and must Close
// it; Close waits for the serve goroutine, so none is leaked.
func (db *Database) ServeDebug(addr string) (*DebugServer, error) {
	return obs.ServeDebug(addr, db.met.reg)
}

// Registry returns the database's live metrics registry. Handles
// resolved from it stay valid for the database's lifetime; callers that
// serve it (or merge it with their own registries onto one ops
// endpoint) observe the same counters Metrics snapshots.
func (db *Database) Registry() *Registry { return db.met.reg }

// CostSignals returns the database's rolling windowed cost estimators —
// the read-only hook admission control and a cost-based planner consume.
// Safe to call at any time; each snapshot covers roughly the trailing
// CostWindowSpan.
func (db *Database) CostSignals() CostSignals {
	return CostSignals{
		PruneRatio:    db.met.wPrune.Snapshot(),
		AbandonRate:   db.met.wAbandon.Snapshot(),
		LeavesVisited: db.met.wLeaves.Snapshot(),
		SearchSeconds: db.met.wSearch.Snapshot(),
	}
}

// costStatsFromIndex converts the index layer's per-search statistics
// into the obs layer's dependency-free CostStats for request profiles.
func costStatsFromIndex(s index.SearchStats) obs.CostStats {
	return obs.CostStats{
		NodesVisited:    s.NodesVisited,
		LeavesVisited:   s.LeavesVisited,
		LeavesTotal:     s.LeavesTotal,
		DistanceEvals:   s.DistanceEvals,
		BatchedEvals:    s.BatchedEvals,
		AbandonedEvals:  s.AbandonedEvals,
		CacheSeedLeaves: s.CacheSeedLeaves,
		GraphHops:       s.GraphHops,
		RefineEvals:     s.RefineEvals,
		PlanRoute:       s.PlanRoute,
		PlanAdaptive:    s.PlanAdaptive,
		PlanPredictedMS: s.PlanPredictedSeconds * 1e3,
	}
}

// sessionMetrics is the per-session slice of the instrumentation: the
// same allocation-free primitives, owned by one Session.
type sessionMetrics struct {
	searches   obs.Counter
	partial    obs.Counter
	degraded   obs.Counter
	rounds     obs.Counter
	points     obs.Counter
	leavesVis  obs.Counter
	leavesPrn  obs.Counter
	distEvals  obs.Counter
	cacheSeeds obs.Counter
	latency    *obs.Histogram
	prune      *obs.Histogram
}

func newSessionMetrics() *sessionMetrics {
	return &sessionMetrics{
		latency: obs.NewHistogram(obs.LatencyBuckets()),
		prune:   obs.NewHistogram(obs.RatioBuckets()),
	}
}

// observeSearch records one session retrieval (allocation-free).
func (m *sessionMetrics) observeSearch(elapsed time.Duration, stats index.SearchStats, partial bool) {
	m.searches.Inc()
	m.latency.Observe(elapsed.Seconds())
	m.leavesVis.Add(int64(stats.LeavesVisited))
	if pruned := stats.LeavesTotal - stats.LeavesVisited; pruned > 0 {
		m.leavesPrn.Add(int64(pruned))
	}
	m.distEvals.Add(int64(stats.DistanceEvals))
	m.cacheSeeds.Add(int64(stats.CacheSeedLeaves))
	if stats.LeavesTotal > 0 {
		m.prune.Observe(stats.PruneRatio())
	}
	if partial {
		m.partial.Inc()
	}
}

// Stats returns the session's observability snapshot: cumulative
// counters, the search-latency and leaf-prune-ratio histograms, and the
// index work of the most recent retrieval. Safe to call concurrently
// with searches and feedback.
func (s *Session) Stats() SessionStats {
	s.mu.Lock()
	last := s.lastStats
	s.mu.Unlock()
	return SessionStats{
		Searches:             s.met.searches.Value(),
		PartialSearches:      s.met.partial.Value(),
		DegradedSearches:     s.met.degraded.Value(),
		FeedbackRounds:       s.met.rounds.Value(),
		FeedbackPoints:       s.met.points.Value(),
		QueryPoints:          s.query.NumQueryPoints(),
		LastSearch:           searchStatsFromIndex(last),
		SearchLatencySeconds: s.met.latency.Snapshot(),
		PruneRatio:           s.met.prune.Snapshot(),
		LeavesVisited:        s.met.leavesVis.Value(),
		LeavesPruned:         s.met.leavesPrn.Value(),
		DistanceEvals:        s.met.distEvals.Value(),
		CacheSeedLeaves:      s.met.cacheSeeds.Value(),
	}
}
