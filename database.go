package qcluster

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/ann"
	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/plan"
)

// Result is one retrieval answer.
type Result struct {
	// ID is the database index of the item.
	ID int
	// Dist is its distance under the query's current distance function.
	Dist float64
}

// Database is an indexed feature-vector collection. Searches run on a
// hybrid-tree-style index with best-first pruning; arbitrary query
// distance functions (single-point, disjunctive multipoint) are
// supported through lower-boundable metrics.
//
// A Database is safe for concurrent use: Add takes a write lock while
// searches share a read lock, and the index keeps an epoch counter so
// per-session refinement caches taken before an Add are discarded rather
// than reused against a re-split tree.
type Database struct {
	mu    sync.RWMutex
	store *index.Store
	tree  *index.HybridTree
	met   *dbMetrics // always non-nil; see Metrics and ServeDebug

	// backend selects the statically configured k-NN execution path; the
	// auxiliary indexes below are non-nil when their backend is active
	// or when the adaptive planner keeps them as alternate routes. The
	// tree is always built regardless — it is the substrate of
	// durability snapshots and session refinement caches.
	backend IndexBackend
	annIdx  *ann.Index
	va      *index.VAFile

	// planner is the cost-based adaptive query planner (nil unless
	// IndexOptions.Plan.Adaptive); allowApprox marks exact entry points
	// eligible for the ANN route (PlanOptions.AllowApprox opt-in, or an
	// "ann" static backend, where approximation is already the caller's
	// explicit choice).
	planner     *plan.Planner
	allowApprox bool
}

// IndexOptions tunes the database's search index. The zero value is the
// default configuration.
type IndexOptions struct {
	// NodeSizeBytes models the index node size (leaf capacity =
	// NodeSizeBytes / (8 × dim)). Defaults to 4096.
	NodeSizeBytes int
	// SearchParallelism is the worker count for the parallel k-NN leaf
	// stage: 0 uses GOMAXPROCS, 1 forces sequential search. Searches on
	// small collections (below SearchParallelMinItems) stay sequential
	// regardless.
	SearchParallelism int
	// SearchParallelMinItems is the smallest collection for which the
	// parallel leaf stage engages: 0 uses the default (8192), negative
	// removes the threshold. The adaptive planner overrides this per
	// query once its models are warm.
	SearchParallelMinItems int
	// Backend selects the k-NN execution path: BackendTree (default,
	// exact), BackendVAFile (exact filter-and-refine) or BackendANN
	// (approximate graph navigation + exact refinement).
	Backend IndexBackend
	// ANN tunes the BackendANN graph (ignored by the other backends).
	ANN ANNOptions
	// MaxResplitsPerBatch caps inline leaf re-splits per insert batch
	// (0 = default 8, negative = unlimited). See index.InsertStats.
	MaxResplitsPerBatch int
	// Plan configures the cost-based adaptive query planner.
	Plan PlanOptions
}

// PlanOptions configures the cost-based adaptive query planner (see
// internal/plan): per-query choice of execution route (tree vs VA-file
// vs ANN), parallel leaf fan-out, and metric batch size, driven by
// rolling cost models fitted from the live SearchStats stream.
type PlanOptions struct {
	// Adaptive enables the planner. Enabling it also builds the exact
	// VA-file mirror when it is not already the configured backend, so
	// the tree ↔ VA-file choice always exists; both routes are exact
	// and bit-identical, so adaptive routing never changes results.
	// While the planner's windows are cold it executes exactly the
	// static configuration.
	Adaptive bool
	// AllowApprox additionally lets the planner route exact entry
	// points (Search, SearchByExample, session Results) to the ANN
	// graph when one exists and the models predict it cheaper. Off by
	// default: without this opt-in, exact entry points only ever run
	// exact routes, and the ANN path stays behind SearchApprox*.
	AllowApprox bool
	// MinObservations is the per-model warm-up: a cost model only
	// predicts once its rolling window holds this many live
	// observations. 0 uses the default (8).
	MinObservations int
	// MaxWorkers caps planner-chosen parallelism. 0 caps at the
	// resolved SearchParallelism — by default the planner only ever
	// turns fan-out off, never above the configured level.
	MaxWorkers int
	// ProbeEvery routes every n-th query down a not-yet-warmed
	// alternate route so its model can start predicting (exact routes
	// only, unless the query tolerates approximation). 0 uses the
	// default (16); negative disables probing.
	ProbeEvery int
}

// NewDatabase indexes the given vectors with default index options. All
// vectors must share one dimensionality and be finite. The vectors are
// copied into one contiguous block; the input slices are not retained.
func NewDatabase(vectors [][]float64) (*Database, error) {
	return NewDatabaseWithOptions(vectors, IndexOptions{})
}

// NewDatabaseWithOptions is NewDatabase with explicit index tuning.
func NewDatabaseWithOptions(vectors [][]float64, opt IndexOptions) (_ *Database, err error) {
	defer barrier("NewDatabase", &err)
	vecs := make([]linalg.Vector, len(vectors))
	for i, v := range vectors {
		vecs[i] = linalg.Vector(v)
	}
	store, err := index.NewStore(vecs)
	if err != nil {
		return nil, fmt.Errorf("qcluster: %w", err)
	}
	return newDatabaseFromStore(store, opt)
}

// newDatabaseFromStore finishes construction over a populated store:
// the hybrid tree, the selected backend's auxiliary index, metrics.
func newDatabaseFromStore(store *index.Store, opt IndexOptions) (*Database, error) {
	backend, err := opt.Backend.normalize()
	if err != nil {
		return nil, err
	}
	db := &Database{
		store: store,
		tree: index.NewHybridTree(store, index.TreeOptions{
			NodeSizeBytes:       opt.NodeSizeBytes,
			Parallelism:         opt.SearchParallelism,
			ParallelMinItems:    opt.SearchParallelMinItems,
			MaxResplitsPerBatch: opt.MaxResplitsPerBatch,
		}),
		met:     newDBMetrics(),
		backend: backend,
	}
	if err := db.buildBackend(opt); err != nil {
		return nil, err
	}
	if opt.Plan.Adaptive {
		if db.va == nil {
			// The VA-file mirror is cheap (4 bits/dim) and exact, so the
			// planner always has the tree ↔ VA-file choice.
			db.va = index.NewVAFile(db.store, index.VAFileOptions{})
		}
		db.allowApprox = opt.Plan.AllowApprox || backend == BackendANN
		routes := []plan.Route{plan.RouteTree, plan.RouteVAFile}
		if db.annIdx != nil {
			routes = append(routes, plan.RouteANN)
		}
		db.planner = plan.New(plan.Config{
			Static:          plan.Route(backend),
			StaticWorkers:   db.tree.Parallelism(),
			Routes:          routes,
			MaxWorkers:      opt.Plan.MaxWorkers,
			MinObservations: opt.Plan.MinObservations,
			ProbeEvery:      opt.Plan.ProbeEvery,
			WindowSpan:      CostWindowSpan,
		})
	}
	db.met.items.Set(float64(store.Len()))
	return db, nil
}

// Add appends a new item to the database and the index, returning its
// id. It is safe to call concurrently with Search and other Add calls:
// the database serializes the mutation internally against all readers.
func (db *Database) Add(vector []float64) (id int, err error) {
	defer barrier("Add", &err)
	if err := db.checkQuantizable(0, vector); err != nil {
		return 0, err
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	id, err = db.store.Append(linalg.Vector(vector))
	if err != nil {
		return 0, fmt.Errorf("qcluster: %w", err)
	}
	ist := db.tree.Insert(id)
	if err := db.syncBackendLocked([]int{id}); err != nil {
		// Unreachable after checkQuantizable; a failure here would leave
		// the graph behind the store, so surface it loudly.
		panic(err)
	}
	db.met.observeInsert(ist)
	db.met.adds.Inc()
	db.met.items.Set(float64(db.store.Len()))
	return id, nil
}

// AddBatch appends a batch of items under one write lock and one index
// epoch bump, returning their ids in input order. Compared with looping
// over Add, a batch takes the store lock once (readers see either none
// or all of the batch) and invalidates per-session refinement caches
// once instead of per vector. The whole batch is validated up front:
// on error (dimension mismatch, non-finite component) nothing is
// applied. An empty batch is a no-op.
func (db *Database) AddBatch(vectors [][]float64) (ids []int, err error) {
	defer barrier("AddBatch", &err)
	return db.addBatch(context.Background(), vectors)
}

func (db *Database) addBatch(ctx context.Context, vectors [][]float64) (ids []int, err error) {
	if len(vectors) == 0 {
		return nil, nil
	}
	dim := db.Dim()
	for i, v := range vectors {
		if len(v) != dim {
			return nil, fmt.Errorf("qcluster: batch vector %d has dimension %d, database has %d: %w",
				i, len(v), dim, ErrDimensionMismatch)
		}
		for d, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("qcluster: batch vector %d component %d is not finite (%v)", i, d, x)
			}
		}
		if err := db.checkQuantizable(i, v); err != nil {
			return nil, err
		}
	}
	db.mu.Lock()
	defer db.mu.Unlock()
	ids = make([]int, len(vectors))
	for i, v := range vectors {
		id, aerr := db.store.Append(linalg.Vector(v))
		if aerr != nil {
			// Unreachable after the pre-validation above; a failure here
			// would leave a partial batch, so surface it loudly.
			panic(fmt.Sprintf("qcluster: batch append %d failed after validation: %v", i, aerr))
		}
		ids[i] = id
	}
	resplitStart := time.Now()
	ist := db.tree.InsertBatch(ids)
	if err := db.syncBackendLocked(ids); err != nil {
		panic(err) // unreachable after checkQuantizable, see Add
	}
	db.met.observeInsert(ist)
	if ist.ResplitTime > 0 {
		// The re-split work becomes its own child span on the request
		// trace, so an ingest stalled behind index maintenance is
		// visible per request, not only in the aggregate counter.
		obs.ProfileFromContext(ctx).StageAt(obs.StageResplit, resplitStart, ist.ResplitTime)
	}
	db.met.adds.Add(int64(len(ids)))
	db.met.items.Set(float64(db.store.Len()))
	return ids, nil
}

// AddBatchContext is AddBatch with an up-front cancellation check — the
// form the serving layer's ingest path calls. The batch itself is not
// interruptible (it holds the write lock briefly); on a DurableDatabase
// the context also bounds the wait for the group-commit fsync. Deferred
// leaf re-splits the batch drains are attributed to the request's cost
// profile as a "resplit" stage.
func (db *Database) AddBatchContext(ctx context.Context, vectors [][]float64) (_ []int, err error) {
	defer barrier("AddBatchContext", &err)
	if cerr := ctx.Err(); cerr != nil {
		return nil, fmt.Errorf("qcluster: add not started: %w", cerr)
	}
	return db.addBatch(ctx, vectors)
}

// Len returns the number of items.
func (db *Database) Len() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.Len()
}

// Dim returns the feature dimensionality.
func (db *Database) Dim() int {
	db.mu.RLock()
	defer db.mu.RUnlock()
	return db.store.Dim()
}

// Vector returns item id's feature vector (read-only). An out-of-range
// id returns nil — it used to panic, which let a single bad request
// crash a serving process; use VectorOK to distinguish a missing id
// from a (never-valid) nil vector.
func (db *Database) Vector(id int) []float64 {
	v, _ := db.VectorOK(id)
	return v
}

// VectorOK returns item id's feature vector (read-only) and whether the
// id is in range.
func (db *Database) VectorOK(id int) ([]float64, bool) {
	db.mu.RLock()
	defer db.mu.RUnlock()
	if id < 0 || id >= db.store.Len() {
		return nil, false
	}
	return db.store.Vector(id), true
}

// SearchByExample answers a plain k-NN query around an example vector —
// the initial retrieval of a feedback session. An example whose
// dimensionality does not match the database's yields nil (use
// SearchByExampleContext for a typed ErrDimensionMismatch).
func (db *Database) SearchByExample(example []float64, k int) []Result {
	if len(example) != db.Dim() {
		db.met.dimMismatch.Inc()
		return nil
	}
	m := &distance.Euclidean{Center: linalg.Vector(example)}
	start := time.Now()
	res, stats, _ := db.knnBackend(context.Background(), m, k, nil, nil)
	db.met.observeSearch(time.Since(start), k, len(res), stats, false)
	return convertResults(res)
}

// SearchByExampleContext is SearchByExample with cooperative
// cancellation and a panic barrier. An already-expired context returns
// promptly with its (wrapped) error and no results; a context that
// expires mid-search returns the best-effort results found so far along
// with an error matching both ErrPartialResults and the context error.
func (db *Database) SearchByExampleContext(ctx context.Context, example []float64, k int) (_ []Result, err error) {
	defer barrier("SearchByExampleContext", &err)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qcluster: search not started: %w", err)
	}
	if len(example) != db.Dim() {
		db.met.dimMismatch.Inc()
		return nil, fmt.Errorf("qcluster: example has dimension %d, database has %d: %w",
			len(example), db.Dim(), ErrDimensionMismatch)
	}
	m := &distance.Euclidean{Center: linalg.Vector(example)}
	start := time.Now()
	res, stats, cerr := db.knnBackend(ctx, m, k, nil, nil)
	elapsed := time.Since(start)
	db.met.observeSearch(elapsed, k, len(res), stats, cerr != nil)
	obs.ProfileFromContext(ctx).AddSearch(start, elapsed, costStatsFromIndex(stats))
	return convertResults(res), wrapInterrupt(cerr, len(res))
}

// Search answers a k-NN query under the query model's aggregate
// disjunctive distance. A query that has absorbed no feedback yet (not
// Ready) has no distance function to search with; Search returns nil
// for it rather than panicking — use SearchContext for the typed
// ErrNotReady, or SearchByExample for the initial retrieval.
func (db *Database) Search(q *Query, k int) []Result {
	if !q.Ready() {
		db.met.notReady.Inc()
		return nil
	}
	m := q.metric()
	if q.Health().Degraded() {
		db.met.degraded.Inc()
	}
	start := time.Now()
	res, stats, _ := db.knnBackend(context.Background(), m, k, nil, nil)
	db.met.observeSearch(time.Since(start), k, len(res), stats, false)
	return convertResults(res)
}

// SearchContext is Search with cooperative cancellation and a panic
// barrier (see SearchByExampleContext for the context semantics). A
// query without feedback returns ErrNotReady instead of panicking, and
// covariance degradations encountered while building the metric are
// recorded on the query's Health.
func (db *Database) SearchContext(ctx context.Context, q *Query, k int) (_ []Result, err error) {
	defer barrier("SearchContext", &err)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qcluster: search not started: %w", err)
	}
	if !q.Ready() {
		db.met.notReady.Inc()
		return nil, fmt.Errorf("qcluster: %w", ErrNotReady)
	}
	m := q.metric()
	if q.Health().Degraded() {
		db.met.degraded.Inc()
	}
	start := time.Now()
	res, stats, cerr := db.knnBackend(ctx, m, k, nil, nil)
	elapsed := time.Since(start)
	db.met.observeSearch(elapsed, k, len(res), stats, cerr != nil)
	obs.ProfileFromContext(ctx).AddSearch(start, elapsed, costStatsFromIndex(stats))
	return convertResults(res), wrapInterrupt(cerr, len(res))
}

func convertResults(rs []index.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// Session is the end-to-end feedback loop over one database: retrieve,
// mark, refine — Algorithm 1 behind a two-method API. A Session is safe
// for concurrent use; its refinement cache and query model are guarded
// internally.
type Session struct {
	mu        sync.Mutex // guards searcher and lastStats (and orders query snapshots)
	db        *Database
	query     *Query
	example   linalg.Vector
	searcher  *index.RefinementSearcher
	met       *sessionMetrics   // always non-nil; see Stats
	lastStats index.SearchStats // index work of the most recent search
	sink      Sink              // trace sink from Options (nil = disabled)
}

// NewSession starts a retrieval session from an example feature vector.
// The example must match the database's dimensionality; a mismatched
// example makes every pre-feedback retrieval return nil results
// (Results) or ErrDimensionMismatch (ResultsContext) instead of
// panicking inside the index.
func (db *Database) NewSession(example []float64, opt Options) *Session {
	return &Session{
		db:       db,
		query:    NewQuery(opt),
		example:  linalg.Vector(example).Clone(),
		searcher: index.NewRefinementSearcher(db.tree),
		met:      newSessionMetrics(),
		sink:     opt.Sink,
	}
}

// Results retrieves the current top-k. Before any feedback this is the
// plain example query; afterwards it is the refined multipoint query.
// Successive calls reuse index work from the previous iteration (the
// multipoint refinement caching of the paper's Fig. 7).
func (s *Session) Results(k int) []Result {
	res, _ := s.results(context.Background(), k)
	return res
}

// ResultsContext is Results with cooperative cancellation and a panic
// barrier (see SearchByExampleContext for the context semantics). An
// interrupted search still refreshes the session's refinement cache with
// the leaves it visited, so the next call starts warmer.
func (s *Session) ResultsContext(ctx context.Context, k int) (_ []Result, err error) {
	defer barrier("ResultsContext", &err)
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("qcluster: search not started: %w", err)
	}
	return s.results(ctx, k)
}

func (s *Session) results(ctx context.Context, k int) ([]Result, error) {
	var m distance.Metric
	refined := s.query.Ready()
	if refined {
		m = s.query.metric()
		if s.query.Health().Degraded() {
			s.met.degraded.Inc()
			s.db.met.degraded.Inc()
		}
	} else {
		if len(s.example) != s.db.Dim() {
			s.db.met.dimMismatch.Inc()
			return nil, fmt.Errorf("qcluster: session example has dimension %d, database has %d: %w",
				len(s.example), s.db.Dim(), ErrDimensionMismatch)
		}
		m = &distance.Euclidean{Center: s.example}
	}
	start := time.Now()
	s.mu.Lock()
	rs := s.searcher
	if s.db.backend != BackendTree && s.db.planner == nil {
		// Refinement caches live on the tree path only — but with the
		// adaptive planner the tree is always an eligible route, so the
		// cache stays attached and warms whenever the planner picks it.
		rs = nil
	}
	res, stats, cerr := s.db.knnBackend(ctx, m, k, nil, rs)
	s.lastStats = stats
	s.mu.Unlock()
	elapsed := time.Since(start)
	s.met.observeSearch(elapsed, stats, cerr != nil)
	s.db.met.observeSearch(elapsed, k, len(res), stats, cerr != nil)
	obs.ProfileFromContext(ctx).AddSearch(start, elapsed, costStatsFromIndex(stats))
	if s.sink != nil {
		obs.EmitEvent(s.sink, "search.done",
			obs.F("k", k), obs.F("results", len(res)),
			obs.F("refined", refined),
			obs.F("latency_ms", elapsed.Seconds()*1e3),
			obs.F("leaves_visited", stats.LeavesVisited),
			obs.F("cache_seed_leaves", stats.CacheSeedLeaves),
			obs.F("prune_ratio", stats.PruneRatio()),
			obs.F("partial", cerr != nil))
	}
	return convertResults(res), wrapInterrupt(cerr, len(res))
}

// MarkRelevant feeds the user's relevance judgement back into the query.
// It returns an error — absorbing nothing — when a positively scored
// point's dimensionality does not match the database's or its vector has
// non-finite (NaN or ±Inf) components, which would silently corrupt the
// cluster means.
func (s *Session) MarkRelevant(points []Point) (err error) {
	defer barrier("MarkRelevant", &err)
	dim := s.db.Dim()
	for i, p := range points {
		if p.Score <= 0 {
			continue
		}
		if len(p.Vec) != dim {
			return fmt.Errorf("qcluster: point %d has dimension %d, database has %d",
				i, len(p.Vec), dim)
		}
		if err := checkFinite(i, p.Vec); err != nil {
			return err
		}
	}
	rounds := s.query.Rounds()
	if err := s.query.Feedback(points); err != nil {
		return err
	}
	// Count the round only when the model absorbed something new (the
	// model skips rounds of already-seen or non-positive points).
	if s.query.Rounds() > rounds {
		s.met.rounds.Inc()
		s.db.met.feedbackRnds.Inc()
		marked := 0
		for _, p := range points {
			if p.Score > 0 {
				marked++
			}
		}
		s.met.points.Add(int64(marked))
		s.db.met.feedbackPts.Add(int64(marked))
	}
	return nil
}

// Health returns the session query's health status — the degradation
// trace of the most recent metric construction (see Health).
func (s *Session) Health() Health { return s.query.Health() }

// Query exposes the underlying query model for inspection.
func (s *Session) Query() *Query { return s.query }

// checkFinite rejects NaN and ±Inf components in feedback vectors.
func checkFinite(i int, v []float64) error {
	for d, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("qcluster: feedback point %d component %d is not finite (%v)", i, d, x)
		}
	}
	return nil
}
