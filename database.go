package qcluster

import (
	"fmt"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
)

// Result is one retrieval answer.
type Result struct {
	// ID is the database index of the item.
	ID int
	// Dist is its distance under the query's current distance function.
	Dist float64
}

// Database is an indexed, immutable feature-vector collection. Searches
// run on a hybrid-tree-style index with best-first pruning; arbitrary
// query distance functions (single-point, disjunctive multipoint) are
// supported through lower-boundable metrics.
type Database struct {
	store *index.Store
	tree  *index.HybridTree
}

// NewDatabase indexes the given vectors. All vectors must share one
// dimensionality. The slice is retained.
func NewDatabase(vectors [][]float64) (*Database, error) {
	vecs := make([]linalg.Vector, len(vectors))
	for i, v := range vectors {
		vecs[i] = linalg.Vector(v)
	}
	store, err := index.NewStore(vecs)
	if err != nil {
		return nil, fmt.Errorf("qcluster: %w", err)
	}
	return &Database{
		store: store,
		tree:  index.NewHybridTree(store, index.TreeOptions{}),
	}, nil
}

// Add appends a new item to the database and the index, returning its
// id. Concurrent Add and Search calls must be externally synchronized;
// a Database that is only searched is safe for concurrent use.
func (db *Database) Add(vector []float64) (int, error) {
	id, err := db.store.Append(linalg.Vector(vector))
	if err != nil {
		return 0, fmt.Errorf("qcluster: %w", err)
	}
	db.tree.Insert(id)
	return id, nil
}

// Len returns the number of items.
func (db *Database) Len() int { return db.store.Len() }

// Dim returns the feature dimensionality.
func (db *Database) Dim() int { return db.store.Dim() }

// Vector returns item id's feature vector (read-only).
func (db *Database) Vector(id int) []float64 { return db.store.Vector(id) }

// SearchByExample answers a plain k-NN query around an example vector —
// the initial retrieval of a feedback session.
func (db *Database) SearchByExample(example []float64, k int) []Result {
	m := &distance.Euclidean{Center: linalg.Vector(example)}
	res, _ := db.tree.KNN(m, k)
	return convertResults(res)
}

// Search answers a k-NN query under the query model's aggregate
// disjunctive distance. The query must have absorbed feedback (Ready).
func (db *Database) Search(q *Query, k int) []Result {
	res, _ := db.tree.KNN(q.model.Metric(), k)
	return convertResults(res)
}

func convertResults(rs []index.Result) []Result {
	out := make([]Result, len(rs))
	for i, r := range rs {
		out[i] = Result{ID: r.ID, Dist: r.Dist}
	}
	return out
}

// Session is the end-to-end feedback loop over one database: retrieve,
// mark, refine — Algorithm 1 behind a two-method API.
type Session struct {
	db       *Database
	query    *Query
	example  linalg.Vector
	searcher *index.RefinementSearcher
}

// NewSession starts a retrieval session from an example feature vector.
func (db *Database) NewSession(example []float64, opt Options) *Session {
	return &Session{
		db:       db,
		query:    NewQuery(opt),
		example:  linalg.Vector(example).Clone(),
		searcher: index.NewRefinementSearcher(db.tree),
	}
}

// Results retrieves the current top-k. Before any feedback this is the
// plain example query; afterwards it is the refined multipoint query.
// Successive calls reuse index work from the previous iteration (the
// multipoint refinement caching of the paper's Fig. 7).
func (s *Session) Results(k int) []Result {
	var m distance.Metric
	if s.query.Ready() {
		m = s.query.model.Metric()
	} else {
		m = &distance.Euclidean{Center: s.example}
	}
	res, _ := s.searcher.KNN(m, k)
	return convertResults(res)
}

// MarkRelevant feeds the user's relevance judgement back into the query.
// It returns an error when a point's dimensionality does not match the
// database's.
func (s *Session) MarkRelevant(points []Point) error {
	for i, p := range points {
		if p.Score > 0 && len(p.Vec) != s.db.Dim() {
			return fmt.Errorf("qcluster: point %d has dimension %d, database has %d",
				i, len(p.Vec), s.db.Dim())
		}
	}
	return s.query.Feedback(points)
}

// Query exposes the underlying query model for inspection.
func (s *Session) Query() *Query { return s.query }
