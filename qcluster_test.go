package qcluster

import (
	"bytes"
	"image"
	"image/color"
	"math/rand"
	"sync"
	"testing"
)

// buildVectors makes a clustered 3-D collection: category c occupies a
// blob; category 0 is bimodal.
func buildVectors(rng *rand.Rand) (vectors [][]float64, labels []int) {
	add := func(cat, n int, cx, cy, cz, spread float64) {
		for i := 0; i < n; i++ {
			vectors = append(vectors, []float64{
				cx + spread*rng.NormFloat64(),
				cy + spread*rng.NormFloat64(),
				cz + spread*rng.NormFloat64(),
			})
			labels = append(labels, cat)
		}
	}
	add(0, 15, 0, 0, 0, 0.4)
	add(0, 15, 4, 4, 4, 0.4)
	add(1, 30, -6, 6, 0, 0.5)
	add(2, 20, 2, 2, 2, 1.2) // clutter between the category-0 modes
	return vectors, labels
}

func TestDatabaseBasics(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	vectors, _ := buildVectors(rng)
	db, err := NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != len(vectors) || db.Dim() != 3 {
		t.Fatalf("Len=%d Dim=%d", db.Len(), db.Dim())
	}
	res := db.SearchByExample(db.Vector(0), 5)
	if len(res) != 5 {
		t.Fatalf("results = %d", len(res))
	}
	if res[0].ID != 0 || res[0].Dist != 0 {
		t.Errorf("self-query should rank itself first: %+v", res[0])
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Error("results must be ascending by distance")
		}
	}
}

func TestNewDatabaseErrors(t *testing.T) {
	if _, err := NewDatabase(nil); err == nil {
		t.Error("empty database must error")
	}
	if _, err := NewDatabase([][]float64{{1, 2}, {1}}); err == nil {
		t.Error("ragged vectors must error")
	}
}

func TestSessionFeedbackLoopFindsBothModes(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	vectors, labels := buildVectors(rng)
	db, err := NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}
	s := db.NewSession(db.Vector(0), Options{})

	recallCat0 := func(res []Result) float64 {
		hits := 0
		for _, r := range res {
			if labels[r.ID] == 0 {
				hits++
			}
		}
		return float64(hits) / 30
	}

	var lastRecall float64
	for round := 0; round < 4; round++ {
		res := s.Results(40)
		lastRecall = recallCat0(res)
		var marked []Point
		for _, r := range res {
			if labels[r.ID] == 0 {
				marked = append(marked, Point{ID: r.ID, Vec: db.Vector(r.ID), Score: 3})
			}
		}
		s.MarkRelevant(marked)
	}
	if lastRecall < 0.9 {
		t.Errorf("final recall = %v, want >= 0.9", lastRecall)
	}
	if s.Query().NumQueryPoints() < 2 {
		t.Errorf("bimodal query used %d query points", s.Query().NumQueryPoints())
	}
	if e := s.Query().ClusterQualityError(); e > 0.3 {
		t.Errorf("cluster quality error = %v", e)
	}
}

func TestQueryAPI(t *testing.T) {
	q := NewQuery(Options{Scheme: FullInverse, Alpha: 0.01, MaxQueryPoints: 3})
	if q.Ready() {
		t.Error("fresh query must not be ready")
	}
	// Ignore junk feedback.
	q.Feedback([]Point{{ID: 1, Vec: []float64{0, 0}, Score: 0}})
	if q.Ready() {
		t.Error("zero-score feedback must be ignored")
	}
	q.Feedback([]Point{
		{ID: 1, Vec: []float64{0, 0}, Score: 3},
		{ID: 2, Vec: []float64{0.1, 0}, Score: 3},
		{ID: 3, Vec: []float64{5, 5}, Score: 1},
	})
	if !q.Ready() {
		t.Fatal("query must be ready after feedback")
	}
	reps := q.Representatives()
	if len(reps) != q.NumQueryPoints() || len(reps) == 0 {
		t.Errorf("reps = %d, NumQueryPoints = %d", len(reps), q.NumQueryPoints())
	}
}

func TestSearchWithQuery(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	vectors, labels := buildVectors(rng)
	db, _ := NewDatabase(vectors)
	q := NewQuery(Options{})
	// Feed both category-0 modes directly.
	var pts []Point
	for id, l := range labels {
		if l == 0 {
			pts = append(pts, Point{ID: id, Vec: db.Vector(id), Score: 3})
		}
	}
	q.Feedback(pts)
	res := db.Search(q, 30)
	hits := 0
	for _, r := range res {
		if labels[r.ID] == 0 {
			hits++
		}
	}
	if hits < 27 {
		t.Errorf("disjunctive search found %d/30 category-0 items in top-30", hits)
	}
}

func TestFeatureHelpers(t *testing.T) {
	img := image.NewRGBA(image.Rect(0, 0, 16, 16))
	for y := 0; y < 16; y++ {
		for x := 0; x < 16; x++ {
			img.SetRGBA(x, y, color.RGBA{uint8(x * 16), 100, uint8(y * 16), 255})
		}
	}
	if f := ColorMomentsFeature(img); len(f) != 10 {
		t.Errorf("color feature dim = %d", len(f))
	}
	if f := TextureFeature(img); len(f) != 16 {
		t.Errorf("texture feature dim = %d", len(f))
	}
}

func TestSchemeMapping(t *testing.T) {
	if Diagonal.internal().String() != "diagonal" {
		t.Error("Diagonal mapping")
	}
	if FullInverse.internal().String() != "inverse" {
		t.Error("FullInverse mapping")
	}
}

func TestFeedbackValidation(t *testing.T) {
	q := NewQuery(Options{})
	// Dim conflict inside one batch.
	err := q.Feedback([]Point{
		{ID: 1, Vec: []float64{0, 0}, Score: 1},
		{ID: 2, Vec: []float64{0, 0, 0}, Score: 1},
	})
	if err == nil {
		t.Fatal("mixed-dimension batch must error")
	}
	if q.Ready() {
		t.Error("failed feedback must not mutate the model")
	}
	// Empty vector.
	if err := q.Feedback([]Point{{ID: 1, Vec: nil, Score: 1}}); err == nil {
		t.Error("empty vector must error")
	}
	// Valid batch, then a conflicting later batch.
	if err := q.Feedback([]Point{{ID: 1, Vec: []float64{0, 0}, Score: 1}}); err != nil {
		t.Fatal(err)
	}
	if err := q.Feedback([]Point{{ID: 2, Vec: []float64{1, 2, 3}, Score: 1}}); err == nil {
		t.Error("later dim conflict must error")
	}
}

func TestMarkRelevantValidation(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	vectors, _ := buildVectors(rng)
	db, _ := NewDatabase(vectors)
	s := db.NewSession(db.Vector(0), Options{})
	if err := s.MarkRelevant([]Point{{ID: 1, Vec: []float64{1}, Score: 3}}); err == nil {
		t.Error("wrong-dimension point must error")
	}
	if err := s.MarkRelevant([]Point{{ID: 1, Vec: db.Vector(1), Score: 3}}); err != nil {
		t.Errorf("valid point errored: %v", err)
	}
}

func TestQuerySaveLoad(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	vectors, labels := buildVectors(rng)
	db, _ := NewDatabase(vectors)
	q := NewQuery(Options{})
	var pts []Point
	for id, l := range labels {
		if l == 0 {
			pts = append(pts, Point{ID: id, Vec: db.Vector(id), Score: 3})
		}
	}
	if err := q.Feedback(pts); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := q.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadQuery(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumQueryPoints() != q.NumQueryPoints() {
		t.Errorf("query points %d != %d", back.NumQueryPoints(), q.NumQueryPoints())
	}
	// Restored query retrieves the same results.
	a, b := db.Search(q, 20), db.Search(back, 20)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("result %d differs after round trip", i)
		}
	}
	// Dimension validation still enforced after load.
	if err := back.Feedback([]Point{{ID: 999, Vec: []float64{1}, Score: 1}}); err == nil {
		t.Error("restored query must keep dimension validation")
	}
}

func TestDatabaseConcurrentSearch(t *testing.T) {
	// Database is immutable after construction: concurrent searches must
	// be safe and agree with the serial answer.
	rng := rand.New(rand.NewSource(6))
	vectors, _ := buildVectors(rng)
	db, _ := NewDatabase(vectors)
	want := db.SearchByExample(db.Vector(3), 10)

	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			got := db.SearchByExample(db.Vector(3), 10)
			for i := range want {
				if got[i] != want[i] {
					errs <- "concurrent search diverged"
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Fatal(e)
	}
}

func TestDatabaseAdd(t *testing.T) {
	db, _ := NewDatabase([][]float64{{0, 0}, {1, 1}})
	id, err := db.Add([]float64{0.1, 0})
	if err != nil || id != 2 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	res := db.SearchByExample([]float64{0, 0}, 2)
	if res[0].ID != 0 || res[1].ID != 2 {
		t.Errorf("added item not retrievable in order: %+v", res)
	}
	if _, err := db.Add([]float64{1}); err == nil {
		t.Error("dim mismatch must error")
	}
}
