// Benchmarks regenerating every table and figure of the paper's
// evaluation (Section 5). Each benchmark runs the corresponding
// experiment at a laptop-scale workload and attaches the headline result
// metrics via b.ReportMetric, so `go test -bench=. -benchmem` both times
// the experiment and reports the reproduced numbers. cmd/qbench runs the
// same experiments at configurable (paper) scale with full output.
package qcluster_test

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/distance"
	"repro/internal/eval"
	"repro/internal/imagegen"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/pca"
	"repro/internal/rf"
	"repro/internal/synth"
)

// benchDataset is the shared image collection for the retrieval
// benchmarks (Figs. 6-13): built once, reused by every benchmark.
var (
	benchOnce sync.Once
	benchDS   *dataset.Dataset
)

func benchDataset(b *testing.B) *dataset.Dataset {
	b.Helper()
	benchOnce.Do(func() {
		ds, err := dataset.Build(dataset.Config{
			Collection: imagegen.CollectionConfig{
				Seed: 2003, NumCategories: 24, ImagesPerCategory: 50,
				ImageSize: 24, Themes: 6, BimodalFrac: 0.4,
			},
		})
		if err != nil {
			panic(err)
		}
		benchDS = ds
	})
	return benchDS
}

func benchRetrievalConfig(ds *dataset.Dataset, f dataset.Feature) eval.RetrievalConfig {
	return eval.RetrievalConfig{
		DS: ds, Feature: f,
		NumQueries: 10, Iterations: 5, K: 50, Seed: 7, UseIndex: true,
	}
}

// BenchmarkFig5DisjunctiveCube reproduces Example 3 / Fig. 5: the
// aggregate disjunctive distance over 10,000 uniform cube points.
// Reported: points within 1.0 of either corner and the share retrieved
// around each corner.
func BenchmarkFig5DisjunctiveCube(b *testing.B) {
	var res eval.Example3Result
	for i := 0; i < b.N; i++ {
		res = eval.RunExample3(42)
	}
	b.ReportMetric(float64(res.WithinRadius), "points-within")
	b.ReportMetric(float64(res.PerCenter[0]), "corner-lo")
	b.ReportMetric(float64(res.PerCenter[1]), "corner-hi")
}

// BenchmarkFig6Scheme times the full Qcluster retrieval workload under
// the two covariance schemes — the inverse-vs-diagonal CPU comparison of
// Fig. 6. The benchmark time itself is the figure's y-axis.
func BenchmarkFig6Scheme(b *testing.B) {
	ds := benchDataset(b)
	for _, scheme := range []cluster.Scheme{cluster.Diagonal, cluster.FullInverse} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			cfg := benchRetrievalConfig(ds, dataset.ColorMoments)
			var last eval.EngineSeries
			for i := 0; i < b.N; i++ {
				last = eval.RunRetrieval(cfg, func() rf.Engine {
					return rf.NewQcluster(core.Options{Scheme: scheme})
				})
			}
			b.ReportMetric(last.Recall[len(last.Recall)-1], "recall@5")
			b.ReportMetric(mean(last.CPUMillis), "ms/retrieval")
		})
	}
}

// BenchmarkFig7ExecutionCost compares per-iteration retrieval work across
// the approaches: Qcluster with the multipoint refinement cache, QPM, QEX
// and FALCON. Reported: mean index nodes visited and distance
// evaluations per retrieval (the paper's execution-cost axis).
func BenchmarkFig7ExecutionCost(b *testing.B) {
	ds := benchDataset(b)
	cases := []struct {
		name   string
		cached bool
		mk     func() rf.Engine
	}{
		{"Qcluster-cached", true, func() rf.Engine { return rf.NewQcluster(core.Options{}) }},
		{"Qcluster-cold", false, func() rf.Engine { return rf.NewQcluster(core.Options{}) }},
		{"QPM", false, func() rf.Engine { return rf.NewQPM() }},
		{"QEX", false, func() rf.Engine { return rf.NewQEX(5) }},
		{"FALCON", false, func() rf.Engine { return rf.NewFalcon(-5) }},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			cfg := benchRetrievalConfig(ds, dataset.ColorMoments)
			cfg.UseRefinementCache = tc.cached
			var last eval.EngineSeries
			for i := 0; i < b.N; i++ {
				last = eval.RunRetrieval(cfg, tc.mk)
			}
			b.ReportMetric(mean(last.NodesVisited), "nodes/retrieval")
			b.ReportMetric(mean(last.DistanceEvals), "evals/retrieval")
		})
	}
}

// BenchmarkFig8PRColor and BenchmarkFig9PRTexture regenerate the
// per-iteration precision-recall curves for Qcluster on each feature.
// Reported: precision and recall at full scope for the initial query and
// the final iteration (the endpoints of the figures' first/last lines).
func BenchmarkFig8PRColor(b *testing.B)   { benchPR(b, dataset.ColorMoments) }
func BenchmarkFig9PRTexture(b *testing.B) { benchPR(b, dataset.CooccurrenceTexture) }

func benchPR(b *testing.B, f dataset.Feature) {
	ds := benchDataset(b)
	cfg := benchRetrievalConfig(ds, f)
	var last eval.EngineSeries
	for i := 0; i < b.N; i++ {
		last = eval.RunRetrieval(cfg, func() rf.Engine {
			return rf.NewQcluster(core.Options{})
		})
	}
	end := len(last.Recall) - 1
	b.ReportMetric(last.Recall[0], "recall@iter0")
	b.ReportMetric(last.Recall[end], "recall@final")
	b.ReportMetric(last.Precision[0], "prec@iter0")
	b.ReportMetric(last.Precision[end], "prec@final")
}

// BenchmarkFig10to13Compare regenerates the three-approach comparison
// (recall: Figs. 10-11; precision: Figs. 12-13) for both features.
// Reported: final-iteration recall and precision per engine.
func BenchmarkFig10to13Compare(b *testing.B) {
	ds := benchDataset(b)
	engines := []struct {
		name string
		mk   func() rf.Engine
	}{
		{"Qcluster", func() rf.Engine { return rf.NewQcluster(core.Options{}) }},
		{"QPM", func() rf.Engine { return rf.NewQPM() }},
		{"QEX", func() rf.Engine { return rf.NewQEX(5) }},
	}
	for _, f := range []dataset.Feature{dataset.ColorMoments, dataset.CooccurrenceTexture} {
		f := f
		for _, e := range engines {
			e := e
			b.Run(f.String()+"/"+e.name, func(b *testing.B) {
				cfg := benchRetrievalConfig(ds, f)
				var last eval.EngineSeries
				for i := 0; i < b.N; i++ {
					last = eval.RunRetrieval(cfg, e.mk)
				}
				end := len(last.Recall) - 1
				b.ReportMetric(last.Recall[end], "recall@final")
				b.ReportMetric(last.Precision[end], "prec@final")
			})
		}
	}
}

// BenchmarkFig14to17Classification regenerates the synthetic
// classification error-rate sweeps (3 Gaussian clusters in ℝ¹⁶, PCA to
// 12/9/6/3, inter-cluster distance 0.5-2.5) for every shape×scheme cell.
// Reported: error rate at the narrowest and widest separation (dim 12).
func BenchmarkFig14to17Classification(b *testing.B) {
	cases := []struct {
		name   string
		shape  synth.Shape
		scheme cluster.Scheme
	}{
		{"fig14-spherical-inverse", synth.Spherical, cluster.FullInverse},
		{"fig15-elliptical-inverse", synth.Elliptical, cluster.FullInverse},
		{"fig16-spherical-diagonal", synth.Spherical, cluster.Diagonal},
		{"fig17-elliptical-diagonal", synth.Elliptical, cluster.Diagonal},
	}
	for _, tc := range cases {
		tc := tc
		b.Run(tc.name, func(b *testing.B) {
			var res eval.ClassificationResult
			for i := 0; i < b.N; i++ {
				res = eval.RunClassification(eval.ClassificationConfig{
					Shape: tc.shape, Scheme: tc.scheme,
					PointsPerCluster: 30, Trials: 3, Seed: 11,
				})
			}
			last := len(res.Config.InterDists) - 1
			b.ReportMetric(res.Err[0][0], "err-dim12-near")
			b.ReportMetric(res.Err[0][last], "err-dim12-far")
			b.ReportMetric(res.Err[len(res.Err)-1][0], "err-dim3-near")
		})
	}
}

// BenchmarkFig18and19QQ regenerates the Q-Q studies: 100 cluster pairs
// (half same-mean, half different), T² against random-F critical
// distances, under each scheme. Reported: decision accuracy per
// population at the F(0.95) critical value.
func BenchmarkFig18and19QQ(b *testing.B) {
	for _, scheme := range []cluster.Scheme{cluster.FullInverse, cluster.Diagonal} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			var pts []eval.QQPoint
			var threshold float64
			for i := 0; i < b.N; i++ {
				pts, threshold = eval.RunQQ(scheme, 100, 12, 23)
			}
			var sameOK, same, diffOK, diff int
			for _, p := range pts {
				if p.SameMean {
					same++
					if p.T2 <= threshold {
						sameOK++
					}
				} else {
					diff++
					if p.T2 > threshold {
						diffOK++
					}
				}
			}
			b.ReportMetric(float64(sameOK)/float64(same), "same-mean-merged")
			b.ReportMetric(float64(diffOK)/float64(diff), "diff-mean-separated")
		})
	}
}

// BenchmarkTable2 and BenchmarkTable3 regenerate the T² accuracy tables
// (100 pairs of size-30 clusters, dims 12/9/6/3). Reported: the dim-12
// and dim-3 rows' F-scaled average T² and error ratio.
func BenchmarkTable2(b *testing.B) { benchT2(b, true) }
func BenchmarkTable3(b *testing.B) { benchT2(b, false) }

func benchT2(b *testing.B, sameMean bool) {
	for _, scheme := range []cluster.Scheme{cluster.FullInverse, cluster.Diagonal} {
		scheme := scheme
		b.Run(scheme.String(), func(b *testing.B) {
			var rows []eval.T2Row
			for i := 0; i < b.N; i++ {
				rows = eval.RunT2(eval.T2Config{
					SameMean: sameMean, Scheme: scheme, Pairs: 100, Seed: 17,
				})
			}
			b.ReportMetric(rows[0].AvgT2, "avgT2-dim12")
			b.ReportMetric(rows[len(rows)-1].AvgT2, "avgT2-dim3")
			b.ReportMetric(rows[0].ErrorRatio, "err%-dim12")
		})
	}
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// BenchmarkIndexComparison times the three search substrates — linear
// scan, hybrid tree, VA-file — on identical k-NN workloads over a
// 30,000-vector store (single-point and disjunctive queries). Reported:
// exact distance evaluations per query (the filtering power).
func BenchmarkIndexComparison(b *testing.B) {
	rng := rand.New(rand.NewSource(77))
	const n, dim = 30000, 3
	vecs := make([]linalg.Vector, n)
	for i := range vecs {
		vecs[i] = linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	store, err := index.NewStore(vecs)
	if err != nil {
		b.Fatal(err)
	}
	tree := index.NewHybridTree(store, index.TreeOptions{})
	va := index.NewVAFile(store, index.VAFileOptions{})
	scan := index.NewLinearScan(store)

	q1 := distance.NewQuadraticDiag(linalg.Vector{-2, -2, -2}, linalg.Vector{1, 1, 1})
	q2 := distance.NewQuadraticDiag(linalg.Vector{2, 2, 2}, linalg.Vector{1, 1, 1})
	metrics := map[string]distance.Metric{
		"euclidean":   &distance.Euclidean{Center: linalg.Vector{0.5, 0.5, 0.5}},
		"disjunctive": distance.NewDisjunctive([]*distance.Quadratic{q1, q2}, []float64{1, 1}),
	}
	searchers := []struct {
		name string
		s    index.Searcher
	}{
		{"scan", scan},
		{"hybridtree", tree},
		{"vafile", va},
	}
	for mName, m := range metrics {
		for _, sc := range searchers {
			m, sc := m, sc
			b.Run(mName+"/"+sc.name, func(b *testing.B) {
				var stats index.SearchStats
				for i := 0; i < b.N; i++ {
					_, stats = sc.s.KNN(m, 100)
				}
				b.ReportMetric(float64(stats.DistanceEvals), "exact-evals")
			})
		}
	}
}

// BenchmarkT2PCSpaceSpeedup measures the paper's Sec. 4.4 claim that
// Hotelling's T² in principal-component space "becomes a quadratic form
// which saves a lot of computing efforts": the diagonal PC-space sum
// (Eq. 18) versus the full pooled-inverse quadratic form, at dimension
// 16.
func BenchmarkT2PCSpaceSpeedup(b *testing.B) {
	rng := rand.New(rand.NewSource(88))
	const dim, n = 16, 200
	rows := make([]linalg.Vector, n)
	for i := range rows {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = rng.NormFloat64() * float64(1+d%4)
		}
		rows[i] = v
	}
	fitted, err := pca.Fit(rows)
	if err != nil {
		b.Fatal(err)
	}
	x, y := rows[0], rows[1]
	zx, zy := fitted.Project(x, dim), fitted.Project(y, dim)

	// Full form: (x̄-ȳ)' S⁻¹ (x̄-ȳ) with S reconstructed from eigenpairs.
	S := fitted.Components.Mul(linalg.Diag(fitted.Eigenvalues)).Mul(fitted.Components.T())
	inv, err := S.Inverse()
	if err != nil {
		b.Fatal(err)
	}

	b.Run("full-quadratic", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			d := x.Sub(y)
			acc += inv.QuadForm(d)
		}
		sink = acc
	})
	b.Run("pc-space-diagonal", func(b *testing.B) {
		var acc float64
		for i := 0; i < b.N; i++ {
			acc += fitted.T2PC(zx, zy, 30, 30)
		}
		sink = acc
	})
}

var sink float64

// BenchmarkKNN times the k-NN hot path itself — the parallel leaf stage
// against the sequential traversal — over random collections at the
// BENCH_search.json grid (dim ∈ {8, 32}, N ∈ {10k, 100k}). CI runs this
// with -benchtime=1x as a smoke test; `qbench -exp search` produces the
// recorded trajectory from the same workload.
func BenchmarkKNN(b *testing.B) {
	const k = 100
	for _, n := range []int{10000, 100000} {
		for _, dim := range []int{8, 32} {
			rng := rand.New(rand.NewSource(int64(31*n + dim)))
			data := make([]float64, n*dim)
			for i := range data {
				data[i] = rng.NormFloat64() * 3
			}
			store, err := index.NewStoreFlat(data, dim)
			if err != nil {
				b.Fatal(err)
			}
			seq := index.NewHybridTree(store, index.TreeOptions{Parallelism: 1})
			par := seq.WithParallelism(0)
			centers := make([]linalg.Vector, 16)
			for i := range centers {
				c := make(linalg.Vector, dim)
				for d := range c {
					c[d] = rng.NormFloat64() * 3
				}
				centers[i] = c
			}
			modes := []struct {
				name string
				tree *index.HybridTree
			}{
				{"seq", seq},
				{"par", par},
			}
			for _, mode := range modes {
				mode := mode
				name := fmt.Sprintf("dim%d/n%d/%s", dim, n, mode.name)
				b.Run(name, func(b *testing.B) {
					var stats index.SearchStats
					for i := 0; i < b.N; i++ {
						m := &distance.Euclidean{Center: centers[i%len(centers)]}
						_, stats = mode.tree.KNN(m, k)
					}
					b.ReportMetric(float64(stats.DistanceEvals), "exact-evals")
				})
			}
		}
	}
}

// BenchmarkAblations runs each small-sample correction removed in turn
// on the complex-query vector world; the reported recall shows what each
// correction contributes (see DESIGN.md "Implementation notes").
func BenchmarkAblations(b *testing.B) {
	wcfg := eval.VectorWorldConfig{Seed: 9, NumCategories: 16, PerCategory: 60}
	cfg := eval.WorkloadConfig{
		NumQueries: 8, Iterations: 4, K: 100, Seed: 5,
		UseIndex: true, RelatedScore: -1,
	}
	var results []eval.AblationResult
	for i := 0; i < b.N; i++ {
		results = eval.RunAblations(cfg, wcfg)
	}
	for _, r := range results {
		last := len(r.Series.Recall) - 1
		b.ReportMetric(r.Series.Recall[last], "recall/"+r.Name)
	}
}
