package qcluster

import (
	"context"
	"errors"
	"math"
	"math/rand"
	"testing"
)

// buildDB constructs a database over vectors with the given backend (and
// for "ann" an efSearch covering the whole collection, so every search
// degenerates to an exhaustive exact sweep — the bit-identity regime).
func buildDB(t *testing.T, vectors [][]float64, opt IndexOptions) *Database {
	t.Helper()
	db, err := NewDatabaseWithOptions(vectors, opt)
	if err != nil {
		t.Fatal(err)
	}
	return db
}

// identicalResults asserts bit-exact equality, distances included.
func identicalResults(t *testing.T, got, want []Result, label string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d results, want %d", label, len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID ||
			math.Float64bits(got[i].Dist) != math.Float64bits(want[i].Dist) {
			t.Fatalf("%s: result %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}

func TestBackendUnknownRejected(t *testing.T) {
	_, err := NewDatabaseWithOptions([][]float64{{1, 2}}, IndexOptions{Backend: "lsh"})
	if err == nil {
		t.Fatal("unknown backend must fail construction")
	}
}

func TestVAFileBackendEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	vectors, _ := buildVectors(rng)
	tree := buildDB(t, vectors, IndexOptions{})
	va := buildDB(t, vectors, IndexOptions{Backend: BackendVAFile})
	if got := va.IndexInfo().Backend; got != "vafile" {
		t.Fatalf("IndexInfo().Backend = %q", got)
	}

	for trial := 0; trial < 10; trial++ {
		q := vectors[rng.Intn(len(vectors))]
		identicalResults(t, va.SearchByExample(q, 15), tree.SearchByExample(q, 15), "vafile search")
	}

	// Inserts reach the VA-file through Extend: appended vectors must be
	// visible and the two exact backends must still agree.
	for i := 0; i < 25; i++ {
		v := []float64{rng.NormFloat64() * 4, rng.NormFloat64() * 4, rng.NormFloat64() * 4}
		if _, err := tree.Add(v); err != nil {
			t.Fatal(err)
		}
		if _, err := va.Add(v); err != nil {
			t.Fatal(err)
		}
	}
	q := va.Vector(va.Len() - 1)
	res := va.SearchByExample(q, 5)
	if len(res) == 0 || res[0].ID != va.Len()-1 {
		t.Fatalf("appended vector not first in its own self-query: %+v", res)
	}
	identicalResults(t, res, tree.SearchByExample(q, 5), "vafile search after Add")
}

// TestANNBackendBitIdentityWithFeedback is the refinement bit-identity
// contract end to end: with efSearch covering the whole collection the
// ANN candidate set equals the collection, so exact refinement must make
// every search — and every feedback round driven by those results —
// bit-identical to the exact tree backend, adaptive metric included.
func TestANNBackendBitIdentityWithFeedback(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	vectors, labels := buildVectors(rng)
	tree := buildDB(t, vectors, IndexOptions{})
	annDB := buildDB(t, vectors, IndexOptions{
		Backend: BackendANN,
		ANN:     ANNOptions{EfSearch: len(vectors) + 1, Seed: 7},
	})
	if got := annDB.IndexInfo(); got.Backend != "ann" || got.ANNEfSearch != len(vectors)+1 {
		t.Fatalf("IndexInfo = %+v", got)
	}

	st := tree.NewSession(tree.Vector(0), Options{})
	sa := annDB.NewSession(annDB.Vector(0), Options{})
	for round := 0; round < 4; round++ {
		rt := st.Results(40)
		ra := sa.Results(40)
		identicalResults(t, ra, rt, "feedback round")
		var marked []Point
		for _, r := range rt {
			if labels[r.ID] == 0 {
				marked = append(marked, Point{ID: r.ID, Vec: tree.Vector(r.ID), Score: 3})
			}
		}
		if err := st.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
		if err := sa.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
	}
	if st.Query().NumQueryPoints() != sa.Query().NumQueryPoints() {
		t.Fatalf("query points diverged: tree %d, ann %d",
			st.Query().NumQueryPoints(), sa.Query().NumQueryPoints())
	}

	// The stateless paths agree too.
	q := vectors[rng.Intn(len(vectors))]
	identicalResults(t, annDB.SearchByExample(q, 20), tree.SearchByExample(q, 20), "stateless search")
}

func TestANNBackendApproxRecall(t *testing.T) {
	// With a realistic (bounded) efSearch the ANN backend is genuinely
	// approximate; on easy clustered data its refined top-10 should still
	// almost always match the exact answer set.
	rng := rand.New(rand.NewSource(42))
	var vectors [][]float64
	for c := 0; c < 8; c++ {
		cx, cy, cz := rng.NormFloat64()*8, rng.NormFloat64()*8, rng.NormFloat64()*8
		for i := 0; i < 150; i++ {
			vectors = append(vectors, []float64{
				cx + 0.3*rng.NormFloat64(), cy + 0.3*rng.NormFloat64(), cz + 0.3*rng.NormFloat64(),
			})
		}
	}
	tree := buildDB(t, vectors, IndexOptions{})
	annDB := buildDB(t, vectors, IndexOptions{Backend: BackendANN, ANN: ANNOptions{EfSearch: 128, Seed: 3}})

	hits, total := 0, 0
	for trial := 0; trial < 30; trial++ {
		q := vectors[rng.Intn(len(vectors))]
		want := tree.SearchByExample(q, 10)
		got := annDB.SearchByExample(q, 10)
		exact := make(map[int]bool, len(want))
		for _, r := range want {
			exact[r.ID] = true
		}
		for _, r := range got {
			if exact[r.ID] {
				hits++
			}
		}
		total += len(want)
	}
	if recall := float64(hits) / float64(total); recall < 0.95 {
		t.Fatalf("recall@10 = %.3f, want >= 0.95", recall)
	}
	// The approximate path must report graph work in its metrics.
	snap := annDB.Metrics()
	if snap.Counters["index.graph_hops"] == 0 || snap.Counters["index.refine_evals"] == 0 {
		t.Fatalf("graph counters missing: hops=%d refine=%d",
			snap.Counters["index.graph_hops"], snap.Counters["index.refine_evals"])
	}
}

func TestSearchApprox(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	vectors, _ := buildVectors(rng)
	annDB := buildDB(t, vectors, IndexOptions{Backend: BackendANN, ANN: ANNOptions{Seed: 1}})

	res := annDB.SearchApprox(annDB.Vector(3), 5, len(vectors)+1)
	if len(res) != 5 || res[0].ID != 3 || res[0].Dist != 0 {
		t.Fatalf("self-query results: %+v", res)
	}
	// The per-query efSearch override degenerates to exact: compare with
	// the tree.
	tree := buildDB(t, vectors, IndexOptions{})
	identicalResults(t, res, tree.SearchByExample(tree.Vector(3), 5), "SearchApprox exhaustive")

	// Wrong backend → ErrBackendUnavailable.
	if _, err := tree.SearchApproxContext(context.Background(), tree.Vector(0), 5, 0); !errors.Is(err, ErrBackendUnavailable) {
		t.Fatalf("tree backend SearchApprox err = %v, want ErrBackendUnavailable", err)
	}
	// Dimension mismatch still checked.
	if _, err := annDB.SearchApproxContext(context.Background(), []float64{1}, 5, 0); !errors.Is(err, ErrDimensionMismatch) {
		t.Fatalf("err = %v, want ErrDimensionMismatch", err)
	}
}

func TestANNBackendRejectsUnquantizable(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	vectors, _ := buildVectors(rng)
	annDB := buildDB(t, vectors, IndexOptions{Backend: BackendANN})
	n := annDB.Len()
	// 1e39 overflows float32: the add must fail atomically — nothing
	// appended, graph and store still in lockstep, searches still fine.
	if _, err := annDB.Add([]float64{1, 2, 1e39}); err == nil {
		t.Fatal("float32-overflowing component must reject the Add on the ann backend")
	}
	if _, err := annDB.AddBatch([][]float64{{1, 2, 3}, {0, 0, math.MaxFloat64}}); err == nil {
		t.Fatal("unquantizable batch must be rejected atomically")
	}
	if annDB.Len() != n {
		t.Fatalf("failed adds changed Len: %d -> %d", n, annDB.Len())
	}
	if res := annDB.SearchApprox(annDB.Vector(0), 3, 0); len(res) != 3 {
		t.Fatalf("search after rejected adds: %d results", len(res))
	}
	// The exact backends accept the same vector (no quantization there).
	tree := buildDB(t, vectors, IndexOptions{})
	if _, err := tree.Add([]float64{1, 2, 1e39}); err != nil {
		t.Fatalf("tree backend rejected a finite vector: %v", err)
	}
}

func TestResplitMetricsSurface(t *testing.T) {
	// Small leaves + a large batch ⇒ re-splits must show up in the
	// maintenance metrics ("index.resplits", "search.resplit_ns") and the
	// backlog gauge must drain to zero eventually.
	rng := rand.New(rand.NewSource(45))
	vectors := make([][]float64, 64)
	for i := range vectors {
		vectors[i] = []float64{rng.NormFloat64(), rng.NormFloat64()}
	}
	db := buildDB(t, vectors, IndexOptions{NodeSizeBytes: 256, MaxResplitsPerBatch: 1})
	batch := make([][]float64, 256)
	for i := range batch {
		batch[i] = []float64{rng.NormFloat64() * 3, rng.NormFloat64() * 3}
	}
	if _, err := db.AddBatch(batch); err != nil {
		t.Fatal(err)
	}
	snap := db.Metrics()
	if snap.Counters["index.resplits"] == 0 || snap.Counters["search.resplit_ns"] == 0 {
		t.Fatalf("re-split metrics missing: %+v", snap.Counters)
	}
	if snap.Gauges["index.resplit_pending"] == 0 {
		t.Fatal("capped batch should leave a deferred backlog")
	}
	for db.Metrics().Gauges["index.resplit_pending"] > 0 {
		if _, err := db.Add([]float64{rng.NormFloat64(), rng.NormFloat64()}); err != nil {
			t.Fatal(err)
		}
	}
	// Exactness held throughout.
	res := db.SearchByExample([]float64{0, 0}, db.Len())
	if len(res) != db.Len() {
		t.Fatalf("found %d of %d items", len(res), db.Len())
	}
}
