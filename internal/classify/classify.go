// Package classify implements the adaptive classification stage of the
// Qcluster paper (Sec. 4.2): the Bayesian classification function over the
// current clusters (Eq. 10), the effective-radius membership test
// (Lemma 1, Eq. 6) and Algorithm 2, which places each new relevant point
// into the best existing cluster or seeds a new one.
package classify

import (
	"math"

	"repro/internal/cluster"
	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/stat"
)

// Options configures the classifier.
type Options struct {
	// Scheme selects the pooled-covariance inversion: diagonal (MARS,
	// paper default) or full inverse (MindReader).
	Scheme cluster.Scheme
	// Alpha is the significance level that sets the effective radius
	// χ²_p(1-α): with α = 0.05, 95% of a Gaussian cluster's mass falls
	// inside the ellipsoid (Lemma 1). Defaults to 0.05.
	Alpha float64
	// PlainChiSquareRadius disables the finite-sample widening of the
	// effective radius (Lemma 1 read literally: always χ²_p(1-α)).
	// Exposed for ablation studies; see RadiusFor.
	PlainChiSquareRadius bool
	// Trace, when non-nil, receives one event per Algorithm-2 decision
	// in ClassifyAll: "classify.assign" (point joined the Eq. 10 winner)
	// or "classify.new_cluster" (point fell outside the winner's χ²/F
	// effective radius and seeded a new cluster).
	Trace *obs.Span
}

func (o Options) withDefaults() Options {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	return o
}

// Classifier scores points against a fixed set of clusters. It
// precomputes the pooled inverse covariance (Eq. 7) and the cluster
// priors, so classifying each point is a handful of quadratic forms.
type Classifier struct {
	clusters  []*cluster.Cluster
	pooledInv *linalg.Matrix // S_pooled⁻¹ under the chosen scheme
	logPriors []float64      // ln(w_i)
	radius    float64        // effective radius χ²_p(1-α)
	opt       Options
}

// New builds a classifier over the given clusters. It panics when cs is
// empty (Algorithm 2 is only invoked once initial clusters exist).
func New(cs []*cluster.Cluster, opt Options) *Classifier {
	if len(cs) == 0 {
		panic("classify: no clusters")
	}
	opt = opt.withDefaults()
	pooled := cluster.PooledAll(cs)
	inv := cluster.InverseOf(pooled, opt.Scheme)
	ws := cluster.NormalizedWeights(cs)
	lp := make([]float64, len(ws))
	for i, w := range ws {
		if w <= 0 {
			// A zero-weight cluster cannot attract points; -Inf prior is
			// avoided by an extremely small stand-in.
			lp[i] = -1e300
			continue
		}
		lp[i] = math.Log(w)
	}
	return &Classifier{
		clusters:  cs,
		pooledInv: inv,
		logPriors: lp,
		radius:    stat.ChiSquareQuantile(1-opt.Alpha, float64(cs[0].Dim())),
		opt:       opt,
	}
}

// Score returns the Bayesian classification function value d̂_i(x) of
// Eq. 10 for cluster index i:
// d̂_i(x) = -½ (x - x̄_i)' S_pooled⁻¹ (x - x̄_i) + ln(w_i).
func (c *Classifier) Score(i int, x linalg.Vector) float64 {
	d := x.Sub(c.clusters[i].Mean)
	return -0.5*c.pooledInv.QuadForm(d) + c.logPriors[i]
}

// Best returns the index k maximizing d̂_k(x) (Algorithm 2 line 3) along
// with the winning score.
func (c *Classifier) Best(x linalg.Vector) (k int, score float64) {
	k = 0
	score = c.Score(0, x)
	for i := 1; i < len(c.clusters); i++ {
		if s := c.Score(i, x); s > score {
			k, score = i, s
		}
	}
	return k, score
}

// Posterior returns P(C_i | x) of Eq. 9 for every cluster, using the
// multivariate normal likelihood with the pooled covariance. The values
// sum to 1.
func (c *Classifier) Posterior(x linalg.Vector) []float64 {
	// Work in log space then normalize for numerical stability.
	logs := make([]float64, len(c.clusters))
	maxLog := -1e308
	for i := range c.clusters {
		logs[i] = c.Score(i, x)
		if logs[i] > maxLog {
			maxLog = logs[i]
		}
	}
	var sum float64
	out := make([]float64, len(logs))
	for i, l := range logs {
		out[i] = math.Exp(l - maxLog)
		sum += out[i]
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// InsideRadius reports whether x lies inside cluster k's effective
// ellipsoid: (x - x̄_k)' S_k⁻¹ (x - x̄_k) < r(α)  (Lemma 1 / Eq. 6),
// where S_k is cluster k's own covariance under the configured scheme.
//
// The radius is the χ²_p(1-α) quantile in the large-sample limit, but for
// a cluster whose covariance was estimated from few points the correct
// predictive contour is wider: a new point from the same population
// satisfies (x-x̄)'S⁻¹(x-x̄) ~ p(n²-1)/(n(n-p)) F_{p,n-p} (Johnson &
// Wichern, the paper's Ref. [12]). Using the χ² radius with a young
// cluster's shrunken sample covariance would brand typical members
// outliers and fragment the query model into micro-clusters.
func (c *Classifier) InsideRadius(k int, x linalg.Vector) bool {
	return c.clusters[k].Mahalanobis(x, c.opt.Scheme) < c.RadiusFor(k)
}

// Radius exposes the large-sample effective radius χ²_p(1-α).
func (c *Classifier) Radius() float64 { return c.radius }

// RadiusFor returns the effective radius for cluster k, widened by the
// finite-sample predictive factor when the cluster is small.
func (c *Classifier) RadiusFor(k int) float64 {
	if c.opt.PlainChiSquareRadius {
		return c.radius
	}
	n := c.clusters[k].Weight
	p := float64(c.clusters[k].Dim())
	if n <= p+1 {
		// Too few points for the F quantile: accept anything within the
		// χ² contour scaled by a generous small-sample factor.
		return 4 * c.radius
	}
	f := stat.FQuantile(1-c.opt.Alpha, p, n-p)
	return p * (n*n - 1) / (n * (n - p)) * f
}

// Assign implements the decision of Algorithm 2 for one point: it returns
// the index of the cluster x should join, or -1 when x falls outside the
// winner's effective radius and must seed a new cluster.
func (c *Classifier) Assign(x linalg.Vector) int {
	k, _ := c.Best(x)
	if c.InsideRadius(k, x) {
		return k
	}
	return -1
}

// ClassifyAll runs Algorithm 2 over a batch of new points against the
// given starting clusters: each point is appended to the chosen cluster
// (updating its statistics incrementally) or becomes a new singleton
// cluster. The classifier is rebuilt after every insertion so later
// points see updated statistics, matching the sequential loop of
// Algorithm 2. It returns the resulting cluster set.
func ClassifyAll(cs []*cluster.Cluster, points []cluster.Point, opt Options) []*cluster.Cluster {
	work := make([]*cluster.Cluster, len(cs))
	copy(work, cs)
	for _, p := range points {
		if len(work) == 0 {
			work = append(work, cluster.FromPoint(p))
			opt.Trace.Event("classify.new_cluster",
				obs.F("point_id", p.ID), obs.F("clusters", len(work)))
			continue
		}
		cl := New(work, opt)
		// The decision of Assign, opened up so the trace can record the
		// Eq. 10 winner and the radius test outcome.
		k, score := cl.Best(p.Vec)
		if cl.InsideRadius(k, p.Vec) {
			work[k].Add(p)
			if opt.Trace.Enabled() {
				opt.Trace.Event("classify.assign",
					obs.F("point_id", p.ID), obs.F("cluster", k),
					obs.F("score", score))
			}
		} else {
			if opt.Trace.Enabled() {
				opt.Trace.Event("classify.new_cluster",
					obs.F("point_id", p.ID), obs.F("nearest", k),
					obs.F("mahalanobis", work[k].Mahalanobis(p.Vec, opt.Scheme)),
					obs.F("radius", cl.RadiusFor(k)),
					obs.F("clusters", len(work)+1))
			}
			work = append(work, cluster.FromPoint(p))
		}
	}
	return work
}

// ErrorRate measures clustering quality per Sec. 4.5: for every point,
// remove it from its cluster, re-run the classification decision over the
// cluster set (with the removed point's cluster statistics recomputed
// without it) and count how often the point returns to its own cluster.
// The result is 1 - C/N. Singleton clusters are skipped in the removal
// (their removal would empty the cluster); their points are classified
// against the full set instead.
func ErrorRate(cs []*cluster.Cluster, opt Options) float64 {
	total, correct := 0, 0
	for ci, c := range cs {
		for pi := range c.Points {
			total++
			// Rebuild the cluster set with the point held out.
			held := make([]*cluster.Cluster, 0, len(cs))
			for cj, other := range cs {
				if cj != ci {
					held = append(held, other)
					continue
				}
				if other.N() == 1 {
					// Hold-out would empty it; classify against all.
					held = append(held, other)
					continue
				}
				held = append(held, other.WithoutPoint(pi))
			}
			cl := New(held, opt)
			if k, _ := cl.Best(c.Points[pi].Vec); k == ci {
				correct++
			}
		}
	}
	if total == 0 {
		return 0
	}
	return 1 - float64(correct)/float64(total)
}
