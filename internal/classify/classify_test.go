package classify

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/linalg"
)

func gaussCluster(rng *rand.Rand, n, dim int, center linalg.Vector, scale float64) *cluster.Cluster {
	c := cluster.New(dim)
	for i := 0; i < n; i++ {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = center[d] + scale*rng.NormFloat64()
		}
		c.Add(cluster.Point{ID: i, Vec: v, Score: 1})
	}
	return c
}

func TestBestPicksNearestCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(30))
	a := gaussCluster(rng, 30, 2, linalg.Vector{0, 0}, 1)
	b := gaussCluster(rng, 30, 2, linalg.Vector{10, 10}, 1)
	cl := New([]*cluster.Cluster{a, b}, Options{Scheme: cluster.FullInverse})

	if k, _ := cl.Best(linalg.Vector{0.5, -0.5}); k != 0 {
		t.Errorf("point near A classified to %d", k)
	}
	if k, _ := cl.Best(linalg.Vector{9, 11}); k != 1 {
		t.Errorf("point near B classified to %d", k)
	}
}

func TestPriorBreaksTies(t *testing.T) {
	// Equidistant point: the cluster with the larger weight (prior) wins.
	rng := rand.New(rand.NewSource(31))
	a := gaussCluster(rng, 10, 2, linalg.Vector{-5, 0}, 1)
	heavy := cluster.New(2)
	for i := 0; i < 10; i++ {
		v := linalg.Vector{5 + rng.NormFloat64(), rng.NormFloat64()}
		heavy.Add(cluster.Point{ID: 100 + i, Vec: v, Score: 3}) // 3x the weight
	}
	// Force symmetric means so the midpoint is exactly equidistant.
	a.Mean = linalg.Vector{-5, 0}
	heavy.Mean = linalg.Vector{5, 0}
	cl := New([]*cluster.Cluster{a, heavy}, Options{Scheme: cluster.Diagonal})
	if k, _ := cl.Best(linalg.Vector{0, 0}); k != 1 {
		t.Errorf("tie should go to the heavier cluster, got %d", k)
	}
}

func TestPosteriorSumsToOne(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	cs := []*cluster.Cluster{
		gaussCluster(rng, 20, 3, linalg.Vector{0, 0, 0}, 1),
		gaussCluster(rng, 20, 3, linalg.Vector{5, 5, 5}, 1),
		gaussCluster(rng, 20, 3, linalg.Vector{-5, 5, 0}, 1),
	}
	cl := New(cs, Options{Scheme: cluster.FullInverse})
	for trial := 0; trial < 10; trial++ {
		x := linalg.Vector{rng.NormFloat64() * 5, rng.NormFloat64() * 5, rng.NormFloat64() * 5}
		post := cl.Posterior(x)
		var sum float64
		for _, p := range post {
			if p < 0 || p > 1 {
				t.Fatalf("posterior out of range: %v", post)
			}
			sum += p
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("posterior sums to %v", sum)
		}
		// The argmax of the posterior must agree with Best.
		k, _ := cl.Best(x)
		argmax := 0
		for i, p := range post {
			if p > post[argmax] {
				argmax = i
			}
		}
		if k != argmax {
			t.Fatalf("Best=%d but posterior argmax=%d", k, argmax)
		}
	}
}

func TestEffectiveRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	a := gaussCluster(rng, 200, 2, linalg.Vector{0, 0}, 1)
	cl := New([]*cluster.Cluster{a}, Options{Scheme: cluster.FullInverse, Alpha: 0.05})

	// ~95% of same-distribution points must fall inside the radius.
	inside := 0
	const n = 2000
	for i := 0; i < n; i++ {
		x := linalg.Vector{rng.NormFloat64(), rng.NormFloat64()}
		if cl.InsideRadius(0, x) {
			inside++
		}
	}
	rate := float64(inside) / n
	if rate < 0.90 || rate > 0.99 {
		t.Errorf("inside rate = %v, want ≈0.95", rate)
	}
	// A far point must be outside.
	if cl.InsideRadius(0, linalg.Vector{50, 50}) {
		t.Error("far point inside effective radius")
	}
}

func TestRadiusGrowsAsAlphaShrinks(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	a := gaussCluster(rng, 30, 3, linalg.Vector{0, 0, 0}, 1)
	r05 := New([]*cluster.Cluster{a}, Options{Alpha: 0.05}).Radius()
	r01 := New([]*cluster.Cluster{a}, Options{Alpha: 0.01}).Radius()
	if r01 <= r05 {
		t.Errorf("radius must grow as α shrinks: α=.01 → %v, α=.05 → %v", r01, r05)
	}
}

func TestAssignOutlierSeedsNewCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	a := gaussCluster(rng, 30, 2, linalg.Vector{0, 0}, 1)
	cl := New([]*cluster.Cluster{a}, Options{Scheme: cluster.Diagonal, Alpha: 0.05})
	if k := cl.Assign(linalg.Vector{0.3, -0.2}); k != 0 {
		t.Errorf("inlier assigned to %d", k)
	}
	if k := cl.Assign(linalg.Vector{30, 30}); k != -1 {
		t.Errorf("outlier assigned to %d, want -1 (new cluster)", k)
	}
}

func TestClassifyAll(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	start := []*cluster.Cluster{gaussCluster(rng, 30, 2, linalg.Vector{0, 0}, 1)}
	points := []cluster.Point{
		{ID: 1000, Vec: linalg.Vector{0.5, 0.5}, Score: 1},   // joins cluster 0
		{ID: 1001, Vec: linalg.Vector{20, 20}, Score: 1},     // new cluster
		{ID: 1002, Vec: linalg.Vector{20.5, 19.5}, Score: 1}, // joins the new one or another new
	}
	out := ClassifyAll(start, points, Options{Scheme: cluster.Diagonal, Alpha: 0.05})
	if len(out) < 2 {
		t.Fatalf("expected at least 2 clusters, got %d", len(out))
	}
	// Point 1000 must be in the first cluster.
	found := false
	for _, p := range out[0].Points {
		if p.ID == 1000 {
			found = true
		}
	}
	if !found {
		t.Error("inlier point did not join cluster 0")
	}
	// Total points preserved.
	n := 0
	for _, c := range out {
		n += c.N()
	}
	if n != 33 {
		t.Errorf("point count = %d, want 33", n)
	}
}

func TestClassifyAllFromEmpty(t *testing.T) {
	points := []cluster.Point{
		{ID: 0, Vec: linalg.Vector{0, 0}, Score: 1},
		{ID: 1, Vec: linalg.Vector{0.1, 0}, Score: 1},
	}
	out := ClassifyAll(nil, points, Options{})
	if len(out) == 0 {
		t.Fatal("no clusters created")
	}
	n := 0
	for _, c := range out {
		n += c.N()
	}
	if n != 2 {
		t.Errorf("point count = %d", n)
	}
}

func TestErrorRateWellSeparated(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	cs := []*cluster.Cluster{
		gaussCluster(rng, 25, 3, linalg.Vector{0, 0, 0}, 0.5),
		gaussCluster(rng, 25, 3, linalg.Vector{10, 10, 10}, 0.5),
	}
	if e := ErrorRate(cs, Options{Scheme: cluster.FullInverse}); e > 0.02 {
		t.Errorf("error rate %v for well-separated clusters, want ≈0", e)
	}
}

func TestErrorRateOverlapping(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	cs := []*cluster.Cluster{
		gaussCluster(rng, 25, 3, linalg.Vector{0, 0, 0}, 1),
		gaussCluster(rng, 25, 3, linalg.Vector{0.5, 0, 0}, 1),
	}
	e := ErrorRate(cs, Options{Scheme: cluster.FullInverse})
	if e < 0.1 {
		t.Errorf("error rate %v for heavily overlapping clusters, want high", e)
	}
	if e > 1 {
		t.Errorf("error rate %v out of range", e)
	}
}

// Theorem 1 property: the classification decision is invariant under
// invertible linear transforms with the full-inverse scheme.
func TestClassificationLinearInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	for trial := 0; trial < 20; trial++ {
		a := gaussCluster(rng, 15, 3, linalg.Vector{0, 0, 0}, 1)
		b := gaussCluster(rng, 15, 3, linalg.Vector{3, 1, -2}, 1)
		cl := New([]*cluster.Cluster{a, b}, Options{Scheme: cluster.FullInverse})

		A := linalg.Identity(3).Scale(1.5)
		for i := range A.Data {
			A.Data[i] += 0.4 * rng.NormFloat64()
		}
		if math.Abs(A.Det()) < 0.3 {
			continue
		}
		ta := transform(a, A)
		tb := transform(b, A)
		tcl := New([]*cluster.Cluster{ta, tb}, Options{Scheme: cluster.FullInverse})

		for probe := 0; probe < 10; probe++ {
			x := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
			k1, _ := cl.Best(x)
			k2, _ := tcl.Best(A.MulVec(x))
			if k1 != k2 {
				t.Fatalf("trial %d: classification changed under linear transform", trial)
			}
		}
	}
}

func transform(c *cluster.Cluster, A *linalg.Matrix) *cluster.Cluster {
	out := cluster.New(c.Dim())
	for _, p := range c.Points {
		out.Add(cluster.Point{ID: p.ID, Vec: A.MulVec(p.Vec), Score: p.Score})
	}
	return out
}

func TestNewPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New(nil, Options{})
}

func TestRadiusForWidensSmallClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	small := gaussCluster(rng, 6, 3, linalg.Vector{0, 0, 0}, 1)
	big := gaussCluster(rng, 500, 3, linalg.Vector{10, 0, 0}, 1)
	cl := New([]*cluster.Cluster{small, big}, Options{Alpha: 0.05})

	rSmall := cl.RadiusFor(0)
	rBig := cl.RadiusFor(1)
	if rSmall <= rBig {
		t.Errorf("small-cluster radius %v <= big-cluster radius %v", rSmall, rBig)
	}
	// Large n converges to the χ² radius.
	if math.Abs(rBig-cl.Radius())/cl.Radius() > 0.05 {
		t.Errorf("big-cluster radius %v far from χ² %v", rBig, cl.Radius())
	}
	// Degenerate cluster (n <= p+1) gets the generous fallback.
	tiny := cluster.FromPoint(cluster.Point{Vec: linalg.Vector{5, 5, 5}, Score: 1})
	cl2 := New([]*cluster.Cluster{tiny, big}, Options{Alpha: 0.05})
	if got := cl2.RadiusFor(0); got != 4*cl2.Radius() {
		t.Errorf("degenerate radius = %v, want %v", got, 4*cl2.Radius())
	}
}

func TestPredictiveRadiusCoverage(t *testing.T) {
	// A new point from the same population must fall inside the
	// predictive radius ≈ 95% of the time even when the cluster is small
	// — the finite-sample correction the plain χ² radius lacks.
	rng := rand.New(rand.NewSource(41))
	inside, total := 0, 0
	for trial := 0; trial < 300; trial++ {
		c := gaussCluster(rng, 8, 3, linalg.Vector{0, 0, 0}, 1)
		cl := New([]*cluster.Cluster{c}, Options{Alpha: 0.05, Scheme: cluster.FullInverse})
		x := linalg.Vector{rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()}
		total++
		if cl.InsideRadius(0, x) {
			inside++
		}
	}
	rate := float64(inside) / float64(total)
	if rate < 0.88 {
		t.Errorf("predictive radius coverage = %v, want ≈0.95", rate)
	}
}
