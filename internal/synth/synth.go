// Package synth generates the synthetic datasets of the paper's Section 5:
// the uniform cube of Example 3 (Fig. 5), the 3-cluster Gaussian data in
// ℝ¹⁶ with varying inter-cluster distance and spherical/elliptical shape
// (Figs. 14-17), and the size-30 cluster pairs with same/different means
// behind Tables 2-3 and the Q-Q plots of Figs. 18-19.
package synth

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// Shape selects the synthetic data geometry: z ~ N(0, I) (sphere) or
// y = A z with COV(y) = AA' (ellipsoid), per Section 5.
type Shape int

const (
	// Spherical draws from N(center, I).
	Spherical Shape = iota
	// Elliptical applies a fixed anisotropic linear transform A to
	// spherical data (including the cluster centers), so elliptical data
	// is exactly a linear image of spherical data — the setting in which
	// Theorem 1 predicts identical algorithm quality.
	Elliptical
)

// String implements fmt.Stringer.
func (s Shape) String() string {
	if s == Spherical {
		return "spherical"
	}
	return "elliptical"
}

// UniformCube draws n points uniformly from the axis-aligned cube
// [lo, hi]^dim — Example 3 uses 10,000 points in (-2, 2)³.
func UniformCube(rng *rand.Rand, n, dim int, lo, hi float64) []linalg.Vector {
	out := make([]linalg.Vector, n)
	for i := range out {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = lo + rng.Float64()*(hi-lo)
		}
		out[i] = v
	}
	return out
}

// LabeledPoint is a synthetic point with its generating cluster's label.
type LabeledPoint struct {
	Vec   linalg.Vector
	Label int
}

// ClusterSpec describes a Gaussian mixture for the classification
// experiments.
type ClusterSpec struct {
	Dim              int // ambient dimension (paper: 16)
	NumClusters      int // paper: 3
	PointsPerCluster int
	InterDist        float64 // pairwise distance between cluster centers (paper: 0.5-2.5)
	Shape            Shape
}

// RandomOrthonormal draws k mutually orthonormal directions in ℝ^dim by
// Gram-Schmidt over Gaussian vectors. It panics for k > dim.
func RandomOrthonormal(rng *rand.Rand, dim, k int) []linalg.Vector {
	if k > dim {
		panic("synth: need k <= dim orthonormal directions")
	}
	out := make([]linalg.Vector, 0, k)
	for len(out) < k {
		v := make(linalg.Vector, dim)
		for i := range v {
			v[i] = rng.NormFloat64()
		}
		for _, q := range out {
			v.AddScaled(-v.Dot(q), q)
		}
		n := v.Norm()
		if n < 1e-8 {
			continue // rare near-dependence: redraw
		}
		out = append(out, v.Scale(1/n))
	}
	return out
}

// spectrumVariances is the eigen-spectrum of the elliptical population
// covariance, shaped to reproduce the paper's variation-ratio column
// (Tables 2-3): the first three components carry ≈94% of the variance and
// the remaining mass is spread thinly, so PCA to 12/9/6/3 covers
// ≈0.99/0.97/0.95/0.94 of the total variation.
func spectrumVariances(dim int) linalg.Vector {
	v := make(linalg.Vector, dim)
	head := []float64{8, 4, 2.5}
	for i := range v {
		if i < len(head) && i < dim {
			v[i] = head[i]
		} else {
			v[i] = 0.07
		}
	}
	return v
}

// ellipticalTransform returns the fixed anisotropic transform
// A = Q diag(√λ) with Q a random rotation, so COV(Az) = Q diag(λ) Q' has
// exactly the spectrum above with arbitrary (non-axis-aligned)
// orientation — the general ellipsoid case the paper's elliptical
// experiments exercise.
func ellipticalTransform(rng *rand.Rand, dim int) *linalg.Matrix {
	lambdas := spectrumVariances(dim)
	q := RandomOrthonormal(rng, dim, dim)
	a := linalg.NewMatrix(dim, dim)
	for col, qc := range q {
		s := math.Sqrt(lambdas[col])
		for row := 0; row < dim; row++ {
			a.Set(row, col, s*qc[row])
		}
	}
	return a
}

// equidistantCenters returns k centers with all pairwise distances equal
// to d, along RANDOM orthonormal directions: c_i = (d/√2) q_i. Random
// directions matter — they give the cluster separation components in
// every principal direction, so PCA truncation genuinely discards
// separation information (the effect Figs. 14-17 measure).
func equidistantCenters(rng *rand.Rand, k, dim int, d float64) []linalg.Vector {
	qs := RandomOrthonormal(rng, dim, k)
	out := make([]linalg.Vector, k)
	for i, q := range qs {
		out[i] = q.Scale(d / math.Sqrt2)
	}
	return out
}

// GaussianClusters draws the mixture described by spec. For Elliptical
// shape the entire spherical dataset (centers included) is mapped through
// one fixed transform A, so the elliptical dataset is a linear image of a
// spherical one with the same labels.
func GaussianClusters(rng *rand.Rand, spec ClusterSpec) []LabeledPoint {
	centers := equidistantCenters(rng, spec.NumClusters, spec.Dim, spec.InterDist)
	pts := make([]LabeledPoint, 0, spec.NumClusters*spec.PointsPerCluster)
	for label, c := range centers {
		for i := 0; i < spec.PointsPerCluster; i++ {
			v := make(linalg.Vector, spec.Dim)
			for d := range v {
				v[d] = c[d] + rng.NormFloat64()
			}
			pts = append(pts, LabeledPoint{Vec: v, Label: label})
		}
	}
	if spec.Shape == Elliptical {
		a := ellipticalTransform(rng, spec.Dim)
		for i := range pts {
			pts[i].Vec = a.MulVec(pts[i].Vec)
		}
	}
	return pts
}

// PairSpec describes the two-cluster samples behind Tables 2-3 and
// Figs. 18-19.
type PairSpec struct {
	Dim      int     // paper: 16, then PCA to 12/9/6/3
	N        int     // points per cluster (paper: 30)
	SameMean bool    // H0 true (Table 2) vs false (Table 3)
	MeanDist float64 // center separation when SameMean is false
	Shape    Shape
}

// ClusterPair draws one pair of clusters per spec. Both clusters share
// the population covariance (the T² assumption); when SameMean is false
// the second center is MeanDist away along a random direction.
func ClusterPair(rng *rand.Rand, spec PairSpec) (a, b []linalg.Vector) {
	offset := linalg.NewVector(spec.Dim)
	if !spec.SameMean {
		dir := make(linalg.Vector, spec.Dim)
		for i := range dir {
			dir[i] = rng.NormFloat64()
		}
		n := dir.Norm()
		if n == 0 {
			dir[0], n = 1, 1
		}
		offset = dir.Scale(spec.MeanDist / n)
	}
	draw := func(center linalg.Vector) []linalg.Vector {
		out := make([]linalg.Vector, spec.N)
		for i := range out {
			v := make(linalg.Vector, spec.Dim)
			for d := range v {
				v[d] = center[d] + rng.NormFloat64()
			}
			out[i] = v
		}
		return out
	}
	a = draw(linalg.NewVector(spec.Dim))
	b = draw(offset)
	if spec.Shape == Elliptical {
		t := ellipticalTransform(rng, spec.Dim)
		for i := range a {
			a[i] = t.MulVec(a[i])
		}
		for i := range b {
			b[i] = t.MulVec(b[i])
		}
	}
	return a, b
}

// CountWithin returns how many points lie within radius (Euclidean) of
// any of the given centers — the acceptance rule of Example 3, where
// points within 1.0 of either cube corner are "relevant".
func CountWithin(points []linalg.Vector, centers []linalg.Vector, radius float64) int {
	r2 := radius * radius
	count := 0
	for _, p := range points {
		for _, c := range centers {
			if p.SqDist(c) <= r2 {
				count++
				break
			}
		}
	}
	return count
}
