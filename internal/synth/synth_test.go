package synth

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestUniformCubeBoundsAndCount(t *testing.T) {
	rng := rand.New(rand.NewSource(70))
	pts := UniformCube(rng, 1000, 3, -2, 2)
	if len(pts) != 1000 {
		t.Fatalf("len = %d", len(pts))
	}
	for _, p := range pts {
		for _, x := range p {
			if x < -2 || x > 2 {
				t.Fatalf("point out of cube: %v", p)
			}
		}
	}
}

func TestExample3PointCount(t *testing.T) {
	// Paper Example 3: 10,000 uniform points in (-2,2)³; points within
	// 1.0 of (-1,-1,-1) or (1,1,1) number 820. Expected count =
	// 2 · 10000 · (4π/3)/64 ≈ 1309·... let's use the exact math:
	// sphere volume 4π/3 ≈ 4.19, cube volume 64, fraction per sphere
	// 0.0654 → 654 per sphere, 1309 for two. The paper reports 820,
	// implying partial sphere clipping/overlap in their data; we assert
	// the statistical expectation for OUR generator: 1309 ± 5σ (σ≈35).
	rng := rand.New(rand.NewSource(71))
	pts := UniformCube(rng, 10000, 3, -2, 2)
	centers := []linalg.Vector{{-1, -1, -1}, {1, 1, 1}}
	got := CountWithin(pts, centers, 1.0)
	expected := 2 * 10000 * (4 * math.Pi / 3) / 64
	if math.Abs(float64(got)-expected) > 175 {
		t.Errorf("retrieved %d, statistical expectation %.0f", got, expected)
	}
}

func TestGaussianClustersLabelsAndSeparation(t *testing.T) {
	rng := rand.New(rand.NewSource(72))
	spec := ClusterSpec{Dim: 16, NumClusters: 3, PointsPerCluster: 100, InterDist: 2.5, Shape: Spherical}
	pts := GaussianClusters(rng, spec)
	if len(pts) != 300 {
		t.Fatalf("len = %d", len(pts))
	}
	// Per-label means must be ≈ the simplex centers (pairwise distance 2.5).
	means := make([]linalg.Vector, 3)
	counts := make([]int, 3)
	for i := range means {
		means[i] = linalg.NewVector(16)
	}
	for _, p := range pts {
		means[p.Label].AddScaled(1, p.Vec)
		counts[p.Label]++
	}
	for i := range means {
		if counts[i] != 100 {
			t.Fatalf("label %d has %d points", i, counts[i])
		}
		means[i] = means[i].Scale(1.0 / 100)
	}
	for i := 0; i < 3; i++ {
		for j := i + 1; j < 3; j++ {
			d := means[i].Dist(means[j])
			if math.Abs(d-2.5) > 0.6 {
				t.Errorf("centers %d-%d at distance %v, want ≈2.5", i, j, d)
			}
		}
	}
}

func TestEllipticalIsAnisotropic(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	spec := ClusterSpec{Dim: 8, NumClusters: 1, PointsPerCluster: 3000, InterDist: 1, Shape: Elliptical}
	pts := GaussianClusters(rng, spec)
	// Per-dimension variance must vary by at least ~5x.
	vars := make([]float64, 8)
	mean := linalg.NewVector(8)
	for _, p := range pts {
		mean.AddScaled(1, p.Vec)
	}
	mean = mean.Scale(1 / float64(len(pts)))
	for _, p := range pts {
		for d := range vars {
			dd := p.Vec[d] - mean[d]
			vars[d] += dd * dd
		}
	}
	minV, maxV := math.Inf(1), 0.0
	for _, v := range vars {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV/minV < 5 {
		t.Errorf("elliptical data nearly spherical: var ratio %v", maxV/minV)
	}
}

func TestSimplexCentersPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for k > dim")
		}
	}()
	GaussianClusters(rand.New(rand.NewSource(1)), ClusterSpec{Dim: 2, NumClusters: 3, PointsPerCluster: 1, InterDist: 1})
}

func TestClusterPairSameMean(t *testing.T) {
	rng := rand.New(rand.NewSource(74))
	a, b := ClusterPair(rng, PairSpec{Dim: 16, N: 30, SameMean: true, Shape: Spherical})
	if len(a) != 30 || len(b) != 30 {
		t.Fatalf("sizes %d %d", len(a), len(b))
	}
	ma, mb := meanOf(a), meanOf(b)
	// Same population: means within sampling error (σ/√30 per dim ≈ 0.18;
	// 16-dim distance ≈ 0.18·√(2·16) ≈ 1.0 typical).
	if d := ma.Dist(mb); d > 2.5 {
		t.Errorf("same-mean pair means %v apart", d)
	}
}

func TestClusterPairDifferentMean(t *testing.T) {
	rng := rand.New(rand.NewSource(75))
	a, b := ClusterPair(rng, PairSpec{Dim: 16, N: 30, SameMean: false, MeanDist: 5, Shape: Spherical})
	ma, mb := meanOf(a), meanOf(b)
	if d := ma.Dist(mb); math.Abs(d-5) > 2 {
		t.Errorf("different-mean pair means %v apart, want ≈5", d)
	}
}

func meanOf(xs []linalg.Vector) linalg.Vector {
	m := linalg.NewVector(xs[0].Dim())
	for _, x := range xs {
		m.AddScaled(1, x)
	}
	return m.Scale(1 / float64(len(xs)))
}

func TestCountWithin(t *testing.T) {
	pts := []linalg.Vector{{0, 0}, {1, 0}, {3, 0}}
	centers := []linalg.Vector{{0, 0}}
	if got := CountWithin(pts, centers, 1.5); got != 2 {
		t.Errorf("CountWithin = %d", got)
	}
	// A point near two centers counts once.
	two := []linalg.Vector{{0, 0}, {0.5, 0}}
	if got := CountWithin([]linalg.Vector{{0.25, 0}}, two, 1); got != 1 {
		t.Errorf("double-counting: %d", got)
	}
}

func TestShapeString(t *testing.T) {
	if Spherical.String() != "spherical" || Elliptical.String() != "elliptical" {
		t.Error("Shape.String mismatch")
	}
}
