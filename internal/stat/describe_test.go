package stat

import (
	"math"
	"sort"
	"testing"
)

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	approx(t, "Mean", Mean(xs), 5, 1e-15)
	approx(t, "Variance", Variance(xs), 4, 1e-15)
	approx(t, "StdDev", StdDev(xs), 2, 1e-15)
	approx(t, "SampleVariance", SampleVariance(xs), 32.0/7, 1e-12)
}

func TestEmptyInputs(t *testing.T) {
	if Mean(nil) != 0 || Variance(nil) != 0 || Skewness(nil) != 0 {
		t.Error("empty inputs must return 0")
	}
	if SampleVariance([]float64{1}) != 0 {
		t.Error("single-element sample variance must be 0")
	}
	min, max := MinMax(nil)
	if !math.IsInf(min, 1) || !math.IsInf(max, -1) {
		t.Error("MinMax(nil) must return (+Inf, -Inf)")
	}
}

func TestSkewness(t *testing.T) {
	// Symmetric data has zero third moment.
	approx(t, "Skewness symmetric", Skewness([]float64{-1, 0, 1}), 0, 1e-15)
	// Right-skewed data has positive skewness.
	if s := Skewness([]float64{0, 0, 0, 10}); s <= 0 {
		t.Errorf("right-skewed data must have positive skewness, got %v", s)
	}
	// Shift invariance: skew(x + c) = skew(x).
	xs := []float64{1, 2, 2, 3, 9}
	shifted := make([]float64, len(xs))
	for i, x := range xs {
		shifted[i] = x + 100
	}
	approx(t, "Skewness shift-invariant", Skewness(shifted), Skewness(xs), 1e-9)
}

func TestMinMax(t *testing.T) {
	min, max := MinMax([]float64{3, -1, 4, 1, 5})
	if min != -1 || max != 5 {
		t.Errorf("MinMax = %v, %v", min, max)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	sort.Float64s(xs)
	approx(t, "median", Quantile(xs, 0.5), 3, 1e-15)
	approx(t, "min", Quantile(xs, 0), 1, 1e-15)
	approx(t, "max", Quantile(xs, 1), 5, 1e-15)
	approx(t, "interpolated", Quantile(xs, 0.125), 1.5, 1e-15)
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("Quantile(nil) must be NaN")
	}
}
