package stat

import (
	"math/rand"

	"repro/internal/linalg"
)

// MVNSampler draws samples from a multivariate normal distribution
// N(mean, cov) via the Cholesky factor of the covariance. It backs the
// synthetic cluster generators of Section 5 (spherical z ~ N(0, I) and
// elliptical y = Az with COV(y) = AA').
type MVNSampler struct {
	mean linalg.Vector
	chol *linalg.Matrix // lower-triangular L with cov = L L'
}

// NewMVNSampler builds a sampler for N(mean, cov). cov must be symmetric
// positive definite.
func NewMVNSampler(mean linalg.Vector, cov *linalg.Matrix) (*MVNSampler, error) {
	l, err := cov.Cholesky()
	if err != nil {
		return nil, err
	}
	return &MVNSampler{mean: mean.Clone(), chol: l}, nil
}

// NewMVNSamplerFromTransform builds a sampler for y = mean + A z with
// z ~ N(0, I), i.e. COV(y) = A A'. This mirrors the paper's elliptical
// synthetic-data construction directly, without refactoring through the
// covariance.
func NewMVNSamplerFromTransform(mean linalg.Vector, a *linalg.Matrix) *MVNSampler {
	return &MVNSampler{mean: mean.Clone(), chol: a.Clone()}
}

// Dim returns the dimensionality of the sampler.
func (s *MVNSampler) Dim() int { return len(s.mean) }

// Sample draws one vector using rng.
func (s *MVNSampler) Sample(rng *rand.Rand) linalg.Vector {
	n := len(s.mean)
	z := make(linalg.Vector, n)
	for i := range z {
		z[i] = rng.NormFloat64()
	}
	out := s.chol.MulVec(z)
	for i := range out {
		out[i] += s.mean[i]
	}
	return out
}

// SampleN draws n vectors.
func (s *MVNSampler) SampleN(rng *rand.Rand, n int) []linalg.Vector {
	out := make([]linalg.Vector, n)
	for i := range out {
		out[i] = s.Sample(rng)
	}
	return out
}

// RandomF draws a value distributed as the paper's Equation (20):
// random F_{d1,d2} = (χ²_{d1}/ ... )/(χ²_{d2}/ ...) built from sums of
// squared N(0,1) variables. The paper's Eq. 20 omits the conventional
// per-degree normalization (it literally writes Σx²/Σy²); we follow the
// convention F = (χ²_{d1}/d1)/(χ²_{d2}/d2) so the values match the
// F-distribution quantiles used elsewhere in Section 5, and expose the
// raw ratio via RandomChiSquareRatio for completeness.
func RandomF(rng *rand.Rand, d1, d2 int) float64 {
	num := chiSquareDraw(rng, d1) / float64(d1)
	den := chiSquareDraw(rng, d2) / float64(d2)
	return num / den
}

// RandomChiSquareRatio draws Σ_{i<=d1} x_i² / Σ_{i<=d2} y_i² with
// x, y ~ N(0,1), the literal form of the paper's Equation (20).
func RandomChiSquareRatio(rng *rand.Rand, d1, d2 int) float64 {
	return chiSquareDraw(rng, d1) / chiSquareDraw(rng, d2)
}

func chiSquareDraw(rng *rand.Rand, df int) float64 {
	var s float64
	for i := 0; i < df; i++ {
		x := rng.NormFloat64()
		s += x * x
	}
	return s
}
