package stat

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (tol %v)", name, got, want, tol)
	}
}

func TestGammaPKnown(t *testing.T) {
	// P(1, x) = 1 - e^-x (exponential CDF).
	for _, x := range []float64{0.1, 0.5, 1, 2, 5, 10} {
		approx(t, "GammaP(1,x)", GammaP(1, x), 1-math.Exp(-x), 1e-12)
	}
	// P(0.5, x) = erf(sqrt(x)).
	for _, x := range []float64{0.25, 1, 4} {
		approx(t, "GammaP(0.5,x)", GammaP(0.5, x), math.Erf(math.Sqrt(x)), 1e-12)
	}
}

func TestGammaPQComplement(t *testing.T) {
	for _, a := range []float64{0.5, 1, 2.5, 10, 50} {
		for _, x := range []float64{0.1, 1, 5, 20, 100} {
			if s := GammaP(a, x) + GammaQ(a, x); math.Abs(s-1) > 1e-12 {
				t.Errorf("P+Q = %v for a=%v x=%v", s, a, x)
			}
		}
	}
}

func TestGammaPEdges(t *testing.T) {
	if GammaP(2, 0) != 0 {
		t.Error("GammaP(a,0) != 0")
	}
	if !math.IsNaN(GammaP(-1, 1)) || !math.IsNaN(GammaP(1, -1)) {
		t.Error("invalid args must yield NaN")
	}
	if got := GammaP(3, 1e6); math.Abs(got-1) > 1e-12 {
		t.Errorf("GammaP(3, large) = %v", got)
	}
}

func TestBetaIncKnown(t *testing.T) {
	// I_x(1,1) = x (uniform CDF).
	for _, x := range []float64{0, 0.25, 0.5, 0.75, 1} {
		approx(t, "BetaInc(1,1,x)", BetaInc(1, 1, x), x, 1e-12)
	}
	// I_x(2,2) = x²(3-2x).
	for _, x := range []float64{0.1, 0.3, 0.5, 0.9} {
		approx(t, "BetaInc(2,2,x)", BetaInc(2, 2, x), x*x*(3-2*x), 1e-12)
	}
	// Symmetry: I_x(a,b) = 1 - I_{1-x}(b,a).
	for _, x := range []float64{0.2, 0.6} {
		approx(t, "BetaInc symmetry", BetaInc(3, 5, x), 1-BetaInc(5, 3, 1-x), 1e-12)
	}
}

func TestBetaIncMonotone(t *testing.T) {
	prev := 0.0
	for x := 0.0; x <= 1.0001; x += 0.01 {
		v := BetaInc(2.5, 4.5, math.Min(x, 1))
		if v < prev-1e-12 {
			t.Fatalf("BetaInc not monotone at x=%v: %v < %v", x, v, prev)
		}
		prev = v
	}
}

func TestLnBeta(t *testing.T) {
	// B(2, 3) = 1/12.
	approx(t, "LnBeta(2,3)", LnBeta(2, 3), math.Log(1.0/12), 1e-12)
	// B(0.5, 0.5) = π.
	approx(t, "LnBeta(.5,.5)", LnBeta(0.5, 0.5), math.Log(math.Pi), 1e-12)
}

// Property: P(a, x) is a CDF in x — within [0,1] and nondecreasing.
func TestPropGammaPBounds(t *testing.T) {
	f := func(a, x float64) bool {
		a = 0.1 + math.Abs(math.Mod(a, 50))
		x = math.Abs(math.Mod(x, 200))
		p := GammaP(a, x)
		return p >= -1e-12 && p <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
