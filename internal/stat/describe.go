package stat

import "math"

// Mean returns the arithmetic mean of xs (0 for empty input).
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs (divisor n).
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs))
}

// SampleVariance returns the unbiased sample variance (divisor n-1).
func SampleVariance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d
	}
	return s / float64(len(xs)-1)
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// Skewness returns the standardized third moment of xs, as used by the
// color-moment feature (mean, standard deviation, skewness per channel).
// It is defined as the signed cube root convention used by Stricker &
// Orengo's color moments: s = cbrt(E[(x-μ)³]).
func Skewness(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := Mean(xs)
	var s float64
	for _, x := range xs {
		d := x - m
		s += d * d * d
	}
	return math.Cbrt(s / float64(len(xs)))
}

// MinMax returns the minimum and maximum of xs. For empty input it
// returns (+Inf, -Inf), which composes correctly with iterative merging.
func MinMax(xs []float64) (min, max float64) {
	min, max = math.Inf(1), math.Inf(-1)
	for _, x := range xs {
		if x < min {
			min = x
		}
		if x > max {
			max = x
		}
	}
	return min, max
}

// Quantile returns the q-quantile of xs (0<=q<=1) using linear
// interpolation over the sorted copy of the data.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if q <= 0 {
		return sorted[0]
	}
	if q >= 1 {
		return sorted[n-1]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := lo + 1
	if hi >= n {
		return sorted[n-1]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}
