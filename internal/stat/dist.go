package stat

import "math"

// NormalCDF returns the standard normal cumulative distribution Φ(x).
func NormalCDF(x float64) float64 {
	return 0.5 * math.Erfc(-x/math.Sqrt2)
}

// NormalQuantile returns Φ⁻¹(p) for p in (0, 1), using the
// Acklam/Wichura-style rational approximation refined by one Newton step.
func NormalQuantile(p float64) float64 {
	if p <= 0 {
		return math.Inf(-1)
	}
	if p >= 1 {
		return math.Inf(1)
	}
	// Beasley-Springer-Moro style initial estimate.
	x := bsmQuantile(p)
	// One Halley refinement against the exact CDF.
	for i := 0; i < 3; i++ {
		e := NormalCDF(x) - p
		pdf := math.Exp(-0.5*x*x) / math.Sqrt(2*math.Pi)
		if pdf == 0 {
			break
		}
		u := e / pdf
		x -= u / (1 + x*u/2)
	}
	return x
}

func bsmQuantile(p float64) float64 {
	a := [...]float64{-3.969683028665376e+01, 2.209460984245205e+02,
		-2.759285104469687e+02, 1.383577518672690e+02,
		-3.066479806614716e+01, 2.506628277459239e+00}
	b := [...]float64{-5.447609879822406e+01, 1.615858368580409e+02,
		-1.556989798598866e+02, 6.680131188771972e+01,
		-1.328068155288572e+01}
	c := [...]float64{-7.784894002430293e-03, -3.223964580411365e-01,
		-2.400758277161838e+00, -2.549732539343734e+00,
		4.374664141464968e+00, 2.938163982698783e+00}
	d := [...]float64{7.784695709041462e-03, 3.224671290700398e-01,
		2.445134137142996e+00, 3.754408661907416e+00}
	const plow, phigh = 0.02425, 1 - 0.02425
	switch {
	case p < plow:
		q := math.Sqrt(-2 * math.Log(p))
		return (((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	case p > phigh:
		q := math.Sqrt(-2 * math.Log(1-p))
		return -(((((c[0]*q+c[1])*q+c[2])*q+c[3])*q+c[4])*q + c[5]) /
			((((d[0]*q+d[1])*q+d[2])*q+d[3])*q + 1)
	default:
		q := p - 0.5
		r := q * q
		return (((((a[0]*r+a[1])*r+a[2])*r+a[3])*r+a[4])*r + a[5]) * q /
			(((((b[0]*r+b[1])*r+b[2])*r+b[3])*r+b[4])*r + 1)
	}
}

// ChiSquareCDF returns P(X <= x) for X ~ χ²_df.
func ChiSquareCDF(x float64, df float64) float64 {
	if x <= 0 {
		return 0
	}
	return GammaP(df/2, x/2)
}

// ChiSquareQuantile returns the p-quantile of the χ²_df distribution —
// the paper's effective radius χ²_p(α) uses the (1-α) quantile
// (Lemma 1: for significance level α, 100(1-α)% of the data falls inside
// the ellipsoid of radius χ²_p at that quantile).
func ChiSquareQuantile(p float64, df float64) float64 {
	switch {
	case df <= 0 || math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	// Wilson-Hilferty initial estimate.
	z := NormalQuantile(p)
	t := 2.0 / (9 * df)
	x := df * math.Pow(1-t+z*math.Sqrt(t), 3)
	if x <= 0 {
		x = 1e-10
	}
	return invertCDF(p, x, func(v float64) float64 { return ChiSquareCDF(v, df) })
}

// FCDF returns P(X <= x) for X ~ F(d1, d2).
func FCDF(x, d1, d2 float64) float64 {
	if x <= 0 {
		return 0
	}
	return BetaInc(d1/2, d2/2, d1*x/(d1*x+d2))
}

// FQuantile returns the p-quantile of the F(d1, d2) distribution. The
// paper's critical value uses F_{p, m_i+m_j-p-1}(α) as "the upper
// 100(1-α)th percentile", i.e. FQuantile(1-α, d1, d2).
func FQuantile(p, d1, d2 float64) float64 {
	switch {
	case d1 <= 0 || d2 <= 0 || math.IsNaN(p):
		return math.NaN()
	case p <= 0:
		return 0
	case p >= 1:
		return math.Inf(1)
	}
	// Initial estimate from chi-square ratio heuristic.
	x := ChiSquareQuantile(p, d1) / d1
	if d2 > 2 {
		x *= d2 / (d2 - 2) // scale toward the F mean
	}
	if x <= 0 || math.IsNaN(x) || math.IsInf(x, 0) {
		x = 1
	}
	return invertCDF(p, x, func(v float64) float64 { return FCDF(v, d1, d2) })
}

// StudentTCDF returns P(X <= x) for X ~ t_df. Included because Hotelling's
// T² reduces to a squared t statistic when p = 1, which the tests exploit.
func StudentTCDF(x, df float64) float64 {
	if df <= 0 {
		return math.NaN()
	}
	ib := BetaInc(df/2, 0.5, df/(df+x*x))
	if x >= 0 {
		return 1 - ib/2
	}
	return ib / 2
}

// invertCDF solves cdf(x) = p for x > 0 given a monotone CDF and a
// positive initial estimate, by bracketing plus bisection refined with
// Newton-free secant steps. Robust for every distribution in this package.
func invertCDF(p, x0 float64, cdf func(float64) float64) float64 {
	lo, hi := 0.0, x0
	// Grow hi until it brackets p.
	for i := 0; i < 200 && cdf(hi) < p; i++ {
		lo = hi
		hi *= 2
		if hi > 1e300 {
			return math.Inf(1)
		}
	}
	// Bisection to convergence.
	for i := 0; i < 200; i++ {
		mid := 0.5 * (lo + hi)
		if mid == lo || mid == hi {
			break
		}
		if cdf(mid) < p {
			lo = mid
		} else {
			hi = mid
		}
		if hi-lo <= 1e-12*math.Max(1, hi) {
			break
		}
	}
	return 0.5 * (lo + hi)
}
