package stat

import (
	"math"
	"math/rand"
	"testing"
)

func TestNormalCDFKnown(t *testing.T) {
	approx(t, "Φ(0)", NormalCDF(0), 0.5, 1e-15)
	approx(t, "Φ(1.96)", NormalCDF(1.959963984540054), 0.975, 1e-9)
	approx(t, "Φ(-1)", NormalCDF(-1), 0.15865525393145707, 1e-12)
}

func TestNormalQuantileRoundTrip(t *testing.T) {
	for _, p := range []float64{0.001, 0.01, 0.025, 0.1, 0.5, 0.9, 0.975, 0.99, 0.999} {
		x := NormalQuantile(p)
		approx(t, "Φ(Φ⁻¹(p))", NormalCDF(x), p, 1e-9)
	}
	if !math.IsInf(NormalQuantile(0), -1) || !math.IsInf(NormalQuantile(1), 1) {
		t.Error("quantile edges must be ±Inf")
	}
}

func TestChiSquareCDFKnown(t *testing.T) {
	// χ²_2 is Exp(1/2): CDF = 1 - e^{-x/2}.
	for _, x := range []float64{0.5, 1, 3, 10} {
		approx(t, "χ²₂ CDF", ChiSquareCDF(x, 2), 1-math.Exp(-x/2), 1e-12)
	}
	// Textbook: χ²₁(0.95 quantile) = 3.841, χ²₁₀(0.95) = 18.307.
	approx(t, "χ²₁ 95%", ChiSquareQuantile(0.95, 1), 3.841458820694124, 1e-6)
	approx(t, "χ²₁₀ 95%", ChiSquareQuantile(0.95, 10), 18.307038053275146, 1e-6)
	approx(t, "χ²₃ 99%", ChiSquareQuantile(0.99, 3), 11.344866730144373, 1e-6)
}

func TestChiSquareQuantileRoundTrip(t *testing.T) {
	for _, df := range []float64{1, 2, 3, 6, 9, 12, 16, 50} {
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.95, 0.99} {
			x := ChiSquareQuantile(p, df)
			approx(t, "χ² roundtrip", ChiSquareCDF(x, df), p, 1e-9)
		}
	}
}

func TestFCDFKnown(t *testing.T) {
	// F(d1, d2) with x=1 and d1=d2 gives CDF 0.5 by symmetry.
	for _, d := range []float64{1, 3, 7, 20} {
		approx(t, "F(d,d) at 1", FCDF(1, d, d), 0.5, 1e-12)
	}
	// Textbook 95th percentiles: F(1,10)=4.9646, F(5,10)=3.3258, F(12,48)≈1.96.
	approx(t, "F₁,₁₀ 95%", FQuantile(0.95, 1, 10), 4.964602743730711, 1e-5)
	approx(t, "F₅,₁₀ 95%", FQuantile(0.95, 5, 10), 3.3258345042899543, 1e-5)
	// The paper's Table 2 quantile-F for dim 12, n=60 (F_{12,48}) is 1.96.
	got := FQuantile(0.95, 12, 48)
	if math.Abs(got-1.96) > 0.01 {
		t.Errorf("F₁₂,₄₈ 95%% = %v, paper reports 1.96", got)
	}
}

func TestFQuantileRoundTrip(t *testing.T) {
	for _, d1 := range []float64{1, 3, 12} {
		for _, d2 := range []float64{5, 17, 48} {
			for _, p := range []float64{0.05, 0.5, 0.95, 0.99} {
				x := FQuantile(p, d1, d2)
				approx(t, "F roundtrip", FCDF(x, d1, d2), p, 1e-8)
			}
		}
	}
}

func TestStudentTVsF(t *testing.T) {
	// t²_df ~ F(1, df): P(|T|<=x) = P(F <= x²).
	for _, df := range []float64{3, 10, 30} {
		for _, x := range []float64{0.5, 1, 2} {
			twoSided := StudentTCDF(x, df) - StudentTCDF(-x, df)
			approx(t, "t² vs F", twoSided, FCDF(x*x, 1, df), 1e-10)
		}
	}
}

func TestFQuantileMatchesEmpirical(t *testing.T) {
	// Empirical check: 95th percentile of RandomF draws ≈ FQuantile(0.95).
	rng := rand.New(rand.NewSource(42))
	const n = 20000
	draws := make([]float64, n)
	for i := range draws {
		draws[i] = RandomF(rng, 12, 48)
	}
	sortFloats(draws)
	emp := Quantile(draws, 0.95)
	want := FQuantile(0.95, 12, 48)
	if math.Abs(emp-want) > 0.08 {
		t.Errorf("empirical 95th pct = %v, analytic = %v", emp, want)
	}
}

func TestChiSquareQuantileMonotone(t *testing.T) {
	prev := 0.0
	for p := 0.05; p < 1; p += 0.05 {
		x := ChiSquareQuantile(p, 6)
		if x <= prev {
			t.Fatalf("quantile not increasing at p=%v", p)
		}
		prev = x
	}
}

func sortFloats(xs []float64) {
	// Insertion-free: reuse sort from stdlib via a tiny shim to avoid an
	// extra import block churn in tests.
	quickSort(xs, 0, len(xs)-1)
}

func quickSort(xs []float64, lo, hi int) {
	for lo < hi {
		p := xs[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for xs[i] < p {
				i++
			}
			for xs[j] > p {
				j--
			}
			if i <= j {
				xs[i], xs[j] = xs[j], xs[i]
				i++
				j--
			}
		}
		if j-lo < hi-i {
			quickSort(xs, lo, j)
			lo = i
		} else {
			quickSort(xs, i, hi)
			hi = j
		}
	}
}

func TestDistributionEdges(t *testing.T) {
	if ChiSquareCDF(-1, 3) != 0 {
		t.Error("χ² CDF of negative must be 0")
	}
	if !math.IsNaN(ChiSquareQuantile(0.5, -1)) || !math.IsNaN(ChiSquareQuantile(math.NaN(), 3)) {
		t.Error("invalid χ² quantile args must be NaN")
	}
	if ChiSquareQuantile(0, 3) != 0 || !math.IsInf(ChiSquareQuantile(1, 3), 1) {
		t.Error("χ² quantile bounds")
	}
	if FCDF(-2, 3, 4) != 0 {
		t.Error("F CDF of negative must be 0")
	}
	if !math.IsNaN(FQuantile(0.5, 0, 4)) || !math.IsNaN(FQuantile(0.5, 3, -1)) {
		t.Error("invalid F quantile args must be NaN")
	}
	if FQuantile(0, 3, 4) != 0 || !math.IsInf(FQuantile(1, 3, 4), 1) {
		t.Error("F quantile bounds")
	}
	if !math.IsNaN(StudentTCDF(0, -1)) {
		t.Error("invalid t df must be NaN")
	}
	if GammaQ(2, 0) != 1 {
		t.Error("GammaQ(a, 0) must be 1")
	}
	if !math.IsNaN(GammaQ(-1, 1)) {
		t.Error("invalid GammaQ args must be NaN")
	}
	// GammaQ in the series branch (x < a+1).
	approx(t, "GammaQ series", GammaQ(5, 1), 1-GammaP(5, 1), 1e-12)
}
