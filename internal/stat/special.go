// Package stat implements the statistical machinery the Qcluster paper
// relies on: the chi-square distribution (effective radius, Lemma 1), the
// F distribution (Hotelling's T² critical value, Eq. 16), the normal
// distribution, descriptive statistics and multivariate-normal sampling
// for the synthetic experiments of Section 5.
package stat

import (
	"math"
)

// Epsilon used to terminate continued-fraction and series evaluations.
const convergeEps = 1e-14

// maxIter bounds the special-function iteration counts.
const maxIter = 500

// LnGamma returns ln Γ(x) for x > 0.
func LnGamma(x float64) float64 {
	v, _ := math.Lgamma(x)
	return v
}

// GammaP returns the regularized lower incomplete gamma function
// P(a, x) = γ(a, x)/Γ(a) for a > 0, x >= 0.
func GammaP(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 0
	case x < a+1:
		return gammaPSeries(a, x)
	default:
		return 1 - gammaQContinuedFraction(a, x)
	}
}

// GammaQ returns the regularized upper incomplete gamma function
// Q(a, x) = 1 - P(a, x).
func GammaQ(a, x float64) float64 {
	switch {
	case x < 0 || a <= 0:
		return math.NaN()
	case x == 0:
		return 1
	case x < a+1:
		return 1 - gammaPSeries(a, x)
	default:
		return gammaQContinuedFraction(a, x)
	}
}

// gammaPSeries evaluates P(a,x) by its power series (x < a+1).
func gammaPSeries(a, x float64) float64 {
	ap := a
	sum := 1.0 / a
	del := sum
	for i := 0; i < maxIter; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*convergeEps {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-LnGamma(a))
}

// gammaQContinuedFraction evaluates Q(a,x) by Lentz's continued fraction
// (x >= a+1).
func gammaQContinuedFraction(a, x float64) float64 {
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i <= maxIter; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < convergeEps {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-LnGamma(a)) * h
}

// LnBeta returns ln B(a, b).
func LnBeta(a, b float64) float64 {
	return LnGamma(a) + LnGamma(b) - LnGamma(a+b)
}

// BetaInc returns the regularized incomplete beta function I_x(a, b)
// for a, b > 0 and x in [0, 1].
func BetaInc(a, b, x float64) float64 {
	switch {
	case a <= 0 || b <= 0 || x < 0 || x > 1:
		return math.NaN()
	case x == 0:
		return 0
	case x == 1:
		return 1
	}
	front := math.Exp(a*math.Log(x) + b*math.Log(1-x) - LnBeta(a, b))
	if x < (a+1)/(a+b+2) {
		return front * betaCF(a, b, x) / a
	}
	return 1 - front*betaCF(b, a, 1-x)/b
}

// betaCF evaluates the continued fraction for BetaInc (Lentz's method).
func betaCF(a, b, x float64) float64 {
	const tiny = 1e-300
	qab := a + b
	qap := a + 1
	qam := a - 1
	c := 1.0
	d := 1 - qab*x/qap
	if math.Abs(d) < tiny {
		d = tiny
	}
	d = 1 / d
	h := d
	for m := 1; m <= maxIter; m++ {
		fm := float64(m)
		m2 := 2 * fm
		// Even step.
		aa := fm * (b - fm) * x / ((qam + m2) * (a + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		h *= d * c
		// Odd step.
		aa = -(a + fm) * (qab + fm) * x / ((a + m2) * (qap + m2))
		d = 1 + aa*d
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = 1 + aa/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < convergeEps {
			break
		}
	}
	return h
}
