package stat

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestMVNSamplerMoments(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	mean := linalg.Vector{1, -2}
	cov := linalg.FromRows([]linalg.Vector{{2, 0.5}, {0.5, 1}})
	s, err := NewMVNSampler(mean, cov)
	if err != nil {
		t.Fatal(err)
	}
	const n = 60000
	sum := linalg.NewVector(2)
	sumSq := linalg.NewMatrix(2, 2)
	for i := 0; i < n; i++ {
		x := s.Sample(rng)
		d := x.Sub(mean)
		sum.AddScaled(1, x)
		sumSq.AddScaledInPlace(1, d.Outer(d))
	}
	empMean := sum.Scale(1.0 / n)
	empCov := sumSq.Scale(1.0 / n)
	if !empMean.Equal(mean, 0.03) {
		t.Errorf("empirical mean = %v", empMean)
	}
	if !empCov.Equal(cov, 0.05) {
		t.Errorf("empirical cov = \n%v", empCov)
	}
}

func TestMVNSamplerNotPD(t *testing.T) {
	cov := linalg.FromRows([]linalg.Vector{{1, 1}, {1, 1}}) // rank 1
	if _, err := NewMVNSampler(linalg.Vector{0, 0}, cov); err == nil {
		t.Error("expected error for non-PD covariance")
	}
}

func TestMVNSamplerFromTransform(t *testing.T) {
	// y = A z should have covariance A A' — the paper's elliptical
	// synthetic-data construction.
	rng := rand.New(rand.NewSource(9))
	a := linalg.FromRows([]linalg.Vector{{2, 0}, {1, 1}})
	want := a.Mul(a.T())
	s := NewMVNSamplerFromTransform(linalg.Vector{0, 0}, a)
	const n = 60000
	cov := linalg.NewMatrix(2, 2)
	for i := 0; i < n; i++ {
		x := s.Sample(rng)
		cov.AddScaledInPlace(1, x.Outer(x))
	}
	cov = cov.Scale(1.0 / n)
	if !cov.Equal(want, 0.1) {
		t.Errorf("empirical cov = \n%v\nwant\n%v", cov, want)
	}
}

func TestSampleN(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s, _ := NewMVNSampler(linalg.Vector{0}, linalg.Identity(1))
	xs := s.SampleN(rng, 10)
	if len(xs) != 10 {
		t.Fatalf("len = %d", len(xs))
	}
	if s.Dim() != 1 {
		t.Fatalf("Dim = %d", s.Dim())
	}
}

func TestRandomFMean(t *testing.T) {
	// E[F(d1, d2)] = d2/(d2-2) for d2 > 2.
	rng := rand.New(rand.NewSource(31))
	const n = 30000
	var sum float64
	for i := 0; i < n; i++ {
		sum += RandomF(rng, 6, 20)
	}
	got := sum / n
	want := 20.0 / 18
	if math.Abs(got-want) > 0.05 {
		t.Errorf("mean RandomF = %v, want ≈ %v", got, want)
	}
}

func TestRandomChiSquareRatioPositive(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for i := 0; i < 1000; i++ {
		if v := RandomChiSquareRatio(rng, 12, 48); v <= 0 || math.IsNaN(v) {
			t.Fatalf("draw %d: %v", i, v)
		}
	}
}
