// Package pca implements the dimension-reduction machinery of the paper's
// Section 4.4: sample principal components, variance-ratio component
// selection (the 1-ε rule) and the simplified quadratic forms of
// Hotelling's T² and the distances in principal-component space
// (Eq. 17-19).
package pca

import (
	"fmt"

	"repro/internal/linalg"
)

// PCA holds a fitted principal-component transform.
type PCA struct {
	Mean        linalg.Vector  // sample mean x̄
	Components  *linalg.Matrix // G: columns are eigenvectors of S, descending λ
	Eigenvalues linalg.Vector  // λ_1 >= ... >= λ_p >= 0
	dim         int
}

// Fit computes the sample principal components of the data rows
// (Sec. 4.4.2): the eigendecomposition S = G L G' of the sample
// covariance of X.
func Fit(rows []linalg.Vector) (*PCA, error) {
	if len(rows) == 0 {
		return nil, fmt.Errorf("pca: no data")
	}
	p := rows[0].Dim()
	mean := linalg.NewVector(p)
	for _, r := range rows {
		if r.Dim() != p {
			return nil, fmt.Errorf("pca: ragged data")
		}
		mean.AddScaled(1, r)
	}
	mean = mean.Scale(1 / float64(len(rows)))

	cov := linalg.NewMatrix(p, p)
	for _, r := range rows {
		d := r.Sub(mean)
		cov.AddScaledInPlace(1, d.Outer(d))
	}
	den := float64(len(rows) - 1)
	if den < 1 {
		den = 1
	}
	cov = cov.Scale(1 / den)

	vals, vecs := linalg.EigenSym(cov)
	// Clamp tiny negative eigenvalues from roundoff.
	for i, v := range vals {
		if v < 0 {
			vals[i] = 0
		}
	}
	return &PCA{Mean: mean, Components: vecs, Eigenvalues: vals, dim: p}, nil
}

// Restore rebuilds a PCA from previously fitted parameters (for snapshot
// deserialization).
func Restore(mean linalg.Vector, components *linalg.Matrix, eigenvalues linalg.Vector) *PCA {
	return &PCA{Mean: mean, Components: components, Eigenvalues: eigenvalues, dim: mean.Dim()}
}

// Dim returns the original data dimensionality p.
func (p *PCA) Dim() int { return p.dim }

// VarianceRatio returns (λ_1 + ... + λ_k) / Σλ, the proportion of total
// variation covered by the first k components.
func (p *PCA) VarianceRatio(k int) float64 {
	if k <= 0 {
		return 0
	}
	if k > p.dim {
		k = p.dim
	}
	var top, total float64
	for i, v := range p.Eigenvalues {
		total += v
		if i < k {
			top += v
		}
	}
	if total == 0 {
		return 1
	}
	return top / total
}

// ComponentsFor returns the smallest k whose variance ratio is at least
// 1-ε — the paper's selection rule with ε <= 0.15 (Sec. 4.4.4).
func (p *PCA) ComponentsFor(epsilon float64) int {
	target := 1 - epsilon
	for k := 1; k <= p.dim; k++ {
		if p.VarianceRatio(k) >= target {
			return k
		}
	}
	return p.dim
}

// Project maps x to its first k principal components:
// z = G_k' (x - x̄)  (Sec. 4.4.1-4.4.2).
func (p *PCA) Project(x linalg.Vector, k int) linalg.Vector {
	if k <= 0 || k > p.dim {
		panic(fmt.Sprintf("pca: invalid component count %d (dim %d)", k, p.dim))
	}
	d := x.Sub(p.Mean)
	z := make(linalg.Vector, k)
	for j := 0; j < k; j++ {
		var s float64
		for i := 0; i < p.dim; i++ {
			s += p.Components.At(i, j) * d[i]
		}
		z[j] = s
	}
	return z
}

// ProjectAll maps every row to k components.
func (p *PCA) ProjectAll(rows []linalg.Vector, k int) []linalg.Vector {
	out := make([]linalg.Vector, len(rows))
	for i, r := range rows {
		out[i] = p.Project(r, k)
	}
	return out
}

// Reconstruct maps a k-component representation back to the original
// space: x̂ = x̄ + G_k z. Reconstruction error is governed by the
// discarded eigenvalues.
func (p *PCA) Reconstruct(z linalg.Vector) linalg.Vector {
	k := z.Dim()
	if k > p.dim {
		panic("pca: reconstruction dimension exceeds original")
	}
	x := p.Mean.Clone()
	for j := 0; j < k; j++ {
		for i := 0; i < p.dim; i++ {
			x[i] += p.Components.At(i, j) * z[j]
		}
	}
	return x
}

// T2PC computes Hotelling's T² in principal-component space using the
// paper's simplified quadratic form (Eq. 18-19):
// T² ≈ C · Σ_j (z̄_xj - z̄_yj)² / λ_j over the first k components, with
// C = m_x m_y / (m_x + m_y). Components with λ_j = 0 are skipped (they
// carry no variation).
func (p *PCA) T2PC(zx, zy linalg.Vector, mx, my float64) float64 {
	if zx.Dim() != zy.Dim() {
		panic("pca: projected dimension mismatch")
	}
	c := mx * my / (mx + my)
	var s float64
	for j := range zx {
		l := p.Eigenvalues[j]
		if l <= 0 {
			continue
		}
		d := zx[j] - zy[j]
		s += d * d / l
	}
	return c * s
}

// QuadFormPC computes the simplified per-cluster quadratic distance in
// PC space: Σ_j (z_xj - z_cj)² / λ_j, the PC-space form of Eq. 1 noted
// after Eq. 19.
func (p *PCA) QuadFormPC(zx, zc linalg.Vector) float64 {
	if zx.Dim() != zc.Dim() {
		panic("pca: projected dimension mismatch")
	}
	var s float64
	for j := range zx {
		l := p.Eigenvalues[j]
		if l <= 0 {
			continue
		}
		d := zx[j] - zc[j]
		s += d * d / l
	}
	return s
}
