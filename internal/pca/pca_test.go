package pca

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

// anisotropicData draws n points with variances 9, 1, 0.01 along axes.
func anisotropicData(rng *rand.Rand, n int) []linalg.Vector {
	rows := make([]linalg.Vector, n)
	for i := range rows {
		rows[i] = linalg.Vector{
			3 * rng.NormFloat64(),
			rng.NormFloat64(),
			0.1 * rng.NormFloat64(),
		}
	}
	return rows
}

func TestFitRecoversAxes(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	p, err := Fit(anisotropicData(rng, 5000))
	if err != nil {
		t.Fatal(err)
	}
	// Eigenvalues ≈ 9, 1, 0.01 in order.
	if math.Abs(p.Eigenvalues[0]-9) > 0.7 || math.Abs(p.Eigenvalues[1]-1) > 0.15 {
		t.Errorf("eigenvalues = %v", p.Eigenvalues)
	}
	// First component aligned with axis 0 (up to sign).
	if got := math.Abs(p.Components.At(0, 0)); got < 0.99 {
		t.Errorf("first PC not aligned with dominant axis: |g00| = %v", got)
	}
}

func TestVarianceRatioAndSelection(t *testing.T) {
	p := &PCA{Eigenvalues: linalg.Vector{8, 1, 0.5, 0.5}, dim: 4}
	if got := p.VarianceRatio(1); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("ratio(1) = %v", got)
	}
	if got := p.VarianceRatio(4); got != 1 {
		t.Errorf("ratio(4) = %v", got)
	}
	if got := p.VarianceRatio(0); got != 0 {
		t.Errorf("ratio(0) = %v", got)
	}
	// 1-ε = 0.85 needs 2 components (0.8 < 0.85 <= 0.9).
	if got := p.ComponentsFor(0.15); got != 2 {
		t.Errorf("ComponentsFor(0.15) = %v", got)
	}
	if got := p.ComponentsFor(0); got != 4 {
		t.Errorf("ComponentsFor(0) = %v", got)
	}
}

func TestProjectionDecorrelates(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	// Correlated 2-D data.
	rows := make([]linalg.Vector, 3000)
	for i := range rows {
		x := rng.NormFloat64()
		rows[i] = linalg.Vector{x + 0.1*rng.NormFloat64(), x + 0.1*rng.NormFloat64()}
	}
	p, _ := Fit(rows)
	z := p.ProjectAll(rows, 2)
	// Empirical covariance of z must be ≈ diag(λ).
	var c01, c00, c11 float64
	for _, zi := range z {
		c00 += zi[0] * zi[0]
		c11 += zi[1] * zi[1]
		c01 += zi[0] * zi[1]
	}
	n := float64(len(z) - 1)
	c00, c11, c01 = c00/n, c11/n, c01/n
	if math.Abs(c01) > 0.02*math.Sqrt(c00*c11+1e-12)+1e-6 {
		t.Errorf("projected components correlated: cov01 = %v", c01)
	}
	if math.Abs(c00-p.Eigenvalues[0]) > 0.05*p.Eigenvalues[0] {
		t.Errorf("var(z1) = %v, λ1 = %v", c00, p.Eigenvalues[0])
	}
}

func TestProjectReconstructRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	rows := anisotropicData(rng, 500)
	p, _ := Fit(rows)
	// Full-dimension round trip is exact.
	for i := 0; i < 10; i++ {
		x := rows[i]
		back := p.Reconstruct(p.Project(x, 3))
		if !back.Equal(x, 1e-9) {
			t.Fatalf("full round trip failed: %v -> %v", x, back)
		}
	}
	// k=1 reconstruction error is bounded by discarded variance on average.
	var errSq float64
	for _, x := range rows {
		back := p.Reconstruct(p.Project(x, 1))
		errSq += x.SqDist(back)
	}
	meanErr := errSq / float64(len(rows))
	discarded := p.Eigenvalues[1] + p.Eigenvalues[2]
	if meanErr > 1.5*discarded {
		t.Errorf("mean reconstruction error %v ≫ discarded variance %v", meanErr, discarded)
	}
}

func TestT2PCAgainstDirect(t *testing.T) {
	// Eq. 17: T² in full PC space equals T² in the original space when
	// S_pooled equals the PCA covariance. Construct that situation:
	// both "clusters" share the PCA covariance by sampling from the same
	// distribution, then compare the PC-space quadratic form against the
	// direct quadratic form with the same covariance.
	rng := rand.New(rand.NewSource(43))
	rows := anisotropicData(rng, 4000)
	p, _ := Fit(rows)

	xbar := linalg.Vector{0.5, -0.3, 0.05}
	ybar := linalg.Vector{-0.2, 0.4, -0.02}
	zx := p.Project(xbar, 3)
	zy := p.Project(ybar, 3)
	const mx, my = 30, 30
	got := p.T2PC(zx, zy, mx, my)

	// Direct: C (x̄-ȳ)' S⁻¹ (x̄-ȳ) with S the fitted covariance
	// reconstructed from eigenpairs.
	S := p.Components.Mul(linalg.Diag(p.Eigenvalues)).Mul(p.Components.T())
	inv, err := S.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	d := xbar.Sub(ybar)
	want := mx * my / (mx + my) * inv.QuadForm(d)
	if math.Abs(got-want) > 1e-6*want {
		t.Errorf("T2PC = %v, direct = %v", got, want)
	}
}

func TestQuadFormPCSkipsZeroEigenvalues(t *testing.T) {
	p := &PCA{Eigenvalues: linalg.Vector{2, 0}, dim: 2}
	got := p.QuadFormPC(linalg.Vector{1, 5}, linalg.Vector{0, 0})
	if math.Abs(got-0.5) > 1e-12 { // only (1-0)²/2
		t.Errorf("QuadFormPC = %v", got)
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := Fit(nil); err == nil {
		t.Error("Fit(nil) must error")
	}
	if _, err := Fit([]linalg.Vector{{1, 2}, {1}}); err == nil {
		t.Error("ragged data must error")
	}
	// Single row: zero covariance, still fits.
	p, err := Fit([]linalg.Vector{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.VarianceRatio(1) != 1 {
		t.Error("degenerate fit must report full variance coverage")
	}
}
