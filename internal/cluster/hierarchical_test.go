package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func twoBlobs(rng *rand.Rand, n int) []Point {
	ps := make([]Point, 0, 2*n)
	for i := 0; i < n; i++ {
		ps = append(ps, Point{
			ID:    i,
			Vec:   linalg.Vector{rng.NormFloat64() * 0.3, rng.NormFloat64() * 0.3},
			Score: 1,
		})
	}
	for i := 0; i < n; i++ {
		ps = append(ps, Point{
			ID:    n + i,
			Vec:   linalg.Vector{10 + rng.NormFloat64()*0.3, 10 + rng.NormFloat64()*0.3},
			Score: 1,
		})
	}
	return ps
}

func TestAgglomerateTargetCount(t *testing.T) {
	rng := rand.New(rand.NewSource(20))
	ps := twoBlobs(rng, 15)
	for _, link := range []Linkage{SingleLinkage, CompleteLinkage, AverageLinkage, CentroidLinkage} {
		cs := Agglomerate(ps, HierarchicalOptions{Linkage: link, TargetClusters: 2})
		if len(cs) != 2 {
			t.Fatalf("linkage %d: got %d clusters", link, len(cs))
		}
		// Each resulting cluster must be pure: all IDs < 15 or all >= 15.
		for _, c := range cs {
			low := c.Points[0].ID < 15
			for _, p := range c.Points {
				if (p.ID < 15) != low {
					t.Fatalf("linkage %d: mixed cluster", link)
				}
			}
		}
	}
}

func TestAgglomerateDistanceCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	ps := twoBlobs(rng, 10)
	// Cutoff between blob radius (~1) and blob separation (~14).
	cs := Agglomerate(ps, HierarchicalOptions{Linkage: CentroidLinkage, DistanceCutoff: 5})
	if len(cs) != 2 {
		t.Fatalf("got %d clusters, want 2", len(cs))
	}
}

func TestAgglomerateDegenerate(t *testing.T) {
	if out := Agglomerate(nil, HierarchicalOptions{}); out != nil {
		t.Error("nil input must give nil")
	}
	one := []Point{{Vec: linalg.Vector{1}, Score: 1}}
	if out := Agglomerate(one, HierarchicalOptions{TargetClusters: 1}); len(out) != 1 {
		t.Error("single point must give one cluster")
	}
}

func TestAgglomerateAllMergeWithoutBounds(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	ps := twoBlobs(rng, 5)
	cs := Agglomerate(ps, HierarchicalOptions{Linkage: CentroidLinkage})
	if len(cs) != 1 {
		t.Fatalf("unbounded agglomeration must give 1 cluster, got %d", len(cs))
	}
	if cs[0].N() != 10 {
		t.Fatalf("merged cluster has %d points", cs[0].N())
	}
}

func TestAutoCutoff(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	ps := twoBlobs(rng, 10)
	cut := AutoCutoff(ps, 0)
	if cut <= 0 {
		t.Fatalf("AutoCutoff = %v", cut)
	}
	// The automatic cutoff should separate the two far blobs.
	cs := Agglomerate(ps, HierarchicalOptions{Linkage: CentroidLinkage, DistanceCutoff: cut})
	if len(cs) < 2 {
		t.Errorf("auto cutoff %v merged the far blobs", cut)
	}
	if AutoCutoff(ps[:1], 2) != 0 {
		t.Error("cutoff for a single point must be 0")
	}
}

func TestAssignments(t *testing.T) {
	rng := rand.New(rand.NewSource(24))
	ps := twoBlobs(rng, 5)
	cs := Agglomerate(ps, HierarchicalOptions{Linkage: CentroidLinkage, TargetClusters: 2})
	ids := []int{0, 9, 42}
	as := Assignments(cs, ids)
	if as[0] < 0 || as[1] < 0 {
		t.Error("known IDs must be assigned")
	}
	if as[2] != -1 {
		t.Error("unknown ID must map to -1")
	}
	if len(Centroids(cs)) != 2 {
		t.Error("Centroids length mismatch")
	}
}
