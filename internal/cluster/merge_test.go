package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func TestMergeCollapsesSameMean(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	// Three overlapping clusters drawn from one population must merge.
	cs := []*Cluster{
		gaussCluster(rng, 20, 3, linalg.Vector{0, 0, 0}, 1),
		gaussCluster(rng, 20, 3, linalg.Vector{0, 0, 0}, 1),
		gaussCluster(rng, 20, 3, linalg.Vector{0, 0, 0}, 1),
	}
	out := Merge(cs, MergeOptions{Scheme: FullInverse, Alpha: 0.05})
	if len(out) != 1 {
		t.Errorf("same-population clusters: got %d clusters, want 1", len(out))
	}
}

func TestMergeKeepsDistantClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	cs := []*Cluster{
		gaussCluster(rng, 20, 3, linalg.Vector{0, 0, 0}, 0.5),
		gaussCluster(rng, 20, 3, linalg.Vector{10, 10, 10}, 0.5),
	}
	out := Merge(cs, MergeOptions{Scheme: FullInverse, Alpha: 0.05})
	if len(out) != 2 {
		t.Errorf("distant clusters: got %d clusters, want 2", len(out))
	}
}

func TestMergeRespectsMaxClusters(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	// Four well-separated clusters but a bound of 2: the α-relaxation
	// loop must force down to 2.
	cs := []*Cluster{
		gaussCluster(rng, 15, 2, linalg.Vector{0, 0}, 0.3),
		gaussCluster(rng, 15, 2, linalg.Vector{8, 0}, 0.3),
		gaussCluster(rng, 15, 2, linalg.Vector{0, 8}, 0.3),
		gaussCluster(rng, 15, 2, linalg.Vector{8, 8}, 0.3),
	}
	out := Merge(cs, MergeOptions{Scheme: FullInverse, Alpha: 0.05, MaxClusters: 2})
	if len(out) > 2 {
		t.Errorf("got %d clusters, want <= 2", len(out))
	}
}

func TestMergePreservesTotalWeightAndPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	cs := []*Cluster{
		gaussCluster(rng, 10, 2, linalg.Vector{0, 0}, 1),
		gaussCluster(rng, 12, 2, linalg.Vector{1, 0}, 1),
		gaussCluster(rng, 8, 2, linalg.Vector{20, 20}, 1),
	}
	wantW := TotalWeight(cs)
	wantN := 0
	for _, c := range cs {
		wantN += c.N()
	}
	out := Merge(cs, MergeOptions{Scheme: Diagonal, Alpha: 0.05})
	if got := TotalWeight(out); !almostEq(got, wantW, 1e-9) {
		t.Errorf("total weight changed: %v -> %v", wantW, got)
	}
	gotN := 0
	for _, c := range out {
		gotN += c.N()
	}
	if gotN != wantN {
		t.Errorf("point count changed: %d -> %d", wantN, gotN)
	}
}

func TestMergeDoesNotMutateInput(t *testing.T) {
	rng := rand.New(rand.NewSource(16))
	cs := []*Cluster{
		gaussCluster(rng, 10, 2, linalg.Vector{0, 0}, 1),
		gaussCluster(rng, 10, 2, linalg.Vector{0.2, 0}, 1),
	}
	before0 := cs[0].Mean.Clone()
	Merge(cs, MergeOptions{Scheme: Diagonal, Alpha: 0.05})
	if !cs[0].Mean.Equal(before0, 0) {
		t.Error("Merge mutated input cluster")
	}
}

func TestMergeSingletonsSmallSampleFallback(t *testing.T) {
	// Two singleton points far apart must remain separate under the
	// small-sample fallback; two coincident ones must merge.
	far := []*Cluster{
		FromPoint(Point{Vec: linalg.Vector{0, 0}, Score: 1}),
		FromPoint(Point{Vec: linalg.Vector{100, 100}, Score: 1}),
	}
	if out := Merge(far, MergeOptions{Scheme: Diagonal, Alpha: 0.05}); len(out) != 2 {
		t.Errorf("far singletons merged: %d clusters", len(out))
	}
	near := []*Cluster{
		FromPoint(Point{Vec: linalg.Vector{0, 0}, Score: 1}),
		FromPoint(Point{Vec: linalg.Vector{0, 0}, Score: 1}),
	}
	if out := Merge(near, MergeOptions{Scheme: Diagonal, Alpha: 0.05}); len(out) != 1 {
		t.Errorf("coincident singletons stayed apart: %d clusters", len(out))
	}
}

func TestMergeEmptyAndSingle(t *testing.T) {
	if out := Merge(nil, MergeOptions{}); len(out) != 0 {
		t.Error("nil input must give empty output")
	}
	one := []*Cluster{FromPoint(Point{Vec: linalg.Vector{1}, Score: 1})}
	if out := Merge(one, MergeOptions{}); len(out) != 1 {
		t.Error("single cluster must pass through")
	}
}
