// Package cluster implements the weighted cluster statistics at the heart
// of the Qcluster paper: relevance-score-weighted centroids and covariances
// (Definitions 1-2), the incremental merge formulas (Eq. 11-13), pooled
// covariances (Eq. 7 and 15), Hotelling's T² merge test (Definition 3,
// Eq. 16) and the hierarchical clustering used for the initial iteration
// (Sec. 4.1).
package cluster

import (
	"fmt"
	"math"

	"repro/internal/faultinject"
	"repro/internal/linalg"
)

// Scheme selects how inverse covariance matrices are estimated, mirroring
// the paper's two alternatives (Sec. 3.2): the full inverse-matrix scheme
// of MindReader and the diagonal-matrix scheme of MARS, which avoids the
// small-sample singularity problem and is the paper's default.
type Scheme int

const (
	// Diagonal keeps only the diagonal of the covariance and inverts it
	// elementwise (MARS-style). The paper's experiments select this
	// scheme for its far lower CPU cost (Fig. 6) at comparable quality.
	Diagonal Scheme = iota
	// FullInverse inverts the complete covariance matrix
	// (MindReader-style), regularizing the diagonal when singular.
	FullInverse
)

// String implements fmt.Stringer for benchmark/experiment labels.
func (s Scheme) String() string {
	switch s {
	case Diagonal:
		return "diagonal"
	case FullInverse:
		return "inverse"
	default:
		return fmt.Sprintf("Scheme(%d)", int(s))
	}
}

// Point is a relevance-scored feature vector: one relevant image marked by
// the user, carrying its relevance score v_ik and database identity.
type Point struct {
	ID    int           // database image id (or -1 for synthetic points)
	Vec   linalg.Vector // feature vector x_ik
	Score float64       // relevance score v_ik > 0
}

// Cluster is one query cluster C_i. It maintains the weighted first and
// second moments incrementally so that classification, merging and the
// distance functions all share the same statistics, exactly as the paper
// prescribes ("the same statistical measures are used at both the
// classification stage and the cluster-merging stage").
//
// Internally the second moment is kept as the *scatter* matrix
// Σ_k v_ik (x_ik - x̄_i)(x_ik - x̄_i)'   (Definition 2),
// from which both the paper's pooled covariances (Eq. 7, Eq. 15) and the
// sample covariance needed by the merge formula (Eq. 13) follow by
// normalization.
type Cluster struct {
	Points  []Point        // member points (retained for leave-one-out quality, Sec. 4.5)
	Mean    linalg.Vector  // weighted centroid x̄_i (Definition 1)
	Scatter *linalg.Matrix // weighted scatter S_i (Definition 2, unnormalized)
	Weight  float64        // m_i = Σ_k v_ik
}

// New returns an empty cluster of the given dimensionality.
func New(dim int) *Cluster {
	return &Cluster{
		Mean:    linalg.NewVector(dim),
		Scatter: linalg.NewMatrix(dim, dim),
	}
}

// FromPoint returns a singleton cluster seeded with p, as used when a new
// relevant image falls outside every effective radius (Algorithm 2 line 6).
func FromPoint(p Point) *Cluster {
	c := New(p.Vec.Dim())
	c.Add(p)
	return c
}

// FromPoints builds a cluster over the given points.
func FromPoints(ps []Point) *Cluster {
	if len(ps) == 0 {
		panic("cluster: FromPoints with no points")
	}
	c := New(ps[0].Vec.Dim())
	for _, p := range ps {
		c.Add(p)
	}
	return c
}

// Dim returns the feature dimensionality.
func (c *Cluster) Dim() int { return len(c.Mean) }

// N returns the number of member points n_i.
func (c *Cluster) N() int { return len(c.Points) }

// Add incorporates point p, updating the weighted mean and scatter with
// the standard rank-1 (West/Welford-style) weighted update, so a cluster
// never needs re-summation over its points.
func (c *Cluster) Add(p Point) {
	if p.Score <= 0 {
		panic("cluster: point score must be positive")
	}
	if len(p.Vec) != c.Dim() {
		panic("cluster: dimension mismatch")
	}
	c.Points = append(c.Points, p)
	wOld := c.Weight
	c.Weight += p.Score
	// delta = x - mean_old
	delta := p.Vec.Sub(c.Mean)
	// mean_new = mean_old + (v/W_new) delta
	c.Mean.AddScaled(p.Score/c.Weight, delta)
	// scatter_new = scatter_old + v * (x - mean_old)(x - mean_new)'
	// which equals scatter_old + v*(W_old/W_new) delta delta'.
	if wOld > 0 {
		c.Scatter.AddScaledInPlace(p.Score*wOld/c.Weight, delta.Outer(delta))
	}
}

// SampleCov returns the sample covariance S_i = scatter/(m_i - 1), the
// normalization under which the paper's merge formula (Eq. 13) is exact.
// For clusters with weight <= 1 it returns the zero matrix.
func (c *Cluster) SampleCov() *linalg.Matrix {
	if c.Weight <= 1 {
		return linalg.NewMatrix(c.Dim(), c.Dim())
	}
	return c.Scatter.Scale(1 / (c.Weight - 1))
}

// MergeStats returns the statistics of the cluster formed by combining a
// and b using only their summaries — the paper's Eq. 11-13 — without
// touching member points. The returned cluster carries the concatenated
// point set so later leave-one-out checks still work.
func MergeStats(a, b *Cluster) *Cluster {
	if a.Dim() != b.Dim() {
		panic("cluster: merge dimension mismatch")
	}
	m := New(a.Dim())
	m.Weight = a.Weight + b.Weight // Eq. 11
	// Eq. 12: weighted mean of means.
	m.Mean = a.Mean.Scale(a.Weight / m.Weight).Add(b.Mean.Scale(b.Weight / m.Weight))
	// Scatter form of Eq. 13: S_new = S_a + S_b +
	// (m_a m_b / m_new) (x̄_a - x̄_b)(x̄_a - x̄_b)'.
	d := a.Mean.Sub(b.Mean)
	m.Scatter = a.Scatter.Add(b.Scatter)
	m.Scatter.AddScaledInPlace(a.Weight*b.Weight/m.Weight, d.Outer(d))
	m.Points = make([]Point, 0, len(a.Points)+len(b.Points))
	m.Points = append(m.Points, a.Points...)
	m.Points = append(m.Points, b.Points...)
	return m
}

// InverseCov returns the S_i⁻¹ used by the per-cluster quadratic distance
// (Eq. 1) under the given scheme. The covariance normalization is the
// sample covariance; variances of degenerate dimensions are floored so the
// quadratic form stays finite (the regularization the paper cites from
// Zhou & Huang for the singularity problem).
func (c *Cluster) InverseCov(scheme Scheme) *linalg.Matrix {
	cov := c.SampleCov()
	return InverseOf(cov, scheme)
}

// InverseDiag returns, for the Diagonal scheme fast path, the elementwise
// inverse of the covariance diagonal as a vector.
func (c *Cluster) InverseDiag() linalg.Vector {
	cov := c.SampleCov()
	return InverseDiagOf(cov)
}

// varianceFloor returns the variance floor used for degenerate dimensions,
// scaled by the largest observed variance so that tight but non-degenerate
// clusters are left untouched.
func varianceFloor(diag linalg.Vector) float64 {
	var maxVar float64
	for _, v := range diag {
		if v > maxVar {
			maxVar = v
		}
	}
	if maxVar <= 0 {
		return 1 // all dimensions degenerate: fall back to Euclidean
	}
	return 1e-9 * maxVar
}

// InverseDiagOf returns the elementwise inverse of cov's diagonal with
// degenerate entries floored.
func InverseDiagOf(cov *linalg.Matrix) linalg.Vector {
	inv, _ := InverseDiagOfInfo(cov)
	return inv
}

// InverseDiagOfInfo is InverseDiagOf plus a degradation report: degraded
// is true when any diagonal entry was at the variance floor, i.e. the
// cluster's covariance was singular along at least one dimension and the
// distance falls back to a floored variance there.
func InverseDiagOfInfo(cov *linalg.Matrix) (inv linalg.Vector, degraded bool) {
	diag := cov.Diagonal()
	floor := varianceFloor(diag)
	inv = make(linalg.Vector, len(diag))
	for i, v := range diag {
		if v < floor {
			v = floor
			degraded = true
		}
		inv[i] = 1 / v
	}
	return inv, degraded
}

// InverseOf returns cov⁻¹ under the given scheme (diagonal-only or full,
// regularized when singular).
func InverseOf(cov *linalg.Matrix, scheme Scheme) *linalg.Matrix {
	inv, _ := InverseOfInfo(cov, scheme)
	return inv
}

// InverseOfInfo is InverseOf plus a degradation report: degraded is true
// when the covariance was singular and the inverse came from a fallback
// — a floored variance (either scheme) or the ridge-regularized inverse
// (full scheme). The faultinject.SingularCovariance hook forces the
// full-scheme ridge path for tests.
func InverseOfInfo(cov *linalg.Matrix, scheme Scheme) (inv *linalg.Matrix, degraded bool) {
	switch scheme {
	case Diagonal:
		d, degraded := InverseDiagOfInfo(cov)
		return linalg.Diag(d), degraded
	case FullInverse:
		// Floor fully-degenerate covariances the same way.
		diag := cov.Diagonal()
		floor := varianceFloor(diag)
		work := cov.Clone()
		floored := false
		for i := 0; i < work.Rows; i++ {
			if work.At(i, i) < floor {
				work.Set(i, i, floor)
				floored = true
			}
		}
		if faultinject.Enabled(faultinject.SingularCovariance) {
			return work.RegularizedInverse(1e-8), true
		}
		inv, regularized := work.InverseOrRegularizedInfo(1e-8)
		return inv, floored || regularized
	default:
		panic("cluster: unknown scheme")
	}
}

// Mahalanobis returns (x - x̄)' S⁻¹ (x - x̄) for this cluster under the
// given scheme — the quadratic distance of Eq. 1 and the effective-radius
// test of Lemma 1 share this form.
func (c *Cluster) Mahalanobis(x linalg.Vector, scheme Scheme) float64 {
	d := x.Sub(c.Mean)
	if scheme == Diagonal {
		inv := c.InverseDiag()
		var s float64
		for i := range d {
			s += d[i] * d[i] * inv[i]
		}
		return s
	}
	return c.InverseCov(FullInverse).QuadForm(d)
}

// Centroid returns a copy of the cluster centroid.
func (c *Cluster) Centroid() linalg.Vector { return c.Mean.Clone() }

// RecomputeFromPoints rebuilds Mean, Scatter and Weight by direct
// summation over Points. Used by tests to validate the incremental
// updates, and by leave-one-out quality measurement.
func (c *Cluster) RecomputeFromPoints() {
	dim := c.Dim()
	c.Weight = 0
	c.Mean = linalg.NewVector(dim)
	c.Scatter = linalg.NewMatrix(dim, dim)
	for _, p := range c.Points {
		c.Weight += p.Score
		c.Mean.AddScaled(p.Score, p.Vec)
	}
	if c.Weight == 0 {
		return
	}
	c.Mean = c.Mean.Scale(1 / c.Weight)
	for _, p := range c.Points {
		d := p.Vec.Sub(c.Mean)
		c.Scatter.AddScaledInPlace(p.Score, d.Outer(d))
	}
}

// WithoutPoint returns a new cluster over Points minus the point at index
// i, recomputed exactly. It backs the leave-one-out error rate of
// Sec. 4.5.
func (c *Cluster) WithoutPoint(i int) *Cluster {
	if i < 0 || i >= len(c.Points) {
		panic("cluster: WithoutPoint index out of range")
	}
	out := New(c.Dim())
	for j, p := range c.Points {
		if j == i {
			continue
		}
		out.Add(p)
	}
	return out
}

// TotalWeight sums the weights m_i over clusters (the Σm_i of Eq. 5).
func TotalWeight(cs []*Cluster) float64 {
	var s float64
	for _, c := range cs {
		s += c.Weight
	}
	return s
}

// NormalizedWeights returns w_i = m_i / Σ m_k (Sec. 4.2.1).
func NormalizedWeights(cs []*Cluster) []float64 {
	total := TotalWeight(cs)
	ws := make([]float64, len(cs))
	if total == 0 {
		return ws
	}
	for i, c := range cs {
		ws[i] = c.Weight / total
	}
	return ws
}

// Validate checks internal consistency; it returns an error describing the
// first violated invariant, or nil. Used by tests and debug builds.
func (c *Cluster) Validate() error {
	var w float64
	for _, p := range c.Points {
		if p.Score <= 0 {
			return fmt.Errorf("cluster: non-positive score %v", p.Score)
		}
		w += p.Score
	}
	if math.Abs(w-c.Weight) > 1e-9*math.Max(1, w) {
		return fmt.Errorf("cluster: weight %v != Σscores %v", c.Weight, w)
	}
	// Scatter must be symmetric PSD-ish: check symmetry and nonnegative diag.
	for i := 0; i < c.Scatter.Rows; i++ {
		if c.Scatter.At(i, i) < -1e-9 {
			return fmt.Errorf("cluster: negative variance at %d", i)
		}
		for j := i + 1; j < c.Scatter.Cols; j++ {
			if math.Abs(c.Scatter.At(i, j)-c.Scatter.At(j, i)) > 1e-6 {
				return fmt.Errorf("cluster: asymmetric scatter at (%d,%d)", i, j)
			}
		}
	}
	return nil
}
