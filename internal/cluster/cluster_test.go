package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
)

func randPoints(rng *rand.Rand, n, dim int, center linalg.Vector, spread float64) []Point {
	ps := make([]Point, n)
	for i := range ps {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = center[d] + spread*rng.NormFloat64()
		}
		ps[i] = Point{ID: i, Vec: v, Score: 1 + rng.Float64()*2}
	}
	return ps
}

func TestAddMatchesRecompute(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 30; trial++ {
		dim := 1 + rng.Intn(6)
		ps := randPoints(rng, 2+rng.Intn(20), dim, linalg.NewVector(dim), 2)
		c := FromPoints(ps)
		ref := &Cluster{Points: ps}
		ref.Mean = linalg.NewVector(dim)
		ref.Scatter = linalg.NewMatrix(dim, dim)
		ref.RecomputeFromPoints()
		if !c.Mean.Equal(ref.Mean, 1e-9) {
			t.Fatalf("trial %d: incremental mean %v != direct %v", trial, c.Mean, ref.Mean)
		}
		if !c.Scatter.Equal(ref.Scatter, 1e-7) {
			t.Fatalf("trial %d: incremental scatter != direct", trial)
		}
		if err := c.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestWeightedMeanDefinition(t *testing.T) {
	// Definition 1: x̄ = Σ v x / Σ v with hand-computed values.
	c := New(2)
	c.Add(Point{Vec: linalg.Vector{0, 0}, Score: 1})
	c.Add(Point{Vec: linalg.Vector{3, 6}, Score: 2})
	// mean = (1*0 + 2*3)/3, (1*0 + 2*6)/3 = (2, 4)
	if !c.Mean.Equal(linalg.Vector{2, 4}, 1e-12) {
		t.Errorf("Mean = %v", c.Mean)
	}
	if c.Weight != 3 {
		t.Errorf("Weight = %v", c.Weight)
	}
}

func TestScatterDefinition(t *testing.T) {
	// Definition 2 with equal scores: scatter = Σ (x-x̄)(x-x̄)'.
	c := New(1)
	c.Add(Point{Vec: linalg.Vector{1}, Score: 1})
	c.Add(Point{Vec: linalg.Vector{3}, Score: 1})
	// mean 2, scatter = (1-2)² + (3-2)² = 2
	if got := c.Scatter.At(0, 0); !almostEq(got, 2, 1e-12) {
		t.Errorf("scatter = %v", got)
	}
	// Sample covariance = scatter/(m-1) = 2.
	if got := c.SampleCov().At(0, 0); !almostEq(got, 2, 1e-12) {
		t.Errorf("sample cov = %v", got)
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Property (core paper claim, Eq. 11-13): merging two clusters via their
// summaries must give exactly the statistics of the union of their points.
func TestPropMergeStatsExact(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(5)
		a := FromPoints(randPoints(r, 1+r.Intn(10), dim, linalg.NewVector(dim), 1))
		bc := make(linalg.Vector, dim)
		for i := range bc {
			bc[i] = 3 * r.NormFloat64()
		}
		b := FromPoints(randPoints(r, 1+r.Intn(10), dim, bc, 1))

		merged := MergeStats(a, b)
		direct := New(dim)
		for _, p := range a.Points {
			direct.Add(p)
		}
		for _, p := range b.Points {
			direct.Add(p)
		}
		return merged.Mean.Equal(direct.Mean, 1e-8) &&
			merged.Scatter.Equal(direct.Scatter, 1e-6) &&
			almostEq(merged.Weight, direct.Weight, 1e-9)
	}
	cfg := &quick.Config{MaxCount: 50, Rand: rng}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func TestMergeStatsCommutative(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := FromPoints(randPoints(rng, 5, 3, linalg.Vector{0, 0, 0}, 1))
	b := FromPoints(randPoints(rng, 7, 3, linalg.Vector{4, 4, 4}, 1))
	ab, ba := MergeStats(a, b), MergeStats(b, a)
	if !ab.Mean.Equal(ba.Mean, 1e-12) || !ab.Scatter.Equal(ba.Scatter, 1e-9) {
		t.Error("MergeStats must be commutative in the statistics")
	}
}

func TestInverseCovSchemes(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := FromPoints(randPoints(rng, 30, 3, linalg.Vector{0, 0, 0}, 2))
	cov := c.SampleCov()

	// Diagonal scheme: product with Diag(cov) diag must be ~I on diagonal.
	dinv := c.InverseDiag()
	for i := 0; i < 3; i++ {
		if !almostEq(dinv[i]*cov.At(i, i), 1, 1e-9) {
			t.Errorf("diag inverse mismatch at %d", i)
		}
	}
	// Full scheme: cov · inv ≈ I.
	finv := c.InverseCov(FullInverse)
	if !cov.Mul(finv).Equal(linalg.Identity(3), 1e-6) {
		t.Error("full inverse round trip failed")
	}
}

func TestInverseCovDegenerate(t *testing.T) {
	// All points identical: zero covariance must still invert (floored).
	c := New(2)
	for i := 0; i < 5; i++ {
		c.Add(Point{Vec: linalg.Vector{1, 1}, Score: 1})
	}
	for _, scheme := range []Scheme{Diagonal, FullInverse} {
		inv := c.InverseCov(scheme)
		for _, v := range inv.Data {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("%v scheme produced non-finite inverse", scheme)
			}
		}
	}
	// Singleton cluster.
	s := FromPoint(Point{Vec: linalg.Vector{0, 0}, Score: 1})
	if d := s.Mahalanobis(linalg.Vector{1, 0}, Diagonal); math.IsNaN(d) {
		t.Error("singleton Mahalanobis must be finite")
	}
}

func TestMahalanobisAgainstKnown(t *testing.T) {
	// Two dims with variances 4 and 1 → inverse diag (0.25, 1).
	c := New(2)
	c.Add(Point{Vec: linalg.Vector{-2, -1}, Score: 1})
	c.Add(Point{Vec: linalg.Vector{2, 1}, Score: 1})
	// mean (0,0); scatter diag (8, 2); sample cov diag (8, 2) (m-1 = 1).
	got := c.Mahalanobis(linalg.Vector{4, 0}, Diagonal)
	if !almostEq(got, 2, 1e-9) { // 16/8 = 2
		t.Errorf("Mahalanobis = %v, want 2", got)
	}
}

func TestWithoutPoint(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	ps := randPoints(rng, 10, 3, linalg.Vector{0, 0, 0}, 1)
	c := FromPoints(ps)
	w := c.WithoutPoint(4)
	if w.N() != 9 {
		t.Fatalf("N = %d", w.N())
	}
	direct := New(3)
	for i, p := range ps {
		if i == 4 {
			continue
		}
		direct.Add(p)
	}
	if !w.Mean.Equal(direct.Mean, 1e-9) {
		t.Error("WithoutPoint statistics mismatch")
	}
}

func TestNormalizedWeights(t *testing.T) {
	a := FromPoint(Point{Vec: linalg.Vector{0}, Score: 1})
	b := FromPoint(Point{Vec: linalg.Vector{1}, Score: 3})
	ws := NormalizedWeights([]*Cluster{a, b})
	if !almostEq(ws[0], 0.25, 1e-12) || !almostEq(ws[1], 0.75, 1e-12) {
		t.Errorf("weights = %v", ws)
	}
	if tw := TotalWeight([]*Cluster{a, b}); tw != 4 {
		t.Errorf("TotalWeight = %v", tw)
	}
}

func TestAddRejectsBadInput(t *testing.T) {
	c := New(2)
	mustPanic(t, func() { c.Add(Point{Vec: linalg.Vector{1, 2}, Score: 0}) })
	mustPanic(t, func() { c.Add(Point{Vec: linalg.Vector{1}, Score: 1}) })
}

func mustPanic(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

// Property: MergeStats is associative in the statistics (up to floating
// point): merging (a+b)+c gives the same moments as a+(b+c).
func TestPropMergeStatsAssociative(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		dim := 1 + r.Intn(4)
		mk := func(base int) *Cluster {
			c := make(linalg.Vector, dim)
			for i := range c {
				c[i] = 3 * r.NormFloat64()
			}
			return FromPoints(randPoints(r, 1+r.Intn(8), dim, c, 1))
		}
		a, b, c := mk(0), mk(100), mk(200)
		left := MergeStats(MergeStats(a, b), c)
		right := MergeStats(a, MergeStats(b, c))
		return left.Mean.Equal(right.Mean, 1e-8) &&
			left.Scatter.Equal(right.Scatter, 1e-6) &&
			almostEq(left.Weight, right.Weight, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}
