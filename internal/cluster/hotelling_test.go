package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/stat"
)

// gaussCluster draws n unit-score points from N(center, scale² I).
func gaussCluster(rng *rand.Rand, n, dim int, center linalg.Vector, scale float64) *Cluster {
	c := New(dim)
	for i := 0; i < n; i++ {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = center[d] + scale*rng.NormFloat64()
		}
		c.Add(Point{ID: i, Vec: v, Score: 1})
	}
	return c
}

func TestT2SameMeanSmall(t *testing.T) {
	// Same-mean clusters: T² should usually be below c² at α=0.05.
	rng := rand.New(rand.NewSource(6))
	accept := 0
	const trials = 200
	for i := 0; i < trials; i++ {
		a := gaussCluster(rng, 30, 3, linalg.Vector{0, 0, 0}, 1)
		b := gaussCluster(rng, 30, 3, linalg.Vector{0, 0, 0}, 1)
		merge, _, _ := MergeTest(a, b, FullInverse, 0.05)
		if merge {
			accept++
		}
	}
	// Expect ≈95% accepted; allow slack.
	if rate := float64(accept) / trials; rate < 0.88 {
		t.Errorf("same-mean acceptance rate = %v, want ≈0.95", rate)
	}
}

func TestT2DifferentMeanRejected(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	rejected := 0
	const trials = 100
	for i := 0; i < trials; i++ {
		a := gaussCluster(rng, 30, 3, linalg.Vector{0, 0, 0}, 1)
		b := gaussCluster(rng, 30, 3, linalg.Vector{3, 3, 3}, 1)
		merge, t2, c2 := MergeTest(a, b, FullInverse, 0.05)
		if !merge {
			rejected++
		}
		if t2 < 0 || c2 < 0 {
			t.Fatalf("negative statistic: T²=%v c²=%v", t2, c2)
		}
	}
	if rejected < 98 {
		t.Errorf("distant clusters rejected %d/100 times, want ≈100", rejected)
	}
}

func TestT2NullDistributionMatchesF(t *testing.T) {
	// Under H0, T² (m-2)... : T² · (m-p-1)/(p(m-2)) ~ F(p, m-p-1).
	// Check the empirical 95th percentile of the scaled statistic.
	rng := rand.New(rand.NewSource(8))
	const trials, n, p = 2000, 30, 3
	vals := make([]float64, trials)
	for i := range vals {
		a := gaussCluster(rng, n, p, linalg.Vector{0, 0, 0}, 1)
		b := gaussCluster(rng, n, p, linalg.Vector{0, 0, 0}, 1)
		m := a.Weight + b.Weight
		scale := (m - float64(p) - 1) / (float64(p) * (m - 2))
		vals[i] = T2(a, b, FullInverse) * scale
	}
	sortF(vals)
	emp := stat.Quantile(vals, 0.95)
	want := stat.FQuantile(0.95, p, 2*n-p-1)
	if math.Abs(emp-want)/want > 0.12 {
		t.Errorf("empirical F 95th pct = %v, analytic = %v", emp, want)
	}
}

func sortF(xs []float64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

// Property (Theorem 1): T² is invariant under invertible linear
// transformations x → A x of the feature space.
func TestPropT2LinearInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		const dim = 3
		a := gaussCluster(r, 10, dim, linalg.Vector{0, 0, 0}, 1)
		b := gaussCluster(r, 12, dim, linalg.Vector{1, 2, 0}, 1.5)

		// Random well-conditioned transform A = Q + 2I.
		A := linalg.Identity(dim).Scale(2)
		for i := range A.Data {
			A.Data[i] += 0.5 * r.NormFloat64()
		}
		if math.Abs(A.Det()) < 0.5 {
			return true // skip ill-conditioned draws
		}
		ta, tb := transformCluster(a, A), transformCluster(b, A)
		orig := T2(a, b, FullInverse)
		trans := T2(ta, tb, FullInverse)
		return math.Abs(orig-trans) <= 1e-6*math.Max(1, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40, Rand: rng}); err != nil {
		t.Error(err)
	}
}

func transformCluster(c *Cluster, A *linalg.Matrix) *Cluster {
	out := New(c.Dim())
	for _, p := range c.Points {
		out.Add(Point{ID: p.ID, Vec: A.MulVec(p.Vec), Score: p.Score})
	}
	return out
}

// The diagonal scheme is NOT fully invariant (that is the price of
// avoiding the inverse); but it must be invariant under axis-aligned
// scaling, which is what matters for normalized feature components.
func TestT2DiagonalScaleInvariance(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	a := gaussCluster(rng, 15, 3, linalg.Vector{0, 0, 0}, 1)
	b := gaussCluster(rng, 15, 3, linalg.Vector{2, 0, 1}, 1)
	A := linalg.Diag(linalg.Vector{3, 0.25, 10})
	ta, tb := transformCluster(a, A), transformCluster(b, A)
	orig := T2(a, b, Diagonal)
	trans := T2(ta, tb, Diagonal)
	if math.Abs(orig-trans) > 1e-6*math.Max(1, orig) {
		t.Errorf("diagonal T² not scale-invariant: %v vs %v", orig, trans)
	}
}

func TestCriticalValueAgainstPaper(t *testing.T) {
	// Paper Tables 2-3: dim 12, clusters of size 30 (weight 30 each),
	// quantile-F = 1.96 at α=0.05 — i.e. F_{12,48}(0.05)≈1.96 and
	// c² = 12·58/47 · 1.96 ≈ 29.0.
	a := &Cluster{Weight: 30, Mean: linalg.NewVector(12), Scatter: linalg.NewMatrix(12, 12)}
	b := &Cluster{Weight: 30, Mean: linalg.NewVector(12), Scatter: linalg.NewMatrix(12, 12)}
	c2 := CriticalValue(a, b, 12, 0.05)
	f := stat.FQuantile(0.95, 12, 47)
	want := 12.0 * 58 / 47 * f
	if !almostEq(c2, want, 1e-9) {
		t.Errorf("c² = %v, want %v", c2, want)
	}
	if math.Abs(f-1.96) > 0.02 {
		t.Errorf("F quantile %v, paper reports ≈1.96", f)
	}
}

func TestCriticalValueSmallSample(t *testing.T) {
	a := &Cluster{Weight: 1, Mean: linalg.NewVector(3), Scatter: linalg.NewMatrix(3, 3)}
	b := &Cluster{Weight: 1, Mean: linalg.NewVector(3), Scatter: linalg.NewMatrix(3, 3)}
	if !math.IsInf(CriticalValue(a, b, 3, 0.05), 1) {
		t.Error("undefined F test must return +Inf")
	}
}

func TestPooledAllMatchesEq7(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	a := gaussCluster(rng, 10, 2, linalg.Vector{0, 0}, 1)
	b := gaussCluster(rng, 14, 2, linalg.Vector{5, 5}, 2)
	got := PooledAll([]*Cluster{a, b})
	// Eq. 7: [ (m_a-1)Sa + (m_b-1)Sb ] / (m_a + m_b - 2) with S the
	// sample covariances = scatter/(m-1), i.e. (scatter_a+scatter_b)/(m-2).
	want := a.Scatter.Add(b.Scatter).Scale(1 / (a.Weight + b.Weight - 2))
	if !got.Equal(want, 1e-9) {
		t.Error("PooledAll does not match Eq. 7")
	}
}
