package cluster

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
)

func gaussPoints(rng *rand.Rand, n int, cx, cy, spread float64, idBase int) []Point {
	ps := make([]Point, n)
	for i := range ps {
		ps[i] = Point{
			ID:    idBase + i,
			Vec:   linalg.Vector{cx + spread*rng.NormFloat64(), cy + spread*rng.NormFloat64()},
			Score: 1,
		}
	}
	return ps
}

func TestAgglomerateGapUnimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(100))
	pts := gaussPoints(rng, 25, 0, 0, 1, 0)
	cs := AgglomerateGap(pts, CentroidLinkage, 2)
	if len(cs) != 1 {
		t.Errorf("unimodal set split into %d clusters", len(cs))
	}
}

func TestAgglomerateGapBimodal(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	pts := gaussPoints(rng, 15, 0, 0, 0.3, 0)
	pts = append(pts, gaussPoints(rng, 15, 6, 0, 0.3, 100)...)
	cs := AgglomerateGap(pts, CentroidLinkage, 2)
	if len(cs) != 2 {
		t.Fatalf("bimodal set gave %d clusters", len(cs))
	}
	for _, c := range cs {
		left := c.Points[0].ID < 100
		for _, p := range c.Points {
			if (p.ID < 100) != left {
				t.Fatal("mixed cluster")
			}
		}
	}
}

func TestAgglomerateGapThreeModes(t *testing.T) {
	rng := rand.New(rand.NewSource(102))
	pts := gaussPoints(rng, 12, 0, 0, 0.3, 0)
	pts = append(pts, gaussPoints(rng, 12, 6, 0, 0.3, 100)...)
	pts = append(pts, gaussPoints(rng, 12, 0, 6, 0.3, 200)...)
	cs := AgglomerateGap(pts, CentroidLinkage, 2)
	if len(cs) != 3 {
		t.Errorf("three-mode set gave %d clusters", len(cs))
	}
}

func TestAgglomerateGapRobustToCoincidentPoints(t *testing.T) {
	// Two nearly coincident points produce a vanishing first merge
	// distance; the early-jump guard must not fragment the set.
	rng := rand.New(rand.NewSource(103))
	pts := gaussPoints(rng, 20, 0, 0, 1, 0)
	pts = append(pts, Point{ID: 999, Vec: pts[0].Vec.Clone(), Score: 1})
	cs := AgglomerateGap(pts, CentroidLinkage, 2)
	if len(cs) != 1 {
		t.Errorf("coincident pair caused %d clusters", len(cs))
	}
}

func TestAgglomerateGapTinyInputs(t *testing.T) {
	if out := AgglomerateGap(nil, CentroidLinkage, 2); out != nil {
		t.Error("nil input must give nil")
	}
	one := []Point{{Vec: linalg.Vector{0}, Score: 1}}
	if out := AgglomerateGap(one, CentroidLinkage, 2); len(out) != 1 {
		t.Error("single point must give one cluster")
	}
	two := []Point{
		{ID: 0, Vec: linalg.Vector{0, 0}, Score: 1},
		{ID: 1, Vec: linalg.Vector{9, 9}, Score: 1},
	}
	// Two points carry no dendrogram statistics: the gap rule merges
	// them (callers with tiny sets should use the statistical merge).
	out := AgglomerateGap(two, CentroidLinkage, 2)
	if len(out) != 1 {
		t.Errorf("two points gave %d clusters", len(out))
	}
}

func TestShrunkCov(t *testing.T) {
	rng := rand.New(rand.NewSource(104))
	c := gaussCluster(rng, 40, 2, linalg.Vector{0, 0}, 1)
	pooled := linalg.Diag(linalg.Vector{4, 4})

	// tau = 0: exactly the sample covariance.
	if !ShrunkCov(c, pooled, 0).Equal(c.SampleCov(), 1e-12) {
		t.Error("tau=0 must return the sample covariance")
	}
	// Heavy cluster: close to its own covariance.
	sh := ShrunkCov(c, pooled, 3)
	own := c.SampleCov()
	if d := sh.At(0, 0) - own.At(0, 0); d < 0 || d > 0.5 {
		t.Errorf("heavy-cluster shrinkage moved variance by %v", d)
	}
	// Singleton: exactly the pooled covariance (own weight mass = 0).
	s := FromPoint(Point{Vec: linalg.Vector{1, 1}, Score: 1})
	if !ShrunkCov(s, pooled, 3).Equal(pooled, 1e-12) {
		t.Error("singleton must inherit the pooled covariance")
	}
}

func TestMergeAtKeepsOrder(t *testing.T) {
	a := FromPoint(Point{ID: 1, Vec: linalg.Vector{0}, Score: 1})
	b := FromPoint(Point{ID: 2, Vec: linalg.Vector{1}, Score: 1})
	c := FromPoint(Point{ID: 3, Vec: linalg.Vector{2}, Score: 1})
	out := mergeAt([]*Cluster{a, b, c}, 0, 2)
	if len(out) != 2 {
		t.Fatalf("len = %d", len(out))
	}
	if out[0].N() != 2 || out[1].N() != 1 {
		t.Errorf("sizes = %d, %d", out[0].N(), out[1].N())
	}
}
