package cluster

import (
	"math"

	"repro/internal/obs"
	"repro/internal/stat"
)

// MergeOptions configures Algorithm 3 (cluster merging).
type MergeOptions struct {
	// Scheme selects diagonal or full-inverse pooled covariance.
	Scheme Scheme
	// Alpha is the significance level α of the T² test. Smaller α gives a
	// larger critical distance c², i.e. more merging (Sec. 4.3).
	Alpha float64
	// MaxClusters, when > 0, keeps merging the statistically closest
	// pairs until the number of clusters is at most this bound — the
	// paper's "increase critical distance c² using α" requeue loop
	// (Algorithm 3 lines 7-11).
	MaxClusters int
	// DisableOverlap turns off the ellipsoid-overlap merge criterion,
	// leaving only the T² test (with its small-sample fallback) — the
	// paper's Algorithm 3 read literally. Exposed for ablation studies;
	// see decideMerge for why the criterion exists.
	DisableOverlap bool
	// Trace, when non-nil, receives one "merge.accept" event per
	// test-passing merge, one "merge.forced" event per bound-enforcing
	// merge, and a closing "merge.done" summary (pairs tested, accepted,
	// forced, final cluster count).
	Trace *obs.Span
}

func (o MergeOptions) withDefaults() MergeOptions {
	if o.Alpha == 0 {
		o.Alpha = 0.05
	}
	return o
}

// smallSampleMergeTest decides merging when the F test is undefined
// (m_i + m_j <= p + 1): it falls back to an effective-radius style test,
// merging when the pooled Mahalanobis distance between centroids is within
// the χ²_p(1-α) contour. This keeps genuinely distant singleton clusters
// separate (they are the point of disjunctive queries) while nearby
// fragments still coalesce.
func smallSampleMergeTest(a, b *Cluster, scheme Scheme, alpha float64) (bool, float64, float64) {
	pooled := PooledTwo(a, b)
	inv := InverseOf(pooled, scheme)
	d := a.Mean.Sub(b.Mean)
	dist := inv.QuadForm(d)
	radius := stat.ChiSquareQuantile(1-alpha, float64(a.Dim()))
	return dist <= radius, dist, radius
}

// decideMerge runs the merge tests for a pair. Two criteria, either of
// which merges:
//
//  1. Hotelling's T² equality-of-means test (Eq. 16), when defined.
//  2. The ellipsoid-overlap criterion: the centroid gap measured under
//     the pooled WITHIN-covariance lies inside the χ²_p(1-α) contour —
//     the same quadratic form as the small-sample fallback, applied at
//     every sample size. This is what keeps Algorithm 3 from
//     over-splitting a densely sampled mode: fragments of one region
//     have means that differ *statistically* (T² rejects them at any
//     n), but their gap is small relative to their within-spread, so
//     they describe one perceptual region and must stay one query
//     cluster.
func decideMerge(a, b *Cluster, opt MergeOptions) (merge bool, t2, c2 float64) {
	overlap, gap, radius := smallSampleMergeTest(a, b, opt.Scheme, opt.Alpha)
	if opt.DisableOverlap {
		overlap = false
	}
	// The F test needs real degrees of freedom: POINT counts, not
	// relevance mass (a pair of heavily-scored singletons has weight
	// above p+1 but a zero pooled covariance, and the tiny-df F quantile
	// is so large the test would merge anything).
	if float64(a.N()+b.N())-float64(a.Dim())-1 > 0 {
		merge, t2, c2 = MergeTest(a, b, opt.Scheme, opt.Alpha)
		return merge || overlap, t2, c2
	}
	if opt.DisableOverlap {
		// Literal-Algorithm-3 mode still needs some small-sample rule;
		// keep the χ² gap decision (without it singletons could never
		// form initial clusters at all).
		return gap <= radius, gap, radius
	}
	return overlap, gap, radius
}

// Merge implements Algorithm 3. Starting from the given clusters it
// repeatedly merges the pair with the smallest T²/c² ratio while the
// tests accept the pair, recomputing statistics incrementally via
// MergeStats (Eq. 11-13). If MaxClusters > 0 and the count is still above
// it once no pair passes, the statistically closest pairs keep merging
// until the bound holds — the paper's "increase critical distance c²
// using α" requeue loop.
//
// The input slice is not modified; the result holds merged clusters plus
// survivors.
func Merge(cs []*Cluster, opt MergeOptions) []*Cluster {
	opt = opt.withDefaults()
	// Work on a copy.
	work := make([]*Cluster, len(cs))
	copy(work, cs)
	var tested, accepted, forced int

	// Phase 1: merge while pairs pass the tests at the configured α. The
	// pair with the smallest T²/c² ratio merges first. g is small (tens
	// at most), so the O(g²) rescan per merge is cheap and keeps
	// statistics exact after each merge.
	for len(work) > 1 {
		bestI, bestJ := -1, -1
		bestRatio := math.Inf(1)
		var bestT2, bestC2 float64
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				tested++
				ok, t2, c2 := decideMerge(work[i], work[j], opt)
				if !ok {
					continue
				}
				ratio := t2 / math.Max(c2, 1e-300)
				if ratio < bestRatio {
					bestRatio, bestI, bestJ = ratio, i, j
					bestT2, bestC2 = t2, c2
				}
			}
		}
		if bestI < 0 {
			break
		}
		work = mergeAt(work, bestI, bestJ)
		accepted++
		if opt.Trace.Enabled() {
			opt.Trace.Event("merge.accept",
				obs.F("t2", bestT2), obs.F("c2", bestC2),
				obs.F("clusters", len(work)))
		}
	}

	// Phase 2: if the cluster count still exceeds the bound, merge the
	// statistically closest pair (smallest T²/c² ratio, i.e. the pair
	// that would pass first as α shrinks and c² grows — the paper's
	// "increase critical distance c² using α" requeue loop), one pair at
	// a time, stopping exactly at the bound.
	if opt.MaxClusters > 0 {
		for len(work) > opt.MaxClusters && len(work) > 1 {
			bestI, bestJ := 0, 1
			bestRatio := math.Inf(1)
			var bestT2, bestC2 float64
			for i := 0; i < len(work); i++ {
				for j := i + 1; j < len(work); j++ {
					tested++
					_, t2, c2 := decideMerge(work[i], work[j], opt)
					ratio := t2 / math.Max(c2, 1e-300)
					if ratio < bestRatio {
						bestRatio, bestI, bestJ = ratio, i, j
						bestT2, bestC2 = t2, c2
					}
				}
			}
			work = mergeAt(work, bestI, bestJ)
			forced++
			if opt.Trace.Enabled() {
				opt.Trace.Event("merge.forced",
					obs.F("t2", bestT2), obs.F("c2", bestC2),
					obs.F("clusters", len(work)))
			}
		}
	}
	if opt.Trace.Enabled() {
		opt.Trace.Event("merge.done",
			obs.F("pairs_tested", tested), obs.F("accepted", accepted),
			obs.F("forced", forced), obs.F("clusters", len(work)))
	}
	return work
}

func mergeAt(work []*Cluster, i, j int) []*Cluster {
	m := MergeStats(work[i], work[j])
	work[i] = m
	return append(work[:j], work[j+1:]...)
}
