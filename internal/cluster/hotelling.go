package cluster

import (
	"math"

	"repro/internal/linalg"
	"repro/internal/stat"
)

// PooledTwo returns the two-cluster pooled covariance of Eq. 15:
// S_pooled = (scatter_i + scatter_j) / (m_i + m_j - 2), the standard
// two-sample pooling under which T² follows the scaled F distribution of
// Eq. 16. (The paper's Eq. 15 prints the divisor as m_i+m_j; its critical
// value c² and Tables 2-3 use the conventional m_i+m_j-2, which we follow.
// For the paper's cluster sizes of 30 the difference is under 4%.)
func PooledTwo(a, b *Cluster) *linalg.Matrix {
	den := a.Weight + b.Weight - 2
	if den <= 0 {
		den = 1
	}
	return a.Scatter.Add(b.Scatter).Scale(1 / den)
}

// PooledAll returns the g-cluster pooled covariance of Eq. 7:
// S_pooled = Σ (m_i - 1) S_i / (Σ m_i - g) = Σ scatter_i / (Σ m_i - g),
// used by the Bayesian classification distance D_i²(x).
func PooledAll(cs []*Cluster) *linalg.Matrix {
	if len(cs) == 0 {
		panic("cluster: PooledAll with no clusters")
	}
	dim := cs[0].Dim()
	sum := linalg.NewMatrix(dim, dim)
	var totalW float64
	for _, c := range cs {
		sum.AddScaledInPlace(1, c.Scatter)
		totalW += c.Weight
	}
	den := totalW - float64(len(cs))
	if den <= 0 {
		den = 1
	}
	return sum.Scale(1 / den)
}

// ShrunkCov returns cluster c's sample covariance shrunk toward the
// pooled covariance of the whole query-cluster set:
//
//	S̃_i = ((m_i - 1) S_i + τ S_pooled) / (m_i - 1 + τ)
//
// with prior strength τ. A freshly seeded singleton (m_i ≈ its score) has
// no covariance of its own and inherits the pooled shape and SCALE; a
// heavy cluster keeps its own statistics. This keeps the per-cluster
// Mahalanobis distances inside the aggregate disjunctive function (Eq. 5)
// on one common scale — without it, a degenerate cluster's floored
// covariance makes its neighborhood artificially close and hijacks the
// top-k.
// It is the covariance analogue of the paper's use of pooled statistics
// as prior information in the Bayesian classifier.
func ShrunkCov(c *Cluster, pooled *linalg.Matrix, tau float64) *linalg.Matrix {
	if tau <= 0 {
		return c.SampleCov()
	}
	own := c.Weight - 1
	if own < 0 {
		own = 0
	}
	out := pooled.Scale(tau / (own + tau))
	if own > 0 {
		out.AddScaledInPlace(own/(own+tau), c.SampleCov())
	}
	return out
}

// T2 computes Hotelling's two-sample T² statistic (Definition 3):
// T² = (m_i m_j / (m_i + m_j)) (x̄_i - x̄_j)' S_pooled⁻¹ (x̄_i - x̄_j),
// under the given covariance scheme (full inverse or diagonal).
func T2(a, b *Cluster, scheme Scheme) float64 {
	pooled := PooledTwo(a, b)
	inv := InverseOf(pooled, scheme)
	d := a.Mean.Sub(b.Mean)
	factor := a.Weight * b.Weight / (a.Weight + b.Weight)
	return factor * inv.QuadForm(d)
}

// CriticalValue returns c² of Eq. 16 at significance level alpha:
// c² = p (m_i + m_j - 2) / (m_i + m_j - p - 1) · F_{p, m_i+m_j-p-1}(α),
// the upper 100(1-α)th percentile of the F distribution scaled to T².
// When the combined weight is too small for the F degrees of freedom
// (m_i + m_j <= p + 1) it returns +Inf, meaning "never reject": tiny
// clusters merge freely, matching the paper's behaviour at the first
// iterations where every cluster holds a single point.
func CriticalValue(a, b *Cluster, dim int, alpha float64) float64 {
	m := a.Weight + b.Weight
	p := float64(dim)
	df2 := m - p - 1
	if df2 <= 0 {
		return math.Inf(1)
	}
	f := stat.FQuantile(1-alpha, p, df2)
	return p * (m - 2) / df2 * f
}

// MergeTest reports whether the two clusters should be merged at
// significance level alpha — i.e. whether the null hypothesis μ_i = μ_j
// is NOT rejected: T² <= c². It returns the statistic and critical value
// for experiment logging (Tables 2-3, Figs. 18-19).
func MergeTest(a, b *Cluster, scheme Scheme, alpha float64) (merge bool, t2, c2 float64) {
	t2 = T2(a, b, scheme)
	c2 = CriticalValue(a, b, a.Dim(), alpha)
	return t2 <= c2, t2, c2
}
