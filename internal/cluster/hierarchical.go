package cluster

import (
	"math"

	"repro/internal/linalg"
)

// Linkage selects the inter-cluster distance used by agglomerative
// clustering.
type Linkage int

const (
	// SingleLinkage uses the minimum pairwise point distance.
	SingleLinkage Linkage = iota
	// CompleteLinkage uses the maximum pairwise point distance.
	CompleteLinkage
	// AverageLinkage uses the mean pairwise point distance (UPGMA).
	AverageLinkage
	// CentroidLinkage uses the distance between weighted centroids. This
	// is the default: it groups points into the hyperspherical regions
	// the paper's initial clustering asks for (Sec. 4.1).
	CentroidLinkage
)

// HierarchicalOptions configures Agglomerate.
type HierarchicalOptions struct {
	Linkage Linkage
	// TargetClusters stops merging when this many clusters remain
	// (0 means "no count bound").
	TargetClusters int
	// DistanceCutoff stops merging once the closest pair is farther than
	// this Euclidean distance (0 means "no cutoff"). With both bounds
	// zero, everything merges into one cluster.
	DistanceCutoff float64
}

// Agglomerate runs bottom-up hierarchical clustering over scored points:
// every point starts as its own cluster, and the closest pair (under the
// chosen linkage) merges until a stopping bound holds. This is the
// paper's basic clustering method (Sec. 3.1) used to form the initial
// clusters of the first feedback iteration.
func Agglomerate(points []Point, opt HierarchicalOptions) []*Cluster {
	if len(points) == 0 {
		return nil
	}
	work := make([]*Cluster, len(points))
	for i, p := range points {
		work[i] = FromPoint(p)
	}
	for len(work) > 1 {
		if opt.TargetClusters > 0 && len(work) <= opt.TargetClusters {
			break
		}
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if d := linkageDistance(work[i], work[j], opt.Linkage); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		if opt.DistanceCutoff > 0 && best > opt.DistanceCutoff {
			break
		}
		m := MergeStats(work[bi], work[bj])
		work[bi] = m
		work = append(work[:bj], work[bj+1:]...)
	}
	return work
}

func linkageDistance(a, b *Cluster, l Linkage) float64 {
	switch l {
	case SingleLinkage:
		best := math.Inf(1)
		for _, pa := range a.Points {
			for _, pb := range b.Points {
				if d := pa.Vec.Dist(pb.Vec); d < best {
					best = d
				}
			}
		}
		return best
	case CompleteLinkage:
		worst := 0.0
		for _, pa := range a.Points {
			for _, pb := range b.Points {
				if d := pa.Vec.Dist(pb.Vec); d > worst {
					worst = d
				}
			}
		}
		return worst
	case AverageLinkage:
		var sum float64
		var n int
		for _, pa := range a.Points {
			for _, pb := range b.Points {
				sum += pa.Vec.Dist(pb.Vec)
				n++
			}
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	case CentroidLinkage:
		return a.Mean.Dist(b.Mean)
	default:
		panic("cluster: unknown linkage")
	}
}

// AgglomerateGap runs agglomerative clustering with an automatic
// stopping rule: it performs the full merge sequence, finds the largest
// relative jump between consecutive merge distances, and — when that jump
// exceeds gapFactor — cuts the sequence just before it. A unimodal point
// set has a smoothly growing merge-distance sequence and collapses to one
// cluster; a set with well-separated modes shows a sharp jump at the
// first cross-mode merge and is cut there, yielding one cluster per mode.
// This makes the initial clustering of the relevant set (Sec. 4.1)
// self-calibrating: no distance threshold has to be guessed.
//
// gapFactor defaults to 2 when <= 1.
func AgglomerateGap(points []Point, linkage Linkage, gapFactor float64) []*Cluster {
	if gapFactor <= 1 {
		gapFactor = 2
	}
	if len(points) <= 1 {
		return Agglomerate(points, HierarchicalOptions{Linkage: linkage, TargetClusters: 1})
	}
	// Full merge sequence, recording each merge distance.
	work := make([]*Cluster, len(points))
	for i, p := range points {
		work[i] = FromPoint(p)
	}
	distances := make([]float64, 0, len(points)-1)
	for len(work) > 1 {
		bi, bj, best := -1, -1, math.Inf(1)
		for i := 0; i < len(work); i++ {
			for j := i + 1; j < len(work); j++ {
				if d := linkageDistance(work[i], work[j], linkage); d < best {
					best, bi, bj = d, i, j
				}
			}
		}
		distances = append(distances, best)
		m := MergeStats(work[bi], work[bj])
		work[bi] = m
		work = append(work[:bj], work[bj+1:]...)
	}
	// Cut at the FIRST merge whose distance jumps by more than gapFactor
	// over the largest distance seen so far — the first cross-mode merge.
	// Cutting at the first (not the largest) jump keeps every mode
	// separate when there are more than two. Only the second half of the
	// sequence is eligible: cross-mode merges always happen late, while
	// early ratios are dominated by noise (e.g. two nearly coincident
	// points make d_0 vanishingly small).
	cut := len(distances) // default: all merges (one cluster)
	prevMax := 0.0
	for i, d := range distances {
		if prevMax > 0 && 2*i >= len(distances) && d/prevMax > gapFactor {
			cut = i
			break
		}
		if d > prevMax {
			prevMax = d
		}
	}
	if cut == len(distances) {
		return Agglomerate(points, HierarchicalOptions{Linkage: linkage, TargetClusters: 1})
	}
	// Replay the sequence up to the cut.
	return Agglomerate(points, HierarchicalOptions{
		Linkage:        linkage,
		TargetClusters: len(points) - cut,
	})
}

// AutoCutoff estimates a reasonable DistanceCutoff for the initial
// clustering from the data itself: c times the mean nearest-neighbor
// distance among the points. The multiplier defaults to 2 when c <= 0.
// Points whose nearest neighbor is much farther than typical stay
// separate clusters — the bimodal relevant sets of the paper's bird
// example split exactly here.
func AutoCutoff(points []Point, c float64) float64 {
	if c <= 0 {
		c = 2
	}
	if len(points) < 2 {
		return 0
	}
	var sum float64
	for i := range points {
		best := math.Inf(1)
		for j := range points {
			if i == j {
				continue
			}
			if d := points[i].Vec.Dist(points[j].Vec); d < best {
				best = d
			}
		}
		sum += best
	}
	return c * sum / float64(len(points))
}

// Assignments returns, for each input point ID, the index of the cluster
// that contains it; IDs not present map to -1. Useful for evaluating
// clustering accuracy in the synthetic experiments.
func Assignments(cs []*Cluster, ids []int) []int {
	byID := map[int]int{}
	for ci, c := range cs {
		for _, p := range c.Points {
			byID[p.ID] = ci
		}
	}
	out := make([]int, len(ids))
	for i, id := range ids {
		if ci, ok := byID[id]; ok {
			out[i] = ci
		} else {
			out[i] = -1
		}
	}
	return out
}

// Centroids extracts the centroid of every cluster.
func Centroids(cs []*Cluster) []linalg.Vector {
	out := make([]linalg.Vector, len(cs))
	for i, c := range cs {
		out[i] = c.Centroid()
	}
	return out
}
