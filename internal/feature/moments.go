package feature

import (
	"image"
	"math"

	"repro/internal/linalg"
	"repro/internal/stat"
)

// ColorMomentsDim is the raw color-moment dimensionality. The paper uses
// 3 moments × 3 HSV channels = 9; because the hue mean is a circular
// quantity (any scalar embedding has a discontinuity at the 0°/360° seam,
// which destabilizes retrieval for red-dominated images), this
// implementation encodes the hue mean as its cosine and sine — 10 raw
// values, reduced to 3 by PCA exactly as in the paper.
const ColorMomentsDim = 10

// ColorMoments extracts the color-moment vector:
//
//	[cos μ_H, sin μ_H, σ_H, skew_H, μ_S, σ_S, skew_S, μ_V, σ_V, skew_V]
//
// where the hue dispersion moments are computed on wrapped deviations
// from the dominant hue lobe (see alignHueCircular) and scaled by 1/360,
// so every component lives in a comparable O(1) range before PCA.
func ColorMoments(img image.Image) linalg.Vector {
	hs, ss, vs := hsvPixels(img)
	alignHueCircular(hs)
	for i := range hs {
		hs[i] /= 360
	}
	hueMeanDeg := stat.Mean(hs) * 360 // reference + mean deviation, degrees
	rad := hueMeanDeg * math.Pi / 180
	out := make(linalg.Vector, 0, ColorMomentsDim)
	out = append(out, math.Cos(rad), math.Sin(rad), stat.StdDev(hs), stat.Skewness(hs))
	for _, ch := range [][]float64{ss, vs} {
		out = append(out, stat.Mean(ch), stat.StdDev(ch), stat.Skewness(ch))
	}
	return out
}

// alignHueCircular rewrites the hue samples (degrees) as
// reference + wrappedDeviation, with the deviation in (-180, 180], so
// linear moments of the result are stable across the 0°/360° seam, and
// returns the reference angle.
//
// The reference is NOT the global circular mean: for images with two hue
// populations (subject vs background) the circular mean is ill-defined
// when the populations nearly cancel, which makes the moments jump
// between renditions of the same scene. Instead the reference is the
// dominant hue lobe — the mode of a coarse hue histogram, refined by the
// circular mean of the samples within ±60° of that mode. The dominant
// lobe is stable as long as one hue population holds a plurality.
func alignHueCircular(hs []float64) (reference float64) {
	const bins = 36
	var hist [bins]float64
	for _, h := range hs {
		b := int(h / (360 / bins))
		if b >= bins {
			b = bins - 1
		}
		hist[b]++
	}
	mode := 0
	for b := 1; b < bins; b++ {
		if hist[b] > hist[mode] {
			mode = b
		}
	}
	modeDeg := (float64(mode) + 0.5) * 360 / bins

	// Refine: circular mean of the dominant lobe only.
	var sinSum, cosSum float64
	for _, h := range hs {
		d := math.Mod(h-modeDeg+540, 360) - 180
		if d < -60 || d > 60 {
			continue
		}
		r := h * math.Pi / 180
		sinSum += math.Sin(r)
		cosSum += math.Cos(r)
	}
	ref := modeDeg
	if sinSum != 0 || cosSum != 0 {
		ref = math.Atan2(sinSum, cosSum) * 180 / math.Pi
		if ref < 0 {
			ref += 360
		}
	}
	for i, h := range hs {
		d := math.Mod(h-ref+540, 360) - 180
		hs[i] = ref + d
	}
	return ref
}
