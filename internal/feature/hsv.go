// Package feature extracts the paper's two visual features from images:
// HSV color moments (mean, standard deviation, skewness per channel — 9
// values, reduced to 3 by PCA in the retrieval pipeline) and gray-level
// co-occurrence matrix texture (16 Haralick-style statistics, reduced to
// 4 by PCA). Both operate on arbitrary image.Image rasters.
package feature

import (
	"image"
	"math"
)

// RGBToHSV converts 8-bit RGB to HSV with h in [0, 360), s and v in
// [0, 1]. The paper uses HSV "because of its perceptual uniformity of
// color".
func RGBToHSV(r, g, b uint8) (h, s, v float64) {
	rf, gf, bf := float64(r)/255, float64(g)/255, float64(b)/255
	max := math.Max(rf, math.Max(gf, bf))
	min := math.Min(rf, math.Min(gf, bf))
	v = max
	delta := max - min
	if max > 0 {
		s = delta / max
	}
	if delta == 0 {
		return 0, s, v
	}
	switch max {
	case rf:
		h = 60 * math.Mod((gf-bf)/delta, 6)
	case gf:
		h = 60 * ((bf-rf)/delta + 2)
	default:
		h = 60 * ((rf-gf)/delta + 4)
	}
	if h < 0 {
		h += 360
	}
	return h, s, v
}

// hsvPixels walks the image once and returns the three channel planes.
func hsvPixels(img image.Image) (hs, ss, vs []float64) {
	b := img.Bounds()
	n := b.Dx() * b.Dy()
	hs = make([]float64, 0, n)
	ss = make([]float64, 0, n)
	vs = make([]float64, 0, n)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			h, s, v := RGBToHSV(uint8(r>>8), uint8(g>>8), uint8(bl>>8))
			hs = append(hs, h)
			ss = append(ss, s)
			vs = append(vs, v)
		}
	}
	return hs, ss, vs
}

// Gray returns the 8-bit luminance plane of the image (ITU-R BT.601
// weights), the input to the co-occurrence texture feature.
func Gray(img image.Image) ([]uint8, int, int) {
	b := img.Bounds()
	w, h := b.Dx(), b.Dy()
	out := make([]uint8, 0, w*h)
	for y := b.Min.Y; y < b.Max.Y; y++ {
		for x := b.Min.X; x < b.Max.X; x++ {
			r, g, bl, _ := img.At(x, y).RGBA()
			lum := 0.299*float64(r>>8) + 0.587*float64(g>>8) + 0.114*float64(bl>>8)
			out = append(out, uint8(lum+0.5))
		}
	}
	return out, w, h
}
