package feature

import (
	"image"
	"image/color"
	"math"
	"math/rand"
	"testing"
)

func solid(c color.RGBA, w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			img.SetRGBA(x, y, c)
		}
	}
	return img
}

func stripes(a, b color.RGBA, w, h, period int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			if (x/period)%2 == 0 {
				img.SetRGBA(x, y, a)
			} else {
				img.SetRGBA(x, y, b)
			}
		}
	}
	return img
}

func noisy(rng *rand.Rand, w, h int) *image.RGBA {
	img := image.NewRGBA(image.Rect(0, 0, w, h))
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			g := uint8(rng.Intn(256))
			img.SetRGBA(x, y, color.RGBA{g, g, g, 255})
		}
	}
	return img
}

func TestRGBToHSVKnown(t *testing.T) {
	cases := []struct {
		r, g, b uint8
		h, s, v float64
	}{
		{255, 0, 0, 0, 1, 1},     // red
		{0, 255, 0, 120, 1, 1},   // green
		{0, 0, 255, 240, 1, 1},   // blue
		{255, 255, 255, 0, 0, 1}, // white
		{0, 0, 0, 0, 0, 0},       // black
		{128, 128, 128, 0, 0, 128.0 / 255},
	}
	for _, c := range cases {
		h, s, v := RGBToHSV(c.r, c.g, c.b)
		if math.Abs(h-c.h) > 1e-9 || math.Abs(s-c.s) > 1e-9 || math.Abs(v-c.v) > 1e-9 {
			t.Errorf("RGBToHSV(%d,%d,%d) = %v,%v,%v want %v,%v,%v",
				c.r, c.g, c.b, h, s, v, c.h, c.s, c.v)
		}
	}
}

func TestRGBToHSVRange(t *testing.T) {
	rng := rand.New(rand.NewSource(80))
	for i := 0; i < 2000; i++ {
		h, s, v := RGBToHSV(uint8(rng.Intn(256)), uint8(rng.Intn(256)), uint8(rng.Intn(256)))
		if h < 0 || h >= 360 || s < 0 || s > 1 || v < 0 || v > 1 {
			t.Fatalf("out of range: %v %v %v", h, s, v)
		}
	}
}

func TestColorMomentsSolid(t *testing.T) {
	// A solid image has zero deviation and skewness on every channel.
	img := solid(color.RGBA{200, 50, 50, 255}, 16, 16)
	f := ColorMoments(img)
	if len(f) != ColorMomentsDim {
		t.Fatalf("dim = %d", len(f))
	}
	for _, idx := range []int{2, 3, 5, 6, 8, 9} { // std and skew positions
		if math.Abs(f[idx]) > 1e-9 {
			t.Errorf("solid image moment[%d] = %v, want 0", idx, f[idx])
		}
	}
	// V-channel mean should be ≈ 200/255.
	if math.Abs(f[7]-200.0/255) > 1e-9 {
		t.Errorf("V mean = %v", f[7])
	}
	// Hue mean encoding must be a unit vector.
	if math.Abs(f[0]*f[0]+f[1]*f[1]-1) > 1e-9 {
		t.Errorf("hue mean (cos,sin) not unit: %v, %v", f[0], f[1])
	}
}

func TestColorMomentsDistinguishColors(t *testing.T) {
	red := ColorMoments(solid(color.RGBA{255, 0, 0, 255}, 8, 8))
	blue := ColorMoments(solid(color.RGBA{0, 0, 255, 255}, 8, 8))
	if red.Dist(blue) < 0.1 {
		t.Error("red and blue produce nearly identical color moments")
	}
}

func TestGLCMNormalizedAndSymmetric(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	m := GLCM(noisy(rng, 32, 32))
	var sum float64
	for _, v := range m.Data {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("GLCM sums to %v", sum)
	}
	for i := 0; i < m.Rows; i++ {
		for j := i + 1; j < m.Cols; j++ {
			if math.Abs(m.At(i, j)-m.At(j, i)) > 1e-12 {
				t.Fatalf("GLCM asymmetric at (%d,%d)", i, j)
			}
		}
	}
}

func TestGLCMSolidConcentrated(t *testing.T) {
	// A solid image co-occurs only at one (i, i) cell.
	m := GLCM(solid(color.RGBA{100, 100, 100, 255}, 16, 16))
	nonZero := 0
	for _, v := range m.Data {
		if v > 0 {
			nonZero++
		}
	}
	if nonZero != 1 {
		t.Errorf("solid GLCM has %d nonzero cells, want 1", nonZero)
	}
}

func TestTextureFeaturesProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	smooth := TextureFeatures(solid(color.RGBA{100, 100, 100, 255}, 32, 32))
	rough := TextureFeatures(noisy(rng, 32, 32))
	if len(smooth) != TextureDim || len(rough) != TextureDim {
		t.Fatal("dimension mismatch")
	}
	// Energy: smooth=1 (all mass in one cell) > rough.
	if smooth[0] <= rough[0] {
		t.Errorf("energy smooth %v <= rough %v", smooth[0], rough[0])
	}
	// Entropy: rough > smooth (=0).
	if rough[2] <= smooth[2] {
		t.Errorf("entropy rough %v <= smooth %v", rough[2], smooth[2])
	}
	// Contrast/inertia: rough > smooth (=0).
	if rough[1] <= smooth[1] {
		t.Errorf("inertia rough %v <= smooth %v", rough[1], smooth[1])
	}
	// Homogeneity: smooth (=1) > rough.
	if smooth[3] <= rough[3] {
		t.Errorf("homogeneity smooth %v <= rough %v", smooth[3], rough[3])
	}
	if math.Abs(smooth[0]-1) > 1e-9 || math.Abs(smooth[3]-1) > 1e-9 {
		t.Errorf("solid image energy/homogeneity = %v/%v, want 1/1", smooth[0], smooth[3])
	}
}

func TestTextureDistinguishesStripePeriod(t *testing.T) {
	a := color.RGBA{0, 0, 0, 255}
	b := color.RGBA{255, 255, 255, 255}
	fine := TextureFeatures(stripes(a, b, 32, 32, 1))
	coarse := TextureFeatures(stripes(a, b, 32, 32, 8))
	if fine.Dist(coarse) < 1e-3 {
		t.Error("fine and coarse stripes produce identical texture features")
	}
	// Fine stripes have higher contrast (more transitions).
	if fine[1] <= coarse[1] {
		t.Errorf("contrast fine %v <= coarse %v", fine[1], coarse[1])
	}
}

func TestTextureColorInvariance(t *testing.T) {
	// Texture is computed on luminance: hue changes at equal luminance
	// should barely move the features. Use colors with equal BT.601 luma.
	// luma(r,g,b): pick (200,0,0) luma≈59.8 and (0,102,0) luma≈59.9.
	redish := TextureFeatures(stripes(color.RGBA{200, 0, 0, 255}, color.RGBA{0, 0, 0, 255}, 32, 32, 4))
	greenish := TextureFeatures(stripes(color.RGBA{0, 102, 0, 255}, color.RGBA{0, 0, 0, 255}, 32, 32, 4))
	if redish.Dist(greenish) > 1e-6 {
		t.Errorf("equal-luma stripes differ: %v", redish.Dist(greenish))
	}
}

func TestGrayPlane(t *testing.T) {
	img := solid(color.RGBA{255, 0, 0, 255}, 4, 4)
	g, w, h := Gray(img)
	if w != 4 || h != 4 || len(g) != 16 {
		t.Fatalf("w=%d h=%d len=%d", w, h, len(g))
	}
	want := uint8(math.Round(0.299 * 255))
	if g[0] != want {
		t.Errorf("red luma = %d, want %d", g[0], want)
	}
}
