package feature

import (
	"image"
	"image/color"
	"math"
	"testing"
)

// FuzzRGBToHSV checks the HSV conversion's range invariants over the
// whole 24-bit RGB cube sampled by the fuzzer.
func FuzzRGBToHSV(f *testing.F) {
	f.Add(uint8(0), uint8(0), uint8(0))
	f.Add(uint8(255), uint8(255), uint8(255))
	f.Add(uint8(255), uint8(0), uint8(0))
	f.Add(uint8(17), uint8(200), uint8(90))
	f.Fuzz(func(t *testing.T, r, g, b uint8) {
		h, s, v := RGBToHSV(r, g, b)
		if h < 0 || h >= 360 || math.IsNaN(h) {
			t.Fatalf("h = %v out of [0,360)", h)
		}
		if s < 0 || s > 1 || v < 0 || v > 1 {
			t.Fatalf("s = %v, v = %v out of [0,1]", s, v)
		}
		// Value is max(r,g,b)/255 by definition.
		max := r
		if g > max {
			max = g
		}
		if b > max {
			max = b
		}
		if math.Abs(v-float64(max)/255) > 1e-12 {
			t.Fatalf("v = %v, want %v", v, float64(max)/255)
		}
	})
}

// FuzzColorMoments checks that the feature extractor never produces
// non-finite components, whatever the (tiny) image contents.
func FuzzColorMoments(f *testing.F) {
	f.Add(uint8(10), uint8(20), uint8(30), uint8(200), uint8(100), uint8(0))
	f.Fuzz(func(t *testing.T, r1, g1, b1, r2, g2, b2 uint8) {
		img := image.NewRGBA(image.Rect(0, 0, 4, 4))
		for y := 0; y < 4; y++ {
			for x := 0; x < 4; x++ {
				if (x+y)%2 == 0 {
					img.SetRGBA(x, y, color.RGBA{r1, g1, b1, 255})
				} else {
					img.SetRGBA(x, y, color.RGBA{r2, g2, b2, 255})
				}
			}
		}
		for i, v := range ColorMoments(img) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("component %d is %v", i, v)
			}
		}
		for i, v := range TextureFeatures(img) {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("texture component %d is %v", i, v)
			}
		}
	})
}
