package feature

import (
	"image"
	"math"

	"repro/internal/linalg"
)

// TextureDim is the raw co-occurrence texture dimensionality: 16
// Haralick-style statistics (the paper: "energy, inertia, entropy,
// homogeneity, etc"), reduced to 4 with PCA by the retrieval pipeline.
const TextureDim = 16

// GLCMLevels is the gray-level quantization of the co-occurrence matrix.
// The paper counts over 0-255; 32 levels preserve texture discrimination
// while keeping the matrix small enough to extract at collection scale.
const GLCMLevels = 32

// glcmOffsets are the four standard adjacency directions (0°, 45°, 90°,
// 135°); the final matrix is their symmetric average, making the feature
// rotation-robust.
var glcmOffsets = [4][2]int{{1, 0}, {1, 1}, {0, 1}, {-1, 1}}

// GLCM builds the normalized gray-level co-occurrence matrix of the
// image: cell (i, j) holds the probability that a pixel of quantized
// level i is adjacent (over the four standard offsets, symmetrized) to a
// pixel of level j.
func GLCM(img image.Image) *linalg.Matrix {
	gray, w, h := Gray(img)
	return glcmFromGray(gray, w, h)
}

func glcmFromGray(gray []uint8, w, h int) *linalg.Matrix {
	m := linalg.NewMatrix(GLCMLevels, GLCMLevels)
	quant := func(g uint8) int { return int(g) * GLCMLevels / 256 }
	var total float64
	for y := 0; y < h; y++ {
		for x := 0; x < w; x++ {
			a := quant(gray[y*w+x])
			for _, off := range glcmOffsets {
				nx, ny := x+off[0], y+off[1]
				if nx < 0 || nx >= w || ny >= h {
					continue
				}
				b := quant(gray[ny*w+nx])
				// Symmetric counting.
				m.Data[a*GLCMLevels+b]++
				m.Data[b*GLCMLevels+a]++
				total += 2
			}
		}
	}
	if total > 0 {
		for i := range m.Data {
			m.Data[i] /= total
		}
	}
	return m
}

// TextureFeatures extracts the 16-D texture vector from the image's
// co-occurrence matrix.
func TextureFeatures(img image.Image) linalg.Vector {
	return HaralickFeatures(GLCM(img))
}

// HaralickFeatures computes 16 co-occurrence statistics from a normalized
// GLCM p: the classical Haralick set used by the MARS texture feature.
//
// Indices (all sums over i, j in [0, L)):
//
//	0  energy (angular second moment)   Σ p²
//	1  inertia / contrast               Σ (i-j)² p
//	2  entropy                          -Σ p ln p
//	3  homogeneity (IDM)                Σ p / (1 + (i-j)²)
//	4  correlation                      (Σ ij·p - μxμy) / (σxσy)
//	5  variance                         Σ (i-μ)² p
//	6  sum average                      Σ_k k · p_{x+y}(k)
//	7  sum variance                     Σ_k (k - sumavg)² p_{x+y}(k)
//	8  sum entropy                      -Σ_k p_{x+y} ln p_{x+y}
//	9  difference average               Σ_k k · p_{x-y}(k)
//	10 difference variance              Σ_k (k - diffavg)² p_{x-y}(k)
//	11 difference entropy               -Σ_k p_{x-y} ln p_{x-y}
//	12 maximum probability              max p
//	13 dissimilarity                    Σ |i-j| p
//	14 cluster shade                    Σ (i+j-μx-μy)³ p
//	15 cluster prominence               Σ (i+j-μx-μy)⁴ p
func HaralickFeatures(p *linalg.Matrix) linalg.Vector {
	l := p.Rows
	f := make(linalg.Vector, TextureDim)

	// Marginals.
	px := make([]float64, l)
	py := make([]float64, l)
	psum := make([]float64, 2*l-1) // p_{x+y}(k), k = i+j
	pdiff := make([]float64, l)    // p_{x-y}(k), k = |i-j|
	for i := 0; i < l; i++ {
		for j := 0; j < l; j++ {
			v := p.At(i, j)
			px[i] += v
			py[j] += v
			psum[i+j] += v
			d := i - j
			if d < 0 {
				d = -d
			}
			pdiff[d] += v
		}
	}
	var mux, muy, sx2, sy2 float64
	for i := 0; i < l; i++ {
		mux += float64(i) * px[i]
		muy += float64(i) * py[i]
	}
	for i := 0; i < l; i++ {
		sx2 += (float64(i) - mux) * (float64(i) - mux) * px[i]
		sy2 += (float64(i) - muy) * (float64(i) - muy) * py[i]
	}

	var corrNum float64
	for i := 0; i < l; i++ {
		fi := float64(i)
		for j := 0; j < l; j++ {
			v := p.At(i, j)
			if v == 0 {
				// Zero cells contribute nothing (including to entropy).
				continue
			}
			fj := float64(j)
			d := fi - fj
			f[0] += v * v
			f[1] += d * d * v
			f[2] -= v * math.Log(v)
			f[3] += v / (1 + d*d)
			corrNum += fi * fj * v
			f[5] += (fi - mux) * (fi - mux) * v
			if v > f[12] {
				f[12] = v
			}
			f[13] += math.Abs(d) * v
			cs := fi + fj - mux - muy
			f[14] += cs * cs * cs * v
			f[15] += cs * cs * cs * cs * v
		}
	}
	if sx2 > 0 && sy2 > 0 {
		f[4] = (corrNum - mux*muy) / math.Sqrt(sx2*sy2)
	}

	for k, v := range psum {
		if v == 0 {
			continue
		}
		f[6] += float64(k) * v
		f[8] -= v * math.Log(v)
	}
	for k, v := range psum {
		if v == 0 {
			continue
		}
		d := float64(k) - f[6]
		f[7] += d * d * v
	}
	for k, v := range pdiff {
		if v == 0 {
			continue
		}
		f[9] += float64(k) * v
		f[11] -= v * math.Log(v)
	}
	for k, v := range pdiff {
		if v == 0 {
			continue
		}
		d := float64(k) - f[9]
		f[10] += d * d * v
	}
	return f
}
