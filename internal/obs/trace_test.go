package obs

import (
	"bytes"
	"log/slog"
	"strings"
	"sync"
	"testing"
)

func TestSpanEmitsStartEventsEnd(t *testing.T) {
	sink := &MemorySink{}
	span := StartSpan(sink, "round", F("round", 1))
	if !span.Enabled() {
		t.Fatal("span with sink should be enabled")
	}
	span.Event("classify.assign", F("cluster", 0))
	span.End(F("clusters", 2))

	evs := sink.Events()
	if len(evs) != 3 {
		t.Fatalf("got %d events, want 3: %s", len(evs), sink)
	}
	if evs[0].Name != "start" || evs[0].Span != "round" {
		t.Fatalf("first event = %s/%s", evs[0].Span, evs[0].Name)
	}
	if evs[0].Field("round") != 1 {
		t.Fatalf("start round field = %v", evs[0].Field("round"))
	}
	if evs[1].Name != "classify.assign" || evs[1].Field("cluster") != 0 {
		t.Fatalf("middle event wrong: %+v", evs[1])
	}
	end := evs[2]
	if end.Name != "end" || end.Field("clusters") != 2 {
		t.Fatalf("end event wrong: %+v", end)
	}
	if end.Field("elapsed_ms") == nil {
		t.Fatal("end event missing elapsed_ms")
	}
	if end.Field("missing") != nil {
		t.Fatal("absent field should be nil")
	}
}

func TestNilSinkIsNoOpAndAllocationFree(t *testing.T) {
	span := StartSpan(nil, "round")
	if span != nil {
		t.Fatal("nil sink should yield nil span")
	}
	if span.Enabled() {
		t.Fatal("nil span should report disabled")
	}
	// None of these may panic.
	span.Event("x", F("a", 1))
	span.End()
	EmitEvent(nil, "free")

	if n := testing.AllocsPerRun(1000, func() {
		s := StartSpan(nil, "round")
		if s.Enabled() {
			s.Event("never")
		}
		s.End()
		EmitEvent(nil, "free")
	}); n != 0 {
		t.Fatalf("disabled tracing allocates %v/op, want 0", n)
	}
}

func TestEmitEventFree(t *testing.T) {
	sink := &MemorySink{}
	EmitEvent(sink, "metric.build", F("clusters", 3))
	evs := sink.Events()
	if len(evs) != 1 || evs[0].Span != "" || evs[0].Name != "metric.build" {
		t.Fatalf("free event wrong: %+v", evs)
	}
	if evs[0].Field("clusters") != 3 {
		t.Fatalf("field = %v", evs[0].Field("clusters"))
	}
}

func TestMemorySinkConcurrentAndDrain(t *testing.T) {
	sink := &MemorySink{}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				sink.Emit(Event{Name: "e"})
			}
		}()
	}
	wg.Wait()
	if got := sink.Count("e"); got != 800 {
		t.Fatalf("count = %d, want 800", got)
	}
	if got := len(sink.Drain()); got != 800 {
		t.Fatalf("drain = %d, want 800", got)
	}
	if got := len(sink.Events()); got != 0 {
		t.Fatalf("events after drain = %d, want 0", got)
	}
}

func TestSlogSink(t *testing.T) {
	var buf bytes.Buffer
	logger := slog.New(slog.NewTextHandler(&buf, nil))
	sink := NewSlogSink(logger)
	span := StartSpan(sink, "feedback.round", F("round", 2))
	span.Event("merge.accept", F("t2", 1.5))
	span.End()

	out := buf.String()
	for _, want := range []string{
		"msg=start", "span=feedback.round", "round=2",
		"msg=merge.accept", "t2=1.5", "msg=end", "elapsed_ms=",
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("slog output missing %q:\n%s", want, out)
		}
	}
}

func TestNewSlogSinkNilLoggerUsesDefault(t *testing.T) {
	if NewSlogSink(nil) == nil {
		t.Fatal("nil logger should still yield a sink")
	}
}
