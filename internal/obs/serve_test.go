package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"runtime"
	"strings"
	"testing"
	"time"
)

func newTestServer(t *testing.T) (*Registry, *DebugServer) {
	t.Helper()
	reg := NewRegistry()
	reg.Counter("search.total").Add(7)
	reg.Gauge("db.items").Set(42)
	h := reg.Histogram("search.latency_seconds", []float64{0.001, 0.01})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.Observe(0.5)
	d, err := ServeDebug("127.0.0.1:0", reg)
	if err != nil {
		t.Fatalf("ServeDebug: %v", err)
	}
	return reg, d
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

func TestServeDebugVars(t *testing.T) {
	_, d := newTestServer(t)
	defer d.Close()
	code, body := get(t, "http://"+d.Addr()+"/debug/vars")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	var doc struct {
		Qcluster Snapshot       `json:"qcluster"`
		Runtime  map[string]any `json:"runtime"`
	}
	if err := json.Unmarshal([]byte(body), &doc); err != nil {
		t.Fatalf("vars not JSON: %v\n%s", err, body)
	}
	if doc.Qcluster.Counters["search.total"] != 7 {
		t.Fatalf("search.total = %d, want 7", doc.Qcluster.Counters["search.total"])
	}
	if doc.Qcluster.Gauges["db.items"] != 42 {
		t.Fatalf("db.items = %v, want 42", doc.Qcluster.Gauges["db.items"])
	}
	if doc.Runtime["goroutines"] == nil {
		t.Fatal("runtime.goroutines missing")
	}
}

func TestServeDebugPrometheus(t *testing.T) {
	_, d := newTestServer(t)
	defer d.Close()
	code, body := get(t, "http://"+d.Addr()+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("status = %d", code)
	}
	for _, want := range []string{
		"# TYPE qcluster_search_total counter",
		"qcluster_search_total 7",
		"# TYPE qcluster_db_items gauge",
		"qcluster_db_items 42",
		"# TYPE qcluster_search_latency_seconds histogram",
		`qcluster_search_latency_seconds_bucket{le="0.001"} 1`,
		`qcluster_search_latency_seconds_bucket{le="0.01"} 2`,
		`qcluster_search_latency_seconds_bucket{le="+Inf"} 3`,
		"qcluster_search_latency_seconds_count 3",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("metrics missing %q:\n%s", want, body)
		}
	}
}

func TestServeDebugPprof(t *testing.T) {
	_, d := newTestServer(t)
	defer d.Close()
	code, body := get(t, "http://"+d.Addr()+"/debug/pprof/")
	if code != http.StatusOK {
		t.Fatalf("pprof index status = %d", code)
	}
	if !strings.Contains(body, "goroutine") {
		t.Fatalf("pprof index unexpected:\n%s", body)
	}
}

func TestServeDebugNilRegistry(t *testing.T) {
	if _, err := ServeDebug("127.0.0.1:0", nil); err == nil {
		t.Fatal("nil registry should error")
	}
}

// TestServeDebugNoLeak is the CI goroutine-leak gate: after Close, the
// goroutine count must return to its pre-serve level (allowing the
// runtime a little settling time for HTTP keep-alive teardown).
func TestServeDebugNoLeak(t *testing.T) {
	before := runtime.NumGoroutine()
	for i := 0; i < 3; i++ {
		reg := NewRegistry()
		d, err := ServeDebug("127.0.0.1:0", reg)
		if err != nil {
			t.Fatalf("ServeDebug: %v", err)
		}
		if _, body := get(t, "http://"+d.Addr()+"/metrics"); body == "" {
			// /metrics on an empty registry renders nothing — that is fine;
			// the request only exists to exercise a live connection.
			_ = body
		}
		if err := d.Close(); err != nil {
			t.Fatalf("Close: %v", err)
		}
	}
	deadline := time.Now().Add(2 * time.Second)
	for {
		if runtime.NumGoroutine() <= before {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		runtime.Gosched()
		time.Sleep(10 * time.Millisecond)
	}
}
