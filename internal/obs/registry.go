// Package obs is the observability layer under the retrieval pipeline:
// a dependency-free, concurrency-safe metrics registry (atomic counters,
// gauges and fixed-bucket histograms), a lightweight span/event tracer
// behind a pluggable Sink, and an optional debug HTTP server exposing
// the registry as expvar-style JSON, Prometheus text format and
// net/http/pprof.
//
// The package is built for an instrumented hot path: every metric write
// is a handful of atomic operations with no allocation and no locking,
// and the tracer is a strict no-op (nil span, nil sink) when disabled,
// so instrumented code pays nothing until someone attaches a sink.
package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter. The zero value
// is ready to use; a Counter may be used standalone or through a
// Registry. All methods are safe for concurrent use and allocation-free.
type Counter struct {
	v atomic.Int64
}

// Inc adds 1.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n must be >= 0 for the Prometheus exposition to stay
// well-formed; this is not enforced).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomically read/written float64 value. The zero value is
// ready to use (reading it yields 0).
type Gauge struct {
	bits atomic.Uint64
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add atomically adds d via a compare-and-swap loop.
func (g *Gauge) Add(d float64) {
	for {
		old := g.bits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + d)
		if g.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket cumulative histogram: observation v falls
// into the first bucket whose upper bound is >= v, with an implicit
// +Inf overflow bucket at the end. Observe is a linear scan over the
// (short) bound slice plus three atomic writes — no locks, no
// allocation — so parallel k-NN workers can hammer one histogram
// concurrently. Bounds are fixed at construction.
type Histogram struct {
	bounds  []float64 // ascending upper bounds
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64 // float64 bits, CAS-added
}

// NewHistogram builds a histogram over the given ascending upper
// bounds. An empty or nil bounds slice yields a single +Inf bucket.
func NewHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of observations.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sumBits.Load()) }

// Snapshot copies the histogram state. Taken while writers are active it
// is a per-field-consistent view: each bucket count is an atomic read,
// so totals may lag individual buckets by in-flight observations, but
// no value is ever torn or decreasing.
func (h *Histogram) Snapshot() HistogramSnapshot {
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), h.bounds...),
		Counts: make([]int64, len(h.counts)),
		Count:  h.count.Load(),
		Sum:    h.Sum(),
	}
	for i := range h.counts {
		s.Counts[i] = h.counts[i].Load()
	}
	return s
}

// HistogramSnapshot is a point-in-time copy of a Histogram. Counts has
// one entry per bound plus a final overflow (+Inf) bucket.
type HistogramSnapshot struct {
	Bounds []float64 `json:"bounds"`
	Counts []int64   `json:"counts"`
	Count  int64     `json:"count"`
	Sum    float64   `json:"sum"`
}

// Mean returns Sum/Count (0 when empty).
func (s HistogramSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return s.Sum / float64(s.Count)
}

// Quantile estimates the q-quantile (0 <= q <= 1) by locating the
// bucket holding the target rank and interpolating linearly inside it.
// The overflow bucket yields its lower bound (the largest finite bound).
func (s HistogramSnapshot) Quantile(q float64) float64 {
	total := int64(0)
	for _, c := range s.Counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var cum float64
	for i, c := range s.Counts {
		prev := cum
		cum += float64(c)
		if cum < rank || c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if i >= len(s.Bounds) {
			return lo // overflow bucket: no finite upper bound
		}
		hi := s.Bounds[i]
		frac := (rank - prev) / float64(c)
		return lo + (hi-lo)*frac
	}
	if len(s.Bounds) == 0 {
		return 0
	}
	return s.Bounds[len(s.Bounds)-1]
}

// LatencyBuckets is the default latency ladder in seconds: 10 µs to
// 10 s, roughly geometric.
func LatencyBuckets() []float64 {
	return []float64{
		1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
		1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2,
		0.1, 0.25, 0.5, 1, 2.5, 5, 10,
	}
}

// SizeBuckets is the default count ladder (result sizes, k values,
// leaves, evaluations): 1 to 1e6, roughly geometric.
func SizeBuckets() []float64 {
	return []float64{1, 2, 5, 10, 25, 50, 100, 250, 500, 1000, 2500, 5000, 1e4, 1e5, 1e6}
}

// RatioBuckets is the default ladder for values in [0, 1] (prune
// ratios, utilizations): steps of 0.1.
func RatioBuckets() []float64 {
	return []float64{0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9, 1.0}
}

// Registry names and owns a set of metrics so they can be snapshotted
// and served together. Lookup (Counter, Gauge, Histogram) takes a lock
// and is meant for wiring time — hot paths hold on to the returned
// handles, whose operations are lock-free.
type Registry struct {
	mu         sync.RWMutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
	windows    map[string]*Window
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   map[string]*Counter{},
		gauges:     map[string]*Gauge{},
		histograms: map[string]*Histogram{},
		windows:    map[string]*Window{},
	}
}

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given
// bounds on first use. Later calls return the existing histogram
// regardless of the bounds argument.
func (r *Registry) Histogram(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		h = NewHistogram(bounds)
		r.histograms[name] = h
	}
	return h
}

// Window returns the named rolling windowed histogram, creating it
// with the given bounds and span on first use. Later calls return the
// existing window regardless of the arguments. Windows snapshot into
// Snapshot.Histograms alongside cumulative histograms (the name should
// make the windowed semantics obvious, e.g. "cost.window.prune_ratio"),
// so they export through /metrics and /debug/vars with no extra
// plumbing.
func (r *Registry) Window(name string, bounds []float64, span time.Duration) *Window {
	r.mu.Lock()
	defer r.mu.Unlock()
	w, ok := r.windows[name]
	if !ok {
		w = NewWindow(bounds, span)
		r.windows[name] = w
	}
	return w
}

// Snapshot copies every metric's current value. Safe to call while
// writers are active (see Histogram.Snapshot for the consistency
// contract).
func (r *Registry) Snapshot() Snapshot {
	r.mu.RLock()
	defer r.mu.RUnlock()
	s := Snapshot{
		Counters:   make(map[string]int64, len(r.counters)),
		Gauges:     make(map[string]float64, len(r.gauges)),
		Histograms: make(map[string]HistogramSnapshot, len(r.histograms)),
	}
	for name, c := range r.counters {
		s.Counters[name] = c.Value()
	}
	for name, g := range r.gauges {
		s.Gauges[name] = g.Value()
	}
	for name, h := range r.histograms {
		s.Histograms[name] = h.Snapshot()
	}
	for name, w := range r.windows {
		s.Histograms[name] = w.Snapshot()
	}
	return s
}

// Snapshot is a point-in-time copy of a Registry.
type Snapshot struct {
	Counters   map[string]int64             `json:"counters"`
	Gauges     map[string]float64           `json:"gauges"`
	Histograms map[string]HistogramSnapshot `json:"histograms"`
}

// Merge folds other's metrics into s. The merge is by name with
// last-wins semantics: a name present in both snapshots — including
// histograms whose bucket bounds differ — is replaced wholesale by
// other's value, never summed or bucket-aligned. Registries served
// together are therefore expected to use disjoint name prefixes.
// Merging into a zero-value Snapshot (nil maps) is valid and allocates
// the maps first.
func (s *Snapshot) Merge(other Snapshot) {
	if s.Counters == nil {
		s.Counters = make(map[string]int64, len(other.Counters))
	}
	if s.Gauges == nil {
		s.Gauges = make(map[string]float64, len(other.Gauges))
	}
	if s.Histograms == nil {
		s.Histograms = make(map[string]HistogramSnapshot, len(other.Histograms))
	}
	for name, v := range other.Counters {
		s.Counters[name] = v
	}
	for name, v := range other.Gauges {
		s.Gauges[name] = v
	}
	for name, v := range other.Histograms {
		s.Histograms[name] = v
	}
}
