package obs

import (
	"strings"
	"testing"
)

func TestTraceparentRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		sc := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: i%2 == 0}
		h := sc.Traceparent()
		if len(h) != 55 {
			t.Fatalf("Traceparent() = %q, want 55 bytes", h)
		}
		got, ok := ParseTraceparent(h)
		if !ok {
			t.Fatalf("ParseTraceparent(%q) rejected a rendered header", h)
		}
		if got != sc {
			t.Fatalf("round trip: got %+v, want %+v", got, sc)
		}
	}
}

func TestParseTraceparentValid(t *testing.T) {
	const h = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	sc, ok := ParseTraceparent(h)
	if !ok {
		t.Fatalf("ParseTraceparent(%q) = !ok", h)
	}
	if got := sc.TraceID.String(); got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("TraceID = %s", got)
	}
	if got := sc.SpanID.String(); got != "00f067aa0ba902b7" {
		t.Errorf("SpanID = %s", got)
	}
	if !sc.Sampled {
		t.Error("Sampled = false, want true (flags 01)")
	}

	// Flags 00: valid, unsampled.
	sc, ok = ParseTraceparent(h[:53] + "00")
	if !ok || sc.Sampled {
		t.Errorf("flags 00: ok=%v sampled=%v, want ok, unsampled", ok, sc.Sampled)
	}

	// A future version may append -suffixes after the fixed prefix.
	sc, ok = ParseTraceparent("42" + h[2:] + "-extrafutilefields")
	if !ok || !sc.Sampled {
		t.Errorf("future version with suffix: ok=%v sampled=%v, want ok+sampled", ok, sc.Sampled)
	}
}

func TestParseTraceparentInvalid(t *testing.T) {
	const valid = "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := map[string]string{
		"empty":              "",
		"truncated":          valid[:54],
		"version ff":         "ff" + valid[2:],
		"uppercase hex":      "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01",
		"bad dash":           valid[:2] + "_" + valid[3:],
		"zero trace id":      "00-00000000000000000000000000000000-00f067aa0ba902b7-01",
		"zero span id":       "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01",
		"non-hex version":    "zz" + valid[2:],
		"version 00 + extra": valid + "-suffix",
		"garbage suffix":     valid + "x",
	}
	for name, h := range cases {
		if _, ok := ParseTraceparent(h); ok {
			t.Errorf("%s: ParseTraceparent(%q) accepted, want reject", name, h)
		}
	}
}

func TestNewIDsNonZeroAndDistinct(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if !id.IsValid() {
			t.Fatal("NewTraceID returned the zero id")
		}
		s := id.String()
		if seen[s] {
			t.Fatalf("duplicate trace id %s", s)
		}
		seen[s] = true
		if !NewSpanID().IsValid() {
			t.Fatal("NewSpanID returned the zero id")
		}
	}
	for s := range seen {
		if strings.ToLower(s) != s {
			t.Fatalf("trace id %s is not lowercase hex", s)
		}
	}
}
