package obs

import (
	"context"
	"fmt"
	"log/slog"
	"sync"
	"time"
)

// Field is one key/value attribute on a trace event.
type Field struct {
	Key   string
	Value any
}

// F builds a Field.
func F(key string, value any) Field { return Field{Key: key, Value: value} }

// Event is one structured trace event: a named occurrence inside a
// span, with attributes. The feedback pipeline emits one span per
// feedback round whose events record every classification decision,
// merge accept/reject and the final cluster count.
type Event struct {
	// Span is the name of the enclosing span ("" for free events).
	Span string
	// Name is the event name, e.g. "classify.assign" or "merge.accept".
	Name string
	// Time is when the event was emitted.
	Time time.Time
	// Fields are the event attributes.
	Fields []Field
}

// Field returns the value of the named field (nil when absent).
func (e Event) Field(key string) any {
	for _, f := range e.Fields {
		if f.Key == key {
			return f.Value
		}
	}
	return nil
}

// Sink receives trace events. Implementations must be safe for
// concurrent use. A nil Sink disables tracing: StartSpan returns a nil
// span whose methods are no-ops, so the instrumented code pays only a
// nil check.
type Sink interface {
	Emit(e Event)
}

// Span is a named scope grouping the events of one logical operation
// (e.g. one feedback round). All methods are safe on a nil receiver —
// the disabled-tracing fast path.
type Span struct {
	sink  Sink
	name  string
	start time.Time
}

// StartSpan opens a span on the sink, emitting a "start" event. A nil
// sink returns a nil span (all methods no-op, nothing allocated).
func StartSpan(sink Sink, name string, fields ...Field) *Span {
	if sink == nil {
		return nil
	}
	s := &Span{sink: sink, name: name, start: time.Now()}
	sink.Emit(Event{Span: name, Name: "start", Time: s.start, Fields: fields})
	return s
}

// Enabled reports whether the span records events — hot loops should
// guard field construction with it.
func (s *Span) Enabled() bool { return s != nil }

// Event emits a named event inside the span.
func (s *Span) Event(name string, fields ...Field) {
	if s == nil {
		return
	}
	s.sink.Emit(Event{Span: s.name, Name: name, Time: time.Now(), Fields: fields})
}

// End closes the span, emitting an "end" event carrying the given
// fields plus the elapsed wall-clock milliseconds as "elapsed_ms".
func (s *Span) End(fields ...Field) {
	if s == nil {
		return
	}
	now := time.Now()
	fields = append(fields, F("elapsed_ms", float64(now.Sub(s.start))/1e6))
	s.sink.Emit(Event{Span: s.name, Name: "end", Time: now, Fields: fields})
}

// EmitEvent sends a free (span-less) event to the sink. A nil sink is
// a no-op.
func EmitEvent(sink Sink, name string, fields ...Field) {
	if sink == nil {
		return
	}
	sink.Emit(Event{Name: name, Time: time.Now(), Fields: fields})
}

// SlogSink forwards trace events to a log/slog logger as structured
// records: the span and event names become the "span" and "event"
// attributes, fields pass through as-is.
type SlogSink struct {
	log   *slog.Logger
	level slog.Level
}

// NewSlogSink builds a sink logging at LevelInfo; a nil logger uses
// slog.Default().
func NewSlogSink(l *slog.Logger) *SlogSink {
	if l == nil {
		l = slog.Default()
	}
	return &SlogSink{log: l, level: slog.LevelInfo}
}

// Emit implements Sink.
func (s *SlogSink) Emit(e Event) {
	attrs := make([]any, 0, 2+len(e.Fields))
	attrs = append(attrs, slog.String("span", e.Span))
	for _, f := range e.Fields {
		attrs = append(attrs, slog.Any(f.Key, f.Value))
	}
	s.log.Log(context.Background(), s.level, e.Name, attrs...)
}

// MemorySink collects events in memory — the collection backend for
// tests and for cmd/qbench's obs experiment. Safe for concurrent use.
type MemorySink struct {
	mu     sync.Mutex
	events []Event
}

// Emit implements Sink.
func (m *MemorySink) Emit(e Event) {
	m.mu.Lock()
	m.events = append(m.events, e)
	m.mu.Unlock()
}

// Events returns a copy of the collected events in emission order.
func (m *MemorySink) Events() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	return append([]Event(nil), m.events...)
}

// Drain returns the collected events and clears the sink.
func (m *MemorySink) Drain() []Event {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := m.events
	m.events = nil
	return out
}

// Count returns the number of events named name (any span).
func (m *MemorySink) Count(name string) int {
	m.mu.Lock()
	defer m.mu.Unlock()
	n := 0
	for _, e := range m.events {
		if e.Name == name {
			n++
		}
	}
	return n
}

// String renders the collected events one per line (debugging aid).
func (m *MemorySink) String() string {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := ""
	for _, e := range m.events {
		out += fmt.Sprintf("%s/%s %v\n", e.Span, e.Name, e.Fields)
	}
	return out
}
