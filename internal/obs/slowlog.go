package obs

import (
	"encoding/json"
	"net/http"
	"sort"
	"sync/atomic"
	"time"
)

// SlowLog is a lock-free ring buffer of the most recent slow-request
// profiles, served at /debug/slow. Writers claim a slot with one atomic
// increment and publish an immutable entry with one atomic pointer
// store; readers snapshot the pointers without blocking writers. The
// ring holds the N most *recent* slow requests; the HTTP handler sorts
// them worst-first so the page answers "what were the worst recent
// queries and what were their trace ids".
type SlowLog struct {
	entries []atomic.Pointer[SlowEntry]
	next    atomic.Uint64
}

// SlowEntry is one slow request, frozen at Finish time. Unlike the
// pooled CostProfile it is immutable and owns all its memory, so it can
// sit in the ring (and be serialized) long after the profile was
// recycled.
type SlowEntry struct {
	TraceID    string    `json:"trace_id"`
	SpanID     string    `json:"span_id"`
	Name       string    `json:"name"`
	Start      time.Time `json:"start"`
	DurationMS float64   `json:"duration_ms"`
	Status     int       `json:"status,omitempty"`
	K          int       `json:"k,omitempty"`
	BytesIn    int64     `json:"bytes_in,omitempty"`
	BytesOut   int64     `json:"bytes_out,omitempty"`
	Sampled    bool      `json:"sampled"`
	// StageMS maps stage name → milliseconds for stages that ran.
	StageMS    map[string]float64 `json:"stage_ms,omitempty"`
	Stats      CostStats          `json:"stats"`
	PruneRatio float64            `json:"prune_ratio"`
	Shards     []SlowShard        `json:"shards,omitempty"`
}

// SlowShard is one shard's leg of a slow request.
type SlowShard struct {
	Shard      int       `json:"shard"`
	DurationMS float64   `json:"duration_ms"`
	Stats      CostStats `json:"stats"`
	PruneRatio float64   `json:"prune_ratio"`
}

// NewSlowLog builds a ring holding the size most recent slow requests
// (minimum 1).
func NewSlowLog(size int) *SlowLog {
	if size < 1 {
		size = 1
	}
	return &SlowLog{entries: make([]atomic.Pointer[SlowEntry], size)}
}

// Len returns the ring capacity.
func (l *SlowLog) Len() int { return len(l.entries) }

// Record freezes the profile into the ring. Only called on the slow
// path, so the entry allocation is acceptable by construction.
func (l *SlowLog) Record(p *CostProfile) {
	if l == nil || p == nil {
		return
	}
	e := &SlowEntry{
		TraceID:    p.Ctx.TraceID.String(),
		SpanID:     p.Ctx.SpanID.String(),
		Name:       p.Name,
		Start:      p.Start,
		DurationMS: float64(p.End.Sub(p.Start)) / 1e6,
		Status:     p.Status,
		K:          p.K,
		BytesIn:    p.BytesIn,
		BytesOut:   p.BytesOut,
		Sampled:    p.Ctx.Sampled,
		Stats:      p.Stats,
		PruneRatio: p.Stats.PruneRatio(),
	}
	for s := Stage(0); s < numStages; s++ {
		if d := p.StageDuration(s); d > 0 {
			if e.StageMS == nil {
				e.StageMS = make(map[string]float64, int(numStages))
			}
			e.StageMS[StageNames[s]] = float64(d) / 1e6
		}
	}
	if shards := p.Shards(); len(shards) > 0 {
		e.Shards = make([]SlowShard, len(shards))
		for i, sc := range shards {
			e.Shards[i] = SlowShard{
				Shard:      sc.Shard,
				DurationMS: float64(sc.Duration) / 1e6,
				Stats:      sc.Stats,
				PruneRatio: sc.Stats.PruneRatio(),
			}
		}
	}
	i := l.next.Add(1) - 1
	l.entries[i%uint64(len(l.entries))].Store(e)
}

// Entries returns the live entries, worst (slowest) first.
func (l *SlowLog) Entries() []*SlowEntry {
	if l == nil {
		return nil
	}
	out := make([]*SlowEntry, 0, len(l.entries))
	for i := range l.entries {
		if e := l.entries[i].Load(); e != nil {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(a, b int) bool { return out[a].DurationMS > out[b].DurationMS })
	return out
}

// ServeHTTP serves the ring as JSON: {"count": N, "slow": [worst → ...]}.
func (l *SlowLog) ServeHTTP(w http.ResponseWriter, _ *http.Request) {
	w.Header().Set("Content-Type", "application/json; charset=utf-8")
	entries := l.Entries()
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(map[string]any{"count": len(entries), "slow": entries})
}
