package obs

import (
	"testing"
	"time"
)

// eventsByName groups exported events by trace id for parentage checks.
func rootStarts(events []Event) []Event {
	var out []Event
	for _, e := range events {
		if e.Name == "start" {
			if r, _ := e.Field("root").(bool); r {
				out = append(out, e)
			}
		}
	}
	return out
}

func TestTracerContinuesRemoteTrace(t *testing.T) {
	sink := &MemorySink{}
	tr := NewTracer(TracerOptions{Sink: sink, SampleRate: 0, SlowThreshold: time.Hour})

	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID(), Sampled: true}
	start := time.Now()
	p := tr.Start("search", remote.Traceparent(), start)
	if p.Ctx.TraceID != remote.TraceID {
		t.Fatalf("trace id not continued: got %s, want %s", p.Ctx.TraceID, remote.TraceID)
	}
	if p.Parent != remote.SpanID {
		t.Fatalf("remote parent not recorded: got %s, want %s", p.Parent, remote.SpanID)
	}
	if !p.Sampled() {
		t.Fatal("incoming sampled flag must force export even at rate 0")
	}
	p.StageAt(StageQueue, start, time.Millisecond)
	tr.Finish(p, start.Add(5*time.Millisecond))

	events := sink.Events()
	roots := rootStarts(events)
	if len(roots) != 1 {
		t.Fatalf("exported %d root spans, want 1", len(roots))
	}
	if got := roots[0].Field("parent_span_id"); got != remote.SpanID.String() {
		t.Fatalf("root parent_span_id = %v, want %s", got, remote.SpanID)
	}
	if got := roots[0].Field("trace_id"); got != remote.TraceID.String() {
		t.Fatalf("root trace_id = %v, want %s", got, remote.TraceID)
	}
}

func TestTracerHeadSampling(t *testing.T) {
	sink := &MemorySink{}
	tr := NewTracer(TracerOptions{Sink: sink, SampleRate: 1, SlowThreshold: time.Hour})
	start := time.Now()
	p := tr.Start("search", "", start)
	if !p.Sampled() {
		t.Fatal("rate 1: request not sampled")
	}
	tr.Finish(p, start.Add(time.Millisecond))
	if len(rootStarts(sink.Events())) != 1 {
		t.Fatal("rate 1: no span exported")
	}

	// Rate 0 with a fast request: nothing exported.
	sink2 := &MemorySink{}
	tr2 := NewTracer(TracerOptions{Sink: sink2, SampleRate: 0, SlowThreshold: time.Hour})
	p2 := tr2.Start("search", "", start)
	if p2.Sampled() {
		t.Fatal("rate 0: request sampled")
	}
	tr2.Finish(p2, start.Add(time.Millisecond))
	if n := len(sink2.Events()); n != 0 {
		t.Fatalf("rate 0: %d events exported, want 0", n)
	}
}

func TestTracerTailKeepsSlowRequests(t *testing.T) {
	sink := &MemorySink{}
	slowLog := NewSlowLog(4)
	tr := NewTracer(TracerOptions{Sink: sink, SampleRate: 0, SlowThreshold: 10 * time.Millisecond, SlowLog: slowLog})

	start := time.Now()
	p := tr.Start("search", "", start)
	p.Status = 200
	p.K = 7
	p.AddSearch(start, 40*time.Millisecond, CostStats{LeavesVisited: 3, LeavesTotal: 12})
	tr.Finish(p, start.Add(50*time.Millisecond)) // past the threshold

	if len(rootStarts(sink.Events())) != 1 {
		t.Fatal("slow request not exported despite head sampling miss")
	}
	entries := slowLog.Entries()
	if len(entries) != 1 {
		t.Fatalf("slow log has %d entries, want 1", len(entries))
	}
	e := entries[0]
	if e.Name != "search" || e.Status != 200 || e.K != 7 {
		t.Fatalf("slow entry = %+v", e)
	}
	if e.DurationMS < 49 || e.DurationMS > 51 {
		t.Fatalf("DurationMS = %v, want ~50", e.DurationMS)
	}
	if ms := e.StageMS[StageNames[StageSearch]]; ms < 39 || ms > 41 {
		t.Fatalf("search stage ms = %v, want ~40", ms)
	}
	if e.Stats.LeavesVisited != 3 || e.Stats.LeavesTotal != 12 {
		t.Fatalf("stats = %+v", e.Stats)
	}
	if e.PruneRatio < 0.74 || e.PruneRatio > 0.76 {
		t.Fatalf("PruneRatio = %v, want 0.75", e.PruneRatio)
	}

	// A fast request stays out of both.
	p = tr.Start("search", "", start)
	tr.Finish(p, start.Add(time.Millisecond))
	if len(slowLog.Entries()) != 1 {
		t.Fatal("fast request leaked into the slow log")
	}
}

func TestTracerExportsStageAndShardChildren(t *testing.T) {
	sink := &MemorySink{}
	tr := NewTracer(TracerOptions{Sink: sink, SampleRate: 1})
	start := time.Now()
	p := tr.Start("search", "", start)
	p.StageAt(StageQueue, start, time.Millisecond)
	p.StageAt(StageSearch, start, 8*time.Millisecond)
	p.StageAt(StageMerge, start.Add(8*time.Millisecond), time.Millisecond)
	p.AddShard(0, start, 3*time.Millisecond, CostStats{LeavesVisited: 1, LeavesTotal: 2, DistanceEvals: 10})
	p.AddShard(1, start, 5*time.Millisecond, CostStats{LeavesVisited: 2, LeavesTotal: 2, DistanceEvals: 20})
	rootSpan := p.Ctx.SpanID.String()
	traceID := p.Ctx.TraceID.String()
	tr.Finish(p, start.Add(10*time.Millisecond))

	wantSpans := map[string]int{
		"request.search":        2, // root start + end
		"request.search.queue":  2,
		"request.search.search": 2,
		"request.search.merge":  2,
		"request.search.shard":  4, // two shards x start/end
	}
	got := map[string]int{}
	for _, e := range sink.Events() {
		got[e.Span]++
		if tid := e.Field("trace_id"); tid != traceID {
			t.Fatalf("event %s/%s trace_id = %v, want %s", e.Span, e.Name, tid, traceID)
		}
		if e.Span != "request.search" {
			if parent := e.Field("parent_span_id"); parent != rootSpan {
				t.Fatalf("child %s/%s parent_span_id = %v, want root %s", e.Span, e.Name, parent, rootSpan)
			}
		}
	}
	for span, n := range wantSpans {
		if got[span] != n {
			t.Fatalf("span %s: %d events, want %d (all: %v)", span, got[span], n, got)
		}
	}

	// Shard end events carry the per-shard search stats.
	for _, e := range sink.Events() {
		if e.Span != "request.search.shard" || e.Name != "end" {
			continue
		}
		shard, _ := e.Field("shard").(int)
		evals, _ := e.Field("distance_evals").(int)
		if want := (shard + 1) * 10; evals != want {
			t.Fatalf("shard %d distance_evals = %d, want %d", shard, evals, want)
		}
	}
}

func TestProfileStageAccumulates(t *testing.T) {
	var p CostProfile
	t0 := time.Now()
	p.StageAt(StageLock, t0, time.Millisecond)
	p.StageAt(StageLock, t0.Add(time.Second), 2*time.Millisecond)
	if d := p.StageDuration(StageLock); d != 3*time.Millisecond {
		t.Fatalf("accumulated lock stage = %v, want 3ms", d)
	}
	// Nil-safety: every method must be a no-op on a nil profile.
	var nilP *CostProfile
	nilP.StageAt(StageQueue, t0, time.Millisecond)
	nilP.AddSearch(t0, time.Millisecond, CostStats{})
	nilP.AddShard(0, t0, time.Millisecond, CostStats{})
	if nilP.StageDuration(StageQueue) != 0 || nilP.Sampled() || nilP.Shards() != nil {
		t.Fatal("nil profile methods must no-op")
	}
}

// TestUnsampledPathZeroAllocs is the CI allocation gate: a full
// unsampled request's obs-layer handling — Start with an incoming
// traceparent, stage timings, per-shard attribution, Finish — must not
// allocate. The pooled profile and its recycled shards slice make this
// hold after warm-up (AllocsPerRun runs the function once before
// measuring, which warms both).
func TestUnsampledPathZeroAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; alloc counts asserted in the non-race run")
	}
	slowLog := NewSlowLog(8)
	tr := NewTracer(TracerOptions{Sink: &MemorySink{}, SampleRate: 0, SlowThreshold: time.Hour, SlowLog: slowLog})
	remote := SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
	header := remote.Traceparent()
	start := time.Now()
	stats := CostStats{LeavesVisited: 4, LeavesTotal: 16, DistanceEvals: 128}

	allocs := testing.AllocsPerRun(200, func() {
		p := tr.Start("search", header, start)
		p.StageAt(StageQueue, start, time.Microsecond)
		p.StageAt(StageSearch, start, time.Millisecond)
		for i := 0; i < 4; i++ {
			p.AddShard(i, start, time.Millisecond, stats)
		}
		p.StageAt(StageMerge, start, time.Microsecond)
		p.StageAt(StageEncode, start, time.Microsecond)
		p.Status = 200
		p.BytesOut = 512
		tr.Finish(p, start.Add(2*time.Millisecond))
	})
	if allocs != 0 {
		t.Fatalf("unsampled request path allocated %.1f times/op, want 0", allocs)
	}
}

func TestSnapshotMergeEdgeCases(t *testing.T) {
	// Zero-value destination: Merge must allocate the maps.
	var dst Snapshot
	src := Snapshot{
		Counters: map[string]int64{"a.count": 3},
		Gauges:   map[string]float64{"a.gauge": 1.5},
		Histograms: map[string]HistogramSnapshot{
			"a.hist": {Bounds: []float64{1, 2}, Counts: []int64{1, 0, 0}, Count: 1, Sum: 0.5},
		},
	}
	dst.Merge(src)
	if dst.Counters["a.count"] != 3 || dst.Gauges["a.gauge"] != 1.5 {
		t.Fatalf("merge into zero value: %+v", dst)
	}

	// Overlapping names: last wins, never summed.
	dst.Merge(Snapshot{Counters: map[string]int64{"a.count": 10}})
	if dst.Counters["a.count"] != 10 {
		t.Fatalf("overlapping counter = %d, want last-wins 10", dst.Counters["a.count"])
	}

	// Mismatched histogram bucket bounds: replaced wholesale — the
	// incoming bounds and counts, not an alignment or a sum.
	other := Snapshot{Histograms: map[string]HistogramSnapshot{
		"a.hist": {Bounds: []float64{5, 10, 20}, Counts: []int64{0, 2, 0, 0}, Count: 2, Sum: 15},
	}}
	dst.Merge(other)
	h := dst.Histograms["a.hist"]
	if len(h.Bounds) != 3 || h.Bounds[0] != 5 || h.Count != 2 || h.Sum != 15 {
		t.Fatalf("mismatched-bounds histogram not replaced wholesale: %+v", h)
	}

	// Merging an empty snapshot changes nothing.
	before := dst.Counters["a.count"]
	dst.Merge(Snapshot{})
	if dst.Counters["a.count"] != before {
		t.Fatal("empty merge mutated destination")
	}
}

func TestSlowLogRingAndOrdering(t *testing.T) {
	l := NewSlowLog(3)
	if l.Len() != 3 {
		t.Fatalf("Len = %d", l.Len())
	}
	record := func(name string, d time.Duration) {
		p := &CostProfile{Name: name, Start: time.Unix(0, 0), End: time.Unix(0, 0).Add(d)}
		p.Ctx = SpanContext{TraceID: NewTraceID(), SpanID: NewSpanID()}
		l.Record(p)
	}
	record("a", 10*time.Millisecond)
	record("b", 40*time.Millisecond)
	record("c", 20*time.Millisecond)
	record("d", 30*time.Millisecond) // wraps, evicting "a"

	entries := l.Entries()
	if len(entries) != 3 {
		t.Fatalf("entries = %d, want 3", len(entries))
	}
	wantOrder := []string{"b", "d", "c"} // worst first
	for i, e := range entries {
		if e.Name != wantOrder[i] {
			t.Fatalf("order: got %v", []string{entries[0].Name, entries[1].Name, entries[2].Name})
		}
	}

	// Nil receivers no-op (slow log disabled).
	var nilLog *SlowLog
	nilLog.Record(&CostProfile{})
	if nilLog.Entries() != nil {
		t.Fatal("nil slow log Entries() != nil")
	}
}
