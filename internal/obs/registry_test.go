package obs

import (
	"math"
	"sync"
	"testing"
)

func TestCounterBasics(t *testing.T) {
	var c Counter
	if c.Value() != 0 {
		t.Fatalf("zero counter = %d, want 0", c.Value())
	}
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Fatalf("counter = %d, want 5", c.Value())
	}
}

func TestGaugeBasics(t *testing.T) {
	var g Gauge
	if g.Value() != 0 {
		t.Fatalf("zero gauge = %v, want 0", g.Value())
	}
	g.Set(2.5)
	g.Add(-1)
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewHistogram([]float64{1, 10, 100})
	for _, v := range []float64{0.5, 1, 5, 50, 500} {
		h.Observe(v)
	}
	s := h.Snapshot()
	// 0.5 and 1 land in le=1; 5 in le=10; 50 in le=100; 500 overflows.
	want := []int64{2, 1, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Fatalf("bucket %d = %d, want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.Sum != 556.5 {
		t.Fatalf("sum = %v, want 556.5", s.Sum)
	}
	if got := s.Mean(); got != 556.5/5 {
		t.Fatalf("mean = %v", got)
	}
}

func TestHistogramUnsortedBoundsAreSorted(t *testing.T) {
	h := NewHistogram([]float64{100, 1, 10})
	h.Observe(5)
	s := h.Snapshot()
	if s.Bounds[0] != 1 || s.Bounds[1] != 10 || s.Bounds[2] != 100 {
		t.Fatalf("bounds not sorted: %v", s.Bounds)
	}
	if s.Counts[1] != 1 {
		t.Fatalf("5 should land in le=10: %v", s.Counts)
	}
}

func TestHistogramQuantile(t *testing.T) {
	h := NewHistogram([]float64{1, 2, 3, 4})
	for i := 0; i < 100; i++ {
		h.Observe(float64(i%4) + 0.5) // uniform over the four buckets
	}
	s := h.Snapshot()
	med := s.Quantile(0.5)
	if med < 1 || med > 3 {
		t.Fatalf("median = %v, want within [1, 3]", med)
	}
	if q := s.Quantile(0); q < 0 || q > 1 {
		t.Fatalf("q0 = %v", q)
	}
	if q := s.Quantile(1); q < 3 || q > 4 {
		t.Fatalf("q1 = %v, want in (3, 4]", q)
	}
	if (HistogramSnapshot{}).Quantile(0.5) != 0 {
		t.Fatal("empty snapshot quantile should be 0")
	}
}

func TestHistogramQuantileOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{1})
	h.Observe(100)
	h.Observe(200)
	s := h.Snapshot()
	if got := s.Quantile(0.5); got != 1 {
		t.Fatalf("overflow-bucket quantile = %v, want largest finite bound 1", got)
	}
}

// TestRegistryConcurrent hammers one registry from many goroutines —
// lookups, writes and snapshots interleaved — and checks exact totals.
// Run under -race this is the concurrency-safety proof for the package.
func TestRegistryConcurrent(t *testing.T) {
	reg := NewRegistry()
	const workers = 8
	const perWorker = 2000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c := reg.Counter("hits")
			g := reg.Gauge("level")
			h := reg.Histogram("lat", []float64{0.25, 0.5, 0.75})
			for i := 0; i < perWorker; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%4) * 0.25)
				if i%500 == 0 {
					_ = reg.Snapshot() // snapshot while writing
				}
			}
		}(w)
	}
	wg.Wait()
	s := reg.Snapshot()
	if got := s.Counters["hits"]; got != workers*perWorker {
		t.Fatalf("hits = %d, want %d", got, workers*perWorker)
	}
	if got := s.Gauges["level"]; got != workers*perWorker {
		t.Fatalf("level = %v, want %d", got, workers*perWorker)
	}
	h := s.Histograms["lat"]
	if h.Count != workers*perWorker {
		t.Fatalf("histogram count = %d, want %d", h.Count, workers*perWorker)
	}
	var bucketTotal int64
	for _, c := range h.Counts {
		bucketTotal += c
	}
	if bucketTotal != h.Count {
		t.Fatalf("bucket total %d != count %d", bucketTotal, h.Count)
	}
	wantSum := float64(workers) * perWorker / 4 * (0 + 0.25 + 0.5 + 0.75)
	if math.Abs(h.Sum-wantSum) > 1e-6 {
		t.Fatalf("sum = %v, want %v", h.Sum, wantSum)
	}
}

func TestRegistryReturnsSameHandle(t *testing.T) {
	reg := NewRegistry()
	if reg.Counter("a") != reg.Counter("a") {
		t.Fatal("counter handle not stable")
	}
	if reg.Gauge("g") != reg.Gauge("g") {
		t.Fatal("gauge handle not stable")
	}
	if reg.Histogram("h", []float64{1}) != reg.Histogram("h", []float64{2}) {
		t.Fatal("histogram handle not stable")
	}
}

// TestHotPathAllocationFree asserts the acceptance criterion that every
// metric write on a pre-resolved handle performs zero allocations.
func TestHotPathAllocationFree(t *testing.T) {
	var c Counter
	var g Gauge
	h := NewHistogram(LatencyBuckets())
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Fatalf("Counter writes allocate %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { g.Set(1); g.Add(0.5) }); n != 0 {
		t.Fatalf("Gauge writes allocate %v/op", n)
	}
	if n := testing.AllocsPerRun(1000, func() { h.Observe(0.003) }); n != 0 {
		t.Fatalf("Histogram.Observe allocates %v/op", n)
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(float64(i%10) * 1e-4)
	}
}

func BenchmarkHistogramObserveParallel(b *testing.B) {
	h := NewHistogram(LatencyBuckets())
	b.ReportAllocs()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			h.Observe(2.5e-4)
		}
	})
}
