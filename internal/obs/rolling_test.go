package obs

import (
	"sync"
	"testing"
	"time"
)

// testClock injects a controllable time source into a Window.
type testClock struct {
	mu  sync.Mutex
	now int64
}

func (c *testClock) nanos() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.now += d.Nanoseconds()
	c.mu.Unlock()
}

func newTestWindow(bounds []float64, span time.Duration) (*Window, *testClock) {
	w := NewWindow(bounds, span)
	c := &testClock{now: span.Nanoseconds() * 10} // away from epoch 0
	w.nowNanos = c.nanos
	return w, c
}

func TestWindowObserveAndSnapshot(t *testing.T) {
	w, _ := newTestWindow([]float64{1, 2, 4}, 8*time.Second)
	for _, v := range []float64{0.5, 1.5, 3, 100} {
		w.Observe(v)
	}
	s := w.Snapshot()
	if s.Count != 4 {
		t.Fatalf("Count = %d, want 4", s.Count)
	}
	if s.Sum != 105 {
		t.Fatalf("Sum = %v, want 105", s.Sum)
	}
	want := []int64{1, 1, 1, 1} // one per bucket incl. overflow
	for i, c := range s.Counts {
		if c != want[i] {
			t.Fatalf("Counts = %v, want %v", s.Counts, want)
		}
	}
	if m := w.Mean(); m != 105.0/4 {
		t.Fatalf("Mean = %v", m)
	}
}

func TestWindowExpiry(t *testing.T) {
	// 8-second span = 1-second slots.
	w, clk := newTestWindow(nil, 8*time.Second)
	w.Observe(1)
	w.Observe(1)
	if got := w.Snapshot().Count; got != 2 {
		t.Fatalf("fresh observations: Count = %d, want 2", got)
	}

	// Half a window later both observations still show.
	clk.advance(4 * time.Second)
	w.Observe(1)
	if got := w.Snapshot().Count; got != 3 {
		t.Fatalf("mid-window: Count = %d, want 3", got)
	}

	// Past the full span the first burst has aged out but the recent
	// observation survives.
	clk.advance(6 * time.Second)
	if got := w.Snapshot().Count; got != 1 {
		t.Fatalf("after expiry: Count = %d, want 1", got)
	}

	// Far future: empty, and Mean/Quantile degrade to 0.
	clk.advance(time.Hour)
	if got := w.Snapshot().Count; got != 0 {
		t.Fatalf("stale window: Count = %d, want 0", got)
	}
	if w.Mean() != 0 || w.Quantile(0.95) != 0 {
		t.Fatalf("empty window: Mean=%v Quantile=%v, want 0,0", w.Mean(), w.Quantile(0.95))
	}
}

func TestWindowSlotRecycling(t *testing.T) {
	// Walking time forward must recycle old slots rather than grow
	// memory or double-count: after k full spans only the trailing
	// window contributes.
	w, clk := newTestWindow(nil, 8*time.Second)
	for i := 0; i < 50; i++ {
		w.Observe(float64(i))
		clk.advance(time.Second)
	}
	// Snapshot covers the last windowSlots+1 = 9 epochs; the final
	// advance left the in-progress epoch empty and the oldest slot was
	// recycled by a newer epoch, so 8 one-observation slots remain.
	if got := w.Snapshot().Count; got != 8 {
		t.Fatalf("after long walk: Count = %d, want 8", got)
	}
}

func TestWindowQuantile(t *testing.T) {
	w, _ := newTestWindow([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}, 8*time.Second)
	for i := 1; i <= 100; i++ {
		w.Observe(float64(i % 10))
	}
	p95 := w.Quantile(0.95)
	if p95 < 8 || p95 > 10 {
		t.Fatalf("Quantile(0.95) = %v, want within [8, 10]", p95)
	}
}

func TestWindowConcurrent(t *testing.T) {
	// Hammer Observe/Snapshot from many goroutines across slot
	// boundaries; the race detector is the real assertion here.
	w, clk := newTestWindow([]float64{0.5}, 2*time.Second)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 2000; i++ {
				w.Observe(float64(i&1) * 0.75)
				if i%64 == 0 {
					_ = w.Snapshot()
				}
			}
		}()
	}
	for i := 0; i < 40; i++ {
		clk.advance(100 * time.Millisecond)
		time.Sleep(time.Millisecond)
	}
	wg.Wait()
	if got := w.Snapshot().Count; got < 0 {
		t.Fatalf("Count = %d", got)
	}
}

func TestRegistryWindowSnapshots(t *testing.T) {
	reg := NewRegistry()
	w := reg.Window("cost.window.test", []float64{1}, time.Minute)
	if again := reg.Window("cost.window.test", nil, time.Hour); again != w {
		t.Fatal("Window: second lookup returned a different window")
	}
	w.Observe(0.5)
	snap := reg.Snapshot()
	h, ok := snap.Histograms["cost.window.test"]
	if !ok {
		t.Fatal("window missing from registry snapshot histograms")
	}
	if h.Count != 1 || h.Sum != 0.5 {
		t.Fatalf("window snapshot = count %d sum %v, want 1, 0.5", h.Count, h.Sum)
	}
}
