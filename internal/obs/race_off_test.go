//go:build !race

package obs

// raceEnabled reports whether the race detector instruments this test
// binary; its instrumentation allocates, so alloc-count assertions are
// skipped under -race.
const raceEnabled = false
