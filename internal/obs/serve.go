package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strings"
	"time"
)

// DebugServer serves a Registry over HTTP for operational inspection:
//
//	/debug/vars    expvar-style JSON (the registry snapshot plus
//	               runtime gauges: goroutines, heap bytes, GC count)
//	/metrics       Prometheus text exposition format
//	/debug/pprof/  the standard net/http/pprof handlers
//
// It owns its listener and serve goroutine; Close shuts it down
// gracefully and does not return until the goroutine has exited, so a
// closed server leaks nothing (asserted by TestServeDebugNoLeak).
type DebugServer struct {
	srv  *http.Server
	lis  net.Listener
	done chan struct{}
}

// ServeDebug starts a debug server for one or more registries on addr
// (e.g. "localhost:6060"; ":0" picks a free port, see Addr). The server
// runs on its own goroutine until Close. Additional registries are
// merged into every exposition (a serving layer can mount its own
// metrics next to the database's); metric names must not collide across
// registries — on collision the later registry wins.
func ServeDebug(addr string, reg *Registry, more ...*Registry) (*DebugServer, error) {
	return ServeDebugWith(addr, nil, reg, more...)
}

// ServeDebugWith is ServeDebug with extra handlers mounted on the debug
// mux — the serving tier mounts its slow-query log at "/debug/slow".
// Extra patterns must not collide with the built-in ones.
func ServeDebugWith(addr string, extra map[string]http.Handler, reg *Registry, more ...*Registry) (*DebugServer, error) {
	if reg == nil {
		return nil, fmt.Errorf("obs: nil registry")
	}
	regs := append([]*Registry{reg}, more...)
	snapshot := func() Snapshot {
		s := regs[0].Snapshot()
		for _, r := range regs[1:] {
			if r == nil {
				continue
			}
			s.Merge(r.Snapshot())
		}
		return s
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/vars", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json; charset=utf-8")
		var ms runtime.MemStats
		runtime.ReadMemStats(&ms)
		doc := map[string]any{
			"qcluster": snapshot(),
			"runtime": map[string]any{
				"goroutines":     runtime.NumGoroutine(),
				"heap_alloc":     ms.HeapAlloc,
				"total_alloc":    ms.TotalAlloc,
				"num_gc":         ms.NumGC,
				"gomaxprocs":     runtime.GOMAXPROCS(0),
				"uptime_seconds": time.Since(startTime).Seconds(),
			},
		}
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_, _ = w.Write([]byte(PrometheusText(snapshot())))
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for pattern, h := range extra {
		if h != nil {
			mux.Handle(pattern, h)
		}
	}

	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("obs: listen %s: %w", addr, err)
	}
	d := &DebugServer{
		srv:  &http.Server{Handler: mux, ReadHeaderTimeout: 5 * time.Second},
		lis:  lis,
		done: make(chan struct{}),
	}
	go func() {
		defer close(d.done)
		_ = d.srv.Serve(lis) // returns http.ErrServerClosed on Shutdown
	}()
	return d, nil
}

var startTime = time.Now()

// Addr returns the bound listen address (useful with ":0").
func (d *DebugServer) Addr() string { return d.lis.Addr().String() }

// Close gracefully shuts the server down and waits for the serve
// goroutine to exit.
func (d *DebugServer) Close() error {
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	err := d.srv.Shutdown(ctx)
	<-d.done
	return err
}

// PrometheusText renders a snapshot in the Prometheus text exposition
// format (version 0.0.4). Dotted metric names become underscore-joined
// ("search.latency_seconds" → "qcluster_search_latency_seconds");
// histograms expose the standard _bucket/_sum/_count triple with
// cumulative le labels.
func PrometheusText(s Snapshot) string {
	var b strings.Builder
	for _, name := range sortedKeys(s.Counters) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name])
	}
	for _, name := range sortedKeys(s.Gauges) {
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s gauge\n%s %g\n", pn, pn, s.Gauges[name])
	}
	hnames := make([]string, 0, len(s.Histograms))
	for name := range s.Histograms {
		hnames = append(hnames, name)
	}
	sort.Strings(hnames)
	for _, name := range hnames {
		h := s.Histograms[name]
		pn := promName(name)
		fmt.Fprintf(&b, "# TYPE %s histogram\n", pn)
		var cum int64
		for i, c := range h.Counts {
			cum += c
			le := "+Inf"
			if i < len(h.Bounds) {
				le = fmt.Sprintf("%g", h.Bounds[i])
			}
			fmt.Fprintf(&b, "%s_bucket{le=%q} %d\n", pn, le, cum)
		}
		fmt.Fprintf(&b, "%s_sum %g\n%s_count %d\n", pn, h.Sum, pn, h.Count)
	}
	return b.String()
}

func promName(name string) string {
	return "qcluster_" + strings.NewReplacer(".", "_", "-", "_").Replace(name)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
