package obs

import (
	"math"
	"sort"
	"sync/atomic"
	"time"
)

// Window is a rolling windowed histogram: the fixed-bucket value
// histogram of Histogram crossed with a ring of time slots, so
// snapshots reflect only the last `span` of observations instead of
// the process lifetime. It is the substrate for the live per-query
// cost estimators (recent prune ratio, abandonment rate, leaf counts,
// per-shard latency p95) that a cost-based planner and admission
// control consume — a cumulative histogram would let yesterday's
// workload drown out the last thirty seconds.
//
// Observe is lock-free and allocation-free: locate the current time
// slot, lazily recycle it when its epoch is stale, then the same
// atomic bucket writes as Histogram. Recycling races are tolerated by
// design — a writer straddling a slot boundary may land an observation
// in a just-reset slot or lose one to the reset — which bounds the
// error to the boundary instants; the estimators feed planners, not
// accounting.
type Window struct {
	bounds   []float64 // ascending upper value bounds
	slotDur  int64     // nanoseconds per time slot
	slots    []windowSlot
	nowNanos func() int64 // injected clock for tests; time.Now based otherwise
}

type windowSlot struct {
	epoch   atomic.Int64 // slot index since the epoch; stale = recyclable
	counts  []atomic.Int64
	count   atomic.Int64
	sumBits atomic.Uint64
}

// windowSlots is the time resolution: the window span is divided into
// this many slots, plus one in-progress slot, so a snapshot covers
// between span and span+span/windowSlots of history.
const windowSlots = 8

// NewWindow builds a rolling histogram over the given ascending value
// bounds covering (approximately) the trailing span. A span below one
// second is raised to one second; nil bounds yield a single +Inf
// bucket.
func NewWindow(bounds []float64, span time.Duration) *Window {
	if span < time.Second {
		span = time.Second
	}
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	w := &Window{
		bounds:   bs,
		slotDur:  span.Nanoseconds() / windowSlots,
		slots:    make([]windowSlot, windowSlots+1),
		nowNanos: func() int64 { return time.Now().UnixNano() },
	}
	for i := range w.slots {
		w.slots[i].counts = make([]atomic.Int64, len(bs)+1)
		w.slots[i].epoch.Store(-1)
	}
	return w
}

// Observe records one value into the current time slot.
func (w *Window) Observe(v float64) {
	s := w.slot(w.nowNanos() / w.slotDur)
	i := 0
	for i < len(w.bounds) && v > w.bounds[i] {
		i++
	}
	s.counts[i].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		nb := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// slot returns the slot for time epoch e, recycling a stale slot on
// first touch. The CAS winner zeroes the slot; a loser (or a straggler
// from the previous epoch) writes into the fresh slot immediately,
// which at worst misplaces boundary observations by one slot.
func (w *Window) slot(e int64) *windowSlot {
	s := &w.slots[int(e%int64(len(w.slots)))]
	if old := s.epoch.Load(); old != e && s.epoch.CompareAndSwap(old, e) {
		for i := range s.counts {
			s.counts[i].Store(0)
		}
		s.count.Store(0)
		s.sumBits.Store(0)
	}
	return s
}

// Snapshot folds the live (non-expired) time slots into one
// HistogramSnapshot covering the trailing window, reusing the same
// Mean/Quantile estimators as the cumulative histograms.
func (w *Window) Snapshot() HistogramSnapshot {
	nowE := w.nowNanos() / w.slotDur
	s := HistogramSnapshot{
		Bounds: append([]float64(nil), w.bounds...),
		Counts: make([]int64, len(w.bounds)+1),
	}
	minE := nowE - int64(len(w.slots)) + 1
	for i := range w.slots {
		sl := &w.slots[i]
		e := sl.epoch.Load()
		if e < minE || e > nowE {
			continue
		}
		for j := range sl.counts {
			s.Counts[j] += sl.counts[j].Load()
		}
		s.Count += sl.count.Load()
		s.Sum += math.Float64frombits(sl.sumBits.Load())
	}
	return s
}

// Mean returns the windowed mean (0 when the window is empty).
func (w *Window) Mean() float64 { return w.Snapshot().Mean() }

// Quantile estimates the windowed q-quantile (see
// HistogramSnapshot.Quantile).
func (w *Window) Quantile(q float64) float64 { return w.Snapshot().Quantile(q) }
