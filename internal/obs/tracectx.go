package obs

import (
	"encoding/hex"
	"math/rand/v2"
)

// This file is the W3C Trace Context slice of the observability layer:
// trace/span identifiers, the `traceparent` header format that carries
// them across process boundaries, and the SpanContext triple the
// request tracer threads from HTTP ingress down to the per-shard
// searches. Everything here is allocation-free except the String/
// Traceparent renderers, which only run on the sampled/slow export
// path.

// TraceID is a 128-bit trace identifier (W3C trace-id). The zero value
// is invalid per the spec.
type TraceID [16]byte

// SpanID is a 64-bit span identifier (W3C parent-id). The zero value is
// invalid per the spec.
type SpanID [8]byte

// IsValid reports whether the id is non-zero.
func (t TraceID) IsValid() bool { return t != TraceID{} }

// IsValid reports whether the id is non-zero.
func (s SpanID) IsValid() bool { return s != SpanID{} }

// String renders the id as 32 lowercase hex digits.
func (t TraceID) String() string { return hex.EncodeToString(t[:]) }

// String renders the id as 16 lowercase hex digits.
func (s SpanID) String() string { return hex.EncodeToString(s[:]) }

// NewTraceID returns a random non-zero trace id. The generator is
// math/rand/v2's per-thread ChaCha8 stream — ids need uniqueness, not
// secrecy — so generation takes no lock and performs no allocation.
func NewTraceID() TraceID {
	var t TraceID
	for !t.IsValid() {
		putUint64(t[0:8], rand.Uint64())
		putUint64(t[8:16], rand.Uint64())
	}
	return t
}

// NewSpanID returns a random non-zero span id.
func NewSpanID() SpanID {
	var s SpanID
	for !s.IsValid() {
		putUint64(s[0:8], rand.Uint64())
	}
	return s
}

func putUint64(b []byte, v uint64) {
	_ = b[7]
	b[0] = byte(v >> 56)
	b[1] = byte(v >> 48)
	b[2] = byte(v >> 40)
	b[3] = byte(v >> 32)
	b[4] = byte(v >> 24)
	b[5] = byte(v >> 16)
	b[6] = byte(v >> 8)
	b[7] = byte(v)
}

// SpanContext identifies one span inside one trace, plus the W3C
// sampled flag — the unit the serving tier propagates and the tracer
// parents children under.
type SpanContext struct {
	TraceID TraceID
	SpanID  SpanID
	// Sampled is the W3C trace-flags sampled bit: the upstream caller
	// recorded (or wants recorded) this trace.
	Sampled bool
}

// IsValid reports whether both ids are non-zero.
func (sc SpanContext) IsValid() bool { return sc.TraceID.IsValid() && sc.SpanID.IsValid() }

// Traceparent renders the context as a W3C traceparent header value:
// version 00, 32-hex trace-id, 16-hex parent-id, 2-hex flags.
func (sc SpanContext) Traceparent() string {
	buf := make([]byte, 0, 55)
	buf = append(buf, "00-"...)
	buf = hex.AppendEncode(buf, sc.TraceID[:])
	buf = append(buf, '-')
	buf = hex.AppendEncode(buf, sc.SpanID[:])
	if sc.Sampled {
		buf = append(buf, "-01"...)
	} else {
		buf = append(buf, "-00"...)
	}
	return string(buf)
}

// ParseTraceparent parses a W3C traceparent header value
// ("00-<32 hex>-<16 hex>-<2 hex>"). It accepts future versions (any
// two-hex-digit version except "ff") per the spec's forward-compat
// rule, requires lowercase hex, and rejects all-zero ids. ok is false
// for anything malformed — the caller then starts a fresh root trace.
func ParseTraceparent(h string) (sc SpanContext, ok bool) {
	// Fixed layout: 2+1+32+1+16+1+2 = 55 bytes; a future version may
	// append "-..." suffixes, which we ignore.
	if len(h) < 55 {
		return SpanContext{}, false
	}
	if len(h) > 55 && h[55] != '-' {
		return SpanContext{}, false
	}
	if h[2] != '-' || h[35] != '-' || h[52] != '-' {
		return SpanContext{}, false
	}
	ver, ok := hexByte(h[0], h[1])
	if !ok || ver == 0xff {
		return SpanContext{}, false
	}
	if ver == 0 && len(h) != 55 {
		return SpanContext{}, false
	}
	for i := 0; i < 16; i++ {
		b, ok := hexByte(h[3+2*i], h[4+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.TraceID[i] = b
	}
	for i := 0; i < 8; i++ {
		b, ok := hexByte(h[36+2*i], h[37+2*i])
		if !ok {
			return SpanContext{}, false
		}
		sc.SpanID[i] = b
	}
	flags, ok := hexByte(h[53], h[54])
	if !ok {
		return SpanContext{}, false
	}
	sc.Sampled = flags&0x01 != 0
	if !sc.IsValid() {
		return SpanContext{}, false
	}
	return sc, true
}

// hexByte decodes two lowercase hex digits (the spec forbids uppercase
// in traceparent).
func hexByte(hi, lo byte) (byte, bool) {
	h, ok1 := hexNibble(hi)
	l, ok2 := hexNibble(lo)
	return h<<4 | l, ok1 && ok2
}

func hexNibble(c byte) (byte, bool) {
	switch {
	case c >= '0' && c <= '9':
		return c - '0', true
	case c >= 'a' && c <= 'f':
		return c - 'a' + 10, true
	}
	return 0, false
}
