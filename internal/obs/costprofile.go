package obs

import (
	"context"
	"math/rand/v2"
	"sync"
	"time"
)

// This file is the request-scoped cost accounting and distributed
// tracing layer: every serving-tier request — sampled or not — fills
// one pooled CostProfile (stage durations, index work, per-shard
// breakdown, bytes), and the Tracer decides at the end whether the
// profile is exported as a span tree (head-based sampling probability,
// plus a tail-based "always keep slow" policy) and whether it enters
// the slow-query log. The unsampled fast path allocates nothing in
// steady state: profiles are pooled, stages write into fixed arrays,
// and per-shard slots reuse the slice capacity of the recycled profile
// (asserted by TestUnsampledRequestZeroAllocs).

// Stage indexes one timed segment of a request's life. The stages are
// the serving pipeline's fixed anatomy; per-shard work hangs off the
// search stage as its own child spans.
type Stage uint8

const (
	// StageQueue is the admission-control queue wait.
	StageQueue Stage = iota
	// StageLock is the per-session mutex wait (session endpoints only).
	StageLock
	// StageSearch is the index search: the whole scatter-gather for a
	// sharded backend, the single tree search otherwise.
	StageSearch
	// StageMerge is the cross-shard merge of per-shard top-k lists
	// (sharded backends only).
	StageMerge
	// StageFeedback is the query-model update (classify/cluster/merge)
	// of a feedback request.
	StageFeedback
	// StageEncode is the response encoding and write.
	StageEncode
	// StageResplit is deferred index maintenance an ingest request paid
	// for: overflowed tree leaves re-split under the store write lock
	// (capped per batch; see index.InsertStats).
	StageResplit
	numStages
)

// StageNames maps Stage values to their span/JSON names.
var StageNames = [numStages]string{"queue", "lock", "search", "merge", "feedback", "encode", "resplit"}

// String returns the stage's name.
func (s Stage) String() string {
	if int(s) < len(StageNames) {
		return StageNames[s]
	}
	return "unknown"
}

// CostStats is the index work of one request — the dependency-free
// mirror of the index layer's SearchStats, aggregated across shards.
type CostStats struct {
	NodesVisited    int `json:"nodes_visited"`
	LeavesVisited   int `json:"leaves_visited"`
	LeavesTotal     int `json:"leaves_total"`
	DistanceEvals   int `json:"distance_evals"`
	BatchedEvals    int `json:"batched_evals"`
	AbandonedEvals  int `json:"abandoned_evals"`
	CacheSeedLeaves int `json:"cache_seed_leaves,omitempty"`
	// GraphHops/RefineEvals describe the ANN backend's work: graph
	// nodes expanded during navigation and candidates exactly re-scored
	// with the full-precision metric. 0 on the exact backends.
	GraphHops   int `json:"graph_hops,omitempty"`
	RefineEvals int `json:"refine_evals,omitempty"`
	// PlanRoute/PlanAdaptive/PlanPredictedMS describe the cost-based
	// planner's decision for this search: the execution path it chose,
	// whether warm models (vs. the static fallback) chose it, and the
	// pre-execution latency estimate. Zero values when no planner ran.
	PlanRoute       string  `json:"plan_route,omitempty"`
	PlanAdaptive    bool    `json:"plan_adaptive,omitempty"`
	PlanPredictedMS float64 `json:"plan_predicted_ms,omitempty"`
}

// Add accumulates other into s.
func (s *CostStats) Add(other CostStats) {
	s.NodesVisited += other.NodesVisited
	s.LeavesVisited += other.LeavesVisited
	s.LeavesTotal += other.LeavesTotal
	s.DistanceEvals += other.DistanceEvals
	s.BatchedEvals += other.BatchedEvals
	s.AbandonedEvals += other.AbandonedEvals
	s.CacheSeedLeaves += other.CacheSeedLeaves
	s.GraphHops += other.GraphHops
	s.RefineEvals += other.RefineEvals
	if s.PlanRoute == "" {
		s.PlanRoute = other.PlanRoute
	}
	s.PlanAdaptive = s.PlanAdaptive || other.PlanAdaptive
	s.PlanPredictedMS += other.PlanPredictedMS
}

// PruneRatio is the fraction of index leaves the search never touched.
func (s CostStats) PruneRatio() float64 {
	if s.LeavesTotal <= 0 || s.LeavesVisited >= s.LeavesTotal {
		return 0
	}
	return 1 - float64(s.LeavesVisited)/float64(s.LeavesTotal)
}

// AbandonRate is the fraction of batched evaluations cut short by the
// bound (0 when no batched kernels ran).
func (s CostStats) AbandonRate() float64 {
	if s.BatchedEvals <= 0 {
		return 0
	}
	return float64(s.AbandonedEvals) / float64(s.BatchedEvals)
}

// ShardCost is one shard's contribution to a scatter-gather request:
// its own child span id, wall-clock, and index work.
type ShardCost struct {
	Shard    int           `json:"shard"`
	Span     SpanID        `json:"-"`
	Duration time.Duration `json:"-"`
	Stats    CostStats     `json:"stats"`
}

// stageRecord is one timed stage: when it started and how long it ran.
type stageRecord struct {
	start time.Time
	dur   time.Duration
	set   bool
}

// CostProfile is the always-on per-request cost account: where one
// request spent its time (stage durations), what index work it caused
// (aggregate and per-shard), and how big it was on the wire. Profiles
// are created by Tracer.Start, threaded through the request via
// ContextWithProfile, and returned to the tracer's pool by
// Tracer.Finish — callers must not retain one past Finish.
//
// All methods are safe on a nil receiver (the no-tracer path) but NOT
// for concurrent use: a profile belongs to one request goroutine, and
// fan-out layers (the shard gather) record per-shard work after
// joining their workers.
type CostProfile struct {
	// Ctx is the root span context of the request: the trace id from
	// the incoming traceparent (or freshly generated) and this
	// request's own root span id.
	Ctx SpanContext
	// Parent is the remote parent span id from the incoming
	// traceparent (zero when the request started the trace).
	Parent SpanID
	// Name is the route label ("search", "session.feedback", ...).
	Name string
	// Start/End bound the request wall-clock.
	Start, End time.Time
	// Status is the HTTP status the request answered with.
	Status int
	// K is the requested result size (0 when not a retrieval).
	K int
	// BytesIn/BytesOut are the request/response body sizes.
	BytesIn, BytesOut int64
	// Stats is the aggregate index work across all shards.
	Stats CostStats

	stages [numStages]stageRecord
	shards []ShardCost
	tracer *Tracer
}

// Duration returns End-Start (0 before Finish).
func (p *CostProfile) Duration() time.Duration {
	if p == nil || p.End.IsZero() {
		return 0
	}
	return p.End.Sub(p.Start)
}

// StageAt records one stage's start time and duration. Recording the
// same stage again accumulates the duration and keeps the first start
// (a request retries a stage, the span covers both attempts).
func (p *CostProfile) StageAt(s Stage, start time.Time, d time.Duration) {
	if p == nil || s >= numStages {
		return
	}
	r := &p.stages[s]
	if !r.set {
		r.start = start
		r.set = true
	}
	r.dur += d
}

// StageDuration returns the recorded duration of a stage (0 when the
// stage never ran).
func (p *CostProfile) StageDuration(s Stage) time.Duration {
	if p == nil || s >= numStages {
		return 0
	}
	return p.stages[s].dur
}

// AddSearch records index work and its wall-clock under the search
// stage — the single-database path's equivalent of the shard layer's
// AddShard+merge accounting.
func (p *CostProfile) AddSearch(start time.Time, d time.Duration, stats CostStats) {
	if p == nil {
		return
	}
	p.StageAt(StageSearch, start, d)
	p.Stats.Add(stats)
}

// AddShard records one shard's scatter-gather leg as a child span of
// the search stage, reusing the recycled profile's slice capacity.
func (p *CostProfile) AddShard(shard int, start time.Time, d time.Duration, stats CostStats) {
	if p == nil {
		return
	}
	_ = start
	p.shards = append(p.shards, ShardCost{Shard: shard, Span: NewSpanID(), Duration: d, Stats: stats})
	p.Stats.Add(stats)
}

// Shards returns the per-shard breakdown (nil for unsharded requests).
// The slice is owned by the profile and invalid after Finish.
func (p *CostProfile) Shards() []ShardCost {
	if p == nil {
		return nil
	}
	return p.shards
}

// Sampled reports whether the head-based sampling decision (or the
// incoming traceparent's sampled flag) selected this request for span
// export. Tail-kept slow requests export too — see Tracer.Finish.
func (p *CostProfile) Sampled() bool { return p != nil && p.Ctx.Sampled }

// reset clears the profile for reuse, keeping slice capacity.
func (p *CostProfile) reset() {
	p.shards = p.shards[:0]
	*p = CostProfile{shards: p.shards}
}

// profileKey is the context key for the request's CostProfile.
type profileKey struct{}

// ContextWithProfile attaches a profile to the context so lower layers
// (the database search paths, the shard gather) can attribute their
// work to the owning request.
func ContextWithProfile(ctx context.Context, p *CostProfile) context.Context {
	if p == nil {
		return ctx
	}
	return context.WithValue(ctx, profileKey{}, p)
}

// ProfileFromContext returns the request's profile, or nil.
func ProfileFromContext(ctx context.Context) *CostProfile {
	p, _ := ctx.Value(profileKey{}).(*CostProfile)
	return p
}

// TracerOptions configures a Tracer.
type TracerOptions struct {
	// Sink receives exported span events (nil: profiles still flow to
	// the slow log and estimators, but no spans are exported).
	Sink Sink
	// SampleRate is the head-based export probability in [0, 1] for
	// requests that do not arrive with a sampled traceparent. An
	// incoming sampled flag forces export regardless.
	SampleRate float64
	// SlowThreshold is the tail-based policy: a request at least this
	// slow is exported (and slow-logged) even when head sampling passed
	// it by. 0 uses DefaultSlowThreshold; negative keeps every request
	// (bench/test mode).
	SlowThreshold time.Duration
	// SlowLog, when non-nil, receives the profiles of slow requests.
	SlowLog *SlowLog
}

// DefaultSlowThreshold is the slow-request cutoff when TracerOptions
// leaves it zero.
const DefaultSlowThreshold = 250 * time.Millisecond

// Tracer owns the per-request tracing policy: it mints profiles from a
// pool, makes the head-based sampling decision at Start, and at Finish
// applies the tail-based slow policy, exports the span tree, feeds the
// slow log, and recycles the profile. A nil *Tracer is fully disabled:
// Start returns a nil profile and every downstream method no-ops.
type Tracer struct {
	sink       Sink
	sampleRate float64
	slow       time.Duration
	slowLog    *SlowLog
	pool       sync.Pool
}

// NewTracer builds a tracer. See TracerOptions for the policy knobs.
func NewTracer(opt TracerOptions) *Tracer {
	slow := opt.SlowThreshold
	if slow == 0 {
		slow = DefaultSlowThreshold
	}
	t := &Tracer{sink: opt.Sink, sampleRate: opt.SampleRate, slow: slow, slowLog: opt.SlowLog}
	t.pool.New = func() any { return &CostProfile{} }
	return t
}

// Exports reports whether the tracer has a span sink attached (i.e.
// sampled or slow requests will render span trees).
func (t *Tracer) Exports() bool { return t != nil && t.sink != nil }

// SlowLog returns the tracer's slow-query log (nil when disabled).
func (t *Tracer) SlowLog() *SlowLog {
	if t == nil {
		return nil
	}
	return t.slowLog
}

// Start opens the root span of one request. traceparent is the raw
// incoming header value ("" when absent): a valid header continues the
// remote trace (its sampled flag forces export); otherwise a fresh
// trace id is minted and head sampling rolls the dice. The returned
// profile must be passed to Finish exactly once.
func (t *Tracer) Start(name, traceparent string, start time.Time) *CostProfile {
	if t == nil {
		return nil
	}
	p := t.pool.Get().(*CostProfile)
	p.Name = name
	p.Start = start
	p.tracer = t
	if sc, ok := ParseTraceparent(traceparent); ok {
		p.Ctx.TraceID = sc.TraceID
		p.Parent = sc.SpanID
		p.Ctx.Sampled = sc.Sampled || t.roll()
	} else {
		p.Ctx.TraceID = NewTraceID()
		p.Ctx.Sampled = t.roll()
	}
	p.Ctx.SpanID = NewSpanID()
	return p
}

// roll makes the head-based sampling decision.
func (t *Tracer) roll() bool {
	if t.sink == nil || t.sampleRate <= 0 {
		return false
	}
	return t.sampleRate >= 1 || rand.Float64() < t.sampleRate
}

// Finish closes the request's root span: stamps End, applies the
// tail-based slow policy, exports the span tree when selected, records
// slow requests into the slow log, and recycles the profile. The
// profile (and its Shards slice) is invalid afterwards.
func (t *Tracer) Finish(p *CostProfile, end time.Time) {
	if t == nil || p == nil {
		return
	}
	p.End = end
	slow := t.slow < 0 || p.End.Sub(p.Start) >= t.slow
	if t.sink != nil && (p.Ctx.Sampled || slow) {
		t.export(p)
	}
	if slow && t.slowLog != nil {
		t.slowLog.Record(p)
	}
	p.reset()
	t.pool.Put(p)
}

// export renders the profile as a span tree on the sink: one root span
// (start/end events) whose children are the recorded stages and the
// per-shard search legs. Field conventions: every event carries
// "trace_id" and "span_id"; children carry "parent_span_id" equal to
// the root's span id; the root start event carries "root"=true plus
// "parent_span_id" only when the trace continued a remote parent.
func (t *Tracer) export(p *CostProfile) {
	traceID := p.Ctx.TraceID.String()
	rootSpan := p.Ctx.SpanID.String()
	rootName := "request." + p.Name

	rootFields := []Field{
		F("trace_id", traceID), F("span_id", rootSpan), F("root", true),
		F("sampled", p.Ctx.Sampled),
	}
	if p.Parent.IsValid() {
		rootFields = append(rootFields, F("parent_span_id", p.Parent.String()))
	}
	t.sink.Emit(Event{Span: rootName, Name: "start", Time: p.Start, Fields: rootFields})

	for s := Stage(0); s < numStages; s++ {
		r := &p.stages[s]
		if !r.set {
			continue
		}
		span := NewSpanID().String()
		name := rootName + "." + StageNames[s]
		t.sink.Emit(Event{Span: name, Name: "start", Time: r.start, Fields: []Field{
			F("trace_id", traceID), F("span_id", span), F("parent_span_id", rootSpan),
		}})
		t.sink.Emit(Event{Span: name, Name: "end", Time: r.start.Add(r.dur), Fields: []Field{
			F("trace_id", traceID), F("span_id", span), F("parent_span_id", rootSpan),
			F("elapsed_ms", float64(r.dur)/1e6),
		}})
	}

	for i := range p.shards {
		sc := &p.shards[i]
		name := rootName + ".shard"
		end := p.stages[StageSearch].start.Add(sc.Duration)
		t.sink.Emit(Event{Span: name, Name: "start", Time: p.stages[StageSearch].start, Fields: []Field{
			F("trace_id", traceID), F("span_id", sc.Span.String()), F("parent_span_id", rootSpan),
			F("shard", sc.Shard),
		}})
		t.sink.Emit(Event{Span: name, Name: "end", Time: end, Fields: []Field{
			F("trace_id", traceID), F("span_id", sc.Span.String()), F("parent_span_id", rootSpan),
			F("shard", sc.Shard),
			F("elapsed_ms", float64(sc.Duration)/1e6),
			F("leaves_visited", sc.Stats.LeavesVisited),
			F("leaves_total", sc.Stats.LeavesTotal),
			F("distance_evals", sc.Stats.DistanceEvals),
			F("batched_evals", sc.Stats.BatchedEvals),
			F("abandoned_evals", sc.Stats.AbandonedEvals),
			F("graph_hops", sc.Stats.GraphHops),
			F("refine_evals", sc.Stats.RefineEvals),
			F("prune_ratio", sc.Stats.PruneRatio()),
		}})
	}

	rootEnd := []Field{
		F("trace_id", traceID), F("span_id", rootSpan), F("root", true),
		F("status", p.Status), F("k", p.K),
		F("bytes_in", p.BytesIn), F("bytes_out", p.BytesOut),
		F("elapsed_ms", float64(p.End.Sub(p.Start))/1e6),
		F("leaves_visited", p.Stats.LeavesVisited),
		F("distance_evals", p.Stats.DistanceEvals),
		F("abandoned_evals", p.Stats.AbandonedEvals),
		F("graph_hops", p.Stats.GraphHops),
		F("refine_evals", p.Stats.RefineEvals),
		F("prune_ratio", p.Stats.PruneRatio()),
	}
	if p.Stats.PlanRoute != "" {
		rootEnd = append(rootEnd,
			F("plan_route", p.Stats.PlanRoute),
			F("plan_adaptive", p.Stats.PlanAdaptive),
			F("plan_predicted_ms", p.Stats.PlanPredictedMS))
	}
	t.sink.Emit(Event{Span: rootName, Name: "end", Time: p.End, Fields: rootEnd})
}

// SpanSink wraps the tracer's sink for one request: events emitted
// through it (the PR-3 feedback classify/cluster spans) are forwarded
// with the request's trace id and root span id attached, making them
// children of the request trace. Returns nil — a disabled Sink — when
// the request is not being exported.
func (t *Tracer) SpanSink(p *CostProfile) Sink {
	if t == nil || t.sink == nil || p == nil || !p.Ctx.Sampled {
		return nil
	}
	return &childSink{sink: t.sink, traceID: p.Ctx.TraceID.String(), parent: p.Ctx.SpanID.String()}
}

// childSink annotates forwarded events with trace parentage.
type childSink struct {
	sink    Sink
	traceID string
	parent  string
}

// Emit implements Sink.
func (c *childSink) Emit(e Event) {
	fields := make([]Field, 0, len(e.Fields)+2)
	fields = append(fields, F("trace_id", c.traceID), F("parent_span_id", c.parent))
	fields = append(fields, e.Fields...)
	e.Fields = fields
	c.sink.Emit(e)
}
