package rf

import (
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// Falcon is the FALCON baseline (Wu et al. [20]): every relevant point
// becomes a query point ("this model assumes that all relevant points
// are query points"), combined by the fuzzy-OR aggregate of Eq. 4 with a
// negative α (FALCON's experiments use α = -5). It handles disjunctive
// queries but carries one distance evaluation per relevant point per
// database object, which is what makes it expensive (paper Fig. 7).
type Falcon struct {
	query    linalg.Vector
	relevant []cluster.Point
	seen     map[int]bool
	alpha    float64
}

// NewFalcon builds the engine; alpha <= 0 means the FALCON default of -5.
func NewFalcon(alpha float64) *Falcon {
	if alpha >= 0 {
		alpha = -5
	}
	return &Falcon{alpha: alpha}
}

// Name implements Engine.
func (e *Falcon) Name() string { return "FALCON" }

// Init implements Engine.
func (e *Falcon) Init(q linalg.Vector) {
	e.query = q.Clone()
	e.relevant = nil
	e.seen = map[int]bool{}
}

// Feedback implements Engine.
func (e *Falcon) Feedback(points []cluster.Point) {
	for _, p := range points {
		if p.Score <= 0 || (p.ID >= 0 && e.seen[p.ID]) {
			continue
		}
		if p.ID >= 0 {
			e.seen[p.ID] = true
		}
		e.relevant = append(e.relevant, p)
	}
}

// Metric implements Engine: the α-mean aggregate over Euclidean
// distances to every relevant point.
func (e *Falcon) Metric() distance.Metric {
	if len(e.relevant) == 0 {
		return initialMetric(e.query)
	}
	parts := make([]distance.Metric, len(e.relevant))
	for i, p := range e.relevant {
		parts[i] = &distance.Euclidean{Center: p.Vec.Clone()}
	}
	return distance.NewAggregate(parts, e.alpha)
}

// NumQueryPoints implements Engine.
func (e *Falcon) NumQueryPoints() int {
	if len(e.relevant) == 0 {
		return 1
	}
	return len(e.relevant)
}
