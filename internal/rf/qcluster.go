package rf

import (
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// Qcluster adapts the core query model (the paper's method) to the
// Engine interface.
type Qcluster struct {
	opt   core.Options
	model *core.QueryModel
	query linalg.Vector
}

// NewQcluster builds the engine with the given core options.
func NewQcluster(opt core.Options) *Qcluster {
	return &Qcluster{opt: opt}
}

// Name implements Engine.
func (e *Qcluster) Name() string { return "Qcluster" }

// Init implements Engine.
func (e *Qcluster) Init(q linalg.Vector) {
	e.query = q.Clone()
	e.model = core.New(e.opt)
}

// Feedback implements Engine.
func (e *Qcluster) Feedback(points []cluster.Point) {
	e.model.Feedback(points)
}

// Metric implements Engine: the aggregate disjunctive distance (Eq. 5)
// once clusters exist, the shared Euclidean start before that.
func (e *Qcluster) Metric() distance.Metric {
	if e.model == nil || e.model.NumClusters() == 0 {
		return initialMetric(e.query)
	}
	return e.model.Metric()
}

// NumQueryPoints implements Engine.
func (e *Qcluster) NumQueryPoints() int {
	if e.model == nil || e.model.NumClusters() == 0 {
		return 1
	}
	return e.model.NumClusters()
}

// Model exposes the underlying query model (for quality diagnostics).
func (e *Qcluster) Model() *core.QueryModel { return e.model }
