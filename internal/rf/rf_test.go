package rf

import (
	"math/rand"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/linalg"
)

// testWorld is a synthetic retrieval universe: categories are Gaussian
// blobs in ℝ³; category 0 is bimodal (two far-apart modes, like the
// paper's birds-on-green vs birds-on-blue example).
type testWorld struct {
	store  *index.Store
	labels []int
	themes []int
	oracle *Oracle
}

func buildWorld(seed int64, perCat int) *testWorld {
	rng := rand.New(rand.NewSource(seed))
	var vecs []linalg.Vector
	var labels []int
	addBlob := func(cat, n int, cx, cy, cz, spread float64) {
		for i := 0; i < n; i++ {
			vecs = append(vecs, linalg.Vector{
				cx + spread*rng.NormFloat64(),
				cy + spread*rng.NormFloat64(),
				cz + spread*rng.NormFloat64(),
			})
			labels = append(labels, cat)
		}
	}
	// Category 0: bimodal — mode A near the origin, mode B near
	// (4,4,4). The modes are close enough that the initial k-NN from an
	// A-mode query surfaces a few B-mode images (as in the paper's bird
	// example, Fig. 3), yet far enough apart that a single moved query
	// point cannot cover both without sweeping in the midpoint clutter.
	addBlob(0, perCat/2, 0, 0, 0, 0.4)
	addBlob(0, perCat-perCat/2, 4, 4, 4, 0.4)
	// Category 1: unimodal, far away (theme-related to category 0 for the
	// oracle tests but spatially irrelevant to category-0 queries).
	addBlob(1, perCat, 8, -8, 0, 0.4)
	// Category 2: unimodal near (-8, 8, 3).
	addBlob(2, perCat, -8, 8, 3, 0.4)
	// Category 3: clutter concentrated between the two category-0 modes —
	// exactly where query-point movement's single contour must pass.
	addBlob(3, 20, 2, 2, 2, 1.2)

	store, err := index.NewStore(vecs)
	if err != nil {
		panic(err)
	}
	themes := []int{0, 0, 1, 2} // categories 0 and 1 are related
	return &testWorld{
		store:  store,
		labels: labels,
		themes: themes,
		oracle: NewOracle(labels, themes),
	}
}

func (w *testWorld) session(e Engine, k int) *Session {
	return &Session{
		Engine:   e,
		Searcher: index.NewLinearScan(w.store),
		Oracle:   w.oracle,
		Vec:      w.store.Vector,
		K:        k,
	}
}

// recallAt computes the fraction of the query category retrieved.
func (w *testWorld) recallAt(results []index.Result, cat int) float64 {
	hits := 0
	for _, r := range results {
		if w.labels[r.ID] == cat {
			hits++
		}
	}
	return float64(hits) / float64(w.oracle.CategorySize(cat))
}

func allEngines() []Engine {
	return []Engine{
		NewQcluster(core.Options{}),
		NewQPM(),
		NewQEX(5),
		NewFalcon(-5),
	}
}

func TestOracleScores(t *testing.T) {
	w := buildWorld(1, 20)
	// Image 0 is category 0; query category 0 → most relevant (3).
	if s := w.oracle.Score(0, 0); s != 3 {
		t.Errorf("same-category score = %v", s)
	}
	// Category 1 shares theme 0 with category 0 → related (1).
	firstCat1 := 20 // perCat images of category 0 come first
	if s := w.oracle.Score(0, firstCat1); s != 1 {
		t.Errorf("related-category score = %v", s)
	}
	// Category 2 is unrelated → 0.
	firstCat2 := 40
	if s := w.oracle.Score(0, firstCat2); s != 0 {
		t.Errorf("unrelated score = %v", s)
	}
	if !w.oracle.Relevant(0, 0) || w.oracle.Relevant(0, firstCat1) {
		t.Error("Relevant must be same-category only")
	}
	if w.oracle.CategorySize(0) != 20 {
		t.Errorf("CategorySize = %d", w.oracle.CategorySize(0))
	}
}

func TestOracleMark(t *testing.T) {
	w := buildWorld(2, 20)
	pts := w.oracle.Mark(0, []int{0, 20, 40}, w.store.Vector)
	if len(pts) != 2 { // category-0 image (3) + related category-1 image (1)
		t.Fatalf("marked %d points", len(pts))
	}
	if pts[0].Score != 3 || pts[1].Score != 1 {
		t.Errorf("scores %v %v", pts[0].Score, pts[1].Score)
	}
}

func TestSessionShape(t *testing.T) {
	w := buildWorld(3, 20)
	for _, e := range allEngines() {
		s := w.session(e, 30)
		iters := s.Run(0, 0, 3)
		if len(iters) != 4 {
			t.Fatalf("%s: %d iterations", e.Name(), len(iters))
		}
		for i, it := range iters {
			if len(it.Results) != 30 {
				t.Fatalf("%s iter %d: %d results", e.Name(), i, len(it.Results))
			}
			if it.QueryPoints < 1 {
				t.Fatalf("%s iter %d: %d query points", e.Name(), i, it.QueryPoints)
			}
			if it.Stats.DistanceEvals == 0 {
				t.Fatalf("%s iter %d: no distance evals recorded", e.Name(), i)
			}
		}
	}
}

func TestAllEnginesShareInitialResults(t *testing.T) {
	w := buildWorld(4, 20)
	var first []index.Result
	for _, e := range allEngines() {
		iters := w.session(e, 25).Run(5, 0, 0)
		if first == nil {
			first = iters[0].Results
			continue
		}
		for i := range first {
			if first[i].ID != iters[0].Results[i].ID {
				t.Fatalf("%s: initial results differ at rank %d", e.Name(), i)
			}
		}
	}
}

func TestFeedbackImprovesRecallUnimodal(t *testing.T) {
	w := buildWorld(5, 20)
	for _, e := range allEngines() {
		s := w.session(e, 40)
		// Query from unimodal category 1 (first image index 20).
		iters := s.Run(20, 1, 3)
		r0 := w.recallAt(iters[0].Results, 1)
		rN := w.recallAt(iters[len(iters)-1].Results, 1)
		if rN < r0 {
			t.Errorf("%s: recall degraded %v -> %v", e.Name(), r0, rN)
		}
	}
}

func TestQclusterBeatsQPMOnBimodal(t *testing.T) {
	w := buildWorld(6, 30)
	k := 40
	// Query from the first mode of bimodal category 0.
	qc := w.session(NewQcluster(core.Options{}), k).Run(0, 0, 3)
	qpm := w.session(NewQPM(), k).Run(0, 0, 3)

	qcRecall := w.recallAt(qc[3].Results, 0)
	qpmRecall := w.recallAt(qpm[3].Results, 0)
	if qcRecall <= qpmRecall {
		t.Errorf("Qcluster recall %v <= QPM recall %v on bimodal category", qcRecall, qpmRecall)
	}
	// Qcluster should recover most of the category despite bimodality.
	if qcRecall < 0.8 {
		t.Errorf("Qcluster recall = %v, want >= 0.8", qcRecall)
	}
	// And it should actually be using multiple query points by then.
	if qc[3].QueryPoints < 2 {
		t.Errorf("Qcluster used %d query points on a bimodal query", qc[3].QueryPoints)
	}
}

func TestQclusterBeatsQEXOnBimodal(t *testing.T) {
	w := buildWorld(7, 30)
	k := 40
	qc := w.session(NewQcluster(core.Options{}), k).Run(0, 0, 3)
	qex := w.session(NewQEX(5), k).Run(0, 0, 3)
	qcRecall := w.recallAt(qc[3].Results, 0)
	qexRecall := w.recallAt(qex[3].Results, 0)
	if qcRecall < qexRecall {
		t.Errorf("Qcluster recall %v < QEX recall %v on bimodal category", qcRecall, qexRecall)
	}
}

func TestEngineNames(t *testing.T) {
	names := map[string]bool{}
	for _, e := range allEngines() {
		names[e.Name()] = true
	}
	for _, want := range []string{"Qcluster", "QPM", "QEX", "FALCON"} {
		if !names[want] {
			t.Errorf("missing engine %q", want)
		}
	}
}

func TestEnginesResetOnInit(t *testing.T) {
	w := buildWorld(8, 20)
	for _, e := range allEngines() {
		s := w.session(e, 20)
		s.Run(0, 0, 2)
		// Re-init with a different query: no leftover query points.
		e.Init(w.store.Vector(20))
		if e.NumQueryPoints() != 1 {
			t.Errorf("%s: %d query points after re-Init", e.Name(), e.NumQueryPoints())
		}
	}
}

func TestMindReaderBasics(t *testing.T) {
	w := buildWorld(9, 20)
	e := NewMindReader()
	s := w.session(e, 30)
	iters := s.Run(20, 1, 3)
	if len(iters) != 4 {
		t.Fatalf("iterations = %d", len(iters))
	}
	r0 := w.recallAt(iters[0].Results, 1)
	rN := w.recallAt(iters[3].Results, 1)
	if rN < r0 {
		t.Errorf("MindReader recall degraded %v -> %v", r0, rN)
	}
	if e.NumQueryPoints() != 1 {
		t.Errorf("NumQueryPoints = %d", e.NumQueryPoints())
	}
	if e.Name() != "MindReader" {
		t.Errorf("Name = %q", e.Name())
	}
}

func TestMindReaderHandlesSingularCovariance(t *testing.T) {
	// Fewer relevant points than dimensions: the covariance is singular
	// and must be regularized, not crash.
	w := buildWorld(10, 20)
	e := NewMindReader()
	e.Init(w.store.Vector(0))
	e.Feedback([]cluster.Point{
		{ID: 0, Vec: w.store.Vector(0), Score: 3},
		{ID: 1, Vec: w.store.Vector(1), Score: 3},
	})
	m := e.Metric()
	if d := m.Eval(w.store.Vector(2)); d < 0 {
		t.Errorf("negative distance %v", d)
	}
}

func TestMindReaderEmptyFeedbackKeepsQuery(t *testing.T) {
	w := buildWorld(11, 20)
	e := NewMindReader()
	e.Init(w.store.Vector(0))
	e.Feedback(nil)
	// Still the initial Euclidean query.
	if e.NumQueryPoints() != 1 {
		t.Error("query points changed on empty feedback")
	}
	res1 := e.Metric().Eval(w.store.Vector(0))
	if res1 != 0 {
		t.Errorf("self-distance = %v", res1)
	}
}

func TestQPMNegativeFeedback(t *testing.T) {
	// With γ > 0, the query point moves away from the rejected centroid.
	mk := func(gamma float64) linalg.Vector {
		e := NewQPM()
		e.Gamma = gamma
		e.Init(linalg.Vector{0, 0})
		// Relevant at (1,0); two rounds so Rocchio carry-over engages.
		e.Feedback([]cluster.Point{
			{ID: 1, Vec: linalg.Vector{1, 0}, Score: 3},
			{ID: 2, Vec: linalg.Vector{1.2, 0}, Score: 3},
		})
		e.FeedbackNegative([]cluster.Point{
			{ID: 3, Vec: linalg.Vector{0, 5}, Score: 1},
		})
		e.Feedback([]cluster.Point{
			{ID: 4, Vec: linalg.Vector{0.9, 0}, Score: 3},
		})
		// Extract the moved point via the metric minimum: probe a grid.
		m := e.Metric()
		best := linalg.Vector{0, 0}
		bestD := m.Eval(best)
		for x := -3.0; x <= 3; x += 0.05 {
			for y := -3.0; y <= 3; y += 0.05 {
				p := linalg.Vector{x, y}
				if d := m.Eval(p); d < bestD {
					bestD, best = d, p
				}
			}
		}
		return best
	}
	plain := mk(0)
	pushed := mk(0.25)
	// The negative centroid is at +y; the pushed query must sit at a
	// smaller y than the plain one.
	if pushed[1] >= plain[1] {
		t.Errorf("negative feedback did not push away: plain y=%v, pushed y=%v",
			plain[1], pushed[1])
	}
	// Clearing negatives: FeedbackNegative(nil) resets.
	e := NewQPM()
	e.Gamma = 0.5
	e.Init(linalg.Vector{0, 0})
	e.FeedbackNegative([]cluster.Point{{ID: 1, Vec: linalg.Vector{9, 9}, Score: 1}})
	e.FeedbackNegative(nil)
	e.Feedback([]cluster.Point{{ID: 2, Vec: linalg.Vector{1, 1}, Score: 3}})
	if d := e.Metric().Eval(linalg.Vector{1, 1}); d > 1e-9 {
		t.Errorf("cleared negatives still affected the query: %v", d)
	}
}
