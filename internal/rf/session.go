package rf

import (
	"time"

	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/obs"
)

// Iteration is the outcome of one retrieval round.
type Iteration struct {
	// Results are the k-NN answers, ascending distance.
	Results []index.Result
	// Stats is the index work the retrieval performed.
	Stats index.SearchStats
	// Elapsed is the wall-clock retrieval + feedback time.
	Elapsed time.Duration
	// QueryPoints is the number of query representatives used.
	QueryPoints int
}

// Session drives one full Algorithm-1 loop: initial k-NN query from an
// example image, then alternating oracle feedback and refined retrieval.
type Session struct {
	Engine   Engine
	Searcher index.Searcher
	Oracle   *Oracle
	// Vec maps an image id to its feature vector.
	Vec func(int) linalg.Vector
	// K is the result size (the paper: 100).
	K int
	// Sink, when non-nil, receives an "rf.session" span with one
	// "iteration" event per retrieval (latency, query points, index
	// work). The engine's own feedback-round tracing is wired
	// separately (core.QueryModel.SetSink).
	Sink obs.Sink
}

// Run performs the initial query plus the given number of feedback
// iterations for the query image with the given id and category, and
// returns one Iteration per retrieval (iterations+1 entries).
func (s *Session) Run(queryID, queryCat, iterations int) []Iteration {
	s.Engine.Init(s.Vec(queryID))
	span := obs.StartSpan(s.Sink, "rf.session",
		obs.F("query_id", queryID), obs.F("iterations", iterations))
	out := make([]Iteration, 0, iterations+1)
	for it := 0; it <= iterations; it++ {
		start := time.Now()
		metric := s.Engine.Metric()
		results, stats := s.Searcher.KNN(metric, s.K)
		elapsed := time.Since(start)
		out = append(out, Iteration{
			Results:     results,
			Stats:       stats,
			Elapsed:     elapsed,
			QueryPoints: s.Engine.NumQueryPoints(),
		})
		if span.Enabled() {
			span.Event("iteration",
				obs.F("iteration", it),
				obs.F("latency_ms", elapsed.Seconds()*1e3),
				obs.F("results", len(results)),
				obs.F("query_points", s.Engine.NumQueryPoints()),
				obs.F("distance_evals", stats.DistanceEvals),
				obs.F("leaves_visited", stats.LeavesVisited),
				obs.F("prune_ratio", stats.PruneRatio()))
		}
		if it == iterations {
			break
		}
		ids := make([]int, len(results))
		for i, r := range results {
			ids[i] = r.ID
		}
		s.Engine.Feedback(s.Oracle.Mark(queryCat, ids, s.Vec))
	}
	span.End(obs.F("retrievals", len(out)))
	return out
}
