package rf

import (
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// QPM is the query-point-movement baseline (MARS [15], after Rocchio's
// formula): each feedback round the single query point moves toward the
// weighted centroid of the CURRENT round's relevant images,
//
//	q' = α q + (1-α) x̄_relevant,
//
// and each dimension is re-weighted inversely to the variance of the
// current relevant feature values along it (the MARS re-weighting rule).
// Like the original system, it carries the past only through the moved
// point — no per-round accumulation of evidence — which is exactly the
// limitation the multipoint methods attack.
type QPM struct {
	// Alpha is the Rocchio carry-over weight of the previous query point
	// (0.5 by default, balancing history and fresh feedback).
	Alpha float64
	// Gamma is the Rocchio negative-feedback weight: when > 0 and
	// non-relevant points are supplied via FeedbackNegative, the query
	// point additionally moves AWAY from their centroid,
	// q' = α q + (1-α) x̄_rel − γ x̄_nonrel (renormalized). The paper's
	// description of MARS — "move this point toward good matches, as
	// well as to move it away from bad result points" — is this term;
	// the main experiments use only positive feedback (γ = 0).
	Gamma float64

	query   linalg.Vector
	invDiag linalg.Vector // current per-dimension weights (nil = Euclidean)
	negMean linalg.Vector // most recent non-relevant centroid (nil = none)
	rounds  int
}

// NewQPM builds the engine with the default Rocchio carry-over.
func NewQPM() *QPM { return &QPM{Alpha: 0.5} }

// Name implements Engine.
func (e *QPM) Name() string { return "QPM" }

// Init implements Engine.
func (e *QPM) Init(q linalg.Vector) {
	e.query = q.Clone()
	e.invDiag = nil
	e.negMean = nil
	e.rounds = 0
}

// FeedbackNegative supplies this round's NON-relevant points (results the
// user explicitly rejected). Call it before Feedback for the same round;
// it only takes effect when Gamma > 0.
func (e *QPM) FeedbackNegative(points []cluster.Point) {
	if len(points) == 0 {
		e.negMean = nil
		return
	}
	mean := linalg.NewVector(points[0].Vec.Dim())
	for _, p := range points {
		mean.AddScaled(1, p.Vec)
	}
	e.negMean = mean.Scale(1 / float64(len(points)))
}

// Feedback implements Engine: move the query point and recompute the
// dimension weights from this round's relevant set.
func (e *QPM) Feedback(points []cluster.Point) {
	var valid []cluster.Point
	for _, p := range points {
		if p.Score > 0 {
			valid = append(valid, p)
		}
	}
	if len(valid) == 0 {
		return
	}
	c := cluster.FromPoints(valid)
	if e.rounds == 0 {
		// First feedback: jump to the relevant centroid (there is no
		// meaningful prior yet beyond the example image itself).
		e.query = c.Mean.Clone()
	} else {
		moved := e.query.Scale(e.Alpha)
		moved.AddScaled(1-e.Alpha, c.Mean)
		e.query = moved
	}
	if e.Gamma > 0 && e.negMean != nil {
		// Move away from the non-relevant centroid and renormalize so
		// the coefficients still sum to one.
		e.query.AddScaled(-e.Gamma, e.negMean)
		e.query = e.query.Scale(1 / (1 - e.Gamma))
	}
	e.invDiag = c.InverseDiag()
	e.negMean = nil
	e.rounds++
}

// Metric implements Engine: weighted Euclidean distance from the moved
// query point.
func (e *QPM) Metric() distance.Metric {
	if e.invDiag == nil {
		return initialMetric(e.query)
	}
	return distance.NewQuadraticDiag(e.query, e.invDiag)
}

// NumQueryPoints implements Engine.
func (e *QPM) NumQueryPoints() int { return 1 }
