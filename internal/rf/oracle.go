package rf

import (
	"repro/internal/cluster"
	"repro/internal/linalg"
)

// Oracle simulates the user's relevance judgement from category ground
// truth, exactly as the paper's protocol: "images from the same category
// are considered most relevant and images from related categories (such
// as flowers and plants) are considered relevant". Same-category images
// get RelevantScore, related-category (same theme) images RelatedScore,
// everything else 0 (not marked).
type Oracle struct {
	labels []int // image id -> category
	themes []int // category -> theme
	// RelevantScore is the score for same-category images (default 3).
	RelevantScore float64
	// RelatedScore is the score for related-category images (default 1).
	RelatedScore float64
}

// NewOracle builds the simulated user over the ground truth.
func NewOracle(labels, themes []int) *Oracle {
	return &Oracle{labels: labels, themes: themes, RelevantScore: 3, RelatedScore: 1}
}

// Score returns the relevance score the user assigns to image id for a
// query of category queryCat.
func (o *Oracle) Score(queryCat, imageID int) float64 {
	cat := o.labels[imageID]
	switch {
	case cat == queryCat:
		return o.RelevantScore
	case o.themes[cat] == o.themes[queryCat]:
		return o.RelatedScore
	default:
		return 0
	}
}

// Relevant reports whether image id counts as a ground-truth match for
// recall/precision purposes (same category only — the strict target set).
func (o *Oracle) Relevant(queryCat, imageID int) bool {
	return o.labels[imageID] == queryCat
}

// Mark converts a result list into the scored relevant set the engines
// consume: only images with positive score are returned, carrying their
// feature vectors.
func (o *Oracle) Mark(queryCat int, ids []int, vec func(int) linalg.Vector) []cluster.Point {
	out := make([]cluster.Point, 0, len(ids))
	for _, id := range ids {
		s := o.Score(queryCat, id)
		if s <= 0 {
			continue
		}
		out = append(out, cluster.Point{ID: id, Vec: vec(id), Score: s})
	}
	return out
}

// CategorySize returns the number of images of the given category (the
// recall denominator).
func (o *Oracle) CategorySize(cat int) int {
	n := 0
	for _, l := range o.labels {
		if l == cat {
			n++
		}
	}
	return n
}
