package rf

import (
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// QEX is the query-expansion baseline (Porkaew & Chakrabarti's MARS query
// refinement [13]): each round, the CURRENT relevant images plus the
// previous round's representatives (carried as weighted pseudo-points,
// the paper's "query expansion" memory) are grouped into local clusters,
// whose centroids become the new representatives. Unlike Qcluster the
// representatives are combined by a *weighted average* of distances, so
// the equi-distance contour is one convex region covering all
// representatives — the "single large contour" the paper's Examples 1-2
// criticize for complex queries.
type QEX struct {
	maxClusters int

	query linalg.Vector
	reps  []cluster.Point // carried representatives (weighted pseudo-points)
	parts []*distance.Quadratic
	ws    []float64
}

// NewQEX builds the engine. maxClusters bounds the number of local
// representatives (5 by default, matching Qcluster's default for a fair
// comparison).
func NewQEX(maxClusters int) *QEX {
	if maxClusters <= 0 {
		maxClusters = 5
	}
	return &QEX{maxClusters: maxClusters}
}

// Name implements Engine.
func (e *QEX) Name() string { return "QEX" }

// Init implements Engine.
func (e *QEX) Init(q linalg.Vector) {
	e.query = q.Clone()
	e.reps = nil
	e.parts = nil
	e.ws = nil
}

// Feedback implements Engine.
func (e *QEX) Feedback(points []cluster.Point) {
	pool := make([]cluster.Point, 0, len(points)+len(e.reps))
	for _, p := range points {
		if p.Score > 0 {
			pool = append(pool, p)
		}
	}
	if len(pool) == 0 {
		return
	}
	// Previous representatives participate with half their weight — the
	// query-expansion carry-over (fresh evidence dominates).
	for _, r := range e.reps {
		r.Score *= 0.5
		pool = append(pool, r)
	}

	cs := cluster.Agglomerate(pool, cluster.HierarchicalOptions{
		Linkage:        cluster.CentroidLinkage,
		TargetClusters: e.maxClusters,
	})
	// Per-representative covariances are shrunk toward the pooled
	// covariance exactly as in the Qcluster engine, so the comparison
	// isolates the aggregate SHAPE (convex combination vs fuzzy OR)
	// rather than covariance-estimation noise.
	pooled := cluster.PooledAll(cs)
	tau := float64(cs[0].Dim() + 1)
	e.parts = make([]*distance.Quadratic, len(cs))
	e.ws = make([]float64, len(cs))
	e.reps = make([]cluster.Point, len(cs))
	for i, c := range cs {
		cov := cluster.ShrunkCov(c, pooled, tau)
		e.parts[i] = distance.NewQuadraticDiag(c.Mean, cluster.InverseDiagOf(cov))
		e.ws[i] = c.Weight
		e.reps[i] = cluster.Point{ID: -1, Vec: c.Mean.Clone(), Score: c.Weight}
	}
}

// Metric implements Engine: the weighted arithmetic mean of
// per-representative weighted-Euclidean distances (a convex combination,
// hence one convex contour).
func (e *QEX) Metric() distance.Metric {
	if len(e.parts) == 0 {
		return initialMetric(e.query)
	}
	return distance.NewConvexCombination(e.parts, e.ws)
}

// NumQueryPoints implements Engine.
func (e *QEX) NumQueryPoints() int {
	if len(e.parts) == 0 {
		return 1
	}
	return len(e.parts)
}
