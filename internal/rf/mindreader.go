package rf

import (
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// MindReader is the full-covariance single-point baseline (Ishikawa,
// Subramanya & Faloutsos [11]): like QPM it moves one query point to the
// relevance-weighted centroid, but its distance is the generalized
// Euclidean form (x-q)' Λ (x-q) with Λ ∝ S⁻¹, the full inverse of the
// weighted covariance of the relevant set — so the ellipsoid may be
// arbitrarily oriented, not just axis-aligned. The paper notes Qcluster
// with a single cluster "is the same as MindReader's"; this engine is
// that special case as an independent implementation.
type MindReader struct {
	// Alpha is the Rocchio carry-over weight of the previous query point.
	Alpha float64

	query  linalg.Vector
	inv    *linalg.Matrix
	rounds int
}

// NewMindReader builds the engine.
func NewMindReader() *MindReader { return &MindReader{Alpha: 0.5} }

// Name implements Engine.
func (e *MindReader) Name() string { return "MindReader" }

// Init implements Engine.
func (e *MindReader) Init(q linalg.Vector) {
	e.query = q.Clone()
	e.inv = nil
	e.rounds = 0
}

// Feedback implements Engine: move the point, estimate the full inverse
// covariance of this round's relevant set (regularized when singular —
// the small-sample issue the paper discusses in Sec. 3.2).
func (e *MindReader) Feedback(points []cluster.Point) {
	var valid []cluster.Point
	for _, p := range points {
		if p.Score > 0 {
			valid = append(valid, p)
		}
	}
	if len(valid) == 0 {
		return
	}
	c := cluster.FromPoints(valid)
	if e.rounds == 0 {
		e.query = c.Mean.Clone()
	} else {
		moved := e.query.Scale(e.Alpha)
		moved.AddScaled(1-e.Alpha, c.Mean)
		e.query = moved
	}
	e.inv = c.InverseCov(cluster.FullInverse)
	e.rounds++
}

// Metric implements Engine.
func (e *MindReader) Metric() distance.Metric {
	if e.inv == nil {
		return initialMetric(e.query)
	}
	return distance.NewQuadraticFull(e.query, e.inv)
}

// NumQueryPoints implements Engine.
func (e *MindReader) NumQueryPoints() int { return 1 }
