// Package rf is the relevance-feedback framework: a common Engine
// interface over the paper's method (Qcluster) and its experimental
// baselines (MARS query-point movement, MARS query expansion, FALCON),
// the simulated user (Oracle) that scores retrieved images from category
// ground truth, and the Session loop that runs Algorithm 1 end to end.
package rf

import (
	"repro/internal/cluster"
	"repro/internal/distance"
	"repro/internal/linalg"
)

// Engine is one relevance-feedback method. A session drives it through
// Algorithm 1: Init with the example image, then alternately retrieve
// with Metric and absorb scored relevant results via Feedback.
type Engine interface {
	// Name identifies the method in experiment output.
	Name() string
	// Init starts a fresh query session from the example image's feature
	// vector.
	Init(q linalg.Vector)
	// Feedback absorbs the relevance-scored results of the last
	// retrieval (only points the user marked relevant, score > 0).
	Feedback(points []cluster.Point)
	// Metric returns the distance function for the next retrieval.
	Metric() distance.Metric
	// NumQueryPoints reports the current number of query representatives
	// (1 for single-point methods).
	NumQueryPoints() int
}

// initialMetric is the iteration-0 distance every engine shares: plain
// Euclidean distance to the example point, so all methods start from the
// identical first result set (the paper: "they produce the same precision
// and the same recall for the initial query").
func initialMetric(q linalg.Vector) distance.Metric {
	return &distance.Euclidean{Center: q.Clone()}
}
