package dataset

import (
	"encoding/gob"
	"fmt"
	"io"
	"os"

	"repro/internal/imagegen"
	"repro/internal/linalg"
	"repro/internal/pca"
)

// snapshot is the gob wire format of a built dataset. Rendering and
// extracting features for a large collection takes minutes; cmd/qgen
// builds once and the benchmarks reload in milliseconds.
type snapshot struct {
	CollectionCfg imagegen.CollectionConfig
	Color         []linalg.Vector
	Texture       []linalg.Vector
	RawColor      []linalg.Vector
	RawTexture    []linalg.Vector
	ColorPCA      pcaSnapshot
	TexturePCA    pcaSnapshot
}

type pcaSnapshot struct {
	Mean        linalg.Vector
	Components  *linalg.Matrix
	Eigenvalues linalg.Vector
}

// Save writes the dataset (features + PCA, not rasters) to w. The
// originating collection config must be supplied so Load can rebuild the
// label structure deterministically.
func (ds *Dataset) Save(w io.Writer, cfg imagegen.CollectionConfig) error {
	snap := snapshot{
		CollectionCfg: cfg,
		Color:         ds.Color,
		Texture:       ds.Texture,
		RawColor:      ds.RawColor,
		RawTexture:    ds.RawTexture,
		ColorPCA:      toPCASnapshot(ds.ColorPCA),
		TexturePCA:    toPCASnapshot(ds.TexturePCA),
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads a dataset written by Save.
func Load(r io.Reader) (*Dataset, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w", err)
	}
	col := imagegen.NewCollection(snap.CollectionCfg)
	if col.NumImages() != len(snap.Color) {
		return nil, fmt.Errorf("dataset: snapshot has %d vectors but config yields %d images",
			len(snap.Color), col.NumImages())
	}
	return &Dataset{
		Col:        col,
		Color:      snap.Color,
		Texture:    snap.Texture,
		RawColor:   snap.RawColor,
		RawTexture: snap.RawTexture,
		ColorPCA:   fromPCASnapshot(snap.ColorPCA),
		TexturePCA: fromPCASnapshot(snap.TexturePCA),
	}, nil
}

// SaveFile writes the dataset snapshot to path.
func (ds *Dataset) SaveFile(path string, cfg imagegen.CollectionConfig) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Save(f, cfg); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset snapshot from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func toPCASnapshot(p *pca.PCA) pcaSnapshot {
	return pcaSnapshot{Mean: p.Mean, Components: p.Components, Eigenvalues: p.Eigenvalues}
}

func fromPCASnapshot(s pcaSnapshot) *pca.PCA {
	return pca.Restore(s.Mean, s.Components, s.Eigenvalues)
}
