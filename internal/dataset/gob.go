package dataset

import (
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"math"
	"os"

	"repro/internal/imagegen"
	"repro/internal/linalg"
	"repro/internal/pca"
)

// ErrCorruptDataset tags every rejected dataset snapshot: gob damage,
// feature arrays whose lengths disagree with the collection config or
// each other, vectors with inconsistent dimensionality, and non-finite
// feature components. Gob guarantees only well-formed Go values, so the
// semantic checks run on every Load — a silently mis-shaped dataset
// would surface far away as wrong benchmark numbers, not as an error.
var ErrCorruptDataset = errors.New("corrupt dataset snapshot")

// snapshot is the gob wire format of a built dataset. Rendering and
// extracting features for a large collection takes minutes; cmd/qgen
// builds once and the benchmarks reload in milliseconds.
type snapshot struct {
	CollectionCfg imagegen.CollectionConfig
	Color         []linalg.Vector
	Texture       []linalg.Vector
	RawColor      []linalg.Vector
	RawTexture    []linalg.Vector
	ColorPCA      pcaSnapshot
	TexturePCA    pcaSnapshot
}

type pcaSnapshot struct {
	Mean        linalg.Vector
	Components  *linalg.Matrix
	Eigenvalues linalg.Vector
}

// Save writes the dataset (features + PCA, not rasters) to w. The
// originating collection config must be supplied so Load can rebuild the
// label structure deterministically.
func (ds *Dataset) Save(w io.Writer, cfg imagegen.CollectionConfig) error {
	snap := snapshot{
		CollectionCfg: cfg,
		Color:         ds.Color,
		Texture:       ds.Texture,
		RawColor:      ds.RawColor,
		RawTexture:    ds.RawTexture,
		ColorPCA:      toPCASnapshot(ds.ColorPCA),
		TexturePCA:    toPCASnapshot(ds.TexturePCA),
	}
	return gob.NewEncoder(w).Encode(&snap)
}

// Load reads and validates a dataset written by Save. Every rejection
// wraps ErrCorruptDataset.
func Load(r io.Reader) (*Dataset, error) {
	var snap snapshot
	if err := gob.NewDecoder(r).Decode(&snap); err != nil {
		return nil, fmt.Errorf("dataset: decode: %w: %w", ErrCorruptDataset, err)
	}
	col := imagegen.NewCollection(snap.CollectionCfg)
	n := col.NumImages()
	if n == 0 {
		return nil, fmt.Errorf("dataset: %w: config yields an empty collection", ErrCorruptDataset)
	}
	for _, f := range []struct {
		name string
		vecs []linalg.Vector
	}{
		{"color", snap.Color},
		{"texture", snap.Texture},
		{"raw color", snap.RawColor},
		{"raw texture", snap.RawTexture},
	} {
		if err := validateFeature(f.name, f.vecs, n); err != nil {
			return nil, err
		}
	}
	return &Dataset{
		Col:        col,
		Color:      snap.Color,
		Texture:    snap.Texture,
		RawColor:   snap.RawColor,
		RawTexture: snap.RawTexture,
		ColorPCA:   fromPCASnapshot(snap.ColorPCA),
		TexturePCA: fromPCASnapshot(snap.TexturePCA),
	}, nil
}

// validateFeature checks one feature family: exactly one vector per
// image, every vector non-empty with the family's dimensionality, every
// component finite.
func validateFeature(name string, vecs []linalg.Vector, n int) error {
	if len(vecs) != n {
		return fmt.Errorf("dataset: %w: %s has %d vectors but config yields %d images",
			ErrCorruptDataset, name, len(vecs), n)
	}
	dim := vecs[0].Dim()
	if dim == 0 {
		return fmt.Errorf("dataset: %w: %s vectors are empty", ErrCorruptDataset, name)
	}
	for i, v := range vecs {
		if v.Dim() != dim {
			return fmt.Errorf("dataset: %w: %s vector %d has dimension %d, family has %d",
				ErrCorruptDataset, name, i, v.Dim(), dim)
		}
		for d, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("dataset: %w: %s vector %d component %d is not finite",
					ErrCorruptDataset, name, i, d)
			}
		}
	}
	return nil
}

// SaveFile writes the dataset snapshot to path.
func (ds *Dataset) SaveFile(path string, cfg imagegen.CollectionConfig) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := ds.Save(f, cfg); err != nil {
		return err
	}
	return f.Close()
}

// LoadFile reads a dataset snapshot from path.
func LoadFile(path string) (*Dataset, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}

func toPCASnapshot(p *pca.PCA) pcaSnapshot {
	return pcaSnapshot{Mean: p.Mean, Components: p.Components, Eigenvalues: p.Eigenvalues}
}

func fromPCASnapshot(s pcaSnapshot) *pca.PCA {
	return pca.Restore(s.Mean, s.Components, s.Eigenvalues)
}
