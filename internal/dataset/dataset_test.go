package dataset

import (
	"bytes"
	"testing"

	"repro/internal/imagegen"
)

func smallConfig() Config {
	return Config{
		Collection: imagegen.CollectionConfig{
			Seed: 1, NumCategories: 6, ImagesPerCategory: 12, ImageSize: 24,
			Themes: 3, BimodalFrac: 0.3,
		},
	}
}

func TestBuildShapes(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ds.NumImages() != 72 {
		t.Fatalf("NumImages = %d", ds.NumImages())
	}
	if len(ds.Color) != 72 || len(ds.Texture) != 72 {
		t.Fatal("reduced feature counts wrong")
	}
	if ds.Color[0].Dim() != 3 {
		t.Errorf("color dim = %d, want 3", ds.Color[0].Dim())
	}
	if ds.Texture[0].Dim() != 4 {
		t.Errorf("texture dim = %d, want 4", ds.Texture[0].Dim())
	}
	if ds.RawColor[0].Dim() != 10 || ds.RawTexture[0].Dim() != 16 {
		t.Error("raw dims wrong")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Color {
		if !a.Color[i].Equal(b.Color[i], 1e-12) {
			t.Fatalf("image %d color features differ across identical builds", i)
		}
	}
}

func TestCategoryCoherenceInReducedSpace(t *testing.T) {
	// Mean intra-category distance must be below mean cross-category
	// distance in the reduced color space — otherwise retrieval by
	// category is impossible and the whole evaluation would be vacuous.
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	var intra, inter float64
	var nIntra, nInter int
	for i := 0; i < ds.NumImages(); i++ {
		for j := i + 1; j < ds.NumImages(); j++ {
			d := ds.Color[i].Dist(ds.Color[j])
			if ds.Col.Label(i) == ds.Col.Label(j) {
				intra += d
				nIntra++
			} else {
				inter += d
				nInter++
			}
		}
	}
	intra /= float64(nIntra)
	inter /= float64(nInter)
	if intra >= inter {
		t.Errorf("intra %v >= inter %v in reduced color space", intra, inter)
	}
}

func TestVectorsSelector(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	if &ds.Vectors(ColorMoments)[0][0] != &ds.Color[0][0] {
		t.Error("Vectors(ColorMoments) must alias Color")
	}
	if &ds.Vectors(CooccurrenceTexture)[0][0] != &ds.Texture[0][0] {
		t.Error("Vectors(CooccurrenceTexture) must alias Texture")
	}
	if ColorMoments.String() == CooccurrenceTexture.String() {
		t.Error("feature names must differ")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	cfg := smallConfig()
	ds, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Save(&buf, cfg.Collection); err != nil {
		t.Fatal(err)
	}
	back, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumImages() != ds.NumImages() {
		t.Fatalf("NumImages %d != %d", back.NumImages(), ds.NumImages())
	}
	for i := range ds.Color {
		if !back.Color[i].Equal(ds.Color[i], 0) {
			t.Fatal("color vectors corrupted")
		}
	}
	if back.Col.Label(40) != ds.Col.Label(40) {
		t.Error("labels corrupted")
	}
	// The restored PCA must project identically.
	p1 := ds.ColorPCA.Project(ds.RawColor[5], 3)
	p2 := back.ColorPCA.Project(ds.RawColor[5], 3)
	if !p1.Equal(p2, 1e-12) {
		t.Error("restored PCA projects differently")
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); err == nil {
		t.Error("expected decode error")
	}
}

func TestSaveFileLoadFile(t *testing.T) {
	cfg := smallConfig()
	ds, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	path := t.TempDir() + "/snap.gob"
	if err := ds.SaveFile(path, cfg.Collection); err != nil {
		t.Fatal(err)
	}
	back, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumImages() != ds.NumImages() {
		t.Errorf("NumImages %d != %d", back.NumImages(), ds.NumImages())
	}
	if _, err := LoadFile(t.TempDir() + "/missing.gob"); err == nil {
		t.Error("LoadFile on a missing path must error")
	}
}

func TestStandardizeProperties(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	// The reduced color vectors come from standardized raw features, so
	// their per-component sample means are ~0 (PCA of centered data).
	dim := ds.Color[0].Dim()
	sums := make([]float64, dim)
	for _, v := range ds.Color {
		for j := 0; j < dim; j++ {
			sums[j] += v[j]
		}
	}
	for j := 0; j < dim; j++ {
		if m := sums[j] / float64(len(ds.Color)); m > 1e-6 || m < -1e-6 {
			t.Errorf("component %d mean = %v, want ≈0", j, m)
		}
	}
}

func TestCombinedFeature(t *testing.T) {
	ds, err := Build(smallConfig())
	if err != nil {
		t.Fatal(err)
	}
	comb := ds.Vectors(Combined)
	if len(comb) != ds.NumImages() {
		t.Fatalf("combined length = %d", len(comb))
	}
	if comb[0].Dim() != ds.Color[0].Dim()+ds.Texture[0].Dim() {
		t.Errorf("combined dim = %d", comb[0].Dim())
	}
	// Cached on second call.
	if &ds.Vectors(Combined)[0][0] != &comb[0][0] {
		t.Error("combined space must be cached")
	}
	// Each half standardized: per-component variance ≈ 1.
	dim := comb[0].Dim()
	for j := 0; j < dim; j++ {
		var sum, sq float64
		for _, v := range comb {
			sum += v[j]
			sq += v[j] * v[j]
		}
		n := float64(len(comb))
		variance := sq/n - (sum/n)*(sum/n)
		if variance < 0.5 || variance > 1.5 {
			t.Errorf("component %d variance = %v, want ≈1", j, variance)
		}
	}
	if Combined.String() != "combined" {
		t.Error("Combined.String mismatch")
	}
}
