// Package dataset assembles the retrieval test collection: it renders the
// synthetic image collection, extracts the two visual features of the
// paper (HSV color moments and co-occurrence texture) from every raster
// in parallel, and reduces them with PCA to the paper's working
// dimensionalities (color → 3, texture → 4). The result is what Section 5
// calls "the test set of data": feature vectors plus category ground
// truth.
package dataset

import (
	"fmt"
	"math"
	"runtime"
	"sync"

	"repro/internal/feature"
	"repro/internal/imagegen"
	"repro/internal/linalg"
	"repro/internal/pca"
)

// Config sizes and shapes a dataset build.
type Config struct {
	Collection imagegen.CollectionConfig
	// ColorDim is the PCA-reduced color dimensionality (paper: 3).
	ColorDim int
	// TextureDim is the PCA-reduced texture dimensionality (paper: 4).
	TextureDim int
	// Workers bounds feature-extraction parallelism (default: GOMAXPROCS).
	Workers int
}

func (c Config) withDefaults() Config {
	if c.ColorDim <= 0 {
		c.ColorDim = 3
	}
	if c.TextureDim <= 0 {
		c.TextureDim = 4
	}
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	return c
}

// Dataset is the built collection: reduced feature vectors, the PCA
// transforms that produced them, and the ground-truth labels.
type Dataset struct {
	Col *imagegen.Collection

	// Color holds the PCA-reduced color-moment vectors, one per image.
	Color []linalg.Vector
	// Texture holds the PCA-reduced co-occurrence texture vectors.
	Texture []linalg.Vector

	// RawColor and RawTexture are the pre-PCA feature vectors.
	RawColor, RawTexture []linalg.Vector

	// ColorPCA and TexturePCA are the fitted transforms.
	ColorPCA, TexturePCA *pca.PCA

	combined []linalg.Vector // lazily built Combined space
}

// Build renders and featurizes the whole collection.
func Build(cfg Config) (*Dataset, error) {
	cfg = cfg.withDefaults()
	col := imagegen.NewCollection(cfg.Collection)
	n := col.NumImages()

	ds := &Dataset{
		Col:        col,
		RawColor:   make([]linalg.Vector, n),
		RawTexture: make([]linalg.Vector, n),
	}

	// Parallel render + extract.
	var wg sync.WaitGroup
	work := make(chan int)
	for w := 0; w < cfg.Workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for id := range work {
				img := col.Render(id)
				ds.RawColor[id] = feature.ColorMoments(img)
				ds.RawTexture[id] = feature.TextureFeatures(img)
			}
		}()
	}
	for id := 0; id < n; id++ {
		work <- id
	}
	close(work)
	wg.Wait()

	if err := ds.reduce(cfg); err != nil {
		return nil, err
	}
	return ds, nil
}

// reduce standardizes each raw feature component to unit variance over
// the collection (the MARS normalization — without it the hue components,
// whose collection-wide variance dwarfs the saturation/value moments,
// would monopolize the leading principal components) and then fits PCA
// and projects to the working dimensionalities.
func (ds *Dataset) reduce(cfg Config) error {
	stdColor := standardize(ds.RawColor)
	stdTexture := standardize(ds.RawTexture)
	cp, err := pca.Fit(stdColor)
	if err != nil {
		return fmt.Errorf("dataset: color PCA: %w", err)
	}
	tp, err := pca.Fit(stdTexture)
	if err != nil {
		return fmt.Errorf("dataset: texture PCA: %w", err)
	}
	ds.ColorPCA, ds.TexturePCA = cp, tp
	ds.Color = cp.ProjectAll(stdColor, cfg.ColorDim)
	ds.Texture = tp.ProjectAll(stdTexture, cfg.TextureDim)
	return nil
}

// standardize returns z-scored copies of the rows (per-component mean 0,
// variance 1 over the collection; constant components are left centered).
func standardize(rows []linalg.Vector) []linalg.Vector {
	if len(rows) == 0 {
		return nil
	}
	p := rows[0].Dim()
	mean := linalg.NewVector(p)
	for _, r := range rows {
		mean.AddScaled(1, r)
	}
	mean = mean.Scale(1 / float64(len(rows)))
	variance := linalg.NewVector(p)
	for _, r := range rows {
		for j := 0; j < p; j++ {
			d := r[j] - mean[j]
			variance[j] += d * d
		}
	}
	out := make([]linalg.Vector, len(rows))
	scale := make(linalg.Vector, p)
	for j := 0; j < p; j++ {
		v := variance[j] / float64(len(rows))
		if v > 1e-18 {
			scale[j] = 1 / math.Sqrt(v)
		} else {
			scale[j] = 1
		}
	}
	for i, r := range rows {
		z := make(linalg.Vector, p)
		for j := 0; j < p; j++ {
			z[j] = (r[j] - mean[j]) * scale[j]
		}
		out[i] = z
	}
	return out
}

// NumImages returns the collection size.
func (ds *Dataset) NumImages() int { return len(ds.Color) }

// Feature selects a feature space by name.
type Feature int

const (
	// ColorMoments selects the reduced color-moment vectors.
	ColorMoments Feature = iota
	// CooccurrenceTexture selects the reduced texture vectors.
	CooccurrenceTexture
	// Combined selects the concatenation of the two reduced features
	// (each sub-feature re-standardized so neither dominates) — the
	// multi-feature retrieval mode of systems like MARS. The paper
	// evaluates the features separately; this space is provided as an
	// extension.
	Combined
)

// String implements fmt.Stringer.
func (f Feature) String() string {
	switch f {
	case ColorMoments:
		return "color-moments"
	case CooccurrenceTexture:
		return "cooccurrence-texture"
	default:
		return "combined"
	}
}

// Vectors returns the reduced vectors of the chosen feature space. The
// Combined space is materialized lazily and cached.
func (ds *Dataset) Vectors(f Feature) []linalg.Vector {
	switch f {
	case ColorMoments:
		return ds.Color
	case CooccurrenceTexture:
		return ds.Texture
	default:
		if ds.combined == nil {
			ds.combined = concatStandardized(ds.Color, ds.Texture)
		}
		return ds.combined
	}
}

// concatStandardized z-scores each input space per component and
// concatenates row-wise.
func concatStandardized(a, b []linalg.Vector) []linalg.Vector {
	sa, sb := standardize(a), standardize(b)
	out := make([]linalg.Vector, len(a))
	for i := range out {
		v := make(linalg.Vector, 0, sa[i].Dim()+sb[i].Dim())
		v = append(v, sa[i]...)
		v = append(v, sb[i]...)
		out[i] = v
	}
	return out
}
