package dataset

import (
	"bytes"
	"encoding/gob"
	"errors"
	"math"
	"testing"
)

// saveSnapshot gob-encodes a raw snapshot, bypassing Save's invariants,
// so tests can feed Load semantically damaged-but-well-formed streams.
func saveSnapshot(t *testing.T, snap snapshot) *bytes.Buffer {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&snap); err != nil {
		t.Fatal(err)
	}
	return &buf
}

func builtSnapshot(t *testing.T) snapshot {
	t.Helper()
	cfg := smallConfig()
	ds, err := Build(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return snapshot{
		CollectionCfg: cfg.Collection,
		Color:         ds.Color,
		Texture:       ds.Texture,
		RawColor:      ds.RawColor,
		RawTexture:    ds.RawTexture,
		ColorPCA:      toPCASnapshot(ds.ColorPCA),
		TexturePCA:    toPCASnapshot(ds.TexturePCA),
	}
}

func TestLoadRejectsLengthMismatch(t *testing.T) {
	snap := builtSnapshot(t)
	// The config promises NumImages vectors; drop one color vector.
	snap.Color = snap.Color[:len(snap.Color)-1]
	if _, err := Load(saveSnapshot(t, snap)); !errors.Is(err, ErrCorruptDataset) {
		t.Fatalf("short color array: %v, want ErrCorruptDataset", err)
	}

	snap = builtSnapshot(t)
	snap.Texture = nil // whole family missing
	if _, err := Load(saveSnapshot(t, snap)); !errors.Is(err, ErrCorruptDataset) {
		t.Fatalf("missing texture array: %v, want ErrCorruptDataset", err)
	}
}

func TestLoadRejectsDimMismatch(t *testing.T) {
	snap := builtSnapshot(t)
	snap.Color[7] = snap.Color[7][:1] // one vector shorter than its family
	if _, err := Load(saveSnapshot(t, snap)); !errors.Is(err, ErrCorruptDataset) {
		t.Fatalf("ragged color vector: %v, want ErrCorruptDataset", err)
	}

	snap = builtSnapshot(t)
	snap.RawTexture[0] = nil // empty leading vector
	if _, err := Load(saveSnapshot(t, snap)); !errors.Is(err, ErrCorruptDataset) {
		t.Fatalf("empty raw texture vector: %v, want ErrCorruptDataset", err)
	}
}

func TestLoadRejectsNonFinite(t *testing.T) {
	for _, bad := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		snap := builtSnapshot(t)
		v := append([]float64(nil), snap.Texture[3]...)
		v[0] = bad
		snap.Texture[3] = v
		if _, err := Load(saveSnapshot(t, snap)); !errors.Is(err, ErrCorruptDataset) {
			t.Fatalf("non-finite %v: %v, want ErrCorruptDataset", bad, err)
		}
	}
}

func TestLoadGarbageWrapsTypedError(t *testing.T) {
	if _, err := Load(bytes.NewBufferString("not a gob stream")); !errors.Is(err, ErrCorruptDataset) {
		t.Fatalf("garbage stream: %v, want ErrCorruptDataset", err)
	}
	if _, err := Load(bytes.NewBuffer(nil)); !errors.Is(err, ErrCorruptDataset) {
		t.Fatalf("empty stream: %v, want ErrCorruptDataset", err)
	}
}

func TestLoadValidRoundTripStillWorks(t *testing.T) {
	// The validation must not reject the snapshots Save actually writes.
	if _, err := Load(saveSnapshot(t, builtSnapshot(t))); err != nil {
		t.Fatalf("valid snapshot rejected: %v", err)
	}
}
