package shard

import (
	"context"
	"fmt"
	"testing"

	qcluster "repro"
)

// TestDurableShardedWarmRestart: a durable set must recover every
// acknowledged cross-shard batch bit-identically after Close + Open.
func TestDurableShardedWarmRestart(t *testing.T) {
	dir := t.TempDir()
	seed := makeVectors(1200, 6, 31)
	extra := makeVectors(400, 6, 32)

	set, err := Open(dir, 3, qcluster.DurableOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if !set.Durable() {
		t.Fatal("Open produced a non-durable set")
	}
	if _, err := set.AddBatchContext(context.Background(), extra); err != nil {
		t.Fatal(err)
	}
	want, err := set.SearchByExampleContext(context.Background(), extra[7], 25)
	if err != nil {
		t.Fatal(err)
	}
	health := set.Health()
	if len(health) != 3 || health[0].Durability == nil {
		t.Fatalf("durable health malformed: %+v", health)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, 3, qcluster.DurableOptions{}) // no seed: must boot from disk
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	if reopened.Len() != 1600 {
		t.Fatalf("reopened set has %d vectors, want 1600", reopened.Len())
	}
	got, err := reopened.SearchByExampleContext(context.Background(), extra[7], 25)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "warm restart", want, got)
}

// TestDurableShardedTornBatchTrim simulates the cross-shard crash
// window: one shard committed its sub-batch of a global batch, the
// others did not (the batch was never acknowledged). Boot must roll the
// over-committed shard back to the longest globally consistent prefix
// and recover searches identical to the pre-torn state.
func TestDurableShardedTornBatchTrim(t *testing.T) {
	dir := t.TempDir()
	const shards = 3
	seed := makeVectors(1500, 5, 41)
	set, err := Open(dir, shards, qcluster.DurableOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	want, err := set.SearchByExampleContext(context.Background(), seed[3], 30)
	if err != nil {
		t.Fatal(err)
	}
	if err := set.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear a batch by hand: commit the sub-batch of global ids
	// 1500..1519 that lands on shard `victim` directly into that shard's
	// durable directory — exactly the on-disk state a crash between
	// per-shard commits leaves.
	victim := placement(1500, shards)
	var sub [][]float64
	for g := 1500; g < 1520; g++ {
		if placement(g, shards) == victim {
			sub = append(sub, makeVectors(1, 5, int64(g))[0])
		}
	}
	// Recovery keeps the longest globally consistent prefix: the leading
	// run of torn ids that happen to land on the victim are consistent
	// (every id's vector is on its shard) and stay, like unacked-but-
	// durable WAL records in the unsharded database; the rest trims.
	leading := 0
	for g := 1500; placement(g, shards) == victim; g++ {
		leading++
	}
	sdb, err := qcluster.OpenDatabase(shardDir(dir, victim), qcluster.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	preTear := sdb.Len()
	if _, err := sdb.AddBatch(sub); err != nil {
		t.Fatal(err)
	}
	if err := sdb.Close(); err != nil {
		t.Fatal(err)
	}

	reopened, err := Open(dir, shards, qcluster.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()
	wantLen := 1500 + leading
	if reopened.Len() != wantLen {
		t.Fatalf("reopened set has %d vectors, want the %d consistent ones", reopened.Len(), wantLen)
	}
	// The victim shard must have been rolled back to its share of the
	// consistent prefix...
	h := reopened.Health()
	if h[victim].Items != preTear+leading {
		t.Fatalf("victim shard holds %d items after trim, want %d", h[victim].Items, preTear+leading)
	}
	if h[victim].Durability.TrimmedVectors != len(sub)-leading {
		t.Fatalf("victim trimmed %d vectors, want %d", h[victim].Durability.TrimmedVectors, len(sub)-leading)
	}
	// ...and searches must match an unsharded control holding exactly
	// the recovered prefix (seed plus the surviving torn vectors).
	control, err := qcluster.NewDatabase(append(append([][]float64{}, seed...), sub[:leading]...))
	if err != nil {
		t.Fatal(err)
	}
	want, err = control.SearchByExampleContext(context.Background(), seed[3], 30)
	if err != nil {
		t.Fatal(err)
	}
	got, err := reopened.SearchByExampleContext(context.Background(), seed[3], 30)
	if err != nil {
		t.Fatal(err)
	}
	sameResults(t, "torn-batch trim", want, got)

	// The set keeps ingesting after the rollback: the next global batch
	// starts right after the recovered prefix.
	ids, err := reopened.AddBatchContext(context.Background(), makeVectors(10, 5, 99))
	if err != nil {
		t.Fatal(err)
	}
	if ids[0] != wantLen {
		t.Fatalf("post-trim batch starts at %d, want %d", ids[0], wantLen)
	}
}

// TestDurableShardedSessionsSurviveRestart drives a feedback session,
// restarts the set, and checks refined retrieval still matches an
// unsharded control over the recovered collection.
func TestDurableShardedSessionsSurviveRestart(t *testing.T) {
	dir := t.TempDir()
	seed := makeVectors(2000, 6, 55)
	set, err := Open(dir, 2, qcluster.DurableOptions{Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	set.Close()
	reopened, err := Open(dir, 2, qcluster.DurableOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer reopened.Close()

	control, err := qcluster.NewDatabase(seed)
	if err != nil {
		t.Fatal(err)
	}
	cs := control.NewSession(seed[10], qcluster.Options{})
	ss := reopened.NewSession(seed[10], qcluster.Options{})
	for round := 0; round < 3; round++ {
		want, werr := cs.ResultsContext(context.Background(), 15)
		got, gerr := ss.ResultsContext(context.Background(), 15)
		if werr != nil || gerr != nil {
			t.Fatalf("round %d: %v / %v", round, werr, gerr)
		}
		sameResults(t, fmt.Sprintf("restarted session round %d", round), want, got)
		var marked []qcluster.Point
		for i, r := range want {
			if i%2 == 0 {
				marked = append(marked, qcluster.Point{ID: r.ID, Vec: control.Vector(r.ID), Score: 3})
			}
		}
		if err := cs.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
		if err := ss.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
	}
}
