// Package shard partitions a qcluster collection into N independent
// shards — each a complete single-shard stack (contiguous store, hybrid
// tree, batched kernels, optionally its own durable WAL directory) —
// and serves k-NN queries by scatter-gather: every query fans out to
// all shards, the shards share one atomic k-th-best bound (the PR-2
// CAS-min over Float64bits, lifted from intra-search workers to whole
// per-shard searches), and the per-shard top-k sets are merged with the
// deterministic (Dist, ID) order. The merged results are bit-identical
// to the same search over one unsharded database holding the same
// vectors in the same global-id order.
//
// Vector placement is a deterministic hash of the global id
// (splitmix64 mod N), so any process that knows N can route an ingest
// or locate a vector without a directory service. Global ids are
// assigned sequentially; within a shard, local ids are therefore
// monotone in global-id order, which keeps the per-shard (Dist, ID)
// tie-break consistent with the global one.
package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	qcluster "repro"
	"repro/internal/index"
	"repro/internal/obs"
)

// placement maps a global vector id to its shard with a splitmix64
// finalizer — deterministic across processes, dependency-free, and
// well-mixed even on the sequential id stream.
func placement(id, shards int) int {
	x := uint64(id) + 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return int(x % uint64(shards))
}

// Set is a sharded collection: N shard databases plus the global↔local
// id mapping and the scatter-gather search layer over them. A Set is
// safe for concurrent use; ingest batches are serialized internally
// (each spans every shard) while searches share read access.
type Set struct {
	shards  []*qcluster.Database
	durable []*qcluster.DurableDatabase // nil when memory-only
	dim     int
	ring    *ring
	met     *setMetrics

	// mu guards the id mapping; ingestMu serializes whole cross-shard
	// batches (global ids must be assigned in one total order).
	mu      sync.RWMutex
	total   int     // global ids assigned
	locals  []int   // global id -> local id within its shard
	globals [][]int // shard -> local id -> global id

	ingestMu sync.Mutex
	degraded atomic.Bool
	degErr   error // first failure that degraded the set; guarded by ingestMu
}

type setMetrics struct {
	reg      *obs.Registry
	searches *obs.Counter
	partials *obs.Counter
	ingested *obs.Counter
	batches  *obs.Counter
	shards   *obs.Gauge
	items    *obs.Gauge
	degraded *obs.Gauge
	searchS  *obs.Histogram

	// Rolling windowed cost estimators over whole scatter-gather
	// searches (per-shard equivalents live in each shard database's own
	// registry and export re-keyed "shard<i>.cost.window.*").
	wPrune   *obs.Window
	wAbandon *obs.Window
	wLeaves  *obs.Window
	wSearch  *obs.Window
}

func newSetMetrics() *setMetrics {
	reg := obs.NewRegistry()
	return &setMetrics{
		reg:      reg,
		searches: reg.Counter("shard.searches"),
		partials: reg.Counter("shard.partial"),
		ingested: reg.Counter("shard.ingested"),
		batches:  reg.Counter("shard.batches"),
		shards:   reg.Gauge("shard.count"),
		items:    reg.Gauge("shard.items"),
		degraded: reg.Gauge("shard.degraded"),
		searchS:  reg.Histogram("shard.search_seconds", obs.LatencyBuckets()),
		wPrune:   reg.Window("cost.window.prune_ratio", obs.RatioBuckets(), qcluster.CostWindowSpan),
		wAbandon: reg.Window("cost.window.abandon_rate", obs.RatioBuckets(), qcluster.CostWindowSpan),
		wLeaves:  reg.Window("cost.window.leaves_visited", obs.SizeBuckets(), qcluster.CostWindowSpan),
		wSearch:  reg.Window("cost.window.search_seconds", obs.LatencyBuckets(), qcluster.CostWindowSpan),
	}
}

// observeGather feeds the rolling estimators with one whole
// scatter-gather search (aggregate stats across shards).
func (m *setMetrics) observeGather(elapsed time.Duration, stats index.SearchStats) {
	m.wSearch.Observe(elapsed.Seconds())
	m.wLeaves.Observe(float64(stats.LeavesVisited))
	if stats.LeavesTotal > 0 {
		m.wPrune.Observe(stats.PruneRatio())
	}
	if stats.BatchedEvals > 0 {
		m.wAbandon.Observe(float64(stats.AbandonedEvals) / float64(stats.BatchedEvals))
	}
}

// New builds a memory-only sharded set over the given vectors: vector i
// receives global id i and lands on shard placement(i, shards). Every
// shard must receive at least one vector (the index rejects empty
// stores); with a well-mixed hash this only bites when len(vectors) is
// tiny relative to shards.
func New(vectors [][]float64, shards int, opt qcluster.IndexOptions) (*Set, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	parts, err := partition(vectors, shards)
	if err != nil {
		return nil, err
	}
	s := newSet(shards)
	for i, part := range parts {
		db, err := qcluster.NewDatabaseWithOptions(part, opt)
		if err != nil {
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.shards[i] = db
	}
	s.finishInit(len(vectors))
	return s, nil
}

// Open opens (or initializes) a durable sharded set rooted at dir: one
// qcluster durable directory per shard (dir/shard-0000, ...). opt is
// the per-shard durable configuration; opt.Seed is the *global* seed
// collection, partitioned by placement on first boot.
//
// Boot recovery: each shard recovers independently (snapshot + WAL
// replay), then the set computes the longest global-id prefix the
// recovered per-shard counts are consistent with. A crash can tear a
// cross-shard batch — some shards committed their sub-batch, others
// did not — in which case the over-committed shards are rolled back to
// the consistent prefix (DurableOptions.TrimToItems). The trimmed
// suffix is necessarily unacknowledged: a batch is only acknowledged
// after every shard committed, so anything past the shortest shard's
// coverage was never acked.
func Open(dir string, shards int, opt qcluster.DurableOptions) (*Set, error) {
	if shards < 1 {
		return nil, fmt.Errorf("shard: shard count %d < 1", shards)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("shard: create data dir: %w", err)
	}
	var parts [][][]float64
	if len(opt.Seed) > 0 {
		var err error
		if parts, err = partition(opt.Seed, shards); err != nil {
			return nil, err
		}
	}
	s := newSet(shards)
	s.durable = make([]*qcluster.DurableDatabase, shards)
	counts := make([]int, shards)
	for i := range s.shards {
		per := opt
		per.TrimToItems = 0
		if parts != nil {
			per.Seed = parts[i]
		}
		db, err := qcluster.OpenDatabase(shardDir(dir, i), per)
		if err != nil {
			closeShards(s.durable[:i])
			return nil, fmt.Errorf("shard %d: %w", i, err)
		}
		s.durable[i], s.shards[i] = db, db.Database
		counts[i] = db.Len()
	}
	// Longest global prefix consistent with the recovered counts: walk
	// the deterministic id stream until some shard runs out of vectors.
	quota := make([]int, shards)
	n := 0
	for {
		p := placement(n, shards)
		if quota[p] == counts[p] {
			break
		}
		quota[p]++
		n++
	}
	for i, c := range counts {
		if c > quota[i] {
			// Over-committed suffix from a torn cross-shard batch: roll
			// this shard back to the consistent prefix and re-boot it.
			s.durable[i].Close()
			per := opt
			per.Seed = nil
			per.TrimToItems = quota[i]
			db, err := qcluster.OpenDatabase(shardDir(dir, i), per)
			if err != nil {
				closeShards(s.durable)
				return nil, fmt.Errorf("shard %d (trim to %d): %w", i, quota[i], err)
			}
			s.durable[i], s.shards[i] = db, db.Database
		}
	}
	s.finishInit(n)
	return s, nil
}

func shardDir(dir string, i int) string {
	return filepath.Join(dir, fmt.Sprintf("shard-%04d", i))
}

func closeShards(dbs []*qcluster.DurableDatabase) {
	for _, db := range dbs {
		if db != nil {
			db.Close()
		}
	}
}

func newSet(shards int) *Set {
	return &Set{
		shards:  make([]*qcluster.Database, shards),
		globals: make([][]int, shards),
		ring:    newRing(shards, ringReplicas),
		met:     newSetMetrics(),
	}
}

// finishInit builds the id mapping for the first n global ids and the
// set-level gauges. Called once from New/Open before the Set escapes.
func (s *Set) finishInit(n int) {
	s.dim = s.shards[0].Dim()
	s.locals = make([]int, n)
	for g := 0; g < n; g++ {
		p := placement(g, len(s.shards))
		s.locals[g] = len(s.globals[p])
		s.globals[p] = append(s.globals[p], g)
	}
	s.total = n
	s.met.shards.Set(float64(len(s.shards)))
	s.met.items.Set(float64(n))
}

// partition splits vectors by placement of their (sequential) global
// ids, erroring if any shard would start empty.
func partition(vectors [][]float64, shards int) ([][][]float64, error) {
	parts := make([][][]float64, shards)
	for i, v := range vectors {
		p := placement(i, shards)
		parts[p] = append(parts[p], v)
	}
	for i, part := range parts {
		if len(part) == 0 {
			return nil, fmt.Errorf("shard: %d vectors leave shard %d of %d empty; use fewer shards or more vectors",
				len(vectors), i, shards)
		}
	}
	return parts, nil
}

// NumShards returns the shard count.
func (s *Set) NumShards() int { return len(s.shards) }

// Dim returns the feature dimensionality.
func (s *Set) Dim() int { return s.dim }

// IndexInfo reports the active search backend and its parameters. All
// shards are built from the same IndexOptions, so shard 0 speaks for
// the set.
func (s *Set) IndexInfo() qcluster.IndexInfo { return s.shards[0].IndexInfo() }

// Len returns the number of globally visible vectors.
func (s *Set) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.total
}

// Placement reports which shard holds (or will hold) global id.
func (s *Set) Placement(id int) int { return placement(id, len(s.shards)) }

// HomeShard routes an affinity key (a session id) to its home shard on
// the consistent-hash ring. Routing is an ownership/affinity signal for
// the serving tier — searches always fan out to every shard, because
// the exact global top-k needs every shard's candidates.
func (s *Set) HomeShard(key string) int { return s.ring.route(key) }

// Vector returns global id's feature vector (read-only), or nil when
// the id is out of range.
func (s *Set) Vector(id int) []float64 {
	v, _ := s.VectorOK(id)
	return v
}

// VectorOK returns global id's feature vector and whether it is live.
func (s *Set) VectorOK(id int) ([]float64, bool) {
	s.mu.RLock()
	if id < 0 || id >= s.total {
		s.mu.RUnlock()
		return nil, false
	}
	local := s.locals[id]
	s.mu.RUnlock()
	return s.shards[placement(id, len(s.shards))].VectorOK(local)
}

// Durable reports whether the set persists ingest (built by Open).
func (s *Set) Durable() bool { return s.durable != nil }

// AddBatchContext appends a batch across the set under one global id
// assignment: vector j of the batch receives global id base+j and is
// routed to its placement shard; the per-shard sub-batches commit in
// parallel (each behind its own shard's group-commit fsync when
// durable) and the call acknowledges only after every shard committed.
// The context gates starting the batch; once the cross-shard commit is
// in flight it runs to completion — cancellable per-shard acks would
// let one global batch land on a subset of shards, which is exactly
// the inconsistency the set exists to prevent. Any shard failure flips
// the whole set into sticky read-only degraded mode (ErrReadOnly).
func (s *Set) AddBatchContext(ctx context.Context, vectors [][]float64) ([]int, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: add not started: %w", err)
	}
	if len(vectors) == 0 {
		return nil, nil
	}
	for i, v := range vectors {
		if len(v) != s.dim {
			return nil, fmt.Errorf("shard: batch vector %d has dimension %d, set has %d: %w",
				i, len(v), s.dim, qcluster.ErrDimensionMismatch)
		}
		for d, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("shard: batch vector %d component %d is not finite (%v)", i, d, x)
			}
		}
	}

	s.ingestMu.Lock()
	defer s.ingestMu.Unlock()
	if s.degraded.Load() {
		return nil, fmt.Errorf("shard: set degraded: %w", errors.Join(qcluster.ErrReadOnly, s.degErr))
	}

	// Assign global ids and extend the mapping before committing: the
	// mapping must cover a vector by the time it becomes visible in any
	// shard's tree, and commit order per shard follows enqueue order.
	n := len(s.shards)
	ids := make([]int, len(vectors))
	parts := make([][][]float64, n)
	starts := make([]int, n)
	s.mu.Lock()
	base := s.total
	for i := range s.shards {
		starts[i] = len(s.globals[i])
	}
	for j, v := range vectors {
		g := base + j
		p := placement(g, n)
		ids[j] = g
		s.locals = append(s.locals, len(s.globals[p]))
		s.globals[p] = append(s.globals[p], g)
		parts[p] = append(parts[p], v)
	}
	s.total = base + len(vectors)
	s.mu.Unlock()

	// Parallel cross-shard commit. Deliberately context-free: see the
	// method comment.
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range s.shards {
		if len(parts[i]) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got, err := s.shardIngestor(i).AddBatchContext(context.Background(), parts[i])
			if err == nil && (len(got) == 0 || got[0] != starts[i]) {
				err = fmt.Errorf("shard %d: local id drift: batch started at %d, expected %d",
					i, first(got), starts[i])
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			s.degrade(fmt.Errorf("shard %d: %w", i, err))
			return nil, fmt.Errorf("shard: cross-shard batch failed, set now read-only: %w", err)
		}
	}
	s.met.batches.Inc()
	s.met.ingested.Add(int64(len(vectors)))
	s.met.items.Set(float64(base + len(vectors)))
	return ids, nil
}

func first(ids []int) int {
	if len(ids) == 0 {
		return -1
	}
	return ids[0]
}

// shardIngestor picks the durable write path when one exists (writing
// through the embedded Database would bypass the WAL).
func (s *Set) shardIngestor(i int) interface {
	AddBatchContext(context.Context, [][]float64) ([]int, error)
} {
	if s.durable != nil {
		return s.durable[i]
	}
	return s.shards[i]
}

// degrade flips the set into sticky read-only mode. Callers hold
// ingestMu.
func (s *Set) degrade(err error) {
	if s.degraded.CompareAndSwap(false, true) {
		s.degErr = err
		s.met.degraded.Set(1)
	}
}

// Checkpoint snapshots every durable shard (no-op when memory-only).
func (s *Set) Checkpoint() error {
	if s.durable == nil {
		return nil
	}
	var firstErr error
	for i, db := range s.durable {
		if err := db.Checkpoint(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// Close closes every durable shard (no-op when memory-only).
func (s *Set) Close() error {
	if s.durable == nil {
		return nil
	}
	var firstErr error
	for i, db := range s.durable {
		if err := db.Close(); err != nil && firstErr == nil {
			firstErr = fmt.Errorf("shard %d: %w", i, err)
		}
	}
	return firstErr
}

// ShardHealth is one shard's block in the set's health report.
type ShardHealth struct {
	// Shard is the shard index.
	Shard int `json:"shard"`
	// Items is the shard's local vector count.
	Items int `json:"items"`
	// Durability is the shard's durable status (nil when memory-only).
	Durability *qcluster.DurabilityHealth `json:"durability,omitempty"`
}

// Health reports per-shard status blocks for /healthz.
func (s *Set) Health() []ShardHealth {
	out := make([]ShardHealth, len(s.shards))
	for i, db := range s.shards {
		out[i] = ShardHealth{Shard: i, Items: db.Len()}
		if s.durable != nil {
			h := s.durable[i].Health()
			out[i].Durability = &h
		}
	}
	return out
}

// ReadOnly reports whether the set is in sticky degraded mode (a
// cross-shard batch failure) or any durable shard degraded itself.
func (s *Set) ReadOnly() bool {
	if s.degraded.Load() {
		return true
	}
	if s.durable != nil {
		for _, db := range s.durable {
			if db.Health().ReadOnly {
				return true
			}
		}
	}
	return false
}

// Registry exposes the set-level metrics registry (for ServeDebug).
func (s *Set) Registry() *obs.Registry { return s.met.reg }

// CostSignals returns the set's rolling windowed cost estimators over
// whole scatter-gather searches — the sharded counterpart of
// Database.CostSignals and the same read-only hook admission control
// consumes.
func (s *Set) CostSignals() qcluster.CostSignals {
	return qcluster.CostSignals{
		PruneRatio:    s.met.wPrune.Snapshot(),
		AbandonRate:   s.met.wAbandon.Snapshot(),
		LeavesVisited: s.met.wLeaves.Snapshot(),
		SearchSeconds: s.met.wSearch.Snapshot(),
	}
}

// Metrics returns the set-level snapshot merged with every shard's own
// snapshot re-keyed under a "shard<i>." prefix (the obs merge
// overwrites name collisions, so per-shard blocks must be disjoint).
func (s *Set) Metrics() obs.Snapshot {
	snap := s.met.reg.Snapshot()
	for i, db := range s.shards {
		snap.Merge(prefixSnapshot(fmt.Sprintf("shard%d.", i), db.Metrics()))
	}
	return snap
}

func prefixSnapshot(p string, in obs.Snapshot) obs.Snapshot {
	out := obs.Snapshot{
		Counters:   make(map[string]int64, len(in.Counters)),
		Gauges:     make(map[string]float64, len(in.Gauges)),
		Histograms: make(map[string]obs.HistogramSnapshot, len(in.Histograms)),
	}
	for name, v := range in.Counters {
		out.Counters[p+name] = v
	}
	for name, v := range in.Gauges {
		out.Gauges[p+name] = v
	}
	for name, v := range in.Histograms {
		out.Histograms[p+name] = v
	}
	return out
}
