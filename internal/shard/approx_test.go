package shard

import (
	"context"
	"errors"
	"fmt"
	"testing"

	qcluster "repro"
)

// TestShardedApproxUnavailable pins the error contract of the sharded
// approximate entry points: on a non-ANN backend, the set-level search
// and the session-level retrieval both return ErrBackendUnavailable —
// unwrapped by any "shard i:" prefixing, matching the unsharded
// surfaces.
func TestShardedApproxUnavailable(t *testing.T) {
	vectors := makeVectors(600, 6, 9)
	ctx := context.Background()
	for _, opt := range []qcluster.IndexOptions{
		{Backend: qcluster.BackendTree},
		{Backend: qcluster.BackendVAFile},
		{Backend: qcluster.BackendTree, Plan: qcluster.PlanOptions{Adaptive: true}},
	} {
		set, err := New(vectors, 3, opt)
		if err != nil {
			t.Fatal(err)
		}
		label := string(opt.Backend)
		if opt.Plan.Adaptive {
			label += "+plan"
		}
		if _, err := set.SearchApproxContext(ctx, vectors[0], 5, 0); !errors.Is(err, qcluster.ErrBackendUnavailable) {
			t.Errorf("%s SearchApproxContext err = %v, want ErrBackendUnavailable", label, err)
		}
		sess := set.NewSession(vectors[0], qcluster.Options{})
		if _, err := sess.ResultsApproxContext(ctx, 5, 0); !errors.Is(err, qcluster.ErrBackendUnavailable) {
			t.Errorf("%s Session.ResultsApproxContext err = %v, want ErrBackendUnavailable", label, err)
		}
	}
}

// TestShardedApproxEquivalence runs the sharded ANN path with an
// exhaustive efSearch (candidates = collection, so exact refinement
// degenerates to exact search) and checks both approximate surfaces are
// bit-identical to the unsharded exact answer — example query and
// refined multipoint query alike.
func TestShardedApproxEquivalence(t *testing.T) {
	const n, dim, k = 1200, 6, 25
	vectors := makeVectors(n, dim, 13)
	ef := n + 1
	control, err := qcluster.NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}
	set, err := New(vectors, 3, qcluster.IndexOptions{
		Backend: qcluster.BackendANN,
		ANN:     qcluster.ANNOptions{EfSearch: ef, Seed: 4},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for q := 0; q < 20; q++ {
		example := vectors[(q*37)%n]
		want, _ := control.SearchByExampleContext(ctx, example, k)
		got, gerr := set.SearchApproxContext(ctx, example, k, ef)
		if gerr != nil {
			t.Fatal(gerr)
		}
		sameResults(t, fmt.Sprintf("approx example %d", q), want, got)
	}

	cs := control.NewSession(vectors[0], qcluster.Options{})
	ss := set.NewSession(vectors[0], qcluster.Options{})
	for round := 0; round < 3; round++ {
		want, _ := cs.ResultsContext(ctx, k)
		got, gerr := ss.ResultsApproxContext(ctx, k, ef)
		if gerr != nil {
			t.Fatal(gerr)
		}
		sameResults(t, fmt.Sprintf("approx session round %d", round), want, got)
		var marked []qcluster.Point
		for i, r := range want {
			if i%3 == 0 {
				marked = append(marked, qcluster.Point{ID: r.ID, Vec: control.Vector(r.ID), Score: 2})
			}
		}
		if err := cs.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
		if err := ss.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
	}
}

// TestShardedAdaptiveEquivalence is the scatter-gather leg of the plan
// equivalence gate: a sharded set whose shards each run an adaptive
// planner (fast warm-up, aggressive probing) must stay bit-identical to
// the unsharded planner-free database across stateless queries and
// feedback rounds — per-shard route choices and the shared k-th-best
// bound composing without changing any result.
func TestShardedAdaptiveEquivalence(t *testing.T) {
	const n, dim, k = 3000, 6, 20
	vectors := makeVectors(n, dim, 17)
	control, err := qcluster.NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}
	set, err := New(vectors, 3, qcluster.IndexOptions{
		Plan: qcluster.PlanOptions{Adaptive: true, MinObservations: 2, ProbeEvery: 2},
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()

	for q := 0; q < 80; q++ {
		example := vectors[(q*53)%n]
		want, _ := control.SearchByExampleContext(ctx, example, k)
		got, gerr := set.SearchByExampleContext(ctx, example, k)
		if gerr != nil {
			t.Fatal(gerr)
		}
		sameResults(t, fmt.Sprintf("adaptive sharded example %d", q), want, got)
	}

	cs := control.NewSession(vectors[1], qcluster.Options{})
	ss := set.NewSession(vectors[1], qcluster.Options{})
	for round := 0; round < 4; round++ {
		want, _ := cs.ResultsContext(ctx, k)
		got, gerr := ss.ResultsContext(ctx, k)
		if gerr != nil {
			t.Fatal(gerr)
		}
		sameResults(t, fmt.Sprintf("adaptive sharded round %d", round), want, got)
		var marked []qcluster.Point
		for i, r := range want {
			if i%2 == 0 {
				marked = append(marked, qcluster.Point{ID: r.ID, Vec: control.Vector(r.ID), Score: 1})
			}
		}
		if err := cs.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
		if err := ss.MarkRelevant(marked); err != nil {
			t.Fatal(err)
		}
	}
}
