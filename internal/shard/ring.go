package shard

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// ringReplicas is the virtual-node count per member. 64 vnodes keep the
// worst member within a few percent of the mean share while the ring
// stays a few KB.
const ringReplicas = 64

// ring is a classic consistent-hash ring over shard indices: each
// member owns ringReplicas pseudo-random points on the uint64 circle,
// and a key routes to the owner of the first point at or after its
// hash. Routing is deterministic across processes (FNV-1a over stable
// strings, no map iteration), so any frontend computes the same home
// shard for a session id — the property that lets a load balancer pin
// a tenant's feedback session without shared state.
type ring struct {
	points  []uint64
	owners  []int
	members int
}

func newRing(members, replicas int) *ring {
	r := &ring{members: members}
	if members <= 1 {
		return r
	}
	type pt struct {
		h uint64
		m int
	}
	pts := make([]pt, 0, members*replicas)
	for m := 0; m < members; m++ {
		for v := 0; v < replicas; v++ {
			pts = append(pts, pt{h: ringHash(fmt.Sprintf("member-%d-vnode-%d", m, v)), m: m})
		}
	}
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].h != pts[j].h {
			return pts[i].h < pts[j].h
		}
		return pts[i].m < pts[j].m // deterministic even on (vanishingly rare) hash ties
	})
	r.points = make([]uint64, len(pts))
	r.owners = make([]int, len(pts))
	for i, p := range pts {
		r.points[i] = p.h
		r.owners[i] = p.m
	}
	return r
}

// route maps a key to its home member.
func (r *ring) route(key string) int {
	if r.members <= 1 {
		return 0
	}
	h := ringHash(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i] >= h })
	if i == len(r.points) {
		i = 0 // wrap around the circle
	}
	return r.owners[i]
}

func ringHash(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	return h.Sum64()
}
