package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"testing"

	qcluster "repro"
)

func TestPlacementDeterministicAndCovering(t *testing.T) {
	for _, shards := range []int{1, 2, 3, 7, 16} {
		counts := make([]int, shards)
		for id := 0; id < 20000; id++ {
			p := placement(id, shards)
			if p != placement(id, shards) {
				t.Fatalf("placement(%d, %d) not deterministic", id, shards)
			}
			if p < 0 || p >= shards {
				t.Fatalf("placement(%d, %d) = %d out of range", id, shards, p)
			}
			counts[p]++
		}
		// splitmix64 mixes the sequential stream well: every shard gets
		// within 20% of the fair share at this n.
		fair := 20000 / shards
		for s, c := range counts {
			if c < fair*4/5 || c > fair*6/5 {
				t.Fatalf("shards=%d: shard %d holds %d of 20000 (fair %d)", shards, s, c, fair)
			}
		}
	}
}

func TestMappingRoundTrip(t *testing.T) {
	vectors := makeVectors(1500, 4, 9)
	set, err := New(vectors, 4, qcluster.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < 1500; id++ {
		v, ok := set.VectorOK(id)
		if !ok {
			t.Fatalf("global id %d missing", id)
		}
		for d := range v {
			if v[d] != vectors[id][d] {
				t.Fatalf("global id %d vector diverges at dim %d", id, d)
			}
		}
	}
	if _, ok := set.VectorOK(1500); ok {
		t.Fatal("out-of-range global id resolved")
	}
	if _, ok := set.VectorOK(-1); ok {
		t.Fatal("negative global id resolved")
	}
}

// TestAddBatchRoutesByPlacement: ingest through the set must land every
// vector on its placement shard, keep global ids sequential, and keep
// search bit-identical to an unsharded control fed the same stream.
func TestAddBatchRoutesByPlacement(t *testing.T) {
	vectors := makeVectors(2000, 6, 13)
	extra := makeVectors(900, 6, 14)
	set, err := New(vectors, 3, qcluster.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	control, err := qcluster.NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}

	for off := 0; off < len(extra); off += 300 {
		batch := extra[off : off+300]
		ids, err := set.AddBatchContext(context.Background(), batch)
		if err != nil {
			t.Fatal(err)
		}
		for j, id := range ids {
			if id != 2000+off+j {
				t.Fatalf("batch id %d: got global id %d, want %d", j, id, 2000+off+j)
			}
		}
		if _, err := control.AddBatch(batch); err != nil {
			t.Fatal(err)
		}
	}
	if set.Len() != 2900 {
		t.Fatalf("set length %d, want 2900", set.Len())
	}
	for id := 2000; id < 2900; id++ {
		v, ok := set.VectorOK(id)
		if !ok || v[0] != extra[id-2000][0] {
			t.Fatalf("ingested global id %d not resolvable to its vector", id)
		}
	}
	for q := 0; q < 50; q++ {
		example := extra[q*17%len(extra)]
		want, _ := control.SearchByExampleContext(context.Background(), example, 15)
		got, err := set.SearchByExampleContext(context.Background(), example, 15)
		if err != nil {
			t.Fatal(err)
		}
		sameResults(t, fmt.Sprintf("post-ingest query %d", q), want, got)
	}

	// Validation failures reject the whole batch before any id is assigned.
	if _, err := set.AddBatchContext(context.Background(), [][]float64{{1, 2}}); !errors.Is(err, qcluster.ErrDimensionMismatch) {
		t.Fatalf("short vector: got %v, want ErrDimensionMismatch", err)
	}
	if _, err := set.AddBatchContext(context.Background(), [][]float64{{1, 2, 3, math.NaN(), 5, 6}}); err == nil {
		t.Fatal("NaN vector accepted")
	}
	if set.Len() != 2900 {
		t.Fatalf("failed batches moved the length to %d", set.Len())
	}
}

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1 := newRing(5, ringReplicas)
	r2 := newRing(5, ringReplicas)
	counts := make([]int, 5)
	for i := 0; i < 10000; i++ {
		key := fmt.Sprintf("session-%d", i)
		a, b := r1.route(key), r2.route(key)
		if a != b {
			t.Fatalf("ring routing not deterministic for %q: %d vs %d", key, a, b)
		}
		counts[a]++
	}
	for m, c := range counts {
		if c < 1000 || c > 3000 {
			t.Fatalf("member %d owns %d of 10000 keys — ring badly unbalanced: %v", m, c, counts)
		}
	}
	if got := newRing(1, ringReplicas).route("anything"); got != 0 {
		t.Fatalf("single-member ring routed to %d", got)
	}
}

func TestSessionRoutingPinsHome(t *testing.T) {
	vectors := makeVectors(1200, 4, 5)
	set, err := New(vectors, 4, qcluster.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	sess := set.NewSessionRouted(vectors[0], qcluster.Options{}, "sess-abc")
	if home := sess.Home(); home != set.HomeShard("sess-abc") {
		t.Fatalf("session home %d != ring route %d", home, set.HomeShard("sess-abc"))
	}
	if sess := set.NewSession(vectors[0], qcluster.Options{}); sess.Home() != -1 {
		t.Fatalf("unrouted session has home %d, want -1", sess.Home())
	}
}

func TestSetRejectsEmptyShards(t *testing.T) {
	if _, err := New(makeVectors(3, 4, 1), 8, qcluster.IndexOptions{}); err == nil {
		t.Fatal("3 vectors across 8 shards must fail (some shard is empty)")
	}
	if _, err := New(nil, 0, qcluster.IndexOptions{}); err == nil {
		t.Fatal("0 shards must fail")
	}
}

func TestSetMetricsAndHealth(t *testing.T) {
	vectors := makeVectors(1000, 4, 2)
	set, err := New(vectors, 2, qcluster.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := set.SearchByExampleContext(context.Background(), vectors[0], 5); err != nil {
		t.Fatal(err)
	}
	snap := set.Metrics()
	if snap.Counters["shard.searches"] != 1 {
		t.Fatalf("shard.searches = %d, want 1", snap.Counters["shard.searches"])
	}
	if snap.Gauges["shard.count"] != 2 || snap.Gauges["shard.items"] != 1000 {
		t.Fatalf("set gauges wrong: %v", snap.Gauges)
	}
	// Per-shard blocks are re-keyed, not overwritten: both shards'
	// search counters must be present and sum to the fanout.
	var perShard int64
	for i := 0; i < 2; i++ {
		c, ok := snap.Counters[fmt.Sprintf("shard%d.search.total", i)]
		if !ok {
			t.Fatalf("missing per-shard block shard%d.search.total; counters: %v", i, snap.Counters)
		}
		perShard += c
	}
	if perShard != 2 {
		t.Fatalf("per-shard search counters sum to %d, want 2 (one leg each)", perShard)
	}

	health := set.Health()
	if len(health) != 2 {
		t.Fatalf("health has %d blocks, want 2", len(health))
	}
	items := 0
	for i, h := range health {
		if h.Shard != i || h.Durability != nil {
			t.Fatalf("health block %d malformed: %+v", i, h)
		}
		items += h.Items
	}
	if items != 1000 {
		t.Fatalf("health items sum to %d, want 1000", items)
	}
	if set.ReadOnly() {
		t.Fatal("fresh memory-only set reports read-only")
	}
}
