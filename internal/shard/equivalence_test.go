package shard

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"testing"

	qcluster "repro"
	"repro/internal/faultinject"
)

// makeVectors builds a clustered synthetic collection: deterministic for
// a seed, with plenty of near-ties so the (Dist, ID) tie-break is
// actually exercised.
func makeVectors(n, dim int, seed int64) [][]float64 {
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, 16)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64() * 10
		}
	}
	out := make([][]float64, n)
	for i := range out {
		c := centers[i%len(centers)]
		v := make([]float64, dim)
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()*0.5
		}
		out[i] = v
	}
	return out
}

func sameResults(t *testing.T, label string, want, got []qcluster.Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: got %d results, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i].ID != got[i].ID ||
			math.Float64bits(want[i].Dist) != math.Float64bits(got[i].Dist) {
			t.Fatalf("%s: result %d diverges: got (%d, %x), want (%d, %x)",
				label, i, got[i].ID, math.Float64bits(got[i].Dist),
				want[i].ID, math.Float64bits(want[i].Dist))
		}
	}
}

// TestScatterGatherEquivalence is the bit-identity gate: sharded
// scatter-gather must reproduce the unsharded search exactly — same
// ids, same distance bits, same order — across shard counts, both
// covariance schemes, and both the example and the refined multipoint
// query paths. Well over 1k queries run under -race in CI.
func TestScatterGatherEquivalence(t *testing.T) {
	const (
		n   = 9000 // above the parallel-path threshold: shards share the bound across worker pools
		dim = 8
		k   = 20
	)
	vectors := makeVectors(n, dim, 7)
	control, err := qcluster.NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	queries := 0

	for _, shards := range []int{2, 3, 5} {
		set, err := New(vectors, shards, qcluster.IndexOptions{})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if set.Len() != n || set.Dim() != dim {
			t.Fatalf("shards=%d: set reports %d×%d, want %d×%d", shards, set.Len(), set.Dim(), n, dim)
		}

		// Stateless example queries.
		for q := 0; q < 250; q++ {
			example := vectors[rng.Intn(n)]
			want, werr := control.SearchByExampleContext(context.Background(), example, k)
			got, gerr := set.SearchByExampleContext(context.Background(), example, k)
			if werr != nil || gerr != nil {
				t.Fatalf("shards=%d query %d: errors %v / %v", shards, q, werr, gerr)
			}
			sameResults(t, fmt.Sprintf("shards=%d example %d", shards, q), want, got)
			queries++
		}

		// Feedback sessions: identical feedback drives identical query
		// models, so every refined retrieval must match bit-for-bit.
		for _, scheme := range []qcluster.Scheme{qcluster.Diagonal, qcluster.FullInverse} {
			for sess := 0; sess < 8; sess++ {
				example := vectors[rng.Intn(n)]
				opt := qcluster.Options{Scheme: scheme}
				cs := control.NewSession(example, opt)
				ss := set.NewSession(example, opt)
				for round := 0; round < 4; round++ {
					want, werr := cs.ResultsContext(context.Background(), k)
					got, gerr := ss.ResultsContext(context.Background(), k)
					if werr != nil || gerr != nil {
						t.Fatalf("shards=%d scheme=%d sess=%d round=%d: errors %v / %v",
							shards, scheme, sess, round, werr, gerr)
					}
					sameResults(t, fmt.Sprintf("shards=%d scheme=%d sess=%d round=%d", shards, scheme, sess, round), want, got)
					queries++
					// Mark a scattered subset of the results relevant; ids
					// (and vectors) agree between control and set by the
					// equivalence just asserted.
					var marked []qcluster.Point
					for i, r := range want {
						if i%3 == round%3 {
							marked = append(marked, qcluster.Point{ID: r.ID, Vec: control.Vector(r.ID), Score: 1 + float64(i%2)*2})
						}
					}
					if err := cs.MarkRelevant(marked); err != nil {
						t.Fatal(err)
					}
					if err := ss.MarkRelevant(marked); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
	}

	// Small collections exercise the sequential per-shard path (below
	// the parallel threshold) with the same bit-identity contract.
	small := vectors[:2500]
	smallControl, err := qcluster.NewDatabase(small)
	if err != nil {
		t.Fatal(err)
	}
	smallSet, err := New(small, 4, qcluster.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 300; q++ {
		example := small[rng.Intn(len(small))]
		want, _ := smallControl.SearchByExampleContext(context.Background(), example, k)
		got, gerr := smallSet.SearchByExampleContext(context.Background(), example, k)
		if gerr != nil {
			t.Fatal(gerr)
		}
		sameResults(t, fmt.Sprintf("small example %d", q), want, got)
		queries++
	}
	if queries < 1000 {
		t.Fatalf("equivalence sweep ran only %d queries, want >= 1000", queries)
	}
}

// TestScatterGatherKLargerThanSet covers the heap-never-fills edge: k
// beyond the collection size must return everything, still identical.
func TestScatterGatherKLargerThanSet(t *testing.T) {
	vectors := makeVectors(400, 6, 3)
	control, err := qcluster.NewDatabase(vectors)
	if err != nil {
		t.Fatal(err)
	}
	set, err := New(vectors, 3, qcluster.IndexOptions{})
	if err != nil {
		t.Fatal(err)
	}
	want, _ := control.SearchByExampleContext(context.Background(), vectors[5], 1000)
	got, gerr := set.SearchByExampleContext(context.Background(), vectors[5], 1000)
	if gerr != nil {
		t.Fatal(gerr)
	}
	if len(got) != 400 {
		t.Fatalf("got %d results, want all 400", len(got))
	}
	sameResults(t, "k>n", want, got)
}

// TestScatterGatherCancellation checks the partial-results contract:
// a context cancelled mid-search interrupts whichever shards are still
// traversing, and the gather merges what the subset of shards had found
// into a sorted, duplicate-free best-effort answer tagged with both
// ErrPartialResults and the context error.
func TestScatterGatherCancellation(t *testing.T) {
	vectors := makeVectors(6000, 8, 21)
	set, err := New(vectors, 4, qcluster.IndexOptions{SearchParallelism: 1})
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	pops := 0
	faultinject.Set(faultinject.KNNPop, func() {
		pops++
		if pops == 40 {
			cancel() // some shards mid-traversal, others possibly done: a subset answers
		}
	})
	defer faultinject.Clear(faultinject.KNNPop)

	res, err := set.SearchByExampleContext(ctx, vectors[100], 25)
	if err == nil {
		t.Fatal("cancelled search returned no error")
	}
	if !errors.Is(err, qcluster.ErrPartialResults) {
		t.Fatalf("error %v does not match ErrPartialResults", err)
	}
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("error %v does not match context.Canceled", err)
	}
	seen := map[int]bool{}
	for i, r := range res {
		if i > 0 && (res[i-1].Dist > r.Dist || (res[i-1].Dist == r.Dist && res[i-1].ID >= r.ID)) {
			t.Fatalf("partial results not in (dist, id) order at %d", i)
		}
		if seen[r.ID] {
			t.Fatalf("duplicate id %d in partial results", r.ID)
		}
		seen[r.ID] = true
	}

	// An already-expired context fails fast without fanning out.
	done, cancel2 := context.WithCancel(context.Background())
	cancel2()
	if _, err := set.SearchByExampleContext(done, vectors[0], 5); err == nil {
		t.Fatal("expired context did not fail")
	}
}
