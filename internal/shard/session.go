package shard

import (
	"context"
	"fmt"
	"math"
	"sync"

	qcluster "repro"
	"repro/internal/distance"
	"repro/internal/index"
)

// Session is the sharded counterpart of qcluster.Session: one shared
// query model (retrieve, mark, refine) over the whole set, with one
// refinement searcher per shard so every shard keeps its own
// cross-iteration leaf cache. Retrieval fans out to all shards — the
// multipoint query's exact top-k needs every shard's candidates — while
// the session itself is pinned to a home shard member by consistent-hash
// routing (see Set.HomeShard) purely as a serving-tier affinity signal.
//
// A Session is safe for concurrent use; searches and feedback are
// serialized internally like qcluster.Session.
type Session struct {
	mu        sync.Mutex
	set       *Set
	query     *qcluster.Query
	example   []float64
	searchers []*qcluster.ShardSearcher
	home      int
}

// NewSession starts a sharded retrieval session from an example vector
// with no routing affinity (home -1).
func (s *Set) NewSession(example []float64, opt qcluster.Options) *Session {
	return s.newSession(example, opt, -1)
}

// NewSessionRouted is NewSession with consistent-hash affinity: the
// session's home shard is HomeShard(key) (the serving tier passes the
// session id).
func (s *Set) NewSessionRouted(example []float64, opt qcluster.Options, key string) *Session {
	return s.newSession(example, opt, s.ring.route(key))
}

func (s *Set) newSession(example []float64, opt qcluster.Options, home int) *Session {
	searchers := make([]*qcluster.ShardSearcher, len(s.shards))
	for i, db := range s.shards {
		searchers[i] = db.NewShardSearcher()
	}
	return &Session{
		set:       s,
		query:     qcluster.NewQuery(opt),
		example:   append([]float64(nil), example...),
		searchers: searchers,
		home:      home,
	}
}

// Home returns the session's home shard (-1 when unrouted).
func (sess *Session) Home() int { return sess.home }

// Results retrieves the current top-k (see ResultsContext).
func (sess *Session) Results(k int) []qcluster.Result {
	res, _ := sess.ResultsContext(context.Background(), k)
	return res
}

// ResultsContext retrieves the current global top-k: the plain example
// query before any feedback, the refined multipoint query afterwards —
// bit-identical to qcluster.Session.ResultsContext over the same
// unsharded collection. Successive calls reuse each shard's refinement
// cache from the previous iteration.
func (sess *Session) ResultsContext(ctx context.Context, k int) ([]qcluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: search not started: %w", err)
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	var m distance.Metric
	if sess.query.Ready() {
		m = sess.query.Metric()
	} else {
		if len(sess.example) != sess.set.dim {
			return nil, fmt.Errorf("shard: session example has dimension %d, set has %d: %w",
				len(sess.example), sess.set.dim, qcluster.ErrDimensionMismatch)
		}
		m = qcluster.EuclideanMetric(sess.example)
	}
	res, _, err := sess.set.gather(ctx, k, func(ctx context.Context, i int, sb *index.SharedBound) ([]qcluster.Result, index.SearchStats, error) {
		return sess.searchers[i].KNNShared(ctx, m, k, sb)
	})
	return res, err
}

// ResultsApprox is the session's approximate retrieval (see
// ResultsApproxContext).
func (sess *Session) ResultsApprox(k, efSearch int) []qcluster.Result {
	res, err := sess.ResultsApproxContext(context.Background(), k, efSearch)
	if err != nil {
		return nil
	}
	return res
}

// ResultsApproxContext retrieves the current query's top-k on the ANN
// backend across all shards with an explicit efSearch override — the
// sharded counterpart of qcluster.Session.ResultsApproxContext, with
// the same contract: a non-ANN backend returns ErrBackendUnavailable.
func (sess *Session) ResultsApproxContext(ctx context.Context, k, efSearch int) ([]qcluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: search not started: %w", err)
	}
	if err := sess.set.approxAvailable(); err != nil {
		return nil, err
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	var m distance.Metric
	if sess.query.Ready() {
		m = sess.query.Metric()
	} else {
		if len(sess.example) != sess.set.dim {
			return nil, fmt.Errorf("shard: session example has dimension %d, set has %d: %w",
				len(sess.example), sess.set.dim, qcluster.ErrDimensionMismatch)
		}
		m = qcluster.EuclideanMetric(sess.example)
	}
	res, _, err := sess.set.gather(ctx, k, func(ctx context.Context, i int, sb *index.SharedBound) ([]qcluster.Result, index.SearchStats, error) {
		return sess.set.shards[i].SearchApproxMetric(ctx, m, k, efSearch)
	})
	return res, err
}

// MarkRelevant feeds the user's relevance judgement back into the
// shared query model, with the same validation as
// qcluster.Session.MarkRelevant.
func (sess *Session) MarkRelevant(points []qcluster.Point) error {
	for i, p := range points {
		if p.Score <= 0 {
			continue
		}
		if len(p.Vec) != sess.set.dim {
			return fmt.Errorf("shard: point %d has dimension %d, set has %d",
				i, len(p.Vec), sess.set.dim)
		}
		for d, x := range p.Vec {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return fmt.Errorf("shard: feedback point %d component %d is not finite (%v)", i, d, x)
			}
		}
	}
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.query.Feedback(points)
}

// Health returns the session query's health status.
func (sess *Session) Health() qcluster.Health {
	sess.mu.Lock()
	defer sess.mu.Unlock()
	return sess.query.Health()
}

// Query exposes the underlying query model for inspection.
func (sess *Session) Query() *qcluster.Query { return sess.query }
