package shard

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"time"

	qcluster "repro"
	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/obs"
)

// costStats converts per-shard index statistics into the obs layer's
// dependency-free CostStats for the request profile.
func costStats(s index.SearchStats) obs.CostStats {
	return obs.CostStats{
		NodesVisited:    s.NodesVisited,
		LeavesVisited:   s.LeavesVisited,
		LeavesTotal:     s.LeavesTotal,
		DistanceEvals:   s.DistanceEvals,
		BatchedEvals:    s.BatchedEvals,
		AbandonedEvals:  s.AbandonedEvals,
		CacheSeedLeaves: s.CacheSeedLeaves,
		GraphHops:       s.GraphHops,
		RefineEvals:     s.RefineEvals,
	}
}

// shardSearch is one per-shard leg of a scatter-gather query: it
// returns the shard's local top-k (local ids) computed against the
// shared bound.
type shardSearch func(ctx context.Context, i int, sb *index.SharedBound) ([]qcluster.Result, index.SearchStats, error)

// gather fans a query out to every shard with one shared k-th-best
// bound, remaps the per-shard results to global ids, and merges them
// with the deterministic (Dist, ID) order.
//
// Why the merge is bit-identical to one unsharded search: every value
// any shard publishes into the bound is its own current k-th best — an
// upper bound of the union's k-th best — so a candidate pruned or
// abandoned against the bound is certifiably outside the global top-k.
// Each shard therefore returns a superset of its members of the global
// top-k, distances are computed by the same kernels over the same
// vectors, and sorting the union by (Dist, ID) reproduces the
// unsharded result list exactly, ties included.
//
// Cancellation: an interrupted query merges whatever each shard had
// found (some shards may have finished, others return partial or empty
// sets) and reports it with an error matching both ErrPartialResults
// and the context error.
func (s *Set) gather(ctx context.Context, k int, run shardSearch) ([]qcluster.Result, index.SearchStats, error) {
	n := len(s.shards)
	sb := index.NewSharedBound()
	type out struct {
		res   []qcluster.Result
		stats index.SearchStats
		dur   time.Duration
		err   error
	}
	outs := make([]out, n)
	start := time.Now()
	done := make(chan int, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			defer func() { done <- i }()
			res, stats, err := run(ctx, i, sb)
			// Remap local ids to global under the mapping lock: any
			// vector visible to the search had its mapping entry
			// published before it entered the shard's tree.
			s.mu.RLock()
			g := s.globals[i]
			s.mu.RUnlock()
			for j := range res {
				res[j].ID = g[res[j].ID]
			}
			outs[i] = out{res: res, stats: stats, dur: time.Since(start), err: err}
		}(i)
	}
	for i := 0; i < n; i++ {
		<-done
	}

	// The request's cost profile (nil outside the serving tier) gets the
	// scatter wall-clock as its search stage, one per-shard child span,
	// and the merge stage. Attachment happens here, after the join, on
	// the single request goroutine — the per-shard legs themselves only
	// feed their own shard database's metrics.
	prof := obs.ProfileFromContext(ctx)
	prof.StageAt(obs.StageSearch, start, time.Since(start))
	var stats index.SearchStats
	var merged []qcluster.Result
	partial := false
	for i := range outs {
		stats.Add(outs[i].stats)
		prof.AddShard(i, start, outs[i].dur, costStats(outs[i].stats))
		merged = append(merged, outs[i].res...)
		if err := outs[i].err; err != nil {
			if errors.Is(err, qcluster.ErrPartialResults) {
				partial = true
				continue
			}
			s.met.searches.Inc()
			return nil, stats, fmt.Errorf("shard %d: %w", i, err)
		}
	}
	mergeStart := time.Now()
	sort.Slice(merged, func(a, b int) bool {
		if merged[a].Dist != merged[b].Dist {
			return merged[a].Dist < merged[b].Dist
		}
		return merged[a].ID < merged[b].ID
	})
	if len(merged) > k {
		merged = merged[:k]
	}
	prof.StageAt(obs.StageMerge, mergeStart, time.Since(mergeStart))
	s.met.searches.Inc()
	elapsed := time.Since(start)
	s.met.searchS.Observe(elapsed.Seconds())
	s.met.observeGather(elapsed, stats)
	if partial {
		s.met.partials.Inc()
		cause := ctx.Err()
		if cause == nil {
			// A shard reported an interrupt the gather context no longer
			// shows (e.g. a per-shard injected cancel); keep it.
			for i := range outs {
				if outs[i].err != nil {
					cause = outs[i].err
					break
				}
			}
		}
		return merged, stats, fmt.Errorf("shard: scatter-gather interrupted after %d results: %w: %w",
			len(merged), qcluster.ErrPartialResults, cause)
	}
	return merged, stats, nil
}

// SearchByExampleContext answers a plain k-NN query around an example
// vector across all shards — the sharded equivalent of
// Database.SearchByExampleContext, bit-identical to it over the same
// collection. k <= 0 yields no results.
func (s *Set) SearchByExampleContext(ctx context.Context, example []float64, k int) ([]qcluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: search not started: %w", err)
	}
	if len(example) != s.dim {
		return nil, fmt.Errorf("shard: example has dimension %d, set has %d: %w",
			len(example), s.dim, qcluster.ErrDimensionMismatch)
	}
	m := qcluster.EuclideanMetric(example)
	res, _, err := s.searchMetric(ctx, m, k)
	return res, err
}

func (s *Set) searchMetric(ctx context.Context, m distance.Metric, k int) ([]qcluster.Result, index.SearchStats, error) {
	return s.gather(ctx, k, func(ctx context.Context, i int, sb *index.SharedBound) ([]qcluster.Result, index.SearchStats, error) {
		return s.shards[i].SearchMetricShared(ctx, m, k, sb)
	})
}

// SearchApproxContext answers a plain k-NN query around an example
// vector on the ANN backend across all shards, with an explicit
// efSearch override per shard (0 = index default) — the sharded
// equivalent of Database.SearchApproxContext, with the same contract:
// any other backend returns ErrBackendUnavailable.
func (s *Set) SearchApproxContext(ctx context.Context, example []float64, k, efSearch int) ([]qcluster.Result, error) {
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("shard: search not started: %w", err)
	}
	if err := s.approxAvailable(); err != nil {
		return nil, err
	}
	if len(example) != s.dim {
		return nil, fmt.Errorf("shard: example has dimension %d, set has %d: %w",
			len(example), s.dim, qcluster.ErrDimensionMismatch)
	}
	m := qcluster.EuclideanMetric(example)
	res, _, err := s.gather(ctx, k, func(ctx context.Context, i int, sb *index.SharedBound) ([]qcluster.Result, index.SearchStats, error) {
		return s.shards[i].SearchApproxMetric(ctx, m, k, efSearch)
	})
	return res, err
}

// approxAvailable checks the set's backend up front so every shard path
// surfaces the same wrapped ErrBackendUnavailable instead of one
// "shard 0: ..." flavored error per topology. All shards are built from
// the same IndexOptions, so shard 0 speaks for the set.
func (s *Set) approxAvailable() error {
	if b := s.shards[0].IndexInfo().Backend; b != string(qcluster.BackendANN) {
		return fmt.Errorf("shard: backend is %q: %w", b, qcluster.ErrBackendUnavailable)
	}
	return nil
}
