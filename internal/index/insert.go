package index

import (
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Append copies a vector onto the end of the store's contiguous block
// and returns its new id. The vector must match the store's
// dimensionality and be finite. Indexes built over the store do NOT see
// the new vector automatically — call the index's Insert with the
// returned id (HybridTree supports this; a VA-file's quantile grid must
// be rebuilt). A grow may reallocate the block; subslices handed out
// earlier by Vector stay valid (they alias the old block, whose contents
// are never mutated).
func (s *Store) Append(v linalg.Vector) (int, error) {
	if v.Dim() != s.dim {
		return 0, fmt.Errorf("index: append dim %d, store has %d", v.Dim(), s.dim)
	}
	for d, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("index: append component %d is not finite", d)
		}
	}
	s.data = append(s.data, v...)
	s.n++
	return s.n - 1, nil
}

// Insert adds store vector id to the tree: it descends to the leaf whose
// live-space box needs the least enlargement (growing every box on the
// path), appends the item, and re-splits the leaf when it overflows.
// The tree stays exactly correct for search — live-space boxes always
// contain their subtree's points — though heavy skewed insertion can
// degrade balance versus a fresh bulk load.
func (t *HybridTree) Insert(id int) {
	t.epoch++
	t.insertOne(id)
}

// InsertBatch adds a contiguous run of store vectors to the tree under a
// single epoch bump — the batch-ingest path. One bump is enough for
// correctness (refinement caches taken before the batch are invalidated
// exactly once) and keeps cross-iteration caches warmer than bumping per
// vector would.
func (t *HybridTree) InsertBatch(ids []int) {
	if len(ids) == 0 {
		return
	}
	t.epoch++
	for _, id := range ids {
		t.insertOne(id)
	}
}

func (t *HybridTree) insertOne(id int) {
	if id < 0 || id >= t.store.Len() {
		panic(fmt.Sprintf("index: insert id %d out of range", id))
	}
	v := t.store.Vector(id)
	n := t.root
	for !n.isLeaf() {
		growBox(n, v)
		if enlargement(n.left, v) <= enlargement(n.right, v) {
			n = n.left
		} else {
			n = n.right
		}
	}
	growBox(n, v)
	n.items = append(n.items, id)
	if len(n.items) > t.leafCapacity {
		// Re-split the overflowing leaf in place with the same
		// median-split construction used at bulk load.
		ids := n.items
		rebuilt := t.build(ids)
		*n = *rebuilt
		t.numLeaves += countLeaves(n) - 1 // the leaf became a subtree
	}
}

// growBox extends n's bounding box to contain v.
func growBox(n *treeNode, v linalg.Vector) {
	for d, x := range v {
		if x < n.lo[d] {
			n.lo[d] = x
		}
		if x > n.hi[d] {
			n.hi[d] = x
		}
	}
}

// enlargement returns the total box-side growth needed for n's box to
// contain v (0 when already inside).
func enlargement(n *treeNode, v linalg.Vector) float64 {
	var g float64
	for d, x := range v {
		if x < n.lo[d] {
			g += n.lo[d] - x
		} else if x > n.hi[d] {
			g += x - n.hi[d]
		}
	}
	return g
}
