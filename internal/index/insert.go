package index

import (
	"fmt"
	"math"
	"time"

	"repro/internal/linalg"
)

// Append copies a vector onto the end of the store's contiguous block
// and returns its new id. The vector must match the store's
// dimensionality and be finite. Indexes built over the store do NOT see
// the new vector automatically — call the index's Insert with the
// returned id (HybridTree supports this; a VA-file quantizes new rows
// against its existing marks via Extend). A grow may reallocate the
// block; subslices handed out earlier by Vector stay valid (they alias
// the old block, whose contents are never mutated).
func (s *Store) Append(v linalg.Vector) (int, error) {
	if v.Dim() != s.dim {
		return 0, fmt.Errorf("index: append dim %d, store has %d", v.Dim(), s.dim)
	}
	for d, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return 0, fmt.Errorf("index: append component %d is not finite", d)
		}
	}
	s.data = append(s.data, v...)
	s.n++
	return s.n - 1, nil
}

// InsertStats reports the index-maintenance work of one Insert or
// InsertBatch call — the visibility half of the re-split fix: inserts
// used to re-split every overflowing leaf inline under the store write
// lock with no trace, so an unlucky batch stalled every reader behind
// an invisible rebuild.
type InsertStats struct {
	// Resplits counts overflowed leaves rebuilt into subtrees by this
	// call (bounded by the per-batch cap).
	Resplits int
	// ResplitTime is the wall-clock those rebuilds held the write lock.
	ResplitTime time.Duration
	// Deferred is the overflowed-leaf backlog left for later batches.
	// Deferred leaves stay valid (searches remain exact), just oversized.
	Deferred int
}

// Add accumulates other into s.
func (s *InsertStats) Add(other InsertStats) {
	s.Resplits += other.Resplits
	s.ResplitTime += other.ResplitTime
	if other.Deferred > s.Deferred {
		s.Deferred = other.Deferred // backlog size, not a sum
	}
}

// Insert adds store vector id to the tree: it descends to the leaf whose
// live-space box needs the least enlargement (growing every box on the
// path) and appends the item. An overflowing leaf is queued and
// re-split by the bounded drain below — see InsertBatch. The tree stays
// exactly correct for search either way: live-space boxes always
// contain their subtree's points, and an oversized leaf is still a
// valid leaf.
func (t *HybridTree) Insert(id int) InsertStats {
	t.epoch++
	t.insertOne(id)
	return t.drainResplits()
}

// InsertBatch adds a contiguous run of store vectors to the tree under a
// single epoch bump — the batch-ingest path. One bump is enough for
// correctness (refinement caches taken before the batch are invalidated
// exactly once) and keeps cross-iteration caches warmer than bumping per
// vector would.
//
// Re-split work is capped per batch (TreeOptions.MaxResplitsPerBatch):
// leaves that overflow beyond the cap stay queued and are drained by
// later inserts, so one pathological batch cannot hold the write lock
// for an unbounded rebuild while every search waits.
func (t *HybridTree) InsertBatch(ids []int) InsertStats {
	if len(ids) == 0 {
		return InsertStats{Deferred: len(t.pending)}
	}
	t.epoch++
	for _, id := range ids {
		t.insertOne(id)
	}
	return t.drainResplits()
}

func (t *HybridTree) insertOne(id int) {
	if id < 0 || id >= t.store.Len() {
		panic(fmt.Sprintf("index: insert id %d out of range", id))
	}
	v := t.store.Vector(id)
	n := t.root
	for !n.isLeaf() {
		growBox(n, v)
		if enlargement(n.left, v) <= enlargement(n.right, v) {
			n = n.left
		} else {
			n = n.right
		}
	}
	growBox(n, v)
	n.items = append(n.items, id)
	if len(n.items) > t.leafCapacity && !t.pendingSet[n] {
		if t.pendingSet == nil {
			t.pendingSet = make(map[*treeNode]bool)
		}
		t.pendingSet[n] = true
		t.pending = append(t.pending, n)
	}
}

// drainResplits rebuilds queued overflowed leaves, oldest first, up to
// the per-batch cap, with the same median-split construction used at
// bulk load. A queued node that an earlier drain already rebuilt (it
// became an internal node in place) is skipped.
func (t *HybridTree) drainResplits() InsertStats {
	var st InsertStats
	budget := t.maxResplits
	for len(t.pending) > 0 && (budget < 0 || st.Resplits < budget) {
		n := t.pending[0]
		t.pending = t.pending[1:]
		delete(t.pendingSet, n)
		if !n.isLeaf() || len(n.items) <= t.leafCapacity {
			continue
		}
		start := time.Now()
		rebuilt := t.build(n.items)
		*n = *rebuilt
		t.numLeaves += countLeaves(n) - 1 // the leaf became a subtree
		st.ResplitTime += time.Since(start)
		st.Resplits++
	}
	st.Deferred = len(t.pending)
	return st
}

// PendingResplits reports the current overflowed-leaf backlog.
func (t *HybridTree) PendingResplits() int { return len(t.pending) }

// growBox extends n's bounding box to contain v.
func growBox(n *treeNode, v linalg.Vector) {
	for d, x := range v {
		if x < n.lo[d] {
			n.lo[d] = x
		}
		if x > n.hi[d] {
			n.hi[d] = x
		}
	}
}

// enlargement returns the total box-side growth needed for n's box to
// contain v (0 when already inside).
func enlargement(n *treeNode, v linalg.Vector) float64 {
	var g float64
	for d, x := range v {
		if x < n.lo[d] {
			g += n.lo[d] - x
		} else if x > n.hi[d] {
			g += x - n.hi[d]
		}
	}
	return g
}
