package index

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/faultinject"
	"repro/internal/linalg"
)

// forceParallel returns a search view of tree whose parallel path
// engages regardless of store size.
func forceParallel(t *HybridTree, workers int) *HybridTree {
	view := t.WithParallelism(workers)
	view.parMinItems = 0
	return view
}

// The parallel leaf stage must return bit-identical results to the
// sequential traversal — same IDs, same distances, same order — across
// many random queries, metrics and k values.
func TestParallelKNNMatchesSequential(t *testing.T) {
	rng := rand.New(rand.NewSource(90))
	const n, dim = 3000, 8
	s := randStore(rng, n, dim)
	seq := NewHybridTree(s, TreeOptions{Parallelism: 1})
	par := forceParallel(seq, 4)

	queries := 1000
	if testing.Short() {
		queries = 100
	}
	for qi := 0; qi < queries; qi++ {
		center := make(linalg.Vector, dim)
		for d := range center {
			center[d] = rng.NormFloat64() * 3
		}
		var m distance.Metric
		if qi%3 == 0 {
			m = distance.NewQuadraticDiag(center, onesInv(rng, dim))
		} else {
			m = &distance.Euclidean{Center: center}
		}
		k := 1 + rng.Intn(50)
		want, _ := seq.KNN(m, k)
		got, stats := par.KNN(m, k)
		if len(got) != len(want) {
			t.Fatalf("query %d: parallel returned %d results, sequential %d", qi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("query %d result %d: parallel %+v != sequential %+v", qi, i, got[i], want[i])
			}
		}
		if stats.DistanceEvals > s.Len() {
			t.Fatalf("query %d: %d distance evals exceed store size %d (leaf deduplication broken)",
				qi, stats.DistanceEvals, s.Len())
		}
	}
}

// Parallel search under a shared full-scheme quadratic metric — the
// exact workload that used to race on the metric's scratch buffer; run
// with -race in CI.
func TestParallelKNNSharedFullSchemeMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	const n, dim = 4000, 6
	s := randStore(rng, n, dim)
	par := forceParallel(NewHybridTree(s, TreeOptions{}), 8)

	center := make(linalg.Vector, dim)
	inv := linalg.Identity(dim)
	m := distance.NewQuadraticFull(center, inv)
	want, _ := NewLinearScan(s).KNN(m, 40)
	got, _ := par.KNN(m, 40)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("result %d: parallel %+v != scan %+v", i, got[i], want[i])
		}
	}
}

// Cancelling a parallel search mid-traversal must drain the worker pool
// and return sorted best-effort results plus the context error.
func TestParallelKNNContextMidTraversalCancel(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(92))
	s := randStore(rng, 9000, 8)
	par := forceParallel(NewHybridTree(s, TreeOptions{NodeSizeBytes: 1024}), 4)

	ctx, cancel := context.WithCancel(context.Background())
	pops := 0
	faultinject.Set(faultinject.KNNPop, func() {
		pops++
		if pops == 5 {
			cancel()
		}
	})
	res, _, err := par.KNNContext(ctx, euclid(s.Vector(0)), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	for i := 1; i < len(res); i++ {
		if resultLess(res[i], res[i-1]) {
			t.Fatal("partial results not ascending")
		}
	}
}

// An interrupted refinement search must not shrink the same-epoch leaf
// cache: the leaves it failed to reach remain valid seeds and are
// unioned with the ones it visited, so the retry starts at least as
// warm as the previous completed search.
func TestRefinementCacheRetainedAcrossInterrupt(t *testing.T) {
	defer faultinject.Reset()
	rng := rand.New(rand.NewSource(93))
	s := randStore(rng, 2000, 4)
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1, NodeSizeBytes: 256})
	ref := NewRefinementSearcher(tree)

	m1 := euclid(s.Vector(11))
	ref.KNN(m1, 60) // completed search warms the cache
	warm := ref.CachedLeaves()
	if warm == 0 {
		t.Fatal("cache not warmed")
	}

	// Interrupt the next (slightly moved) search almost immediately, so
	// it visits fewer leaves than are cached.
	ctx, cancel := context.WithCancel(context.Background())
	pops := 0
	faultinject.Set(faultinject.KNNPop, func() {
		pops++
		if pops == 1 {
			cancel()
		}
	})
	m2 := euclid(s.Vector(12))
	_, _, err := ref.KNNContext(ctx, m2, 60)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	faultinject.Reset()

	if got := ref.CachedLeaves(); got < warm {
		t.Fatalf("interrupted search shrank the cache: %d leaves, had %d", got, warm)
	}

	// The retry must still be exact.
	res, _, err := ref.KNNContext(context.Background(), m2, 60)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewLinearScan(s).KNN(m2, 60)
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("retry result %d: %+v != %+v", i, res[i], want[i])
		}
	}
}

// A cache taken at an older epoch is still discarded on interrupt paths:
// the union applies only to same-epoch caches.
func TestRefinementCacheInterruptAfterInsertDiscards(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	s := randStore(rng, 1500, 3)
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1, NodeSizeBytes: 256})
	ref := NewRefinementSearcher(tree)
	m := euclid(s.Vector(5))
	ref.KNN(m, 30)
	if ref.CachedLeaves() == 0 {
		t.Fatal("cache not warmed")
	}
	id, err := s.Append(s.Vector(5).Clone())
	if err != nil {
		t.Fatal(err)
	}
	tree.Insert(id)
	// Pre-cancelled context: the search is interrupted before any work;
	// the stale cache must have been dropped, not unioned back in.
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, cerr := ref.KNNContext(ctx, m, 30)
	if !errors.Is(cerr, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", cerr)
	}
	if got := ref.CachedLeaves(); got != 0 {
		t.Fatalf("stale cache survived an insert: %d leaves", got)
	}
	res, _ := ref.KNN(m, 30)
	want, _ := NewLinearScan(s).KNN(m, 30)
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("post-insert result %d: %+v != %+v", i, res[i], want[i])
		}
	}
}

// NewStoreFlat wraps a contiguous block without copying and agrees with
// the vector-built store.
func TestNewStoreFlat(t *testing.T) {
	flat := []float64{1, 2, 3, 4, 5, 6}
	s, err := NewStoreFlat(flat, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 3 || s.Dim() != 2 {
		t.Fatalf("Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if !s.Vector(2).Equal(linalg.Vector{5, 6}, 0) {
		t.Errorf("Vector(2) = %v", s.Vector(2))
	}
	if _, err := NewStoreFlat(nil, 3); err == nil {
		t.Error("empty block must error")
	}
	if _, err := NewStoreFlat([]float64{1, 2, 3}, 2); err == nil {
		t.Error("ragged block must error")
	}
	if _, err := NewStoreFlat([]float64{1, 2, 3}, 0); err == nil {
		t.Error("non-positive dim must error")
	}
}

// Appending through a Vector subslice must not clobber the neighboring
// vector: the store hands out capacity-capped subslices.
func TestStoreVectorAliasingSafe(t *testing.T) {
	s, err := NewStore([]linalg.Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	v := s.Vector(0)
	_ = append(v, 99) // must reallocate, not write into vector 1's slot
	if !s.Vector(1).Equal(linalg.Vector{3, 4}, 0) {
		t.Fatalf("append through a subslice corrupted vector 1: %v", s.Vector(1))
	}
}
