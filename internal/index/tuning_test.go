package index

import (
	"math/rand"
	"testing"
)

// TestParallelMinItemsKnob pins the engagement-threshold knob's
// contract: the default keeps the historical 8192-item threshold (a
// small store searches sequentially even with workers configured), an
// explicit threshold is honored in both directions, and a negative
// value removes the threshold entirely. Every variant must stay
// bit-identical — the knob moves cost, never results.
func TestParallelMinItemsKnob(t *testing.T) {
	rng := rand.New(rand.NewSource(95))
	const n, dim, k = 3000, 6, 25 // n below the 8192 default threshold
	s := randStore(rng, n, dim)
	m := euclid(s.Vector(7))

	want, _ := NewHybridTree(s, TreeOptions{Parallelism: 1}).KNN(m, k)

	cases := []struct {
		name        string
		opt         TreeOptions
		wantWorkers int
	}{
		{"default threshold keeps small stores sequential", TreeOptions{Parallelism: 4}, 1},
		{"negative removes the threshold", TreeOptions{Parallelism: 4, ParallelMinItems: -1}, 4},
		{"threshold below store size engages", TreeOptions{Parallelism: 4, ParallelMinItems: 1000}, 4},
		{"threshold above store size stays sequential", TreeOptions{Parallelism: 4, ParallelMinItems: 5000}, 1},
	}
	for _, tc := range cases {
		tree := NewHybridTree(s, tc.opt)
		got, stats := tree.KNN(m, k)
		if stats.Workers != tc.wantWorkers {
			t.Errorf("%s: Workers = %d, want %d", tc.name, stats.Workers, tc.wantWorkers)
		}
		if len(got) != len(want) {
			t.Fatalf("%s: %d results, want %d", tc.name, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", tc.name, i, got[i], want[i])
			}
		}
	}
}

// TestWithTuningOverrides checks the planner's per-query view: a zero
// SearchTuning changes nothing, Workers>1 with MinItems=-1 engages the
// parallel path on a small store, and Workers=1 forces the sequential
// path on a tree configured parallel — all bit-identical, with the
// underlying tree's configuration untouched.
func TestWithTuningOverrides(t *testing.T) {
	rng := rand.New(rand.NewSource(96))
	const n, dim, k = 2500, 5, 20
	s := randStore(rng, n, dim)
	m := euclid(s.Vector(3))
	tree := NewHybridTree(s, TreeOptions{Parallelism: 4})
	want, _ := NewHybridTree(s, TreeOptions{Parallelism: 1}).KNN(m, k)

	check := func(name string, view *HybridTree, wantWorkers int) {
		t.Helper()
		got, stats := view.KNN(m, k)
		if stats.Workers != wantWorkers {
			t.Errorf("%s: Workers = %d, want %d", name, stats.Workers, wantWorkers)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("%s: result %d = %+v, want %+v", name, i, got[i], want[i])
			}
		}
	}

	check("zero tuning keeps configured behavior", tree.WithTuning(SearchTuning{}), 1) // small store: sequential
	check("MinItems=-1 engages parallel", tree.WithTuning(SearchTuning{MinItems: -1}), 4)
	check("explicit batch size", tree.WithTuning(SearchTuning{MinItems: -1, BatchItems: 64}), 4)
	check("Workers=1 forces sequential", tree.WithTuning(SearchTuning{Workers: 1, MinItems: -1}), 1)

	// The view must not have mutated the shared tree.
	if tree.Parallelism() != 4 || tree.parMinItems != parallelMinItems || tree.batchItems != parallelBatchItems {
		t.Fatalf("tuning view mutated the tree: parallelism=%d parMinItems=%d batchItems=%d",
			tree.Parallelism(), tree.parMinItems, tree.batchItems)
	}
}
