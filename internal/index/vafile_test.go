package index

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/linalg"
)

func TestVAFileKNNMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(200))
	for trial := 0; trial < 8; trial++ {
		dim := 2 + rng.Intn(6)
		s := randStore(rng, 400+rng.Intn(400), dim)
		va := NewVAFile(s, VAFileOptions{})
		scan := NewLinearScan(s)

		center := make(linalg.Vector, dim)
		for d := range center {
			center[d] = rng.NormFloat64() * 3
		}
		for _, m := range []distance.Metric{
			&distance.Euclidean{Center: center},
			distance.NewQuadraticDiag(center, onesInv(rng, dim)),
		} {
			want, _ := scan.KNN(m, 12)
			got, stats := va.KNN(m, 12)
			if !sameResults(got, want) {
				t.Fatalf("trial %d: VA-file kNN mismatch", trial)
			}
			if stats.DistanceEvals > s.Len() {
				t.Fatal("more exact evaluations than objects")
			}
		}
	}
}

func TestVAFilePrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(201))
	s := randStore(rng, 20000, 4)
	va := NewVAFile(s, VAFileOptions{BitsPerDim: 5})
	m := &distance.Euclidean{Center: linalg.Vector{0, 0, 0, 0}}
	_, stats := va.KNN(m, 10)
	if stats.DistanceEvals > s.Len()/10 {
		t.Errorf("weak filtering: %d exact evals of %d", stats.DistanceEvals, s.Len())
	}
}

func TestVAFileDisjunctiveMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(202))
	s := randStore(rng, 3000, 3)
	va := NewVAFile(s, VAFileOptions{})
	scan := NewLinearScan(s)
	q1 := distance.NewQuadraticDiag(linalg.Vector{-3, -3, -3}, linalg.Vector{1, 1, 1})
	q2 := distance.NewQuadraticDiag(linalg.Vector{3, 3, 3}, linalg.Vector{1, 1, 1})
	m := distance.NewDisjunctive([]*distance.Quadratic{q1, q2}, []float64{1, 2})

	want, _ := scan.KNN(m, 20)
	got, _ := va.KNN(m, 20)
	if !sameResults(got, want) {
		t.Fatal("disjunctive kNN mismatch")
	}
}

func TestVAFileRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(203))
	s := randStore(rng, 2000, 3)
	va := NewVAFile(s, VAFileOptions{})
	scan := NewLinearScan(s)
	m := &distance.Euclidean{Center: linalg.Vector{0.5, -0.5, 1}}

	want, _ := scan.Range(m, 4.0)
	got, stats := va.Range(m, 4.0)
	if len(got) != len(want) {
		t.Fatalf("range sizes: va %d scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range result %d differs", i)
		}
	}
	if stats.DistanceEvals >= s.Len() {
		t.Error("range scan did not filter at all")
	}
}

func TestVAFileDefaultsAndClamp(t *testing.T) {
	rng := rand.New(rand.NewSource(204))
	s := randStore(rng, 100, 2)
	if got := NewVAFile(s, VAFileOptions{}).BitsPerDim(); got != 4 {
		t.Errorf("default bits = %d", got)
	}
	if got := NewVAFile(s, VAFileOptions{BitsPerDim: 99}).BitsPerDim(); got != 12 {
		t.Errorf("clamped bits = %d", got)
	}
}

func TestHybridTreeRangeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(205))
	s := randStore(rng, 5000, 3)
	tree := NewHybridTree(s, TreeOptions{})
	scan := NewLinearScan(s)
	m := &distance.Euclidean{Center: linalg.Vector{1, 1, 1}}

	want, _ := scan.Range(m, 2.0)
	got, stats := tree.Range(m, 2.0)
	if len(got) != len(want) {
		t.Fatalf("range sizes: tree %d scan %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("range result %d differs", i)
		}
	}
	if stats.DistanceEvals >= s.Len() {
		t.Error("tree range did not prune")
	}
	// Empty result for an impossible radius.
	if empty, _ := tree.Range(m, -1); len(empty) != 0 {
		t.Error("negative radius must return nothing")
	}
}
