package index

import (
	"context"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/faultinject"
	"repro/internal/linalg"
)

func buildRandomStore(t *testing.T, n, dim int, seed int64) *Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vecs := make([]linalg.Vector, n)
	for i := range vecs {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = rng.NormFloat64()
		}
		vecs[i] = v
	}
	s, err := NewStore(vecs)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func euclid(center linalg.Vector) distance.Metric {
	return &distance.Euclidean{Center: center}
}

// k <= 0 must yield empty results from every searcher, not a panic.
func TestKNNNonPositiveK(t *testing.T) {
	s := buildRandomStore(t, 50, 4, 1)
	tree := NewHybridTree(s, TreeOptions{})
	ref := NewRefinementSearcher(tree)
	scan := NewLinearScan(s)
	m := euclid(s.Vector(0))
	for _, k := range []int{0, -1, -100} {
		if res, _ := tree.KNN(m, k); len(res) != 0 {
			t.Errorf("tree.KNN(k=%d) = %d results, want 0", k, len(res))
		}
		if res, _ := ref.KNN(m, k); len(res) != 0 {
			t.Errorf("ref.KNN(k=%d) = %d results, want 0", k, len(res))
		}
		if res, _ := scan.KNN(m, k); len(res) != 0 {
			t.Errorf("scan.KNN(k=%d) = %d results, want 0", k, len(res))
		}
	}
}

// k larger than the collection must return every item, in ascending
// distance order, and agree with the linear scan.
func TestKNNKExceedsLen(t *testing.T) {
	s := buildRandomStore(t, 37, 5, 2)
	tree := NewHybridTree(s, TreeOptions{})
	m := euclid(s.Vector(3))
	res, _ := tree.KNN(m, 1000)
	if len(res) != s.Len() {
		t.Fatalf("got %d results, want %d", len(res), s.Len())
	}
	want, _ := NewLinearScan(s).KNN(m, 1000)
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("result %d: tree %+v != scan %+v", i, res[i], want[i])
		}
	}
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("results not ascending")
		}
	}
}

// A 1-item database must answer any k with its single item.
func TestKNNSingleItem(t *testing.T) {
	s, err := NewStore([]linalg.Vector{{1, 2, 3}})
	if err != nil {
		t.Fatal(err)
	}
	tree := NewHybridTree(s, TreeOptions{})
	ref := NewRefinementSearcher(tree)
	for _, k := range []int{1, 2, 10} {
		res, _ := tree.KNN(euclid(linalg.Vector{0, 0, 0}), k)
		if len(res) != 1 || res[0].ID != 0 {
			t.Fatalf("k=%d: %+v", k, res)
		}
		res, _ = ref.KNN(euclid(linalg.Vector{9, 9, 9}), k)
		if len(res) != 1 || res[0].ID != 0 {
			t.Fatalf("refinement k=%d: %+v", k, res)
		}
	}
}

// An already-cancelled context stops the traversal before any node work.
func TestKNNContextPreCancelled(t *testing.T) {
	s := buildRandomStore(t, 200, 4, 3)
	tree := NewHybridTree(s, TreeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, stats, err := tree.KNNContext(ctx, euclid(s.Vector(0)), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if stats.NodesVisited != 0 {
		t.Errorf("visited %d nodes after pre-cancel", stats.NodesVisited)
	}
	if len(res) != 0 {
		t.Errorf("pre-cancelled search returned %d results", len(res))
	}
}

// Cancelling mid-traversal (via the KNNPop hook) returns the best-effort
// partial results found so far plus the context error.
func TestKNNContextMidTraversalCancel(t *testing.T) {
	defer faultinject.Reset()
	s := buildRandomStore(t, 2000, 8, 4)
	tree := NewHybridTree(s, TreeOptions{})
	ctx, cancel := context.WithCancel(context.Background())
	pops := 0
	faultinject.Set(faultinject.KNNPop, func() {
		pops++
		if pops == 3 {
			cancel()
		}
	})
	res, _, err := tree.KNNContext(ctx, euclid(s.Vector(0)), 10)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Partial results must still be sorted.
	for i := 1; i < len(res); i++ {
		if res[i].Dist < res[i-1].Dist {
			t.Fatal("partial results not ascending")
		}
	}
	// And the traversal must actually have stopped early.
	full, _ := tree.KNN(euclid(s.Vector(0)), 10)
	if len(res) > len(full) {
		t.Fatalf("partial %d > full %d", len(res), len(full))
	}
}

// Insert bumps the tree epoch and a stale refinement cache is dropped,
// not reused: searches after an insert still return exact answers.
func TestRefinementCacheEpochInvalidation(t *testing.T) {
	s := buildRandomStore(t, 300, 3, 5)
	tree := NewHybridTree(s, TreeOptions{})
	ref := NewRefinementSearcher(tree)
	m := euclid(s.Vector(7))
	ref.KNN(m, 20) // warm the cache
	if ref.CachedLeaves() == 0 {
		t.Fatal("cache not warmed")
	}
	e0 := tree.Epoch()
	// Insert a point that lands in the cached neighborhood.
	id, err := s.Append(s.Vector(7).Clone())
	if err != nil {
		t.Fatal(err)
	}
	tree.Insert(id)
	if tree.Epoch() == e0 {
		t.Fatal("Insert must bump the epoch")
	}
	res, _ := ref.KNN(m, 20)
	want, _ := NewLinearScan(s).KNN(m, 20)
	for i := range want {
		if res[i] != want[i] {
			t.Fatalf("post-insert result %d: %+v != %+v", i, res[i], want[i])
		}
	}
}
