package index

import "sort"

// resultHeap is a bounded max-heap keeping the k smallest results under
// the total order (Dist, ID). The ID tie-break makes the kept set — not
// just the kept distances — deterministic, so a parallel search that
// evaluates leaves in a different order returns bit-identical results to
// the sequential traversal even when distances tie at the k-th place.
type resultHeap struct {
	k     int
	items []Result
}

func newResultHeap(k int) *resultHeap {
	if k < 0 {
		k = 0
	}
	cap := k
	if cap > 1024 {
		cap = 1024 // huge k (e.g. k >= collection size) fills lazily
	}
	return &resultHeap{k: k, items: make([]Result, 0, cap)}
}

// resultLess orders results ascending by (Dist, ID).
func resultLess(a, b Result) bool {
	if a.Dist != b.Dist {
		return a.Dist < b.Dist
	}
	return a.ID < b.ID
}

// bound returns the current kth-best distance, or +Inf when fewer than k
// results are held. A non-positive k admits nothing: the bound is -Inf.
func (h *resultHeap) bound() float64 {
	if h.k <= 0 {
		return -inf
	}
	if len(h.items) < h.k {
		return inf
	}
	return h.items[0].Dist
}

func (h *resultHeap) offer(r Result) {
	if h.k <= 0 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	if !resultLess(r, h.items[0]) {
		return
	}
	h.items[0] = r
	h.down(0)
}

// merge offers every result held by other into h.
func (h *resultHeap) merge(other *resultHeap) {
	for _, r := range other.items {
		h.offer(r)
	}
}

func (h *resultHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !resultLess(h.items[parent], h.items[i]) {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *resultHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && resultLess(h.items[largest], h.items[l]) {
			largest = l
		}
		if r < n && resultLess(h.items[largest], h.items[r]) {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

func (h *resultHeap) sorted() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool { return resultLess(out[i], out[j]) })
	return out
}
