package index

import (
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/linalg"
)

func TestStoreAppend(t *testing.T) {
	s, _ := NewStore([]linalg.Vector{{1, 2}})
	id, err := s.Append(linalg.Vector{3, 4})
	if err != nil || id != 1 {
		t.Fatalf("id=%d err=%v", id, err)
	}
	if s.Len() != 2 || !s.Vector(1).Equal(linalg.Vector{3, 4}, 0) {
		t.Error("append did not extend the store")
	}
	if _, err := s.Append(linalg.Vector{1}); err == nil {
		t.Error("dim mismatch must error")
	}
}

func TestHybridTreeInsertStaysCorrect(t *testing.T) {
	rng := rand.New(rand.NewSource(300))
	s := randStore(rng, 500, 3)
	tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 512})

	// Insert 500 more vectors one at a time.
	for i := 0; i < 500; i++ {
		v := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		id, err := s.Append(v)
		if err != nil {
			t.Fatal(err)
		}
		tree.Insert(id)
	}

	// The tree must now agree with a linear scan over the grown store
	// for both k-NN and range queries.
	scan := NewLinearScan(s)
	for trial := 0; trial < 5; trial++ {
		center := linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3, rng.NormFloat64() * 3}
		m := &distance.Euclidean{Center: center}
		want, _ := scan.KNN(m, 20)
		got, _ := tree.KNN(m, 20)
		if !sameResults(got, want) {
			t.Fatalf("trial %d: kNN mismatch after inserts", trial)
		}
		wantR, _ := scan.Range(m, 2.0)
		gotR, _ := tree.Range(m, 2.0)
		if len(wantR) != len(gotR) {
			t.Fatalf("trial %d: range sizes %d vs %d", trial, len(gotR), len(wantR))
		}
	}
}

func TestHybridTreeInsertSplitsLeaves(t *testing.T) {
	// Start from a tiny store (single leaf), insert enough points to
	// force splits, and check the height grows.
	s, _ := NewStore([]linalg.Vector{{0, 0}})
	tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 256}) // capacity 16
	if tree.Height() != 1 {
		t.Fatalf("initial height = %d", tree.Height())
	}
	rng := rand.New(rand.NewSource(301))
	for i := 0; i < 200; i++ {
		id, _ := s.Append(linalg.Vector{rng.NormFloat64(), rng.NormFloat64()})
		tree.Insert(id)
	}
	if tree.Height() < 3 {
		t.Errorf("height = %d after 200 inserts into capacity-16 leaves", tree.Height())
	}
	// Everything still findable.
	res, _ := tree.KNN(&distance.Euclidean{Center: linalg.Vector{0, 0}}, 201)
	if len(res) != 201 {
		t.Errorf("found %d of 201 items", len(res))
	}
}

func TestHybridTreeInsertPanicsOutOfRange(t *testing.T) {
	s, _ := NewStore([]linalg.Vector{{0, 0}})
	tree := NewHybridTree(s, TreeOptions{})
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	tree.Insert(5)
}

func TestInsertResplitCapDefers(t *testing.T) {
	// A capacity-16 tree with a cap of one re-split per batch: a batch
	// that overflows several leaves must rebuild exactly one and leave
	// the rest queued — searches stay exact over the oversized leaves,
	// and later inserts drain the backlog.
	rng := rand.New(rand.NewSource(302))
	s := randStore(rng, 64, 2)
	tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 256, MaxResplitsPerBatch: 1})

	ids := make([]int, 0, 256)
	for i := 0; i < 256; i++ {
		id, err := s.Append(linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	st := tree.InsertBatch(ids)
	if st.Resplits != 1 {
		t.Fatalf("Resplits = %d, want exactly the cap (1)", st.Resplits)
	}
	if st.Deferred == 0 || tree.PendingResplits() != st.Deferred {
		t.Fatalf("Deferred = %d, PendingResplits = %d; want a matching non-zero backlog",
			st.Deferred, tree.PendingResplits())
	}

	// Deferred leaves are oversized, never wrong: the tree still agrees
	// with a linear scan.
	scan := NewLinearScan(s)
	m := &distance.Euclidean{Center: linalg.Vector{0, 0}}
	want, _ := scan.KNN(m, 25)
	got, _ := tree.KNN(m, 25)
	if !sameResults(got, want) {
		t.Fatal("kNN mismatch with deferred re-splits outstanding")
	}

	// Later inserts drain the backlog one re-split at a time.
	var total InsertStats
	for tree.PendingResplits() > 0 {
		id, err := s.Append(linalg.Vector{rng.NormFloat64(), rng.NormFloat64()})
		if err != nil {
			t.Fatal(err)
		}
		ist := tree.Insert(id)
		if ist.Resplits > 1 {
			t.Fatalf("single insert drained %d re-splits past the cap", ist.Resplits)
		}
		total.Add(ist)
	}
	if total.Resplits == 0 || total.ResplitTime <= 0 {
		t.Fatalf("drain did no timed re-split work: %+v", total)
	}
	want, _ = scan.KNN(m, 25)
	got, _ = tree.KNN(m, 25)
	if !sameResults(got, want) {
		t.Fatal("kNN mismatch after the backlog drained")
	}
}

func TestInsertUncappedResplits(t *testing.T) {
	// A negative cap removes the bound: no batch leaves a backlog.
	rng := rand.New(rand.NewSource(303))
	s := randStore(rng, 16, 2)
	tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 256, MaxResplitsPerBatch: -1})
	ids := make([]int, 0, 512)
	for i := 0; i < 512; i++ {
		id, err := s.Append(linalg.Vector{rng.NormFloat64() * 3, rng.NormFloat64() * 3})
		if err != nil {
			t.Fatal(err)
		}
		ids = append(ids, id)
	}
	st := tree.InsertBatch(ids)
	if st.Deferred != 0 || tree.PendingResplits() != 0 {
		t.Fatalf("uncapped batch deferred %d re-splits", st.Deferred)
	}
	if st.Resplits == 0 {
		t.Fatal("512 inserts into capacity-16 leaves re-split nothing")
	}
}
