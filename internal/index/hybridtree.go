package index

import (
	"container/heap"
	"context"
	"math"
	"sort"

	"repro/internal/distance"
	"repro/internal/faultinject"
	"repro/internal/linalg"
)

// HybridTree is a hierarchical index in the style of Chakrabarti &
// Mehrotra's hybrid tree, the structure the paper indexes its feature
// vectors with. Like the hybrid tree (and unlike R-trees), internal nodes
// split on a single dimension, so fanout does not degrade with
// dimensionality; like feature-based indexes, every node keeps the
// bounding box of the live space beneath it, which gives the best-first
// search tight MINDIST lower bounds.
//
// The tree is bulk-loaded by recursive splitting on the dimension of
// largest spread at the median — the standard construction for a static
// collection, which is what the experiments need.
type HybridTree struct {
	store        *Store
	root         *treeNode
	leafCapacity int
	epoch        uint64             // bumped by every Insert; see Epoch
	parallelism  int                // resolved worker count for leaf evaluation (>= 1)
	parMinItems  int                // smallest store for which the parallel path engages
	batchItems   int                // target evaluations per parallel work unit
	numLeaves    int                // leaf count, maintained by build and Insert re-splits
	maxResplits  int                // re-split budget per insert batch (<0 = unlimited)
	pending      []*treeNode        // overflowed leaves awaiting re-split
	pendingSet   map[*treeNode]bool // membership for the pending queue
}

type treeNode struct {
	lo, hi      linalg.Vector // live-space bounding box
	left, right *treeNode
	items       []int // leaf payload (object ids); nil for internal nodes
}

func (n *treeNode) isLeaf() bool { return n.items != nil }

// TreeOptions configures construction.
type TreeOptions struct {
	// NodeSizeBytes models the paper's 4 KB index node: the leaf capacity
	// is NodeSizeBytes / (8 bytes × dim). Defaults to 4096.
	NodeSizeBytes int
	// Parallelism is the worker count for the parallel leaf-evaluation
	// stage of k-NN search: 0 means GOMAXPROCS, 1 forces the sequential
	// path, higher values cap the pool. Small stores (below
	// ParallelMinItems) always search sequentially — fan-out costs more
	// than the scan there.
	Parallelism int
	// ParallelMinItems is the smallest store size for which the parallel
	// leaf stage engages. 0 uses the default (8192); negative means no
	// threshold — the parallel path engages at any size (the cost-based
	// planner uses this when it has already decided fan-out pays off).
	ParallelMinItems int
	// MaxResplitsPerBatch caps how many overflowed leaves one Insert or
	// InsertBatch call may rebuild while it holds the write lock; the
	// rest stay queued (still exact, just oversized) for later batches.
	// 0 uses the default (8); negative removes the cap.
	MaxResplitsPerBatch int
}

// defaultMaxResplits bounds per-batch re-split work: rebuilding a leaf
// is O(cap·log) with sorting, so 8 rebuilds keep the write-lock hold in
// the tens of microseconds while still draining any realistic overflow
// rate faster than it accrues.
const defaultMaxResplits = 8

// NewHybridTree bulk-loads the index over the store.
func NewHybridTree(s *Store, opt TreeOptions) *HybridTree {
	if opt.NodeSizeBytes <= 0 {
		opt.NodeSizeBytes = 4096
	}
	capacity := opt.NodeSizeBytes / (8 * s.Dim())
	if capacity < 4 {
		capacity = 4
	}
	ids := make([]int, s.Len())
	for i := range ids {
		ids[i] = i
	}
	maxResplits := opt.MaxResplitsPerBatch
	if maxResplits == 0 {
		maxResplits = defaultMaxResplits
	}
	t := &HybridTree{
		store:        s,
		leafCapacity: capacity,
		parallelism:  resolveParallelism(opt.Parallelism),
		parMinItems:  resolveParallelMinItems(opt.ParallelMinItems),
		batchItems:   parallelBatchItems,
		maxResplits:  maxResplits,
	}
	t.root = t.build(ids)
	t.numLeaves = countLeaves(t.root)
	return t
}

func countLeaves(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	return countLeaves(n.left) + countLeaves(n.right)
}

// LeafCapacity exposes the effective leaf capacity (for tests and docs).
func (t *HybridTree) LeafCapacity() int { return t.leafCapacity }

// NumLeaves reports the current leaf count (the denominator of search
// prune ratios).
func (t *HybridTree) NumLeaves() int { return t.numLeaves }

// Parallelism reports the resolved search worker count.
func (t *HybridTree) Parallelism() int { return t.parallelism }

// WithParallelism returns a search-only view of the same tree (shared
// store and nodes) whose k-NN queries use the given worker count (0 =
// GOMAXPROCS, 1 = sequential). The view is meant for searching — Insert
// through a view diverges the epoch counters and must be avoided.
func (t *HybridTree) WithParallelism(p int) *HybridTree {
	view := *t
	view.parallelism = resolveParallelism(p)
	return &view
}

// SearchTuning is a per-query override of the tree's search knobs — the
// handle the cost-based planner drives. The zero value changes nothing:
// every zero field keeps the tree's configured behavior.
type SearchTuning struct {
	// Workers overrides the leaf-evaluation worker count: 1 forces the
	// sequential path, >1 the parallel path (still subject to MinItems),
	// 0 keeps the tree's configured parallelism.
	Workers int
	// MinItems overrides the parallel engagement threshold: negative
	// engages the parallel path regardless of store size, positive sets
	// the threshold, 0 keeps the configured one.
	MinItems int
	// BatchItems overrides the target evaluations per parallel work unit
	// (0 keeps the default). Smaller batches tighten the shared bound
	// more often — worth it when the abandonment rate is high; larger
	// batches amortize hand-off when almost nothing is abandoned.
	BatchItems int
}

// WithTuning returns a search-only view of the same tree (shared store
// and nodes) with per-query overrides applied; see WithParallelism for
// the view contract. Both the sequential and parallel paths are
// bit-identical, so any tuning yields exactly the same results — only
// the cost profile moves.
func (t *HybridTree) WithTuning(tu SearchTuning) *HybridTree {
	view := *t
	if tu.Workers != 0 {
		view.parallelism = resolveParallelism(tu.Workers)
	}
	if tu.MinItems != 0 {
		view.parMinItems = resolveParallelMinItems(tu.MinItems)
	}
	if tu.BatchItems > 0 {
		view.batchItems = tu.BatchItems
	}
	return &view
}

// Epoch returns the tree's structural version: it starts at 0 and is
// bumped by every Insert. Cached node pointers (RefinementSearcher) are
// only reused while the epoch is unchanged, since an insert may re-split
// a cached leaf in place. The tree does no internal locking — callers
// that mix Insert with searches must serialize them externally (the
// public Database does this with an RWMutex).
func (t *HybridTree) Epoch() uint64 { return t.epoch }

// Height returns the tree height (1 for a single leaf).
func (t *HybridTree) Height() int { return height(t.root) }

func height(n *treeNode) int {
	if n == nil {
		return 0
	}
	if n.isLeaf() {
		return 1
	}
	l, r := height(n.left), height(n.right)
	if l > r {
		return l + 1
	}
	return r + 1
}

func (t *HybridTree) build(ids []int) *treeNode {
	n := &treeNode{}
	n.lo, n.hi = t.bbox(ids)
	if len(ids) <= t.leafCapacity {
		n.items = ids
		return n
	}
	// Split on the dimension with the largest spread, at the median.
	splitDim := 0
	bestSpread := -1.0
	for d := 0; d < t.store.Dim(); d++ {
		if spread := n.hi[d] - n.lo[d]; spread > bestSpread {
			bestSpread, splitDim = spread, d
		}
	}
	sort.Slice(ids, func(i, j int) bool {
		return t.store.Vector(ids[i])[splitDim] < t.store.Vector(ids[j])[splitDim]
	})
	mid := len(ids) / 2
	// Guard against all-equal keys on the split dimension producing an
	// empty side: move mid to the first differing position when possible.
	for mid < len(ids) && mid > 0 &&
		t.store.Vector(ids[mid])[splitDim] == t.store.Vector(ids[0])[splitDim] &&
		t.store.Vector(ids[len(ids)-1])[splitDim] != t.store.Vector(ids[0])[splitDim] {
		mid++
	}
	if mid == 0 || mid == len(ids) {
		// Degenerate data (all equal on every spread dimension): leaf it.
		n.items = ids
		return n
	}
	left := append([]int(nil), ids[:mid]...)
	right := append([]int(nil), ids[mid:]...)
	n.left = t.build(left)
	n.right = t.build(right)
	return n
}

func (t *HybridTree) bbox(ids []int) (lo, hi linalg.Vector) {
	dim := t.store.Dim()
	lo = make(linalg.Vector, dim)
	hi = make(linalg.Vector, dim)
	for d := 0; d < dim; d++ {
		lo[d], hi[d] = math.Inf(1), math.Inf(-1)
	}
	for _, id := range ids {
		v := t.store.Vector(id)
		for d, x := range v {
			if x < lo[d] {
				lo[d] = x
			}
			if x > hi[d] {
				hi[d] = x
			}
		}
	}
	return lo, hi
}

// nodeQueue is a min-heap of tree nodes keyed by metric lower bound.
type nodeEntry struct {
	node  *treeNode
	bound float64
}

type nodeQueue []nodeEntry

func (q nodeQueue) Len() int            { return len(q) }
func (q nodeQueue) Less(i, j int) bool  { return q[i].bound < q[j].bound }
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(nodeEntry)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// KNN answers a k-nearest-neighbor query with best-first (Hjaltason &
// Samet style) traversal: nodes are expanded in lower-bound order and
// pruned once their bound exceeds the kth-best distance found so far.
// k <= 0 yields no results.
func (t *HybridTree) KNN(m distance.Metric, k int) ([]Result, SearchStats) {
	res, stats, _, _ := t.knnSeeded(context.Background(), m, k, nil, nil)
	return res, stats
}

// KNNContext is KNN with cooperative cancellation: the best-first loop
// checks ctx between node expansions and, when the context is cancelled
// or its deadline passes mid-traversal, stops early and returns the
// best-effort results accumulated so far together with ctx.Err(). A nil
// error means the search ran to completion and the results are exact.
func (t *HybridTree) KNNContext(ctx context.Context, m distance.Metric, k int) ([]Result, SearchStats, error) {
	res, stats, _, err := t.knnSeeded(ctx, m, k, nil, nil)
	return res, stats, err
}

// KNNSharedContext is KNNContext with an externally owned pruning bound:
// concurrent searches over sibling shards pass the same *SharedBound so
// each tightens — and prunes against — the global k-th-best distance.
// Each participant still returns its own local top-k (restricted to
// candidates that can reach the global top-k); the caller merges the
// per-shard result sets with the usual (Dist, ID) order. A nil ext
// behaves exactly like KNNContext.
func (t *HybridTree) KNNSharedContext(ctx context.Context, m distance.Metric, k int, ext *SharedBound) ([]Result, SearchStats, error) {
	res, stats, _, err := t.knnSeeded(ctx, m, k, nil, ext)
	return res, stats, err
}

// knnSeeded runs best-first search after (optionally) seeding the result
// heap with the contents of previously cached leaves. Seeding tightens
// the pruning bound before any tree node is expanded — the mechanism by
// which the multipoint refinement approach reuses work across feedback
// iterations. It returns the leaves visited so callers can cache them,
// plus a non-nil ctx.Err() when the traversal was cut short (results are
// then the best found so far, still sorted).
//
// A non-nil ext couples this search to concurrent sibling-shard searches
// through one shared atomic bound (see KNNSharedContext): pruning and
// abandonment use min(local k-th best, shared bound), and the local k-th
// best is published after every leaf. Pruned candidates are exactly
// those certifiably past the global k-th best, so the union of all
// participants' results still contains the global top-k bit-identically.
func (t *HybridTree) knnSeeded(ctx context.Context, m distance.Metric, k int, seed []*treeNode, ext *SharedBound) ([]Result, SearchStats, []*treeNode, error) {
	var stats SearchStats
	stats.LeavesTotal = t.numLeaves
	stats.Workers = 1
	if k <= 0 {
		return nil, stats, nil, ctx.Err()
	}
	if t.parallelism > 1 && t.store.Len() >= t.parMinItems {
		return t.knnSeededParallel(ctx, m, k, seed, ext)
	}
	h := newResultHeap(k)
	seen := map[*treeNode]bool{}
	var visited []*treeNode

	// bound is the effective pruning bound: the local k-th best, further
	// tightened by the cross-shard shared bound when one is attached.
	bound := h.bound
	if ext != nil {
		bound = func() float64 {
			b := h.bound()
			if sb := ext.Load(); sb < b {
				b = sb
			}
			return b
		}
	}

	be := newBatchEvaluator(m, t.store)
	evalLeaf := func(n *treeNode) {
		stats.LeavesVisited++
		stats.DistanceEvals += len(n.items)
		if be != nil {
			// Batched leaf sweep: the current k-th-best distance is the
			// abandonment bound (evalInto disables abandonment while the
			// heap is still filling).
			stats.BatchedEvals += len(n.items)
			stats.AbandonedEvals += be.evalInto(n.items, bound(), h)
		} else {
			for _, id := range n.items {
				h.offer(Result{ID: id, Dist: m.Eval(t.store.Vector(id))})
			}
		}
		if ext != nil {
			ext.Tighten(h.bound())
		}
		visited = append(visited, n)
	}

	for _, n := range seed {
		if err := ctx.Err(); err != nil {
			return h.sorted(), stats, visited, err
		}
		if n.isLeaf() && !seen[n] {
			seen[n] = true
			stats.CacheSeedLeaves++
			evalLeaf(n)
		}
	}

	q := &nodeQueue{{node: t.root, bound: m.LowerBound(t.root.lo, t.root.hi)}}
	heap.Init(q)
	for q.Len() > 0 {
		faultinject.Fire(faultinject.KNNPop)
		if err := ctx.Err(); err != nil {
			return h.sorted(), stats, visited, err
		}
		e := heap.Pop(q).(nodeEntry)
		if e.bound > bound() {
			break // every remaining node is at least this far
		}
		stats.NodesVisited++
		n := e.node
		if n.isLeaf() {
			if !seen[n] {
				seen[n] = true
				evalLeaf(n)
			}
			continue
		}
		for _, child := range []*treeNode{n.left, n.right} {
			if child == nil {
				continue
			}
			b := m.LowerBound(child.lo, child.hi)
			if b <= bound() {
				heap.Push(q, nodeEntry{node: child, bound: b})
			}
		}
	}
	return h.sorted(), stats, visited, nil
}

// RefinementSearcher wraps a HybridTree with the cross-iteration leaf
// cache used by multipoint query refinement: each KNN seeds its pruning
// bound from the leaves the previous iteration visited (refined queries
// move only slightly, so cached leaves contain most of the new answer).
// The cache makes later feedback iterations markedly cheaper — the cost
// shape of the paper's Fig. 7.
type RefinementSearcher struct {
	tree   *HybridTree
	cached []*treeNode
	epoch  uint64 // tree epoch the cache was taken at
}

// NewRefinementSearcher builds a searcher with an empty cache.
func NewRefinementSearcher(t *HybridTree) *RefinementSearcher {
	return &RefinementSearcher{tree: t}
}

// KNN answers the query, seeding from and then replacing the leaf cache.
// A cache taken at an older tree epoch (i.e. before an Insert, which may
// have re-split cached leaves) is discarded rather than reused.
func (r *RefinementSearcher) KNN(m distance.Metric, k int) ([]Result, SearchStats) {
	res, stats, _ := r.KNNContext(context.Background(), m, k)
	return res, stats
}

// KNNContext is KNN with cooperative cancellation (see
// HybridTree.KNNContext). A completed search replaces the leaf cache
// with exactly the leaves it visited; an interrupted search instead
// unions the leaves it reached with the same-epoch cache it was seeded
// from — the unreached cached leaves are still valid seeds, and
// discarding them would make the retry start colder than the previous
// completed search.
func (r *RefinementSearcher) KNNContext(ctx context.Context, m distance.Metric, k int) ([]Result, SearchStats, error) {
	return r.KNNSharedContext(ctx, m, k, nil)
}

// KNNSharedContext is KNNContext with an externally owned pruning bound
// (see HybridTree.KNNSharedContext): per-shard refinement searchers pass
// one *SharedBound per scatter-gather query so the shards prune against
// the global k-th best while each keeps its own cross-iteration leaf
// cache. A nil ext behaves exactly like KNNContext.
func (r *RefinementSearcher) KNNSharedContext(ctx context.Context, m distance.Metric, k int, ext *SharedBound) ([]Result, SearchStats, error) {
	return r.KNNSharedTuned(ctx, m, k, ext, SearchTuning{})
}

// KNNSharedTuned is KNNSharedContext executed through a per-query
// tuning view of the underlying tree (see HybridTree.WithTuning): the
// cost-based planner picks worker count and batch size per query while
// the cross-iteration leaf cache — which belongs to the searcher, not
// the view — keeps working across differently tuned iterations.
func (r *RefinementSearcher) KNNSharedTuned(ctx context.Context, m distance.Metric, k int, ext *SharedBound, tu SearchTuning) ([]Result, SearchStats, error) {
	if r.epoch != r.tree.epoch {
		r.cached = nil
	}
	t := r.tree
	if tu != (SearchTuning{}) {
		t = t.WithTuning(tu)
	}
	res, stats, visited, err := t.knnSeeded(ctx, m, k, r.cached, ext)
	if err != nil {
		r.cached = unionLeaves(visited, r.cached)
	} else {
		r.cached = visited
	}
	r.epoch = r.tree.epoch
	return res, stats, err
}

// unionLeaves returns visited plus every leaf of cached not already in
// visited, preserving visited's order (the warmest seeds first).
func unionLeaves(visited, cached []*treeNode) []*treeNode {
	if len(cached) == 0 {
		return visited
	}
	seen := make(map[*treeNode]bool, len(visited))
	for _, n := range visited {
		seen[n] = true
	}
	out := visited
	for _, n := range cached {
		if !seen[n] {
			out = append(out, n)
		}
	}
	return out
}

// Reset drops the cache (for a fresh query session).
func (r *RefinementSearcher) Reset() { r.cached = nil }

// CachedLeaves reports the current cache size (for tests/metrics).
func (r *RefinementSearcher) CachedLeaves() int { return len(r.cached) }
