// Package index provides the k-nearest-neighbor machinery under the
// retrieval system: a feature-vector store, a linear-scan reference
// searcher, a hybrid-tree-style hierarchical index with best-first search
// over arbitrary lower-boundable distance functions, and the
// cross-iteration node caching that the multipoint refinement approach
// uses to cut per-iteration execution cost (paper Fig. 7, citing
// Chakrabarti, Porkaew & Mehrotra's query-refinement technique).
package index

import (
	"fmt"
	"math"

	"repro/internal/distance"
	"repro/internal/linalg"
)

// Store is an append-only in-memory feature-vector database. Vector i
// belongs to image/object i. All vectors live in one contiguous
// []float64 block, so leaf scans walk memory sequentially instead of
// chasing per-vector pointers. It does no internal locking — the public
// Database layer serializes Append against readers.
type Store struct {
	data []float64 // n*dim components, vector i at [i*dim, (i+1)*dim)
	dim  int
	n    int
}

// NewStore copies the given vectors into one contiguous block. All
// vectors must share one dimensionality and be finite (NaN or ±Inf
// components would silently corrupt every distance comparison). The
// input slice is not retained.
func NewStore(vecs []linalg.Vector) (*Store, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("index: empty store")
	}
	dim := vecs[0].Dim()
	for i, v := range vecs {
		if v.Dim() != dim {
			return nil, fmt.Errorf("index: vector %d has dim %d, want %d", i, v.Dim(), dim)
		}
		for d, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("index: vector %d component %d is not finite", i, d)
			}
		}
	}
	data := make([]float64, 0, len(vecs)*dim)
	for _, v := range vecs {
		data = append(data, v...)
	}
	return &Store{data: data, dim: dim, n: len(vecs)}, nil
}

// NewStoreFlat wraps an already-contiguous component block (row-major,
// one vector per dim components) without copying. len(data) must be a
// positive multiple of dim and every component finite. The slice is
// retained.
func NewStoreFlat(data []float64, dim int) (*Store, error) {
	if dim <= 0 {
		return nil, fmt.Errorf("index: non-positive dim %d", dim)
	}
	if len(data) == 0 || len(data)%dim != 0 {
		return nil, fmt.Errorf("index: flat block of %d components is not a positive multiple of dim %d", len(data), dim)
	}
	for i, x := range data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return nil, fmt.Errorf("index: vector %d component %d is not finite", i/dim, i%dim)
		}
	}
	return &Store{data: data, dim: dim, n: len(data) / dim}, nil
}

// Len returns the number of vectors.
func (s *Store) Len() int { return s.n }

// Flat returns the live contiguous component block (row-major, vector i
// at [i*dim, (i+1)*dim)), capacity-capped so an append through it cannot
// clobber the store. Treat as read-only; callers that need a stable copy
// (e.g. snapshotting concurrent with Append) must copy under the
// database's lock.
func (s *Store) Flat() []float64 {
	n := s.n * s.dim
	return s.data[:n:n]
}

// Dim returns the feature dimensionality.
func (s *Store) Dim() int { return s.dim }

// Vector returns vector id as a subslice of the contiguous block
// (aliased, treat as read-only). The full slice expression caps the
// subslice so an append through it cannot clobber the next vector.
func (s *Store) Vector(id int) linalg.Vector {
	off := id * s.dim
	return linalg.Vector(s.data[off : off+s.dim : off+s.dim])
}

// Result is one k-NN answer: an object id and its query distance.
type Result struct {
	ID   int
	Dist float64
}

// SearchStats records the work a search performed, the cost measures the
// execution-cost experiments report. For a parallel search the counts
// cover all workers; LeavesVisited and DistanceEvals can exceed the
// sequential traversal's because workers prune against a bound that
// tightens asynchronously.
type SearchStats struct {
	NodesVisited  int // internal + leaf nodes expanded
	LeavesVisited int
	DistanceEvals int
	// LeavesTotal is the number of leaves in the index at search time;
	// LeavesTotal - LeavesVisited is the pruned count (see PruneRatio).
	// 0 for searchers without a leaf structure (LinearScan).
	LeavesTotal int
	// CacheSeedLeaves counts leaves evaluated from the refinement
	// searcher's cross-iteration cache before the traversal started —
	// the cache hits of the multipoint refinement approach.
	CacheSeedLeaves int
	// Workers is the resolved leaf-evaluation worker count the search
	// ran with (1 = sequential path).
	Workers int
	// ParallelBatches counts leaf batches dispatched to the worker pool
	// (0 on the sequential path).
	ParallelBatches int
	// BatchedEvals counts the distance evaluations that went through the
	// bound-aware batch kernels — a subset of DistanceEvals; 0 when the
	// metric does not implement distance.BatchMetric.
	BatchedEvals int
	// AbandonedEvals counts batched evaluations the kernel cut short
	// because the partial accumulation provably exceeded the pruning
	// bound. Each still counts in DistanceEvals (it is work the search
	// asked for), so AbandonedEvals/BatchedEvals is the fraction of
	// candidate evaluations the kernels did not pay in full.
	AbandonedEvals int
	// GraphHops counts ANN graph nodes expanded during navigation
	// (greedy descent + layer-0 beam). 0 on the exact backends.
	GraphHops int
	// RefineEvals counts full-precision exact re-evaluations of ANN
	// candidates — a subset of DistanceEvals. 0 on the exact backends.
	RefineEvals int
	// PlanRoute is the execution route the cost-based planner chose for
	// this search ("tree", "vafile", "ann"); empty when no planner ran
	// and the statically configured backend answered.
	PlanRoute string
	// PlanAdaptive reports whether the plan came from warm cost models;
	// false means the planner fell back to the static configuration
	// (cold windows) or no planner ran at all.
	PlanAdaptive bool
	// PlanPredictedSeconds is the planner's pre-execution latency
	// estimate for this search (0 when no warm model predicted it).
	PlanPredictedSeconds float64
}

// Add accumulates other into s: work counters sum; Workers keeps the
// maximum (it describes a configuration, not work done).
func (s *SearchStats) Add(other SearchStats) {
	s.NodesVisited += other.NodesVisited
	s.LeavesVisited += other.LeavesVisited
	s.DistanceEvals += other.DistanceEvals
	s.LeavesTotal += other.LeavesTotal
	s.CacheSeedLeaves += other.CacheSeedLeaves
	s.ParallelBatches += other.ParallelBatches
	s.BatchedEvals += other.BatchedEvals
	s.AbandonedEvals += other.AbandonedEvals
	s.GraphHops += other.GraphHops
	s.RefineEvals += other.RefineEvals
	if other.Workers > s.Workers {
		s.Workers = other.Workers
	}
	// Plan metadata: the first route observed speaks for the aggregate
	// (per-shard plans are independent; the merged view keeps shard 0's
	// route), predictions sum, and adaptivity is sticky — any adaptively
	// planned leg marks the whole search adaptive.
	if s.PlanRoute == "" {
		s.PlanRoute = other.PlanRoute
	}
	s.PlanAdaptive = s.PlanAdaptive || other.PlanAdaptive
	s.PlanPredictedSeconds += other.PlanPredictedSeconds
}

// PruneRatio is the fraction of index leaves the search never touched:
// 1 - LeavesVisited/LeavesTotal, or 0 when no leaf structure exists.
// Accumulated stats yield the visit-weighted aggregate ratio.
func (s SearchStats) PruneRatio() float64 {
	if s.LeavesTotal <= 0 || s.LeavesVisited >= s.LeavesTotal {
		return 0
	}
	return 1 - float64(s.LeavesVisited)/float64(s.LeavesTotal)
}

// Searcher answers k-NN queries for a metric.
type Searcher interface {
	// KNN returns the k objects with the smallest metric distance, in
	// ascending distance order, along with search-work statistics.
	KNN(m distance.Metric, k int) ([]Result, SearchStats)
}

// LinearScan is the exhaustive reference searcher.
type LinearScan struct {
	store *Store
}

// NewLinearScan builds a scanner over the store.
func NewLinearScan(s *Store) *LinearScan { return &LinearScan{store: s} }

// KNN scans every vector. k <= 0 yields no results.
func (l *LinearScan) KNN(m distance.Metric, k int) ([]Result, SearchStats) {
	if k <= 0 {
		return nil, SearchStats{}
	}
	stats := SearchStats{DistanceEvals: l.store.Len(), Workers: 1}
	h := newResultHeap(k)
	for id := 0; id < l.store.Len(); id++ {
		h.offer(Result{ID: id, Dist: m.Eval(l.store.Vector(id))})
	}
	return h.sorted(), stats
}

const inf = 1e308
