// Package index provides the k-nearest-neighbor machinery under the
// retrieval system: a feature-vector store, a linear-scan reference
// searcher, a hybrid-tree-style hierarchical index with best-first search
// over arbitrary lower-boundable distance functions, and the
// cross-iteration node caching that the multipoint refinement approach
// uses to cut per-iteration execution cost (paper Fig. 7, citing
// Chakrabarti, Porkaew & Mehrotra's query-refinement technique).
package index

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/distance"
	"repro/internal/linalg"
)

// Store is an append-only in-memory feature-vector database. Vector i
// belongs to image/object i. It does no internal locking — the public
// Database layer serializes Append against readers.
type Store struct {
	vecs []linalg.Vector
	dim  int
}

// NewStore wraps the given vectors. All vectors must share one
// dimensionality and be finite (NaN or ±Inf components would silently
// corrupt every distance comparison); the slice is retained (not copied).
func NewStore(vecs []linalg.Vector) (*Store, error) {
	if len(vecs) == 0 {
		return nil, fmt.Errorf("index: empty store")
	}
	dim := vecs[0].Dim()
	for i, v := range vecs {
		if v.Dim() != dim {
			return nil, fmt.Errorf("index: vector %d has dim %d, want %d", i, v.Dim(), dim)
		}
		for d, x := range v {
			if math.IsNaN(x) || math.IsInf(x, 0) {
				return nil, fmt.Errorf("index: vector %d component %d is not finite", i, d)
			}
		}
	}
	return &Store{vecs: vecs, dim: dim}, nil
}

// Len returns the number of vectors.
func (s *Store) Len() int { return len(s.vecs) }

// Dim returns the feature dimensionality.
func (s *Store) Dim() int { return s.dim }

// Vector returns vector id (aliased, treat as read-only).
func (s *Store) Vector(id int) linalg.Vector { return s.vecs[id] }

// Result is one k-NN answer: an object id and its query distance.
type Result struct {
	ID   int
	Dist float64
}

// SearchStats records the work a search performed, the cost measures the
// execution-cost experiments report.
type SearchStats struct {
	NodesVisited  int // internal + leaf nodes expanded
	LeavesVisited int
	DistanceEvals int
}

// Add accumulates other into s.
func (s *SearchStats) Add(other SearchStats) {
	s.NodesVisited += other.NodesVisited
	s.LeavesVisited += other.LeavesVisited
	s.DistanceEvals += other.DistanceEvals
}

// Searcher answers k-NN queries for a metric.
type Searcher interface {
	// KNN returns the k objects with the smallest metric distance, in
	// ascending distance order, along with search-work statistics.
	KNN(m distance.Metric, k int) ([]Result, SearchStats)
}

// LinearScan is the exhaustive reference searcher.
type LinearScan struct {
	store *Store
}

// NewLinearScan builds a scanner over the store.
func NewLinearScan(s *Store) *LinearScan { return &LinearScan{store: s} }

// KNN scans every vector. k <= 0 yields no results.
func (l *LinearScan) KNN(m distance.Metric, k int) ([]Result, SearchStats) {
	if k <= 0 {
		return nil, SearchStats{}
	}
	stats := SearchStats{DistanceEvals: l.store.Len()}
	h := newResultHeap(k)
	for id, v := range l.store.vecs {
		h.offer(Result{ID: id, Dist: m.Eval(v)})
	}
	return h.sorted(), stats
}

// resultHeap is a bounded max-heap keeping the k smallest distances.
type resultHeap struct {
	k     int
	items []Result
}

func newResultHeap(k int) *resultHeap {
	return &resultHeap{k: k, items: make([]Result, 0, k+1)}
}

// bound returns the current kth-best distance, or +Inf when fewer than k
// results are held. A non-positive k admits nothing: the bound is -Inf.
func (h *resultHeap) bound() float64 {
	if h.k <= 0 {
		return -inf
	}
	if len(h.items) < h.k {
		return inf
	}
	return h.items[0].Dist
}

func (h *resultHeap) offer(r Result) {
	if h.k <= 0 {
		return
	}
	if len(h.items) < h.k {
		h.items = append(h.items, r)
		h.up(len(h.items) - 1)
		return
	}
	if r.Dist >= h.items[0].Dist {
		return
	}
	h.items[0] = r
	h.down(0)
}

func (h *resultHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].Dist >= h.items[i].Dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *resultHeap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		largest := i
		if l < n && h.items[l].Dist > h.items[largest].Dist {
			largest = l
		}
		if r < n && h.items[r].Dist > h.items[largest].Dist {
			largest = r
		}
		if largest == i {
			return
		}
		h.items[i], h.items[largest] = h.items[largest], h.items[i]
		i = largest
	}
}

func (h *resultHeap) sorted() []Result {
	out := make([]Result, len(h.items))
	copy(out, h.items)
	sort.Slice(out, func(i, j int) bool {
		if out[i].Dist != out[j].Dist {
			return out[i].Dist < out[j].Dist
		}
		return out[i].ID < out[j].ID
	})
	return out
}

const inf = 1e308
