package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/linalg"
)

func randStore(rng *rand.Rand, n, dim int) *Store {
	vecs := make([]linalg.Vector, n)
	for i := range vecs {
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = rng.NormFloat64() * 3
		}
		vecs[i] = v
	}
	s, err := NewStore(vecs)
	if err != nil {
		panic(err)
	}
	return s
}

func TestNewStoreValidation(t *testing.T) {
	if _, err := NewStore(nil); err == nil {
		t.Error("empty store must error")
	}
	if _, err := NewStore([]linalg.Vector{{1, 2}, {1}}); err == nil {
		t.Error("ragged store must error")
	}
	s, err := NewStore([]linalg.Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	if s.Len() != 2 || s.Dim() != 2 {
		t.Errorf("Len=%d Dim=%d", s.Len(), s.Dim())
	}
	if !s.Vector(1).Equal(linalg.Vector{3, 4}, 0) {
		t.Error("Vector(1) mismatch")
	}
}

func TestLinearScanKNN(t *testing.T) {
	s, _ := NewStore([]linalg.Vector{{0, 0}, {1, 0}, {5, 5}, {0.5, 0}})
	res, stats := NewLinearScan(s).KNN(&distance.Euclidean{Center: linalg.Vector{0, 0}}, 2)
	if len(res) != 2 || res[0].ID != 0 || res[1].ID != 3 {
		t.Errorf("res = %v", res)
	}
	if stats.DistanceEvals != 4 {
		t.Errorf("evals = %d", stats.DistanceEvals)
	}
}

func TestResultHeapKeepsKSmallest(t *testing.T) {
	h := newResultHeap(3)
	for i, d := range []float64{9, 1, 8, 2, 7, 3} {
		h.offer(Result{ID: i, Dist: d})
	}
	out := h.sorted()
	if len(out) != 3 || out[0].Dist != 1 || out[1].Dist != 2 || out[2].Dist != 3 {
		t.Errorf("out = %v", out)
	}
}

func TestHybridTreeMatchesLinearScan(t *testing.T) {
	rng := rand.New(rand.NewSource(60))
	for trial := 0; trial < 10; trial++ {
		dim := 2 + rng.Intn(5)
		s := randStore(rng, 500+rng.Intn(500), dim)
		tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 512})
		scan := NewLinearScan(s)

		center := make(linalg.Vector, dim)
		for d := range center {
			center[d] = rng.NormFloat64() * 3
		}
		metrics := []distance.Metric{
			&distance.Euclidean{Center: center},
			distance.NewQuadraticDiag(center, onesInv(rng, dim)),
		}
		for mi, m := range metrics {
			want, _ := scan.KNN(m, 10)
			got, stats := tree.KNN(m, 10)
			if !sameResults(got, want) {
				t.Fatalf("trial %d metric %d: tree %v != scan %v", trial, mi, got, want)
			}
			if stats.DistanceEvals > s.Len() {
				t.Fatalf("tree evaluated more than the whole store")
			}
		}
	}
}

func onesInv(rng *rand.Rand, dim int) linalg.Vector {
	v := make(linalg.Vector, dim)
	for i := range v {
		v[i] = 0.2 + rng.Float64()
	}
	return v
}

func sameResults(a, b []Result) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		// Allow ties to permute IDs but distances must agree.
		if a[i].Dist != b[i].Dist {
			return false
		}
	}
	return true
}

func TestHybridTreeDisjunctiveMetric(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	s := randStore(rng, 2000, 3)
	tree := NewHybridTree(s, TreeOptions{})
	scan := NewLinearScan(s)

	q1 := distance.NewQuadraticDiag(linalg.Vector{-3, -3, -3}, linalg.Vector{1, 1, 1})
	q2 := distance.NewQuadraticDiag(linalg.Vector{3, 3, 3}, linalg.Vector{1, 1, 1})
	m := distance.NewDisjunctive([]*distance.Quadratic{q1, q2}, []float64{1, 2})

	want, _ := scan.KNN(m, 25)
	got, stats := tree.KNN(m, 25)
	if !sameResults(got, want) {
		t.Fatalf("disjunctive kNN mismatch:\n tree %v\n scan %v", got[:5], want[:5])
	}
	if stats.DistanceEvals >= s.Len() {
		t.Errorf("no pruning achieved: %d evals of %d", stats.DistanceEvals, s.Len())
	}
}

func TestHybridTreePruning(t *testing.T) {
	rng := rand.New(rand.NewSource(62))
	s := randStore(rng, 20000, 3)
	// Parallelism 1: the eval-count assertion is about the sequential
	// traversal's pruning; the parallel path's counts are load-dependent.
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
	m := &distance.Euclidean{Center: linalg.Vector{0, 0, 0}}
	_, stats := tree.KNN(m, 10)
	if stats.DistanceEvals > s.Len()/4 {
		t.Errorf("weak pruning: %d evals of %d", stats.DistanceEvals, s.Len())
	}
}

func TestHybridTreeDuplicateVectors(t *testing.T) {
	// All-identical vectors exercise the degenerate split path.
	vecs := make([]linalg.Vector, 100)
	for i := range vecs {
		vecs[i] = linalg.Vector{1, 1}
	}
	s, _ := NewStore(vecs)
	tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 128})
	res, _ := tree.KNN(&distance.Euclidean{Center: linalg.Vector{1, 1}}, 5)
	if len(res) != 5 {
		t.Fatalf("got %d results", len(res))
	}
	for _, r := range res {
		if r.Dist != 0 {
			t.Errorf("dist = %v", r.Dist)
		}
	}
}

func TestHybridTreeKLargerThanStore(t *testing.T) {
	rng := rand.New(rand.NewSource(63))
	s := randStore(rng, 7, 2)
	tree := NewHybridTree(s, TreeOptions{})
	res, _ := tree.KNN(&distance.Euclidean{Center: linalg.Vector{0, 0}}, 100)
	if len(res) != 7 {
		t.Errorf("got %d results, want all 7", len(res))
	}
}

func TestRefinementSearcherCorrectAndCheaper(t *testing.T) {
	rng := rand.New(rand.NewSource(64))
	s := randStore(rng, 30000, 3)
	// Parallelism 1: the cached-vs-cold node-count comparison assumes the
	// deterministic sequential traversal.
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
	ref := NewRefinementSearcher(tree)
	scan := NewLinearScan(s)

	// Iteration 1: fresh query.
	m1 := &distance.Euclidean{Center: linalg.Vector{1, 1, 1}}
	res1, stats1 := ref.KNN(m1, 100)
	want1, _ := scan.KNN(m1, 100)
	if !sameResults(res1, want1) {
		t.Fatal("iteration 1 results wrong")
	}
	if ref.CachedLeaves() == 0 {
		t.Fatal("no leaves cached")
	}

	// Iteration 2: slightly moved query (as refinement produces).
	m2 := &distance.Euclidean{Center: linalg.Vector{1.05, 0.95, 1.02}}
	res2, stats2 := ref.KNN(m2, 100)
	want2, _ := scan.KNN(m2, 100)
	if !sameResults(res2, want2) {
		t.Fatal("iteration 2 results wrong")
	}
	// The cached bound must reduce node expansions vs a cold search.
	_, cold := tree.KNN(m2, 100)
	if stats2.NodesVisited > cold.NodesVisited {
		t.Errorf("cached search visited %d nodes, cold %d", stats2.NodesVisited, cold.NodesVisited)
	}
	_ = stats1
	ref.Reset()
	if ref.CachedLeaves() != 0 {
		t.Error("Reset did not clear cache")
	}
}

func TestTreeShape(t *testing.T) {
	rng := rand.New(rand.NewSource(65))
	s := randStore(rng, 1000, 4)
	tree := NewHybridTree(s, TreeOptions{NodeSizeBytes: 4096})
	// 4096/(8*4) = 128 leaf capacity.
	if tree.LeafCapacity() != 128 {
		t.Errorf("LeafCapacity = %d", tree.LeafCapacity())
	}
	if h := tree.Height(); h < 2 || h > 12 {
		t.Errorf("Height = %d", h)
	}
}

func TestNewStoreRejectsNonFinite(t *testing.T) {
	if _, err := NewStore([]linalg.Vector{{1, math.NaN()}}); err == nil {
		t.Error("NaN component must be rejected")
	}
	if _, err := NewStore([]linalg.Vector{{1, math.Inf(1)}}); err == nil {
		t.Error("Inf component must be rejected")
	}
}
