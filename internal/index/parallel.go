package index

import (
	"container/heap"
	"context"
	"math"
	"runtime"
	"sync"
	"sync/atomic"

	"repro/internal/distance"
	"repro/internal/faultinject"
)

const (
	// parallelMinItems is the smallest store for which the parallel leaf
	// stage engages; below it the whole search fits in cache and worker
	// hand-off costs more than the evaluations it distributes.
	parallelMinItems = 8192
	// parallelBatchItems is the target number of vector evaluations per
	// work unit sent to the pool — large enough to amortize channel
	// hand-off, small enough that the shared bound tightens frequently.
	parallelBatchItems = 512
)

// resolveParallelism maps the TreeOptions knob to a worker count:
// 0 means GOMAXPROCS, anything below 1 is clamped to 1 (sequential).
func resolveParallelism(p int) int {
	if p == 0 {
		p = runtime.GOMAXPROCS(0)
	}
	if p < 1 {
		p = 1
	}
	return p
}

// resolveParallelMinItems maps the engagement-threshold knob to an item
// count: 0 means the default, negative means no threshold (engage at any
// store size).
func resolveParallelMinItems(n int) int {
	if n == 0 {
		return parallelMinItems
	}
	if n < 0 {
		return 0
	}
	return n
}

// SharedBound is the k-th-best distance published across search workers
// — and, since the sharded scatter-gather tier, across whole per-shard
// searches — stored as float64 bits in an atomic. Distances are
// non-negative, and for non-negative floats the bit patterns order like
// the values, so a compare-and-swap min needs no float reinterpretation
// tricks beyond math.Float64bits. The bound only ever decreases; readers
// may see a slightly stale (larger) value, which makes pruning
// conservative — never wrong.
type SharedBound struct {
	bits atomic.Uint64
}

// NewSharedBound returns a bound initialized to +Inf (nothing pruned).
func NewSharedBound() *SharedBound {
	b := &SharedBound{}
	b.bits.Store(math.Float64bits(math.Inf(1)))
	return b
}

// Load returns the current published bound.
func (b *SharedBound) Load() float64 { return math.Float64frombits(b.bits.Load()) }

// Tighten lowers the published bound to v if v is smaller.
func (b *SharedBound) Tighten(v float64) {
	nb := math.Float64bits(v)
	for {
		old := b.bits.Load()
		if nb >= old || b.bits.CompareAndSwap(old, nb) {
			return
		}
	}
}

// knnSeededParallel is the parallel variant of knnSeeded: the best-first
// traversal stays on the calling goroutine, but leaf evaluation fans out
// in batches to a bounded worker pool. Each worker keeps a private
// result heap and publishes its k-th-best distance into a shared atomic
// bound; the traversal prunes against that bound. Because every worker's
// local k-th best is an upper bound of the union's k-th best, pruning
// against the shared minimum can only be looser than the sequential
// bound — the search may evaluate extra leaves but never skips a needed
// one, so the merged result set is exactly the sequential one (the
// result heap's (Dist, ID) order makes even tie sets identical).
//
// To give the pool a finite bound to prune with, the traversal evaluates
// leaves inline until its own heap holds k results (the same leaves a
// sequential search would start with), then switches to dispatching.
//
// A non-nil ext is used as the shared bound instead of a fresh one, so
// concurrent searches over sibling shards tighten (and prune against)
// one global k-th-best. Every value any participant publishes is an
// upper bound of the union's k-th best, so the same conservativeness
// argument applies across shards and the merged result set stays
// bit-identical to one unsharded search.
func (t *HybridTree) knnSeededParallel(ctx context.Context, m distance.Metric, k int, seed []*treeNode, ext *SharedBound) ([]Result, SearchStats, []*treeNode, error) {
	var stats SearchStats
	stats.LeavesTotal = t.numLeaves
	workers := t.parallelism
	stats.Workers = workers
	bound := ext
	if bound == nil {
		bound = NewSharedBound()
	}
	batchItems := t.batchItems
	if batchItems <= 0 {
		batchItems = parallelBatchItems
	}

	ch := make(chan []*treeNode, workers)
	heaps := make([]*resultHeap, workers)
	evals := make([]int, workers)
	abandons := make([]int, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		h := newResultHeap(k)
		heaps[w] = h
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			be := newBatchEvaluator(m, t.store) // scratch buffers are per-goroutine
			n, ab := 0, 0
			for leaves := range ch {
				for _, leaf := range leaves {
					n += len(leaf.items)
					if be != nil {
						// Abandon against the tighter of the worker's own
						// k-th best and the shared published bound: both are
						// upper bounds of the merged k-th best, so a
						// candidate certified past either can never reach
						// the final result set.
						eff := h.bound()
						if sb := bound.Load(); sb < eff {
							eff = sb
						}
						ab += be.evalInto(leaf.items, eff, h)
					} else {
						for _, id := range leaf.items {
							h.offer(Result{ID: id, Dist: m.Eval(t.store.Vector(id))})
						}
					}
				}
				bound.Tighten(h.bound())
			}
			evals[w] = n
			abandons[w] = ab
		}(w)
	}

	local := newResultHeap(k) // the traversal's own heap (warm-up leaves)
	localBE := newBatchEvaluator(m, t.store)
	seen := map[*treeNode]bool{}
	var visited []*treeNode
	var pending []*treeNode
	var pendingItems int
	flush := func() {
		if len(pending) > 0 {
			ch <- pending
			pending = nil
			pendingItems = 0
			stats.ParallelBatches++
		}
	}
	evalLeaf := func(n *treeNode) {
		stats.LeavesVisited++
		visited = append(visited, n)
		if len(local.items) < k {
			// Warm-up: evaluate inline so a finite bound exists before
			// any batch reaches the pool.
			stats.DistanceEvals += len(n.items)
			if localBE != nil {
				stats.BatchedEvals += len(n.items)
				stats.AbandonedEvals += localBE.evalInto(n.items, local.bound(), local)
			} else {
				for _, id := range n.items {
					local.offer(Result{ID: id, Dist: m.Eval(t.store.Vector(id))})
				}
			}
			bound.Tighten(local.bound())
			return
		}
		pending = append(pending, n)
		pendingItems += len(n.items)
		if pendingItems >= batchItems {
			flush()
		}
	}
	// finish drains the pipeline and merges every worker's heap into the
	// traversal's; it must run exactly once, on every return path.
	finish := func() []Result {
		flush()
		close(ch)
		wg.Wait()
		for w, hw := range heaps {
			local.merge(hw)
			stats.DistanceEvals += evals[w]
			if localBE != nil {
				stats.BatchedEvals += evals[w]
			}
			stats.AbandonedEvals += abandons[w]
		}
		return local.sorted()
	}

	for _, n := range seed {
		if err := ctx.Err(); err != nil {
			return finish(), stats, visited, err
		}
		if n.isLeaf() && !seen[n] {
			seen[n] = true
			stats.CacheSeedLeaves++
			evalLeaf(n)
		}
	}

	q := &nodeQueue{{node: t.root, bound: m.LowerBound(t.root.lo, t.root.hi)}}
	heap.Init(q)
	for q.Len() > 0 {
		faultinject.Fire(faultinject.KNNPop)
		if err := ctx.Err(); err != nil {
			return finish(), stats, visited, err
		}
		e := heap.Pop(q).(nodeEntry)
		if e.bound > bound.Load() {
			break // the bound only tightens: every remaining node stays pruned
		}
		stats.NodesVisited++
		n := e.node
		if n.isLeaf() {
			if !seen[n] {
				seen[n] = true
				evalLeaf(n)
			}
			continue
		}
		for _, child := range []*treeNode{n.left, n.right} {
			if child == nil {
				continue
			}
			if b := m.LowerBound(child.lo, child.hi); b <= bound.Load() {
				heap.Push(q, nodeEntry{node: child, bound: b})
			}
		}
	}
	return finish(), stats, visited, nil
}
