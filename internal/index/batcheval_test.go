package index

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/distance"
	"repro/internal/linalg"
)

// scalarOnly hides a metric's BatchMetric implementation so a search is
// forced onto the scalar evaluation path — the reference the batch path
// must match bit-for-bit.
type scalarOnly struct {
	distance.Metric
}

// testMetrics builds one metric per family over random data at dim.
func testMetrics(rng *rand.Rand, dim int) map[string]distance.Metric {
	center := make(linalg.Vector, dim)
	center2 := make(linalg.Vector, dim)
	invDiag := make(linalg.Vector, dim)
	for i := 0; i < dim; i++ {
		center[i] = rng.NormFloat64() * 2
		center2[i] = rng.NormFloat64() * 2
		invDiag[i] = 0.2 + rng.Float64()
	}
	spd := func() *linalg.Matrix {
		a := linalg.NewMatrix(dim, dim)
		for i := range a.Data {
			a.Data[i] = rng.NormFloat64()
		}
		m := a.Mul(a.T())
		for i := 0; i < dim; i++ {
			m.Data[i*dim+i] += 0.5
		}
		return m
	}
	full := distance.NewQuadraticFull(center, spd())
	return map[string]distance.Metric{
		"euclidean": &distance.Euclidean{Center: center},
		"quad-diag": distance.NewQuadraticDiag(center, invDiag),
		"quad-full": full,
		"disjunctive": distance.NewDisjunctive(
			[]*distance.Quadratic{full, distance.NewQuadraticFull(center2, spd())},
			[]float64{2, 1},
		),
	}
}

func assertSameKNN(t *testing.T, label string, want, got []Result) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d results vs %d scalar", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: result %d batch %+v != scalar %+v", label, i, got[i], want[i])
		}
	}
}

// The batched leaf sweep must return bit-identical k-NN results to the
// scalar path on every substrate — sequential tree, parallel tree, and
// VA-file — across metric families and dimensions.
func TestBatchKNNMatchesScalarAllSubstrates(t *testing.T) {
	rng := rand.New(rand.NewSource(140))
	for _, dim := range []int{4, 32} {
		n := 2000
		s := randStore(rng, n, dim)
		tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
		par := forceParallel(tree, 4)
		va := NewVAFile(s, VAFileOptions{})
		for name, m := range testMetrics(rng, dim) {
			scalar := scalarOnly{m}
			for _, k := range []int{1, 10, 64} {
				want, wstats := tree.KNN(scalar, k)
				if wstats.BatchedEvals != 0 || wstats.AbandonedEvals != 0 {
					t.Fatalf("%s dim=%d: scalar-only search reported batch work %+v", name, dim, wstats)
				}

				got, stats := tree.KNN(m, k)
				assertSameKNN(t, name+"/seq", want, got)
				if stats.BatchedEvals != stats.DistanceEvals {
					t.Fatalf("%s dim=%d seq: BatchedEvals %d != DistanceEvals %d",
						name, dim, stats.BatchedEvals, stats.DistanceEvals)
				}

				got, stats = par.KNN(m, k)
				assertSameKNN(t, name+"/par", want, got)
				if stats.BatchedEvals != stats.DistanceEvals {
					t.Fatalf("%s dim=%d par: BatchedEvals %d != DistanceEvals %d",
						name, dim, stats.BatchedEvals, stats.DistanceEvals)
				}

				wantVA, _ := va.KNN(scalar, k)
				gotVA, vstats := va.KNN(m, k)
				assertSameKNN(t, name+"/va", wantVA, gotVA)
				if vstats.BatchedEvals == 0 {
					t.Fatalf("%s dim=%d va: batch path did not engage", name, dim)
				}
			}
		}
	}
}

// Early abandonment must actually trigger on realistic searches (the
// perf win exists) and every abandoned candidate still counts as a
// distance evaluation.
func TestBatchKNNAbandonsAndCounts(t *testing.T) {
	rng := rand.New(rand.NewSource(141))
	const n, dim = 4000, 16
	s := randStore(rng, n, dim)
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
	m := testMetrics(rng, dim)["quad-full"]
	_, stats := tree.KNN(m, 5)
	if stats.AbandonedEvals == 0 {
		t.Fatal("expected some abandoned evaluations on a full-scheme search")
	}
	if stats.AbandonedEvals > stats.BatchedEvals || stats.BatchedEvals > stats.DistanceEvals {
		t.Fatalf("counter ordering violated: %+v", stats)
	}
}

// VA-file Range must keep the exact in-range set when the radius doubles
// as the abandonment bound.
func TestBatchRangeMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(142))
	const n, dim = 1500, 8
	s := randStore(rng, n, dim)
	va := NewVAFile(s, VAFileOptions{})
	for name, m := range testMetrics(rng, dim) {
		// Radius around the 1% quantile of distances: small enough to
		// abandon most refined candidates.
		d0, _ := va.KNN(scalarOnly{m}, n/100+1)
		radius := d0[len(d0)-1].Dist
		want, _ := va.Range(scalarOnly{m}, radius)
		got, stats := va.Range(m, radius)
		assertSameKNN(t, name+"/range", want, got)
		if stats.BatchedEvals == 0 {
			t.Fatalf("%s: range batch path did not engage", name)
		}
	}
}

// The refinement searcher's seeded traversal shares evalLeaf with the
// plain search; seeding must not disturb batch/scalar identity.
func TestBatchSeededKNNMatchesScalar(t *testing.T) {
	rng := rand.New(rand.NewSource(143))
	const n, dim = 3000, 8
	s := randStore(rng, n, dim)
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
	m := testMetrics(rng, dim)["disjunctive"]

	rs := NewRefinementSearcher(tree)
	rb := NewRefinementSearcher(tree)
	for round := 0; round < 3; round++ {
		want, _ := rs.KNN(scalarOnly{m}, 20)
		got, stats := rb.KNN(m, 20)
		assertSameKNN(t, "seeded", want, got)
		if round > 0 && stats.CacheSeedLeaves == 0 {
			t.Fatal("refinement cache did not seed")
		}
	}
}

// FuzzBatchKNN drives substrate-level identity with fuzzer-chosen data:
// whatever the store geometry, query position and k, the batch path must
// reproduce the scalar result list exactly.
func FuzzBatchKNN(f *testing.F) {
	f.Add(int64(1), uint8(10), uint8(4))
	f.Add(int64(2), uint8(1), uint8(16))
	f.Add(int64(3), uint8(40), uint8(3))
	f.Fuzz(func(t *testing.T, seed int64, k8, dim8 uint8) {
		rng := rand.New(rand.NewSource(seed))
		dim := int(dim8)%16 + 1
		k := int(k8)%48 + 1
		s := randStore(rng, 400+rng.Intn(200), dim)
		tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
		va := NewVAFile(s, VAFileOptions{})
		for name, m := range testMetrics(rng, dim) {
			want, _ := tree.KNN(scalarOnly{m}, k)
			got, _ := tree.KNN(m, k)
			assertSameKNN(t, name+"/seq", want, got)
			wantVA, _ := va.KNN(scalarOnly{m}, k)
			gotVA, _ := va.KNN(m, k)
			assertSameKNN(t, name+"/va", wantVA, gotVA)
		}
	})
}

// A huge k (heap never fills, bound stays at the sentinel) must disable
// abandonment so every candidate — however far — is admitted.
func TestBatchKNNHeapNeverFills(t *testing.T) {
	rng := rand.New(rand.NewSource(144))
	const n, dim = 500, 6
	s := randStore(rng, n, dim)
	tree := NewHybridTree(s, TreeOptions{Parallelism: 1})
	m := testMetrics(rng, dim)["quad-full"]
	got, stats := tree.KNN(m, n*2)
	want, _ := tree.KNN(scalarOnly{m}, n*2)
	assertSameKNN(t, "huge-k", want, got)
	if len(got) != n {
		t.Fatalf("got %d results, want the whole store (%d)", len(got), n)
	}
	if stats.AbandonedEvals != 0 {
		t.Fatalf("abandoned %d evals while the heap could never fill", stats.AbandonedEvals)
	}
	for _, r := range got {
		if math.IsInf(r.Dist, 1) {
			t.Fatal("abandonment marker leaked into results")
		}
	}
}
