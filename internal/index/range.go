package index

import (
	"sort"

	"repro/internal/distance"
)

// RangeSearcher answers range queries: all items within a distance bound.
type RangeSearcher interface {
	// Range returns every object with metric distance <= radius, in
	// ascending distance order.
	Range(m distance.Metric, radius float64) ([]Result, SearchStats)
}

// Range scans every vector (reference implementation).
func (l *LinearScan) Range(m distance.Metric, radius float64) ([]Result, SearchStats) {
	stats := SearchStats{DistanceEvals: l.store.Len()}
	var out []Result
	for id := 0; id < l.store.Len(); id++ {
		if d := m.Eval(l.store.Vector(id)); d <= radius {
			out = append(out, Result{ID: id, Dist: d})
		}
	}
	sortResults(out)
	return out, stats
}

// Range answers the range query with depth-first traversal, pruning
// subtrees whose metric lower bound exceeds the radius.
func (t *HybridTree) Range(m distance.Metric, radius float64) ([]Result, SearchStats) {
	var stats SearchStats
	var out []Result
	var walk func(n *treeNode)
	walk = func(n *treeNode) {
		if n == nil {
			return
		}
		if m.LowerBound(n.lo, n.hi) > radius {
			return
		}
		stats.NodesVisited++
		if n.isLeaf() {
			stats.LeavesVisited++
			for _, id := range n.items {
				stats.DistanceEvals++
				if d := m.Eval(t.store.Vector(id)); d <= radius {
					out = append(out, Result{ID: id, Dist: d})
				}
			}
			return
		}
		walk(n.left)
		walk(n.right)
	}
	walk(t.root)
	sortResults(out)
	return out, stats
}

func sortResults(rs []Result) {
	sort.Slice(rs, func(i, j int) bool {
		if rs[i].Dist != rs[j].Dist {
			return rs[i].Dist < rs[j].Dist
		}
		return rs[i].ID < rs[j].ID
	})
}
