package index

import (
	"context"
	"math"
	"sort"

	"repro/internal/distance"
	"repro/internal/linalg"
)

// VAFile is a vector-approximation file (Weber, Schek & Blott, VLDB
// 1998) — the other standard index for high-dimensional feature vectors
// in the paper's era, included as an alternative substrate to the hybrid
// tree. Each vector is approximated by a few bits per dimension (a grid
// cell); a query scans the compact approximations, uses each cell's
// bounding box as a distance lower bound to filter, and fetches the full
// vectors only for candidates that survive. Unlike tree indexes, its
// filtering power does not collapse as dimensionality grows.
type VAFile struct {
	store *Store
	bits  int       // bits per dimension
	marks []ixMarks // per-dimension grid boundaries
	cells []int32   // packed cell ids, one per (vector, dimension)
}

type ixMarks struct {
	bounds []float64 // len = 2^bits + 1, ascending
}

// vaBatchItems is the refinement chunk size for batch-capable metrics:
// small enough that the pruning bound refreshes frequently during the
// candidate sweep, large enough to amortize the batch gather.
const vaBatchItems = 64

// VAFileOptions configures construction.
type VAFileOptions struct {
	// BitsPerDim is the approximation resolution (default 4 → 16 cells
	// per dimension).
	BitsPerDim int
}

// NewVAFile builds the approximation file over the store using
// equi-populated (quantile) grid marks per dimension, which balances
// cell occupancy under any data distribution.
func NewVAFile(s *Store, opt VAFileOptions) *VAFile {
	bits := opt.BitsPerDim
	if bits <= 0 {
		bits = 4
	}
	if bits > 12 {
		bits = 12
	}
	nCells := 1 << bits
	dim := s.Dim()

	va := &VAFile{
		store: s,
		bits:  bits,
		marks: make([]ixMarks, dim),
		cells: make([]int32, s.Len()*dim),
	}
	vals := make([]float64, s.Len())
	for d := 0; d < dim; d++ {
		for i := 0; i < s.Len(); i++ {
			vals[i] = s.Vector(i)[d]
		}
		sort.Float64s(vals)
		bounds := make([]float64, nCells+1)
		bounds[0] = math.Inf(-1)
		bounds[nCells] = math.Inf(1)
		for c := 1; c < nCells; c++ {
			bounds[c] = vals[c*(len(vals)-1)/nCells]
		}
		va.marks[d] = ixMarks{bounds: bounds}
	}
	for i := 0; i < s.Len(); i++ {
		v := s.Vector(i)
		for d := 0; d < dim; d++ {
			va.cells[i*dim+d] = int32(va.cellOf(d, v[d]))
		}
	}
	return va
}

// Extend quantizes store rows appended since construction (or the last
// Extend) against the existing marks — the VA-file's insert path. New
// rows land in whatever edge cells the original quantile grid gives
// them; filtering quality for far-outlying inserts degrades gracefully
// (looser lower bounds, never wrong ones) until a rebuild.
func (va *VAFile) Extend() {
	dim := va.store.Dim()
	for i := len(va.cells) / dim; i < va.store.Len(); i++ {
		v := va.store.Vector(i)
		for d := 0; d < dim; d++ {
			va.cells = append(va.cells, int32(va.cellOf(d, v[d])))
		}
	}
}

// numApprox returns the number of rows with an approximation entry —
// the scan bound, so a store row appended without Extend is invisible
// rather than out-of-range.
func (va *VAFile) numApprox() int { return len(va.cells) / va.store.Dim() }

// cellOf returns the grid cell of value x on dimension d.
func (va *VAFile) cellOf(d int, x float64) int {
	b := va.marks[d].bounds
	// Binary search for the last bound <= x.
	lo, hi := 0, len(b)-1
	for lo+1 < hi {
		mid := (lo + hi) / 2
		if b[mid] <= x {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo
}

// cellBox returns the bounding box of vector i's approximation cell,
// clipped to the data's observed range on unbounded edge cells so metric
// lower bounds stay finite.
func (va *VAFile) cellBox(i int, lo, hi linalg.Vector) {
	dim := va.store.Dim()
	for d := 0; d < dim; d++ {
		c := int(va.cells[i*dim+d])
		b := va.marks[d].bounds
		l, h := b[c], b[c+1]
		if math.IsInf(l, -1) {
			l = b[1] - 1 // edge cells: extend one mark width outwards
			if len(b) > 2 {
				l = b[1] - (b[2] - b[1]) - 1
			}
		}
		if math.IsInf(h, 1) {
			h = b[len(b)-2] + 1
			if len(b) > 2 {
				h = b[len(b)-2] + (b[len(b)-2] - b[len(b)-3]) + 1
			}
		}
		lo[d], hi[d] = l, h
	}
}

// KNN answers a k-NN query with the standard VA-file two-phase scan:
// phase 1 computes a lower bound per object from its approximation cell
// and keeps a candidate set whose bounds beat the current kth-best exact
// distance; phase 2's exact evaluations are interleaved so the bound
// tightens as the scan proceeds (the "VA-SSA" variant).
func (va *VAFile) KNN(m distance.Metric, k int) ([]Result, SearchStats) {
	res, stats, _ := va.KNNContext(context.Background(), m, k)
	return res, stats
}

// KNNContext is KNN with cooperative cancellation, checked between
// refinement chunks: an interrupted scan returns the best results found
// so far together with ctx.Err(). A nil error means the scan completed
// and the results are exact.
func (va *VAFile) KNNContext(ctx context.Context, m distance.Metric, k int) ([]Result, SearchStats, error) {
	var stats SearchStats
	stats.Workers = 1
	n := va.numApprox()
	dim := va.store.Dim()
	h := newResultHeap(k)
	if k <= 0 || n == 0 {
		return nil, stats, ctx.Err()
	}
	lo := make(linalg.Vector, dim)
	hi := make(linalg.Vector, dim)

	// Process objects in ascending lower-bound order for fast
	// convergence of the pruning bound: first pass computes bounds
	// (cheap, approximation-only), second evaluates in order.
	type cand struct {
		id    int
		bound float64
	}
	cands := make([]cand, n)
	for i := range cands {
		va.cellBox(i, lo, hi)
		cands[i] = cand{id: i, bound: m.LowerBound(lo, hi)}
	}
	stats.NodesVisited = n // approximation entries scanned
	sort.Slice(cands, func(a, b int) bool { return cands[a].bound < cands[b].bound })
	if err := ctx.Err(); err != nil {
		return h.sorted(), stats, err
	}

	if be := newBatchEvaluator(m, va.store); be != nil {
		// Refine in chunks: each chunk admits every candidate whose lower
		// bound beats the heap bound as of the chunk start. The bound is
		// stale within a chunk, so the batch may refine a few candidates
		// the scalar loop would have skipped — but a skipped candidate's
		// exact distance exceeds its lower bound, which exceeds the final
		// k-th best, so the extra refinements are rejected by the heap and
		// the result set stays identical.
		ids := make([]int, 0, vaBatchItems)
		for i := 0; i < len(cands); {
			if err := ctx.Err(); err != nil {
				return h.sorted(), stats, err
			}
			b := h.bound()
			if cands[i].bound > b {
				break // every remaining candidate is at least this far
			}
			ids = ids[:0]
			for i < len(cands) && len(ids) < vaBatchItems && cands[i].bound <= b {
				ids = append(ids, cands[i].id)
				i++
			}
			stats.DistanceEvals += len(ids)
			stats.BatchedEvals += len(ids)
			stats.AbandonedEvals += be.evalInto(ids, b, h)
		}
		return h.sorted(), stats, nil
	}
	for i, c := range cands {
		if c.bound > h.bound() {
			break // every remaining candidate is at least this far
		}
		if i&(vaBatchItems-1) == 0 {
			if err := ctx.Err(); err != nil {
				return h.sorted(), stats, err
			}
		}
		stats.DistanceEvals++
		h.offer(Result{ID: c.id, Dist: m.Eval(va.store.Vector(c.id))})
	}
	return h.sorted(), stats, nil
}

// Range returns every object with distance <= radius using the same
// filter-and-refine scan.
func (va *VAFile) Range(m distance.Metric, radius float64) ([]Result, SearchStats) {
	var stats SearchStats
	n := va.numApprox()
	dim := va.store.Dim()
	lo := make(linalg.Vector, dim)
	hi := make(linalg.Vector, dim)
	var out []Result
	stats.NodesVisited = n
	if be := newBatchEvaluator(m, va.store); be != nil {
		// The radius is the natural abandonment bound: a candidate whose
		// partial accumulation passes it can never be in range.
		ids := make([]int, 0, vaBatchItems)
		refine := func() {
			if len(ids) == 0 {
				return
			}
			stats.DistanceEvals += len(ids)
			stats.BatchedEvals += len(ids)
			dists, abandonOn := be.eval(ids, radius)
			for k, id := range ids {
				if abandonOn && math.IsInf(dists[k], 1) {
					stats.AbandonedEvals++
					continue
				}
				if dists[k] <= radius {
					out = append(out, Result{ID: id, Dist: dists[k]})
				}
			}
			ids = ids[:0]
		}
		for i := 0; i < n; i++ {
			va.cellBox(i, lo, hi)
			if m.LowerBound(lo, hi) > radius {
				continue
			}
			ids = append(ids, i)
			if len(ids) >= vaBatchItems {
				refine()
			}
		}
		refine()
		sortResults(out)
		return out, stats
	}
	for i := 0; i < n; i++ {
		va.cellBox(i, lo, hi)
		if m.LowerBound(lo, hi) > radius {
			continue
		}
		stats.DistanceEvals++
		if d := m.Eval(va.store.Vector(i)); d <= radius {
			out = append(out, Result{ID: i, Dist: d})
		}
	}
	sortResults(out)
	return out, stats
}

// BitsPerDim reports the configured resolution.
func (va *VAFile) BitsPerDim() int { return va.bits }
