package index

import (
	"math"

	"repro/internal/distance"
)

// batchEvaluator adapts a distance.BatchMetric to the index's candidate
// evaluation sites. It gathers candidate rows from the store's contiguous
// block into a reusable scratch buffer and hands the whole batch to the
// metric's bound-aware kernel, so the hot per-dimension loops sweep
// sequential memory and abandon candidates that provably exceed the
// caller's pruning bound.
//
// Identity with the scalar path: an abandoned candidate's true distance
// is strictly greater than the bound it was abandoned against, and every
// bound the index passes (the k-th-best heap distance, the shared
// parallel bound, a range radius) is an upper bound of the final
// admission threshold — so dropping abandoned candidates can never
// change the merged result set, and non-abandoned values are
// bit-identical to Eval by the BatchMetric contract.
//
// Not safe for concurrent use: each goroutine needs its own evaluator
// (the parallel leaf workers construct one apiece).
type batchEvaluator struct {
	bm   distance.BatchMetric
	s    *Store
	rows []float64 // gathered candidate rows, row-major
	out  []float64 // kernel output, one distance per candidate
}

// newBatchEvaluator returns an evaluator for m over s, or nil when m
// does not implement distance.BatchMetric (callers then keep the scalar
// path).
func newBatchEvaluator(m distance.Metric, s *Store) *batchEvaluator {
	bm, ok := m.(distance.BatchMetric)
	if !ok {
		return nil
	}
	return &batchEvaluator{bm: bm, s: s}
}

// eval runs the batch kernel over the given candidate ids. The returned
// slice (valid until the next call) holds one distance per id;
// abandonOn reports whether early abandonment was armed — only then may
// +Inf entries be abandonment markers rather than genuine distances.
// A bound at or above the heap sentinel (heap not full yet, so every
// candidate must be admitted) disables abandonment entirely.
func (b *batchEvaluator) eval(ids []int, bound float64) (dists []float64, abandonOn bool) {
	dim := b.s.dim
	need := len(ids) * dim
	if cap(b.rows) < need {
		b.rows = make([]float64, need)
	}
	if cap(b.out) < len(ids) {
		b.out = make([]float64, len(ids))
	}
	rows := b.rows[:need]
	dists = b.out[:len(ids)]
	flat := b.s.data
	for k, id := range ids {
		copy(rows[k*dim:(k+1)*dim], flat[id*dim:(id+1)*dim])
	}
	if bound >= inf {
		bound = math.Inf(1)
	} else {
		abandonOn = true
	}
	b.bm.EvalBatch(rows, dim, bound, dists)
	return dists, abandonOn
}

// evalInto evaluates ids against bound and offers the survivors to h.
// It returns the number of abandoned candidates (certified farther than
// bound without full evaluation).
func (b *batchEvaluator) evalInto(ids []int, bound float64, h *resultHeap) (abandoned int) {
	dists, abandonOn := b.eval(ids, bound)
	for k, id := range ids {
		if abandonOn && math.IsInf(dists[k], 1) {
			abandoned++
			continue
		}
		h.offer(Result{ID: id, Dist: dists[k]})
	}
	return abandoned
}
