package faultinject

import (
	"sync"
	"testing"
)

func TestSetFireClear(t *testing.T) {
	defer Reset()
	fired := 0
	Set("x", func() { fired++ })
	if !Enabled("x") {
		t.Fatal("x must be enabled after Set")
	}
	Fire("x")
	Fire("x")
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	Clear("x")
	if Enabled("x") {
		t.Fatal("x must be disabled after Clear")
	}
	Fire("x") // must be a no-op
	if fired != 2 {
		t.Fatalf("fired after Clear = %d", fired)
	}
}

func TestNilHookMarksEnabled(t *testing.T) {
	defer Reset()
	Set(SingularCovariance, nil)
	if !Enabled(SingularCovariance) {
		t.Fatal("nil hook must still enable the point")
	}
	Fire(SingularCovariance) // must not panic
}

func TestResetClearsEverything(t *testing.T) {
	Set("a", func() {})
	Set("b", func() {})
	Reset()
	if Enabled("a") || Enabled("b") {
		t.Fatal("Reset must clear all hooks")
	}
}

// Concurrent Set/Clear/Fire/Enabled must be race-free (run with -race).
func TestConcurrentAccess(t *testing.T) {
	defer Reset()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				switch i % 4 {
				case 0:
					Set("p", func() {})
				case 1:
					Fire("p")
				case 2:
					Enabled("p")
				case 3:
					Clear("p")
				}
			}
		}(w)
	}
	wg.Wait()
}

func TestDegenerateBatches(t *testing.T) {
	b := IdenticalBatch(4, 3, 7.5)
	if len(b) != 3 || len(b[0]) != 4 || b[2][3] != 7.5 {
		t.Fatalf("IdenticalBatch shape wrong: %v", b)
	}
	c := CollinearBatch(3, 5)
	if len(c) != 5 || len(c[0]) != 3 {
		t.Fatalf("CollinearBatch shape wrong: %v", c)
	}
	// Every point must be a scalar multiple of the first.
	for i := 1; i < len(c); i++ {
		ratio := c[i][0] / c[0][0]
		for d := range c[i] {
			if c[i][d] != ratio*c[0][d] {
				t.Fatalf("point %d not collinear with point 0", i)
			}
		}
	}
}
