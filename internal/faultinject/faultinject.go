// Package faultinject provides race-safe test hooks for forcing the
// retrieval core down its degraded paths: singular covariances that must
// fall back to the ridge-regularized inverse, mid-traversal cancellations
// of the best-first k-NN search, and degenerate feedback batches. The
// production code calls Fire/Enabled at a handful of named points; with
// no hooks registered the cost is a single atomic load, so the
// instrumentation can stay compiled in.
package faultinject

import (
	"sync"
	"sync/atomic"
)

// Named hook points instrumented in the retrieval core.
const (
	// SingularCovariance, when enabled, makes cluster.InverseOfInfo treat
	// every full covariance as singular, forcing the ridge-regularized
	// fallback path (and the degraded query-health status) even for
	// well-conditioned clusters.
	SingularCovariance = "cluster.singular-covariance"
	// KNNPop fires at every heap pop of the hybrid tree's best-first
	// traversal. A test hook can cancel a context or block here to
	// exercise mid-search deadlines with deterministic timing.
	KNNPop = "index.knn-pop"
	// FeedbackBatch fires at the entry of QueryModel.Feedback, before the
	// batch is filtered, so tests can observe or perturb feedback timing.
	FeedbackBatch = "core.feedback-batch"

	// WALPreFsync fires inside wal.Writer.Commit after the record bytes
	// reached the OS buffer but before fsync. A crash here must lose the
	// un-synced records and must NOT have acked them.
	WALPreFsync = "wal.pre-fsync"
	// WALPostFsync fires immediately after a successful fsync, before the
	// committed records are applied or acked. A crash here leaves durable
	// records that were never acknowledged; replay must still apply them
	// as complete batches.
	WALPostFsync = "wal.post-fsync"
	// WALTornAppend, when enabled, makes the next wal.Writer.Commit write
	// only a prefix of the final record's bytes (then fire the hook and
	// fail): the on-disk image a power cut mid-write leaves behind.
	// Replay must detect the torn tail and truncate it.
	WALTornAppend = "wal.torn-append"
	// WALFsyncError, when enabled, makes every wal fsync report an
	// injected error without touching the file — the persistent-disk-
	// failure path that must flip a durable database into read-only
	// degraded mode.
	WALFsyncError = "wal.fsync-error"
	// SnapshotMidRename fires between writing+fsyncing a snapshot temp
	// file and atomically renaming it into place. A crash here must boot
	// from the previous snapshot plus the intact WAL.
	SnapshotMidRename = "snapshot.mid-rename"
)

var (
	armed atomic.Int32 // number of registered hooks; 0 = fast path
	mu    sync.RWMutex
	hooks = map[string]func(){}
)

// Set registers fn to run whenever Fire(point) is reached. A nil fn
// still marks the point enabled (for Enabled-gated paths that need no
// callback). Replacing an existing hook is allowed.
func Set(point string, fn func()) {
	if fn == nil {
		fn = func() {}
	}
	mu.Lock()
	if _, ok := hooks[point]; !ok {
		armed.Add(1)
	}
	hooks[point] = fn
	mu.Unlock()
}

// Clear removes the hook at point, if any.
func Clear(point string) {
	mu.Lock()
	if _, ok := hooks[point]; ok {
		delete(hooks, point)
		armed.Add(-1)
	}
	mu.Unlock()
}

// Reset removes every registered hook. Tests should defer this.
func Reset() {
	mu.Lock()
	for p := range hooks {
		delete(hooks, p)
	}
	armed.Store(0)
	mu.Unlock()
}

// Enabled reports whether a hook is registered at point.
func Enabled(point string) bool {
	if armed.Load() == 0 {
		return false
	}
	mu.RLock()
	_, ok := hooks[point]
	mu.RUnlock()
	return ok
}

// Fire invokes the hook registered at point, if any. The hook runs
// outside the registry lock, so it may call Set/Clear/Reset itself.
func Fire(point string) {
	if armed.Load() == 0 {
		return
	}
	mu.RLock()
	fn := hooks[point]
	mu.RUnlock()
	if fn != nil {
		fn()
	}
}

// IdenticalBatch returns n copies of one constant vector — the most
// degenerate feedback batch possible: zero scatter in every dimension,
// guaranteeing a singular covariance for any dim >= 1.
func IdenticalBatch(dim, n int, value float64) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = value
		}
		out[i] = v
	}
	return out
}

// CollinearBatch returns n points spaced along a single line in dim-D
// space: the scatter has rank 1, so the covariance is singular whenever
// dim > 1 regardless of how many points are supplied.
func CollinearBatch(dim, n int) [][]float64 {
	out := make([][]float64, n)
	for i := range out {
		v := make([]float64, dim)
		for d := range v {
			v[d] = float64(i+1) * float64(d+1)
		}
		out[i] = v
	}
	return out
}
