// Package eval implements the paper's Section-5 evaluation: precision and
// recall metrics, the retrieval-quality and execution-cost experiments
// over the image collection (Figs. 6-13), the synthetic classification
// accuracy sweeps (Figs. 14-17), the Hotelling-T² accuracy studies
// (Tables 2-3, Figs. 18-19) and the disjunctive-query demonstration of
// Example 3 (Fig. 5). Each driver returns plain data that cmd/qbench and
// the benchmark harness render.
package eval

// PrecisionRecall computes precision and recall of a ranked result
// prefix: hits among the first `scope` results over scope (precision) and
// over totalRelevant (recall).
func PrecisionRecall(ids []int, relevant func(int) bool, scope, totalRelevant int) (p, r float64) {
	if scope > len(ids) {
		scope = len(ids)
	}
	hits := 0
	for _, id := range ids[:scope] {
		if relevant(id) {
			hits++
		}
	}
	if scope > 0 {
		p = float64(hits) / float64(scope)
	}
	if totalRelevant > 0 {
		r = float64(hits) / float64(totalRelevant)
	}
	return p, r
}

// PRPoint is one point of a precision-recall curve.
type PRPoint struct {
	Scope     int
	Precision float64
	Recall    float64
}

// PRCurve computes the precision-recall curve over every scope 1..len —
// the per-iteration lines of Figs. 8-9 ("each line is drawn with 100
// points, each of which shows precision and recall as the number of
// retrieved images increases from 1 to 100").
func PRCurve(ids []int, relevant func(int) bool, totalRelevant int) []PRPoint {
	out := make([]PRPoint, len(ids))
	hits := 0
	for i, id := range ids {
		if relevant(id) {
			hits++
		}
		scope := i + 1
		out[i] = PRPoint{
			Scope:     scope,
			Precision: float64(hits) / float64(scope),
		}
		if totalRelevant > 0 {
			out[i].Recall = float64(hits) / float64(totalRelevant)
		}
	}
	return out
}

// MeanCurves averages per-query PR curves pointwise. All curves must
// share one length.
func MeanCurves(curves [][]PRPoint) []PRPoint {
	if len(curves) == 0 {
		return nil
	}
	n := len(curves[0])
	out := make([]PRPoint, n)
	for i := 0; i < n; i++ {
		out[i].Scope = curves[0][i].Scope
		for _, c := range curves {
			out[i].Precision += c[i].Precision
			out[i].Recall += c[i].Recall
		}
		out[i].Precision /= float64(len(curves))
		out[i].Recall /= float64(len(curves))
	}
	return out
}
