package eval

import (
	"math"
	"testing"
)

func isRel(rel map[int]bool) func(int) bool {
	return func(id int) bool { return rel[id] }
}

func TestPrecisionRecall(t *testing.T) {
	ids := []int{1, 2, 3, 4, 5}
	rel := isRel(map[int]bool{1: true, 3: true, 9: true})
	p, r := PrecisionRecall(ids, rel, 5, 3)
	if math.Abs(p-0.4) > 1e-12 || math.Abs(r-2.0/3) > 1e-12 {
		t.Errorf("p=%v r=%v", p, r)
	}
	// Scope shorter than results.
	p, r = PrecisionRecall(ids, rel, 1, 3)
	if p != 1 || math.Abs(r-1.0/3) > 1e-12 {
		t.Errorf("scope1: p=%v r=%v", p, r)
	}
	// Scope beyond results clamps.
	p, _ = PrecisionRecall(ids, rel, 100, 3)
	if math.Abs(p-0.4) > 1e-12 {
		t.Errorf("clamped p=%v", p)
	}
	// Degenerate inputs.
	if p, r := PrecisionRecall(nil, rel, 0, 0); p != 0 || r != 0 {
		t.Error("degenerate inputs must give zeros")
	}
}

func TestPRCurve(t *testing.T) {
	ids := []int{1, 2, 3}
	rel := isRel(map[int]bool{1: true, 3: true})
	c := PRCurve(ids, rel, 2)
	if len(c) != 3 {
		t.Fatalf("len = %d", len(c))
	}
	// scope 1: hit → p=1, r=0.5
	if c[0].Precision != 1 || c[0].Recall != 0.5 {
		t.Errorf("c[0] = %+v", c[0])
	}
	// scope 2: 1 hit of 2 → p=0.5, r=0.5
	if c[1].Precision != 0.5 || c[1].Recall != 0.5 {
		t.Errorf("c[1] = %+v", c[1])
	}
	// scope 3: 2 hits of 3 → p=2/3, r=1
	if math.Abs(c[2].Precision-2.0/3) > 1e-12 || c[2].Recall != 1 {
		t.Errorf("c[2] = %+v", c[2])
	}
	// Recall is nondecreasing in scope.
	for i := 1; i < len(c); i++ {
		if c[i].Recall < c[i-1].Recall {
			t.Error("recall must be nondecreasing")
		}
	}
}

func TestMeanCurves(t *testing.T) {
	a := []PRPoint{{Scope: 1, Precision: 1, Recall: 0.2}}
	b := []PRPoint{{Scope: 1, Precision: 0, Recall: 0.4}}
	m := MeanCurves([][]PRPoint{a, b})
	if m[0].Precision != 0.5 || math.Abs(m[0].Recall-0.3) > 1e-12 {
		t.Errorf("m = %+v", m[0])
	}
	if MeanCurves(nil) != nil {
		t.Error("MeanCurves(nil) must be nil")
	}
}
