package eval

import (
	"strings"
	"testing"

	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/imagegen"
	"repro/internal/rf"
	"repro/internal/synth"
)

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	ds, err := dataset.Build(dataset.Config{
		Collection: imagegen.CollectionConfig{
			Seed: 7, NumCategories: 8, ImagesPerCategory: 15, ImageSize: 24,
			Themes: 4, BimodalFrac: 0.25,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	return ds
}

func TestRunRetrievalShapes(t *testing.T) {
	ds := testDataset(t)
	cfg := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 5, Iterations: 2, K: 20, Seed: 1,
	}
	s := RunRetrieval(cfg, func() rf.Engine { return rf.NewQcluster(core.Options{}) })
	if s.Name != "Qcluster" {
		t.Errorf("Name = %q", s.Name)
	}
	if len(s.Recall) != 3 || len(s.Precision) != 3 || len(s.Curves) != 3 {
		t.Fatalf("series lengths: %d %d %d", len(s.Recall), len(s.Precision), len(s.Curves))
	}
	if len(s.Curves[0]) != 20 {
		t.Errorf("curve length = %d", len(s.Curves[0]))
	}
	for i, r := range s.Recall {
		if r < 0 || r > 1 {
			t.Errorf("recall[%d] = %v", i, r)
		}
	}
	// Feedback must not hurt recall on average (small fluctuations are
	// expected with only 5 queries on a 120-image collection).
	if s.Recall[2] < s.Recall[0]-0.05 {
		t.Errorf("recall degraded: %v -> %v", s.Recall[0], s.Recall[2])
	}
}

func TestRunRetrievalIndexMatchesScan(t *testing.T) {
	ds := testDataset(t)
	base := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 4, Iterations: 1, K: 15, Seed: 3,
	}
	scan := RunRetrieval(base, func() rf.Engine { return rf.NewQPM() })
	idx := base
	idx.UseIndex = true
	tree := RunRetrieval(idx, func() rf.Engine { return rf.NewQPM() })
	for i := range scan.Recall {
		if diff := scan.Recall[i] - tree.Recall[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("iteration %d: scan recall %v != indexed recall %v",
				i, scan.Recall[i], tree.Recall[i])
		}
	}
	// The index must never do more distance work than the scan (with a
	// collection this small the tree may be a single leaf, so equality is
	// acceptable; the pruning behaviour itself is covered in the index
	// package tests at scale).
	if tree.DistanceEvals[0] > scan.DistanceEvals[0] {
		t.Errorf("index evals %v > scan evals %v", tree.DistanceEvals[0], scan.DistanceEvals[0])
	}
}

func TestRunRetrievalRefinementCacheCutsWork(t *testing.T) {
	ds := testDataset(t)
	base := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 4, Iterations: 3, K: 15, Seed: 5, UseIndex: true,
	}
	cold := RunRetrieval(base, func() rf.Engine { return rf.NewQcluster(core.Options{}) })
	warm := base
	warm.UseRefinementCache = true
	cached := RunRetrieval(warm, func() rf.Engine { return rf.NewQcluster(core.Options{}) })
	// Same quality.
	for i := range cold.Recall {
		if diff := cold.Recall[i] - cached.Recall[i]; diff > 1e-9 || diff < -1e-9 {
			t.Errorf("iteration %d: recall differs with cache", i)
		}
	}
	// Cached refinement iterations expand no more nodes than cold ones.
	var coldNodes, warmNodes float64
	for i := 1; i < len(cold.NodesVisited); i++ {
		coldNodes += cold.NodesVisited[i]
		warmNodes += cached.NodesVisited[i]
	}
	if warmNodes > coldNodes {
		t.Errorf("cache increased node work: %v > %v", warmNodes, coldNodes)
	}
}

func TestRunClassificationTrends(t *testing.T) {
	cfg := ClassificationConfig{
		Shape: synth.Spherical, Scheme: cluster.FullInverse,
		Dims: []int{12, 3}, InterDists: []float64{0.5, 2.5},
		PointsPerCluster: 20, Trials: 3, Seed: 11,
	}
	res := RunClassification(cfg)
	if len(res.Err) != 2 || len(res.Err[0]) != 2 {
		t.Fatal("grid shape wrong")
	}
	// Error falls as inter-cluster distance rises (dim 12).
	if res.Err[0][1] > res.Err[0][0] {
		t.Errorf("dim12: error rose with separation: %v -> %v", res.Err[0][0], res.Err[0][1])
	}
	// At the NARROW separation the between-cluster signal is weaker than
	// the noise, so projecting to 3 dims discards separation information:
	// err(dim 3) >= err(dim 12) there (the paper's information-loss
	// argument for Figs. 14-17). At wide separations PCA keeps the signal
	// in the top components, so no such ordering is asserted.
	if res.Err[1][0]+0.03 < res.Err[0][0] {
		t.Errorf("dim3 error %v unexpectedly below dim12 error %v at narrow separation",
			res.Err[1][0], res.Err[0][0])
	}
	for di := range res.Err {
		for ii := range res.Err[di] {
			if res.Err[di][ii] < 0 || res.Err[di][ii] > 1 {
				t.Fatalf("error rate out of range: %v", res.Err[di][ii])
			}
		}
	}
}

func TestShapeInvarianceOfClassification(t *testing.T) {
	// Theorem 1's experimental confirmation (Figs. 14 vs 15): with the
	// full-inverse scheme, spherical and elliptical data give similar
	// error rates at the same separation.
	mk := func(shape synth.Shape) ClassificationResult {
		return RunClassification(ClassificationConfig{
			Shape: shape, Scheme: cluster.FullInverse,
			Dims: []int{12}, InterDists: []float64{1.5},
			PointsPerCluster: 25, Trials: 6, Seed: 13,
		})
	}
	sph := mk(synth.Spherical).Err[0][0]
	ell := mk(synth.Elliptical).Err[0][0]
	if diff := sph - ell; diff > 0.12 || diff < -0.12 {
		t.Errorf("shape changed error rate too much: spherical %v vs elliptical %v", sph, ell)
	}
}

func TestRunT2Table2Shape(t *testing.T) {
	rows := RunT2(T2Config{SameMean: true, Scheme: cluster.FullInverse, Pairs: 40, Seed: 17})
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	for _, r := range rows {
		// Same-mean: low T², low error ratio.
		if r.ErrorRatio > 15 {
			t.Errorf("dim %d: same-mean error ratio %v%%", r.Dim, r.ErrorRatio)
		}
		if r.AvgT2 <= 0 {
			t.Errorf("dim %d: avg T² %v", r.Dim, r.AvgT2)
		}
		if r.VariationRatio <= 0.5 || r.VariationRatio > 1 {
			t.Errorf("dim %d: variation ratio %v", r.Dim, r.VariationRatio)
		}
		if r.QuantileF <= 1 {
			t.Errorf("dim %d: quantile-F %v", r.Dim, r.QuantileF)
		}
	}
	// Variation ratio decreases with dim.
	for i := 1; i < len(rows); i++ {
		if rows[i].VariationRatio > rows[i-1].VariationRatio {
			t.Error("variation ratio must fall as dim falls")
		}
	}
}

func TestRunT2Table3Shape(t *testing.T) {
	rows := RunT2(T2Config{SameMean: false, Scheme: cluster.Diagonal, Pairs: 40, Seed: 19})
	for _, r := range rows {
		// Different means: big T², mostly correct separations.
		if r.ErrorRatio > 25 {
			t.Errorf("dim %d: diff-mean error ratio %v%%", r.Dim, r.ErrorRatio)
		}
	}
	// T² for different means must dwarf the same-mean values.
	same := RunT2(T2Config{SameMean: true, Scheme: cluster.Diagonal, Pairs: 40, Seed: 19})
	if rows[0].AvgT2 < 3*same[0].AvgT2 {
		t.Errorf("diff-mean T² %v not ≫ same-mean %v", rows[0].AvgT2, same[0].AvgT2)
	}
}

func TestRunQQ(t *testing.T) {
	pts, threshold := RunQQ(cluster.FullInverse, 40, 12, 23)
	if len(pts) != 40 {
		t.Fatalf("len = %d", len(pts))
	}
	if threshold <= 1 || threshold > 5 {
		t.Fatalf("threshold = %v", threshold)
	}
	// Sorted ascending in both coordinates.
	for i := 1; i < len(pts); i++ {
		if pts[i].T2 < pts[i-1].T2 || pts[i].C2 < pts[i-1].C2 {
			t.Fatal("Q-Q data must be sorted")
		}
	}
	// The decision rule at the threshold must separate the populations:
	// nearly all same-mean pairs below, nearly all different-mean above.
	sameOK, diffOK, same, diff := 0, 0, 0, 0
	for _, p := range pts {
		if p.SameMean {
			same++
			if p.T2 <= threshold {
				sameOK++
			}
		} else {
			diff++
			if p.T2 > threshold {
				diffOK++
			}
		}
	}
	if sameOK < same*8/10 || diffOK < diff*8/10 {
		t.Errorf("weak separation: same %d/%d, diff %d/%d", sameOK, same, diffOK, diff)
	}
}

func TestRunExample3(t *testing.T) {
	res := RunExample3(42)
	if res.TotalPoints != 10000 {
		t.Fatalf("TotalPoints = %d", res.TotalPoints)
	}
	// Statistical expectation ≈ 1309 (see synth tests); the paper's 820
	// differs because of its generator, but the qualitative check is the
	// disjunctive coverage: both corners retrieved in near-equal shares.
	if res.WithinRadius < 1000 || res.WithinRadius > 1650 {
		t.Errorf("WithinRadius = %d", res.WithinRadius)
	}
	if len(res.Retrieved) != res.WithinRadius {
		t.Error("retrieved count mismatch")
	}
	lo, hi := res.PerCenter[0], res.PerCenter[1]
	if lo > hi {
		lo, hi = hi, lo
	}
	if float64(lo)/float64(hi) < 0.7 {
		t.Errorf("corner coverage unbalanced: %v vs %v", res.PerCenter[0], res.PerCenter[1])
	}
}

func TestRenderers(t *testing.T) {
	// Smoke tests: renderers must include headers and data.
	ser := []EngineSeries{{Name: "A", Recall: []float64{0.1, 0.2}}}
	out := RenderSeriesTable("t", "recall", ser, func(s EngineSeries) []float64 { return s.Recall })
	if !strings.Contains(out, "A") || !strings.Contains(out, "0.2") {
		t.Errorf("series table:\n%s", out)
	}
	cr := ClassificationResult{
		Config: ClassificationConfig{Dims: []int{3}, InterDists: []float64{1}}.withDefaults(),
	}
	cr.Config.Dims = []int{3}
	cr.Config.InterDists = []float64{1}
	cr.Err = [][]float64{{0.25}}
	if out := RenderClassification("t", cr); !strings.Contains(out, "0.25") {
		t.Errorf("classification table:\n%s", out)
	}
	rows := []T2Row{{Dim: 12, VariationRatio: 0.99, AvgT2: 1.5, QuantileF: 1.96, ErrorRatio: 2}}
	if out := RenderT2Table("t", rows); !strings.Contains(out, "1.96") {
		t.Errorf("t2 table:\n%s", out)
	}
	qq := []QQPoint{{T2: 1, C2: 2}, {T2: 5, C2: 3}}
	out = RenderQQ("t", qq, 1)
	if !strings.Contains(out, "merge") || !strings.Contains(out, "separate") {
		t.Errorf("qq table:\n%s", out)
	}
	e3 := Example3Result{TotalPoints: 10, WithinRadius: 2, Retrieved: []int{1, 2}}
	if out := RenderExample3(e3); !strings.Contains(out, "820") {
		t.Errorf("example3:\n%s", out)
	}
	curves := [][]PRPoint{{{Scope: 1, Precision: 1, Recall: 0.5}}}
	if out := RenderPRCurves("t", curves, []int{1}); !strings.Contains(out, "0.5") {
		t.Errorf("pr curves:\n%s", out)
	}
}

func TestRunRetrievalParallelMatchesSerial(t *testing.T) {
	ds := testDataset(t)
	base := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 6, Iterations: 2, K: 15, Seed: 21, UseIndex: true,
	}
	serial := RunRetrieval(base, func() rf.Engine { return rf.NewQcluster(core.Options{}) })
	par := base
	// Parallel is plumbed through the workload config.
	wl := par.workload()
	wl.Parallel = true
	vecs := ds.Vectors(dataset.ColorMoments)
	labels := ds.Col.Labels()
	themes := make([]int, len(ds.Col.Categories))
	for i, c := range ds.Col.Categories {
		themes[i] = c.Theme
	}
	pool := make([]int, len(vecs))
	for i := range pool {
		pool[i] = i
	}
	parallel := runWorkload(wl, vecs, labels, themes, pool,
		func() rf.Engine { return rf.NewQcluster(core.Options{}) })
	for i := range serial.Recall {
		if serial.Recall[i] != parallel.Recall[i] {
			t.Errorf("iteration %d: serial %v != parallel %v",
				i, serial.Recall[i], parallel.Recall[i])
		}
		if serial.Precision[i] != parallel.Precision[i] {
			t.Errorf("iteration %d: precision differs", i)
		}
	}
}
