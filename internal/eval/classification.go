package eval

import (
	"math/rand"

	"repro/internal/classify"
	"repro/internal/cluster"
	"repro/internal/linalg"
	"repro/internal/pca"
	"repro/internal/synth"
)

// ClassificationConfig parameterizes the synthetic classification
// accuracy sweep of Figs. 14-17: 3 Gaussian clusters in ℝ¹⁶, PCA-reduced
// to each target dimension, inter-cluster distance varied 0.5-2.5.
type ClassificationConfig struct {
	Shape  synth.Shape
	Scheme cluster.Scheme
	// Dims are the PCA target dimensionalities (paper: 12, 9, 6, 3).
	Dims []int
	// InterDists are the center separations (paper: 0.5 .. 2.5).
	InterDists []float64
	// PointsPerCluster sizes each cluster (default 30).
	PointsPerCluster int
	// Trials averages the error rate over repetitions (default 10).
	Trials int
	Seed   int64
}

func (c ClassificationConfig) withDefaults() ClassificationConfig {
	if len(c.Dims) == 0 {
		c.Dims = []int{12, 9, 6, 3}
	}
	if len(c.InterDists) == 0 {
		c.InterDists = []float64{0.5, 1.0, 1.5, 2.0, 2.5}
	}
	if c.PointsPerCluster <= 0 {
		c.PointsPerCluster = 30
	}
	if c.Trials <= 0 {
		c.Trials = 10
	}
	return c
}

// ClassificationResult holds the error-rate grid: Err[di][ii] is the mean
// error rate at Dims[di] and InterDists[ii].
type ClassificationResult struct {
	Config ClassificationConfig
	Err    [][]float64
}

// RunClassification performs the sweep. For each trial it draws the
// 16-dimensional mixture, fits PCA on the pooled sample, projects to the
// target dimension, builds the three clusters from the labelled points
// and measures the leave-one-out misclassification rate of the Bayesian
// classifier (Sec. 4.5) under the configured covariance scheme.
func RunClassification(cfg ClassificationConfig) ClassificationResult {
	cfg = cfg.withDefaults()
	res := ClassificationResult{Config: cfg}
	res.Err = make([][]float64, len(cfg.Dims))
	for di := range cfg.Dims {
		res.Err[di] = make([]float64, len(cfg.InterDists))
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	for t := 0; t < cfg.Trials; t++ {
		for ii, dist := range cfg.InterDists {
			pts := synth.GaussianClusters(rng, synth.ClusterSpec{
				Dim:              16,
				NumClusters:      3,
				PointsPerCluster: cfg.PointsPerCluster,
				InterDist:        dist,
				Shape:            cfg.Shape,
			})
			fitted, err := pca.Fit(vectorsOf(pts))
			if err != nil {
				panic(err)
			}
			for di, dim := range cfg.Dims {
				cs := make([]*cluster.Cluster, 3)
				for label := 0; label < 3; label++ {
					cs[label] = cluster.New(dim)
				}
				for i, p := range pts {
					cs[p.Label].Add(cluster.Point{
						ID:    i,
						Vec:   fitted.Project(p.Vec, dim),
						Score: 1,
					})
				}
				e := classify.ErrorRate(cs, classify.Options{Scheme: cfg.Scheme})
				res.Err[di][ii] += e
			}
		}
	}
	for di := range res.Err {
		for ii := range res.Err[di] {
			res.Err[di][ii] /= float64(cfg.Trials)
		}
	}
	return res
}

func vectorsOf(pts []synth.LabeledPoint) []linalg.Vector {
	out := make([]linalg.Vector, len(pts))
	for i, p := range pts {
		out[i] = p.Vec
	}
	return out
}
