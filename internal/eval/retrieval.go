package eval

import (
	"math/rand"
	"runtime"
	"sync"
	"time"

	"repro/internal/dataset"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/rf"
)

// WorkloadConfig holds the engine-independent retrieval workload
// parameters shared by the image-collection and vector-world experiments.
type WorkloadConfig struct {
	// NumQueries random initial queries are averaged (paper: 100).
	NumQueries int
	// Iterations of feedback after the initial query (paper: 5).
	Iterations int
	// K is the result size (paper: 100).
	K int
	// Seed drives the query selection.
	Seed int64
	// UseIndex selects the hybrid tree (true) or a linear scan (false).
	UseIndex bool
	// UseRefinementCache seeds each iteration's search from the previous
	// iteration's visited leaves (the multipoint caching of Fig. 7);
	// only meaningful with UseIndex.
	UseRefinementCache bool
	// RelatedScore is the oracle score for related-category images.
	// Zero means the default (1, the paper's graded judgement); negative
	// restricts feedback to same-category images (score 0).
	RelatedScore float64
	// Parallel runs query sessions across GOMAXPROCS workers. Results
	// are identical to the serial run (sessions are independent and
	// reduced in query order), but per-iteration CPU-time measurements
	// become unreliable — leave it off for the timing experiments
	// (Figs. 6-7).
	Parallel bool
}

func (c WorkloadConfig) withDefaults() WorkloadConfig {
	if c.NumQueries <= 0 {
		c.NumQueries = 100
	}
	if c.Iterations <= 0 {
		c.Iterations = 5
	}
	if c.K <= 0 {
		c.K = 100
	}
	return c
}

// RetrievalConfig parameterizes the image-collection experiments.
type RetrievalConfig struct {
	DS      *dataset.Dataset
	Feature dataset.Feature
	// NumQueries random initial queries are averaged (paper: 100).
	NumQueries int
	// Iterations of feedback after the initial query (paper: 5).
	Iterations int
	// K is the result size (paper: 100).
	K int
	// Seed drives the query selection.
	Seed int64
	// UseIndex selects the hybrid tree (true) or a linear scan (false).
	UseIndex bool
	// UseRefinementCache seeds each iteration's search from the previous
	// iteration's visited leaves; only meaningful with UseIndex.
	UseRefinementCache bool
	// RelatedScore is the oracle score for related-category images
	// (see WorkloadConfig.RelatedScore).
	RelatedScore float64
}

func (c RetrievalConfig) workload() WorkloadConfig {
	return WorkloadConfig{
		NumQueries: c.NumQueries, Iterations: c.Iterations, K: c.K,
		Seed: c.Seed, UseIndex: c.UseIndex,
		UseRefinementCache: c.UseRefinementCache,
		RelatedScore:       c.RelatedScore,
	}
}

// EngineSeries is the per-iteration averaged outcome for one engine —
// the rows behind Figs. 6-13.
type EngineSeries struct {
	Name string
	// Recall[i] and Precision[i] are at full scope K for iteration i
	// (i = 0 is the initial query), averaged over queries.
	Recall    []float64
	Precision []float64
	// CPUMillis[i] is the mean wall-clock retrieval time per iteration.
	CPUMillis []float64
	// DistanceEvals and NodesVisited are mean index work per iteration.
	DistanceEvals []float64
	NodesVisited  []float64
	// QueryPoints is the mean number of query representatives.
	QueryPoints []float64
	// Curves[i] is the mean precision-recall curve of iteration i
	// (scope 1..K) — the lines of Figs. 8-9.
	Curves [][]PRPoint
}

// RunRetrieval evaluates one engine family over the image-collection
// workload. mkEngine must return a fresh engine per query session.
func RunRetrieval(cfg RetrievalConfig, mkEngine func() rf.Engine) EngineSeries {
	labels := cfg.DS.Col.Labels()
	themes := make([]int, len(cfg.DS.Col.Categories))
	for i, cat := range cfg.DS.Col.Categories {
		themes[i] = cat.Theme
	}
	vecs := cfg.DS.Vectors(cfg.Feature)
	pool := make([]int, len(vecs))
	for i := range pool {
		pool[i] = i
	}
	return runWorkload(cfg.workload(), vecs, labels, themes, pool, mkEngine)
}

// RunVectorRetrieval evaluates one engine family over a controlled
// vector world. When onlyComplex is true, queries are drawn only from
// the multi-mode categories — the paper's "complex image query" case.
func RunVectorRetrieval(cfg WorkloadConfig, w *VectorWorld, wcfg VectorWorldConfig, onlyComplex bool, mkEngine func() rf.Engine) EngineSeries {
	var pool []int
	for id, l := range w.Labels {
		if l >= w.NumCategories {
			continue // clutter is never a query
		}
		if onlyComplex && !w.ComplexCategory(wcfg, l) {
			continue
		}
		pool = append(pool, id)
	}
	return runWorkload(cfg, w.Vectors, w.Labels, w.Themes, pool, mkEngine)
}

// runWorkload is the shared evaluation loop.
func runWorkload(cfg WorkloadConfig, vecs []linalg.Vector, labels, themes, queryPool []int, mkEngine func() rf.Engine) EngineSeries {
	cfg = cfg.withDefaults()
	store, err := index.NewStore(vecs)
	if err != nil {
		panic(err)
	}
	var tree *index.HybridTree
	if cfg.UseIndex {
		tree = index.NewHybridTree(store, index.TreeOptions{})
	}

	oracle := rf.NewOracle(labels, themes)
	switch {
	case cfg.RelatedScore < 0:
		oracle.RelatedScore = 0
	case cfg.RelatedScore > 0:
		oracle.RelatedScore = cfg.RelatedScore
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	queryIDs := make([]int, cfg.NumQueries)
	for i := range queryIDs {
		queryIDs[i] = queryPool[rng.Intn(len(queryPool))]
	}

	iters := cfg.Iterations + 1
	out := EngineSeries{
		Recall:        make([]float64, iters),
		Precision:     make([]float64, iters),
		CPUMillis:     make([]float64, iters),
		DistanceEvals: make([]float64, iters),
		NodesVisited:  make([]float64, iters),
		QueryPoints:   make([]float64, iters),
	}
	curvesByIter := make([][][]PRPoint, iters)

	// Each query session is independent; run them (optionally in
	// parallel) into a per-query slot, then reduce in query order so the
	// output is bit-identical either way.
	perQuery := make([][]rf.Iteration, len(queryIDs))
	runOne := func(qi int) {
		qid := queryIDs[qi]
		engine := mkEngine()
		var searcher index.Searcher
		switch {
		case tree != nil && cfg.UseRefinementCache:
			searcher = index.NewRefinementSearcher(tree)
		case tree != nil:
			searcher = tree
		default:
			searcher = index.NewLinearScan(store)
		}
		session := &rf.Session{
			Engine:   engine,
			Searcher: searcher,
			Oracle:   oracle,
			Vec:      store.Vector,
			K:        cfg.K,
		}
		perQuery[qi] = session.Run(qid, labels[qid], cfg.Iterations)
	}
	if cfg.Parallel {
		var wg sync.WaitGroup
		work := make(chan int)
		for w := 0; w < runtime.GOMAXPROCS(0); w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for qi := range work {
					runOne(qi)
				}
			}()
		}
		for qi := range queryIDs {
			work <- qi
		}
		close(work)
		wg.Wait()
	} else {
		for qi := range queryIDs {
			runOne(qi)
		}
	}
	out.Name = mkEngine().Name()

	for qi, results := range perQuery {
		qcat := labels[queryIDs[qi]]
		total := oracle.CategorySize(qcat)
		for i, it := range results {
			ids := resultIDs(it.Results)
			rel := func(id int) bool { return oracle.Relevant(qcat, id) }
			p, r := PrecisionRecall(ids, rel, cfg.K, total)
			out.Precision[i] += p
			out.Recall[i] += r
			out.CPUMillis[i] += float64(it.Elapsed) / float64(time.Millisecond)
			out.DistanceEvals[i] += float64(it.Stats.DistanceEvals)
			out.NodesVisited[i] += float64(it.Stats.NodesVisited)
			out.QueryPoints[i] += float64(it.QueryPoints)
			curvesByIter[i] = append(curvesByIter[i], PRCurve(ids, rel, total))
		}
	}
	n := float64(cfg.NumQueries)
	for i := 0; i < iters; i++ {
		out.Recall[i] /= n
		out.Precision[i] /= n
		out.CPUMillis[i] /= n
		out.DistanceEvals[i] /= n
		out.NodesVisited[i] /= n
		out.QueryPoints[i] /= n
	}
	out.Curves = make([][]PRPoint, iters)
	for i := range curvesByIter {
		out.Curves[i] = MeanCurves(curvesByIter[i])
	}
	return out
}

func resultIDs(rs []index.Result) []int {
	ids := make([]int, len(rs))
	for i, r := range rs {
		ids[i] = r.ID
	}
	return ids
}
