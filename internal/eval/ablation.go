package eval

import (
	"repro/internal/core"
	"repro/internal/rf"
)

// AblationResult holds one ablation configuration's outcome on the
// controlled complex-query workload.
type AblationResult struct {
	Name   string
	Series EngineSeries
}

// RunAblations evaluates the full Qcluster configuration against each
// single-correction-removed variant on the vector world's complex
// queries. The corrections under test are the three small-sample
// measures DESIGN.md documents: pooled-shrunk covariances in Eq. 5,
// the finite-sample effective radius, and the ellipsoid-overlap merge
// criterion.
func RunAblations(cfg WorkloadConfig, wcfg VectorWorldConfig) []AblationResult {
	world := BuildVectorWorld(wcfg)
	cases := []struct {
		name string
		abl  core.Ablations
	}{
		{"full", core.Ablations{}},
		{"raw-covariances", core.Ablations{RawCovariances: true}},
		{"plain-chi2-radius", core.Ablations{PlainChiSquareRadius: true}},
		{"no-overlap-merge", core.Ablations{NoOverlapMerge: true}},
		{"all-off", core.Ablations{
			RawCovariances: true, PlainChiSquareRadius: true, NoOverlapMerge: true,
		}},
	}
	out := make([]AblationResult, 0, len(cases))
	for _, tc := range cases {
		abl := tc.abl
		series := RunVectorRetrieval(cfg, world, wcfg, true, func() rf.Engine {
			return rf.NewQcluster(core.Options{Ablations: abl})
		})
		series.Name = tc.name
		out = append(out, AblationResult{Name: tc.name, Series: series})
	}
	return out
}
