package eval

import (
	"math"
	"math/rand"

	"repro/internal/linalg"
)

// VectorWorld is a controlled retrieval universe used alongside the image
// collection: categories are sets of tight Gaussian modes in feature
// space with clutter placed INSIDE each complex category's convex hull —
// the geometry of the paper's Example 1 / Figure 4, where the relevant
// images of one query form clearly disjoint clusters and a single convex
// contour over them must sweep through foreign images. The image
// collection exercises the full pipeline; this world isolates the
// disjunctive-query mechanism itself at a configurable scale.
type VectorWorld struct {
	Vectors []linalg.Vector
	Labels  []int
	Themes  []int // category -> theme (each category its own theme here)
	// NumCategories counts real categories; clutter points carry label
	// NumCategories (one shared clutter class, never a query).
	NumCategories int
}

// VectorWorldConfig sizes the world.
type VectorWorldConfig struct {
	Seed          int64
	NumCategories int // real categories (default 40)
	PerCategory   int // points per category (default 60)
	Dim           int // feature dimensionality (default 3)
	// ComplexFrac of categories have 2-3 modes (default 0.5).
	ComplexFrac float64
	// ClutterPerCategory clutter points are dropped at each complex
	// category's centroid (default PerCategory/2).
	ClutterPerCategory int
}

func (c VectorWorldConfig) withDefaults() VectorWorldConfig {
	if c.NumCategories <= 0 {
		c.NumCategories = 40
	}
	if c.PerCategory <= 0 {
		c.PerCategory = 60
	}
	if c.Dim <= 0 {
		c.Dim = 3
	}
	if c.ComplexFrac <= 0 {
		c.ComplexFrac = 0.5
	}
	if c.ClutterPerCategory <= 0 {
		c.ClutterPerCategory = c.PerCategory
	}
	return c
}

// BuildVectorWorld lays the categories out on a coarse grid so category
// neighborhoods never overlap, then builds each complex category as 2-3
// tight modes on a ring with shared clutter at the ring center.
func BuildVectorWorld(cfg VectorWorldConfig) *VectorWorld {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	w := &VectorWorld{NumCategories: cfg.NumCategories}
	const (
		gridStep   = 6.0  // distance between category anchors
		modeRadius = 0.65 // ring radius for complex categories
		modeSigma  = 0.18 // within-mode spread
		clutterSig = 0.25 // clutter spread at the ring center
	)
	numComplex := int(float64(cfg.NumCategories) * cfg.ComplexFrac)

	side := int(math.Ceil(math.Pow(float64(cfg.NumCategories), 1/float64(cfg.Dim))))
	anchor := func(cat int) linalg.Vector {
		v := make(linalg.Vector, cfg.Dim)
		rem := cat
		for d := 0; d < cfg.Dim; d++ {
			v[d] = float64(rem%side) * gridStep
			rem /= side
		}
		return v
	}
	gauss := func(center linalg.Vector, sigma float64) linalg.Vector {
		v := make(linalg.Vector, cfg.Dim)
		for d := range v {
			v[d] = center[d] + sigma*rng.NormFloat64()
		}
		return v
	}

	for cat := 0; cat < cfg.NumCategories; cat++ {
		c := anchor(cat)
		modes := 1
		if cat < numComplex {
			// Three modes: a single ellipsoidal contour over them is a
			// 2-D pancake that necessarily contains the ring center —
			// with two modes, axis re-weighting can form a thin tube
			// that threads between the clutter.
			modes = 3
		}
		// Mode centers on a ring: random orthogonal-ish directions.
		centers := make([]linalg.Vector, modes)
		for m := range centers {
			dir := make(linalg.Vector, cfg.Dim)
			for d := range dir {
				dir[d] = rng.NormFloat64()
			}
			dir = dir.Scale(modeRadius / dir.Norm())
			centers[m] = c.Add(dir)
		}
		for i := 0; i < cfg.PerCategory; i++ {
			m := i % modes
			w.Vectors = append(w.Vectors, gauss(centers[m], modeSigma))
			w.Labels = append(w.Labels, cat)
		}
		if modes > 1 {
			// Clutter inside the hull of the modes.
			for i := 0; i < cfg.ClutterPerCategory; i++ {
				w.Vectors = append(w.Vectors, gauss(c, clutterSig))
				w.Labels = append(w.Labels, cfg.NumCategories)
			}
		}
	}
	w.Themes = make([]int, cfg.NumCategories+1)
	for i := range w.Themes {
		w.Themes[i] = i
	}
	return w
}

// ComplexCategory reports whether a category was built with multiple
// modes (categories below the complex fraction cutoff).
func (w *VectorWorld) ComplexCategory(cfg VectorWorldConfig, cat int) bool {
	cfg = cfg.withDefaults()
	return cat < int(float64(cfg.NumCategories)*cfg.ComplexFrac)
}
