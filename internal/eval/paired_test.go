package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/dataset"
	"repro/internal/rf"
)

func TestRunPairedSelfComparisonIsNull(t *testing.T) {
	// An engine compared against itself must show zero mean difference
	// and a p-value of 1 (no variance in the differences).
	ds := testDataset(t)
	cfg := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 6, Iterations: 2, K: 20, Seed: 4, UseIndex: true,
	}
	mk := func() rf.Engine { return rf.NewQPM() }
	out := RunPairedImage(cfg, mk, mk)
	if out.MeanDiff != 0 {
		t.Errorf("self-comparison MeanDiff = %v", out.MeanDiff)
	}
	if out.PValue < 0.99 {
		t.Errorf("self-comparison p-value = %v, want 1", out.PValue)
	}
	if out.Queries != 6 {
		t.Errorf("Queries = %d", out.Queries)
	}
	if out.MeanA != out.MeanB {
		t.Errorf("MeanA %v != MeanB %v on self comparison", out.MeanA, out.MeanB)
	}
}

func TestRunPairedDetectsRealDifference(t *testing.T) {
	// Qcluster vs QEX on the complex-query vector world: a genuine
	// difference should come out with a small p-value given enough
	// queries.
	wcfg := VectorWorldConfig{Seed: 3, NumCategories: 16, PerCategory: 60}
	w := BuildVectorWorld(wcfg)
	var pool []int
	for id, l := range w.Labels {
		if l < w.NumCategories && w.ComplexCategory(wcfg, l) {
			pool = append(pool, id)
		}
	}
	cfg := WorkloadConfig{
		NumQueries: 24, Iterations: 3, K: 100, Seed: 5,
		UseIndex: true, RelatedScore: -1,
	}
	out := RunPaired(cfg, w.Vectors, w.Labels, w.Themes, pool,
		func() rf.Engine { return rf.NewQcluster(core.Options{}) },
		func() rf.Engine { return rf.NewQEX(5) },
	)
	if out.NameA != "Qcluster" || out.NameB != "QEX" {
		t.Errorf("names = %q, %q", out.NameA, out.NameB)
	}
	if out.MeanDiff <= 0 {
		t.Errorf("Qcluster - QEX mean diff = %v, want > 0", out.MeanDiff)
	}
	if out.PValue > 0.05 {
		t.Errorf("p-value = %v for a real difference over %d queries", out.PValue, out.Queries)
	}
}

func TestRunModalityImage(t *testing.T) {
	ds := testDataset(t)
	cfg := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 8, Iterations: 2, K: 20, Seed: 6,
	}
	b := RunModalityImage(cfg, func() rf.Engine { return rf.NewQcluster(core.Options{}) })
	if b.SimpleQueries+b.ComplexQueries != 8 {
		t.Errorf("query split %d + %d != 8", b.SimpleQueries, b.ComplexQueries)
	}
	if b.SimpleRecall < 0 || b.SimpleRecall > 1 || b.ComplexRecall < 0 || b.ComplexRecall > 1 {
		t.Errorf("recalls out of range: %v %v", b.SimpleRecall, b.ComplexRecall)
	}
	if b.Name != "Qcluster" {
		t.Errorf("Name = %q", b.Name)
	}
}
