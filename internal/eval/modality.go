package eval

import (
	"math/rand"

	"repro/internal/index"
	"repro/internal/rf"
)

// ModalityBreakdown splits an engine's final-iteration recall by query
// difficulty class: queries whose ground-truth category is unimodal
// ("simple") versus multi-variant ("complex"). The paper's thesis lives
// entirely in the complex column.
type ModalityBreakdown struct {
	Name                          string
	SimpleRecall, ComplexRecall   float64
	SimpleQueries, ComplexQueries int
}

// RunModalityImage computes the breakdown over the image collection.
func RunModalityImage(cfg RetrievalConfig, mk func() rf.Engine) ModalityBreakdown {
	wl := cfg.workload().withDefaults()
	vecs := cfg.DS.Vectors(cfg.Feature)
	store, err := index.NewStore(vecs)
	if err != nil {
		panic(err)
	}
	tree := index.NewHybridTree(store, index.TreeOptions{})

	labels := cfg.DS.Col.Labels()
	themes := make([]int, len(cfg.DS.Col.Categories))
	for i, cat := range cfg.DS.Col.Categories {
		themes[i] = cat.Theme
	}
	oracle := rf.NewOracle(labels, themes)
	switch {
	case wl.RelatedScore < 0:
		oracle.RelatedScore = 0
	case wl.RelatedScore > 0:
		oracle.RelatedScore = wl.RelatedScore
	}

	rng := rand.New(rand.NewSource(wl.Seed))
	var out ModalityBreakdown
	for q := 0; q < wl.NumQueries; q++ {
		qid := rng.Intn(store.Len())
		qcat := labels[qid]
		total := oracle.CategorySize(qcat)
		engine := mk()
		if out.Name == "" {
			out.Name = engine.Name()
		}
		session := &rf.Session{
			Engine: engine, Searcher: tree, Oracle: oracle,
			Vec: store.Vector, K: wl.K,
		}
		iters := session.Run(qid, qcat, wl.Iterations)
		ids := resultIDs(iters[len(iters)-1].Results)
		_, recall := PrecisionRecall(ids, func(id int) bool {
			return oracle.Relevant(qcat, id)
		}, wl.K, total)

		if cfg.DS.Col.Categories[qcat].Bimodal() {
			out.ComplexRecall += recall
			out.ComplexQueries++
		} else {
			out.SimpleRecall += recall
			out.SimpleQueries++
		}
	}
	if out.SimpleQueries > 0 {
		out.SimpleRecall /= float64(out.SimpleQueries)
	}
	if out.ComplexQueries > 0 {
		out.ComplexRecall /= float64(out.ComplexQueries)
	}
	return out
}
