package eval

import (
	"math"
	"math/rand"

	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/rf"
	"repro/internal/stat"
)

// PairedComparison is the outcome of running two engines on the SAME
// query sequence and comparing their final-iteration recall per query —
// a paired design, so query difficulty cancels out and the significance
// of the mean difference can be assessed with a paired t test.
type PairedComparison struct {
	NameA, NameB string
	// MeanA and MeanB are final-iteration recalls averaged over queries.
	MeanA, MeanB float64
	// MeanDiff = mean(recallA - recallB) per query.
	MeanDiff float64
	// TStat is the paired t statistic of the differences; PValue is the
	// two-sided p-value under t_{n-1}.
	TStat, PValue float64
	// Queries is the number of paired observations.
	Queries int
}

// RunPaired evaluates two engine families on identical query ids over
// the given vectors/labels/themes (use the image-collection accessors or
// a vector world) and returns the paired comparison of final recalls.
func RunPaired(cfg WorkloadConfig, vecs []linalg.Vector, labels, themes, queryPool []int,
	mkA, mkB func() rf.Engine) PairedComparison {
	cfg = cfg.withDefaults()
	store, err := index.NewStore(vecs)
	if err != nil {
		panic(err)
	}
	var searcherFor func() index.Searcher
	if cfg.UseIndex {
		tree := index.NewHybridTree(store, index.TreeOptions{})
		searcherFor = func() index.Searcher { return tree }
	} else {
		scan := index.NewLinearScan(store)
		searcherFor = func() index.Searcher { return scan }
	}
	oracle := rf.NewOracle(labels, themes)
	switch {
	case cfg.RelatedScore < 0:
		oracle.RelatedScore = 0
	case cfg.RelatedScore > 0:
		oracle.RelatedScore = cfg.RelatedScore
	}

	rng := rand.New(rand.NewSource(cfg.Seed))
	diffs := make([]float64, 0, cfg.NumQueries)
	var sumA, sumB float64
	var out PairedComparison

	finalRecall := func(mk func() rf.Engine, qid, qcat, total int) float64 {
		engine := mk()
		if out.NameA == "" {
			out.NameA = engine.Name()
		} else if out.NameB == "" && engine.Name() != out.NameA {
			out.NameB = engine.Name()
		}
		session := &rf.Session{
			Engine: engine, Searcher: searcherFor(), Oracle: oracle,
			Vec: store.Vector, K: cfg.K,
		}
		iters := session.Run(qid, qcat, cfg.Iterations)
		ids := resultIDs(iters[len(iters)-1].Results)
		_, r := PrecisionRecall(ids, func(id int) bool {
			return oracle.Relevant(qcat, id)
		}, cfg.K, total)
		return r
	}

	for q := 0; q < cfg.NumQueries; q++ {
		qid := queryPool[rng.Intn(len(queryPool))]
		qcat := labels[qid]
		total := oracle.CategorySize(qcat)
		ra := finalRecall(mkA, qid, qcat, total)
		rb := finalRecall(mkB, qid, qcat, total)
		sumA += ra
		sumB += rb
		diffs = append(diffs, ra-rb)
	}

	n := float64(len(diffs))
	out.Queries = len(diffs)
	out.MeanA = sumA / n
	out.MeanB = sumB / n
	out.MeanDiff = stat.Mean(diffs)
	sd := math.Sqrt(stat.SampleVariance(diffs))
	if sd > 0 && n > 1 {
		out.TStat = out.MeanDiff / (sd / math.Sqrt(n))
		// Two-sided p-value under t with n-1 degrees of freedom.
		out.PValue = 2 * (1 - stat.StudentTCDF(math.Abs(out.TStat), n-1))
	} else {
		out.PValue = 1
		if out.MeanDiff != 0 {
			out.PValue = 0 // identical nonzero difference on every query
		}
	}
	return out
}

// RunPairedImage is RunPaired over the image collection.
func RunPairedImage(cfg RetrievalConfig, mkA, mkB func() rf.Engine) PairedComparison {
	labels := cfg.DS.Col.Labels()
	themes := make([]int, len(cfg.DS.Col.Categories))
	for i, cat := range cfg.DS.Col.Categories {
		themes[i] = cat.Theme
	}
	vecs := cfg.DS.Vectors(cfg.Feature)
	pool := make([]int, len(vecs))
	for i := range pool {
		pool[i] = i
	}
	return RunPaired(cfg.workload(), vecs, labels, themes, pool, mkA, mkB)
}
