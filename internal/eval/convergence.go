package eval

import (
	"math"
	"math/rand"

	"repro/internal/core"
	"repro/internal/index"
	"repro/internal/linalg"
	"repro/internal/rf"
)

// ConvergenceResult quantifies the paper's second experimental goal —
// "test that the proposed Qcluster algorithm converges to the user's
// true information needs fast" — with three per-iteration series.
type ConvergenceResult struct {
	// RecallGain[i] is the mean recall improvement from iteration i-1 to
	// i (index 0 unused). Fast convergence = a large first entry and a
	// rapidly vanishing tail.
	RecallGain []float64
	// ResultChurn[i] is the mean fraction of the top-k that changed
	// between iterations i-1 and i; a converged query re-retrieves the
	// same set.
	ResultChurn []float64
	// ModelDrift[i] is the mean movement of the query representatives
	// between iterations (sum over clusters of nearest-centroid
	// distances, normalized by the feature-space scale).
	ModelDrift []float64
}

// RunConvergence measures Qcluster's convergence on the image
// collection.
func RunConvergence(cfg RetrievalConfig) ConvergenceResult {
	wl := cfg.workload().withDefaults()
	vecs := cfg.DS.Vectors(cfg.Feature)
	store, err := index.NewStore(vecs)
	if err != nil {
		panic(err)
	}
	tree := index.NewHybridTree(store, index.TreeOptions{})

	labels := cfg.DS.Col.Labels()
	themes := make([]int, len(cfg.DS.Col.Categories))
	for i, cat := range cfg.DS.Col.Categories {
		themes[i] = cat.Theme
	}
	oracle := rf.NewOracle(labels, themes)
	if wl.RelatedScore < 0 {
		oracle.RelatedScore = 0
	} else if wl.RelatedScore > 0 {
		oracle.RelatedScore = wl.RelatedScore
	}

	rng := rand.New(rand.NewSource(wl.Seed))
	iters := wl.Iterations + 1
	res := ConvergenceResult{
		RecallGain:  make([]float64, iters),
		ResultChurn: make([]float64, iters),
		ModelDrift:  make([]float64, iters),
	}
	scale := featureScale(vecs)

	for q := 0; q < wl.NumQueries; q++ {
		qid := rng.Intn(store.Len())
		qcat := labels[qid]
		total := oracle.CategorySize(qcat)

		engine := rf.NewQcluster(core.Options{})
		session := &rf.Session{
			Engine: engine, Searcher: tree, Oracle: oracle,
			Vec: store.Vector, K: wl.K,
		}
		// Run manually so the representatives are observable per round.
		engine.Init(store.Vector(qid))
		var prevIDs map[int]bool
		var prevRecall float64
		var prevReps []linalg.Vector
		for it := 0; it < iters; it++ {
			results, _ := session.Searcher.KNN(engine.Metric(), wl.K)
			ids := resultIDs(results)
			_, recall := PrecisionRecall(ids, func(id int) bool {
				return oracle.Relevant(qcat, id)
			}, wl.K, total)

			if it > 0 {
				res.RecallGain[it] += recall - prevRecall
				res.ResultChurn[it] += churn(prevIDs, ids)
				if engine.Model() != nil {
					reps := engine.Model().Representatives()
					res.ModelDrift[it] += repDrift(prevReps, reps) / scale
					prevReps = reps
				}
			} else if engine.Model() != nil {
				prevReps = engine.Model().Representatives()
			}
			prevRecall = recall
			prevIDs = make(map[int]bool, len(ids))
			for _, id := range ids {
				prevIDs[id] = true
			}
			if it < iters-1 {
				engine.Feedback(oracle.Mark(qcat, ids, store.Vector))
			}
		}
	}
	n := float64(wl.NumQueries)
	for i := range res.RecallGain {
		res.RecallGain[i] /= n
		res.ResultChurn[i] /= n
		res.ModelDrift[i] /= n
	}
	return res
}

// churn returns the fraction of cur not present in prev.
func churn(prev map[int]bool, cur []int) float64 {
	if len(cur) == 0 {
		return 0
	}
	changed := 0
	for _, id := range cur {
		if !prev[id] {
			changed++
		}
	}
	return float64(changed) / float64(len(cur))
}

// repDrift sums, over current representatives, the distance to the
// nearest previous representative (0 when there was no previous model).
func repDrift(prev, cur []linalg.Vector) float64 {
	if len(prev) == 0 {
		return 0
	}
	var sum float64
	for _, c := range cur {
		best := math.Inf(1)
		for _, p := range prev {
			if d := c.Dist(p); d < best {
				best = d
			}
		}
		sum += best
	}
	return sum
}

// featureScale estimates the feature-space scale as the RMS distance of
// vectors from their mean, for normalizing drift values.
func featureScale(vecs []linalg.Vector) float64 {
	if len(vecs) == 0 {
		return 1
	}
	mean := linalg.NewVector(vecs[0].Dim())
	for _, v := range vecs {
		mean.AddScaled(1, v)
	}
	mean = mean.Scale(1 / float64(len(vecs)))
	var s float64
	for _, v := range vecs {
		s += v.SqDist(mean)
	}
	s = math.Sqrt(s / float64(len(vecs)))
	if s == 0 {
		return 1
	}
	return s
}
