package eval

import (
	"math/rand"
	"sort"

	"repro/internal/distance"
	"repro/internal/linalg"
	"repro/internal/synth"
)

// Example3Result is the outcome of the paper's Example 3 / Fig. 5
// demonstration: a disjunctive query over a uniform cube.
type Example3Result struct {
	// TotalPoints is the generated cube population (paper: 10,000).
	TotalPoints int
	// WithinRadius counts points within 1.0 Euclidean units of either
	// corner center (the paper reports 820 retrieved points).
	WithinRadius int
	// Retrieved holds the ids retrieved by ranking with the aggregate
	// disjunctive distance (Eq. 5) and cutting at WithinRadius — for the
	// scatter-plot check that both corners are covered.
	Retrieved []int
	// PerCenter counts retrieved points nearest to each of the two
	// centers: a working disjunctive query covers both.
	PerCenter [2]int
	// Points is the generated population (for plotting/export).
	Points []linalg.Vector
}

// RunExample3 reproduces Example 3: 10,000 points uniform in (-2,2)³,
// query = two unit-weight clusters at (-1,-1,-1) and (1,1,1) with
// identity (diagonal) covariance, ranked by Eq. 5.
func RunExample3(seed int64) Example3Result {
	rng := rand.New(rand.NewSource(seed))
	const n = 10000
	pts := synth.UniformCube(rng, n, 3, -2, 2)
	centers := []linalg.Vector{{-1, -1, -1}, {1, 1, 1}}

	res := Example3Result{TotalPoints: n, Points: pts}
	res.WithinRadius = synth.CountWithin(pts, centers, 1.0)

	// Eq. 5 with diagonal S = I and m_i = 1 (the example's setting).
	parts := []*distance.Quadratic{
		distance.NewQuadraticDiag(centers[0], linalg.Vector{1, 1, 1}),
		distance.NewQuadraticDiag(centers[1], linalg.Vector{1, 1, 1}),
	}
	metric := distance.NewDisjunctive(parts, []float64{1, 1})

	type scored struct {
		id int
		d  float64
	}
	all := make([]scored, n)
	for i, p := range pts {
		all[i] = scored{i, metric.Eval(p)}
	}
	// Rank and take the WithinRadius smallest.
	k := res.WithinRadius
	sort.Slice(all, func(i, j int) bool { return all[i].d < all[j].d })
	res.Retrieved = make([]int, k)
	for i := 0; i < k; i++ {
		id := all[i].id
		res.Retrieved[i] = id
		if pts[id].SqDist(centers[0]) < pts[id].SqDist(centers[1]) {
			res.PerCenter[0]++
		} else {
			res.PerCenter[1]++
		}
	}
	return res
}
