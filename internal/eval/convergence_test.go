package eval

import (
	"testing"

	"repro/internal/dataset"
)

func TestRunConvergence(t *testing.T) {
	ds := testDataset(t)
	cfg := RetrievalConfig{
		DS: ds, Feature: dataset.ColorMoments,
		NumQueries: 8, Iterations: 4, K: 20, Seed: 3,
	}
	res := RunConvergence(cfg)
	if len(res.RecallGain) != 5 {
		t.Fatalf("series length = %d", len(res.RecallGain))
	}
	// First-iteration gain dominates the tail (fast convergence).
	tail := res.RecallGain[3] + res.RecallGain[4]
	if res.RecallGain[1] <= 0 {
		t.Errorf("first-iteration gain = %v, want > 0", res.RecallGain[1])
	}
	if tail > res.RecallGain[1] {
		t.Errorf("tail gain %v exceeds first-iteration gain %v", tail, res.RecallGain[1])
	}
	// Churn decreases from the first to the last refinement.
	if res.ResultChurn[len(res.ResultChurn)-1] > res.ResultChurn[1] {
		t.Errorf("churn grew: %v -> %v", res.ResultChurn[1],
			res.ResultChurn[len(res.ResultChurn)-1])
	}
	for i := 1; i < 5; i++ {
		if res.ResultChurn[i] < 0 || res.ResultChurn[i] > 1 {
			t.Fatalf("churn[%d] = %v out of range", i, res.ResultChurn[i])
		}
		if res.ModelDrift[i] < 0 {
			t.Fatalf("drift[%d] = %v negative", i, res.ModelDrift[i])
		}
	}
}

func TestChurnAndDriftHelpers(t *testing.T) {
	prev := map[int]bool{1: true, 2: true}
	if got := churn(prev, []int{1, 3}); got != 0.5 {
		t.Errorf("churn = %v", got)
	}
	if got := churn(prev, nil); got != 0 {
		t.Errorf("churn(empty) = %v", got)
	}
	if got := repDrift(nil, nil); got != 0 {
		t.Errorf("repDrift(no prev) = %v", got)
	}
}

func TestRunAblationsShape(t *testing.T) {
	wcfg := VectorWorldConfig{Seed: 1, NumCategories: 8, PerCategory: 30}
	cfg := WorkloadConfig{NumQueries: 4, Iterations: 2, K: 40, Seed: 2, UseIndex: true, RelatedScore: -1}
	out := RunAblations(cfg, wcfg)
	if len(out) != 5 {
		t.Fatalf("ablation cases = %d", len(out))
	}
	names := map[string]bool{}
	for _, r := range out {
		names[r.Name] = true
		if len(r.Series.Recall) != 3 {
			t.Fatalf("%s: series length %d", r.Name, len(r.Series.Recall))
		}
	}
	for _, want := range []string{"full", "raw-covariances", "plain-chi2-radius", "no-overlap-merge", "all-off"} {
		if !names[want] {
			t.Errorf("missing ablation %q", want)
		}
	}
}
