package eval

import (
	"math/rand"
	"sort"

	"repro/internal/cluster"
	"repro/internal/linalg"
	"repro/internal/pca"
	"repro/internal/stat"
	"repro/internal/synth"
)

// T2Config parameterizes the Hotelling-T² accuracy studies behind
// Tables 2-3 and the Q-Q plots of Figs. 18-19: pairs of size-30 clusters
// drawn in ℝ¹⁶ (elliptical, so the PCA spectrum decays like the paper's
// variation-ratio column), PCA-projected to each target dimension.
type T2Config struct {
	// SameMean selects the H0-true study (Table 2) or the
	// different-means study (Table 3).
	SameMean bool
	Scheme   cluster.Scheme
	// Dims are the PCA target dimensionalities (paper: 12, 9, 6, 3).
	Dims []int
	// Pairs is the number of cluster pairs (paper: 100).
	Pairs int
	// N is the per-cluster size (paper: 30).
	N int
	// MeanDist separates the centers when SameMean is false.
	MeanDist float64
	// Alpha is the test significance level (paper: 0.05).
	Alpha float64
	Seed  int64
}

func (c T2Config) withDefaults() T2Config {
	if len(c.Dims) == 0 {
		c.Dims = []int{12, 9, 6, 3}
	}
	if c.Pairs <= 0 {
		c.Pairs = 100
	}
	if c.N <= 0 {
		c.N = 30
	}
	if c.MeanDist <= 0 {
		c.MeanDist = 4.5
	}
	if c.Alpha <= 0 {
		c.Alpha = 0.05
	}
	return c
}

// T2Row is one row of Table 2/3. Following the paper's tables, the T²
// column is reported on the F scale — T² · (m-p-1)/(p(m-2)) — so that it
// compares directly against the quantile-F critical value (under H0 its
// mean is ≈ 1, matching the paper's 0.44-1.03 same-mean values).
type T2Row struct {
	Dim int
	// VariationRatio is the proportion of total variation covered by the
	// first Dim principal components.
	VariationRatio float64
	// AvgT2 is the mean F-scaled T² statistic over the pairs.
	AvgT2 float64
	// QuantileF is the paper's "quantile-F" column: the upper 95th
	// percentile F_{p, n-p}(0.05) for n = 2N objects.
	QuantileF float64
	// ErrorRatio is the percentage of wrong merge decisions: rejecting
	// H0 for same-mean pairs, or accepting it for different-mean pairs.
	ErrorRatio float64
}

// RunT2 produces the rows of Table 2 (SameMean) or Table 3 (!SameMean)
// under the configured scheme.
func RunT2(cfg T2Config) []T2Row {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))

	rows := make([]T2Row, len(cfg.Dims))
	for i, dim := range cfg.Dims {
		rows[i].Dim = dim
	}
	n := float64(2 * cfg.N)
	for i, dim := range cfg.Dims {
		rows[i].QuantileF = stat.FQuantile(1-cfg.Alpha, float64(dim), n-float64(dim))
	}
	for p := 0; p < cfg.Pairs; p++ {
		a, b := synth.ClusterPair(rng, synth.PairSpec{
			Dim: 16, N: cfg.N,
			SameMean: cfg.SameMean, MeanDist: cfg.MeanDist,
			Shape: synth.Elliptical,
		})
		fitted, err := pca.Fit(append(append([]linalg.Vector{}, a...), b...))
		if err != nil {
			panic(err)
		}
		for i, dim := range cfg.Dims {
			ca, cb := clusterOf(fitted, a, dim), clusterOf(fitted, b, dim)
			t2 := cluster.T2(ca, cb, cfg.Scheme)
			// F scale: under H0, scaled ~ F(p, m-p-1).
			p64 := float64(dim)
			scaled := t2 * (n - p64 - 1) / (p64 * (n - 2))
			rows[i].AvgT2 += scaled
			rows[i].VariationRatio += fitted.VarianceRatio(dim)
			merge := scaled <= rows[i].QuantileF
			wrong := (cfg.SameMean && !merge) || (!cfg.SameMean && merge)
			if wrong {
				rows[i].ErrorRatio++
			}
		}
	}
	for i := range cfg.Dims {
		rows[i].AvgT2 /= float64(cfg.Pairs)
		rows[i].VariationRatio /= float64(cfg.Pairs)
		rows[i].ErrorRatio *= 100 / float64(cfg.Pairs)
	}
	return rows
}

func clusterOf(fitted *pca.PCA, vecs []linalg.Vector, dim int) *cluster.Cluster {
	c := cluster.New(dim)
	for i, v := range vecs {
		c.Add(cluster.Point{ID: i, Vec: fitted.Project(v, dim), Score: 1})
	}
	return c
}

// QQPoint pairs an ordered T² value with an ordered critical distance —
// one point of the quantile-quantile plots of Figs. 18-19.
type QQPoint struct {
	T2 float64
	C2 float64
	// SameMean records which population the (unordered) pair at this
	// index came from, for series labelling.
	SameMean bool
}

// RunQQ generates the Q-Q plot data of Figs. 18-19: half the pairs share
// a mean, half differ; T² values (F-scaled) are computed under the
// scheme; critical distances come from random F draws (Eq. 20), both
// sorted ascending and rank-paired. The returned threshold is the actual
// decision critical value — the upper 95th percentile of F — against
// which the merge test compares each statistic.
func RunQQ(scheme cluster.Scheme, pairs, dim int, seed int64) ([]QQPoint, float64) {
	if pairs%2 != 0 {
		pairs++
	}
	rng := rand.New(rand.NewSource(seed))
	const fullDim = 16
	n := 30

	m := float64(2 * n)
	fScale := (m - float64(dim) - 1) / (float64(dim) * (m - 2))

	t2s := make([]float64, 0, pairs)
	same := make([]bool, 0, pairs)
	for p := 0; p < pairs; p++ {
		sameMean := p < pairs/2
		a, b := synth.ClusterPair(rng, synth.PairSpec{
			Dim: fullDim, N: n,
			SameMean: sameMean, MeanDist: 4.5,
			Shape: synth.Elliptical,
		})
		fitted, err := pca.Fit(append(append([]linalg.Vector{}, a...), b...))
		if err != nil {
			panic(err)
		}
		ca, cb := clusterOf(fitted, a, dim), clusterOf(fitted, b, dim)
		// F-scaled, as in Tables 2-3, so the critical distances below are
		// plain random-F draws (Eq. 20).
		t2s = append(t2s, fScale*cluster.T2(ca, cb, scheme))
		same = append(same, sameMean)
	}

	// Critical distances from random F draws (Eq. 20).
	c2s := make([]float64, pairs)
	for i := range c2s {
		c2s[i] = stat.RandomF(rng, dim, int(m)-dim-1)
	}

	// Order both ascending and pair them.
	type tagged struct {
		v    float64
		same bool
	}
	tt := make([]tagged, pairs)
	for i := range tt {
		tt[i] = tagged{t2s[i], same[i]}
	}
	sort.Slice(tt, func(i, j int) bool { return tt[i].v < tt[j].v })
	sort.Float64s(c2s)
	out := make([]QQPoint, pairs)
	for i := range out {
		out[i] = QQPoint{T2: tt[i].v, C2: c2s[i], SameMean: tt[i].same}
	}
	return out, stat.FQuantile(0.95, float64(dim), m-float64(dim)-1)
}
