package eval

import (
	"testing"

	"repro/internal/core"
	"repro/internal/rf"
)

func TestBuildVectorWorldLayout(t *testing.T) {
	cfg := VectorWorldConfig{Seed: 1, NumCategories: 10, PerCategory: 30}
	w := BuildVectorWorld(cfg)
	if w.NumCategories != 10 {
		t.Fatalf("NumCategories = %d", w.NumCategories)
	}
	counts := map[int]int{}
	for _, l := range w.Labels {
		counts[l]++
	}
	for cat := 0; cat < 10; cat++ {
		if counts[cat] != 30 {
			t.Errorf("category %d has %d points", cat, counts[cat])
		}
	}
	// Complex categories (first half) contribute clutter under the
	// shared clutter label.
	if counts[10] != 5*cfg.withDefaults().ClutterPerCategory {
		t.Errorf("clutter count = %d", counts[10])
	}
	if len(w.Vectors) != len(w.Labels) {
		t.Error("vectors/labels length mismatch")
	}
	// Complexity predicate: first half complex.
	if !w.ComplexCategory(cfg, 0) || w.ComplexCategory(cfg, 9) {
		t.Error("ComplexCategory cutoff wrong")
	}
}

func TestBuildVectorWorldDeterministic(t *testing.T) {
	cfg := VectorWorldConfig{Seed: 2, NumCategories: 6, PerCategory: 10}
	a := BuildVectorWorld(cfg)
	b := BuildVectorWorld(cfg)
	for i := range a.Vectors {
		if !a.Vectors[i].Equal(b.Vectors[i], 0) {
			t.Fatal("world not deterministic")
		}
	}
}

func TestVectorWorldComplexQueryAdvantage(t *testing.T) {
	// On the controlled disjoint-mode geometry, Qcluster must beat the
	// single-contour baselines on complex queries — the paper's headline
	// phenomenon in its cleanest form.
	wcfg := VectorWorldConfig{Seed: 3, NumCategories: 16, PerCategory: 60}
	w := BuildVectorWorld(wcfg)
	cfg := WorkloadConfig{
		NumQueries: 16, Iterations: 4, K: 100,
		Seed: 5, UseIndex: true, RelatedScore: -1,
	}
	qc := RunVectorRetrieval(cfg, w, wcfg, true, func() rf.Engine {
		return rf.NewQcluster(core.Options{})
	})
	qpm := RunVectorRetrieval(cfg, w, wcfg, true, func() rf.Engine {
		return rf.NewQPM()
	})
	last := len(qc.Recall) - 1
	if qc.Recall[last] <= qpm.Recall[last] {
		t.Errorf("Qcluster %.3f <= QPM %.3f on complex queries",
			qc.Recall[last], qpm.Recall[last])
	}
	// Multipoint actually engaged.
	if qc.QueryPoints[last] < 1.5 {
		t.Errorf("mean query points = %.2f, want > 1.5", qc.QueryPoints[last])
	}
}
