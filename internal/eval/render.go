package eval

import (
	"fmt"
	"strings"
)

// RenderSeriesTable formats per-iteration series for several engines as
// an aligned text table: one row per iteration, one column per engine.
func RenderSeriesTable(title, valueName string, series []EngineSeries, pick func(EngineSeries) []float64) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-10s", "iteration")
	for _, s := range series {
		fmt.Fprintf(&b, " %14s", s.Name)
	}
	fmt.Fprintf(&b, "   (%s)\n", valueName)
	if len(series) == 0 {
		return b.String()
	}
	n := len(pick(series[0]))
	for i := 0; i < n; i++ {
		fmt.Fprintf(&b, "%-10d", i)
		for _, s := range series {
			fmt.Fprintf(&b, " %14.4f", pick(s)[i])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderPRCurves formats per-iteration precision-recall curves, sampled
// at a handful of scopes to stay readable.
func RenderPRCurves(title string, curves [][]PRPoint, scopes []int) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-6s %-6s", "iter", "scope")
	fmt.Fprintf(&b, " %10s %10s\n", "precision", "recall")
	for it, curve := range curves {
		for _, s := range scopes {
			if s < 1 || s > len(curve) {
				continue
			}
			p := curve[s-1]
			fmt.Fprintf(&b, "%-6d %-6d %10.4f %10.4f\n", it, p.Scope, p.Precision, p.Recall)
		}
	}
	return b.String()
}

// RenderClassification formats the error-rate grid of Figs. 14-17.
func RenderClassification(title string, res ClassificationResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-12s", "inter-dist")
	for _, d := range res.Config.Dims {
		fmt.Fprintf(&b, " %8s", fmt.Sprintf("dim=%d", d))
	}
	b.WriteString("   (error rate)\n")
	for ii, dist := range res.Config.InterDists {
		fmt.Fprintf(&b, "%-12.2f", dist)
		for di := range res.Config.Dims {
			fmt.Fprintf(&b, " %8.4f", res.Err[di][ii])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// RenderT2Table formats Table 2/3 rows.
func RenderT2Table(title string, rows []T2Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-5s %-10s %-10s %-11s %-10s\n",
		"dim", "var-ratio", "avg-T2", "quantile-F", "error(%)")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-5d %-10.3f %-10.2f %-11.2f %-10.1f\n",
			r.Dim, r.VariationRatio, r.AvgT2, r.QuantileF, r.ErrorRatio)
	}
	return b.String()
}

// RenderQQ formats Q-Q plot data (sampled every `step` points).
func RenderQQ(title string, pts []QQPoint, step int) string {
	if step < 1 {
		step = 1
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", title)
	fmt.Fprintf(&b, "%-8s %-12s %-12s %s\n", "idx", "T2", "c2", "verdict")
	for i := 0; i < len(pts); i += step {
		p := pts[i]
		verdict := "merge (T2<=c2)"
		if p.T2 > p.C2 {
			verdict = "separate"
		}
		fmt.Fprintf(&b, "%-8d %-12.3f %-12.3f %s\n", i, p.T2, p.C2, verdict)
	}
	return b.String()
}

// RenderExample3 formats the Fig. 5 demonstration.
func RenderExample3(r Example3Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Example 3 / Fig. 5: disjunctive query over a uniform cube\n")
	fmt.Fprintf(&b, "points generated:           %d\n", r.TotalPoints)
	fmt.Fprintf(&b, "within 1.0 of either corner: %d (paper: 820)\n", r.WithinRadius)
	fmt.Fprintf(&b, "retrieved by Eq.5 ranking:   %d\n", len(r.Retrieved))
	fmt.Fprintf(&b, "  near (-1,-1,-1): %d\n", r.PerCenter[0])
	fmt.Fprintf(&b, "  near ( 1, 1, 1): %d\n", r.PerCenter[1])
	return b.String()
}
