package linalg

import (
	"math"
	"math/rand"
	"testing"
)

// randomSPD returns a random symmetric positive-definite matrix with
// condition number controlled by the diagonal boost.
func randomSPD(rng *rand.Rand, n int, boost float64) *Matrix {
	a := NewMatrix(n, n)
	for i := range a.Data {
		a.Data[i] = rng.NormFloat64()
	}
	spd := a.Mul(a.T())
	for i := 0; i < n; i++ {
		spd.Data[i*n+i] += boost
	}
	return spd
}

func TestCholeskyUpperReconstructs(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for _, n := range []int{1, 2, 3, 8, 17, 32} {
		m := randomSPD(rng, n, 0.5)
		u, err := m.CholeskyUpper()
		if err != nil {
			t.Fatalf("n=%d: CholeskyUpper: %v", n, err)
		}
		ud := u.Dense()
		got := ud.T().Mul(ud) // Uᵀ U must equal m
		if !got.Equal(m, 1e-9) {
			t.Fatalf("n=%d: UᵀU != m\n%v\nvs\n%v", n, got, m)
		}
	}
}

func TestCholeskyUpperQuadFormIdentity(t *testing.T) {
	// v' m v == ||U v||² up to rounding — the whitening identity the
	// full-scheme distance relies on.
	rng := rand.New(rand.NewSource(72))
	for _, n := range []int{2, 5, 16} {
		m := randomSPD(rng, n, 1)
		u, err := m.CholeskyUpper()
		if err != nil {
			t.Fatal(err)
		}
		for trial := 0; trial < 20; trial++ {
			v := make(Vector, n)
			for i := range v {
				v[i] = rng.NormFloat64() * 2
			}
			want := m.QuadForm(v)
			uv := u.MulVec(v)
			got := uv.Dot(uv)
			if math.Abs(got-want) > 1e-9*(1+math.Abs(want)) {
				t.Fatalf("n=%d: ||Uv||²=%v, v'mv=%v", n, got, want)
			}
		}
	}
}

func TestCholeskyUpperNotPD(t *testing.T) {
	m := FromRows([]Vector{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := m.CholeskyUpper(); err == nil {
		t.Fatal("expected ErrSingular for an indefinite matrix")
	}
}

func TestUpperTriAtPanicsBelowDiagonal(t *testing.T) {
	u := &UpperTri{N: 2, Data: []float64{1, 2, 3}}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	u.At(1, 0)
}

// The floor must sit below the true smallest eigenvalue (soundness —
// it feeds a lower bound the k-NN search prunes with) and within a few
// percent of it (tightness — a sloppy floor weakens pruning).
func TestSymLambdaMinFloorSoundAndTight(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	for _, n := range []int{1, 2, 3, 8, 16, 32} {
		for trial := 0; trial < 10; trial++ {
			m := randomSPD(rng, n, 0.1+rng.Float64()*3)
			vals, _ := EigenSym(m)
			trueMin := vals[len(vals)-1]
			floor := SymLambdaMinFloor(m)
			if floor > trueMin*(1+1e-9) {
				t.Fatalf("n=%d: floor %v exceeds true λ_min %v", n, floor, trueMin)
			}
			if floor < 0 {
				t.Fatalf("n=%d: negative floor %v for a PD matrix", n, floor)
			}
			// Bisection terminates at 0.1% of the ceiling, so allow a
			// modest relative slack against the true minimum.
			if trueMin > 0 && floor < trueMin*0.98 {
				t.Fatalf("n=%d: floor %v too loose for λ_min %v", n, floor, trueMin)
			}
		}
	}
}

func TestSymLambdaMinFloorIllConditioned(t *testing.T) {
	// Strong off-diagonal coupling: Gershgorin alone would give 0, the
	// bisection must still certify a positive floor.
	m := FromRows([]Vector{{2, 1.9}, {1.9, 2}}) // eigenvalues 3.9, 0.1
	floor := SymLambdaMinFloor(m)
	if floor <= 0 || floor > 0.1+1e-9 {
		t.Fatalf("floor = %v, want in (0, 0.1]", floor)
	}
}

func BenchmarkLambdaMinFloorVsEigen32(b *testing.B) {
	rng := rand.New(rand.NewSource(74))
	m := randomSPD(rng, 32, 1)
	b.Run("floor", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			SymLambdaMinFloor(m)
		}
	})
	b.Run("eigen", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			EigenSym(m)
		}
	})
}
