package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestInverseKnown(t *testing.T) {
	m := FromRows([]Vector{{4, 7}, {2, 6}})
	inv, err := m.Inverse()
	if err != nil {
		t.Fatal(err)
	}
	want := FromRows([]Vector{{0.6, -0.7}, {-0.2, 0.4}})
	if !inv.Equal(want, 1e-12) {
		t.Errorf("Inverse = \n%v", inv)
	}
}

func TestInverseRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(10)
		m := randSPD(rng, n)
		inv, err := m.Inverse()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !m.Mul(inv).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: m·m⁻¹ != I", trial)
		}
		if !inv.Mul(m).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: m⁻¹·m != I", trial)
		}
	}
}

func TestInverseSingular(t *testing.T) {
	m := FromRows([]Vector{{1, 2}, {2, 4}})
	if _, err := m.Inverse(); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestSolve(t *testing.T) {
	m := FromRows([]Vector{{2, 1}, {1, 3}})
	x, err := m.Solve(Vector{3, 5})
	if err != nil {
		t.Fatal(err)
	}
	if !m.MulVec(x).Equal(Vector{3, 5}, 1e-12) {
		t.Errorf("Solve residual too large: x = %v", x)
	}
}

func TestCholesky(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(8)
		m := randSPD(rng, n)
		l, err := m.Cholesky()
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if !l.Mul(l.T()).Equal(m, 1e-8) {
			t.Fatalf("trial %d: L·L' != m", trial)
		}
		// Lower triangular: zeros above the diagonal.
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if l.At(i, j) != 0 {
					t.Fatalf("trial %d: L not lower-triangular", trial)
				}
			}
		}
	}
}

func TestCholeskyNotPD(t *testing.T) {
	m := FromRows([]Vector{{1, 2}, {2, 1}}) // eigenvalues 3, -1
	if _, err := m.Cholesky(); err != ErrSingular {
		t.Errorf("err = %v, want ErrSingular", err)
	}
}

func TestDetKnown(t *testing.T) {
	m := FromRows([]Vector{{1, 2}, {3, 4}})
	if got := m.Det(); !almostEq(got, -2, 1e-12) {
		t.Errorf("Det = %v, want -2", got)
	}
	if got := Identity(5).Det(); !almostEq(got, 1, 1e-12) {
		t.Errorf("Det(I) = %v", got)
	}
	sing := FromRows([]Vector{{1, 2}, {2, 4}})
	if got := sing.Det(); got != 0 {
		t.Errorf("Det(singular) = %v", got)
	}
}

func TestDetProductRule(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		a := randMat(rng, 4, 4)
		b := randMat(rng, 4, 4)
		got := a.Mul(b).Det()
		want := a.Det() * b.Det()
		if math.Abs(got-want) > 1e-8*math.Max(1, math.Abs(want)) {
			t.Fatalf("det(AB)=%v det(A)det(B)=%v", got, want)
		}
	}
}

func TestLogDet(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 20; trial++ {
		m := randSPD(rng, 5)
		logAbs, sign := m.LogDet()
		if sign != 1 {
			t.Fatalf("SPD matrix must have positive determinant, sign=%d", sign)
		}
		want := math.Log(m.Det())
		if !almostEq(logAbs, want, 1e-8) {
			t.Fatalf("LogDet = %v, want %v", logAbs, want)
		}
	}
	// Negative determinant.
	m := FromRows([]Vector{{0, 1}, {1, 0}})
	logAbs, sign := m.LogDet()
	if sign != -1 || !almostEq(logAbs, 0, 1e-12) {
		t.Errorf("LogDet(perm) = %v, %d", logAbs, sign)
	}
	// Singular.
	if _, sign := FromRows([]Vector{{1, 1}, {1, 1}}).LogDet(); sign != 0 {
		t.Error("singular matrix must report sign 0")
	}
}

func TestInverseOrRegularized(t *testing.T) {
	// Singular PSD matrix: rank-1 outer product.
	v := Vector{1, 2, 3}
	m := v.Outer(v)
	inv := m.InverseOrRegularized(1e-8)
	if inv == nil {
		t.Fatal("nil inverse")
	}
	// The regularized inverse of (m + ridge I) must satisfy the ridge
	// equation approximately: (m + r I) inv ≈ I for some small r. We just
	// check it is finite and symmetric-ish.
	for _, x := range inv.Data {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatal("regularized inverse has non-finite entries")
		}
	}
	// Non-singular input must match the plain inverse.
	rng := rand.New(rand.NewSource(19))
	spd := randSPD(rng, 4)
	want, _ := spd.Inverse()
	if got := spd.InverseOrRegularized(1e-8); !got.Equal(want, 1e-10) {
		t.Error("regularized path must not perturb non-singular input")
	}
}
