package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func randVec(rng *rand.Rand, n int) Vector {
	v := make(Vector, n)
	for i := range v {
		v[i] = rng.NormFloat64()
	}
	return v
}

func TestVectorAddSub(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{4, -5, 6}
	if got := v.Add(w); !got.Equal(Vector{5, -3, 9}, 0) {
		t.Errorf("Add = %v", got)
	}
	if got := v.Sub(w); !got.Equal(Vector{-3, 7, -3}, 0) {
		t.Errorf("Sub = %v", got)
	}
}

func TestVectorSubInto(t *testing.T) {
	v := Vector{1, 2, 3}
	w := Vector{0.5, 1, 1.5}
	dst := v.SubInto(nil, w)
	if !dst.Equal(Vector{0.5, 1, 1.5}, 0) {
		t.Errorf("SubInto = %v", dst)
	}
	// Reuse the same buffer.
	dst2 := v.SubInto(dst, v)
	if &dst2[0] != &dst[0] {
		t.Error("SubInto did not reuse buffer")
	}
	if !dst2.Equal(Vector{0, 0, 0}, 0) {
		t.Errorf("SubInto reuse = %v", dst2)
	}
}

func TestVectorScaleDot(t *testing.T) {
	v := Vector{1, 2, 3}
	if got := v.Scale(2); !got.Equal(Vector{2, 4, 6}, 0) {
		t.Errorf("Scale = %v", got)
	}
	if got := v.Dot(Vector{1, 1, 1}); got != 6 {
		t.Errorf("Dot = %v", got)
	}
}

func TestVectorAddScaled(t *testing.T) {
	v := Vector{1, 1, 1}
	v.AddScaled(2, Vector{1, 2, 3})
	if !v.Equal(Vector{3, 5, 7}, 0) {
		t.Errorf("AddScaled = %v", v)
	}
}

func TestVectorNormDist(t *testing.T) {
	v := Vector{3, 4}
	if got := v.Norm(); got != 5 {
		t.Errorf("Norm = %v", got)
	}
	if got := v.Dist(Vector{0, 0}); got != 5 {
		t.Errorf("Dist = %v", got)
	}
	if got := v.SqDist(Vector{0, 0}); got != 25 {
		t.Errorf("SqDist = %v", got)
	}
}

func TestVectorOuter(t *testing.T) {
	v := Vector{1, 2}
	w := Vector{3, 4, 5}
	m := v.Outer(w)
	want := FromRows([]Vector{{3, 4, 5}, {6, 8, 10}})
	if !m.Equal(want, 0) {
		t.Errorf("Outer = \n%v", m)
	}
}

func TestVectorDimMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	Vector{1}.Add(Vector{1, 2})
}

// Property: Cauchy-Schwarz |v·w| <= |v||w|.
func TestPropCauchySchwarz(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		v := clampVec(Vector{a, b, c})
		w := clampVec(Vector{d, e, g})
		return math.Abs(v.Dot(w)) <= v.Norm()*w.Norm()*(1+1e-9)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// Property: triangle inequality for the Euclidean distance.
func TestPropTriangleInequality(t *testing.T) {
	f := func(a, b, c, d, e, g float64) bool {
		u := clampVec(Vector{a, b})
		v := clampVec(Vector{c, d})
		w := clampVec(Vector{e, g})
		return u.Dist(w) <= u.Dist(v)+v.Dist(w)+1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// clampVec maps arbitrary quick-generated floats into a sane finite range.
func clampVec(v Vector) Vector {
	for i := range v {
		if math.IsNaN(v[i]) || math.IsInf(v[i], 0) {
			v[i] = 0
		}
		v[i] = math.Mod(v[i], 1e6)
	}
	return v
}
