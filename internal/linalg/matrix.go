package linalg

import (
	"fmt"
	"math"
	"strings"
)

// Matrix is a dense row-major matrix.
type Matrix struct {
	Rows, Cols int
	Data       []float64 // len == Rows*Cols, row-major
}

// NewMatrix returns a zero Rows x Cols matrix.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic("linalg: negative matrix dimensions")
	}
	return &Matrix{Rows: rows, Cols: cols, Data: make([]float64, rows*cols)}
}

// Identity returns the n x n identity matrix.
func Identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.Data[i*n+i] = 1
	}
	return m
}

// Diag returns a square matrix with d on the diagonal.
func Diag(d Vector) *Matrix {
	m := NewMatrix(len(d), len(d))
	for i, v := range d {
		m.Data[i*len(d)+i] = v
	}
	return m
}

// FromRows builds a matrix whose rows are the given vectors.
func FromRows(rows []Vector) *Matrix {
	if len(rows) == 0 {
		return NewMatrix(0, 0)
	}
	m := NewMatrix(len(rows), len(rows[0]))
	for i, r := range rows {
		if len(r) != m.Cols {
			panic("linalg: ragged rows")
		}
		copy(m.Row(i), r)
	}
	return m
}

// At returns m[i,j].
func (m *Matrix) At(i, j int) float64 { return m.Data[i*m.Cols+j] }

// Set assigns m[i,j] = v.
func (m *Matrix) Set(i, j int, v float64) { m.Data[i*m.Cols+j] = v }

// Row returns row i as a slice aliasing the matrix storage.
func (m *Matrix) Row(i int) Vector { return Vector(m.Data[i*m.Cols : (i+1)*m.Cols]) }

// Col returns a copy of column j.
func (m *Matrix) Col(j int) Vector {
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = m.Data[i*m.Cols+j]
	}
	return out
}

// Clone returns a deep copy of m.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.Rows, m.Cols)
	copy(c.Data, m.Data)
	return c
}

// Diagonal returns a copy of the main diagonal.
func (m *Matrix) Diagonal() Vector {
	n := m.Rows
	if m.Cols < n {
		n = m.Cols
	}
	out := make(Vector, n)
	for i := 0; i < n; i++ {
		out[i] = m.At(i, i)
	}
	return out
}

// T returns the transpose of m.
func (m *Matrix) T() *Matrix {
	t := NewMatrix(m.Cols, m.Rows)
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			t.Data[j*t.Cols+i] = m.Data[i*m.Cols+j]
		}
	}
	return t
}

// Add returns m + b.
func (m *Matrix) Add(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] + b.Data[i]
	}
	return out
}

// Sub returns m - b.
func (m *Matrix) Sub(b *Matrix) *Matrix {
	m.mustSameShape(b)
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = m.Data[i] - b.Data[i]
	}
	return out
}

// Scale returns s*m.
func (m *Matrix) Scale(s float64) *Matrix {
	out := NewMatrix(m.Rows, m.Cols)
	for i := range m.Data {
		out.Data[i] = s * m.Data[i]
	}
	return out
}

// AddScaledInPlace adds s*b to m in place.
func (m *Matrix) AddScaledInPlace(s float64, b *Matrix) {
	m.mustSameShape(b)
	for i := range m.Data {
		m.Data[i] += s * b.Data[i]
	}
}

// Mul returns the matrix product m b.
func (m *Matrix) Mul(b *Matrix) *Matrix {
	if m.Cols != b.Rows {
		panic(fmt.Sprintf("linalg: Mul shape mismatch (%dx%d)·(%dx%d)", m.Rows, m.Cols, b.Rows, b.Cols))
	}
	out := NewMatrix(m.Rows, b.Cols)
	for i := 0; i < m.Rows; i++ {
		mrow := m.Data[i*m.Cols : (i+1)*m.Cols]
		orow := out.Data[i*out.Cols : (i+1)*out.Cols]
		for k, mv := range mrow {
			if mv == 0 {
				continue
			}
			brow := b.Data[k*b.Cols : (k+1)*b.Cols]
			for j, bv := range brow {
				orow[j] += mv * bv
			}
		}
	}
	return out
}

// MulVec returns the matrix-vector product m v.
func (m *Matrix) MulVec(v Vector) Vector {
	if m.Cols != len(v) {
		panic(fmt.Sprintf("linalg: MulVec shape mismatch (%dx%d)·(%d)", m.Rows, m.Cols, len(v)))
	}
	out := make(Vector, m.Rows)
	for i := 0; i < m.Rows; i++ {
		out[i] = Vector(m.Data[i*m.Cols : (i+1)*m.Cols]).Dot(v)
	}
	return out
}

// QuadForm returns the quadratic form v' m v for square m.
func (m *Matrix) QuadForm(v Vector) float64 {
	if m.Rows != m.Cols || m.Rows != len(v) {
		panic("linalg: QuadForm shape mismatch")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		vi := v[i]
		if vi == 0 {
			continue
		}
		var r float64
		for j, mv := range row {
			r += mv * v[j]
		}
		s += vi * r
	}
	return s
}

// QuadFormDiff returns (x-c)' m (x-c) for square m without materializing
// the difference vector, so concurrent callers share no scratch state —
// the hot-path form behind the full-scheme quadratic distance when many
// search workers evaluate one metric at once.
func (m *Matrix) QuadFormDiff(x, c Vector) float64 {
	if m.Rows != m.Cols || m.Rows != len(x) || len(x) != len(c) {
		panic("linalg: QuadFormDiff shape mismatch")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		di := x[i] - c[i]
		if di == 0 {
			continue
		}
		row := m.Data[i*m.Cols : (i+1)*m.Cols]
		var r float64
		for j, mv := range row {
			r += mv * (x[j] - c[j])
		}
		s += di * r
	}
	return s
}

// BilinForm returns u' m v for square m.
func (m *Matrix) BilinForm(u, v Vector) float64 {
	if m.Rows != len(u) || m.Cols != len(v) {
		panic("linalg: BilinForm shape mismatch")
	}
	var s float64
	for i := 0; i < m.Rows; i++ {
		if u[i] == 0 {
			continue
		}
		s += u[i] * Vector(m.Data[i*m.Cols:(i+1)*m.Cols]).Dot(v)
	}
	return s
}

// IsSquare reports whether m is square.
func (m *Matrix) IsSquare() bool { return m.Rows == m.Cols }

// Equal reports whether m and b agree to within tol elementwise.
func (m *Matrix) Equal(b *Matrix, tol float64) bool {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		return false
	}
	for i := range m.Data {
		if math.Abs(m.Data[i]-b.Data[i]) > tol {
			return false
		}
	}
	return true
}

// Trace returns the sum of the diagonal of a square matrix.
func (m *Matrix) Trace() float64 {
	if !m.IsSquare() {
		panic("linalg: Trace of non-square matrix")
	}
	var t float64
	for i := 0; i < m.Rows; i++ {
		t += m.At(i, i)
	}
	return t
}

// String renders m for debugging.
func (m *Matrix) String() string {
	var b strings.Builder
	for i := 0; i < m.Rows; i++ {
		for j := 0; j < m.Cols; j++ {
			if j > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%10.5g", m.At(i, j))
		}
		b.WriteByte('\n')
	}
	return b.String()
}

func (m *Matrix) mustSameShape(b *Matrix) {
	if m.Rows != b.Rows || m.Cols != b.Cols {
		panic(fmt.Sprintf("linalg: shape mismatch %dx%d vs %dx%d", m.Rows, m.Cols, b.Rows, b.Cols))
	}
}
