package linalg

import (
	"math"
	"math/rand"
	"testing"
)

func TestEigenSymDiagonal(t *testing.T) {
	m := Diag(Vector{3, 1, 2})
	vals, vecs := EigenSym(m)
	if !vals.Equal(Vector{3, 2, 1}, 1e-12) {
		t.Errorf("values = %v", vals)
	}
	// Each eigenvector column must satisfy m v = λ v.
	for j := 0; j < 3; j++ {
		v := vecs.Col(j)
		mv := m.MulVec(v)
		if !mv.Equal(v.Scale(vals[j]), 1e-10) {
			t.Errorf("column %d is not an eigenvector", j)
		}
	}
}

func TestEigenSymKnown2x2(t *testing.T) {
	// [[2,1],[1,2]] has eigenvalues 3 and 1.
	m := FromRows([]Vector{{2, 1}, {1, 2}})
	vals, _ := EigenSym(m)
	if !vals.Equal(Vector{3, 1}, 1e-12) {
		t.Errorf("values = %v", vals)
	}
}

func TestEigenSymReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	for trial := 0; trial < 30; trial++ {
		n := 1 + rng.Intn(12)
		m := randSPD(rng, n)
		vals, vecs := EigenSym(m)

		// Descending order.
		for i := 1; i < n; i++ {
			if vals[i] > vals[i-1]+1e-10 {
				t.Fatalf("trial %d: eigenvalues not descending: %v", trial, vals)
			}
		}
		// Orthonormal columns: V' V = I.
		if !vecs.T().Mul(vecs).Equal(Identity(n), 1e-8) {
			t.Fatalf("trial %d: eigenvectors not orthonormal", trial)
		}
		// Reconstruction: V diag(vals) V' = m.
		recon := vecs.Mul(Diag(vals)).Mul(vecs.T())
		if !recon.Equal(m, 1e-7) {
			t.Fatalf("trial %d: reconstruction failed", trial)
		}
	}
}

func TestEigenSymTraceAndDet(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 20; trial++ {
		n := 2 + rng.Intn(6)
		m := randSPD(rng, n)
		vals, _ := EigenSym(m)
		var sum, prod float64 = 0, 1
		for _, v := range vals {
			sum += v
			prod *= v
		}
		if !almostEq(sum, m.Trace(), 1e-8*math.Max(1, math.Abs(m.Trace()))) {
			t.Fatalf("trial %d: Σλ=%v trace=%v", trial, sum, m.Trace())
		}
		det := m.Det()
		if math.Abs(prod-det) > 1e-6*math.Max(1, math.Abs(det)) {
			t.Fatalf("trial %d: Πλ=%v det=%v", trial, prod, det)
		}
	}
}

func TestEigenSymZeroMatrix(t *testing.T) {
	vals, vecs := EigenSym(NewMatrix(3, 3))
	if !vals.Equal(Vector{0, 0, 0}, 0) {
		t.Errorf("values = %v", vals)
	}
	if !vecs.T().Mul(vecs).Equal(Identity(3), 1e-12) {
		t.Error("eigenvectors of zero matrix must still be orthonormal")
	}
}
