package linalg

import (
	"math"
	"sort"
)

// EigenSym computes the eigendecomposition of a symmetric matrix using the
// cyclic Jacobi method. It returns the eigenvalues in descending order and
// the matrix whose COLUMNS are the corresponding orthonormal eigenvectors,
// i.e. m = V diag(values) V'.
//
// The Jacobi method is chosen because covariance matrices in this system
// are small (feature dimensions of 3-32) and the method is simple, robust
// and delivers orthogonal eigenvectors to machine precision — exactly what
// the PCA stage (paper Sec. 4.4) needs.
func EigenSym(m *Matrix) (values Vector, vectors *Matrix) {
	if !m.IsSquare() {
		panic("linalg: EigenSym of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	// Symmetrize defensively: callers pass covariance matrices that can
	// carry tiny asymmetries from floating-point accumulation.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			s := 0.5 * (a.At(i, j) + a.At(j, i))
			a.Set(i, j, s)
			a.Set(j, i, s)
		}
	}
	v := Identity(n)

	const maxSweeps = 100
	for sweep := 0; sweep < maxSweeps; sweep++ {
		// Sum of magnitudes of off-diagonal entries.
		var off float64
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				off += math.Abs(a.At(i, j))
			}
		}
		if off == 0 {
			break
		}
		for p := 0; p < n-1; p++ {
			for q := p + 1; q < n; q++ {
				apq := a.At(p, q)
				if apq == 0 {
					continue
				}
				app, aqq := a.At(p, p), a.At(q, q)
				// Skip negligible rotations.
				if math.Abs(apq) <= 1e-300 ||
					math.Abs(apq) < 1e-16*(math.Abs(app)+math.Abs(aqq)) {
					a.Set(p, q, 0)
					a.Set(q, p, 0)
					continue
				}
				theta := (aqq - app) / (2 * apq)
				var t float64
				if theta >= 0 {
					t = 1 / (theta + math.Sqrt(1+theta*theta))
				} else {
					t = -1 / (-theta + math.Sqrt(1+theta*theta))
				}
				c := 1 / math.Sqrt(1+t*t)
				s := t * c

				// Apply the rotation J(p,q,theta) from both sides: a = J' a J.
				for k := 0; k < n; k++ {
					akp, akq := a.At(k, p), a.At(k, q)
					a.Set(k, p, c*akp-s*akq)
					a.Set(k, q, s*akp+c*akq)
				}
				for k := 0; k < n; k++ {
					apk, aqk := a.At(p, k), a.At(q, k)
					a.Set(p, k, c*apk-s*aqk)
					a.Set(q, k, s*apk+c*aqk)
				}
				// Accumulate eigenvectors: v = v J.
				for k := 0; k < n; k++ {
					vkp, vkq := v.At(k, p), v.At(k, q)
					v.Set(k, p, c*vkp-s*vkq)
					v.Set(k, q, s*vkp+c*vkq)
				}
			}
		}
	}

	// Extract and sort in descending eigenvalue order.
	type pair struct {
		val float64
		idx int
	}
	pairs := make([]pair, n)
	for i := 0; i < n; i++ {
		pairs[i] = pair{a.At(i, i), i}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].val > pairs[j].val })

	values = make(Vector, n)
	vectors = NewMatrix(n, n)
	for outCol, p := range pairs {
		values[outCol] = p.val
		for r := 0; r < n; r++ {
			vectors.Set(r, outCol, v.At(r, p.idx))
		}
	}
	return values, vectors
}
