// Package linalg provides the dense linear-algebra primitives the Qcluster
// reproduction is built on: vectors, matrices, Gauss-Jordan inversion,
// Cholesky factorization and a Jacobi eigensolver for symmetric matrices.
//
// Everything is implemented on top of plain float64 slices so the higher
// layers (clustering, classification, PCA, distance functions) stay
// allocation-conscious and free of external dependencies.
package linalg

import (
	"fmt"
	"math"
)

// Vector is a dense column vector.
type Vector []float64

// NewVector returns a zero vector of dimension n.
func NewVector(n int) Vector { return make(Vector, n) }

// Clone returns a deep copy of v.
func (v Vector) Clone() Vector {
	c := make(Vector, len(v))
	copy(c, v)
	return c
}

// Dim returns the dimensionality of v.
func (v Vector) Dim() int { return len(v) }

// Add returns v + w.
func (v Vector) Add(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] + w[i]
	}
	return out
}

// Sub returns v - w.
func (v Vector) Sub(w Vector) Vector {
	mustSameDim(v, w)
	out := make(Vector, len(v))
	for i := range v {
		out[i] = v[i] - w[i]
	}
	return out
}

// SubInto writes v - w into dst, allocating only when dst is too small,
// and returns dst. It is the hot-path variant of Sub.
func (v Vector) SubInto(dst, w Vector) Vector {
	mustSameDim(v, w)
	if cap(dst) < len(v) {
		dst = make(Vector, len(v))
	}
	dst = dst[:len(v)]
	for i := range v {
		dst[i] = v[i] - w[i]
	}
	return dst
}

// Scale returns s*v.
func (v Vector) Scale(s float64) Vector {
	out := make(Vector, len(v))
	for i := range v {
		out[i] = s * v[i]
	}
	return out
}

// AddScaled adds s*w to v in place.
func (v Vector) AddScaled(s float64, w Vector) {
	mustSameDim(v, w)
	for i := range v {
		v[i] += s * w[i]
	}
}

// Dot returns the inner product v·w.
func (v Vector) Dot(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		s += v[i] * w[i]
	}
	return s
}

// Norm returns the Euclidean norm of v.
func (v Vector) Norm() float64 { return math.Sqrt(v.Dot(v)) }

// Dist returns the Euclidean distance between v and w.
func (v Vector) Dist(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return math.Sqrt(s)
}

// SqDist returns the squared Euclidean distance between v and w.
func (v Vector) SqDist(w Vector) float64 {
	mustSameDim(v, w)
	var s float64
	for i := range v {
		d := v[i] - w[i]
		s += d * d
	}
	return s
}

// Outer returns the outer product v w' as a Dim(v) x Dim(w) matrix.
func (v Vector) Outer(w Vector) *Matrix {
	m := NewMatrix(len(v), len(w))
	for i := range v {
		row := m.Row(i)
		for j := range w {
			row[j] = v[i] * w[j]
		}
	}
	return m
}

// Equal reports whether v and w agree to within tol in every component.
func (v Vector) Equal(w Vector, tol float64) bool {
	if len(v) != len(w) {
		return false
	}
	for i := range v {
		if math.Abs(v[i]-w[i]) > tol {
			return false
		}
	}
	return true
}

func mustSameDim(v, w Vector) {
	if len(v) != len(w) {
		panic(fmt.Sprintf("linalg: dimension mismatch %d vs %d", len(v), len(w)))
	}
}
