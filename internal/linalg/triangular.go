package linalg

import "math"

// UpperTri is a packed upper-triangular matrix: row j holds the entries
// U[j][j..n) contiguously, so Data has n(n+1)/2 components and a
// row-times-vector sweep walks memory strictly forward. It is the
// storage form of the whitening factor Lᵀ behind the full-scheme
// quadratic distance: packing halves the factor's footprint versus a
// dense matrix and keeps the hot triangular mat-vec cache-friendly.
type UpperTri struct {
	N    int
	Data []float64
}

// RowOff returns the offset of U[j][j] inside Data.
func (u *UpperTri) RowOff(j int) int { return j*u.N - j*(j-1)/2 }

// At returns U[i][j] for j >= i (entries below the diagonal are zero by
// definition and must not be requested).
func (u *UpperTri) At(i, j int) float64 {
	if j < i {
		panic("linalg: UpperTri.At below the diagonal")
	}
	return u.Data[u.RowOff(i)+j-i]
}

// Dense expands the packed factor into a full matrix (for tests/debug).
func (u *UpperTri) Dense() *Matrix {
	m := NewMatrix(u.N, u.N)
	for i := 0; i < u.N; i++ {
		off := u.RowOff(i)
		for j := i; j < u.N; j++ {
			m.Set(i, j, u.Data[off+j-i])
		}
	}
	return m
}

// MulVec returns U v (for tests; the hot paths inline the sweep).
func (u *UpperTri) MulVec(v Vector) Vector {
	if len(v) != u.N {
		panic("linalg: UpperTri.MulVec dimension mismatch")
	}
	out := make(Vector, u.N)
	for j := 0; j < u.N; j++ {
		off := u.RowOff(j)
		var s float64
		for i := j; i < u.N; i++ {
			s += u.Data[off+i-j] * v[i]
		}
		out[j] = s
	}
	return out
}

// CholeskyUpper factors a symmetric positive-definite m as m = Lᵀᵀ Lᵀ
// and returns the packed upper factor U = Lᵀ (so m = Uᵀ U and
// v' m v = ||U v||²). Only the lower triangle of m is read, matching
// Cholesky. Returns ErrSingular when m is not positive definite.
func (m *Matrix) CholeskyUpper() (*UpperTri, error) {
	l, err := m.Cholesky()
	if err != nil {
		return nil, err
	}
	n := m.Rows
	u := &UpperTri{N: n, Data: make([]float64, n*(n+1)/2)}
	for j := 0; j < n; j++ {
		off := u.RowOff(j)
		for i := j; i < n; i++ {
			u.Data[off+i-j] = l.At(i, j) // U[j][i] = L[i][j]
		}
	}
	return u, nil
}

// SymLambdaMinFloor returns a certified lower bound on the smallest
// eigenvalue of a symmetric positive-definite matrix, within a few
// percent of the true λ_min. The certificate is the positive-definite
// test itself: m - μI admitting a Cholesky factorization proves
// λ_min(m) > μ, so the bound is grown by bisection from the Gershgorin
// floor toward the min-diagonal ceiling using only O(p³/3) triangular
// factorization attempts per step — an order of magnitude cheaper than
// the Jacobi eigensolve it replaces on the metric-rebuild path. The
// returned value is shrunk by a one-ulp-scale safety factor so rounding
// inside the factorization can never certify past the true λ_min.
// Precondition: m positive definite (e.g. CholeskyUpper succeeded); for
// other input the Gershgorin floor (clamped at 0) is returned.
func SymLambdaMinFloor(m *Matrix) float64 {
	if !m.IsSquare() {
		panic("linalg: SymLambdaMinFloor of non-square matrix")
	}
	n := m.Rows
	if n == 0 {
		return 0
	}
	// Gershgorin: λ_min ≥ min_i (a_ii - Σ_{j≠i} |a_ij|); and for
	// symmetric m, λ_min ≤ min_i a_ii.
	lo, hi := math.Inf(1), math.Inf(1)
	for i := 0; i < n; i++ {
		row := m.Data[i*n : (i+1)*n]
		var off float64
		for j, v := range row {
			if j != i {
				off += math.Abs(v)
			}
		}
		if g := row[i] - off; g < lo {
			lo = g
		}
		if row[i] < hi {
			hi = row[i]
		}
	}
	if lo < 0 {
		lo = 0
	}
	if hi <= lo {
		return lo * (1 - 1e-9)
	}
	a := NewMatrix(n, n) // shifted copy, reused across attempts
	l := NewMatrix(n, n) // factor scratch, reused across attempts
	for iter := 0; iter < 24 && hi-lo > 1e-3*hi; iter++ {
		mid := lo + 0.5*(hi-lo)
		if mid <= lo || mid >= hi {
			break
		}
		if shiftedCholeskyOK(m, mid, a, l) {
			lo = mid
		} else {
			hi = mid
		}
	}
	return lo * (1 - 1e-9)
}

// shiftedCholeskyOK reports whether m - shift*I is positive definite by
// attempting an in-scratch Cholesky factorization (no allocation).
func shiftedCholeskyOK(m *Matrix, shift float64, a, l *Matrix) bool {
	n := m.Rows
	copy(a.Data, m.Data)
	for i := 0; i < n; i++ {
		a.Data[i*n+i] -= shift
	}
	for i := range l.Data {
		l.Data[i] = 0
	}
	for i := 0; i < n; i++ {
		li := l.Data[i*n : (i+1)*n]
		for j := 0; j <= i; j++ {
			sum := a.Data[i*n+j]
			lj := l.Data[j*n : (j+1)*n]
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 {
					return false
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return true
}
