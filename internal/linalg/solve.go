package linalg

import (
	"errors"
	"math"
)

// ErrSingular is returned when a matrix is numerically singular.
var ErrSingular = errors.New("linalg: matrix is singular")

// Inverse returns the inverse of a square matrix via Gauss-Jordan
// elimination with partial pivoting. It returns ErrSingular when a pivot
// falls below a tolerance scaled by the matrix magnitude.
func (m *Matrix) Inverse() (*Matrix, error) {
	if !m.IsSquare() {
		panic("linalg: Inverse of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	inv := Identity(n)

	// Tolerance scaled by the largest magnitude entry.
	var maxAbs float64
	for _, v := range a.Data {
		if av := math.Abs(v); av > maxAbs {
			maxAbs = av
		}
	}
	tol := 1e-12 * math.Max(maxAbs, 1)

	for col := 0; col < n; col++ {
		// Partial pivot: largest magnitude in column at/below the diagonal.
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best <= tol {
			return nil, ErrSingular
		}
		if pivot != col {
			swapRows(a, pivot, col)
			swapRows(inv, pivot, col)
		}
		// Normalize the pivot row.
		p := a.At(col, col)
		arow, irow := a.Row(col), inv.Row(col)
		for j := 0; j < n; j++ {
			arow[j] /= p
			irow[j] /= p
		}
		// Eliminate the column from every other row.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := a.At(r, col)
			if f == 0 {
				continue
			}
			ar, ir := a.Row(r), inv.Row(r)
			for j := 0; j < n; j++ {
				ar[j] -= f * arow[j]
				ir[j] -= f * irow[j]
			}
		}
	}
	return inv, nil
}

// Solve solves m x = b for square m using the LU-free Gauss-Jordan path.
func (m *Matrix) Solve(b Vector) (Vector, error) {
	inv, err := m.Inverse()
	if err != nil {
		return nil, err
	}
	return inv.MulVec(b), nil
}

// Cholesky returns the lower-triangular L with m = L L' for a symmetric
// positive-definite matrix, or ErrSingular when m is not positive definite.
func (m *Matrix) Cholesky() (*Matrix, error) {
	if !m.IsSquare() {
		panic("linalg: Cholesky of non-square matrix")
	}
	n := m.Rows
	l := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := m.At(i, j)
			li, lj := l.Row(i), l.Row(j)
			for k := 0; k < j; k++ {
				sum -= li[k] * lj[k]
			}
			if i == j {
				if sum <= 0 {
					return nil, ErrSingular
				}
				li[j] = math.Sqrt(sum)
			} else {
				li[j] = sum / lj[j]
			}
		}
	}
	return l, nil
}

// Det returns the determinant of a square matrix via LU decomposition with
// partial pivoting. A singular matrix yields 0.
func (m *Matrix) Det() float64 {
	if !m.IsSquare() {
		panic("linalg: Det of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	det := 1.0
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return 0
		}
		if pivot != col {
			swapRows(a, pivot, col)
			det = -det
		}
		p := a.At(col, col)
		det *= p
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			ar, ac := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				ar[j] -= f * ac[j]
			}
		}
	}
	return det
}

// LogDet returns ln|det m| and the sign of the determinant for a square
// matrix; sign 0 means the matrix is singular. This avoids overflow for
// high-dimensional covariance determinants used by the Bayesian classifier.
func (m *Matrix) LogDet() (logAbs float64, sign int) {
	if !m.IsSquare() {
		panic("linalg: LogDet of non-square matrix")
	}
	n := m.Rows
	a := m.Clone()
	sign = 1
	for col := 0; col < n; col++ {
		pivot := col
		best := math.Abs(a.At(col, col))
		for r := col + 1; r < n; r++ {
			if v := math.Abs(a.At(r, col)); v > best {
				best, pivot = v, r
			}
		}
		if best == 0 {
			return math.Inf(-1), 0
		}
		if pivot != col {
			swapRows(a, pivot, col)
			sign = -sign
		}
		p := a.At(col, col)
		if p < 0 {
			sign = -sign
		}
		logAbs += math.Log(math.Abs(p))
		for r := col + 1; r < n; r++ {
			f := a.At(r, col) / p
			if f == 0 {
				continue
			}
			ar, ac := a.Row(r), a.Row(col)
			for j := col; j < n; j++ {
				ar[j] -= f * ac[j]
			}
		}
	}
	return logAbs, sign
}

// InverseOrRegularized inverts m, retrying with an increasing ridge term
// eps*I on the diagonal when m is singular. This implements the
// regularization the paper cites for the small-sample covariance
// singularity problem (Zhou & Huang [21]). It always succeeds for
// symmetric positive semi-definite input.
func (m *Matrix) InverseOrRegularized(eps float64) *Matrix {
	inv, _ := m.InverseOrRegularizedInfo(eps)
	return inv
}

// InverseOrRegularizedInfo is InverseOrRegularized plus a report of
// whether the ridge fallback was needed: regularized is false when m
// inverted directly and true when the returned inverse is of a
// ridge-perturbed (or, in the last resort, identity-scaled) matrix.
// Callers surface this as a degraded-health signal instead of a crash.
func (m *Matrix) InverseOrRegularizedInfo(eps float64) (inv *Matrix, regularized bool) {
	if inv, err := m.Inverse(); err == nil {
		return inv, false
	}
	return m.RegularizedInverse(eps), true
}

// RegularizedInverse inverts m after unconditionally adding an
// increasing ridge eps*I scaled by the mean diagonal magnitude — the
// fallback path of InverseOrRegularized, exposed so fault-injection can
// force it even for well-conditioned matrices.
func (m *Matrix) RegularizedInverse(eps float64) *Matrix {
	if eps <= 0 {
		eps = 1e-8
	}
	// Scale the ridge by the mean diagonal magnitude so it is meaningful
	// for covariances of any magnitude.
	var meanDiag float64
	for i := 0; i < m.Rows; i++ {
		meanDiag += math.Abs(m.At(i, i))
	}
	if m.Rows > 0 {
		meanDiag /= float64(m.Rows)
	}
	if meanDiag == 0 {
		meanDiag = 1
	}
	ridge := eps * meanDiag
	for tries := 0; tries < 40; tries++ {
		r := m.Clone()
		for i := 0; i < r.Rows; i++ {
			r.Data[i*r.Cols+i] += ridge
		}
		if inv, err := r.Inverse(); err == nil {
			return inv
		}
		ridge *= 10
	}
	// Unreachable for PSD input; fall back to a scaled identity.
	return Identity(m.Rows).Scale(1 / math.Max(meanDiag, 1e-300))
}

func swapRows(m *Matrix, a, b int) {
	ra, rb := m.Row(a), m.Row(b)
	for j := range ra {
		ra[j], rb[j] = rb[j], ra[j]
	}
}
