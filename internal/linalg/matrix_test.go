package linalg

import (
	"math/rand"
	"testing"
)

func randMat(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data {
		m.Data[i] = rng.NormFloat64()
	}
	return m
}

// randSPD returns a random symmetric positive-definite matrix A A' + I.
func randSPD(rng *rand.Rand, n int) *Matrix {
	a := randMat(rng, n, n)
	m := a.Mul(a.T())
	for i := 0; i < n; i++ {
		m.Data[i*n+i] += 1
	}
	return m
}

func TestIdentityMul(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := randMat(rng, 4, 4)
	if got := Identity(4).Mul(m); !got.Equal(m, 1e-15) {
		t.Error("I·m != m")
	}
	if got := m.Mul(Identity(4)); !got.Equal(m, 1e-15) {
		t.Error("m·I != m")
	}
}

func TestMatrixTranspose(t *testing.T) {
	m := FromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	want := FromRows([]Vector{{1, 4}, {2, 5}, {3, 6}})
	if !m.T().Equal(want, 0) {
		t.Errorf("T = \n%v", m.T())
	}
	if !m.T().T().Equal(m, 0) {
		t.Error("double transpose != original")
	}
}

func TestMatrixAddSubScale(t *testing.T) {
	a := FromRows([]Vector{{1, 2}, {3, 4}})
	b := FromRows([]Vector{{5, 6}, {7, 8}})
	if got := a.Add(b); !got.Equal(FromRows([]Vector{{6, 8}, {10, 12}}), 0) {
		t.Errorf("Add = \n%v", got)
	}
	if got := b.Sub(a); !got.Equal(FromRows([]Vector{{4, 4}, {4, 4}}), 0) {
		t.Errorf("Sub = \n%v", got)
	}
	if got := a.Scale(2); !got.Equal(FromRows([]Vector{{2, 4}, {6, 8}}), 0) {
		t.Errorf("Scale = \n%v", got)
	}
}

func TestMatrixMulKnown(t *testing.T) {
	a := FromRows([]Vector{{1, 2}, {3, 4}})
	b := FromRows([]Vector{{0, 1}, {1, 0}})
	want := FromRows([]Vector{{2, 1}, {4, 3}})
	if got := a.Mul(b); !got.Equal(want, 0) {
		t.Errorf("Mul = \n%v", got)
	}
}

func TestMulVec(t *testing.T) {
	a := FromRows([]Vector{{1, 2, 3}, {4, 5, 6}})
	got := a.MulVec(Vector{1, 0, -1})
	if !got.Equal(Vector{-2, -2}, 0) {
		t.Errorf("MulVec = %v", got)
	}
}

func TestQuadForm(t *testing.T) {
	m := FromRows([]Vector{{2, 0}, {0, 3}})
	if got := m.QuadForm(Vector{1, 2}); got != 14 {
		t.Errorf("QuadForm = %v, want 14", got)
	}
	// QuadForm must agree with v' (M v).
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 20; i++ {
		mm := randMat(rng, 5, 5)
		v := randVec(rng, 5)
		want := v.Dot(mm.MulVec(v))
		if got := mm.QuadForm(v); !almostEq(got, want, 1e-9) {
			t.Fatalf("QuadForm = %v want %v", got, want)
		}
	}
}

func TestBilinForm(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := randMat(rng, 4, 4)
	u, v := randVec(rng, 4), randVec(rng, 4)
	want := u.Dot(m.MulVec(v))
	if got := m.BilinForm(u, v); !almostEq(got, want, 1e-9) {
		t.Errorf("BilinForm = %v want %v", got, want)
	}
}

func TestDiagAndDiagonal(t *testing.T) {
	d := Diag(Vector{1, 2, 3})
	if d.At(0, 0) != 1 || d.At(1, 1) != 2 || d.At(2, 2) != 3 || d.At(0, 1) != 0 {
		t.Errorf("Diag = \n%v", d)
	}
	if got := d.Diagonal(); !got.Equal(Vector{1, 2, 3}, 0) {
		t.Errorf("Diagonal = %v", got)
	}
}

func TestTrace(t *testing.T) {
	m := FromRows([]Vector{{1, 9}, {9, 2}})
	if got := m.Trace(); got != 3 {
		t.Errorf("Trace = %v", got)
	}
}

func TestRowColAliasing(t *testing.T) {
	m := FromRows([]Vector{{1, 2}, {3, 4}})
	r := m.Row(0)
	r[0] = 99
	if m.At(0, 0) != 99 {
		t.Error("Row must alias matrix storage")
	}
	c := m.Col(1)
	c[0] = -1
	if m.At(0, 1) == -1 {
		t.Error("Col must copy, not alias")
	}
}

func TestVectorBasicsCoverage(t *testing.T) {
	v := NewVector(3)
	if v.Dim() != 3 || !v.Equal(Vector{0, 0, 0}, 0) {
		t.Error("NewVector")
	}
	c := Vector{1, 2}.Clone()
	c[0] = 9
	if c.Equal(Vector{1, 2}, 0) {
		t.Error("Clone must copy")
	}
	// Equal with different lengths.
	if (Vector{1}).Equal(Vector{1, 2}, 0) {
		t.Error("Equal must reject length mismatch")
	}
}

func TestMatrixAddScaledInPlace(t *testing.T) {
	a := FromRows([]Vector{{1, 2}, {3, 4}})
	b := FromRows([]Vector{{1, 1}, {1, 1}})
	a.AddScaledInPlace(2, b)
	if !a.Equal(FromRows([]Vector{{3, 4}, {5, 6}}), 0) {
		t.Errorf("AddScaledInPlace = \n%v", a)
	}
}

func TestMatrixStringAndEqualShapes(t *testing.T) {
	m := FromRows([]Vector{{1, 2}})
	if s := m.String(); len(s) == 0 {
		t.Error("String must render")
	}
	if m.Equal(FromRows([]Vector{{1, 2}, {3, 4}}), 0) {
		t.Error("Equal must reject shape mismatch")
	}
}

func TestMatrixPanics(t *testing.T) {
	mustPanicM(t, func() { NewMatrix(-1, 2) })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}, {1}}) })
	mustPanicM(t, func() { FromRows([]Vector{{1}}).Add(FromRows([]Vector{{1, 2}})) })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).Mul(FromRows([]Vector{{1, 2}})) })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).MulVec(Vector{1}) })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).Trace() })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).QuadForm(Vector{1, 2}) })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).BilinForm(Vector{1, 2}, Vector{1}) })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).Inverse() })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).Cholesky() })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).Det() })
	mustPanicM(t, func() { FromRows([]Vector{{1, 2}}).LogDet() })
}

func mustPanicM(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	f()
}

func TestSolveSingular(t *testing.T) {
	if _, err := FromRows([]Vector{{1, 2}, {2, 4}}).Solve(Vector{1, 1}); err == nil {
		t.Error("singular Solve must error")
	}
}

func TestFromRowsEmpty(t *testing.T) {
	m := FromRows(nil)
	if m.Rows != 0 || m.Cols != 0 {
		t.Errorf("FromRows(nil) = %dx%d", m.Rows, m.Cols)
	}
}
