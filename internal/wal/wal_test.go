package wal

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

func walPath(t *testing.T) string {
	t.Helper()
	return filepath.Join(t.TempDir(), "wal.log")
}

func mustCommit(t *testing.T, w *Writer, payloads ...[]byte) {
	t.Helper()
	if err := w.Commit(payloads...); err != nil {
		t.Fatalf("commit: %v", err)
	}
}

func replayAll(t *testing.T, path string) ([][]byte, ReplayStats) {
	t.Helper()
	var got [][]byte
	stats, err := Replay(path, func(p []byte) error {
		got = append(got, append([]byte(nil), p...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return got, stats
}

func TestCommitReplayRoundTrip(t *testing.T) {
	path := walPath(t)
	w, err := Open(path, Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	var want [][]byte
	for i := 0; i < 50; i++ {
		p := []byte(fmt.Sprintf("record-%03d-%s", i, string(make([]byte, i%17))))
		want = append(want, p)
		mustCommit(t, w, p)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, stats := replayAll(t, path)
	if stats.TruncatedBytes != 0 {
		t.Fatalf("clean log reported %d truncated bytes", stats.TruncatedBytes)
	}
	if stats.Records != len(want) {
		t.Fatalf("replayed %d records, want %d", stats.Records, len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d mismatch", i)
		}
	}
}

func TestReplayMissingFileIsEmpty(t *testing.T) {
	stats, err := Replay(filepath.Join(t.TempDir(), "absent.log"), func([]byte) error {
		t.Fatal("apply called on missing log")
		return nil
	})
	if err != nil || stats.Records != 0 {
		t.Fatalf("missing log: stats=%+v err=%v", stats, err)
	}
}

// TestGroupCommit hammers one writer from many goroutines and asserts
// (a) every record survives replay, (b) fsyncs were shared — far fewer
// than one per record.
func TestGroupCommit(t *testing.T) {
	path := walPath(t)
	reg := obs.NewRegistry()
	met := Metrics{Fsyncs: reg.Counter("fsyncs"), Records: reg.Counter("records")}
	w, err := Open(path, met)
	if err != nil {
		t.Fatal(err)
	}
	const writers, perWriter = 16, 32
	var wg sync.WaitGroup
	var failed atomic.Int32
	for g := 0; g < writers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				if err := w.Commit([]byte(fmt.Sprintf("g%02d-i%02d", g, i))); err != nil {
					failed.Add(1)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	if failed.Load() != 0 {
		t.Fatalf("%d commits failed", failed.Load())
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	got, _ := replayAll(t, path)
	if len(got) != writers*perWriter {
		t.Fatalf("replayed %d records, want %d", len(got), writers*perWriter)
	}
	seen := map[string]bool{}
	for _, p := range got {
		seen[string(p)] = true
	}
	if len(seen) != writers*perWriter {
		t.Fatalf("replay lost records: %d unique of %d", len(seen), writers*perWriter)
	}
	fsyncs := met.Fsyncs.Value()
	if fsyncs < 1 || fsyncs > int64(writers*perWriter) {
		t.Fatalf("fsyncs = %d out of range", fsyncs)
	}
	// Not a strict bound (timing-dependent), but on any real machine
	// 512 concurrent commits share fsyncs heavily; assert at least some
	// coalescing happened so a regression to fsync-per-record is caught.
	if fsyncs == int64(writers*perWriter) {
		t.Logf("warning: no group-commit coalescing observed (%d fsyncs)", fsyncs)
	}
}

func TestTornTailTruncated(t *testing.T) {
	path := walPath(t)
	w, err := Open(path, Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w, []byte("alpha"), []byte("beta"))
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a crash mid-append: a valid header + half a payload.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	payload := []byte("gamma-never-finished")
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crc32.MakeTable(crc32.Castagnoli)))
	if _, err := f.Write(append(hdr[:], payload[:len(payload)/2]...)); err != nil {
		t.Fatal(err)
	}
	f.Close()

	got, stats := replayAll(t, path)
	if len(got) != 2 || string(got[0]) != "alpha" || string(got[1]) != "beta" {
		t.Fatalf("replay after torn tail: %q", got)
	}
	if stats.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	// The file must now be clean: replay again, nothing truncated.
	got2, stats2 := replayAll(t, path)
	if len(got2) != 2 || stats2.TruncatedBytes != 0 {
		t.Fatalf("second replay not clean: %d records, %d truncated", len(got2), stats2.TruncatedBytes)
	}
	// And appends after the repair extend it correctly.
	w2, err := Open(path, Metrics{})
	if err != nil {
		t.Fatal(err)
	}
	mustCommit(t, w2, []byte("delta"))
	w2.Close()
	got3, _ := replayAll(t, path)
	if len(got3) != 3 || string(got3[2]) != "delta" {
		t.Fatalf("append after repair: %q", got3)
	}
}

func TestTornHeaderTruncated(t *testing.T) {
	path := walPath(t)
	w, _ := Open(path, Metrics{})
	mustCommit(t, w, []byte("one"))
	w.Close()
	f, _ := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	f.Write([]byte{0x03, 0x00, 0x00}) // 3 of 8 header bytes
	f.Close()
	got, stats := replayAll(t, path)
	if len(got) != 1 || stats.TruncatedBytes != 3 {
		t.Fatalf("torn header: records=%d truncated=%d", len(got), stats.TruncatedBytes)
	}
}

func TestMidFileCorruptionRefused(t *testing.T) {
	path := walPath(t)
	w, _ := Open(path, Metrics{})
	mustCommit(t, w, []byte("first-record"), []byte("second-record"), []byte("third-record"))
	w.Close()
	// Flip a payload bit of the SECOND record; the third stays valid, so
	// this cannot be a torn tail.
	data, _ := os.ReadFile(path)
	off := 8 + len("first-record") + 8 + 3 // inside second payload
	data[off] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	var applied int
	_, err := Replay(path, func([]byte) error { applied++; return nil })
	if !errors.Is(err, ErrCorruptLog) {
		t.Fatalf("mid-file corruption: err=%v, want ErrCorruptLog", err)
	}
	if applied != 1 {
		t.Fatalf("applied %d records before detecting corruption, want 1", applied)
	}
	// The file must NOT have been truncated (no silent loss of record 3).
	after, _ := os.ReadFile(path)
	if len(after) != len(data) {
		t.Fatalf("corrupt log truncated from %d to %d bytes", len(data), len(after))
	}
}

func TestFsyncErrorIsSticky(t *testing.T) {
	defer faultinject.Reset()
	path := walPath(t)
	w, _ := Open(path, Metrics{})
	mustCommit(t, w, []byte("good"))
	faultinject.Set(faultinject.WALFsyncError, nil)
	if err := w.Commit([]byte("doomed")); err == nil {
		t.Fatal("commit with injected fsync error succeeded")
	}
	faultinject.Clear(faultinject.WALFsyncError)
	if err := w.Commit([]byte("after")); err == nil {
		t.Fatal("writer not poisoned after fsync error")
	}
	if w.Err() == nil {
		t.Fatal("sticky error not surfaced")
	}
	w.Close()
}

func TestTornAppendInjection(t *testing.T) {
	defer faultinject.Reset()
	path := walPath(t)
	w, _ := Open(path, Metrics{})
	mustCommit(t, w, []byte("committed"))
	faultinject.Set(faultinject.WALTornAppend, nil)
	if err := w.Commit([]byte("torn-away-payload")); err == nil {
		t.Fatal("torn append reported success")
	}
	faultinject.Reset()
	w.Close()
	got, stats := replayAll(t, path)
	if len(got) != 1 || string(got[0]) != "committed" {
		t.Fatalf("replay after torn append: %q", got)
	}
	if stats.TruncatedBytes == 0 {
		t.Fatal("torn append left no tail to truncate")
	}
}

func TestCommitAfterClose(t *testing.T) {
	w, _ := Open(walPath(t), Metrics{})
	w.Close()
	if err := w.Commit([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Fatalf("commit after close: %v", err)
	}
}

func TestReadAll(t *testing.T) {
	path := walPath(t)
	w, _ := Open(path, Metrics{})
	mustCommit(t, w, []byte("a"), []byte("bb"))
	w.Close()
	got, err := ReadAll(path)
	if err != nil || len(got) != 2 || string(got[1]) != "bb" {
		t.Fatalf("ReadAll: %q err=%v", got, err)
	}
}

// FuzzReplay feeds arbitrary bytes through Replay (on a copy) and
// asserts it never panics, never reports more intact bytes than the
// file holds, and that a replay of the repaired file is clean.
func FuzzReplay(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 42})
	seed := func(payloads ...string) []byte {
		var buf bytes.Buffer
		for _, p := range payloads {
			var hdr [8]byte
			binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
			binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum([]byte(p), crc32.MakeTable(crc32.Castagnoli)))
			buf.Write(hdr[:])
			buf.WriteString(p)
		}
		return buf.Bytes()
	}
	f.Add(seed("hello", "world"))
	f.Add(seed("x")[:5])
	f.Fuzz(func(t *testing.T, data []byte) {
		path := filepath.Join(t.TempDir(), "fuzz.log")
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Skip()
		}
		stats, err := Replay(path, func([]byte) error { return nil })
		if err != nil {
			if errors.Is(err, ErrCorruptLog) {
				return // refused, file untouched: fine
			}
			t.Fatalf("unexpected replay error: %v", err)
		}
		if stats.Bytes+stats.TruncatedBytes != int64(len(data)) {
			t.Fatalf("bytes %d + truncated %d != input %d", stats.Bytes, stats.TruncatedBytes, len(data))
		}
		stats2, err := Replay(path, func([]byte) error { return nil })
		if err != nil || stats2.TruncatedBytes != 0 || stats2.Records != stats.Records {
			t.Fatalf("repaired log not clean: %+v err=%v", stats2, err)
		}
	})
}
