// Package wal is a write-ahead log for the durable ingest path: an
// append-only file of length-prefixed, CRC32C-checksummed records with
// fsync-batched group commit on the write side and torn-tail detection
// and truncation on replay.
//
// Record layout (little-endian):
//
//	[u32 payload length][u32 CRC32C(payload)][payload bytes]
//
// Commit appends records and returns only after an fsync covers them.
// Concurrent Commits coalesce: while one fsync is in flight, later
// callers append to the OS buffer and wait; the first waiter to wake
// becomes the next leader and syncs everything appended so far, so N
// concurrent commits cost far fewer than N fsyncs (group commit).
//
// Replay streams records back in append order. A tail that ends
// mid-record — the image left by a crash or power cut during a write —
// is detected by the length prefix and checksum, truncated off the
// file, and reported; the records before it are intact by construction.
// A checksum failure in the *middle* of the log (bytes that cannot be a
// torn tail because a valid record follows them) is a disk-corruption
// signal, not a crash artifact, and surfaces as ErrCorruptLog instead
// of silently dropping acknowledged history.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"os"
	"sync"
	"time"

	"repro/internal/faultinject"
	"repro/internal/obs"
)

// ErrCorruptLog reports a checksum or framing failure that cannot be a
// torn tail: acknowledged records after the damage would be lost by
// truncation, so replay refuses to guess and the operator must restore
// from a snapshot.
var ErrCorruptLog = errors.New("wal: corrupt log")

// ErrClosed is returned by operations on a closed Writer.
var ErrClosed = errors.New("wal: closed")

const headerSize = 8 // u32 length + u32 crc

// maxRecordBytes bounds a single record (64 MiB). A length prefix above
// it is treated as framing damage, not an instruction to allocate.
const maxRecordBytes = 64 << 20

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Metrics holds optional observability handles the Writer records into;
// nil fields are skipped (zero value = no instrumentation).
type Metrics struct {
	AppendSeconds *obs.Histogram // wall time of Commit's append phase
	FsyncSeconds  *obs.Histogram // wall time of each fsync
	Fsyncs        *obs.Counter   // fsync calls issued
	Records       *obs.Counter   // records appended
	Bytes         *obs.Counter   // bytes appended (headers included)
}

// Writer appends records to a write-ahead log file. Safe for concurrent
// use; a write or fsync failure is sticky — every later Commit fails
// with the same error, so a durable layer above can flip read-only.
type Writer struct {
	mu       sync.Mutex
	cond     *sync.Cond
	f        *os.File
	path     string
	met      Metrics
	appended int64 // records handed to the OS buffer
	synced   int64 // records covered by a completed fsync
	syncing  bool  // an fsync is in flight
	bytes    int64 // bytes appended since Open (headers included)
	err      error // sticky fatal error
	closed   bool
}

// Open opens (creating if absent) the log at path for appending. The
// file must end on a record boundary — run Replay first, which
// truncates a torn tail.
func Open(path string, met Metrics) (*Writer, error) {
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("wal: open %s: %w", path, err)
	}
	w := &Writer{f: f, path: path, met: met}
	w.cond = sync.NewCond(&w.mu)
	return w, nil
}

// Path returns the log file path.
func (w *Writer) Path() string { return w.path }

// AppendedBytes returns the bytes appended since Open.
func (w *Writer) AppendedBytes() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.bytes
}

// Err returns the sticky fatal error, if any.
func (w *Writer) Err() error {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.err
}

// EncodedSize returns the on-disk size of a record with n payload bytes.
func EncodedSize(n int) int { return headerSize + n }

// appendLocked frames and writes payloads to the OS buffer. Caller
// holds w.mu.
func (w *Writer) appendLocked(payloads [][]byte) error {
	total := 0
	for _, p := range payloads {
		total += headerSize + len(p)
	}
	buf := make([]byte, 0, total)
	for _, p := range payloads {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(p, castagnoli))
		buf = append(buf, hdr[:]...)
		buf = append(buf, p...)
	}
	if faultinject.Enabled(faultinject.WALTornAppend) {
		// Write a prefix that ends mid-record — the torn tail a power
		// cut leaves — flush it to disk, then fire the hook (a crash
		// harness SIGKILLs the process here). If the process survives,
		// the writer is poisoned like any other append failure.
		torn := buf[:len(buf)-(headerSize+len(payloads[len(payloads)-1]))/2-1]
		if _, err := w.f.Write(torn); err == nil {
			_ = w.f.Sync()
		}
		faultinject.Fire(faultinject.WALTornAppend)
		w.err = fmt.Errorf("wal: torn append injected at %s", w.path)
		return w.err
	}
	if _, err := w.f.Write(buf); err != nil {
		w.err = fmt.Errorf("wal: append %s: %w", w.path, err)
		return w.err
	}
	w.appended += int64(len(payloads))
	w.bytes += int64(total)
	if w.met.Records != nil {
		w.met.Records.Add(int64(len(payloads)))
	}
	if w.met.Bytes != nil {
		w.met.Bytes.Add(int64(total))
	}
	return nil
}

// Commit appends the payloads and returns once an fsync covers them
// (group commit: concurrent Commits share fsyncs). An empty call syncs
// any unsynced records.
func (w *Writer) Commit(payloads ...[]byte) error {
	start := time.Now()
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return ErrClosed
	}
	if w.err != nil {
		err := w.err
		w.mu.Unlock()
		return err
	}
	if len(payloads) > 0 {
		if err := w.appendLocked(payloads); err != nil {
			w.cond.Broadcast()
			w.mu.Unlock()
			return err
		}
		if w.met.AppendSeconds != nil {
			w.met.AppendSeconds.Observe(time.Since(start).Seconds())
		}
	}
	target := w.appended
	for w.synced < target && w.err == nil {
		if w.syncing {
			// Another commit's fsync is in flight; it cannot cover our
			// records (they may have landed after it started), so wait
			// for it and let the first waiter lead the next one.
			w.cond.Wait()
			continue
		}
		w.syncing = true
		upTo := w.appended // everything appended so far rides this fsync
		w.mu.Unlock()
		err := w.fsync()
		w.mu.Lock()
		w.syncing = false
		if err != nil {
			w.err = err
		} else {
			w.synced = upTo
		}
		w.cond.Broadcast()
	}
	err := w.err
	w.mu.Unlock()
	return err
}

// fsync runs one fsync with the crash/fault hooks around it. Called
// without w.mu held.
func (w *Writer) fsync() error {
	faultinject.Fire(faultinject.WALPreFsync)
	start := time.Now()
	var err error
	if faultinject.Enabled(faultinject.WALFsyncError) {
		faultinject.Fire(faultinject.WALFsyncError)
		err = fmt.Errorf("wal: fsync %s: injected disk error", w.path)
	} else if serr := w.f.Sync(); serr != nil {
		err = fmt.Errorf("wal: fsync %s: %w", w.path, serr)
	}
	if w.met.FsyncSeconds != nil {
		w.met.FsyncSeconds.Observe(time.Since(start).Seconds())
	}
	if w.met.Fsyncs != nil {
		w.met.Fsyncs.Inc()
	}
	if err == nil {
		faultinject.Fire(faultinject.WALPostFsync)
	}
	return err
}

// Close syncs and closes the file. Further Commits fail with ErrClosed.
func (w *Writer) Close() error {
	w.mu.Lock()
	if w.closed {
		w.mu.Unlock()
		return nil
	}
	w.closed = true
	var err error
	if w.err == nil && w.appended > w.synced {
		err = w.f.Sync()
	}
	if cerr := w.f.Close(); err == nil {
		err = cerr
	}
	w.cond.Broadcast()
	w.mu.Unlock()
	return err
}

// ReplayStats describes what a replay recovered and repaired.
type ReplayStats struct {
	// Records is the number of intact records streamed to apply.
	Records int
	// Bytes is the intact prefix length (what the log was truncated to
	// when a torn tail was dropped).
	Bytes int64
	// TruncatedBytes is the torn-tail length removed from the file
	// (0 for a clean log).
	TruncatedBytes int64
}

// Replay streams every intact record of the log at path to apply, in
// append order. A missing file is an empty log. A torn tail is
// truncated off the file and reported in the stats; damage that cannot
// be a torn tail returns ErrCorruptLog. An apply error stops the replay
// and is returned as-is.
func Replay(path string, apply func(payload []byte) error) (ReplayStats, error) {
	var stats ReplayStats
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return stats, nil
	}
	if err != nil {
		return stats, fmt.Errorf("wal: replay %s: %w", path, err)
	}
	good := int64(0) // offset of the first byte not covered by intact records
	off := int64(0)
	n := int64(len(data))
	for off < n {
		rest := n - off
		if rest < headerSize {
			break // torn header
		}
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordBytes || off+headerSize+length > n {
			// Either a torn payload or a smashed length field; in both
			// cases nothing after this offset parses, so it is a tail.
			break
		}
		payload := data[off+headerSize : off+headerSize+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			// Full payload present but checksum wrong. If a valid record
			// follows, this is mid-file corruption — truncating would
			// drop acknowledged history, so refuse.
			if recordAt(data, off+headerSize+length) {
				return stats, fmt.Errorf("%w: checksum mismatch at offset %d of %s (followed by intact records)",
					ErrCorruptLog, off, path)
			}
			break
		}
		if err := apply(payload); err != nil {
			return stats, err
		}
		off += headerSize + length
		good = off
		stats.Records++
	}
	stats.Bytes = good
	if good < n {
		stats.TruncatedBytes = n - good
		if err := truncate(path, good); err != nil {
			return stats, fmt.Errorf("wal: truncating torn tail of %s: %w", path, err)
		}
	}
	return stats, nil
}

// recordAt reports whether a complete, checksum-valid record starts at
// offset off.
func recordAt(data []byte, off int64) bool {
	n := int64(len(data))
	if off+headerSize > n {
		return false
	}
	length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
	if length > maxRecordBytes || off+headerSize+length > n {
		return false
	}
	sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
	return crc32.Checksum(data[off+headerSize:off+headerSize+length], castagnoli) == sum
}

// truncate shortens the file at path to size bytes and syncs it.
func truncate(path string, size int64) error {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := f.Truncate(size); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return f.Close()
}

// ReadAll is Replay without side effects on the file: it collects every
// intact record's payload (copied) and never truncates. For tests and
// offline inspection.
func ReadAll(path string) ([][]byte, error) {
	var out [][]byte
	data, err := os.ReadFile(path)
	if errors.Is(err, os.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, err
	}
	off, n := int64(0), int64(len(data))
	for off+headerSize <= n {
		length := int64(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if length > maxRecordBytes || off+headerSize+length > n {
			break
		}
		payload := data[off+headerSize : off+headerSize+length]
		if crc32.Checksum(payload, castagnoli) != sum {
			break
		}
		out = append(out, append([]byte(nil), payload...))
		off += headerSize + length
	}
	return out, nil
}
