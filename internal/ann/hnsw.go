package ann

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/index"
)

// Options tunes the HNSW-style graph. The zero value uses the defaults.
type Options struct {
	// M is the maximum neighbor degree on layers above 0 (layer 0 keeps
	// up to 2M). Higher M = denser graph = better recall, more memory
	// and slower inserts. Defaults to 16.
	M int
	// EfConstruction is the candidate-beam width while inserting.
	// Defaults to 128.
	EfConstruction int
	// EfSearch is the default candidate-beam width at query time — the
	// recall/latency knob. Per-query overrides pass through KNNEf.
	// Defaults to 64.
	EfSearch int
	// Seed feeds the deterministic per-id level assignment: the same
	// (seed, insertion order) always builds the same graph.
	Seed int64
}

func (o Options) withDefaults() Options {
	if o.M <= 1 {
		o.M = 16
	}
	if o.EfConstruction <= 0 {
		o.EfConstruction = 128
	}
	if o.EfSearch <= 0 {
		o.EfSearch = 64
	}
	return o
}

// cand is one graph candidate: a node id and its (float32, squared
// Euclidean) navigation distance. All orderings tie-break on id so
// traversal and selection stay deterministic even when quantized
// distances collide.
type cand struct {
	dist float32
	id   int32
}

func candLess(a, b cand) bool {
	if a.dist != b.dist {
		return a.dist < b.dist
	}
	return a.id < b.id
}

// node is one graph vertex: neighbor lists for layers 0..level.
type node struct {
	links [][]int32
}

// maxLevel caps the level assignment; with mL = 1/ln(16) the chance of
// drawing past it is ~2^-124 — the cap only bounds slice allocation.
const maxLevel = 31

// splitmix64 is the avalanche mix behind the deterministic level draw.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Index is an HNSW-style navigable-small-world graph (Malkov & Yashunin)
// over the quantized mirror of a flat vector store: a stack of
// progressively sparser proximity graphs, searched by greedy descent
// from the top layer and a bounded best-first beam on layer 0.
//
// The graph only *navigates* — every candidate it surfaces is re-scored
// with the full-precision metric before results leave the package, so
// result lists are bit-exact functions of the candidate set.
//
// An Index is safe for concurrent use: inserts take the write lock,
// searches share the read lock. Construction is deterministic given
// (seed, insertion order): level assignment is a pure hash of the id
// and every selection is ordered by (dist, id).
type Index struct {
	mu    sync.RWMutex
	store *index.Store
	f32   *StoreF32
	opt   Options
	mL    float64

	nodes    []node
	entry    int32
	topLayer int

	states sync.Pool // *searchState
}

// New builds a graph over the store's current contents by inserting
// every row in id order.
func New(s *index.Store, opt Options) (*Index, error) {
	ix := &Index{
		store: s,
		f32:   &StoreF32{dim: s.Dim()},
		opt:   opt.withDefaults(),
		entry: -1,
	}
	ix.mL = 1 / math.Log(float64(ix.opt.M))
	ids := make([]int, s.Len())
	for i := range ids {
		ids[i] = i
	}
	if err := ix.InsertBatch(ids); err != nil {
		return nil, err
	}
	return ix, nil
}

// Opt returns the resolved (defaulted) options.
func (ix *Index) Opt() Options { return ix.opt }

// Len returns the number of graphed rows.
func (ix *Index) Len() int {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return len(ix.nodes)
}

// levelFor draws row id's deterministic level: an inverse-CDF sample of
// the geometric-ish HNSW level law, floor(-ln(u) · mL), from a
// splitmix64 hash of (seed, id). u lies in (0, 1], so level 0 has
// probability 1 - e^{-1/mL} exactly as the randomized original.
func (ix *Index) levelFor(id int) int {
	h := splitmix64(uint64(ix.opt.Seed)*0x9e3779b97f4a7c15 + uint64(id))
	u := (float64(h>>11) + 1) / (1 << 53)
	l := int(-math.Log(u) * ix.mL)
	if l > maxLevel {
		l = maxLevel
	}
	return l
}

// maxDegree is the neighbor cap on one layer.
func (ix *Index) maxDegree(layer int) int {
	if layer == 0 {
		return 2 * ix.opt.M
	}
	return ix.opt.M
}

// Insert adds store row id to the graph. Rows must be inserted in id
// order (the graph mirrors the append-only store); the quantized mirror
// is synced from the store first, so a codec rejection (a component the
// float32 representation cannot hold) fails the insert before any graph
// edge is built.
func (ix *Index) Insert(id int) error { return ix.InsertBatch([]int{id}) }

// InsertBatch adds a batch of store rows under one write lock.
func (ix *Index) InsertBatch(ids []int) error {
	if len(ids) == 0 {
		return nil
	}
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if err := ix.f32.SyncFrom(ix.store); err != nil {
		return err
	}
	for _, id := range ids {
		if err := ix.insertLocked(id); err != nil {
			return err
		}
	}
	return nil
}

func (ix *Index) insertLocked(id int) error {
	if id != len(ix.nodes) {
		return fmt.Errorf("ann: insert id %d out of order, graph has %d rows", id, len(ix.nodes))
	}
	level := ix.levelFor(id)
	ix.nodes = append(ix.nodes, node{links: make([][]int32, level+1)})
	if ix.entry < 0 {
		ix.entry = int32(id)
		ix.topLayer = level
		return nil
	}

	q := ix.f32.Row(id)
	st := ix.getState()
	defer ix.putState(st)

	ep := cand{id: ix.entry, dist: sqDist(q, ix.f32.Row(int(ix.entry)))}
	st.evals++
	for l := ix.topLayer; l > level; l-- {
		ep = ix.greedyStep(q, ep, l, st)
	}
	top := level
	if ix.topLayer < top {
		top = ix.topLayer
	}
	for l := top; l >= 0; l-- {
		found := ix.searchLayer(context.Background(), q, ep, ix.opt.EfConstruction, l, st)
		neighbors := ix.selectNeighbors(found, ix.opt.M)
		for _, nb := range neighbors {
			ix.link(int32(id), nb.id, l)
			ix.link(nb.id, int32(id), l)
		}
		if len(found) > 0 {
			ep = found[0]
		}
	}
	if level > ix.topLayer {
		ix.topLayer = level
		ix.entry = int32(id)
	}
	return nil
}

// link appends dst to src's layer-l neighbor list, shrinking it with
// the diversity heuristic when it exceeds the layer's degree cap.
func (ix *Index) link(src, dst int32, layer int) {
	ls := ix.nodes[src].links[layer]
	for _, e := range ls {
		if e == dst {
			return
		}
	}
	ls = append(ls, dst)
	if limit := ix.maxDegree(layer); len(ls) > limit {
		v := ix.f32.Row(int(src))
		cands := make([]cand, len(ls))
		for i, e := range ls {
			cands[i] = cand{id: e, dist: sqDist(v, ix.f32.Row(int(e)))}
		}
		sort.Slice(cands, func(a, b int) bool { return candLess(cands[a], cands[b]) })
		kept := ix.selectNeighbors(cands, limit)
		ls = ls[:0]
		for _, c := range kept {
			ls = append(ls, c.id)
		}
	}
	ix.nodes[src].links[layer] = ls
}

// selectNeighbors is the HNSW diversity heuristic (Malkov alg. 4):
// scanning candidates in ascending (dist, id) order, keep c only when
// it is closer to the query than to every already-kept neighbor —
// spreading edges across clusters instead of piling them on one —
// then, if the quota is not met, fill with the closest rejects (the
// keep-pruned-connections variant, which preserves connectivity on
// tightly clustered data).
func (ix *Index) selectNeighbors(cands []cand, m int) []cand {
	if len(cands) <= m {
		return cands
	}
	kept := make([]cand, 0, m)
	var rejected []cand
	for _, c := range cands {
		if len(kept) >= m {
			break
		}
		cv := ix.f32.Row(int(c.id))
		diverse := true
		for _, k := range kept {
			if sqDist(cv, ix.f32.Row(int(k.id))) < c.dist {
				diverse = false
				break
			}
		}
		if diverse {
			kept = append(kept, c)
		} else {
			rejected = append(rejected, c)
		}
	}
	for _, c := range rejected {
		if len(kept) >= m {
			break
		}
		kept = append(kept, c)
	}
	return kept
}

// greedyStep walks layer l from ep to its local minimum w.r.t. q.
func (ix *Index) greedyStep(q []float32, ep cand, layer int, st *searchState) cand {
	for {
		improved := false
		for _, e := range ix.nodes[ep.id].links[layer] {
			d := sqDist(q, ix.f32.Row(int(e)))
			st.evals++
			if candLess(cand{dist: d, id: e}, ep) {
				ep = cand{dist: d, id: e}
				improved = true
			}
		}
		st.hops++
		if !improved {
			return ep
		}
	}
}

// searchState is the pooled per-search scratch: an epoch-stamped
// visited array (no clearing between searches) plus the two beams.
type searchState struct {
	visited []uint32
	stamp   uint32
	front   candMinHeap
	best    candMaxHeap
	hops    int
	evals   int
}

func (ix *Index) getState() *searchState {
	st, _ := ix.states.Get().(*searchState)
	if st == nil {
		st = &searchState{}
	}
	st.hops, st.evals = 0, 0
	if n := len(ix.nodes); len(st.visited) < n {
		st.visited = make([]uint32, n+n/2+16)
		st.stamp = 0
	}
	return st
}

func (ix *Index) putState(st *searchState) { ix.states.Put(st) }

// searchLayer runs the bounded best-first beam on one layer: expand the
// closest frontier node, score unvisited neighbors, keep the ef best.
// Returns the beam in ascending (dist, id) order. A cancelled context
// stops expansion early and returns the best found so far — navigation
// quality degrades, correctness (exact refinement) does not.
func (ix *Index) searchLayer(ctx context.Context, q []float32, ep cand, ef, layer int, st *searchState) []cand {
	st.stamp++
	if st.stamp == 0 { // wrapped: stale stamps could alias, reset
		for i := range st.visited {
			st.visited[i] = 0
		}
		st.stamp = 1
	}
	st.visited[ep.id] = st.stamp
	st.front = st.front[:0]
	st.best = st.best[:0]
	st.front.push(ep)
	st.best.push(ep)

	checkEvery := 0
	for len(st.front) > 0 {
		c := st.front.pop()
		if len(st.best) >= ef && candLess(st.best.worst(), c) {
			break // the whole frontier is farther than the kept beam
		}
		st.hops++
		if checkEvery++; checkEvery&127 == 0 && ctx.Err() != nil {
			break
		}
		for _, e := range ix.nodes[c.id].links[layer] {
			if st.visited[e] == st.stamp {
				continue
			}
			st.visited[e] = st.stamp
			d := sqDist(q, ix.f32.Row(int(e)))
			st.evals++
			nc := cand{dist: d, id: e}
			if len(st.best) < ef {
				st.front.push(nc)
				st.best.push(nc)
			} else if candLess(nc, st.best.worst()) {
				st.front.push(nc)
				st.best.replaceWorst(nc)
			}
		}
	}
	out := make([]cand, len(st.best))
	copy(out, st.best)
	sort.Slice(out, func(a, b int) bool { return candLess(out[a], out[b]) })
	return out
}

// candidates navigates the full layer stack for one quantized query
// point: greedy descent through the sparse upper layers, then an
// ef-wide beam on layer 0.
func (ix *Index) candidates(ctx context.Context, q []float32, ef int, st *searchState) []cand {
	ep := cand{id: ix.entry, dist: sqDist(q, ix.f32.Row(int(ix.entry)))}
	st.evals++
	for l := ix.topLayer; l > 0; l-- {
		ep = ix.greedyStep(q, ep, l, st)
	}
	return ix.searchLayer(ctx, q, ep, ef, 0, st)
}

// candMinHeap pops the closest candidate first (the frontier).
type candMinHeap []cand

func (h *candMinHeap) push(c cand) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess((*h)[i], (*h)[p]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *candMinHeap) pop() cand {
	old := *h
	top := old[0]
	n := len(old) - 1
	old[0] = old[n]
	*h = old[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && candLess((*h)[l], (*h)[s]) {
			s = l
		}
		if r < n && candLess((*h)[r], (*h)[s]) {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
	return top
}

// candMaxHeap keeps the ef best seen, worst at the root (the beam).
type candMaxHeap []cand

func (h candMaxHeap) worst() cand { return h[0] }

func (h *candMaxHeap) push(c cand) {
	*h = append(*h, c)
	i := len(*h) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !candLess((*h)[p], (*h)[i]) {
			break
		}
		(*h)[i], (*h)[p] = (*h)[p], (*h)[i]
		i = p
	}
}

func (h *candMaxHeap) replaceWorst(c cand) {
	(*h)[0] = c
	n := len(*h)
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		s := i
		if l < n && candLess((*h)[s], (*h)[l]) {
			s = l
		}
		if r < n && candLess((*h)[s], (*h)[r]) {
			s = r
		}
		if s == i {
			break
		}
		(*h)[i], (*h)[s] = (*h)[s], (*h)[i]
		i = s
	}
}
