package ann

import (
	"context"
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
)

// clusteredStore builds the synthetic workload the recall tests use:
// nClusters Gaussian blobs in [0,1]^dim — the data shape the paper's
// feedback loop assumes (and the one that historically disconnects
// naive proximity graphs, which is what the diversity heuristic must
// survive).
func clusteredStore(t *testing.T, n, dim, nClusters int, seed int64) *index.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	centers := make([][]float64, nClusters)
	for c := range centers {
		centers[c] = make([]float64, dim)
		for d := range centers[c] {
			centers[c][d] = rng.Float64()
		}
	}
	vecs := make([]linalg.Vector, n)
	for i := range vecs {
		c := centers[i%nClusters]
		v := make(linalg.Vector, dim)
		for d := range v {
			v[d] = c[d] + rng.NormFloat64()*0.05
		}
		vecs[i] = v
	}
	store, err := index.NewStore(vecs)
	if err != nil {
		t.Fatalf("store: %v", err)
	}
	return store
}

func recallAtK(approx, exact []index.Result) float64 {
	if len(exact) == 0 {
		return 1
	}
	truth := make(map[int]bool, len(exact))
	for _, r := range exact {
		truth[r.ID] = true
	}
	hit := 0
	for _, r := range approx {
		if truth[r.ID] {
			hit++
		}
	}
	return float64(hit) / float64(len(exact))
}

// TestANNRecallFloor is the satellite recall gate: on clustered data a
// high efSearch must reach recall@10 >= 0.99 against the exhaustive
// scan, averaged over query points drawn from the same distribution.
func TestANNRecallFloor(t *testing.T) {
	const n, dim, k = 5000, 16, 10
	store := clusteredStore(t, n, dim, 8, 1)
	ix, err := New(store, Options{M: 16, EfConstruction: 128, Seed: 42})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	scan := index.NewLinearScan(store)
	rng := rand.New(rand.NewSource(2))
	var sum float64
	const queries = 50
	for qi := 0; qi < queries; qi++ {
		base := store.Vector(rng.Intn(n))
		q := make(linalg.Vector, dim)
		for d := range q {
			q[d] = base[d] + rng.NormFloat64()*0.02
		}
		m := &distance.Euclidean{Center: q}
		exact, _ := scan.KNN(m, k)
		approx, stats, err := ix.KNNEf(context.Background(), m, k, 400)
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if stats.GraphHops == 0 || stats.RefineEvals == 0 {
			t.Fatalf("query %d: expected graph work, stats=%+v", qi, stats)
		}
		sum += recallAtK(approx, exact)
	}
	if avg := sum / queries; avg < 0.99 {
		t.Fatalf("recall@%d = %.4f, want >= 0.99", k, avg)
	}
}

// TestANNDeterministicBuild: same seed + insertion order must produce
// identical graphs, observed through identical search results and hop
// counts on many queries.
func TestANNDeterministicBuild(t *testing.T) {
	store := clusteredStore(t, 2000, 8, 5, 3)
	opt := Options{M: 8, EfConstruction: 64, Seed: 7}
	a, err := New(store, opt)
	if err != nil {
		t.Fatalf("build a: %v", err)
	}
	b, err := New(store, opt)
	if err != nil {
		t.Fatalf("build b: %v", err)
	}
	rng := rand.New(rand.NewSource(4))
	for qi := 0; qi < 30; qi++ {
		q := make(linalg.Vector, store.Dim())
		for d := range q {
			q[d] = rng.Float64()
		}
		m := &distance.Euclidean{Center: q}
		ra, sa, _ := a.KNNEf(context.Background(), m, 10, 50)
		rb, sb, _ := b.KNNEf(context.Background(), m, 10, 50)
		if len(ra) != len(rb) {
			t.Fatalf("query %d: result lengths differ: %d vs %d", qi, len(ra), len(rb))
		}
		for i := range ra {
			if ra[i] != rb[i] {
				t.Fatalf("query %d result %d: %+v vs %+v", qi, i, ra[i], rb[i])
			}
		}
		if sa.GraphHops != sb.GraphHops {
			t.Fatalf("query %d: hop counts differ: %d vs %d", qi, sa.GraphHops, sb.GraphHops)
		}
	}
}

// TestANNExhaustiveEfIsExact: ef >= n degenerates to the exact sweep —
// results bit-identical to the linear scan, including Dist bits.
func TestANNExhaustiveEfIsExact(t *testing.T) {
	store := clusteredStore(t, 800, 8, 4, 5)
	ix, err := New(store, Options{M: 8, Seed: 1})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	scan := index.NewLinearScan(store)
	rng := rand.New(rand.NewSource(6))
	for qi := 0; qi < 20; qi++ {
		q := make(linalg.Vector, store.Dim())
		for d := range q {
			q[d] = rng.Float64()
		}
		m := &distance.Euclidean{Center: q}
		exact, _ := scan.KNN(m, 15)
		approx, stats, err := ix.KNNEf(context.Background(), m, 15, store.Len())
		if err != nil {
			t.Fatalf("query %d: %v", qi, err)
		}
		if stats.GraphHops != 0 {
			t.Fatalf("query %d: exhaustive path took graph hops (%d)", qi, stats.GraphHops)
		}
		if len(exact) != len(approx) {
			t.Fatalf("query %d: lengths differ", qi)
		}
		for i := range exact {
			if exact[i].ID != approx[i].ID ||
				math.Float64bits(exact[i].Dist) != math.Float64bits(approx[i].Dist) {
				t.Fatalf("query %d result %d: exact %+v approx %+v", qi, i, exact[i], approx[i])
			}
		}
	}
}

// TestANNMultipointNavigation: a disjunctive metric navigates once per
// cluster representative and still finds the neighbors of both modes.
func TestANNMultipointNavigation(t *testing.T) {
	store := clusteredStore(t, 3000, 8, 2, 8)
	ix, err := New(store, Options{M: 12, EfConstruction: 96, Seed: 9})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	// Two quadratic parts centered on two stored points from different
	// clusters (identity weighting = Euclidean^2 shape).
	mk := func(id int) *distance.Quadratic {
		return distance.NewQuadraticDiag(store.Vector(id).Clone(), ones(store.Dim()))
	}
	m := distance.NewDisjunctive([]*distance.Quadratic{mk(0), mk(1)}, []float64{1, 1})
	scan := index.NewLinearScan(store)
	exact, _ := scan.KNN(m, 10)
	approx, stats, err := ix.KNNEf(context.Background(), m, 10, 300)
	if err != nil {
		t.Fatalf("knn: %v", err)
	}
	if got := recallAtK(approx, exact); got < 0.9 {
		t.Fatalf("multipoint recall = %.3f, want >= 0.9", got)
	}
	if stats.RefineEvals == 0 {
		t.Fatal("no refinement evals recorded")
	}
}

func ones(dim int) linalg.Vector {
	w := make(linalg.Vector, dim)
	for i := range w {
		w[i] = 1
	}
	return w
}

// TestANNConcurrentInsertSearch is the -race satellite: readers search
// while a writer keeps growing the graph; every search must return
// valid ids and never race. (Run with -race in CI.)
func TestANNConcurrentInsertSearch(t *testing.T) {
	store := clusteredStore(t, 4000, 8, 6, 10)
	// Build the graph over the first half, then grow it concurrently
	// with searches. The store itself is fully populated up front (the
	// Database layer serializes store appends; here we exercise the
	// graph's own lock).
	ix := &Index{
		store: store,
		f32:   &StoreF32{dim: store.Dim()},
		opt:   Options{M: 8, EfConstruction: 48, Seed: 11}.withDefaults(),
		entry: -1,
	}
	ix.mL = 1 / math.Log(float64(ix.opt.M))
	half := store.Len() / 2
	ids := make([]int, half)
	for i := range ids {
		ids[i] = i
	}
	if err := ix.InsertBatch(ids); err != nil {
		t.Fatalf("seed insert: %v", err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			for {
				select {
				case <-stop:
					return
				default:
				}
				q := make(linalg.Vector, store.Dim())
				for d := range q {
					q[d] = rng.Float64()
				}
				res, _, err := ix.KNNEf(context.Background(), &distance.Euclidean{Center: q}, 5, 40)
				if err != nil {
					t.Errorf("search: %v", err)
					return
				}
				for _, r := range res {
					if r.ID < 0 || r.ID >= store.Len() {
						t.Errorf("result id %d out of range", r.ID)
						return
					}
				}
			}
		}(w)
	}
	for id := half; id < store.Len(); id++ {
		if err := ix.Insert(id); err != nil {
			t.Fatalf("insert %d: %v", id, err)
		}
	}
	close(stop)
	wg.Wait()
}

// TestANNCancellation: an already-cancelled context yields the context
// error and a refined (possibly empty) prefix, never a panic.
func TestANNCancellation(t *testing.T) {
	store := clusteredStore(t, 1000, 8, 4, 12)
	ix, err := New(store, Options{M: 8, Seed: 2})
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	m := &distance.Euclidean{Center: store.Vector(0).Clone()}
	_, _, cerr := ix.KNNEf(ctx, m, 10, 64)
	if cerr == nil {
		t.Fatal("expected context error")
	}
}
