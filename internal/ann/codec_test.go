package ann

import (
	"math"
	"testing"

	"repro/internal/index"
	"repro/internal/linalg"
)

func TestQuantizeRules(t *testing.T) {
	cases := []struct {
		in     float64
		wantOK bool
	}{
		{0, true},
		{math.Copysign(0, -1), true},
		{1.5, true},
		{-1e30, true},
		{math.MaxFloat32, true},
		{-math.MaxFloat32, true},
		{5e-324, true}, // float64 denormal → signed zero
		{float64(math.SmallestNonzeroFloat32) / 2, true}, // float32 denormal range
		{math.NaN(), false},
		{math.Inf(1), false},
		{math.Inf(-1), false},
		{math.MaxFloat64, false}, // overflows float32
		{-math.MaxFloat64, false},
		{3.5e38, false}, // just past MaxFloat32
	}
	for _, c := range cases {
		f, err := Quantize(c.in)
		if c.wantOK && err != nil {
			t.Errorf("Quantize(%v) unexpected error: %v", c.in, err)
		}
		if !c.wantOK && err == nil {
			t.Errorf("Quantize(%v) = %v, want rejection", c.in, f)
		}
		if err == nil && math.IsInf(float64(f), 0) {
			t.Errorf("Quantize(%v) produced non-finite %v", c.in, f)
		}
	}
	// Round-to-nearest-even: the midpoint between two adjacent float32s
	// rounds to the even mantissa.
	if got := float32(1 + math.Pow(2, -24)); got != 1 {
		t.Skip("platform float conversion is not round-to-nearest-even")
	}
	f, err := Quantize(1 + math.Pow(2, -24))
	if err != nil || f != 1 {
		t.Errorf("midpoint rounding: got %v (%v), want 1", f, err)
	}
}

func TestEncodeRowDimMismatch(t *testing.T) {
	dst := make([]float32, 3)
	if err := EncodeRow(dst, []float64{1, 2}); err == nil {
		t.Fatal("expected dim-mismatch error")
	}
}

func TestStoreF32Sync(t *testing.T) {
	store, err := index.NewStore([]linalg.Vector{{1, 2}, {3, 4}})
	if err != nil {
		t.Fatal(err)
	}
	f, err := NewStoreF32(store)
	if err != nil {
		t.Fatal(err)
	}
	if f.Len() != 2 || f.Dim() != 2 {
		t.Fatalf("len/dim = %d/%d", f.Len(), f.Dim())
	}
	if _, err := store.Append(linalg.Vector{5, 6}); err != nil {
		t.Fatal(err)
	}
	if err := f.SyncFrom(store); err != nil {
		t.Fatal(err)
	}
	if f.Len() != 3 || f.Row(2)[0] != 5 || f.Row(2)[1] != 6 {
		t.Fatalf("sync produced %v (len %d)", f.Row(2), f.Len())
	}
}

// FuzzCodecRoundTrip fuzzes the codec contract: accepted values
// round-trip within half a float32 ulp and never produce non-finite
// approximations; rejected values are exactly the non-finite inputs and
// float32-overflowing magnitudes. Denormals, signed zeros and underflow
// to zero are exercised by the seed corpus.
func FuzzCodecRoundTrip(f *testing.F) {
	f.Add(0.0)
	f.Add(math.Copysign(0, -1))
	f.Add(1.0 + math.Pow(2, -24)) // float32 rounding midpoint
	f.Add(5e-324)                 // smallest float64 denormal
	f.Add(float64(math.SmallestNonzeroFloat32))
	f.Add(float64(math.SmallestNonzeroFloat32) / 3)
	f.Add(math.MaxFloat32)
	f.Add(3.5e38)
	f.Add(math.MaxFloat64)
	f.Add(math.Inf(1))
	f.Add(math.NaN())
	f.Fuzz(func(t *testing.T, x float64) {
		q, err := Quantize(x)
		finite := !math.IsNaN(x) && !math.IsInf(x, 0)
		fits := finite && !math.IsInf(float64(float32(x)), 0)
		if fits != (err == nil) {
			t.Fatalf("Quantize(%v): err=%v, want rejection=%v", x, err, !fits)
		}
		if err != nil {
			return
		}
		if math.IsNaN(float64(q)) || math.IsInf(float64(q), 0) {
			t.Fatalf("Quantize(%v) = %v is not finite", x, q)
		}
		// Round-trip: widening back is exact, and the quantization error
		// is bounded by half an ulp of the float32 neighborhood.
		back := float64(q)
		if x == 0 {
			if back != 0 {
				t.Fatalf("zero did not round-trip: %v", back)
			}
			return
		}
		// Go's conversion is the correctly rounded result, so re-quantizing
		// the widened value must be a fixed point.
		q2, err := Quantize(back)
		if err != nil || q2 != q {
			t.Fatalf("re-quantize(%v) = %v (%v), want fixed point %v", back, q2, err, q)
		}
		// Error bound: |x - back| <= ulp(x@32)/2. math.Nextafter32 gives
		// the neighborhood ulp.
		ulp := math.Abs(float64(math.Nextafter32(q, math.MaxFloat32)) - float64(q))
		if diff := math.Abs(x - back); diff > ulp {
			t.Fatalf("quantization error %g exceeds ulp %g for %v", diff, ulp, x)
		}
	})
}
