// Package ann is the approximate-search subsystem: a compact float32
// quantized mirror of the flat vector store plus an HNSW-style
// navigable-small-world graph index over it. The graph navigates the
// quantized vectors (half the memory bandwidth of the float64 store,
// which is exactly what bounds the batch kernels), producing a
// candidate set that is then exactly refined with the full-precision
// adaptive metric — so merged results and all feedback math stay
// bit-exact given the candidates.
package ann

import (
	"fmt"
	"math"

	"repro/internal/index"
)

// Quantize converts one float64 component to its float32 approximation.
//
// Conversion rules (the codec's contract, fuzzed in FuzzCodecRoundTrip):
//   - Rounding is IEEE-754 round-to-nearest-even (Go's float32
//     conversion), so the result is the closest representable float32
//     and |x - float64(Quantize(x))| <= ulp32(x)/2.
//   - NaN and ±Inf inputs are rejected: a non-finite approximation
//     would poison every graph distance it participates in.
//   - Finite inputs whose magnitude rounds past math.MaxFloat32 are
//     rejected too — the conversion would overflow to ±Inf, which is
//     the same poison with a finite excuse.
//   - Magnitudes below the smallest float32 denormal round to a signed
//     zero, and values in the denormal range lose precision gradually;
//     both are accepted (they stay finite and ordered).
func Quantize(x float64) (float32, error) {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return 0, fmt.Errorf("ann: component is not finite (%v)", x)
	}
	f := float32(x)
	if math.IsInf(float64(f), 0) {
		return 0, fmt.Errorf("ann: component %v overflows float32", x)
	}
	return f, nil
}

// quantizeClamped is the query-side variant: navigation centers come
// from feedback arithmetic and are finite by construction, but a center
// component beyond float32 range must not fail the whole search —
// navigation only affects which candidates are found, never their
// exactly-refined distances. Out-of-range magnitudes clamp to
// ±MaxFloat32 (NaN, impossible for a valid metric, maps to 0).
func quantizeClamped(x float64) float32 {
	f := float32(x)
	if math.IsInf(float64(f), 0) {
		if x > 0 {
			return math.MaxFloat32
		}
		return -math.MaxFloat32
	}
	if f != f { // NaN
		return 0
	}
	return f
}

// EncodeRow quantizes one row of dim float64 components into dst,
// which must have length dim. It fails on the first component the
// codec rejects (see Quantize) without reporting how much of dst was
// written — callers treat dst as garbage on error.
func EncodeRow(dst []float32, src []float64) error {
	if len(dst) != len(src) {
		return fmt.Errorf("ann: encode dim %d into %d", len(src), len(dst))
	}
	for i, x := range src {
		f, err := Quantize(x)
		if err != nil {
			return fmt.Errorf("ann: component %d: %w", i, err)
		}
		dst[i] = f
	}
	return nil
}

// DecodeRow widens a quantized row back to float64 (exact: every
// float32 is representable as a float64).
func DecodeRow(dst []float64, src []float32) {
	for i, f := range src {
		dst[i] = float64(f)
	}
}

// StoreF32 is the quantized mirror of an index.Store: the same rows in
// the same order, each component narrowed to float32 under the codec's
// conversion rules. It does no internal locking — the owning Index
// serializes Append against readers.
type StoreF32 struct {
	data []float32 // n*dim components, row i at [i*dim, (i+1)*dim)
	dim  int
	n    int
}

// NewStoreF32 quantizes every current row of the store.
func NewStoreF32(s *index.Store) (*StoreF32, error) {
	f := &StoreF32{dim: s.Dim()}
	if err := f.SyncFrom(s); err != nil {
		return nil, err
	}
	return f, nil
}

// SyncFrom quantizes the store rows appended since the last sync
// (rows [f.Len(), s.Len())). The mirror only ever grows — the store is
// append-only.
func (f *StoreF32) SyncFrom(s *index.Store) error {
	if s.Dim() != f.dim {
		return fmt.Errorf("ann: store dim %d, mirror has %d", s.Dim(), f.dim)
	}
	for id := f.n; id < s.Len(); id++ {
		row := s.Vector(id)
		off := len(f.data)
		f.data = append(f.data, make([]float32, f.dim)...)
		if err := EncodeRow(f.data[off:off+f.dim], row); err != nil {
			f.data = f.data[:off]
			return fmt.Errorf("ann: row %d: %w", id, err)
		}
		f.n++
	}
	return nil
}

// Len returns the number of quantized rows.
func (f *StoreF32) Len() int { return f.n }

// Dim returns the row dimensionality.
func (f *StoreF32) Dim() int { return f.dim }

// Row returns quantized row id as a capacity-capped subslice of the
// contiguous block (aliased, treat as read-only).
func (f *StoreF32) Row(id int) []float32 {
	off := id * f.dim
	return f.data[off : off+f.dim : off+f.dim]
}

// sqDist is the graph's navigation distance: squared Euclidean over
// quantized rows, accumulated in float32. Monotone with Euclidean, so
// candidate ordering is preserved; absolute values are approximate,
// which is fine — every candidate is re-scored exactly afterwards.
func sqDist(a, b []float32) float32 {
	var s float32
	for i, x := range a {
		d := x - b[i]
		s += d * d
	}
	return s
}
