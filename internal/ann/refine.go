package ann

import (
	"context"
	"sort"

	"repro/internal/distance"
	"repro/internal/index"
	"repro/internal/linalg"
)

// This file is the exactness boundary of the subsystem: the graph
// proposes candidate ids, this layer re-scores them with the
// full-precision float64 metric and the same (Dist, ID) total order the
// exact backends use. Given the candidate set, the returned result list
// is therefore bit-identical to what the hybrid tree would return over
// those same ids — which is what keeps every downstream feedback
// computation exact.

// NavigationCenters extracts the query representatives the graph
// navigates toward — distance.Centers: one graph descent per
// representative, candidate sets unioned. An unrecognized metric yields
// nil and the caller falls back to an exhaustive exact sweep, trading
// latency for correctness rather than guessing a navigation target.
func NavigationCenters(m distance.Metric) []linalg.Vector {
	return distance.Centers(m)
}

// KNN implements the index.Searcher contract on the graph with the
// default efSearch.
func (ix *Index) KNN(m distance.Metric, k int) ([]index.Result, index.SearchStats) {
	res, stats, _ := ix.KNNEf(context.Background(), m, k, 0)
	return res, stats
}

// KNNContext is KNN with cooperative cancellation: navigation stops at
// the next check, and whatever candidates were gathered are still
// exactly refined, so an interrupted search returns a valid (if
// lower-recall) prefix with the context error.
func (ix *Index) KNNContext(ctx context.Context, m distance.Metric, k int) ([]index.Result, index.SearchStats, error) {
	return ix.KNNEf(ctx, m, k, 0)
}

// KNNEf is the per-query entry point: ef overrides the index's default
// efSearch (0 keeps the default; values below k are raised to k). An
// ef covering the whole collection degenerates to an exhaustive exact
// sweep — no graph hops, every row refined — which is also the
// configuration under which results are bit-identical to the exact
// backends unconditionally, not just per candidate set.
func (ix *Index) KNNEf(ctx context.Context, m distance.Metric, k, ef int) ([]index.Result, index.SearchStats, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	var stats index.SearchStats
	stats.Workers = 1
	n := len(ix.nodes)
	if k <= 0 || n == 0 {
		return nil, stats, ctx.Err()
	}
	if ef <= 0 {
		ef = ix.opt.EfSearch
	}
	if ef < k {
		ef = k
	}

	centers := NavigationCenters(m)
	if ef >= n || len(centers) == 0 {
		res := ix.refineAll(m, k, &stats)
		return res, stats, nil
	}

	st := ix.getState()
	defer ix.putState(st)

	// Union the per-center beams with one more stamp pass over the
	// visited array (searchLayer bumped past these stamps already, so a
	// fresh stamp is collision-free).
	ids := make([]int32, 0, ef*len(centers))
	q := make([]float32, ix.f32.Dim())
	var cerr error
	unionStamp := func() uint32 {
		st.stamp++
		if st.stamp == 0 {
			for i := range st.visited {
				st.visited[i] = 0
			}
			st.stamp = 1
		}
		return st.stamp
	}
	for _, c := range centers {
		if cerr = ctx.Err(); cerr != nil {
			break
		}
		if len(c) != ix.f32.Dim() {
			continue // a foreign-dimension part can never score; skip it
		}
		for i, x := range c {
			q[i] = quantizeClamped(x)
		}
		beam := ix.candidates(ctx, q, ef, st)
		stamp := unionStamp()
		for _, b := range beam {
			if st.visited[b.id] != stamp {
				st.visited[b.id] = stamp
				ids = append(ids, b.id)
			}
		}
		// Re-mark prior unions under the new stamp for the next center.
		for _, id := range ids {
			st.visited[id] = stamp
		}
	}
	stats.GraphHops = st.hops
	stats.NodesVisited = st.hops

	res := ix.refineIDs(m, ids, k, &stats)
	return res, stats, cerr
}

// refineAll exactly scores every row — the degenerate exact path.
func (ix *Index) refineAll(m distance.Metric, k int, stats *index.SearchStats) []index.Result {
	n := len(ix.nodes)
	out := make([]index.Result, 0, n)
	for id := 0; id < n; id++ {
		out = append(out, index.Result{ID: id, Dist: m.Eval(ix.store.Vector(id))})
	}
	stats.RefineEvals += n
	stats.DistanceEvals += n
	return topK(out, k)
}

// refineIDs exactly scores the candidate set with the full-precision
// metric over the float64 store.
func (ix *Index) refineIDs(m distance.Metric, ids []int32, k int, stats *index.SearchStats) []index.Result {
	out := make([]index.Result, 0, len(ids))
	for _, id := range ids {
		out = append(out, index.Result{ID: int(id), Dist: m.Eval(ix.store.Vector(int(id)))})
	}
	stats.RefineEvals += len(ids)
	stats.DistanceEvals += len(ids)
	return topK(out, k)
}

// topK sorts by the exact backends' (Dist, ID) total order and keeps k.
func topK(rs []index.Result, k int) []index.Result {
	sort.Slice(rs, func(a, b int) bool {
		if rs[a].Dist != rs[b].Dist {
			return rs[a].Dist < rs[b].Dist
		}
		return rs[a].ID < rs[b].ID
	})
	if len(rs) > k {
		rs = rs[:k]
	}
	return rs
}
