package plan

import (
	"sync"
	"testing"
	"time"

	"repro/internal/index"
)

// testClock is an injectable deterministic clock.
type testClock struct {
	mu sync.Mutex
	t  time.Time
}

func newTestClock() *testClock {
	return &testClock{t: time.Date(2026, 1, 1, 0, 0, 0, 0, time.UTC)}
}

func (c *testClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *testClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testConfig(clock *testClock) Config {
	return Config{
		Static:        RouteTree,
		StaticWorkers: 4,
		Routes:        []Route{RouteTree, RouteVAFile},
		ProbeEvery:    -1, // deterministic tests drive warm-up explicitly
		Now:           clock.now,
	}
}

func obsStats(evals int) index.SearchStats {
	return index.SearchStats{DistanceEvals: evals}
}

// warm feeds n identical observations into a route's model.
func warm(p *Planner, r Route, q Query, n int, seconds float64, evals int) {
	for i := 0; i < n; i++ {
		p.Observe(Decision{Route: r}, q, obsStats(evals), time.Duration(seconds*float64(time.Second)))
	}
}

// TestColdStartIsStatic is the planner's core safety contract: with no
// observations at all, every decision is the static configuration with
// zero tuning — indistinguishable from running without a planner.
func TestColdStartIsStatic(t *testing.T) {
	p := New(testConfig(newTestClock()))
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}
	for i := 0; i < 100; i++ {
		d := p.Plan(q)
		if d.Route != RouteTree || d.Adaptive || d.Probe {
			t.Fatalf("cold decision %d = %+v, want static tree", i, d)
		}
		if d.Workers != 0 || d.BatchItems != 0 || d.EfSearch != 0 {
			t.Fatalf("cold decision %d carries tuning: %+v", i, d)
		}
		if d.PredictedSeconds != 0 {
			t.Fatalf("cold decision %d carries a prediction: %+v", i, d)
		}
	}
}

// TestAdaptiveRoutesToCheaperPath warms both exact routes with clearly
// separated costs and checks the planner picks the cheaper one — in
// both directions.
func TestAdaptiveRoutesToCheaperPath(t *testing.T) {
	clock := newTestClock()
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}

	p := New(testConfig(clock))
	warm(p, RouteTree, q, 16, 0.050, 5000)
	warm(p, RouteVAFile, q, 16, 0.005, 2000)
	d := p.Plan(q)
	if d.Route != RouteVAFile || !d.Adaptive {
		t.Fatalf("decision = %+v, want adaptive vafile (tree 10x slower)", d)
	}
	if d.PredictedSeconds <= 0 {
		t.Fatalf("adaptive decision carries no prediction: %+v", d)
	}

	p = New(testConfig(clock))
	warm(p, RouteTree, q, 16, 0.002, 1000)
	warm(p, RouteVAFile, q, 16, 0.020, 8000)
	if d := p.Plan(q); d.Route != RouteTree || !d.Adaptive {
		t.Fatalf("decision = %+v, want adaptive tree (vafile 10x slower)", d)
	}
}

// TestANNRequiresOptIn: the approximate route must never be chosen for
// a query that did not allow it, no matter how cheap its model says it
// is.
func TestANNRequiresOptIn(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock)
	cfg.Routes = []Route{RouteTree, RouteVAFile, RouteANN}
	p := New(cfg)
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}
	warm(p, RouteTree, q, 16, 0.050, 5000)
	warm(p, RouteVAFile, q, 16, 0.040, 5000)
	warm(p, RouteANN, Query{K: 10, M: 1, Scheme: "euclidean", AllowApprox: true}, 16, 0.001, 100)

	for i := 0; i < 50; i++ {
		if d := p.Plan(q); d.Route == RouteANN {
			t.Fatalf("exact query routed to ann: %+v", d)
		}
	}
	qa := q
	qa.AllowApprox = true
	if d := p.Plan(qa); d.Route != RouteANN {
		t.Fatalf("opt-in query = %+v, want the 40x cheaper ann route", d)
	}
}

// TestOutlierDoesNotFlipPlan poisons the winning route's window with one
// extreme latency and checks the decision is unchanged: winsorization
// clamps the outlier to outlierFactor x the live mean, so a single GC
// pause or scheduler stall cannot flip a warm plan.
func TestOutlierDoesNotFlipPlan(t *testing.T) {
	clock := newTestClock()
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}
	p := New(testConfig(clock))
	// vafile is the steady winner at 5ms vs the tree's 8ms.
	warm(p, RouteTree, q, 32, 0.008, 3000)
	warm(p, RouteVAFile, q, 32, 0.005, 3000)
	if d := p.Plan(q); d.Route != RouteVAFile {
		t.Fatalf("pre-outlier decision = %+v, want vafile", d)
	}
	// One 10-second stall lands on the vafile window. Unclamped it would
	// drag the 32-point mean to ~0.3s and flip the route.
	p.Observe(Decision{Route: RouteVAFile}, q, obsStats(3000), 10*time.Second)
	if d := p.Plan(q); d.Route != RouteVAFile {
		t.Fatalf("one outlier flipped the plan: %+v", d)
	}
}

// TestWindowExpiryGoesBackToStatic advances the clock past the window
// span and checks the planner falls back to the static path: stale
// models must not steer live traffic.
func TestWindowExpiryGoesBackToStatic(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock)
	cfg.WindowSpan = 60 * time.Second
	p := New(cfg)
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}
	warm(p, RouteTree, q, 16, 0.050, 5000)
	warm(p, RouteVAFile, q, 16, 0.005, 2000)
	if d := p.Plan(q); d.Route != RouteVAFile {
		t.Fatalf("warm decision = %+v, want vafile", d)
	}
	clock.advance(2 * time.Minute)
	if d := p.Plan(q); d.Route != RouteTree || d.Adaptive {
		t.Fatalf("post-expiry decision = %+v, want static tree", d)
	}
}

// TestProbingWarmsColdRoute checks deterministic exploration: with
// probing enabled, every ProbeEvery-th decision routes to a cold
// non-static route, and probes stop once the route is warm.
func TestProbingWarmsColdRoute(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock)
	cfg.ProbeEvery = 4
	p := New(cfg)
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}

	probes := 0
	for i := 0; i < 64; i++ {
		d := p.Plan(q)
		if d.Probe {
			probes++
			if d.Route != RouteVAFile {
				t.Fatalf("probe routed to %q, want the cold vafile route", d.Route)
			}
			// Feed the probe back like the executor would.
			p.Observe(d, q, obsStats(2000), 5*time.Millisecond)
		}
	}
	if probes == 0 {
		t.Fatal("no probes over 64 decisions with ProbeEvery=4")
	}
	// vafile is warm now; the tree model is still cold, so the planner
	// has exactly one warm route to compare — and it should win probing
	// a route that is already warm.
	d := p.Plan(q)
	if d.Probe {
		t.Fatalf("probed a warm route: %+v", d)
	}
}

// TestTreeTuningWorkers checks pool sizing: expected evals below the
// per-worker budget disable parallelism (Workers=1), large expected
// evals saturate at MaxWorkers.
func TestTreeTuningWorkers(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock)
	cfg.MaxWorkers = 4
	cfg.EvalsPerWorker = 1000
	p := New(cfg)
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}

	warm(p, RouteTree, q, 16, 0.001, 500) // half a worker's budget
	d := p.Plan(q)
	if d.Route != RouteTree || d.Workers != 1 {
		t.Fatalf("small query decision = %+v, want sequential tree", d)
	}

	p = New(cfg)
	warm(p, RouteTree, q, 16, 0.050, 100000) // 100 workers' budget
	d = p.Plan(q)
	if d.Route != RouteTree || d.Workers != 4 {
		t.Fatalf("large query decision = %+v, want MaxWorkers=4", d)
	}
}

// TestBatchItemsFollowAbandonment: high abandonment shrinks the metric
// batch (a tight bound saves work), low abandonment grows it.
func TestBatchItemsFollowAbandonment(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock)
	cfg.EvalsPerWorker = 100
	p := New(cfg)
	q := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}
	for i := 0; i < 16; i++ {
		p.Observe(Decision{Route: RouteTree}, q,
			index.SearchStats{DistanceEvals: 5000, BatchedEvals: 5000, AbandonedEvals: 4500},
			5*time.Millisecond)
	}
	if d := p.Plan(q); d.BatchItems != batchItemsSmall {
		t.Fatalf("high-abandonment decision = %+v, want BatchItems=%d", d, batchItemsSmall)
	}

	p = New(cfg)
	for i := 0; i < 16; i++ {
		p.Observe(Decision{Route: RouteTree}, q,
			index.SearchStats{DistanceEvals: 5000, BatchedEvals: 5000, AbandonedEvals: 100},
			5*time.Millisecond)
	}
	if d := p.Plan(q); d.BatchItems != batchItemsLarge {
		t.Fatalf("low-abandonment decision = %+v, want BatchItems=%d", d, batchItemsLarge)
	}
}

// TestModelsKeyedBySchemeAndM: observations for one (scheme, m-bucket)
// must not warm another's model.
func TestModelsKeyedBySchemeAndM(t *testing.T) {
	clock := newTestClock()
	p := New(testConfig(clock))
	q1 := Query{K: 10, M: 1, Scheme: "euclidean", N: 10000}
	q8 := Query{K: 10, M: 8, Scheme: "multipoint", N: 10000}
	warm(p, RouteTree, q1, 16, 0.050, 5000)
	warm(p, RouteVAFile, q1, 16, 0.005, 2000)
	if d := p.Plan(q1); d.Route != RouteVAFile {
		t.Fatalf("warm q1 decision = %+v, want vafile", d)
	}
	if d := p.Plan(q8); d.Route != RouteTree || d.Adaptive {
		t.Fatalf("q8 decision = %+v, want static (its models are cold)", d)
	}
}

// TestMBucket pins the bucket boundaries the models are keyed by.
func TestMBucket(t *testing.T) {
	want := map[int]int{0: 0, 1: 0, 2: 1, 3: 1, 4: 2, 7: 2, 8: 3, 100: 3}
	for m, b := range want {
		if got := mBucket(m); got != b {
			t.Errorf("mBucket(%d) = %d, want %d", m, got, b)
		}
	}
}

// TestFitSlopeNonNegative: a noise-driven negative slope must flatten
// to zero so predictions never say more work is cheaper.
func TestFitSlopeNonNegative(t *testing.T) {
	clock := newTestClock()
	mo := &model{}
	for i := 0; i < 16; i++ {
		// Anti-correlated noise: more evals, less time.
		mo.add(obsPoint{at: clock.now(), evals: float64(1000 + i*100), seconds: 0.010 - float64(i)*0.0005}, time.Minute, 8)
	}
	est, ok := mo.fit(clock.now(), time.Minute, 8)
	if !ok {
		t.Fatal("fit not ok with 16 live points")
	}
	if est.b != 0 {
		t.Fatalf("slope = %v, want clamped to 0", est.b)
	}
	if est.predictSeconds() <= 0 {
		t.Fatalf("predictSeconds = %v, want positive", est.predictSeconds())
	}
}

// TestPlanConcurrency runs Plan and Observe from many goroutines (with
// -race) while the query's m drifts, as feedback rounds do.
func TestPlanConcurrency(t *testing.T) {
	clock := newTestClock()
	cfg := testConfig(clock)
	cfg.ProbeEvery = 4
	p := New(cfg)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				q := Query{K: 10, M: 1 + (g+i)%10, Scheme: "multipoint", N: 10000}
				d := p.Plan(q)
				p.Observe(d, q, obsStats(1000+i), time.Duration(1+i%5)*time.Millisecond)
			}
		}(g)
	}
	wg.Wait()
}
