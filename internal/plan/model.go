package plan

import (
	"sync"
	"time"
)

// modelPoints is the ring size of one cost model: big enough that a
// busy route's window is statistically stable, small enough that a
// model costs ~4 KB and a fit is a trivial linear pass.
const modelPoints = 128

// obsPoint is one completed search observation.
type obsPoint struct {
	at      time.Time
	evals   float64 // distance evaluations (incl. graph hops + refines)
	seconds float64
	abandon float64 // abandoned/batched evaluation ratio
}

// model is the rolling cost model of one (route, scheme, m-bucket): a
// time-windowed ring of observations fitted on demand with a tiny least
// squares. All access goes through its mutex — fits happen at plan time
// on the query path, so the work under the lock is a single O(ring)
// pass with no allocation.
type model struct {
	mu   sync.Mutex
	ring [modelPoints]obsPoint
	next int
	n    int // live slots (≤ modelPoints); expiry is handled at read time
}

// add records an observation, winsorizing outliers: once the model is
// warm, a latency more than outlierFactor× the window's live mean is
// clamped down to that ceiling. One tail-sampled slow query (GC pause,
// page fault storm) then nudges the mean instead of dominating it, so
// it cannot flip a route decision on its own.
func (mo *model) add(pt obsPoint, span time.Duration, minObs int) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	mean, live := mo.liveMeanLocked(pt.at, span)
	if live >= minObs && mean > 0 && pt.seconds > outlierFactor*mean {
		pt.seconds = outlierFactor * mean
	}
	mo.ring[mo.next] = pt
	mo.next = (mo.next + 1) % modelPoints
	if mo.n < modelPoints {
		mo.n++
	}
}

// liveMeanLocked returns the mean seconds over non-expired points.
func (mo *model) liveMeanLocked(now time.Time, span time.Duration) (mean float64, live int) {
	var sum float64
	for i := 0; i < mo.n; i++ {
		pt := &mo.ring[i]
		if now.Sub(pt.at) > span {
			continue
		}
		sum += pt.seconds
		live++
	}
	if live == 0 {
		return 0, 0
	}
	return sum / float64(live), live
}

// estimate is a fitted snapshot of one model.
type estimate struct {
	n           int
	meanEvals   float64
	meanSeconds float64
	// seconds ≈ a + b·evals, least squares over the live window. When
	// the window has no eval spread the slope degenerates to 0 and the
	// intercept to the mean.
	a, b        float64
	meanAbandon float64
}

// predictSeconds is the model's latency estimate at its own mean
// workload — the number routes are compared by. Using the fit at
// meanEvals (instead of raw meanSeconds) keeps the comparison stable
// when the window mixes cheap and expensive queries unevenly.
func (e estimate) predictSeconds() float64 {
	s := e.a + e.b*e.meanEvals
	if s < 0 {
		s = e.meanSeconds
	}
	return s
}

// fit computes the live-window regression. ok is false while the window
// holds fewer than minObs live points — the planner's cold signal.
func (mo *model) fit(now time.Time, span time.Duration, minObs int) (estimate, bool) {
	mo.mu.Lock()
	defer mo.mu.Unlock()
	var (
		n                        int
		sumE, sumS, sumEE, sumES float64
		sumAb                    float64
	)
	for i := 0; i < mo.n; i++ {
		pt := &mo.ring[i]
		if now.Sub(pt.at) > span {
			continue
		}
		n++
		sumE += pt.evals
		sumS += pt.seconds
		sumEE += pt.evals * pt.evals
		sumES += pt.evals * pt.seconds
		sumAb += pt.abandon
	}
	if n < minObs {
		return estimate{}, false
	}
	fn := float64(n)
	est := estimate{
		n:           n,
		meanEvals:   sumE / fn,
		meanSeconds: sumS / fn,
		meanAbandon: sumAb / fn,
	}
	// Ordinary least squares; guard the degenerate constant-evals window
	// (variance ~0) where the slope is meaningless.
	varE := sumEE/fn - est.meanEvals*est.meanEvals
	if varE > 1e-9 {
		est.b = (sumES/fn - est.meanEvals*est.meanSeconds) / varE
		if est.b < 0 {
			est.b = 0 // more work is never cheaper; noise-driven negative slopes get flattened
		}
		est.a = est.meanSeconds - est.b*est.meanEvals
	} else {
		est.a = est.meanSeconds
	}
	return est, true
}
