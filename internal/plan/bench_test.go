package plan

import (
	"testing"
	"time"

	"repro/internal/index"
)

// warmPlanner builds a planner with both exact routes warm (tree cheap,
// VA-file expensive) and probing disabled, so every Plan decision is
// model-driven.
func warmPlanner() (*Planner, Query, index.SearchStats) {
	p := New(Config{
		Static:        RouteTree,
		StaticWorkers: 4,
		Routes:        []Route{RouteTree, RouteVAFile},
		ProbeEvery:    -1,
	})
	q := Query{K: 100, M: 1, Scheme: "euclidean", N: 20000}
	stats := index.SearchStats{DistanceEvals: 2000, BatchedEvals: 1500, AbandonedEvals: 400}
	for i := 0; i < 32; i++ {
		p.Observe(Decision{Route: RouteTree}, q, stats, 100*time.Microsecond)
		p.Observe(Decision{Route: RouteVAFile}, q, stats, 5*time.Millisecond)
	}
	return p, q, stats
}

// BenchmarkPlanObserve measures the planner's per-query overhead on the
// search hot path: one warm Plan decision plus the Observe that feeds
// the chosen model. Searches on small collections run in ~100µs, so
// this round-trip must stay a small fraction of that — and it must not
// allocate, since it runs once per query under the caller's latency
// budget.
func BenchmarkPlanObserve(b *testing.B) {
	p, q, stats := warmPlanner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := p.Plan(q)
		p.Observe(d, q, stats, 100*time.Microsecond)
	}
}

// BenchmarkPlanOnly isolates the decision half: two model fits (one
// O(ring) pass each), the probe counter, and the route comparison.
func BenchmarkPlanOnly(b *testing.B) {
	p, q, _ := warmPlanner()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Plan(q)
	}
}

// BenchmarkObserveOnly isolates the learning half: the winsorization
// mean pass plus the ring write.
func BenchmarkObserveOnly(b *testing.B) {
	p, q, stats := warmPlanner()
	d := Decision{Route: RouteTree, Adaptive: true}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Observe(d, q, stats, 100*time.Microsecond)
	}
}
